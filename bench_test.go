package accelring

// One benchmark per figure/table of the paper's evaluation. Each runs the
// corresponding experiment suite in quick mode (thinned sweeps, shorter
// measurement windows) and reports headline values as custom metrics.
// Full-resolution tables come from `go run ./cmd/ringbench`.

import (
	"strconv"
	"strings"
	"testing"

	"accelring/internal/bench"
)

func runFigure(b *testing.B, id string) *bench.Table {
	b.Helper()
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		s := &bench.Suite{Quick: true, Seed: 42}
		var err error
		tbl, err = s.Figure(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return tbl
}

// cell parses a table cell as a float, ignoring the saturation marker.
func cell(b *testing.B, tbl *bench.Table, row, col int) float64 {
	b.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		b.Fatalf("cell (%d,%d) out of range", row, col)
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(tbl.Rows[row][col], "*"), 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func BenchmarkFig01Trace(b *testing.B) {
	tbl := runFigure(b, "fig1")
	b.ReportMetric(float64(len(tbl.Rows)), "trace-events")
}

func BenchmarkFig02Agreed1G(b *testing.B) {
	tbl := runFigure(b, "fig2")
	// Row for 400 Mbps (quick sweep index 1); spread columns are 5 (orig)
	// and 6 (accel).
	b.ReportMetric(cell(b, tbl, 1, 5), "spread-orig-400M-µs")
	b.ReportMetric(cell(b, tbl, 1, 6), "spread-accel-400M-µs")
}

func BenchmarkFig03Safe1G(b *testing.B) {
	tbl := runFigure(b, "fig3")
	b.ReportMetric(cell(b, tbl, 1, 5), "spread-orig-400M-µs")
	b.ReportMetric(cell(b, tbl, 1, 6), "spread-accel-400M-µs")
}

func BenchmarkFig04Agreed10G(b *testing.B) {
	tbl := runFigure(b, "fig4")
	b.ReportMetric(cell(b, tbl, 1, 1), "library-orig-1G-µs")
	b.ReportMetric(cell(b, tbl, 1, 2), "library-accel-1G-µs")
}

func BenchmarkFig05Jumbo10G(b *testing.B) {
	tbl := runFigure(b, "fig5")
	b.ReportMetric(cell(b, tbl, 1, 1), "library-1350B-2G-µs")
	b.ReportMetric(cell(b, tbl, 1, 2), "library-8850B-2G-µs")
}

func BenchmarkFig06Safe10G(b *testing.B) {
	tbl := runFigure(b, "fig6")
	b.ReportMetric(cell(b, tbl, 1, 5), "spread-orig-1G-µs")
	b.ReportMetric(cell(b, tbl, 1, 6), "spread-accel-1G-µs")
}

func BenchmarkFig07JumboSafe10G(b *testing.B) {
	tbl := runFigure(b, "fig7")
	b.ReportMetric(cell(b, tbl, 1, 3), "daemon-1350B-2G-µs")
	b.ReportMetric(cell(b, tbl, 1, 4), "daemon-8850B-2G-µs")
}

func BenchmarkFig08SafeLow10G(b *testing.B) {
	tbl := runFigure(b, "fig8")
	// The paper's crossover: at 100 Mbps the ORIGINAL protocol has lower
	// Safe latency on 10 GbE (extra aru round in the accelerated one).
	orig := cell(b, tbl, 0, 1)
	accel := cell(b, tbl, 0, 2)
	b.ReportMetric(orig, "spread-orig-100M-µs")
	b.ReportMetric(accel, "spread-accel-100M-µs")
	if accel <= orig {
		b.Logf("note: expected the original protocol to win at 100 Mbps (paper Fig 8)")
	}
}

func BenchmarkFig09Loss480M10G(b *testing.B) {
	tbl := runFigure(b, "fig9")
	last := len(tbl.Rows) - 1
	b.ReportMetric(cell(b, tbl, last, 1), "agreed-orig-25loss-µs")
	b.ReportMetric(cell(b, tbl, last, 2), "agreed-accel-25loss-µs")
}

func BenchmarkFig10Loss1200M10G(b *testing.B) {
	tbl := runFigure(b, "fig10")
	last := len(tbl.Rows) - 1
	b.ReportMetric(cell(b, tbl, last, 3), "safe-orig-25loss-µs")
	b.ReportMetric(cell(b, tbl, last, 4), "safe-accel-25loss-µs")
}

func BenchmarkFig11Loss140M1G(b *testing.B) {
	tbl := runFigure(b, "fig11")
	last := len(tbl.Rows) - 1
	b.ReportMetric(cell(b, tbl, last, 3), "safe-orig-25loss-µs")
	b.ReportMetric(cell(b, tbl, last, 4), "safe-accel-25loss-µs")
}

func BenchmarkFig12Loss350M1G(b *testing.B) {
	tbl := runFigure(b, "fig12")
	last := len(tbl.Rows) - 1
	b.ReportMetric(cell(b, tbl, last, 1), "agreed-orig-25loss-µs")
	b.ReportMetric(cell(b, tbl, last, 2), "agreed-accel-25loss-µs")
}

func BenchmarkFig13LossPosition(b *testing.B) {
	tbl := runFigure(b, "fig13")
	b.ReportMetric(cell(b, tbl, 0, 1), "agreed-orig-d1-µs")
	b.ReportMetric(cell(b, tbl, len(tbl.Rows)-1, 1), "agreed-orig-d7-µs")
}

func BenchmarkMaxThroughput(b *testing.B) {
	tbl := runFigure(b, "maxthroughput")
	// Row 4: 10GbE/1350B/daemon; row 8: 10GbE/8850B/spread.
	b.ReportMetric(cell(b, tbl, 4, 4), "daemon-10G-accel-Mbps")
	b.ReportMetric(cell(b, tbl, 8, 4), "spread-10G-8850B-accel-Mbps")
}

func BenchmarkAblationWindow(b *testing.B) {
	tbl := runFigure(b, "ablation-aw")
	b.ReportMetric(cell(b, tbl, 0, 3), "aw0-max-Mbps")
	b.ReportMetric(cell(b, tbl, len(tbl.Rows)-1, 3), "awfull-max-Mbps")
}

func BenchmarkAblationPriority(b *testing.B) {
	tbl := runFigure(b, "ablation-priority")
	b.ReportMetric(cell(b, tbl, 0, 1), "agreed-m1-µs")
	b.ReportMetric(cell(b, tbl, 0, 2), "agreed-m2-µs")
}

func BenchmarkAblationRequestDelay(b *testing.B) {
	tbl := runFigure(b, "ablation-rtr")
	// Spurious retransmissions at zero loss when requesting immediately.
	b.ReportMetric(cell(b, tbl, 0, 3), "delayed-retrans-at-0loss")
	b.ReportMetric(cell(b, tbl, 0, 4), "immediate-retrans-at-0loss")
}

func BenchmarkAblationSwitchBuffer(b *testing.B) {
	tbl := runFigure(b, "ablation-buffer")
	b.ReportMetric(cell(b, tbl, 0, 3), "smallest-buf-switch-drops")
}
