package accelring

import (
	"context"
	"testing"
	"time"
)

// TestRingKeyedCluster: nodes sharing a ring key form a ring and order
// messages as usual — authentication is transparent when everyone is
// keyed.
func TestRingKeyedCluster(t *testing.T) {
	key := []byte("cluster master key")
	nodes := openCluster(t, 3, WithRingKey(key))
	for _, n := range nodes {
		if err := n.Join("sealed"); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		for {
			v := nextEvent[*GroupView](t, n)
			if v.Group == "sealed" && len(v.Members) == 3 {
				break
			}
		}
	}
	if err := nodes[0].Send(Agreed, []byte("signed payload"), "sealed"); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if m := nextEvent[*Message](t, n); string(m.Payload) != "signed payload" {
			t.Fatalf("node %v delivered %q", n.ID(), m.Payload)
		}
	}
}

// TestRingKeyMismatchIsolated: a node with the wrong key cannot join the
// keyed ring — every frame it sends is dropped at the receivers, so the
// keyed pair converges without it and keeps ordering traffic.
func TestRingKeyMismatchIsolated(t *testing.T) {
	hub := NewHub()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	open := func(id ProcID, key []byte) *Node {
		t.Helper()
		ep, err := hub.Endpoint(id, 4096, 64)
		if err != nil {
			t.Fatal(err)
		}
		n, err := Open(ctx,
			WithSelf(id),
			WithTransport(ep),
			WithWindows(10, 100, 7),
			WithTimeouts(fastTimeouts()),
			WithRingKey(key),
		)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	a := open(1, []byte("right key"))
	b := open(2, []byte("right key"))
	open(3, []byte("wrong key"))

	if err := a.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	// The keyed pair agrees on a two-member group view — the impostor
	// never makes it into the ring — and still orders traffic.
	for _, n := range []*Node{a, b} {
		if err := n.Join("g"); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []*Node{a, b} {
		for {
			v := nextEvent[*GroupView](t, n)
			if v.Group == "g" && len(v.Members) == 2 {
				break
			}
		}
	}
	if err := a.Send(Agreed, []byte("secret"), "g"); err != nil {
		t.Fatal(err)
	}
	if m := nextEvent[*Message](t, b); string(m.Payload) != "secret" {
		t.Fatalf("keyed peer delivered %q", m.Payload)
	}
}
