module accelring

go 1.22
