GO ?= go

.PHONY: ci vet build test race chaos

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The transports and the fault injector are the concurrency hot spots;
# keep them under the race detector even when the full -race run is too
# slow for the inner loop.
race:
	$(GO) test -race ./internal/transport/... ./internal/faults/...

# Replay one chaos seed: make chaos FAULTS_SEED=17
chaos:
	$(GO) test -v -run TestChaosRandomPlans ./internal/faults/chaos/
