GO ?= go

.PHONY: ci vet build test race race-full bench-smoke bench-baseline chaos

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The transports and the fault injector are the concurrency hot spots;
# keep them under the race detector even when the full -race run is too
# slow for the inner loop.
race:
	$(GO) test -race ./internal/transport/... ./internal/faults/...

# The full suite under the race detector (CI runs this as its own job).
race-full:
	$(GO) test -race ./...

# One-iteration benchmark pass over two figures and the core engine, as a
# cheap regression tripwire (CI runs this as its own job).
bench-smoke:
	$(GO) test -run '^$$' -bench 'Fig0[13]' -benchtime 1x .
	$(GO) test -run '^$$' -bench . -benchtime 100x ./internal/core

# Allocation/throughput baseline: core-engine + wire microbenchmarks plus
# the Fig01/Fig03 end-to-end simulations, all with -benchmem, written as
# JSON to results/BENCH_core.json (raw text kept alongside). Commit the
# JSON when the hot path changes so regressions show up in review.
bench-baseline:
	mkdir -p results
	{ $(GO) test -run '^$$' -bench . -benchmem ./internal/core ./internal/wire ; \
	  $(GO) test -run '^$$' -bench 'Fig0[13]' -benchtime 1x -benchmem . ; } \
	  | tee results/BENCH_core.txt | $(GO) run ./cmd/benchjson > results/BENCH_core.json

# Replay one chaos seed: make chaos FAULTS_SEED=17
chaos:
	$(GO) test -v -run TestChaosRandomPlans ./internal/faults/chaos/
