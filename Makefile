GO ?= go

.PHONY: ci vet build test race race-full bench-smoke bench-baseline bench-shard bench-shard-smoke bench-wire bench-wire-smoke bench-fanout bench-fanout-smoke bench-xring bench-xring-smoke chaos chaos-xring obs-smoke soak-smoke

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The transports, the fault injector, and the sharding layer (N protocol
# goroutines per node) are the concurrency hot spots; keep them under the
# race detector even when the full -race run is too slow for the inner
# loop.
race:
	$(GO) test -race ./internal/transport/... ./internal/faults/... ./internal/shard/...

# The full suite under the race detector (CI runs this as its own job).
race-full:
	$(GO) test -race ./...

# One-iteration benchmark pass over two figures and the core engine, as a
# cheap regression tripwire (CI runs this as its own job).
bench-smoke:
	$(GO) test -run '^$$' -bench 'Fig0[13]' -benchtime 1x .
	$(GO) test -run '^$$' -bench . -benchtime 100x ./internal/core

# Allocation/throughput baseline: core-engine + wire microbenchmarks plus
# the Fig01/Fig03 end-to-end simulations, all with -benchmem, written as
# JSON to results/BENCH_core.json (raw text kept alongside). Commit the
# JSON when the hot path changes so regressions show up in review.
bench-baseline:
	mkdir -p results
	{ $(GO) test -run '^$$' -bench . -benchmem ./internal/core ./internal/wire ; \
	  $(GO) test -run '^$$' -bench 'Fig0[13]' -benchtime 1x -benchmem . ; } \
	  | tee results/BENCH_core.txt | $(GO) run ./cmd/benchjson > results/BENCH_core.json

# Wire-path baseline: loopback UDP syscalls-per-frame (bare vs batched
# vs multicast sendmmsg/recvmmsg) plus simulated-ring ordered throughput
# bare vs packed, recorded in results/BENCH_wire.json (+ raw text).
# Commit the JSON when the wire path changes; the multicast rows skip
# silently where the environment cannot route group traffic on loopback.
bench-wire:
	mkdir -p results
	{ $(GO) test -run '^$$' -bench 'Wire' -benchtime 20000x -benchmem ./internal/transport ; \
	  $(GO) test -run '^$$' -bench 'WireRing' -benchtime 30000x -benchmem ./internal/ringnode ; } \
	  | tee results/BENCH_wire.txt | $(GO) run ./cmd/benchjson > results/BENCH_wire.json

# Quick variant for CI: one pass, throwaway output.
bench-wire-smoke:
	$(GO) test -run '^$$' -bench 'Wire' -benchtime 1000x ./internal/transport
	$(GO) test -run '^$$' -bench 'WireRing' -benchtime 2000x ./internal/ringnode

# Client fan-out figure: 1 publisher frame delivered to 16/64 subscriber
# sessions over TCP loopback, legacy per-session-encode path vs the
# encode-once shared-buffer path with batched vectored writes. Records
# frames/s, write syscalls/frame, and allocs/op in
# results/BENCH_fanout.json (+ raw text). Commit the JSON when the daemon
# client layer changes.
bench-fanout:
	mkdir -p results
	$(GO) test -run '^$$' -bench 'Fanout' -benchtime 20000x -benchmem ./internal/daemon \
	  | tee results/BENCH_fanout.txt | $(GO) run ./cmd/benchjson > results/BENCH_fanout.json

# Quick variant for CI: one short pass, throwaway output.
bench-fanout-smoke:
	$(GO) test -run '^$$' -bench 'Fanout' -benchtime 500x ./internal/daemon

# Cross-ring merge figure: end-to-end client delivery through real
# daemons — single-ring split baseline (the PR 4 shape) vs the 2-shard
# merged path (merge overhead is the per-message delta), plus the live
# migration blackout window (ns/op of one Migrate round trip with
# traffic in flight). Recorded in results/BENCH_xring.json (+ raw text).
# Commit the JSON when the merge or migration path changes.
bench-xring:
	mkdir -p results
	{ $(GO) test -run '^$$' -bench 'XRing(Split|Merged)Delivery' -benchtime 20000x -benchmem ./internal/daemon ; \
	  $(GO) test -run '^$$' -bench 'XRingMigrationBlackout' -benchtime 200x -benchmem ./internal/daemon ; } \
	  | tee results/BENCH_xring.txt | $(GO) run ./cmd/benchjson > results/BENCH_xring.json

# Quick variant for CI: short passes, throwaway output.
bench-xring-smoke:
	$(GO) test -run '^$$' -bench 'XRing(Split|Merged)Delivery' -benchtime 1000x ./internal/daemon
	$(GO) test -run '^$$' -bench 'XRingMigrationBlackout' -benchtime 20x ./internal/daemon

# Multi-ring scaling experiment: single-ring baseline vs 2- and 4-shard
# aggregates at equal windows on the virtual-time testbed, recorded in
# results/BENCH_shard.json (+ results/shard.txt). Commit the JSON when
# the sharding layer or the protocol hot path changes.
bench-shard:
	$(GO) run ./cmd/ringbench -figure shard

# Quick variant for CI: thinned measurement windows, throwaway output dir.
bench-shard-smoke:
	$(GO) run ./cmd/ringbench -figure shard -quick -out /tmp/accelring-bench-shard

# Replay one chaos seed: make chaos FAULTS_SEED=17
chaos:
	$(GO) test -v -run TestChaosRandomPlans ./internal/faults/chaos/

# Replay one cross-ring merge+migration chaos seed:
# make chaos-xring FAULTS_SEED=17
chaos-xring:
	$(GO) test -v -run TestXRingChaos ./internal/faults/chaos/

# End-to-end observability smoke: live 3-node ring, curl /metrics,
# /debug/health, /debug/msgtrace, /debug/flight and validate the output.
obs-smoke:
	./scripts/obs_smoke.sh

# Session-lifecycle soak: thousands of churning client sessions under
# steady ordered load, then a keyed (-ring-key) ring drained via SIGTERM.
soak-smoke:
	./scripts/soak_smoke.sh
