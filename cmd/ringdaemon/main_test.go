package main

import (
	"path/filepath"
	"testing"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("2=127.0.0.1:5002/127.0.0.1:6002, 3=host:5003/host:6003")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("peers = %v", peers)
	}
	if p := peers[2]; p.Data != "127.0.0.1:5002" || p.Token != "127.0.0.1:6002" {
		t.Fatalf("peer 2 = %+v", p)
	}
	if p := peers[3]; p.Data != "host:5003" || p.Token != "host:6003" {
		t.Fatalf("peer 3 = %+v", p)
	}
	// Empty spec is fine (singleton daemon).
	if peers, err := parsePeers(""); err != nil || len(peers) != 0 {
		t.Fatalf("empty spec: %v %v", peers, err)
	}
}

func TestParsePeersErrors(t *testing.T) {
	for _, spec := range []string{
		"nope",
		"x=1.2.3.4:1/1.2.3.4:2",
		"0=1.2.3.4:1/1.2.3.4:2",
		"2=1.2.3.4:1",
	} {
		if _, err := parsePeers(spec); err == nil {
			t.Errorf("parsePeers(%q) accepted", spec)
		}
	}
}

func TestListen(t *testing.T) {
	ln, err := listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if ln.Addr().Network() != "tcp" {
		t.Fatalf("network = %s", ln.Addr().Network())
	}
	sock := filepath.Join(t.TempDir(), "d.sock")
	uln, err := listen("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	defer uln.Close()
	if uln.Addr().Network() != "unix" {
		t.Fatalf("network = %s", uln.Addr().Network())
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing -id accepted")
	}
	if err := run([]string{"-id", "1", "-peers", "garbage"}); err == nil {
		t.Fatal("bad peers accepted")
	}
}
