// Command ringdaemon runs one ordering daemon: the ring protocol over UDP
// plus a TCP (or Unix-socket) listener for local clients, mirroring the
// deployment model of Spread and of the paper's daemon-based prototype.
//
// Example three-daemon deployment on one machine:
//
//	ringdaemon -id 1 -data 127.0.0.1:5001 -token 127.0.0.1:6001 -client 127.0.0.1:4801 \
//	  -peers "2=127.0.0.1:5002/127.0.0.1:6002,3=127.0.0.1:5003/127.0.0.1:6003"
//	ringdaemon -id 2 -data 127.0.0.1:5002 -token 127.0.0.1:6002 -client 127.0.0.1:4802 \
//	  -peers "1=127.0.0.1:5001/127.0.0.1:6001,3=127.0.0.1:5003/127.0.0.1:6003"
//	ringdaemon -id 3 -data 127.0.0.1:5003 -token 127.0.0.1:6003 -client 127.0.0.1:4803 \
//	  -peers "1=127.0.0.1:5001/127.0.0.1:6001,2=127.0.0.1:5002/127.0.0.1:6002"
//
// The daemons find each other through the membership algorithm; clients
// connect with the client library (see examples/chat).
//
// With -shards N every daemon runs N independent rings and routes each
// group to one of them by a stable hash of the group name (see README
// § "Multi-ring sharding"). Ring r listens on every base port +
// stride*r (-shard-stride, default 2), so all daemons must use the same
// -shards value and numeric ports with a gap of stride*N free above
// each base port.
//
// Wire-path tuning (see README § "Wire modes"): -mcast switches the
// data path to true IP multicast, -batch-send/-batch-recv coalesce
// datagrams into sendmmsg/recvmmsg calls, and -pack bundles small
// messages into shared frames under load.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"accelring/internal/daemon"
	"accelring/internal/evs"
	"accelring/internal/obs"
	"accelring/internal/pack"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
	"accelring/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ringdaemon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ringdaemon", flag.ContinueOnError)
	id := fs.Uint("id", 0, "participant ID (non-zero, unique per daemon)")
	dataAddr := fs.String("data", "127.0.0.1:5001", "UDP listen address for data messages")
	tokenAddr := fs.String("token", "127.0.0.1:6001", "UDP listen address for the token")
	clientAddr := fs.String("client", "127.0.0.1:4801", "TCP listen address for clients (or unix:PATH)")
	clientBatch := fs.Int("client-batch", 0, "pending frames one session writer drains into a single vectored write (0 = default 8, 1 = one write per frame)")
	peerSpec := fs.String("peers", "", "comma-separated peers: id=dataAddr/tokenAddr")
	original := fs.Bool("original", false, "run the original Ring protocol instead of the Accelerated Ring")
	personal := fs.Int("personal", 20, "personal window (messages per participant per round)")
	global := fs.Int("global", 160, "global window (messages per round, ring-wide)")
	accel := fs.Int("accelerated", 15, "accelerated window (post-token messages per round)")
	obsAddr := fs.String("obs", "", "serve /debug/vars, /debug/ring, /metrics, /debug/health and /debug/pprof on this address (e.g. :6060)")
	traceSample := fs.Int("trace-sample", 0, "sample every Nth sequence number for message-lifecycle tracing at /debug/msgtrace and latency attribution at /debug/latency (0 disables)")
	sloP99 := fs.Duration("slo-p99", 0, "p99 end-to-end latency target per ring; burn rate past -slo-burn flips the health slo_burn flag (0 disables; needs -obs and -trace-sample)")
	sloP999 := fs.Duration("slo-p999", 0, "p999 end-to-end latency target per ring (0 disables; needs -obs and -trace-sample)")
	sloBurn := fs.Float64("slo-burn", 0, "burn-rate factor at or above which an SLO scope is breaching (0 = default 1.0)")
	shards := fs.Int("shards", 1, "independent rings per daemon; ring r uses every base port + stride*r (numeric ports required)")
	stride := fs.Int("shard-stride", 2, "port gap between consecutive rings of a sharded daemon (all daemons must agree)")
	skipInterval := fs.Duration("skip-interval", 0, "cross-ring merge lambda-pacing tick: how often idle rings blocking the global order are skipped (0 = default 2ms; shards > 1 only)")
	skipAhead := fs.Uint64("skip-ahead", 0, "virtual slots each cross-ring skip claims past the blocked head (0 = merge default; shards > 1 only)")
	mcast := fs.String("mcast", "", "IPv4 multicast group for the data path, e.g. 239.1.1.7:5100 (empty keeps unicast fan-out; all daemons must agree)")
	mcastTTL := fs.Int("mcast-ttl", 1, "IP_MULTICAST_TTL for outgoing multicast data (1 = link-local)")
	mcastIf := fs.String("mcast-if", "", "network interface for multicast send/join (empty lets the kernel choose)")
	batchSend := fs.Int("batch-send", 0, "stage up to N data frames and send them in one sendmmsg call (0 disables)")
	batchRecv := fs.Int("batch-recv", 0, "drain up to N datagrams per recvmmsg call (0 disables)")
	packOn := fs.Bool("pack", false, "bundle small messages into shared frames under load (all daemons must agree)")
	packLimit := fs.Int("pack-limit", 0, "packed-frame size budget in bytes (0 = pack.DefaultLimit)")
	packDelay := fs.Duration("pack-delay", 0, "longest a message may wait in a partial bundle (0 = pack.DefaultMaxDelay)")
	ringKey := fs.String("ring-key", "", "shared secret authenticating ring wire frames and client sessions with HMAC-SHA256 (all daemons and clients must agree; empty disables)")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second, "graceful-drain budget on SIGINT/SIGTERM before hard stop")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == 0 {
		return fmt.Errorf("-id is required and must be non-zero")
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1")
	}
	if *stride < 1 {
		return fmt.Errorf("-shard-stride must be at least 1")
	}
	if *mcastTTL < 0 || *mcastTTL > 255 {
		return fmt.Errorf("-mcast-ttl must be in [0,255]")
	}
	if *batchSend < 0 || *batchSend > transport.MaxBatch || *batchRecv < 0 || *batchRecv > transport.MaxBatch {
		return fmt.Errorf("-batch-send/-batch-recv must be in [0,%d]", transport.MaxBatch)
	}
	if *traceSample < 0 {
		return fmt.Errorf("-trace-sample must be non-negative")
	}
	if *clientBatch < 0 {
		return fmt.Errorf("-client-batch must be non-negative")
	}
	if *skipInterval < 0 {
		return fmt.Errorf("-skip-interval must be non-negative")
	}

	var reg *obs.Registry
	var tracer *obs.RingTracer
	var srv *obs.Server
	var flight *obs.FlightRecorder
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewRingTracer(obs.DefaultTraceDepth)
		// The flight recorder is always on with -obs: it is a fixed-size
		// black box, cheap enough to leave running, dumped on SIGQUIT.
		flight = obs.NewFlightRecorder(0)
		var err error
		if srv, err = obs.StartServer(*obsAddr, reg); err != nil {
			return err
		}
		defer srv.Close()
		srv.AddTracer(fmt.Sprintf("daemon%d", *id), tracer)
		srv.AddFlight(fmt.Sprintf("daemon%d", *id), flight)
		log.Printf("observability: http://%s/debug/vars", srv.Addr())
	}

	peers, err := parsePeers(*peerSpec)
	if err != nil {
		return err
	}
	self := evs.ProcID(*id)
	newTransport := func(ring int) (transport.Transport, error) {
		listenAddrs, err := shiftPeer(transport.UDPPeer{Data: *dataAddr, Token: *tokenAddr}, *stride*ring)
		if err != nil {
			return nil, err
		}
		ringPeers := make(map[evs.ProcID]transport.UDPPeer, len(peers))
		for pid, p := range peers {
			if ringPeers[pid], err = shiftPeer(p, *stride*ring); err != nil {
				return nil, err
			}
		}
		var mc *transport.UDPMulticast
		if *mcast != "" {
			group := *mcast
			if *shards > 1 {
				// Each ring joins its own group address, same stride rule as
				// the unicast ports, so shards never see each other's data.
				if group, err = shiftPort(group, *stride*ring); err != nil {
					return nil, err
				}
			}
			mc = &transport.UDPMulticast{Group: group, TTL: *mcastTTL, Interface: *mcastIf}
		}
		udp, err := transport.NewUDP(transport.UDPConfig{
			Self:      self,
			Listen:    listenAddrs,
			Peers:     ringPeers,
			Batch:     transport.BatchConfig{Send: *batchSend, Recv: *batchRecv},
			Multicast: mc,
			Obs:       reg,
		})
		if err != nil {
			return nil, err
		}
		var tr transport.Transport = udp
		if *ringKey != "" {
			// Per-ring subkeys, matching the facade's WithRingKey rule, so
			// frames cannot be replayed across rings.
			sub := wire.DeriveKey([]byte(*ringKey), "ring"+strconv.Itoa(ring))
			tr = transport.WithAuth(tr, sub, reg, flight)
		}
		return tr, nil
	}

	dcfg := daemon.Config{Obs: reg, Flight: flight, Key: []byte(*ringKey), WriterBatch: *clientBatch}
	if *shards > 1 {
		dcfg.Shards = *shards
		dcfg.NewTransport = newTransport
		dcfg.SkipInterval = *skipInterval
		dcfg.SkipAhead = *skipAhead
		if *original {
			dcfg.Ring = ringnode.Original(self, nil, *personal, *global)
		} else {
			dcfg.Ring = ringnode.Accelerated(self, nil, *personal, *global, *accel)
		}
		if reg != nil {
			// ForRing derives per-ring labeled observers, tracers and
			// message tracers from this base; the per-ring tracers are
			// registered below. The flight recorder is shared — its events
			// carry the shard label.
			dcfg.Ring.Observer = &obs.RingObserver{
				Reg: reg, Tracer: tracer, Flight: flight,
				Msg: obs.NewMsgTracer(*traceSample, 0),
			}
		}
	} else {
		tr, err := newTransport(0)
		if err != nil {
			return err
		}
		if *original {
			dcfg.Ring = ringnode.Original(self, tr, *personal, *global)
		} else {
			dcfg.Ring = ringnode.Accelerated(self, tr, *personal, *global, *accel)
		}
		if reg != nil {
			mt := obs.NewMsgTracer(*traceSample, 0)
			dcfg.Ring.Observer = &obs.RingObserver{Reg: reg, Tracer: tracer, Flight: flight, Msg: mt}
			srv.AddMsgTracer(fmt.Sprintf("daemon%d", *id), mt)
		}
	}

	if *packOn {
		pc := pack.AdaptiveConfig{Limit: *packLimit, MaxDelay: *packDelay}
		if err := pc.Validate(); err != nil {
			return err
		}
		dcfg.Ring.Packing = &pc
	}

	ln, err := listen(*clientAddr)
	if err != nil {
		return err
	}
	dcfg.Listener = ln

	d, err := daemon.Start(dcfg)
	if err != nil {
		ln.Close()
		return err
	}
	if srv != nil && *shards > 1 {
		for r := 0; r < d.Shards(); r++ {
			if o := d.RingNode(r).Observer(); o != nil && o.Tracer != nil {
				srv.AddTracer(fmt.Sprintf("daemon%d.shard%d", *id, r), o.Tracer)
			}
			if mt := d.RingNode(r).Observer().MsgTracer(); mt != nil {
				srv.AddMsgTracer(fmt.Sprintf("daemon%d.shard%d", *id, r), mt)
			}
		}
	}

	var health *obs.Health
	if reg != nil {
		scopes := []string{""}
		if *shards > 1 {
			scopes = scopes[:0]
			for r := 0; r < d.Shards(); r++ {
				scopes = append(scopes, fmt.Sprintf("shard%d", r))
			}
		}
		// Latency attribution: fold each ring's sampled spans into
		// per-stage histograms under the ring's metric scope. With
		// -trace-sample 0 the tracers are nil and AddTracer no-ops, so
		// /debug/latency serves empty scopes at zero cost.
		lat := obs.NewLatencyAgg(reg)
		for r := 0; r < d.Shards(); r++ {
			scope := ""
			if *shards > 1 {
				scope = fmt.Sprintf("shard%d", r)
			}
			lat.AddTracer(scope, d.RingNode(r).Observer().MsgTracer())
		}
		srv.SetLatency(lat)
		var slo *obs.SLO
		if *sloP99 > 0 || *sloP999 > 0 {
			slo = obs.NewSLO(reg, obs.SLOConfig{
				TargetP99:  *sloP99,
				TargetP999: *sloP999,
				BurnFactor: *sloBurn,
			})
			for _, scope := range scopes {
				slo.Track(scope, lat.E2E(scope))
			}
		}
		health = obs.NewHealth(reg, obs.HealthConfig{
			Scopes:        scopes,
			RetransBudget: *global,
			Latency:       lat,
			SLO:           slo,
			Flight:        flight,
			OnChange: func(st obs.HealthStatus) {
				log.Printf("health: ring=%q healthy=%v token_stall=%v aru_stagnation=%v retrans_storm=%v slow_consumer=%v backpressure=%v merge_stall=%v slo_burn=%v",
					st.Ring, st.Healthy(), st.TokenStall, st.AruStagnation, st.RetransStorm, st.SlowConsumer, st.Backpressure, st.MergeStall, st.SLOBurn)
			},
		})
		health.Start()
		defer health.Close()
		srv.SetHealth(health)
	}
	proto := "accelerated"
	if *original {
		proto = "original"
	}
	wireMode := "unicast"
	if *mcast != "" {
		wireMode = "multicast " + *mcast
	}
	log.Printf("daemon %d up: protocol=%s shards=%d data=%s token=%s wire=%s batch=%d/%d pack=%v clients=%s peers=%d",
		*id, proto, d.Shards(), *dataAddr, *tokenAddr, wireMode, *batchSend, *batchRecv, *packOn, ln.Addr(), len(peers))

	go func() {
		for {
			time.Sleep(5 * time.Second)
			healthy := make(map[string]bool)
			for _, st := range health.Status() {
				healthy[st.Ring] = st.Healthy()
			}
			for r := 0; r < d.Shards(); r++ {
				st := d.RingNode(r).Status()
				line := fmt.Sprintf("ring=%d state=%v members=%v rounds=%d sent=%d delivered=%d retrans=%d",
					r, st.State, st.Ring, st.Engine.Rounds, st.Engine.Sent,
					st.Engine.Delivered, st.Engine.Retransmitted)
				if health != nil {
					scope := ""
					if *shards > 1 {
						scope = fmt.Sprintf("shard%d", r)
					}
					line += fmt.Sprintf(" healthy=%v", healthy[scope])
				}
				log.Print(line)
			}
		}
	}()

	// SIGQUIT dumps the black box (and keeps running, like a Java thread
	// dump); SIGINT/SIGTERM drain the client sessions — flush every
	// queue, hand out resumable Detach notices, emit the final ordered
	// leaves — then stop the ring.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
	for s := range sig {
		if s == syscall.SIGQUIT && flight != nil {
			path := fmt.Sprintf("ringdaemon-%d-flight.jsonl", *id)
			if err := flight.DumpFile(path); err != nil {
				log.Printf("flight dump failed: %v", err)
			} else {
				log.Printf("flight recorder dumped to %s (%d events recorded)", path, flight.Total())
			}
			continue
		}
		break
	}
	log.Printf("draining (budget %v)", *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	if err := d.Drain(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	cancel()
	log.Printf("shutting down")
	d.Stop()
	return nil
}

func listen(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

// shiftPeer derives one ring's addresses by adding `by` to both numeric
// ports, mirroring the facade's per-ring port rule.
func shiftPeer(p transport.UDPPeer, by int) (transport.UDPPeer, error) {
	var err error
	if p.Data, err = shiftPort(p.Data, by); err != nil {
		return p, err
	}
	p.Token, err = shiftPort(p.Token, by)
	return p, err
}

func shiftPort(addr string, by int) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("sharded address %q: %w", addr, err)
	}
	n, err := strconv.Atoi(port)
	if err != nil || n <= 0 {
		return "", fmt.Errorf("sharded address %q needs a nonzero numeric port", addr)
	}
	if n+by > 65535 {
		return "", fmt.Errorf("sharded address %q: port %d out of range", addr, n+by)
	}
	return net.JoinHostPort(host, strconv.Itoa(n+by)), nil
}

func parsePeers(spec string) (map[evs.ProcID]transport.UDPPeer, error) {
	peers := make(map[evs.ProcID]transport.UDPPeer)
	if spec == "" {
		return peers, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		idPart, addrs, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want id=dataAddr/tokenAddr)", entry)
		}
		pid, err := strconv.ParseUint(idPart, 10, 32)
		if err != nil || pid == 0 {
			return nil, fmt.Errorf("bad peer id %q", idPart)
		}
		data, token, ok := strings.Cut(addrs, "/")
		if !ok {
			return nil, fmt.Errorf("bad peer addresses %q (want dataAddr/tokenAddr)", addrs)
		}
		peers[evs.ProcID(pid)] = transport.UDPPeer{Data: data, Token: token}
	}
	return peers, nil
}
