// Command ringdaemon runs one ordering daemon: the ring protocol over UDP
// plus a TCP (or Unix-socket) listener for local clients, mirroring the
// deployment model of Spread and of the paper's daemon-based prototype.
//
// Example three-daemon deployment on one machine:
//
//	ringdaemon -id 1 -data 127.0.0.1:5001 -token 127.0.0.1:6001 -client 127.0.0.1:4801 \
//	  -peers "2=127.0.0.1:5002/127.0.0.1:6002,3=127.0.0.1:5003/127.0.0.1:6003"
//	ringdaemon -id 2 -data 127.0.0.1:5002 -token 127.0.0.1:6002 -client 127.0.0.1:4802 \
//	  -peers "1=127.0.0.1:5001/127.0.0.1:6001,3=127.0.0.1:5003/127.0.0.1:6003"
//	ringdaemon -id 3 -data 127.0.0.1:5003 -token 127.0.0.1:6003 -client 127.0.0.1:4803 \
//	  -peers "1=127.0.0.1:5001/127.0.0.1:6001,2=127.0.0.1:5002/127.0.0.1:6002"
//
// The daemons find each other through the membership algorithm; clients
// connect with the client library (see examples/chat).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"accelring/internal/daemon"
	"accelring/internal/evs"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ringdaemon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ringdaemon", flag.ContinueOnError)
	id := fs.Uint("id", 0, "participant ID (non-zero, unique per daemon)")
	dataAddr := fs.String("data", "127.0.0.1:5001", "UDP listen address for data messages")
	tokenAddr := fs.String("token", "127.0.0.1:6001", "UDP listen address for the token")
	clientAddr := fs.String("client", "127.0.0.1:4801", "TCP listen address for clients (or unix:PATH)")
	peerSpec := fs.String("peers", "", "comma-separated peers: id=dataAddr/tokenAddr")
	original := fs.Bool("original", false, "run the original Ring protocol instead of the Accelerated Ring")
	personal := fs.Int("personal", 20, "personal window (messages per participant per round)")
	global := fs.Int("global", 160, "global window (messages per round, ring-wide)")
	accel := fs.Int("accelerated", 15, "accelerated window (post-token messages per round)")
	obsAddr := fs.String("obs", "", "serve /debug/vars, /debug/ring and /debug/pprof on this address (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == 0 {
		return fmt.Errorf("-id is required and must be non-zero")
	}

	var reg *obs.Registry
	var tracer *obs.RingTracer
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewRingTracer(obs.DefaultTraceDepth)
		srv, err := obs.StartServer(*obsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		srv.AddTracer(fmt.Sprintf("daemon%d", *id), tracer)
		log.Printf("observability: http://%s/debug/vars", srv.Addr())
	}

	peers, err := parsePeers(*peerSpec)
	if err != nil {
		return err
	}
	tr, err := transport.NewUDP(transport.UDPConfig{
		Self:   evs.ProcID(*id),
		Listen: transport.UDPPeer{Data: *dataAddr, Token: *tokenAddr},
		Peers:  peers,
		Obs:    reg,
	})
	if err != nil {
		return err
	}

	var ringCfg ringnode.Config
	if *original {
		ringCfg = ringnode.Original(evs.ProcID(*id), tr, *personal, *global)
	} else {
		ringCfg = ringnode.Accelerated(evs.ProcID(*id), tr, *personal, *global, *accel)
	}
	if reg != nil {
		ringCfg.Observer = &obs.RingObserver{Reg: reg, Tracer: tracer}
	}

	ln, err := listen(*clientAddr)
	if err != nil {
		tr.Close()
		return err
	}

	d, err := daemon.Start(daemon.Config{Ring: ringCfg, Listener: ln, Obs: reg})
	if err != nil {
		ln.Close()
		return err
	}
	proto := "accelerated"
	if *original {
		proto = "original"
	}
	log.Printf("daemon %d up: protocol=%s data=%s token=%s clients=%s peers=%d",
		*id, proto, *dataAddr, *tokenAddr, ln.Addr(), len(peers))

	go func() {
		for {
			time.Sleep(5 * time.Second)
			st := d.Node().Status()
			log.Printf("state=%v ring=%v rounds=%d sent=%d delivered=%d retrans=%d",
				st.State, st.Ring, st.Engine.Rounds, st.Engine.Sent,
				st.Engine.Delivered, st.Engine.Retransmitted)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	d.Stop()
	return nil
}

func listen(addr string) (net.Listener, error) {
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		return net.Listen("unix", path)
	}
	return net.Listen("tcp", addr)
}

func parsePeers(spec string) (map[evs.ProcID]transport.UDPPeer, error) {
	peers := make(map[evs.ProcID]transport.UDPPeer)
	if spec == "" {
		return peers, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		idPart, addrs, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer %q (want id=dataAddr/tokenAddr)", entry)
		}
		pid, err := strconv.ParseUint(idPart, 10, 32)
		if err != nil || pid == 0 {
			return nil, fmt.Errorf("bad peer id %q", idPart)
		}
		data, token, ok := strings.Cut(addrs, "/")
		if !ok {
			return nil, fmt.Errorf("bad peer addresses %q (want dataAddr/tokenAddr)", addrs)
		}
		peers[evs.ProcID(pid)] = transport.UDPPeer{Data: data, Token: token}
	}
	return peers, nil
}
