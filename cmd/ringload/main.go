// Command ringload measures the real (wall-clock, UDP sockets, kernel
// scheduling) daemon stack end to end: client → daemon → ring → daemons →
// clients. By default it is self-contained: it spins up N daemons over UDP
// on loopback, attaches one sending and one receiving client per daemon
// (the paper's benchmark arrangement), offers load at a fixed rate, and
// reports goodput and delivery latency.
//
//	ringload -nodes 4 -rate 5000 -payload 1350 -duration 5s
//	ringload -nodes 4 -original            # baseline protocol
//	ringload -daemons 127.0.0.1:4801,127.0.0.1:4802   # external daemons
//	ringload -nodes 2 -shards 2 -migrate-every 500ms  # hot-group migration under load
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accelring/internal/client"
	"accelring/internal/daemon"
	"accelring/internal/evs"
	"accelring/internal/obs"
	"accelring/internal/pack"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ringload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ringload", flag.ContinueOnError)
	nodes := fs.Int("nodes", 4, "daemons to spawn in self-contained mode")
	rate := fs.Float64("rate", 5000, "aggregate injection rate, messages/second")
	payload := fs.Int("payload", 1350, "payload bytes per message (>= 8)")
	duration := fs.Duration("duration", 5*time.Second, "measurement duration")
	warmup := fs.Duration("warmup", time.Second, "warmup before measuring")
	original := fs.Bool("original", false, "use the original Ring protocol")
	safe := fs.Bool("safe", false, "use Safe delivery instead of Agreed")
	daemonsFlag := fs.String("daemons", "", "comma-separated client addresses of external daemons (skips self-contained setup)")
	churn := fs.Int("churn", 0, "churning sessions per daemon: each repeatedly connects, joins, sends, and disconnects for the whole run (session-lifecycle stress)")
	shards := fs.Int("shards", 1, "self-contained mode: independent rings per daemon with cross-ring merge (see README § Multi-ring sharding)")
	migrateEvery := fs.Duration("migrate-every", 0, "self-contained sharded mode: live-migrate the bench group to the next ring this often during the run, reporting the mean blackout (0 disables)")
	batch := fs.Int("batch", 0, "self-contained mode: sendmmsg/recvmmsg batch size for the daemons' UDP transports (0 disables)")
	packOn := fs.Bool("pack", false, "self-contained mode: bundle small messages into shared frames under load")
	fanout := fs.Int("fanout", 0, "fan-out mode: one daemon, one publisher, N subscriber sessions; reports frames/s and write syscalls/frame (ignores -nodes/-daemons)")
	clientBatch := fs.Int("client-batch", 0, "pending frames one session writer drains into a single vectored write (0 = default 8, 1 = one write per frame)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fanout < 0 || *clientBatch < 0 {
		return fmt.Errorf("-fanout and -client-batch must be non-negative")
	}
	if *fanout > 0 {
		return measureFanout(*fanout, *clientBatch, *rate, *payload, *warmup, *duration)
	}
	if *payload < 8 {
		return fmt.Errorf("-payload must be at least 8 (latency stamp)")
	}
	if *churn < 0 {
		return fmt.Errorf("-churn must be non-negative")
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1")
	}
	if *migrateEvery < 0 {
		return fmt.Errorf("-migrate-every must be non-negative")
	}
	if *migrateEvery > 0 && *shards < 2 {
		return fmt.Errorf("-migrate-every needs -shards >= 2 (a group can only migrate between rings)")
	}

	var addrs []string
	var locals []*daemon.Daemon
	if *daemonsFlag != "" {
		if *shards > 1 || *migrateEvery > 0 {
			return fmt.Errorf("-shards/-migrate-every apply to self-contained mode only")
		}
		addrs = strings.Split(*daemonsFlag, ",")
	} else {
		var stop func()
		var err error
		addrs, locals, stop, err = selfContained(*nodes, *shards, *original, *batch, *packOn)
		if err != nil {
			return err
		}
		defer stop()
	}

	// The migrator ping-pongs the bench group around the rings while the
	// measured load flows, so the reported latency distribution includes
	// the handoff blackouts (EXPERIMENTS § migrating a hot group).
	var migStop chan struct{}
	var migWG sync.WaitGroup
	var migCount atomic.Int64
	var migBlackout atomic.Int64 // cumulative ns spent inside Migrate
	if *migrateEvery > 0 {
		migStop = make(chan struct{})
		migWG.Add(1)
		go func() {
			defer migWG.Done()
			tick := time.NewTicker(*migrateEvery)
			defer tick.Stop()
			for {
				select {
				case <-migStop:
					return
				case <-tick.C:
					target := (locals[0].RingOfGroup("bench") + 1) % *shards
					start := time.Now()
					if err := locals[0].Migrate("bench", target); err != nil {
						fmt.Fprintf(os.Stderr, "migrate to ring %d: %v\n", target, err)
						continue
					}
					migBlackout.Add(int64(time.Since(start)))
					migCount.Add(1)
				}
			}
		}()
	}

	svc := evs.Agreed
	if *safe {
		svc = evs.Safe
	}
	err := measure(addrs, *rate, *payload, svc, *warmup, *duration, *churn)
	if migStop != nil {
		close(migStop)
		migWG.Wait()
		if n := migCount.Load(); n > 0 {
			fmt.Printf("migrations: %d (every %v), mean blackout %v\n",
				n, *migrateEvery, (time.Duration(migBlackout.Load()) / time.Duration(n)).Round(time.Microsecond))
		}
	}
	return err
}

// selfContained spins up n daemons over UDP loopback — each running
// `shards` independent rings when shards > 1 — and returns their client
// addresses, the daemons themselves, and a stop function.
func selfContained(n, shards int, original bool, batch int, packOn bool) ([]string, []*daemon.Daemon, func(), error) {
	// transports[i][r] is daemon i's endpoint on ring r; every ring is its
	// own fully cross-wired UDP mesh.
	transports := make([][]*transport.UDP, n)
	for i := range transports {
		transports[i] = make([]*transport.UDP, shards)
		for r := range transports[i] {
			u, err := transport.NewUDP(transport.UDPConfig{
				Self:   evs.ProcID(i + 1),
				Listen: transport.UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"},
				Batch:  transport.BatchConfig{Send: batch, Recv: batch},
			})
			if err != nil {
				return nil, nil, nil, err
			}
			transports[i][r] = u
		}
	}
	for i := range transports {
		for r, u := range transports[i] {
			for j := range transports {
				if i != j {
					if err := u.AddPeer(evs.ProcID(j+1), transports[j][r].LocalAddrs()); err != nil {
						return nil, nil, nil, err
					}
				}
			}
		}
	}
	daemons := make([]*daemon.Daemon, n)
	addrs := make([]string, n)
	for i := range daemons {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, err
		}
		var ringCfg ringnode.Config
		var ringTr transport.Transport
		if shards == 1 {
			ringTr = transports[i][0]
		}
		if original {
			ringCfg = ringnode.Original(evs.ProcID(i+1), ringTr, 20, 160)
		} else {
			ringCfg = ringnode.Accelerated(evs.ProcID(i+1), ringTr, 20, 160, 15)
		}
		if packOn {
			ringCfg.Packing = &pack.AdaptiveConfig{}
		}
		dcfg := daemon.Config{Ring: ringCfg, Listener: ln}
		if shards > 1 {
			mine := transports[i]
			dcfg.Shards = shards
			dcfg.NewTransport = func(ring int) (transport.Transport, error) {
				return mine[ring], nil
			}
		}
		d, err := daemon.Start(dcfg)
		if err != nil {
			return nil, nil, nil, err
		}
		daemons[i] = d
		addrs[i] = ln.Addr().String()
	}
	for i, d := range daemons {
		if !d.WaitOperational(15 * time.Second) {
			return nil, nil, nil, fmt.Errorf("daemon %d did not become operational", i+1)
		}
	}
	fmt.Fprintf(os.Stderr, "self-contained: %d daemons x %d rings over UDP, ring 0 %v\n",
		n, shards, daemons[0].RingNode(0).Status().Ring)
	stop := func() {
		for _, d := range daemons {
			d.Stop()
		}
	}
	return addrs, daemons, stop, nil
}

// measureFanout is the daemon fan-out figure: one self-contained daemon,
// one publisher, and subs subscriber sessions in one group. The publisher
// multicasts at rate for duration; the daemon's own counters report how
// many write syscalls the encode-once batched writers spent per delivered
// frame.
func measureFanout(subs, clientBatch int, rate float64, payloadBytes int,
	warmup, duration time.Duration) error {
	if payloadBytes < 8 {
		return fmt.Errorf("-payload must be at least 8 (latency stamp)")
	}
	u, err := transport.NewUDP(transport.UDPConfig{
		Self:   1,
		Listen: transport.UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	d, err := daemon.Start(daemon.Config{
		Ring:        ringnode.Accelerated(1, u, 20, 160, 15),
		Listener:    ln,
		Obs:         reg,
		WriterBatch: clientBatch,
	})
	if err != nil {
		return err
	}
	defer d.Stop()
	if !d.WaitOperational(15 * time.Second) {
		return fmt.Errorf("daemon did not become operational")
	}

	const groupName = "fan"
	var delivered atomic.Int64
	var lastLat atomic.Int64 // most recent delivery latency, ns
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		rc, err := client.Dial("tcp", ln.Addr().String(), fmt.Sprintf("sub%d", i))
		if err != nil {
			return err
		}
		defer rc.Close()
		if err := rc.Join(groupName); err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range rc.Events() {
				if m, ok := ev.(*client.Message); ok && len(m.Payload) >= 8 {
					delivered.Add(1)
					sent := int64(binary.BigEndian.Uint64(m.Payload))
					lastLat.Store(time.Now().UnixNano() - sent)
				}
			}
		}()
	}
	pub, err := client.Dial("tcp", ln.Addr().String(), "pub")
	if err != nil {
		return err
	}
	defer pub.Close()

	fmt.Fprintf(os.Stderr, "fan-out: 1 publisher -> %d subscribers, batch=%d\n", subs, clientBatch)
	// Warm up, then snapshot the counters around the measured window.
	interval := time.Duration(float64(time.Second) / rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	buf := make([]byte, payloadBytes)
	send := func() error {
		binary.BigEndian.PutUint64(buf, uint64(time.Now().UnixNano()))
		return pub.Multicast(evs.Agreed, append([]byte(nil), buf...), groupName)
	}
	warmEnd := time.Now().Add(warmup)
	for time.Now().Before(warmEnd) {
		<-ticker.C
		if err := send(); err != nil {
			return err
		}
	}
	startFrames := reg.Counter("daemon.writer_frames").Value()
	startFlushes := reg.Counter("daemon.writer_flushes").Value()
	startDelivered := delivered.Load()
	startEnc := reg.Counter("daemon.fanout_encodes").Value()
	start := time.Now()
	end := start.Add(duration)
	sent := 0
	for time.Now().Before(end) {
		<-ticker.C
		if err := send(); err != nil {
			return err
		}
		sent++
	}
	time.Sleep(200 * time.Millisecond) // let the tail drain
	elapsed := time.Since(start).Seconds()
	frames := reg.Counter("daemon.writer_frames").Value() - startFrames
	flushes := reg.Counter("daemon.writer_flushes").Value() - startFlushes
	got := delivered.Load() - startDelivered
	encodes := reg.Counter("daemon.fanout_encodes").Value() - startEnc

	fmt.Printf("fanout=%d payload=%dB offered=%.0f msg/s over %v\n", subs, payloadBytes, rate, duration)
	fmt.Printf("delivered: %.0f frames/s to subscribers (%d total, %d sent)\n",
		float64(got)/elapsed, got, sent)
	if frames > 0 {
		fmt.Printf("writer: %d frames in %d flushes = %.3f write syscalls/frame (batch avg %.1f)\n",
			frames, flushes, float64(flushes)/float64(frames), float64(frames)/float64(flushes))
	}
	if encodes > 0 {
		fmt.Printf("encode-once: %d encodes for %d deliveries = %.1f deliveries/encode\n",
			encodes, got, float64(got)/float64(encodes))
	}
	fmt.Printf("latency (last sample): %v\n", time.Duration(lastLat.Load()).Round(time.Microsecond))
	return nil
}

// measure attaches a sender and a receiver client per daemon, offers load,
// and reports results.
func measure(addrs []string, rate float64, payloadBytes int, svc evs.Service,
	warmup, duration time.Duration, churn int) error {
	const groupName = "bench"
	n := len(addrs)

	// Receivers: every receiver joins the group and records latencies.
	var mu sync.Mutex
	var lats []time.Duration
	var delivered int
	var receivers []*client.Client
	var wg sync.WaitGroup
	measStart := time.Now().Add(warmup)
	measEnd := measStart.Add(duration)
	for _, addr := range addrs {
		rc, err := client.Dial("tcp", addr, "recv")
		if err != nil {
			return err
		}
		defer rc.Close()
		receivers = append(receivers, rc)
		if err := rc.Join(groupName); err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range rc.Events() {
				m, ok := ev.(*client.Message)
				if !ok || len(m.Payload) < 8 {
					continue
				}
				sent := time.Unix(0, int64(binary.BigEndian.Uint64(m.Payload)))
				now := time.Now()
				if sent.Before(measStart) || !sent.Before(measEnd) {
					continue
				}
				mu.Lock()
				lats = append(lats, now.Sub(sent))
				delivered++
				mu.Unlock()
			}
		}()
	}

	// Senders: one per daemon at rate/n messages per second.
	stopSend := make(chan struct{})
	var senders sync.WaitGroup
	perSender := rate / float64(n)
	for _, addr := range addrs {
		sc, err := client.Dial("tcp", addr, "send")
		if err != nil {
			return err
		}
		defer sc.Close()
		senders.Add(1)
		go func(sc *client.Client) {
			defer senders.Done()
			interval := time.Duration(float64(time.Second) / perSender)
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			buf := make([]byte, payloadBytes)
			for {
				select {
				case <-stopSend:
					return
				case <-ticker.C:
					binary.BigEndian.PutUint64(buf, uint64(time.Now().UnixNano()))
					payload := append([]byte(nil), buf...)
					if err := sc.Multicast(svc, payload, groupName); err != nil {
						return
					}
				}
			}
		}(sc)
	}

	// Churners: short-lived sessions cycling connect → join → send →
	// disconnect for the whole run, stressing the daemon's session
	// lifecycle (ordered joins/leaves, outbox setup/teardown) alongside
	// the steady load.
	var churned atomic.Int64
	var churners sync.WaitGroup
	for ci := 0; ci < churn*n; ci++ {
		churners.Add(1)
		go func(ci int) {
			defer churners.Done()
			addr := addrs[ci%n]
			g := fmt.Sprintf("churn-%d", ci%8)
			msg := make([]byte, 64)
			for {
				select {
				case <-stopSend:
					return
				default:
				}
				cc, err := client.Dial("tcp", addr, "churn")
				if err != nil {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				if cc.Join(g) == nil && cc.Multicast(evs.Agreed, msg, g) == nil {
					churned.Add(1)
				}
				cc.Close()
			}
		}(ci)
	}

	time.Sleep(warmup + duration + 500*time.Millisecond)
	close(stopSend)
	senders.Wait()
	churners.Wait()
	for _, rc := range receivers {
		rc.Close()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(lats) == 0 {
		return fmt.Errorf("no deliveries measured")
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	mean := sum / time.Duration(len(lats))
	p50 := lats[len(lats)/2]
	p99 := lats[len(lats)*99/100]
	// Goodput: distinct messages = deliveries / receivers.
	msgs := float64(delivered) / float64(n)
	goodput := msgs * float64(payloadBytes) * 8 / duration.Seconds() / 1e6

	fmt.Printf("service=%v payload=%dB offered=%.0f msg/s over %v\n", svc, payloadBytes, rate, duration)
	fmt.Printf("ordered: %.0f msg/s (%.1f Mbps goodput)\n", msgs/duration.Seconds(), goodput)
	fmt.Printf("latency: mean=%v p50=%v p99=%v max=%v (n=%d deliveries)\n",
		mean.Round(time.Microsecond), p50.Round(time.Microsecond),
		p99.Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond), len(lats))
	if churn > 0 {
		total := churned.Load()
		fmt.Printf("churn: %d sessions cycled (%.0f /s across %d churners)\n",
			total, float64(total)/(warmup+duration).Seconds(), churn*n)
	}
	return nil
}
