// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document on stdout, so benchmark baselines can be committed
// and diffed (see `make bench-baseline`).
//
// Each benchmark line
//
//	BenchmarkHandleData-8   8694354   137.9 ns/op   10.02 GB/s   0 B/op   0 allocs/op
//
// becomes one record carrying the benchmark name (GOMAXPROCS suffix
// stripped), iteration count, and a metric map keyed by unit. Package
// clauses ("pkg: ...") scope the records that follow; goos/goarch/cpu
// lines are captured once as environment metadata.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Pkg     string             `json:"pkg"`
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

type doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	var out doc
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Pkg = pkg
				out.Benchmarks = append(out.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parseBench(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	r := record{Name: name, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return record{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
