// Command ringtop is a live terminal console over the observability
// endpoints of one or more ringdaemons: it polls /debug/vars,
// /debug/latency and /debug/health on every node and renders one screen
// per refresh — rings with their sequence/merge frontiers, outbox
// backpressure tiers, syscall rates, per-stage latency attribution and
// SLO burn — the "where is the tail coming from" view the paper's
// latency experiments need.
//
//	ringtop -nodes 127.0.0.1:6060,127.0.0.1:6061
//	ringtop -nodes 127.0.0.1:6060 -once        # one snapshot (CI, scripts)
//
// Each address is a daemon's -obs endpoint. Latency columns appear when
// the daemons run with -trace-sample, SLO columns when they also set
// -slo-p99/-slo-p999.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"regexp"
	"sort"
	"strings"
	"time"

	"accelring/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ringtop:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ringtop", flag.ContinueOnError)
	nodesFlag := fs.String("nodes", "", "comma-separated daemon -obs addresses (host:port)")
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	once := fs.Bool("once", false, "print a single snapshot and exit (no screen clearing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodesFlag == "" {
		return fmt.Errorf("-nodes is required (comma-separated host:port of daemon -obs endpoints)")
	}
	if *interval <= 0 {
		return fmt.Errorf("-interval must be positive")
	}
	var nodes []*nodeState
	for _, a := range strings.Split(*nodesFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			nodes = append(nodes, &nodeState{addr: a})
		}
	}
	if len(nodes) == 0 {
		return fmt.Errorf("-nodes contained no addresses")
	}

	client := &http.Client{Timeout: 3 * time.Second}
	poll := func() {
		for _, n := range nodes {
			n.poll(client)
		}
	}
	poll()
	if *once {
		fmt.Print(render(nodes))
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		// Home + clear-to-end keeps the screen from flickering the way a
		// full erase would.
		fmt.Print("\x1b[H\x1b[2J" + render(nodes))
		select {
		case <-sig:
			return nil
		case <-tick.C:
			poll()
		}
	}
}

// nodeState is one daemon's latest poll plus the previous counters for
// rate computation.
type nodeState struct {
	addr string
	err  error

	vars    map[string]any
	latency []obs.LatencyScopeSnapshot
	health  []obs.HealthStatus
	at      time.Time

	prevVars map[string]any
	prevAt   time.Time
}

func (n *nodeState) poll(client *http.Client) {
	n.prevVars, n.prevAt = n.vars, n.at
	n.vars, n.latency, n.health, n.err = nil, nil, nil, nil
	n.at = time.Now()

	if err := getJSON(client, n.addr, "/debug/vars", &n.vars); err != nil {
		n.err = err
		return
	}
	// Latency and health 404 until attached; treat those as "not
	// configured", not as node failure.
	_ = getJSON(client, n.addr, "/debug/latency", &n.latency)
	_ = getJSON(client, n.addr, "/debug/health", &n.health)
}

func getJSON(client *http.Client, addr, path string, v any) error {
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// num reads one numeric metric from a vars snapshot (counters and gauges
// decode as float64); missing or non-numeric names read as 0.
func num(vars map[string]any, name string) float64 {
	if f, ok := vars[name].(float64); ok {
		return f
	}
	return 0
}

// scopedName prefixes base with a ring scope, the registry convention
// ("" -> base, "shard0" -> "shard0.base").
func scopedName(scope, base string) string {
	if scope == "" {
		return base
	}
	return scope + "." + base
}

var shardScopeRe = regexp.MustCompile(`^(shard\d+)\.`)

// scopesOf discovers the ring scopes a node exports: health statuses and
// latency digests name theirs, and any shardN.-prefixed metric implies
// one. A node with no shard prefixes is one unscoped ring.
func scopesOf(n *nodeState) []string {
	set := map[string]bool{}
	for _, st := range n.health {
		set[st.Ring] = true
	}
	for _, sc := range n.latency {
		set[sc.Scope] = true
	}
	for name := range n.vars {
		if m := shardScopeRe.FindStringSubmatch(name); m != nil {
			set[m[1]] = true
		}
	}
	if len(set) == 0 {
		set[""] = true
	}
	scopes := make([]string, 0, len(set))
	for s := range set {
		scopes = append(scopes, s)
	}
	sort.Strings(scopes)
	return scopes
}

func render(nodes []*nodeState) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ringtop  %s  %d node(s)\n", time.Now().Format("15:04:05"), len(nodes))
	for _, n := range nodes {
		b.WriteByte('\n')
		renderNode(&b, n)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *nodeState) {
	if n.err != nil {
		fmt.Fprintf(b, "node %s  UNREACHABLE: %v\n", n.addr, n.err)
		return
	}
	v := n.vars
	fmt.Fprintf(b, "node %s  up %s  clients %.0f (spill %.0f, throttle %.0f)  tx_sys %s  rx_sys %s  batch_wait p99 %s\n",
		n.addr,
		(time.Duration(num(v, "uptime_seconds")) * time.Second).String(),
		num(v, "daemon.clients"), num(v, "daemon.clients_spilling"), num(v, "daemon.clients_throttled"),
		n.rate("transport.udp.tx_syscalls"), n.rate("transport.udp.rx_syscalls"),
		histP99(v, "transport.udp.batch_wait_ns"))

	lat := map[string]obs.LatencyScopeSnapshot{}
	for _, sc := range n.latency {
		lat[sc.Scope] = sc
	}
	health := map[string]obs.HealthStatus{}
	for _, st := range n.health {
		health[st.Ring] = st
	}

	fmt.Fprintf(b, "  %-8s %12s %10s %10s %9s %9s %9s %12s %8s  %s\n",
		"RING", "SEQ", "ROUNDS", "FRONTIER", "E2E p50", "E2E p99", "HOT STAGE", "SLO p99-burn", "BREACH", "HEALTH")
	for _, scope := range scopesOf(n) {
		name := scope
		if name == "" {
			name = "ring"
		}
		seq := num(v, scopedName(scope, "ring.seq"))
		rounds := num(v, scopedName(scope, "ring.rounds"))
		frontier := "-"
		if f, ok := v[scopedName(scope, "merge.frontier")].(float64); ok {
			frontier = fmt.Sprintf("%.0f", f)
		}
		p50, p99, hot := "-", "-", "-"
		if sc, ok := lat[scope]; ok && sc.E2E.Count > 0 {
			p50 = fmtNs(sc.E2E.P50Ns)
			p99 = fmtNs(sc.E2E.P99Ns)
			hot = hotStage(sc)
		}
		burn, breach := "-", "-"
		if st, ok := health[scope]; ok && st.SLOP99Burn > 0 {
			burn = fmt.Sprintf("%.2f", st.SLOP99Burn)
		}
		if bg, ok := v[scopedName(scope, "slo.breach")].(float64); ok {
			breach = map[bool]string{false: "no", true: "YES"}[bg != 0]
		}
		fmt.Fprintf(b, "  %-8s %12.0f %10.0f %10s %9s %9s %9s %12s %8s  %s\n",
			name, seq, rounds, frontier, p50, p99, hot, burn, breach, healthFlags(health, scope))
	}
}

// rate renders a counter as a per-second rate against the previous poll,
// or the running total (prefixed Σ) on the first one.
func (n *nodeState) rate(name string) string {
	cur := num(n.vars, name)
	if n.prevVars == nil || n.at.Sub(n.prevAt) <= 0 {
		return "Σ" + fmtCount(cur)
	}
	dt := n.at.Sub(n.prevAt).Seconds()
	return fmtCount((cur-num(n.prevVars, name))/dt) + "/s"
}

// histP99 digs the p99 out of a histogram's JSON snapshot (bucket
// upper-bound estimate, same as the server side computes).
func histP99(vars map[string]any, name string) string {
	h, ok := vars[name].(map[string]any)
	if !ok {
		return "-"
	}
	count, _ := h["count"].(float64)
	if count == 0 {
		return "-"
	}
	buckets, _ := h["buckets"].([]any)
	target := count * 0.99
	var cum float64
	for _, raw := range buckets {
		bk, ok := raw.(map[string]any)
		if !ok {
			continue
		}
		c, _ := bk["n"].(float64)
		cum += c
		if cum >= target {
			le, _ := bk["le"].(float64)
			return fmtNs(le)
		}
	}
	return "-"
}

// hotStage names the stage holding the largest share of attributed time.
func hotStage(sc obs.LatencyScopeSnapshot) string {
	best, bestSum := "-", 0.0
	for name, st := range sc.Stages {
		if st.SumNs > bestSum {
			best, bestSum = name, st.SumNs
		}
	}
	if bestSum > 0 && sc.StageSumNs > 0 {
		return fmt.Sprintf("%s %.0f%%", best, 100*bestSum/sc.StageSumNs)
	}
	return best
}

func healthFlags(health map[string]obs.HealthStatus, scope string) string {
	st, ok := health[scope]
	if !ok {
		return "-"
	}
	if st.Healthy() {
		return "ok"
	}
	var flags []string
	for name, on := range map[string]bool{
		"token_stall": st.TokenStall, "aru_stagnation": st.AruStagnation,
		"retrans_storm": st.RetransStorm, "slow_consumer": st.SlowConsumer,
		"backpressure": st.Backpressure, "merge_stall": st.MergeStall,
		"slo_burn": st.SLOBurn,
	} {
		if on {
			flags = append(flags, name)
		}
	}
	sort.Strings(flags)
	return strings.Join(flags, ",")
}

func fmtNs(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

func fmtCount(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
