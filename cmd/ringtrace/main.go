// Command ringtrace reproduces the paper's Figure 1: the execution
// schedule of three participants sending twenty messages under the
// original and the Accelerated Ring protocol (Personal window 5,
// Accelerated window 3). It prints an ASCII timeline per variant —
// message sequence numbers at their send instants, '*' marking the token
// send — followed by the event table. Under the accelerated protocol the
// token visibly departs after two of each participant's five sends, and
// the whole 20-message run finishes earlier.
//
// With -faults it instead runs the same simulated cluster under a
// seed-replayable fault plan (loss, bursty loss, duplication, delay) and
// prints the per-rule injection counters next to the protocol's recovery
// counters — a quick view of how much damage the retransmission machinery
// absorbed.
//
// With -follow it runs the cluster with message-lifecycle tracing on
// every node and merges the sampled spans across the cluster: because
// sampling is deterministic in the sequence number, every node records
// the same messages, and the merged span shows one message's submit,
// pre/post-token multicast, first receive, retransmissions and delivery
// at every node on one virtual-time axis, ending in the end-to-end
// ordering latency.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"accelring/internal/bench"
	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/obs"
	"accelring/internal/simnet"
	"accelring/internal/simproc"
	"accelring/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ringtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ringtrace", flag.ContinueOnError)
	table := fs.Bool("table", false, "also print the full event table")
	width := fs.Int("width", 100, "timeline width in columns")
	withFaults := fs.Bool("faults", false, "run the cluster under an injected fault plan instead")
	follow := fs.Bool("follow", false, "trace sampled message lifecycles across the cluster instead")
	sample := fs.Int("sample", 10, "with -follow: sample every Nth sequence number")
	seed := fs.Int64("seed", 1, "fault plan seed (with -faults)")
	nodes := fs.Int("nodes", 4, "cluster size (with -faults/-follow)")
	msgs := fs.Int("msgs", 200, "messages per node (with -faults/-follow)")
	obsAddr := fs.String("obs", "", "with -faults: serve the run's metrics and round traces on this address afterwards (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *withFaults {
		return runFaults(*seed, *nodes, *msgs, *obsAddr)
	}
	if *follow {
		return runFollow(*nodes, *msgs, *sample)
	}

	for _, variant := range []struct {
		name  string
		accel bool
	}{{"original Ring protocol", false}, {"Accelerated Ring protocol", true}} {
		events, err := bench.Fig1Trace(variant.accel)
		if err != nil {
			return err
		}
		fmt.Printf("== %s ==\n", variant.name)
		fmt.Print(renderTimeline(events, *width))
		fmt.Println()
	}
	fmt.Println("legend: digits = data message seq at its send instant, * = token send")
	fmt.Println("        (A sends 1-5 then 16-20, B sends 6-10, C sends 11-15; PW=5, AW=3)")

	if *table {
		s := &bench.Suite{Quick: true}
		tbl, err := s.Figure("fig1")
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(tbl.Format())
	}
	return nil
}

// runFaults drives the Accelerated Ring cluster through a fixed fault
// plan in virtual time and reports per-rule injection counters alongside
// the engines' recovery counters.
func runFaults(seed int64, nodes, msgs int, obsAddr string) error {
	var plan faults.Plan
	plan.Add(faults.Rule{Name: "iid-loss", Classes: faults.ClassData,
		Model: faults.Loss{P: 0.05}})
	plan.Add(faults.Rule{Name: "burst-loss", To: 2, Classes: faults.ClassData,
		Model: &faults.GilbertElliott{PGoodBad: 0.02, PBadGood: 0.3, LossBad: 0.8}})
	plan.Add(faults.Rule{Name: "dup", Model: faults.Duplicate{P: 0.02}})
	plan.Add(faults.Rule{Name: "jitter",
		Model: faults.Delay{Max: 200 * time.Microsecond}})
	inj := faults.New(seed, plan)

	// With -obs, observe node 0 (metrics + round traces). The observer's
	// Clock stays nil so the simulation remains deterministic.
	var reg *obs.Registry
	var tracer *obs.RingTracer
	opts := simproc.AcceleratedOptions(
		simnet.GigabitFabric(nodes), simproc.Daemon(), 20, 200, 10)
	if obsAddr != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewRingTracer(obs.DefaultTraceDepth)
		inj.PublishTo(reg)
		opts.Observer = func(node int) *obs.RingObserver {
			if node != 0 {
				return nil
			}
			return &obs.RingObserver{Reg: reg, Tracer: tracer}
		}
	}

	c, err := simproc.NewCluster(opts)
	if err != nil {
		return err
	}
	c.Net.SetInjector(inj, nil)

	delivered := make([]int, nodes)
	c.SetDeliverHook(func(node simnet.NodeID, m evs.Message, at simnet.Time) {
		delivered[node]++
	})
	for _, n := range c.Nodes {
		for i := 0; i < msgs; i++ {
			n.Submit(make([]byte, 1350), evs.Agreed)
		}
	}
	c.Sim.RunUntil(30 * simnet.Second)

	fmt.Printf("== Accelerated Ring, %d nodes, %d msgs/node, fault seed %d ==\n\n",
		nodes, msgs, seed)
	fmt.Print(stats.FormatFaults(inj.Counters()))
	fmt.Println()
	total := nodes * msgs
	ok := true
	for i, n := range c.Nodes {
		cnt := n.Engine().Counters()
		fmt.Printf("node %d: delivered=%d/%d retransmitted=%d rtr-requests=%d dup-data-dropped=%d dup-tokens-dropped=%d\n",
			i+1, delivered[i], total, cnt.Retransmitted, cnt.Requested,
			cnt.DataDropped, cnt.TokensDropped)
		if delivered[i] != total {
			ok = false
		}
	}
	netStats := c.Net.Stats()
	fmt.Printf("\nswitch: injected drops=%d dups=%d delays=%d\n",
		netStats.FilterDrops, netStats.InjectedDups, netStats.InjectedDelays)
	if !ok {
		return fmt.Errorf("not all messages delivered; replay with -faults -seed %d", seed)
	}
	fmt.Println("all messages delivered everywhere in total order despite injected faults")

	if reg != nil {
		srv, err := obs.StartServer(obsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		srv.AddTracer("node1", tracer)
		fmt.Printf("\nrun metrics at http://%s/debug/vars and /debug/ring (Ctrl-C to exit)\n", srv.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
	return nil
}

// runFollow runs the simulated cluster with deterministic message
// sampling on every node and prints the merged cross-node span per
// sampled message. The observers' clock is derived from the simulation,
// so the run stays deterministic and the timestamps are exact virtual
// times.
func runFollow(nodes, msgs, sample int) error {
	if sample < 1 {
		return fmt.Errorf("-sample must be at least 1")
	}
	opts := simproc.AcceleratedOptions(
		simnet.GigabitFabric(nodes), simproc.Daemon(), 20, 200, 10)
	tracers := make([]*obs.MsgTracer, nodes)
	for i := range tracers {
		// Deep enough to keep every stage of every sampled message.
		tracers[i] = obs.NewMsgTracer(sample, 8*msgs*nodes/sample+64)
	}
	var cl *simproc.Cluster
	clock := func() time.Time {
		if cl == nil {
			return time.Unix(0, 0)
		}
		return time.Unix(0, int64(cl.Sim.Now()))
	}
	opts.Observer = func(node int) *obs.RingObserver {
		return &obs.RingObserver{Msg: tracers[node], Clock: clock}
	}
	c, err := simproc.NewCluster(opts)
	if err != nil {
		return err
	}
	cl = c
	for _, n := range c.Nodes {
		for i := 0; i < msgs; i++ {
			n.Submit(make([]byte, 1350), evs.Agreed)
		}
	}
	c.Sim.RunUntil(30 * simnet.Second)

	// Merge: the same seqs are sampled everywhere, so spans group by seq.
	// Each span keeps the earliest cluster-wide time per lifecycle
	// milestone, in pipeline order; milestones no node produced (no
	// packing, no daemon fan-out, no client tracer) render as columns only
	// when at least one span has them, so the table stays compact on a
	// bare ring and grows the daemon/client stages when they exist.
	milestones := []struct {
		name   string
		stages []obs.MsgStage
	}{
		{"pack", []obs.MsgStage{obs.StagePack}},
		{"submit", []obs.MsgStage{obs.StageSubmit}},
		{"sent", []obs.MsgStage{obs.StageSentPre, obs.StageSentPost}},
		{"batch-flush", []obs.MsgStage{obs.StageBatchFlush}},
		{"first-recv", []obs.MsgStage{obs.StageRecv}},
		{"merge", []obs.MsgStage{obs.StageMergeOut}},
		{"fanout", []obs.MsgStage{obs.StageFanout}},
		{"writer", []obs.MsgStage{obs.StageWriterFlush}},
		{"client", []obs.MsgStage{obs.StageClientRecv}},
	}
	slot := make(map[obs.MsgStage]int)
	for i, m := range milestones {
		for _, s := range m.stages {
			slot[s] = i
		}
	}
	type span struct {
		at                       []time.Time // earliest per milestone
		lastDeliver              time.Time
		recvs, delivers, retrans int
	}
	spans := make(map[uint64]*span)
	var seqs []uint64
	for _, t := range tracers {
		for _, ev := range t.Snapshot(0) {
			sp := spans[ev.Seq]
			if sp == nil {
				sp = &span{at: make([]time.Time, len(milestones))}
				spans[ev.Seq] = sp
				seqs = append(seqs, ev.Seq)
			}
			if i, ok := slot[ev.Stage]; ok {
				if sp.at[i].IsZero() || ev.At.Before(sp.at[i]) {
					sp.at[i] = ev.At
				}
			}
			switch ev.Stage {
			case obs.StageRecv:
				sp.recvs++
			case obs.StageRetransmit:
				sp.retrans++
			case obs.StageDeliver:
				sp.delivers++
				if ev.At.After(sp.lastDeliver) {
					sp.lastDeliver = ev.At
				}
			}
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	present := make([]bool, len(milestones))
	for _, sp := range spans {
		for i := range milestones {
			if !sp.at[i].IsZero() {
				present[i] = true
			}
		}
	}

	fmt.Printf("== message lifecycle, %d nodes, %d msgs/node, sampling 1/%d ==\n\n",
		nodes, msgs, sample)
	fmt.Printf("%8s", "seq")
	for i, m := range milestones {
		if present[i] {
			fmt.Printf("  %12s", m.name)
		}
	}
	fmt.Printf("  %9s  %4s  %12s\n", "delivered", "rtx", "e2e")
	at := func(t time.Time) string {
		if t.IsZero() {
			return "-"
		}
		return time.Duration(t.UnixNano()).String()
	}
	submitSlot := slot[obs.StageSubmit]
	var e2es []time.Duration
	for _, seq := range seqs {
		sp := spans[seq]
		e2e := "-"
		// End-to-end: submit to the final milestone the cluster produced —
		// last delivery on a bare ring, client receive behind daemons.
		end := sp.lastDeliver
		for i := len(milestones) - 1; i > submitSlot; i-- {
			if !sp.at[i].IsZero() && sp.at[i].After(end) {
				end = sp.at[i]
				break
			}
		}
		if !sp.at[submitSlot].IsZero() && !end.IsZero() {
			d := end.Sub(sp.at[submitSlot])
			e2es = append(e2es, d)
			e2e = d.String()
		}
		fmt.Printf("%8d", seq)
		for i := range milestones {
			if present[i] {
				fmt.Printf("  %12s", at(sp.at[i]))
			}
		}
		fmt.Printf("  %6d/%-2d  %4d  %12s\n", sp.delivers, nodes, sp.retrans, e2e)
	}
	if len(e2es) > 0 {
		sort.Slice(e2es, func(i, j int) bool { return e2es[i] < e2es[j] })
		fmt.Printf("\n%d sampled messages; end-to-end ordering latency: median=%v max=%v\n",
			len(seqs), e2es[len(e2es)/2], e2es[len(e2es)-1])
	} else {
		fmt.Printf("\n%d sampled messages (no complete submit→deliver span)\n", len(seqs))
	}
	return nil
}

// renderTimeline draws one lane per participant with send events placed
// proportionally to virtual time.
func renderTimeline(events []simproc.TraceEvent, width int) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	var maxNode simnet.NodeID
	var maxAt simnet.Time
	for _, ev := range events {
		if ev.Node > maxNode {
			maxNode = ev.Node
		}
		if ev.At > maxAt {
			maxAt = ev.At
		}
	}
	if maxAt == 0 {
		maxAt = 1
	}
	lanes := make([][]byte, maxNode+1)
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(".", width))
	}
	place := func(lane []byte, col int, s string) {
		// Shift right past earlier marks so labels never overwrite.
		for col < len(lane) && lane[col] != '.' {
			col++
		}
		for i := 0; i < len(s) && col+i < len(lane); i++ {
			lane[col+i] = s[i]
		}
	}
	for _, ev := range events {
		col := int(int64(ev.At) * int64(width-8) / int64(maxAt))
		switch ev.Kind {
		case "send-data":
			place(lanes[ev.Node], col, fmt.Sprintf("%d", ev.Seq))
		case "send-token":
			place(lanes[ev.Node], col, "*")
		}
	}
	var b strings.Builder
	for i, lane := range lanes {
		fmt.Fprintf(&b, "  %c |%s|\n", 'A'+i, lane)
	}
	fmt.Fprintf(&b, "     0%s┤ %v\n", strings.Repeat(" ", width-1), maxAt)
	return b.String()
}
