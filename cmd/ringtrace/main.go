// Command ringtrace reproduces the paper's Figure 1: the execution
// schedule of three participants sending twenty messages under the
// original and the Accelerated Ring protocol (Personal window 5,
// Accelerated window 3). It prints an ASCII timeline per variant —
// message sequence numbers at their send instants, '*' marking the token
// send — followed by the event table. Under the accelerated protocol the
// token visibly departs after two of each participant's five sends, and
// the whole 20-message run finishes earlier.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"accelring/internal/bench"
	"accelring/internal/simnet"
	"accelring/internal/simproc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ringtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ringtrace", flag.ContinueOnError)
	table := fs.Bool("table", false, "also print the full event table")
	width := fs.Int("width", 100, "timeline width in columns")
	if err := fs.Parse(args); err != nil {
		return err
	}

	for _, variant := range []struct {
		name  string
		accel bool
	}{{"original Ring protocol", false}, {"Accelerated Ring protocol", true}} {
		events, err := bench.Fig1Trace(variant.accel)
		if err != nil {
			return err
		}
		fmt.Printf("== %s ==\n", variant.name)
		fmt.Print(renderTimeline(events, *width))
		fmt.Println()
	}
	fmt.Println("legend: digits = data message seq at its send instant, * = token send")
	fmt.Println("        (A sends 1-5 then 16-20, B sends 6-10, C sends 11-15; PW=5, AW=3)")

	if *table {
		s := &bench.Suite{Quick: true}
		tbl, err := s.Figure("fig1")
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(tbl.Format())
	}
	return nil
}

// renderTimeline draws one lane per participant with send events placed
// proportionally to virtual time.
func renderTimeline(events []simproc.TraceEvent, width int) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	var maxNode simnet.NodeID
	var maxAt simnet.Time
	for _, ev := range events {
		if ev.Node > maxNode {
			maxNode = ev.Node
		}
		if ev.At > maxAt {
			maxAt = ev.At
		}
	}
	if maxAt == 0 {
		maxAt = 1
	}
	lanes := make([][]byte, maxNode+1)
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(".", width))
	}
	place := func(lane []byte, col int, s string) {
		// Shift right past earlier marks so labels never overwrite.
		for col < len(lane) && lane[col] != '.' {
			col++
		}
		for i := 0; i < len(s) && col+i < len(lane); i++ {
			lane[col+i] = s[i]
		}
	}
	for _, ev := range events {
		col := int(int64(ev.At) * int64(width-8) / int64(maxAt))
		switch ev.Kind {
		case "send-data":
			place(lanes[ev.Node], col, fmt.Sprintf("%d", ev.Seq))
		case "send-token":
			place(lanes[ev.Node], col, "*")
		}
	}
	var b strings.Builder
	for i, lane := range lanes {
		fmt.Fprintf(&b, "  %c |%s|\n", 'A'+i, lane)
	}
	fmt.Fprintf(&b, "     0%s┤ %v\n", strings.Repeat(" ", width-1), maxAt)
	return b.String()
}
