// Command ringbench regenerates the paper's evaluation figures on the
// simulated testbed and writes them as text tables.
//
// Usage:
//
//	ringbench [-figure all|fig2|fig9|maxthroughput|...] [-quick] [-out results] [-seed 42]
//
// Each figure is written to <out>/<figure>.txt and echoed to stdout. The
// full sweep takes several minutes; -quick thins the sweeps for a fast
// smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"accelring/internal/bench"
	"accelring/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ringbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ringbench", flag.ContinueOnError)
	figure := fs.String("figure", "all", "experiment to run (all, fig1..fig13, maxthroughput)")
	quick := fs.Bool("quick", false, "thin sweeps and shorten measurement windows")
	out := fs.String("out", "results", "output directory for table files")
	seed := fs.Int64("seed", 42, "deterministic seed for workloads and loss")
	verbose := fs.Bool("v", false, "print per-run progress")
	format := fs.String("format", "text", "output format: text or csv")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	obsAddr := fs.String("obs", "", "serve /debug/vars and /debug/pprof on this address while the suite runs (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range bench.FigureIDs() {
			fmt.Println(id)
		}
		return nil
	}
	if *format != "text" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}

	suite := &bench.Suite{Quick: *quick, Seed: *seed}
	if *verbose {
		suite.Progress = func(s string) { fmt.Fprintf(os.Stderr, "  run: %s\n", s) }
	}

	// -obs is mainly a pprof endpoint for profiling long sweeps; the
	// registry also publishes live suite progress under bench.*.
	var figsDone, runsDone obs.Counter
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		reg.Publish("bench.figures_done", func() any { return figsDone.Value() })
		reg.Publish("bench.runs_done", func() any { return runsDone.Value() })
		srv, err := obs.StartServer(*obsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability: http://%s/debug/pprof\n", srv.Addr())
		prev := suite.Progress
		suite.Progress = func(s string) {
			runsDone.Inc()
			if prev != nil {
				prev(s)
			}
		}
	}

	ids := []string{*figure}
	if *figure == "all" {
		ids = bench.FigureIDs()
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, id := range ids {
		start := time.Now()
		var tbl *bench.Table
		if id == "shard" {
			// The sharding experiment also emits a machine-readable report
			// (the CI artifact results/BENCH_shard.json) next to its table.
			rep, err := suite.ShardThroughput(2, 4)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			data, err := rep.JSON()
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			jsonPath := filepath.Join(*out, "BENCH_shard.json")
			if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
			tbl = rep.Table()
		} else {
			var err error
			tbl, err = suite.Figure(id)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		text := tbl.Format()
		ext := ".txt"
		if *format == "csv" {
			text = tbl.CSV()
			ext = ".csv"
		}
		fmt.Println(text)
		path := filepath.Join(*out, id+ext)
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%.1fs)\n", path, time.Since(start).Seconds())
		figsDone.Inc()
	}
	return nil
}
