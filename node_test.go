package accelring

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fastTimeouts keeps membership rounds short for tests.
func fastTimeouts() Timeouts {
	return Timeouts{
		JoinInterval:    10 * time.Millisecond,
		Gather:          50 * time.Millisecond,
		Commit:          100 * time.Millisecond,
		TokenLoss:       250 * time.Millisecond,
		TokenRetransmit: 60 * time.Millisecond,
	}
}

// openCluster starts n facade nodes on one Hub and waits for the ring.
func openCluster(t *testing.T, nn int, opts ...Option) []*Node {
	t.Helper()
	hub := NewHub()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	nodes := make([]*Node, nn)
	for i := 0; i < nn; i++ {
		ep, err := hub.Endpoint(ProcID(i+1), 4096, 64)
		if err != nil {
			t.Fatal(err)
		}
		all := append([]Option{
			WithSelf(ProcID(i + 1)),
			WithTransport(ep),
			WithWindows(10, 100, 7),
			WithTimeouts(fastTimeouts()),
		}, opts...)
		n, err := Open(ctx, all...)
		if err != nil {
			t.Fatalf("Open node %d: %v", i+1, err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		if err := n.WaitReady(ctx); err != nil {
			t.Fatalf("node %v WaitReady: %v", n.ID(), err)
		}
	}
	return nodes
}

// nextEvent pulls events until one matches the wanted type.
func nextEvent[T Event](t *testing.T, n *Node) T {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for {
		ev, err := n.Receive(ctx)
		if err != nil {
			var zero T
			t.Fatalf("node %v: waiting for %T: %v", n.ID(), zero, err)
		}
		if want, ok := ev.(T); ok {
			return want
		}
	}
}

func TestClusterOrderedDelivery(t *testing.T) {
	nodes := openCluster(t, 3)

	// Everyone joins; each node sees the view grow to all three members.
	for _, n := range nodes {
		if err := n.Join("chat"); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	for _, n := range nodes {
		for {
			v := nextEvent[*GroupView](t, n)
			if v.Group == "chat" && len(v.Members) == 3 {
				break
			}
		}
	}

	// Concurrent sends from all nodes, including one Safe message.
	const per = 5
	for i, n := range nodes {
		for j := 0; j < per; j++ {
			svc := Agreed
			if j == per-1 {
				svc = Safe
			}
			msg := []byte(fmt.Sprintf("n%d-%d", i+1, j))
			if err := n.Send(svc, msg, "chat"); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
	}

	// All nodes deliver the same messages in the same total order.
	var sequences [3][]string
	for i, n := range nodes {
		for len(sequences[i]) < 3*per {
			m := nextEvent[*Message](t, n)
			sequences[i] = append(sequences[i], fmt.Sprintf("%v:%s", m.Sender, m.Payload))
		}
	}
	for i := 1; i < 3; i++ {
		for j := range sequences[0] {
			if sequences[i][j] != sequences[0][j] {
				t.Fatalf("node %d delivered %q at %d, node 1 delivered %q",
					i+1, sequences[i][j], j, sequences[0][j])
			}
		}
	}
}

func TestTypedErrors(t *testing.T) {
	nodes := openCluster(t, 2)
	n := nodes[0]

	// Leave of a never-joined group: ErrNotMember, locally, typed.
	if err := n.Leave("ghost"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("Leave(ghost) = %v, want ErrNotMember", err)
	}
	// Bad group names and service levels are rejected before submission.
	if err := n.Join(""); !errors.Is(err, ErrBadGroup) {
		t.Fatalf("Join(empty) = %v, want ErrBadGroup", err)
	}
	if err := n.Send(Service(99), []byte("x"), "g"); !errors.Is(err, ErrInvalidService) {
		t.Fatalf("Send bad service = %v, want ErrInvalidService", err)
	}
	if err := n.Send(Agreed, []byte("x")); !errors.Is(err, ErrBadGroupCount) {
		t.Fatalf("Send no groups = %v, want ErrBadGroupCount", err)
	}

	// After Close, everything is ErrClosed.
	n.Close()
	if err := n.Join("chat"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Join after close = %v, want ErrClosed", err)
	}
	// Receive drains any buffered events, then reports ErrClosed.
	for {
		_, err := n.Receive(context.Background())
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Receive after close = %v, want ErrClosed", err)
		}
		break
	}
	if err := n.Err(); err != nil {
		t.Fatalf("Err after clean close = %v, want nil", err)
	}
}

func TestNotReadyBeforeRing(t *testing.T) {
	// A lone node with a long gather timeout has no ring yet.
	hub := NewHub()
	ep, err := hub.Endpoint(1, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	to := fastTimeouts()
	to.JoinInterval = 2 * time.Second
	to.Gather = 10 * time.Second
	n, err := Open(context.Background(), WithSelf(1), WithTransport(ep), WithTimeouts(to))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Send(Agreed, []byte("x"), "g"); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Send before ring = %v, want ErrNotReady", err)
	}
}

func TestMembershipChangeSurfacesTypedError(t *testing.T) {
	nodes := openCluster(t, 2)
	oldView := nodes[0].View()
	if oldView.IsZero() {
		t.Fatal("ready node has zero view")
	}

	// Kill node 2; node 1 loses the ring and re-forms a singleton one.
	nodes[1].Close()
	deadline := time.Now().Add(5 * time.Second)
	var mce *MembershipChangedError
	for time.Now().Before(deadline) {
		err := nodes[0].Send(Agreed, []byte("x"), "g")
		if errors.As(err, &mce) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if mce == nil {
		t.Skip("ring re-formed between token loss and send; nothing to assert")
	}
	if mce.OldView != oldView {
		t.Fatalf("MembershipChangedError.OldView = %v, want %v", mce.OldView, oldView)
	}
	if !mce.NewView.IsZero() {
		t.Fatalf("NewView = %v, want zero while re-forming", mce.NewView)
	}

	// The survivor eventually installs a singleton ring and can send again.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for {
		err := nodes[0].Send(Agreed, []byte("y"), "g")
		if err == nil {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatalf("survivor never recovered: last err %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if v := nodes[0].View(); v == oldView || v.IsZero() {
		t.Fatalf("view after re-formation = %v, want a new view", v)
	}
}

func TestObserverWiring(t *testing.T) {
	reg := NewRegistry()
	nodes := openCluster(t, 2, WithObserver(reg))
	if nodes[0].Tracer() == nil {
		t.Fatal("Tracer() = nil with WithObserver")
	}
	if err := nodes[0].Join("g"); err != nil {
		t.Fatal(err)
	}
	nextEvent[*GroupView](t, nodes[0])

	// Both nodes share the registry; the ring counters must be live.
	deadline := time.Now().Add(3 * time.Second)
	for reg.Counter("ring.rounds").Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if reg.Counter("ring.rounds").Value() == 0 {
		t.Fatal("ring.rounds never incremented")
	}
	if nodes[0].Tracer().Total() == 0 {
		t.Fatal("tracer recorded no rounds")
	}
}
