package accelring

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
)

// Event is a delivery to the application: a *Message, a *GroupView, or a
// *ViewChange. Events arrive in the ring's total order.
type Event interface{ isEvent() }

// Message is a totally ordered group message.
type Message struct {
	// Sender is the node that sent the message.
	Sender ClientID
	// Service is the delivery level it was sent with.
	Service Service
	// Groups are the destination groups.
	Groups []string
	// Payload is the application data.
	Payload []byte
}

func (*Message) isEvent() {}

// GroupView is a group's agreed membership after a join or leave, or after
// a ring membership change removed nodes. Every surviving member receives
// identical views at the same point in the total order.
type GroupView struct {
	Group   string
	Members []ClientID
}

func (*GroupView) isEvent() {}

// ViewChange announces a new ring configuration. A transitional view
// contains the members of the previous ring that continue together;
// messages delivered between it and the next regular view carry
// guarantees only with respect to that reduced set (extended virtual
// synchrony).
type ViewChange struct {
	View         ViewID
	Members      []ProcID
	Transitional bool
}

func (*ViewChange) isEvent() {}

// Node is one ring participant with a single group-messaging endpoint. It
// embeds the daemon role: the protocol stack runs in-process, and the
// node is its own (only) client.
type Node struct {
	cfg    Config
	rn     *ringnode.Node
	self   ClientID
	tracer *obs.RingTracer
	events chan Event

	mu       sync.Mutex
	table    *group.Table
	lastView ViewID
	ready    bool
	closed   bool

	failed    atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// Open starts a node from the given options. The returned node is already
// running membership: it forms a singleton ring or merges with reachable
// peers on its own. Use WaitReady to block until the first ring forms; the
// submission methods return ErrNotReady before that. ctx only bounds the
// setup itself (it is checked before sockets are opened); cancelling it
// afterwards has no effect — use Close.
func Open(ctx context.Context, opts ...Option) (*Node, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return OpenConfig(ctx, cfg)
}

// OpenConfig is Open with an explicit Config.
func OpenConfig(ctx context.Context, cfg Config) (*Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, err := cfg.openTransport()
	if err != nil {
		return nil, err
	}

	n := &Node{
		cfg:    cfg,
		self:   ClientID{Daemon: cfg.Self, Local: 1},
		events: make(chan Event, cfg.EventBuffer),
		table:  group.NewTable(),
	}

	rc := cfg.ringConfig()
	rc.Transport = tr
	rc.OnEvent = n.onEvent
	if cfg.Observer != nil {
		n.tracer = obs.NewRingTracer(cfg.TraceDepth)
		rc.Observer = &obs.RingObserver{Reg: cfg.Observer, Tracer: n.tracer}
	}

	rn, err := ringnode.Start(rc)
	if err != nil {
		tr.Close()
		return nil, err
	}
	n.rn = rn
	return n, nil
}

// ID returns this node's group-messaging endpoint identity, as it appears
// in GroupView member lists on every node.
func (n *Node) ID() ClientID { return n.self }

// Events returns the delivery stream. The channel is closed by Close or
// on terminal failure; Err explains why.
func (n *Node) Events() <-chan Event { return n.events }

// Receive returns the next event, blocking until one arrives, the context
// is done, or the node closes (ErrClosed; see Err for the cause).
func (n *Node) Receive(ctx context.Context) (Event, error) {
	select {
	case ev, ok := <-n.events:
		if !ok {
			return nil, ErrClosed
		}
		return ev, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// WaitReady blocks until the first ring configuration is installed (after
// which Join/Leave/Send work) or the context is done.
func (n *Node) WaitReady(ctx context.Context) error {
	for {
		n.mu.Lock()
		ready, closed := n.ready, n.closed
		n.mu.Unlock()
		if closed {
			return ErrClosed
		}
		if ready {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// View returns the current ring view (zero before the first ring forms).
func (n *Node) View() ViewID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastView
}

// Members returns the agreed membership of a group as of the events
// processed so far (nil if empty or unknown).
func (n *Node) Members(groupName string) []ClientID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.table.Members(groupName)
}

// Groups returns the groups this node has joined.
func (n *Node) Groups() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.table.GroupsOf(n.self)
}

// Tracer returns the node's token-round tracer for DebugServer.AddTracer
// (nil unless the node was opened with WithObserver).
func (n *Node) Tracer() *RingTracer { return n.tracer }

// Join adds this node to a group. The resulting agreed view arrives as a
// *GroupView event, in total order with all traffic.
func (n *Node) Join(groupName string) error {
	if !group.ValidGroupName(groupName) {
		return ErrBadGroup
	}
	return n.submit(&group.Envelope{
		Kind: group.OpJoin, Sender: n.self, Groups: []string{groupName},
	}, Agreed)
}

// Leave removes this node from a group it previously joined. Leaving a
// group this node is not in fails with ErrNotMember.
func (n *Node) Leave(groupName string) error {
	if !group.ValidGroupName(groupName) {
		return ErrBadGroup
	}
	n.mu.Lock()
	member := memberOf(n.table.Members(groupName), n.self)
	n.mu.Unlock()
	if !member {
		return ErrNotMember
	}
	return n.submit(&group.Envelope{
		Kind: group.OpLeave, Sender: n.self, Groups: []string{groupName},
	}, Agreed)
}

// Send multicasts payload to the members of the given groups with the
// given service level, in total order across all groups. The sender need
// not be a member (open-group semantics); if it is, it receives its own
// message in order like everyone else.
func (n *Node) Send(service Service, payload []byte, groups ...string) error {
	if len(groups) == 0 || len(groups) > group.MaxGroups {
		return ErrBadGroupCount
	}
	for _, g := range groups {
		if !group.ValidGroupName(g) {
			return ErrBadGroup
		}
	}
	if !service.Valid() {
		return ErrInvalidService
	}
	return n.submit(&group.Envelope{
		Kind: group.OpMessage, Sender: n.self, Groups: groups, Payload: payload,
	}, service)
}

// submit encodes the envelope and hands it to the ring, translating the
// driver's errors into the public sentinels.
func (n *Node) submit(env *group.Envelope, svc Service) error {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	enc, err := env.Encode()
	if err != nil {
		return err
	}
	err = n.rn.Submit(enc, svc)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ringnode.ErrStopped):
		return ErrClosed
	case errors.Is(err, membership.ErrNotOperational):
		n.mu.Lock()
		last := n.lastView
		n.mu.Unlock()
		if last.IsZero() {
			return ErrNotReady
		}
		// The ring this node was operating in dissolved and the new one
		// is still forming.
		return &MembershipChangedError{OldView: last}
	default:
		return err
	}
}

// Err returns the terminal error after the event stream is closed (nil on
// clean Close, ErrSlowConsumer if the consumer fell behind).
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.closed {
		return nil
	}
	return n.closeErr
}

// Close stops the protocol, closes the transport, and closes Events. It
// is idempotent and safe from any goroutine.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		n.mu.Lock()
		n.closed = true
		n.mu.Unlock()
		// Stop waits for the protocol goroutine to exit, so no onEvent
		// call can race the channel close below.
		n.rn.Stop()
		close(n.events)
	})
	return nil
}

// fail records a terminal error and tears the node down asynchronously
// (it runs on the protocol goroutine, which Close must wait for).
func (n *Node) fail(err error) {
	if n.failed.Swap(true) {
		return
	}
	n.mu.Lock()
	n.closeErr = err
	n.mu.Unlock()
	go n.Close()
}

// emit forwards an event without ever blocking the protocol goroutine: a
// consumer that lets the buffer fill is disconnected (ErrSlowConsumer),
// the same policy Spread applies to slow daemon clients.
func (n *Node) emit(ev Event) {
	if n.failed.Load() {
		return
	}
	select {
	case n.events <- ev:
	default:
		n.fail(ErrSlowConsumer)
	}
}

// onEvent runs on the protocol goroutine: it applies the totally ordered
// stream to the group table and forwards application-visible events.
func (n *Node) onEvent(ev evs.Event) {
	switch e := ev.(type) {
	case evs.Message:
		env, err := group.DecodeEnvelope(e.Payload)
		if err != nil {
			return // not ours: a foreign application on the same ring
		}
		n.applyEnvelope(env, e.Service)
	case evs.ConfigChange:
		n.applyConfigChange(e)
	}
}

func (n *Node) applyEnvelope(env *group.Envelope, svc Service) {
	switch env.Kind {
	case group.OpJoin:
		n.mu.Lock()
		err := n.table.Join(env.Sender, env.Groups[0])
		n.mu.Unlock()
		if err == nil {
			n.announceView(env.Groups[0], env.Sender)
		}
	case group.OpLeave:
		n.mu.Lock()
		err := n.table.Leave(env.Sender, env.Groups[0])
		n.mu.Unlock()
		if err == nil {
			n.announceView(env.Groups[0], env.Sender)
		}
	case group.OpDisconnect:
		n.mu.Lock()
		left := n.table.Disconnect(env.Sender)
		n.mu.Unlock()
		for _, g := range left {
			n.announceView(g, env.Sender)
		}
	case group.OpMessage:
		n.mu.Lock()
		deliver := memberOf(n.table.Recipients(env.Groups), n.self)
		n.mu.Unlock()
		if deliver {
			n.emit(&Message{
				Sender: env.Sender, Service: svc,
				Groups: env.Groups, Payload: env.Payload,
			})
		}
	case group.OpPrivate:
		if env.Target == n.self {
			n.emit(&Message{Sender: env.Sender, Service: svc, Payload: env.Payload})
		}
	}
}

// announceView emits the group's agreed view if this node is a member —
// or if the change was its own (so a leaver sees its final, self-less
// view, Spread's self-leave notification).
func (n *Node) announceView(groupName string, cause ClientID) {
	n.mu.Lock()
	members := n.table.Members(groupName)
	n.mu.Unlock()
	if cause == n.self || memberOf(members, n.self) {
		n.emit(&GroupView{Group: groupName, Members: members})
	}
}

// applyConfigChange installs a ring view: on a regular view, endpoints of
// departed nodes are dropped from every group (the same deterministic
// change every surviving node applies), then the affected group views are
// announced.
func (n *Node) applyConfigChange(e evs.ConfigChange) {
	n.emit(&ViewChange{
		View:         e.Config.ID,
		Members:      append([]ProcID(nil), e.Config.Members...),
		Transitional: e.Transitional,
	})
	if e.Transitional {
		return
	}

	present := make(map[ProcID]bool, len(e.Config.Members))
	for _, m := range e.Config.Members {
		present[m] = true
	}
	n.mu.Lock()
	var affected []string
	seen := make(map[ProcID]bool)
	for _, g := range n.table.Groups() {
		for _, c := range n.table.Members(g) {
			seen[c.Daemon] = true
		}
	}
	for d := range seen {
		if !present[d] {
			affected = append(affected, n.table.DropDaemon(d)...)
		}
	}
	n.lastView = e.Config.ID
	n.ready = true
	n.mu.Unlock()

	for _, g := range dedupe(affected) {
		// Zero cause: announce only to groups this node belongs to.
		n.announceView(g, ClientID{})
	}
}

func memberOf(members []ClientID, c ClientID) bool {
	for _, m := range members {
		if m == c {
			return true
		}
	}
	return false
}

func dedupe(ss []string) []string {
	seen := make(map[string]struct{}, len(ss))
	out := ss[:0]
	for _, s := range ss {
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	return out
}
