package accelring

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
	"accelring/internal/shard"
	"accelring/internal/shard/merge"
)

// Event is a delivery to the application: a *Message, a *GroupView, or a
// *ViewChange. Events arrive in the ring's total order.
type Event interface{ isEvent() }

// Message is a totally ordered group message.
type Message struct {
	// Sender is the node that sent the message.
	Sender ClientID
	// Service is the delivery level it was sent with.
	Service Service
	// Groups are the destination groups.
	Groups []string
	// Payload is the application data.
	Payload []byte
}

func (*Message) isEvent() {}

// GroupView is a group's agreed membership after a join or leave, or after
// a ring membership change removed nodes. Every surviving member receives
// identical views at the same point in the total order.
type GroupView struct {
	Group   string
	Members []ClientID
}

func (*GroupView) isEvent() {}

// ViewChange announces a new ring configuration. A transitional view
// contains the members of the previous ring that continue together;
// messages delivered between it and the next regular view carry
// guarantees only with respect to that reduced set (extended virtual
// synchrony). On a sharded node each ring instance has its own
// configuration lifecycle; Ring says which one changed (always 0
// without WithShards).
type ViewChange struct {
	Ring         int
	View         ViewID
	Members      []ProcID
	Transitional bool
}

func (*ViewChange) isEvent() {}

// Node is one ring participant with a single group-messaging endpoint. It
// embeds the daemon role: the protocol stack runs in-process, and the
// node is its own (only) client. With WithShards(n) it runs n independent
// ring instances and partitions groups across them (see Config.Shards).
type Node struct {
	cfg     Config
	rn      *ringnode.Node // single-ring mode (nil when sharded)
	rings   *shard.Group   // sharded mode (nil when Shards <= 1)
	shards  int
	self    ClientID
	tracer  *obs.RingTracer
	tracers []*obs.RingTracer
	events  chan Event

	// merger reunifies the per-ring ordered streams into one global
	// delivery order when Shards > 1 (nil otherwise); pacerStop ends its
	// lambda-pacing goroutine.
	merger    *merge.Merger
	pacerStop chan struct{}

	mu        sync.Mutex
	table     *group.ShardedTable
	lastViews []ViewID
	readyMask []bool
	ready     bool
	closed    bool

	failed    atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// Open starts a node from the given options. The returned node is already
// running membership: it forms a singleton ring or merges with reachable
// peers on its own. Use WaitReady to block until the first ring forms; the
// submission methods return ErrNotReady before that. ctx only bounds the
// setup itself (it is checked before sockets are opened); cancelling it
// afterwards has no effect — use Close.
func Open(ctx context.Context, opts ...Option) (*Node, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return OpenConfig(ctx, cfg)
}

// OpenConfig is Open with an explicit Config.
func OpenConfig(ctx context.Context, cfg Config) (*Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	n := &Node{
		cfg:       cfg,
		shards:    cfg.Shards,
		self:      ClientID{Daemon: cfg.Self, Local: 1},
		events:    make(chan Event, cfg.EventBuffer),
		table:     group.NewShardedTable(cfg.Shards),
		lastViews: make([]ViewID, cfg.Shards),
		readyMask: make([]bool, cfg.Shards),
	}

	if cfg.Shards > 1 {
		n.merger = merge.New(merge.Config{
			Shards:    cfg.Shards,
			Self:      cfg.Self,
			Table:     n.table,
			Out:       nodeMergeOut{n},
			SkipAhead: cfg.SkipAhead,
			Obs:       cfg.Observer,
		})
		base := cfg.ringConfig()
		if cfg.Observer != nil || cfg.TraceSampling > 0 {
			// ForRing derives one observer per ring from this base: shared
			// registry, per-ring "shard<r>" metric labels, tracers and
			// message tracers (the base Msg only carries the sampling rate).
			base.Observer = &obs.RingObserver{
				Reg: cfg.Observer,
				Msg: obs.NewMsgTracer(cfg.TraceSampling, 0),
			}
		}
		g, err := shard.Start(shard.Config{
			Shards:       cfg.Shards,
			Base:         base,
			NewTransport: cfg.openTransport,
			OnEvent:      n.onRingEvent,
			TraceDepth:   cfg.TraceDepth,
		})
		if err != nil {
			return nil, err
		}
		n.rings = g
		if cfg.Observer != nil {
			n.tracers = make([]*obs.RingTracer, cfg.Shards)
			for r := range n.tracers {
				n.tracers[r] = g.Tracer(r)
			}
			n.tracer = n.tracers[0]
		}
		n.pacerStop = make(chan struct{})
		go n.skipPacer(cfg.SkipInterval)
		return n, nil
	}

	tr, err := cfg.openTransport(0)
	if err != nil {
		return nil, err
	}
	rc := cfg.ringConfig()
	rc.Transport = tr
	rc.OnEvent = func(ev evs.Event) { n.onRingEvent(0, ev) }
	if cfg.Observer != nil || cfg.TraceSampling > 0 {
		if cfg.Observer != nil {
			n.tracer = obs.NewRingTracer(cfg.TraceDepth)
			n.tracers = []*obs.RingTracer{n.tracer}
		}
		rc.Observer = &obs.RingObserver{
			Reg:    cfg.Observer,
			Tracer: n.tracer,
			Msg:    obs.NewMsgTracer(cfg.TraceSampling, 0),
		}
	}

	rn, err := ringnode.Start(rc)
	if err != nil {
		tr.Close()
		return nil, err
	}
	n.rn = rn
	return n, nil
}

// ID returns this node's group-messaging endpoint identity, as it appears
// in GroupView member lists on every node.
func (n *Node) ID() ClientID { return n.self }

// Events returns the delivery stream. The channel is closed by Close or
// on terminal failure; Err explains why.
func (n *Node) Events() <-chan Event { return n.events }

// Receive returns the next event, blocking until one arrives, the context
// is done, or the node closes (ErrClosed; see Err for the cause).
func (n *Node) Receive(ctx context.Context) (Event, error) {
	select {
	case ev, ok := <-n.events:
		if !ok {
			return nil, ErrClosed
		}
		return ev, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// WaitReady blocks until the first ring configuration is installed (after
// which Join/Leave/Send work) or the context is done.
func (n *Node) WaitReady(ctx context.Context) error {
	for {
		n.mu.Lock()
		ready, closed := n.ready, n.closed
		n.mu.Unlock()
		if closed {
			return ErrClosed
		}
		if ready {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// View returns the current ring view (zero before the first ring forms).
// On a sharded node it is ring 0's view; see ViewOf.
func (n *Node) View() ViewID { return n.ViewOf(0) }

// ViewOf returns ring's current view (zero before that ring forms).
func (n *Node) ViewOf(ring int) ViewID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastViews[ring]
}

// Shards returns the node's ring-instance count (1 without WithShards).
func (n *Node) Shards() int { return n.shards }

// RingFor returns the ring instance that owns a group name on this node.
func (n *Node) RingFor(groupName string) int { return RingOf(groupName, n.shards) }

// Members returns the agreed membership of a group as of the events
// processed so far (nil if empty or unknown).
func (n *Node) Members(groupName string) []ClientID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.table.For(groupName).Members(groupName)
}

// Groups returns the groups this node has joined.
func (n *Node) Groups() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.table.GroupsOf(n.self)
}

// Tracer returns the node's token-round tracer for DebugServer.AddTracer
// (nil unless the node was opened with WithObserver). On a sharded node
// it is ring 0's tracer; see Tracers.
func (n *Node) Tracer() *RingTracer { return n.tracer }

// Tracers returns one token-round tracer per ring instance (nil unless
// the node was opened with WithObserver).
func (n *Node) Tracers() []*RingTracer {
	if n.tracers == nil {
		return nil
	}
	return append([]*RingTracer(nil), n.tracers...)
}

// MsgTracer returns the node's message-lifecycle tracer for
// DebugServer.AddMsgTracer (nil unless the node was opened with
// WithTraceSampling). On a sharded node it is ring 0's tracer; see
// MsgTracers.
func (n *Node) MsgTracer() *MsgTracer {
	if n.rings != nil {
		return n.rings.MsgTracer(0)
	}
	return n.rn.Observer().MsgTracer()
}

// MsgTracers returns one message-lifecycle tracer per ring instance (nil
// unless the node was opened with WithTraceSampling).
func (n *Node) MsgTracers() []*MsgTracer {
	if n.MsgTracer() == nil {
		return nil
	}
	out := make([]*MsgTracer, n.shards)
	for r := range out {
		if n.rings != nil {
			out[r] = n.rings.MsgTracer(r)
		} else {
			out[r] = n.rn.Observer().MsgTracer()
		}
	}
	return out
}

// AttachLatency registers every ring's message tracer with agg under the
// metric scope that ring's histograms use ("" on a single-ring node,
// "shard0".."shardN-1" on a sharded one), so folded span deltas land next
// to the ring's other metrics. No-op unless the node was opened with
// WithObserver and WithTraceSampling.
func (n *Node) AttachLatency(agg *LatencyAgg) {
	for r, mt := range n.MsgTracers() {
		scope := ""
		if n.rings != nil {
			scope = fmt.Sprintf("shard%d", r)
		}
		agg.AddTracer(scope, mt)
	}
}

// Join adds this node to a group. The resulting agreed view arrives as a
// *GroupView event, in total order with all traffic on the group's ring.
func (n *Node) Join(groupName string) error {
	if !group.ValidGroupName(groupName) {
		return ErrBadGroup
	}
	return n.submit(n.RingFor(groupName), &group.Envelope{
		Kind: group.OpJoin, Sender: n.self, Groups: []string{groupName},
	}, Agreed)
}

// Leave removes this node from a group it previously joined. Leaving a
// group this node is not in fails with ErrNotMember.
func (n *Node) Leave(groupName string) error {
	if !group.ValidGroupName(groupName) {
		return ErrBadGroup
	}
	n.mu.Lock()
	member := memberOf(n.table.For(groupName).Members(groupName), n.self)
	n.mu.Unlock()
	if !member {
		return ErrNotMember
	}
	return n.submit(n.RingFor(groupName), &group.Envelope{
		Kind: group.OpLeave, Sender: n.self, Groups: []string{groupName},
	}, Agreed)
}

// Send multicasts payload to the members of the given groups with the
// given service level. The sender need not be a member (open-group
// semantics); if it is, it receives its own message in order like
// everyone else. Every destination group delivers the message at one
// agreed position in its own total order; on a sharded node a send
// spanning groups owned by different rings becomes one independent
// ordered message per ring, so only groups on the same ring share a
// cross-group delivery order. On an error after the first ring accepted,
// the rings that accepted still deliver.
func (n *Node) Send(service Service, payload []byte, groups ...string) error {
	if len(groups) == 0 || len(groups) > group.MaxGroups {
		return ErrBadGroupCount
	}
	for _, g := range groups {
		if !group.ValidGroupName(g) {
			return ErrBadGroup
		}
	}
	if !service.Valid() {
		return ErrInvalidService
	}
	// Ascending ring order keeps spanning sends deterministic across
	// identical runs; the merge layer gives the per-ring copies one
	// global delivery order.
	for _, rg := range n.table.SplitByRing(groups, nil) {
		err := n.submit(rg.Ring, &group.Envelope{
			Kind: group.OpMessage, Sender: n.self, Groups: rg.Groups, Payload: payload,
		}, service)
		if err != nil {
			return err
		}
	}
	return nil
}

// submit encodes the envelope and hands it to the owning ring,
// translating the driver's errors into the public sentinels.
func (n *Node) submit(ring int, env *group.Envelope, svc Service) error {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	enc, err := env.Encode()
	if err != nil {
		return err
	}
	if n.rings != nil {
		err = n.rings.Submit(ring, enc, svc)
	} else {
		err = n.rn.Submit(enc, svc)
	}
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ringnode.ErrStopped):
		return ErrClosed
	case errors.Is(err, membership.ErrNotOperational):
		n.mu.Lock()
		last := n.lastViews[ring]
		n.mu.Unlock()
		if last.IsZero() {
			return ErrNotReady
		}
		// The ring this node was operating in dissolved and the new one
		// is still forming.
		return &MembershipChangedError{OldView: last}
	default:
		return err
	}
}

// Err returns the terminal error after the event stream is closed (nil on
// clean Close, ErrSlowConsumer if the consumer fell behind).
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.closed {
		return nil
	}
	return n.closeErr
}

// Close stops the protocol, closes the transport, and closes Events. It
// is idempotent and safe from any goroutine.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		n.mu.Lock()
		n.closed = true
		n.mu.Unlock()
		if n.pacerStop != nil {
			close(n.pacerStop)
		}
		// Stop waits for every protocol goroutine to exit, so no event
		// callback can race the channel close below.
		if n.rings != nil {
			n.rings.Stop()
		} else {
			n.rn.Stop()
		}
		close(n.events)
	})
	return nil
}

// fail records a terminal error and tears the node down asynchronously
// (it runs on the protocol goroutine, which Close must wait for).
func (n *Node) fail(err error) {
	if n.failed.Swap(true) {
		return
	}
	n.mu.Lock()
	n.closeErr = err
	n.mu.Unlock()
	go n.Close()
}

// emit forwards an event without ever blocking the protocol goroutine: a
// consumer that lets the buffer fill is disconnected (ErrSlowConsumer),
// the same policy Spread applies to slow daemon clients.
func (n *Node) emit(ev Event) {
	if n.failed.Load() {
		return
	}
	select {
	case n.events <- ev:
	default:
		n.fail(ErrSlowConsumer)
	}
}

// onRingEvent runs on ring's protocol goroutine. Without a merger
// (Shards <= 1) it applies that ring's totally ordered stream to the
// ring's partition of the group table and forwards application-visible
// events. With one, every ring's ordered stream — envelopes AND
// configuration changes — feeds the cross-ring merger, which re-invokes
// the same application logic (via nodeMergeOut) at each item's globally
// ordered emission point, so Receive observes one identical global order
// on every node. Different rings invoke it concurrently; n.mu serializes
// the table work and the events channel serializes emission.
func (n *Node) onRingEvent(ring int, ev evs.Event) {
	switch e := ev.(type) {
	case evs.Message:
		env, err := group.DecodeEnvelope(e.Payload)
		if err != nil {
			return // not ours: a foreign application on the same ring
		}
		if n.merger != nil {
			n.merger.PushEnvelopeSeq(ring, env, e.Service, e.Seq)
			return
		}
		n.applyEnvelope(ring, env, e.Service)
	case evs.ConfigChange:
		if n.merger != nil {
			n.merger.PushConfig(ring, e)
			return
		}
		n.applyConfigChange(ring, e)
	}
}

// recordMergeOut stamps the merge-emission stage onto a sampled span at
// its globally ordered emission point (the merger's lock is held; the
// record is a lock-free slot store, so nothing blocks). Seq 0 means the
// pusher had no carrier sequence and is never stamped.
func (n *Node) recordMergeOut(ring int, seq uint64) {
	if n.rings == nil || seq == 0 {
		return
	}
	mt := n.rings.MsgTracer(ring)
	if !mt.Sampled(seq) {
		return
	}
	mt.Record(obs.MsgEvent{Seq: seq, Stage: obs.StageMergeOut, At: n.rings.Node(ring).Observer().Now()})
}

// nodeMergeOut adapts the Node to the merger's output interface. Its
// methods run with the merger's lock held at globally ordered emission
// points; none of them blocks or reenters the merger (submissions spawn,
// emit drops on a full buffer rather than wait).
type nodeMergeOut struct{ n *Node }

func (o nodeMergeOut) Deliver(ring int, env *group.Envelope, svc evs.Service, seq uint64) {
	o.n.recordMergeOut(ring, seq)
	o.n.applyEnvelope(ring, env, svc)
}

func (o nodeMergeOut) Config(ring int, cc evs.ConfigChange) {
	o.n.applyConfigChange(ring, cc)
}

func (o nodeMergeOut) SubmitAsync(ring int, env group.Envelope) {
	enc, err := env.Encode()
	if err != nil {
		return
	}
	rings := o.n.rings
	// Off the emission goroutine: Submit is a blocking round trip to the
	// ring's protocol goroutine, which may be the very one emitting.
	go func() { _ = rings.Submit(ring, enc, evs.Agreed) }()
}

func (o nodeMergeOut) Migrated(g string, from, to int) {
	// The re-home itself happened in the shared table at this ordered
	// point; the application sees the group's traffic continue seamlessly.
}

// skipPacer is the merge's lambda-pacing loop: every interval it asks the
// merger which idle rings block the global order and, for each ring this
// node represents, orders a skip claim on it. Skips are ordinary ordered
// envelopes, so every node applies the same claims at the same per-ring
// positions.
func (n *Node) skipPacer(interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var wants []merge.Want
	for {
		select {
		case <-n.pacerStop:
			return
		case <-tick.C:
		}
		wants = n.merger.Wants(wants)
		for _, w := range wants {
			env := n.merger.SkipEnvelope(w)
			if enc, err := env.Encode(); err == nil {
				_ = n.rings.Submit(w.Ring, enc, evs.Agreed)
			}
		}
	}
}

// migrateTimeout bounds how long Migrate waits for the ordered close.
const migrateTimeout = 30 * time.Second

// Migrate re-homes a group onto another ring instance with no loss,
// duplication, or reordering: it orders a migration marker on the group's
// current ring and blocks until the migration's globally ordered close
// point has been emitted locally (source ring drained, membership state
// re-homed, buffered target-ring traffic replayed). Requires WithShards.
// The move survives this call returning early (timeout): the protocol
// completes or voids deterministically on every node regardless.
func (n *Node) Migrate(groupName string, ring int) error {
	if n.merger == nil {
		return errors.New("accelring: Migrate requires a sharded node (WithShards)")
	}
	env, err := n.merger.BeginEnvelope(groupName, ring)
	if err != nil {
		return err
	}
	from := n.table.Ring(groupName)
	if from == ring {
		return nil // already home
	}
	done := n.merger.NotifyMigrated(groupName)
	if err := n.submit(from, &env, Agreed); err != nil {
		return err
	}
	select {
	case <-done:
		return nil
	case <-time.After(migrateTimeout):
		return fmt.Errorf("accelring: migration of %q to ring %d timed out", groupName, ring)
	}
}

// RingOfGroup reports which ring instance currently owns a group: its
// hash home (RingFor) or, after a Migrate, its override.
func (n *Node) RingOfGroup(groupName string) int { return n.table.Ring(groupName) }

// envTable locates the table holding a group's membership state at the
// current point of the (global, when merged) order. A message can
// straggle in on a ring the group has since migrated away from; the
// probe resolves identically on every node because table contents at an
// emission point are identical everywhere. Callers hold n.mu.
func (n *Node) envTable(ring int, g string) *group.Table {
	t := n.table.Table(ring)
	if n.merger == nil || t.Has(g) {
		return t
	}
	return n.table.For(g)
}

func (n *Node) applyEnvelope(ring int, env *group.Envelope, svc Service) {
	switch env.Kind {
	case group.OpJoin:
		n.mu.Lock()
		err := n.envTable(ring, env.Groups[0]).Join(env.Sender, env.Groups[0])
		n.mu.Unlock()
		if err == nil {
			n.announceView(env.Groups[0], env.Sender)
		}
	case group.OpLeave:
		n.mu.Lock()
		err := n.envTable(ring, env.Groups[0]).Leave(env.Sender, env.Groups[0])
		n.mu.Unlock()
		if err == nil {
			n.announceView(env.Groups[0], env.Sender)
		}
	case group.OpDisconnect:
		var left []string
		n.mu.Lock()
		if n.merger != nil {
			// Merged mode orders one disconnect and applies it to every
			// partition at its single global emission point.
			for r := 0; r < n.shards; r++ {
				left = append(left, n.table.Table(r).Disconnect(env.Sender)...)
			}
		} else {
			left = n.table.Table(ring).Disconnect(env.Sender)
		}
		n.mu.Unlock()
		for _, g := range left {
			n.announceView(g, env.Sender)
		}
	case group.OpMessage:
		n.mu.Lock()
		deliver := false
		for _, g := range env.Groups {
			if memberOf(n.envTable(ring, g).Members(g), n.self) {
				deliver = true
				break
			}
		}
		n.mu.Unlock()
		if deliver {
			n.emit(&Message{
				Sender: env.Sender, Service: svc,
				Groups: env.Groups, Payload: env.Payload,
			})
		}
	case group.OpPrivate:
		if env.Target == n.self {
			n.emit(&Message{Sender: env.Sender, Service: svc, Payload: env.Payload})
		}
	}
}

// announceView emits the group's agreed view if this node is a member —
// or if the change was its own (so a leaver sees its final, self-less
// view, Spread's self-leave notification).
func (n *Node) announceView(groupName string, cause ClientID) {
	n.mu.Lock()
	members := n.table.For(groupName).Members(groupName)
	n.mu.Unlock()
	if cause == n.self || memberOf(members, n.self) {
		n.emit(&GroupView{Group: groupName, Members: members})
	}
}

// applyConfigChange installs one ring's view: on a regular view,
// endpoints of departed nodes are dropped from every group that ring owns
// (the same deterministic change every surviving node applies), then the
// affected group views are announced. The node reports ready once every
// ring has installed its first configuration.
func (n *Node) applyConfigChange(ring int, e evs.ConfigChange) {
	n.emit(&ViewChange{
		Ring:         ring,
		View:         e.Config.ID,
		Members:      append([]ProcID(nil), e.Config.Members...),
		Transitional: e.Transitional,
	})
	if e.Transitional {
		return
	}

	present := make(map[ProcID]bool, len(e.Config.Members))
	for _, m := range e.Config.Members {
		present[m] = true
	}
	n.mu.Lock()
	table := n.table.Table(ring)
	var affected []string
	seen := make(map[ProcID]bool)
	for _, g := range table.Groups() {
		for _, c := range table.Members(g) {
			seen[c.Daemon] = true
		}
	}
	for d := range seen {
		if !present[d] {
			affected = append(affected, table.DropDaemon(d)...)
		}
	}
	n.lastViews[ring] = e.Config.ID
	n.readyMask[ring] = true
	allReady := true
	for _, r := range n.readyMask {
		allReady = allReady && r
	}
	n.ready = allReady
	n.mu.Unlock()

	for _, g := range dedupe(affected) {
		// Zero cause: announce only to groups this node belongs to.
		n.announceView(g, ClientID{})
	}
}

func memberOf(members []ClientID, c ClientID) bool {
	for _, m := range members {
		if m == c {
			return true
		}
	}
	return false
}

func dedupe(ss []string) []string {
	seen := make(map[string]struct{}, len(ss))
	out := ss[:0]
	for _, s := range ss {
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	return out
}
