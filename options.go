package accelring

// Option mutates a Config inside Open. Options are applied in order, so a
// later option overrides an earlier one; Validate then fills defaults and
// rejects inconsistent results.
type Option func(*Config)

// WithSelf sets this participant's unique nonzero ID.
func WithSelf(id ProcID) Option {
	return func(c *Config) { c.Self = id }
}

// WithProtocol selects the protocol variant (default ProtocolAccelerated).
func WithProtocol(p Protocol) Option {
	return func(c *Config) { c.Protocol = p }
}

// WithWindows sets the flow-control windows: personal (new messages one
// node may introduce per token round), global (ring-wide bound), and
// accelerated (how many of the personal messages are multicast before
// passing the token). Pass accelerated = 0 with ProtocolOriginal.
func WithWindows(personal, global, accelerated int) Option {
	return func(c *Config) {
		c.PersonalWindow = personal
		c.GlobalWindow = global
		c.AcceleratedWindow = accelerated
	}
}

// WithShards runs n independent ring instances and partitions groups
// across them by a stable hash of the group name (default 1, max
// MaxShards). Per-group total order is unchanged and aggregate ordering
// throughput multiplies; cross-group delivery order is only guaranteed
// for groups owned by the same ring. Supply one transport per ring via
// WithWire (WireConfig.Transports), or UDP addresses whose numeric ports
// leave a stride of free ports per ring (ring r uses every base port +
// WireConfig.ShardStride*r, default DefaultShardStride).
func WithShards(n int) Option {
	return func(c *Config) { c.Shards = n }
}

// WithWire sets the unified transport configuration: wire mode (hub,
// unicast, IP multicast), addressing, per-shard port stride, syscall
// batching, and adaptive message packing. It subsumes WithTransport,
// WithUDP, and WithShardTransports; combining it with any of them fails
// Validate with ErrWireConflict.
func WithWire(w WireConfig) Option {
	return func(c *Config) { c.Wire = w }
}

// WithShardTransports supplies one established transport per ring of a
// sharded node (len must equal the WithShards count). The node takes
// ownership and closes them on Close.
//
// Deprecated: use WithWire(WireConfig{Transports: ts}). This shim keeps
// working but cannot be combined with WithWire.
func WithShardTransports(ts ...Transport) Option {
	return func(c *Config) { c.Transports = ts }
}

// WithTransport supplies an established transport (e.g. a Hub endpoint).
// The node takes ownership and closes it on Close.
//
// Deprecated: use WithWire(WireConfig{Transport: t}). This shim keeps
// working but cannot be combined with WithWire.
func WithTransport(t Transport) Option {
	return func(c *Config) { c.Transport = t }
}

// WithUDP configures a real-network UDP transport: listen holds this
// node's data/token addresses, peers the other participants'.
//
// Deprecated: use WithWire(WireConfig{Listen: listen, Peers: peers}),
// which also unlocks the multicast mode and the batching and packing
// knobs. This shim keeps working but cannot be combined with WithWire.
func WithUDP(listen UDPAddrs, peers map[ProcID]UDPAddrs) Option {
	return func(c *Config) {
		c.Listen = listen
		c.Peers = peers
	}
}

// WithTimeouts sets the membership timing parameters; zero fields take
// defaults.
func WithTimeouts(t Timeouts) Option {
	return func(c *Config) { c.Timeouts = t }
}

// WithEventBuffer sets the Events channel capacity (default
// DefaultEventBuffer). A consumer that falls this far behind is
// disconnected with ErrSlowConsumer.
func WithEventBuffer(n int) Option {
	return func(c *Config) { c.EventBuffer = n }
}

// WithObserver directs the node's metrics into reg and enables token-round
// tracing (depth DefaultTraceDepth unless WithTraceDepth is also given).
// Serve reg with StartDebugServer.
func WithObserver(reg *Registry) Option {
	return func(c *Config) { c.Observer = reg }
}

// WithTraceDepth sets how many token-round traces the node retains for
// /debug/ring. Only effective together with WithObserver.
func WithTraceDepth(n int) Option {
	return func(c *Config) { c.TraceDepth = n }
}

// WithTraceSampling enables message-lifecycle tracing: every every-th
// sequence number (seq % every == 0) gets a span of per-stage events —
// submit, pre/post-token multicast, receive, retransmission, delivery —
// retained in a per-ring buffer served at /debug/msgtrace (register the
// node's MsgTracer with DebugServer.AddMsgTracer). Sampling is
// deterministic in the sequence number, so every node samples the same
// messages and spans merge across the cluster. Zero (the default)
// disables tracing entirely — the hot path keeps its zero-allocation
// guarantee.
func WithTraceSampling(every int) Option {
	return func(c *Config) { c.TraceSampling = every }
}

// WithRingKey authenticates every ring wire frame (token and data) with
// a truncated HMAC-SHA256 tag keyed from key. Each ring of a sharded
// node signs with its own derived subkey, so frames cannot be replayed
// across rings. All participants must be opened with the same key;
// frames that fail verification — forged, corrupted, or from an unkeyed
// node — are counted on transport.auth_drops and dropped before they can
// touch ordering state. An empty key disables authentication (the
// default).
func WithRingKey(key []byte) Option {
	return func(c *Config) { c.RingKey = append([]byte(nil), key...) }
}
