package accelring

import (
	"errors"
	"fmt"
	"net"
	"strconv"

	"accelring/internal/pack"
	"accelring/internal/transport"
	"accelring/internal/wire"
)

// Wire-path type aliases, so applications only ever import accelring.
type (
	// BatchConfig sizes sendmmsg/recvmmsg syscall batching on the UDP
	// wire path. The zero value keeps one syscall per datagram.
	BatchConfig = transport.BatchConfig

	// PackingConfig tunes adaptive small-message packing (see
	// WireConfig.Packing). The zero value takes every default.
	PackingConfig = pack.AdaptiveConfig
)

// WireMode selects how a node's protocol frames travel.
type WireMode int

const (
	// WireAuto (the default) infers the mode from the rest of the
	// WireConfig: WireHub when an established Transport is supplied,
	// WireMulticast when a multicast group is set, WireUnicast when only
	// UDP listen addresses are given.
	WireAuto WireMode = iota
	// WireHub runs over an established Transport (an in-process Hub
	// endpoint, or any custom implementation).
	WireHub
	// WireUnicast opens UDP sockets and emulates multicast by unicast
	// fan-out to every peer — the fallback the paper notes Spread
	// provides where IP multicast is unavailable.
	WireUnicast
	// WireMulticast opens UDP sockets and sends each data frame once to
	// an IP-multicast group, as on the paper's testbed. Tokens stay
	// unicast.
	WireMulticast
)

func (m WireMode) String() string {
	switch m {
	case WireAuto:
		return "auto"
	case WireHub:
		return "hub"
	case WireUnicast:
		return "unicast"
	case WireMulticast:
		return "multicast"
	default:
		return fmt.Sprintf("wiremode(%d)", int(m))
	}
}

// DefaultShardStride is the port offset between consecutive rings of a
// sharded UDP node: ring r listens (and expects every peer) on each base
// port + stride*r. Two ports per ring (data and token) is why the
// default is 2.
const DefaultShardStride = 2

// WireConfig is the unified transport configuration: one place for the
// mode (hub, unicast, multicast), the addressing, the per-shard port
// stride, and the throughput knobs (syscall batching, adaptive message
// packing). Set it with WithWire or the Config.Wire field; the legacy
// WithTransport/WithUDP/WithShardTransports options are thin shims over
// it and cannot be combined with it.
type WireConfig struct {
	// Mode selects the wire mode; WireAuto infers it (see WireMode).
	Mode WireMode

	// Transport carries frames in WireHub mode for a single-ring node;
	// the node takes ownership and closes it on Close. Transports does
	// the same per ring of a sharded node (length must equal Shards).
	// Set at most one of the two.
	Transport  Transport
	Transports []Transport

	// Listen holds this node's data/token UDP listen addresses in the
	// UDP modes; Peers the other participants'. With Shards > 1 every
	// port must be numeric and nonzero so per-ring ports can be derived
	// (see ShardStride).
	Listen UDPAddrs
	Peers  map[ProcID]UDPAddrs

	// MulticastGroup is the IPv4 group host:port data frames are sent to
	// and received from in WireMulticast mode, e.g. "239.192.7.1:7600".
	// Every ring member must use the same group; a sharded node derives
	// ring r's group port by ShardStride like the unicast ports.
	MulticastGroup string
	// MulticastTTL bounds propagation (0 means 1: link-local).
	MulticastTTL int
	// MulticastInterface optionally names the NIC for sending/joining.
	MulticastInterface string
	// MulticastNoLoopback disables IP_MULTICAST_LOOP. Leave it off for
	// same-host deployments and tests.
	MulticastNoLoopback bool

	// ShardStride is the port offset between consecutive rings of a
	// sharded UDP node: ring r uses every base port + ShardStride*r
	// (default DefaultShardStride). Validate rejects strides whose
	// derived ports collide or exceed 65535.
	ShardStride int

	// Batch coalesces the per-token-round burst of data frames into
	// single sendmmsg/recvmmsg kernel crossings (UDP modes only). The
	// zero value keeps one syscall per datagram.
	Batch BatchConfig

	// Packing, when non-nil, enables adaptive small-message packing:
	// under load, submissions are bundled up to the configured byte
	// limit per protocol frame and unpacked on delivery; at low rate
	// every message flushes immediately, bounded by MaxDelay. All ring
	// members must agree on whether packing is enabled.
	Packing *PackingConfig
}

// Wire-path validation errors (wrapped with context; branch with
// errors.Is).
var (
	// ErrWireConflict reports mutually exclusive transport options, e.g.
	// WithTransport combined with WithUDP, or a legacy option combined
	// with WithWire.
	ErrWireConflict = errors.New("accelring: conflicting wire configuration")
	// ErrShardPorts reports a sharded UDP port derivation problem:
	// derived ports collide or exceed 65535.
	ErrShardPorts = errors.New("accelring: bad sharded port derivation")
	// ErrBadWire reports an invalid wire mode or knob.
	ErrBadWire = errors.New("accelring: invalid wire configuration")
)

// resolveWire folds the legacy transport fields into c.Wire, infers the
// mode, applies defaults, and validates the result. After it returns nil
// the rest of the code reads only c.Wire.
func (c *Config) resolveWire() error {
	w := &c.Wire
	legacyHub := c.Transport != nil
	legacyShard := len(c.Transports) > 0
	legacyUDP := c.Listen.Data != "" || c.Listen.Token != "" || len(c.Peers) > 0
	wireSet := w.Mode != WireAuto || w.Transport != nil || len(w.Transports) > 0 ||
		w.Listen.Data != "" || w.Listen.Token != "" || len(w.Peers) > 0 ||
		w.MulticastGroup != "" || w.Batch != (BatchConfig{}) ||
		w.Packing != nil || w.ShardStride != 0

	// Legacy options are shims; mixing them with each other or with the
	// config they shim onto is ambiguous, not layered.
	if (legacyHub || legacyShard || legacyUDP) && wireSet {
		return fmt.Errorf("%w: WithWire cannot be combined with the legacy WithTransport/WithUDP/WithShardTransports options", ErrWireConflict)
	}
	if legacyHub && legacyUDP {
		return fmt.Errorf("%w: both WithTransport and WithUDP configured", ErrWireConflict)
	}
	if legacyShard && legacyUDP {
		return fmt.Errorf("%w: both WithShardTransports and WithUDP configured", ErrWireConflict)
	}
	if legacyHub && legacyShard {
		return fmt.Errorf("%w: both WithTransport and WithShardTransports configured", ErrWireConflict)
	}
	if legacyHub {
		w.Transport = c.Transport
	}
	if legacyShard {
		w.Transports = c.Transports
	}
	if legacyUDP {
		w.Listen, w.Peers = c.Listen, c.Peers
	}

	if w.Mode < WireAuto || w.Mode > WireMulticast {
		return fmt.Errorf("%w: unknown mode %d", ErrBadWire, int(w.Mode))
	}
	hasHub := w.Transport != nil || len(w.Transports) > 0
	hasUDP := w.Listen.Data != "" || w.Listen.Token != ""
	if w.Mode == WireAuto {
		switch {
		case hasHub:
			w.Mode = WireHub
		case w.MulticastGroup != "":
			w.Mode = WireMulticast
		case hasUDP:
			w.Mode = WireUnicast
		default:
			return ErrNoTransport
		}
	}

	switch w.Mode {
	case WireHub:
		if !hasHub {
			return fmt.Errorf("%w: hub mode needs a Transport (or Transports)", ErrBadWire)
		}
		if hasUDP || len(w.Peers) > 0 || w.MulticastGroup != "" {
			return fmt.Errorf("%w: hub mode excludes UDP listen addresses and multicast groups", ErrWireConflict)
		}
		if w.Batch != (BatchConfig{}) {
			return fmt.Errorf("%w: syscall batching applies to the UDP wire modes, not hub transports", ErrBadWire)
		}
		if w.Transport != nil && len(w.Transports) > 0 {
			return fmt.Errorf("%w: set Transport or Transports, not both", ErrWireConflict)
		}
		if len(w.Transports) > 0 && len(w.Transports) != c.Shards {
			return fmt.Errorf("%w: %d Transports for %d shards", ErrBadShards, len(w.Transports), c.Shards)
		}
		for r, tr := range w.Transports {
			if tr == nil {
				return fmt.Errorf("%w: Transports[%d] is nil", ErrBadShards, r)
			}
		}
		if c.Shards > 1 && len(w.Transports) == 0 {
			return fmt.Errorf("%w: a sharded node needs one transport per ring: use Transports, not Transport", ErrBadShards)
		}
	case WireUnicast, WireMulticast:
		if hasHub {
			return fmt.Errorf("%w: the UDP wire modes exclude established Transports", ErrWireConflict)
		}
		if w.Listen.Data == "" || w.Listen.Token == "" {
			return ErrNoTransport
		}
		if err := checkUDPAddrs("listen", w.Listen); err != nil {
			return err
		}
		for id, p := range w.Peers {
			if id == 0 {
				return fmt.Errorf("%w: peer with zero ID", ErrBadAddress)
			}
			if err := checkUDPAddrs(fmt.Sprintf("peer %d", id), p); err != nil {
				return err
			}
		}
		if w.Mode == WireMulticast {
			ga, err := net.ResolveUDPAddr("udp4", w.MulticastGroup)
			if err != nil {
				return fmt.Errorf("%w: multicast group %q: %v", ErrBadAddress, w.MulticastGroup, err)
			}
			if ga.IP == nil || !ga.IP.IsMulticast() {
				return fmt.Errorf("%w: %q is not an IPv4 multicast group", ErrBadWire, w.MulticastGroup)
			}
			if w.MulticastTTL < 0 || w.MulticastTTL > 255 {
				return fmt.Errorf("%w: multicast TTL %d out of range [0, 255]", ErrBadWire, w.MulticastTTL)
			}
		} else if w.MulticastGroup != "" {
			return fmt.Errorf("%w: a multicast group with Mode WireUnicast", ErrWireConflict)
		}
	}

	if w.Batch.Send < 0 || w.Batch.Recv < 0 ||
		w.Batch.Send > transport.MaxBatch || w.Batch.Recv > transport.MaxBatch {
		return fmt.Errorf("%w: batch sizes must be in [0, %d], got send %d recv %d",
			ErrBadWire, transport.MaxBatch, w.Batch.Send, w.Batch.Recv)
	}
	if w.Packing != nil {
		if err := w.Packing.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadWire, err)
		}
		if w.Packing.Limit > wire.MaxPayload {
			return fmt.Errorf("%w: packing limit %d exceeds the %d-byte frame payload cap",
				ErrBadWire, w.Packing.Limit, wire.MaxPayload)
		}
	}
	if w.ShardStride < 0 {
		return fmt.Errorf("%w: negative ShardStride %d", ErrBadWire, w.ShardStride)
	}
	if w.ShardStride == 0 {
		w.ShardStride = DefaultShardStride
	}
	if c.Shards > 1 && w.Mode != WireHub {
		if err := c.checkShardPorts(); err != nil {
			return err
		}
	}
	return nil
}

// checkShardPorts derives every per-ring port a sharded UDP node will
// use and rejects non-numeric or zero base ports, overflow past 65535,
// and collisions between derived ports of the same host — the silent
// failure modes of the old implicit base+2r convention.
func (c *Config) checkShardPorts() error {
	w := &c.Wire
	type base struct {
		who  string
		addr string
	}
	bases := []base{
		{"listen data", w.Listen.Data},
		{"listen token", w.Listen.Token},
	}
	for id, p := range w.Peers {
		if id == c.Self {
			continue
		}
		bases = append(bases,
			base{fmt.Sprintf("peer %d data", id), p.Data},
			base{fmt.Sprintf("peer %d token", id), p.Token})
	}
	if w.Mode == WireMulticast {
		bases = append(bases, base{"multicast group", w.MulticastGroup})
	}
	used := make(map[string]string, len(bases)*c.Shards)
	for _, b := range bases {
		host, port, err := net.SplitHostPort(b.addr)
		if err != nil {
			return fmt.Errorf("%w: %s %q: %v", ErrShardPorts, b.who, b.addr, err)
		}
		p, err := strconv.Atoi(port)
		if err != nil || p <= 0 {
			return fmt.Errorf("%w: %s %q needs a numeric nonzero port to derive per-ring ports", ErrShardPorts, b.who, b.addr)
		}
		for r := 0; r < c.Shards; r++ {
			dp := p + w.ShardStride*r
			if dp > 65535 {
				return fmt.Errorf("%w: %s port %d + stride %d × ring %d = %d exceeds 65535",
					ErrShardPorts, b.who, p, w.ShardStride, r, dp)
			}
			key := net.JoinHostPort(host, strconv.Itoa(dp))
			self := fmt.Sprintf("%s ring %d", b.who, r)
			if prev, dup := used[key]; dup {
				return fmt.Errorf("%w: %s and %s both derive %s (stride %d)",
					ErrShardPorts, prev, self, key, w.ShardStride)
			}
			used[key] = self
		}
	}
	return nil
}
