package accelring

import (
	"errors"
	"testing"
	"time"
)

func validUDPConfig() Config {
	return Config{
		Self:   1,
		Listen: UDPAddrs{Data: "127.0.0.1:7400", Token: "127.0.0.1:7401"},
		Peers: map[ProcID]UDPAddrs{
			2: {Data: "127.0.0.1:7410", Token: "127.0.0.1:7411"},
		},
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr error
	}{
		{"valid defaults", func(c *Config) {}, nil},
		{"explicit windows", func(c *Config) {
			c.PersonalWindow, c.GlobalWindow, c.AcceleratedWindow = 10, 100, 7
		}, nil},
		{"original protocol", func(c *Config) { c.Protocol = ProtocolOriginal }, nil},
		{"hub transport", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			ep, _ := NewHub().Endpoint(1, 16, 16)
			c.Transport = ep // any non-nil Transport satisfies Validate
		}, nil},

		{"zero self", func(c *Config) { c.Self = 0 }, ErrNoSelf},
		{"unknown protocol", func(c *Config) { c.Protocol = Protocol(9) }, ErrBadProtocol},
		{"no transport at all", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
		}, ErrNoTransport},
		{"missing token address", func(c *Config) {
			c.Listen.Token = ""
		}, ErrNoTransport},
		{"accelerated exceeds personal", func(c *Config) {
			c.PersonalWindow, c.GlobalWindow, c.AcceleratedWindow = 10, 100, 11
		}, ErrBadWindow},
		{"global below personal", func(c *Config) {
			c.PersonalWindow, c.GlobalWindow = 40, 30
		}, ErrBadWindow},
		{"negative window", func(c *Config) {
			c.PersonalWindow = -1
		}, ErrBadWindow},
		{"negative timeout", func(c *Config) {
			c.Timeouts.TokenLoss = -time.Second
		}, ErrBadTimeout},
		{"negative event buffer", func(c *Config) {
			c.EventBuffer = -1
		}, ErrBadBufferSize},
		{"bad listen address", func(c *Config) {
			c.Listen.Data = "not a udp address:::"
		}, ErrBadAddress},
		{"bad peer address", func(c *Config) {
			c.Peers[2] = UDPAddrs{Data: "127.0.0.1:7410", Token: "host:notaport"}
		}, ErrBadAddress},
		{"peer with zero id", func(c *Config) {
			c.Peers[0] = UDPAddrs{Data: "127.0.0.1:1", Token: "127.0.0.1:2"}
		}, ErrBadAddress},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validUDPConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

// TestWireConfigValidate covers the unified wire-path resolve: every
// mode, every legacy/new combination, and every knob bound.
func TestWireConfigValidate(t *testing.T) {
	hubEp := func() Transport {
		ep, _ := NewHub().Endpoint(1, 16, 16)
		return ep
	}
	udpWire := func() WireConfig {
		return WireConfig{
			Listen: UDPAddrs{Data: "127.0.0.1:7400", Token: "127.0.0.1:7401"},
			Peers: map[ProcID]UDPAddrs{
				2: {Data: "127.0.0.1:7410", Token: "127.0.0.1:7411"},
			},
		}
	}
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr error
		check   func(*testing.T, *Config)
	}{
		// Mode inference.
		{"wire unicast auto", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			c.Wire = udpWire()
		}, nil, func(t *testing.T, c *Config) {
			if c.Wire.Mode != WireUnicast {
				t.Fatalf("Mode = %v, want unicast", c.Wire.Mode)
			}
		}},
		{"wire hub auto", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			c.Wire = WireConfig{Transport: hubEp()}
		}, nil, func(t *testing.T, c *Config) {
			if c.Wire.Mode != WireHub {
				t.Fatalf("Mode = %v, want hub", c.Wire.Mode)
			}
		}},
		{"wire multicast auto", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.MulticastGroup = "239.192.7.1:7600"
			c.Wire = w
		}, nil, func(t *testing.T, c *Config) {
			if c.Wire.Mode != WireMulticast {
				t.Fatalf("Mode = %v, want multicast", c.Wire.Mode)
			}
		}},
		{"legacy UDP resolves to unicast", func(c *Config) {}, nil,
			func(t *testing.T, c *Config) {
				if c.Wire.Mode != WireUnicast {
					t.Fatalf("Mode = %v, want unicast", c.Wire.Mode)
				}
				if c.Wire.Listen != c.Listen {
					t.Fatalf("legacy Listen not folded into Wire")
				}
			}},
		{"stride default applied", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			c.Wire = udpWire()
		}, nil, func(t *testing.T, c *Config) {
			if c.Wire.ShardStride != DefaultShardStride {
				t.Fatalf("ShardStride = %d, want %d", c.Wire.ShardStride, DefaultShardStride)
			}
		}},
		{"batching and packing knobs accepted", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.Batch = BatchConfig{Send: 64, Recv: 32}
			w.Packing = &PackingConfig{Limit: 1024, MaxDelay: time.Millisecond}
			c.Wire = w
		}, nil, nil},

		// Conflicts: legacy × legacy and legacy × WithWire.
		{"transport plus udp", func(c *Config) {
			c.Transport = hubEp()
		}, ErrWireConflict, nil},
		{"transport plus shard transports", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			c.Transport = hubEp()
			c.Transports = []Transport{hubEp()}
		}, ErrWireConflict, nil},
		{"shard transports plus udp", func(c *Config) {
			c.Transports = []Transport{hubEp()}
		}, ErrWireConflict, nil},
		{"legacy udp plus wire", func(c *Config) {
			c.Wire = udpWire()
		}, ErrWireConflict, nil},
		{"legacy transport plus wire", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			c.Transport = hubEp()
			c.Wire = WireConfig{Batch: BatchConfig{Send: 8}}
		}, ErrWireConflict, nil},
		{"hub transport plus listen inside wire", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.Transport = hubEp()
			c.Wire = w
		}, ErrWireConflict, nil},
		{"both transport and transports", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			c.Wire = WireConfig{Transport: hubEp(), Transports: []Transport{hubEp()}}
		}, ErrWireConflict, nil},
		{"multicast group in unicast mode", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.Mode = WireUnicast
			w.MulticastGroup = "239.192.7.1:7600"
			c.Wire = w
		}, ErrWireConflict, nil},

		// Mode/knob errors.
		{"unknown wire mode", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.Mode = WireMode(99)
			c.Wire = w
		}, ErrBadWire, nil},
		{"hub mode without transport", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			c.Wire = WireConfig{Mode: WireHub}
		}, ErrBadWire, nil},
		{"multicast mode without group", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.Mode = WireMulticast
			c.Wire = w
		}, ErrBadWire, nil},
		{"non-multicast group address", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.MulticastGroup = "127.0.0.1:7600"
			c.Wire = w
		}, ErrBadWire, nil},
		{"multicast ttl out of range", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.MulticastGroup = "239.192.7.1:7600"
			w.MulticastTTL = 300
			c.Wire = w
		}, ErrBadWire, nil},
		{"batching on hub transport", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			c.Wire = WireConfig{Transport: hubEp(), Batch: BatchConfig{Send: 8}}
		}, ErrBadWire, nil},
		{"negative batch", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.Batch.Send = -1
			c.Wire = w
		}, ErrBadWire, nil},
		{"oversized batch", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.Batch.Recv = 100000
			c.Wire = w
		}, ErrBadWire, nil},
		{"bad packing limit", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.Packing = &PackingConfig{Limit: 3}
			c.Wire = w
		}, ErrBadWire, nil},
		{"packing limit beyond frame cap", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.Packing = &PackingConfig{Limit: 1 << 20}
			c.Wire = w
		}, ErrBadWire, nil},
		{"negative stride", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.ShardStride = -2
			c.Wire = w
		}, ErrBadWire, nil},

		// Sharded port derivation.
		{"stride collision", func(c *Config) {
			c.Shards = 2
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			// Token base is data base + stride: ring 1's data port lands
			// exactly on ring 0's token port.
			w.Listen = UDPAddrs{Data: "127.0.0.1:7400", Token: "127.0.0.1:7402"}
			w.Peers = map[ProcID]UDPAddrs{2: {Data: "127.0.0.1:7500", Token: "127.0.0.1:7501"}}
			c.Wire = w
		}, ErrShardPorts, nil},
		{"stride overflow", func(c *Config) {
			c.Shards = 2
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.Listen = UDPAddrs{Data: "127.0.0.1:65535", Token: "127.0.0.1:7401"}
			w.Peers = map[ProcID]UDPAddrs{2: {Data: "127.0.0.1:7410", Token: "127.0.0.1:7411"}}
			c.Wire = w
		}, ErrShardPorts, nil},
		{"wide stride ok", func(c *Config) {
			c.Shards = 4
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.ShardStride = 10
			w.Listen = UDPAddrs{Data: "127.0.0.1:7400", Token: "127.0.0.1:7401"}
			w.Peers = map[ProcID]UDPAddrs{2: {Data: "127.0.0.1:7500", Token: "127.0.0.1:7501"}}
			c.Wire = w
		}, nil, nil},
		{"sharded multicast group overflow", func(c *Config) {
			c.Shards = 3
			c.Listen, c.Peers = UDPAddrs{}, nil
			w := udpWire()
			w.MulticastGroup = "239.192.7.1:65534"
			c.Wire = w
		}, ErrShardPorts, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validUDPConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				if tt.check != nil {
					tt.check(t, &cfg)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestConfigValidateAppliesDefaults(t *testing.T) {
	cfg := validUDPConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.PersonalWindow != DefaultPersonalWindow ||
		cfg.GlobalWindow != DefaultGlobalWindow ||
		cfg.AcceleratedWindow != DefaultAcceleratedWindow {
		t.Fatalf("windows = %d/%d/%d, want defaults %d/%d/%d",
			cfg.PersonalWindow, cfg.GlobalWindow, cfg.AcceleratedWindow,
			DefaultPersonalWindow, DefaultGlobalWindow, DefaultAcceleratedWindow)
	}
	if cfg.EventBuffer != DefaultEventBuffer {
		t.Fatalf("EventBuffer = %d, want %d", cfg.EventBuffer, DefaultEventBuffer)
	}

	// The original protocol never pre-sends: accelerated window pins to 0.
	cfg = validUDPConfig()
	cfg.Protocol = ProtocolOriginal
	cfg.AcceleratedWindow = 5
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.AcceleratedWindow != 0 {
		t.Fatalf("original protocol AcceleratedWindow = %d, want 0", cfg.AcceleratedWindow)
	}

	// A small personal window caps the default accelerated window.
	cfg = validUDPConfig()
	cfg.PersonalWindow, cfg.GlobalWindow = 4, 40
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.AcceleratedWindow != 4 {
		t.Fatalf("capped AcceleratedWindow = %d, want 4", cfg.AcceleratedWindow)
	}
}
