package accelring

import (
	"errors"
	"testing"
	"time"
)

func validUDPConfig() Config {
	return Config{
		Self:   1,
		Listen: UDPAddrs{Data: "127.0.0.1:7400", Token: "127.0.0.1:7401"},
		Peers: map[ProcID]UDPAddrs{
			2: {Data: "127.0.0.1:7410", Token: "127.0.0.1:7411"},
		},
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr error
	}{
		{"valid defaults", func(c *Config) {}, nil},
		{"explicit windows", func(c *Config) {
			c.PersonalWindow, c.GlobalWindow, c.AcceleratedWindow = 10, 100, 7
		}, nil},
		{"original protocol", func(c *Config) { c.Protocol = ProtocolOriginal }, nil},
		{"hub transport", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
			ep, _ := NewHub().Endpoint(1, 16, 16)
			c.Transport = ep // any non-nil Transport satisfies Validate
		}, nil},

		{"zero self", func(c *Config) { c.Self = 0 }, ErrNoSelf},
		{"unknown protocol", func(c *Config) { c.Protocol = Protocol(9) }, ErrBadProtocol},
		{"no transport at all", func(c *Config) {
			c.Listen, c.Peers = UDPAddrs{}, nil
		}, ErrNoTransport},
		{"missing token address", func(c *Config) {
			c.Listen.Token = ""
		}, ErrNoTransport},
		{"accelerated exceeds personal", func(c *Config) {
			c.PersonalWindow, c.GlobalWindow, c.AcceleratedWindow = 10, 100, 11
		}, ErrBadWindow},
		{"global below personal", func(c *Config) {
			c.PersonalWindow, c.GlobalWindow = 40, 30
		}, ErrBadWindow},
		{"negative window", func(c *Config) {
			c.PersonalWindow = -1
		}, ErrBadWindow},
		{"negative timeout", func(c *Config) {
			c.Timeouts.TokenLoss = -time.Second
		}, ErrBadTimeout},
		{"negative event buffer", func(c *Config) {
			c.EventBuffer = -1
		}, ErrBadBufferSize},
		{"bad listen address", func(c *Config) {
			c.Listen.Data = "not a udp address:::"
		}, ErrBadAddress},
		{"bad peer address", func(c *Config) {
			c.Peers[2] = UDPAddrs{Data: "127.0.0.1:7410", Token: "host:notaport"}
		}, ErrBadAddress},
		{"peer with zero id", func(c *Config) {
			c.Peers[0] = UDPAddrs{Data: "127.0.0.1:1", Token: "127.0.0.1:2"}
		}, ErrBadAddress},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validUDPConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestConfigValidateAppliesDefaults(t *testing.T) {
	cfg := validUDPConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.PersonalWindow != DefaultPersonalWindow ||
		cfg.GlobalWindow != DefaultGlobalWindow ||
		cfg.AcceleratedWindow != DefaultAcceleratedWindow {
		t.Fatalf("windows = %d/%d/%d, want defaults %d/%d/%d",
			cfg.PersonalWindow, cfg.GlobalWindow, cfg.AcceleratedWindow,
			DefaultPersonalWindow, DefaultGlobalWindow, DefaultAcceleratedWindow)
	}
	if cfg.EventBuffer != DefaultEventBuffer {
		t.Fatalf("EventBuffer = %d, want %d", cfg.EventBuffer, DefaultEventBuffer)
	}

	// The original protocol never pre-sends: accelerated window pins to 0.
	cfg = validUDPConfig()
	cfg.Protocol = ProtocolOriginal
	cfg.AcceleratedWindow = 5
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.AcceleratedWindow != 0 {
		t.Fatalf("original protocol AcceleratedWindow = %d, want 0", cfg.AcceleratedWindow)
	}

	// A small personal window caps the default accelerated window.
	cfg = validUDPConfig()
	cfg.PersonalWindow, cfg.GlobalWindow = 4, 40
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.AcceleratedWindow != 4 {
		t.Fatalf("capped AcceleratedWindow = %d, want 4", cfg.AcceleratedWindow)
	}
}
