package accelring

import (
	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/transport"
)

// Type aliases re-exporting the stable pieces of the internal packages, so
// applications only ever import accelring.
type (
	// ProcID identifies one ring participant (a daemon in the paper's
	// terms). IDs must be unique and nonzero across the deployment.
	ProcID = evs.ProcID

	// ViewID identifies a ring configuration: the representative that
	// formed it plus a sequence number.
	ViewID = evs.ViewID

	// Service is a delivery guarantee level (Reliable … Safe).
	Service = evs.Service

	// ClientID globally identifies a group-messaging endpoint: the node
	// it lives on plus a node-local number. The facade gives each Node
	// exactly one endpoint, so ClientID.Daemon equals the node's Self.
	ClientID = group.ClientID

	// Transport moves protocol frames between participants.
	Transport = transport.Transport

	// Hub is an in-process transport for tests and examples: endpoints
	// created from one Hub form a loss-free virtual network.
	Hub = transport.Hub

	// UDPAddrs holds one participant's pair of UDP listen addresses —
	// data and token traffic use separate sockets, as in the paper's
	// implementations.
	UDPAddrs = transport.UDPPeer

	// Timeouts are the membership protocol's timing parameters; zero
	// fields take defaults (see DefaultTimeouts).
	Timeouts = membership.Timeouts

	// Registry is a metrics registry (counters, gauges, histograms) that
	// the node populates when passed via WithObserver.
	Registry = obs.Registry

	// RingTracer retains the most recent token-round traces; serve it
	// with a DebugServer at /debug/ring.
	RingTracer = obs.RingTracer

	// RoundTrace is one token visit: sequence numbers, aru, fcc, counts
	// of new/retransmitted messages and the token hold time.
	RoundTrace = obs.RoundTrace

	// DebugServer serves /debug/vars, /debug/ring and /debug/pprof.
	DebugServer = obs.Server
)

// Delivery service levels, in increasing strength. The ring totally orders
// every message; the level determines when delivery is allowed.
const (
	Reliable = evs.Reliable
	FIFO     = evs.FIFO
	Causal   = evs.Causal
	Agreed   = evs.Agreed
	Safe     = evs.Safe
)

// NewHub returns an in-process virtual network for tests and examples.
func NewHub() *Hub { return transport.NewHub() }

// NewRegistry returns an empty metrics registry to pass to WithObserver
// and StartDebugServer.
func NewRegistry() *Registry { return obs.NewRegistry() }

// DefaultTimeouts returns the membership timing defaults used when
// Config.Timeouts is zero.
func DefaultTimeouts() Timeouts { return membership.DefaultTimeouts() }

// StartDebugServer serves reg at addr: /debug/vars (JSON metrics),
// /debug/ring (recent token-round traces; register a node's tracer with
// AddTracer) and /debug/pprof. Close the returned server when done.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	return obs.StartServer(addr, reg)
}
