package accelring

import (
	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/transport"
)

// Type aliases re-exporting the stable pieces of the internal packages, so
// applications only ever import accelring.
type (
	// ProcID identifies one ring participant (a daemon in the paper's
	// terms). IDs must be unique and nonzero across the deployment.
	ProcID = evs.ProcID

	// ViewID identifies a ring configuration: the representative that
	// formed it plus a sequence number.
	ViewID = evs.ViewID

	// Service is a delivery guarantee level (Reliable … Safe).
	Service = evs.Service

	// ClientID globally identifies a group-messaging endpoint: the node
	// it lives on plus a node-local number. The facade gives each Node
	// exactly one endpoint, so ClientID.Daemon equals the node's Self.
	ClientID = group.ClientID

	// Transport moves protocol frames between participants.
	Transport = transport.Transport

	// Hub is an in-process transport for tests and examples: endpoints
	// created from one Hub form a loss-free virtual network.
	Hub = transport.Hub

	// UDPAddrs holds one participant's pair of UDP listen addresses —
	// data and token traffic use separate sockets, as in the paper's
	// implementations.
	UDPAddrs = transport.UDPPeer

	// Timeouts are the membership protocol's timing parameters; zero
	// fields take defaults (see DefaultTimeouts).
	Timeouts = membership.Timeouts

	// Registry is a metrics registry (counters, gauges, histograms) that
	// the node populates when passed via WithObserver.
	Registry = obs.Registry

	// RingTracer retains the most recent token-round traces; serve it
	// with a DebugServer at /debug/ring.
	RingTracer = obs.RingTracer

	// RoundTrace is one token visit: sequence numbers, aru, fcc, counts
	// of new/retransmitted messages and the token hold time.
	RoundTrace = obs.RoundTrace

	// MsgTracer retains sampled message-lifecycle spans (see
	// WithTraceSampling); serve it with a DebugServer at /debug/msgtrace.
	MsgTracer = obs.MsgTracer

	// MsgEvent is one stage of a sampled message's lifecycle: submit,
	// pre/post-token multicast, receive, retransmission, delivery.
	MsgEvent = obs.MsgEvent

	// MsgStage labels the lifecycle stage of a MsgEvent.
	MsgStage = obs.MsgStage

	// FlightRecorder is a black-box ring of the last protocol events,
	// dumpable as JSONL; serve it with a DebugServer at /debug/flight.
	FlightRecorder = obs.FlightRecorder

	// FlightEvent is one compact protocol event in a FlightRecorder.
	FlightEvent = obs.FlightEvent

	// DebugServer serves /debug/vars, /debug/ring, /debug/msgtrace,
	// /debug/flight, /debug/health, /debug/latency, /metrics and
	// /debug/pprof.
	DebugServer = obs.Server

	// LatencyAgg folds sampled message spans into per-stage latency
	// histograms (latency.stage.*_ns, latency.e2e_ns); attach a node with
	// Node.AttachLatency and serve digests with DebugServer.SetLatency.
	LatencyAgg = obs.LatencyAgg

	// SLO evaluates p99/p999 latency targets over the e2e histograms a
	// LatencyAgg maintains, exporting burn-rate gauges (slo.*).
	SLO = obs.SLO

	// SLOConfig parameterizes an SLO evaluator: targets, rolling window,
	// burn factor.
	SLOConfig = obs.SLOConfig

	// SLOStatus is one scope's state after an SLO evaluation pass.
	SLOStatus = obs.SLOStatus
)

// Delivery service levels, in increasing strength. The ring totally orders
// every message; the level determines when delivery is allowed.
const (
	Reliable = evs.Reliable
	FIFO     = evs.FIFO
	Causal   = evs.Causal
	Agreed   = evs.Agreed
	Safe     = evs.Safe
)

// Message-lifecycle stages recorded by a MsgTracer (see
// WithTraceSampling), in protocol order.
const (
	StagePack        = obs.StagePack
	StageSubmit      = obs.StageSubmit
	StageSentPre     = obs.StageSentPre
	StageSentPost    = obs.StageSentPost
	StageBatchFlush  = obs.StageBatchFlush
	StageRecv        = obs.StageRecv
	StageRecvDup     = obs.StageRecvDup
	StageRtrRequest  = obs.StageRtrRequest
	StageRetransmit  = obs.StageRetransmit
	StageDeliver     = obs.StageDeliver
	StageMergeOut    = obs.StageMergeOut
	StageFanout      = obs.StageFanout
	StageWriterFlush = obs.StageWriterFlush
	StageClientRecv  = obs.StageClientRecv
)

// NewHub returns an in-process virtual network for tests and examples.
func NewHub() *Hub { return transport.NewHub() }

// NewRegistry returns an empty metrics registry to pass to WithObserver
// and StartDebugServer.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewFlightRecorder returns a black-box recorder of the last depth
// protocol events (depth <= 0 uses a default). Register it with
// DebugServer.AddFlight to serve dumps at /debug/flight.
func NewFlightRecorder(depth int) *FlightRecorder { return obs.NewFlightRecorder(depth) }

// NewLatencyAgg returns a latency aggregator registering its per-stage
// histograms on reg (nil reg disables attribution). Feed it a node's
// tracers with Node.AttachLatency and serve it at /debug/latency with
// DebugServer.SetLatency.
func NewLatencyAgg(reg *Registry) *LatencyAgg { return obs.NewLatencyAgg(reg) }

// NewSLO returns a latency-SLO evaluator exporting per-scope burn-rate
// gauges on reg. Track each scope's end-to-end histogram with
// SLO.Track(scope, agg.E2E(scope)).
func NewSLO(reg *Registry, cfg SLOConfig) *SLO { return obs.NewSLO(reg, cfg) }

// DefaultTimeouts returns the membership timing defaults used when
// Config.Timeouts is zero.
func DefaultTimeouts() Timeouts { return membership.DefaultTimeouts() }

// StartDebugServer serves reg at addr: /debug/vars (JSON metrics),
// /metrics (Prometheus text exposition), /debug/ring (recent token-round
// traces; register a node's tracer with AddTracer), /debug/msgtrace
// (sampled message spans; AddMsgTracer), /debug/flight (black-box event
// dumps; AddFlight), /debug/health (ring health; SetHealth) and
// /debug/pprof. Close the returned server when done.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	return obs.StartServer(addr, reg)
}
