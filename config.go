package accelring

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"accelring/internal/core"
	"accelring/internal/flowcontrol"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
	"accelring/internal/shard"
	"accelring/internal/transport"
	"accelring/internal/wire"
)

// Protocol selects the ring protocol variant.
type Protocol int

const (
	// ProtocolAccelerated is the paper's Accelerated Ring protocol:
	// messages are multicast both before and after passing the token, so
	// they circulate while the token is still in flight.
	ProtocolAccelerated Protocol = iota
	// ProtocolOriginal is the original Totem-style Ring protocol: all
	// sending happens while holding the token.
	ProtocolOriginal
)

func (p Protocol) String() string {
	switch p {
	case ProtocolAccelerated:
		return "accelerated"
	case ProtocolOriginal:
		return "original"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Default window sizes, matching the daemon's defaults (paper §VI uses
// comparable settings for the 10-Gig evaluation).
const (
	DefaultPersonalWindow    = 20
	DefaultGlobalWindow      = 160
	DefaultAcceleratedWindow = 15
	// DefaultEventBuffer is the default capacity of the Events channel.
	DefaultEventBuffer = 1024
)

// Config configures a Node. The zero value plus a Self ID and a Transport
// (or UDP addresses) is usable: Validate fills in documented defaults.
type Config struct {
	// Self is this participant's unique nonzero identifier.
	Self ProcID

	// Protocol selects Accelerated (default) or Original.
	Protocol Protocol

	// PersonalWindow bounds how many new messages one participant may
	// introduce per token round (default DefaultPersonalWindow).
	PersonalWindow int
	// GlobalWindow bounds new messages introduced ring-wide per round
	// (default DefaultGlobalWindow). Must be at least PersonalWindow.
	GlobalWindow int
	// AcceleratedWindow bounds how many of the personal-window messages
	// are multicast before passing the token (default
	// DefaultAcceleratedWindow, capped at PersonalWindow; ignored by
	// ProtocolOriginal). Must not exceed PersonalWindow.
	AcceleratedWindow int

	// Timeouts are the membership timing parameters; zero fields take
	// membership defaults.
	Timeouts Timeouts

	// Shards is the number of independent ring instances this node runs
	// (default 1, max MaxShards). With more than one, groups are
	// partitioned across rings by a stable hash of the group name:
	// per-group total order is unchanged and aggregate throughput
	// multiplies, but cross-group delivery order is only guaranteed for
	// groups owned by the same ring (see RingOf). A sharded UDP node
	// derives ring r's ports by offsetting every base port by
	// Wire.ShardStride*r.
	Shards int

	// SkipInterval is the lambda-pacing tick of the cross-ring merge
	// (Shards > 1 only): how often the node checks for idle rings that
	// block the global delivery order and, when it is the blocked ring's
	// representative, orders a skip claim on it (default 2ms). Smaller
	// values cut the latency a busy ring's messages wait on an idle
	// one; larger values cut skip traffic.
	SkipInterval time.Duration
	// SkipAhead is how many virtual slots past the blocked head each
	// skip claims (default 32). Larger values cut skip traffic on quiet
	// rings at the cost of letting a quiet ring's next real message
	// order later relative to busy rings.
	SkipAhead uint64

	// Wire is the unified transport configuration: mode (hub, unicast,
	// multicast), addressing, per-shard port stride, syscall batching,
	// and adaptive message packing. See WireConfig and WithWire.
	Wire WireConfig

	// Transport carries frames when non-nil (e.g. a Hub endpoint for
	// tests). The node takes ownership and closes it on Close.
	//
	// Deprecated: set Wire.Transport (or use WithWire). Kept as a shim;
	// combining it with Wire or the other legacy fields fails Validate
	// with ErrWireConflict.
	Transport Transport
	// Transports carries frames per ring in a sharded node: Transports[r]
	// is ring r's binding. When set, its length must equal Shards.
	//
	// Deprecated: set Wire.Transports (or use WithWire).
	Transports []Transport
	// Listen and Peers configure a unicast UDP transport: Listen holds
	// this node's data/token listen addresses, Peers the other
	// participants'.
	//
	// Deprecated: set Wire.Listen/Wire.Peers (or use WithWire), which
	// also unlock the multicast mode and the batching/packing knobs.
	Listen UDPAddrs
	Peers  map[ProcID]UDPAddrs

	// EventBuffer is the Events channel capacity (default
	// DefaultEventBuffer). A consumer that falls this far behind is
	// disconnected with ErrSlowConsumer rather than allowed to stall the
	// ring.
	EventBuffer int

	// Observer, when non-nil, receives protocol metrics (counters,
	// gauges, latency histograms) under ring.*, membership.* and
	// transport.* names. Serve it with StartDebugServer.
	Observer *Registry
	// TraceDepth is how many token-round traces the node retains for
	// /debug/ring (default obs.DefaultTraceDepth; only used when
	// Observer is set).
	TraceDepth int
	// TraceSampling samples every TraceSampling-th sequence number for
	// message-lifecycle tracing (see WithTraceSampling). Zero disables
	// tracing; negative is invalid.
	TraceSampling int

	// RingKey, when non-empty, authenticates every ring wire frame
	// (token and data) with a truncated HMAC-SHA256 tag. Each ring of a
	// sharded node signs with its own subkey derived from this master
	// key, so frames cannot be replayed across rings. All participants
	// must share the key; forged frames are counted on
	// transport.auth_drops and dropped before they can touch ordering
	// state.
	RingKey []byte
}

// Validation errors returned by Config.Validate (wrapped with context;
// branch with errors.Is).
var (
	ErrNoSelf        = errors.New("accelring: config needs a nonzero Self ID")
	ErrNoTransport   = errors.New("accelring: config needs a Transport or UDP Listen addresses")
	ErrBadWindow     = errors.New("accelring: invalid flow-control window")
	ErrBadTimeout    = errors.New("accelring: timeouts must be non-negative")
	ErrBadAddress    = errors.New("accelring: bad UDP address")
	ErrBadProtocol   = errors.New("accelring: unknown protocol variant")
	ErrBadBufferSize = errors.New("accelring: buffer sizes must be non-negative")
	ErrBadShards     = errors.New("accelring: invalid shard configuration")
)

// MaxShards bounds Config.Shards.
const MaxShards = shard.MaxShards

// RingOf returns the ring that owns a group name in a node opened with
// WithShards(shards). The hash is stable across processes and releases:
// every node routes a group to the same ring, which is what preserves the
// group's total order in a sharded deployment.
func RingOf(groupName string, shards int) int { return shard.RingOf(groupName, shards) }

// Validate fills in documented defaults for zero fields, then checks the
// configuration, returning the first problem found. Open calls it for
// you; call it directly to check a config without starting a node.
func (c *Config) Validate() error {
	if c.Self == 0 {
		return ErrNoSelf
	}
	if c.Protocol != ProtocolAccelerated && c.Protocol != ProtocolOriginal {
		return fmt.Errorf("%w: %d", ErrBadProtocol, int(c.Protocol))
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 || c.Shards > MaxShards {
		return fmt.Errorf("%w: Shards %d out of range [1, %d]", ErrBadShards, c.Shards, MaxShards)
	}

	// Defaults.
	if c.PersonalWindow == 0 {
		c.PersonalWindow = DefaultPersonalWindow
	}
	if c.GlobalWindow == 0 {
		c.GlobalWindow = DefaultGlobalWindow
	}
	if c.Protocol == ProtocolAccelerated && c.AcceleratedWindow == 0 {
		c.AcceleratedWindow = DefaultAcceleratedWindow
		if c.AcceleratedWindow > c.PersonalWindow {
			c.AcceleratedWindow = c.PersonalWindow
		}
	}
	if c.Protocol == ProtocolOriginal {
		c.AcceleratedWindow = 0
	}
	if c.EventBuffer == 0 {
		c.EventBuffer = DefaultEventBuffer
	}
	if c.TraceDepth == 0 {
		c.TraceDepth = obs.DefaultTraceDepth
	}
	if c.SkipInterval < 0 {
		return fmt.Errorf("%w: got %v", ErrBadTimeout, c.SkipInterval)
	}
	if c.SkipInterval == 0 {
		c.SkipInterval = 2 * time.Millisecond
	}

	// Windows.
	if c.PersonalWindow < 0 || c.GlobalWindow < 0 || c.AcceleratedWindow < 0 {
		return fmt.Errorf("%w: windows must be non-negative", ErrBadWindow)
	}
	if c.GlobalWindow < c.PersonalWindow {
		return fmt.Errorf("%w: global window %d < personal window %d",
			ErrBadWindow, c.GlobalWindow, c.PersonalWindow)
	}
	if c.AcceleratedWindow > c.PersonalWindow {
		return fmt.Errorf("%w: accelerated window %d > personal window %d",
			ErrBadWindow, c.AcceleratedWindow, c.PersonalWindow)
	}

	// Timeouts: zero fields take membership defaults, negatives are bugs.
	def := membership.DefaultTimeouts()
	for _, f := range []struct {
		d   *time.Duration
		def time.Duration
	}{
		{&c.Timeouts.JoinInterval, def.JoinInterval},
		{&c.Timeouts.Gather, def.Gather},
		{&c.Timeouts.Commit, def.Commit},
		{&c.Timeouts.TokenLoss, def.TokenLoss},
		{&c.Timeouts.TokenRetransmit, def.TokenRetransmit},
		{&c.Timeouts.Beacon, def.Beacon}, // zero: membership derives it
	} {
		if *f.d < 0 {
			return fmt.Errorf("%w: got %v", ErrBadTimeout, *f.d)
		}
		if *f.d == 0 {
			*f.d = f.def
		}
	}

	if c.EventBuffer < 0 || c.TraceDepth < 0 || c.TraceSampling < 0 {
		return ErrBadBufferSize
	}

	// Transport: fold the legacy fields into Wire and validate the
	// result — the single resolve path for every mode and knob.
	return c.resolveWire()
}

// shiftPort returns addr with its numeric, nonzero port offset by `by` —
// how a sharded node derives ring r's addresses from the base ones
// (by = ShardStride * r; see WireConfig.ShardStride).
func shiftPort(addr string, by int) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", err
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", fmt.Errorf("port %q is not numeric", port)
	}
	if p <= 0 || p+by > 65535 {
		return "", fmt.Errorf("port %d+%d out of range", p, by)
	}
	return net.JoinHostPort(host, strconv.Itoa(p+by)), nil
}

// shiftUDPAddrs offsets both ports of an address pair.
func shiftUDPAddrs(p UDPAddrs, by int) (UDPAddrs, error) {
	var out UDPAddrs
	var err error
	if out.Data, err = shiftPort(p.Data, by); err != nil {
		return out, err
	}
	out.Token, err = shiftPort(p.Token, by)
	return out, err
}

func checkUDPAddrs(who string, p UDPAddrs) error {
	for _, a := range []string{p.Data, p.Token} {
		if _, err := net.ResolveUDPAddr("udp", a); err != nil {
			return fmt.Errorf("%w: %s %q: %v", ErrBadAddress, who, a, err)
		}
	}
	return nil
}

// ringConfig derives the internal driver configuration. The caller wires
// Transport, OnEvent and Observer afterwards.
func (c *Config) ringConfig() ringnode.Config {
	rc := ringnode.Config{
		Self: c.Self,
		Windows: flowcontrol.Windows{
			Personal:    c.PersonalWindow,
			Global:      c.GlobalWindow,
			Accelerated: c.AcceleratedWindow,
		},
		Timeouts: c.Timeouts,
	}
	if c.Protocol == ProtocolOriginal {
		rc.Priority = core.PriorityConservative
	} else {
		rc.Priority = core.PriorityAggressive
		rc.DelayedRequests = true
	}
	rc.Packing = c.Wire.Packing
	return rc
}

// openTransport returns ring's transport per the resolved Wire config:
// the explicit per-ring (or single) transport in hub mode, otherwise a
// UDP one — on the base ports for ring 0, and on ports offset by
// ShardStride*ring for the other rings of a sharded node, with the
// configured batching and (in multicast mode) the group joined.
// Validate must have passed.
func (c *Config) openTransport(ring int) (Transport, error) {
	w := &c.Wire
	if w.Mode == WireHub {
		if len(w.Transports) > 0 {
			return c.keyed(w.Transports[ring], ring), nil
		}
		return c.keyed(w.Transport, ring), nil
	}
	listen, peers := w.Listen, w.Peers
	if c.Shards > 1 {
		var err error
		if listen, err = shiftUDPAddrs(w.Listen, w.ShardStride*ring); err != nil {
			return nil, err
		}
		peers = make(map[ProcID]UDPAddrs, len(w.Peers))
		for id, p := range w.Peers {
			if peers[id], err = shiftUDPAddrs(p, w.ShardStride*ring); err != nil {
				return nil, err
			}
		}
	}
	ucfg := transport.UDPConfig{
		Self:   c.Self,
		Listen: listen,
		Peers:  peers,
		Batch:  w.Batch,
		Obs:    c.Observer,
	}
	if w.Mode == WireMulticast {
		group := w.MulticastGroup
		if c.Shards > 1 {
			var err error
			if group, err = shiftPort(group, w.ShardStride*ring); err != nil {
				return nil, err
			}
		}
		ucfg.Multicast = &transport.UDPMulticast{
			Group:           group,
			TTL:             w.MulticastTTL,
			Interface:       w.MulticastInterface,
			DisableLoopback: w.MulticastNoLoopback,
		}
	}
	tr, err := transport.NewUDP(ucfg)
	if err != nil {
		return nil, err
	}
	return c.keyed(tr, ring), nil
}

// keyed wraps tr with per-ring HMAC frame authentication when RingKey is
// set; with no key it returns tr unchanged.
func (c *Config) keyed(tr Transport, ring int) Transport {
	if len(c.RingKey) == 0 {
		return tr
	}
	sub := wire.DeriveKey(c.RingKey, "ring"+strconv.Itoa(ring))
	return transport.WithAuth(tr, sub, c.Observer, nil)
}
