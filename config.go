package accelring

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"accelring/internal/core"
	"accelring/internal/flowcontrol"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
	"accelring/internal/shard"
	"accelring/internal/transport"
	"accelring/internal/wire"
)

// Protocol selects the ring protocol variant.
type Protocol int

const (
	// ProtocolAccelerated is the paper's Accelerated Ring protocol:
	// messages are multicast both before and after passing the token, so
	// they circulate while the token is still in flight.
	ProtocolAccelerated Protocol = iota
	// ProtocolOriginal is the original Totem-style Ring protocol: all
	// sending happens while holding the token.
	ProtocolOriginal
)

func (p Protocol) String() string {
	switch p {
	case ProtocolAccelerated:
		return "accelerated"
	case ProtocolOriginal:
		return "original"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// Default window sizes, matching the daemon's defaults (paper §VI uses
// comparable settings for the 10-Gig evaluation).
const (
	DefaultPersonalWindow    = 20
	DefaultGlobalWindow      = 160
	DefaultAcceleratedWindow = 15
	// DefaultEventBuffer is the default capacity of the Events channel.
	DefaultEventBuffer = 1024
)

// Config configures a Node. The zero value plus a Self ID and a Transport
// (or UDP addresses) is usable: Validate fills in documented defaults.
type Config struct {
	// Self is this participant's unique nonzero identifier.
	Self ProcID

	// Protocol selects Accelerated (default) or Original.
	Protocol Protocol

	// PersonalWindow bounds how many new messages one participant may
	// introduce per token round (default DefaultPersonalWindow).
	PersonalWindow int
	// GlobalWindow bounds new messages introduced ring-wide per round
	// (default DefaultGlobalWindow). Must be at least PersonalWindow.
	GlobalWindow int
	// AcceleratedWindow bounds how many of the personal-window messages
	// are multicast before passing the token (default
	// DefaultAcceleratedWindow, capped at PersonalWindow; ignored by
	// ProtocolOriginal). Must not exceed PersonalWindow.
	AcceleratedWindow int

	// Timeouts are the membership timing parameters; zero fields take
	// membership defaults.
	Timeouts Timeouts

	// Shards is the number of independent ring instances this node runs
	// (default 1, max MaxShards). With more than one, groups are
	// partitioned across rings by a stable hash of the group name:
	// per-group total order is unchanged and aggregate throughput
	// multiplies, but cross-group delivery order is only guaranteed for
	// groups owned by the same ring (see RingOf).
	Shards int

	// Transport, when non-nil, carries frames (e.g. a Hub endpoint for
	// tests). The node takes ownership and closes it on Close. Only
	// valid with Shards <= 1; sharded nodes need one transport per ring.
	Transport Transport
	// Transports carries frames per ring in a sharded node: Transports[r]
	// is ring r's binding (e.g. an endpoint on ring r's own Hub). When
	// set, its length must equal Shards. The node takes ownership.
	Transports []Transport
	// Listen and Peers configure a UDP transport when Transport is nil:
	// Listen holds this node's data/token listen addresses, Peers the
	// other participants'. Addresses must resolve as UDP host:ports.
	// With Shards > 1 the ports must be numeric and nonzero: ring r
	// listens (and expects each peer) on every base port + 2*r, so
	// leave a gap of 2*Shards ports free above each base port.
	Listen UDPAddrs
	Peers  map[ProcID]UDPAddrs

	// EventBuffer is the Events channel capacity (default
	// DefaultEventBuffer). A consumer that falls this far behind is
	// disconnected with ErrSlowConsumer rather than allowed to stall the
	// ring.
	EventBuffer int

	// Observer, when non-nil, receives protocol metrics (counters,
	// gauges, latency histograms) under ring.*, membership.* and
	// transport.* names. Serve it with StartDebugServer.
	Observer *Registry
	// TraceDepth is how many token-round traces the node retains for
	// /debug/ring (default obs.DefaultTraceDepth; only used when
	// Observer is set).
	TraceDepth int
	// TraceSampling samples every TraceSampling-th sequence number for
	// message-lifecycle tracing (see WithTraceSampling). Zero disables
	// tracing; negative is invalid.
	TraceSampling int

	// RingKey, when non-empty, authenticates every ring wire frame
	// (token and data) with a truncated HMAC-SHA256 tag. Each ring of a
	// sharded node signs with its own subkey derived from this master
	// key, so frames cannot be replayed across rings. All participants
	// must share the key; forged frames are counted on
	// transport.auth_drops and dropped before they can touch ordering
	// state.
	RingKey []byte
}

// Validation errors returned by Config.Validate (wrapped with context;
// branch with errors.Is).
var (
	ErrNoSelf        = errors.New("accelring: config needs a nonzero Self ID")
	ErrNoTransport   = errors.New("accelring: config needs a Transport or UDP Listen addresses")
	ErrBadWindow     = errors.New("accelring: invalid flow-control window")
	ErrBadTimeout    = errors.New("accelring: timeouts must be non-negative")
	ErrBadAddress    = errors.New("accelring: bad UDP address")
	ErrBadProtocol   = errors.New("accelring: unknown protocol variant")
	ErrBadBufferSize = errors.New("accelring: buffer sizes must be non-negative")
	ErrBadShards     = errors.New("accelring: invalid shard configuration")
)

// MaxShards bounds Config.Shards.
const MaxShards = shard.MaxShards

// RingOf returns the ring that owns a group name in a node opened with
// WithShards(shards). The hash is stable across processes and releases:
// every node routes a group to the same ring, which is what preserves the
// group's total order in a sharded deployment.
func RingOf(groupName string, shards int) int { return shard.RingOf(groupName, shards) }

// Validate fills in documented defaults for zero fields, then checks the
// configuration, returning the first problem found. Open calls it for
// you; call it directly to check a config without starting a node.
func (c *Config) Validate() error {
	if c.Self == 0 {
		return ErrNoSelf
	}
	if c.Protocol != ProtocolAccelerated && c.Protocol != ProtocolOriginal {
		return fmt.Errorf("%w: %d", ErrBadProtocol, int(c.Protocol))
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 || c.Shards > MaxShards {
		return fmt.Errorf("%w: Shards %d out of range [1, %d]", ErrBadShards, c.Shards, MaxShards)
	}

	// Defaults.
	if c.PersonalWindow == 0 {
		c.PersonalWindow = DefaultPersonalWindow
	}
	if c.GlobalWindow == 0 {
		c.GlobalWindow = DefaultGlobalWindow
	}
	if c.Protocol == ProtocolAccelerated && c.AcceleratedWindow == 0 {
		c.AcceleratedWindow = DefaultAcceleratedWindow
		if c.AcceleratedWindow > c.PersonalWindow {
			c.AcceleratedWindow = c.PersonalWindow
		}
	}
	if c.Protocol == ProtocolOriginal {
		c.AcceleratedWindow = 0
	}
	if c.EventBuffer == 0 {
		c.EventBuffer = DefaultEventBuffer
	}
	if c.TraceDepth == 0 {
		c.TraceDepth = obs.DefaultTraceDepth
	}

	// Windows.
	if c.PersonalWindow < 0 || c.GlobalWindow < 0 || c.AcceleratedWindow < 0 {
		return fmt.Errorf("%w: windows must be non-negative", ErrBadWindow)
	}
	if c.GlobalWindow < c.PersonalWindow {
		return fmt.Errorf("%w: global window %d < personal window %d",
			ErrBadWindow, c.GlobalWindow, c.PersonalWindow)
	}
	if c.AcceleratedWindow > c.PersonalWindow {
		return fmt.Errorf("%w: accelerated window %d > personal window %d",
			ErrBadWindow, c.AcceleratedWindow, c.PersonalWindow)
	}

	// Timeouts: zero fields take membership defaults, negatives are bugs.
	def := membership.DefaultTimeouts()
	for _, f := range []struct {
		d   *time.Duration
		def time.Duration
	}{
		{&c.Timeouts.JoinInterval, def.JoinInterval},
		{&c.Timeouts.Gather, def.Gather},
		{&c.Timeouts.Commit, def.Commit},
		{&c.Timeouts.TokenLoss, def.TokenLoss},
		{&c.Timeouts.TokenRetransmit, def.TokenRetransmit},
		{&c.Timeouts.Beacon, def.Beacon}, // zero: membership derives it
	} {
		if *f.d < 0 {
			return fmt.Errorf("%w: got %v", ErrBadTimeout, *f.d)
		}
		if *f.d == 0 {
			*f.d = f.def
		}
	}

	if c.EventBuffer < 0 || c.TraceDepth < 0 || c.TraceSampling < 0 {
		return ErrBadBufferSize
	}

	// Transport.
	if len(c.Transports) > 0 && len(c.Transports) != c.Shards {
		return fmt.Errorf("%w: %d Transports for %d shards", ErrBadShards, len(c.Transports), c.Shards)
	}
	for r, tr := range c.Transports {
		if tr == nil {
			return fmt.Errorf("%w: Transports[%d] is nil", ErrBadShards, r)
		}
	}
	if c.Shards > 1 && c.Transport != nil {
		return fmt.Errorf("%w: a sharded node needs one transport per ring: use Transports, not Transport", ErrBadShards)
	}
	if c.Transport == nil && len(c.Transports) == 0 {
		if c.Listen.Data == "" || c.Listen.Token == "" {
			return ErrNoTransport
		}
		if err := checkUDPAddrs("listen", c.Listen); err != nil {
			return err
		}
		for id, p := range c.Peers {
			if id == 0 {
				return fmt.Errorf("%w: peer with zero ID", ErrBadAddress)
			}
			if err := checkUDPAddrs(fmt.Sprintf("peer %d", id), p); err != nil {
				return err
			}
		}
		if c.Shards > 1 {
			// Per-ring ports are derived by offsetting the base ports, so
			// they must be numeric and nonzero (an ephemeral ":0" cannot
			// be shifted deterministically on every node).
			addrs := []UDPAddrs{c.Listen}
			for _, p := range c.Peers {
				addrs = append(addrs, p)
			}
			for _, p := range addrs {
				for _, a := range []string{p.Data, p.Token} {
					if _, err := shiftPort(a, 0); err != nil {
						return fmt.Errorf("%w: sharded UDP needs numeric nonzero ports: %q: %v", ErrBadShards, a, err)
					}
				}
			}
		}
	}
	return nil
}

// shiftPort returns addr with its numeric, nonzero port offset by `by` —
// how a sharded node derives ring r's addresses from the base ones.
func shiftPort(addr string, by int) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", err
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", fmt.Errorf("port %q is not numeric", port)
	}
	if p <= 0 || p+by > 65535 {
		return "", fmt.Errorf("port %d+%d out of range", p, by)
	}
	return net.JoinHostPort(host, strconv.Itoa(p+by)), nil
}

// shiftUDPAddrs offsets both ports of an address pair (ring r uses 2*r).
func shiftUDPAddrs(p UDPAddrs, by int) (UDPAddrs, error) {
	var out UDPAddrs
	var err error
	if out.Data, err = shiftPort(p.Data, by); err != nil {
		return out, err
	}
	out.Token, err = shiftPort(p.Token, by)
	return out, err
}

func checkUDPAddrs(who string, p UDPAddrs) error {
	for _, a := range []string{p.Data, p.Token} {
		if _, err := net.ResolveUDPAddr("udp", a); err != nil {
			return fmt.Errorf("%w: %s %q: %v", ErrBadAddress, who, a, err)
		}
	}
	return nil
}

// ringConfig derives the internal driver configuration. The caller wires
// Transport, OnEvent and Observer afterwards.
func (c *Config) ringConfig() ringnode.Config {
	rc := ringnode.Config{
		Self: c.Self,
		Windows: flowcontrol.Windows{
			Personal:    c.PersonalWindow,
			Global:      c.GlobalWindow,
			Accelerated: c.AcceleratedWindow,
		},
		Timeouts: c.Timeouts,
	}
	if c.Protocol == ProtocolOriginal {
		rc.Priority = core.PriorityConservative
	} else {
		rc.Priority = core.PriorityAggressive
		rc.DelayedRequests = true
	}
	return rc
}

// openTransport returns ring's transport: the explicit per-ring (or
// single) transport when configured, otherwise a UDP one created from
// Listen/Peers — on the base ports for ring 0, and on ports offset by
// 2*ring for the other rings of a sharded node. Validate must have
// passed.
func (c *Config) openTransport(ring int) (Transport, error) {
	if len(c.Transports) > 0 {
		return c.keyed(c.Transports[ring], ring), nil
	}
	if c.Transport != nil {
		return c.keyed(c.Transport, ring), nil
	}
	listen, peers := c.Listen, c.Peers
	if c.Shards > 1 {
		var err error
		if listen, err = shiftUDPAddrs(c.Listen, 2*ring); err != nil {
			return nil, err
		}
		peers = make(map[ProcID]UDPAddrs, len(c.Peers))
		for id, p := range c.Peers {
			if peers[id], err = shiftUDPAddrs(p, 2*ring); err != nil {
				return nil, err
			}
		}
	}
	tr, err := transport.NewUDP(transport.UDPConfig{
		Self:   c.Self,
		Listen: listen,
		Peers:  peers,
		Obs:    c.Observer,
	})
	if err != nil {
		return nil, err
	}
	return c.keyed(tr, ring), nil
}

// keyed wraps tr with per-ring HMAC frame authentication when RingKey is
// set; with no key it returns tr unchanged.
func (c *Config) keyed(tr Transport, ring int) Transport {
	if len(c.RingKey) == 0 {
		return tr
	}
	sub := wire.DeriveKey(c.RingKey, "ring"+strconv.Itoa(ring))
	return transport.WithAuth(tr, sub, c.Observer, nil)
}
