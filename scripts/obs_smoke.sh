#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke test of the observability stack.
#
# Builds ringdaemon, brings up a live 3-node ring with -obs and
# -trace-sample, then curls the debug endpoints of every node and
# validates what comes back:
#   /metrics        valid Prometheus exposition, accelring_* names only
#   /debug/health   JSON array with one healthy status per ring
#   /debug/msgtrace JSON (message tracing enabled end to end)
#   /debug/flight   JSONL black-box dump
#
# A second phase brings up a 2-node x 2-shard cluster with -slo-p99,
# pushes real client traffic through it with ringload, and validates the
# latency-attribution stack:
#   /debug/latency  per-ring stage digests with folded spans
#   /metrics        accelring_latency_* and accelring_slo_* families
#   ringtop -once   renders one console snapshot across both nodes
#
# Exits non-zero (and prints the offending body) on any failure.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building ringdaemon, ringload, ringtop"
go build -o "$workdir/ringdaemon" ./cmd/ringdaemon
go build -o "$workdir/ringload" ./cmd/ringload
go build -o "$workdir/ringtop" ./cmd/ringtop

peers="1=127.0.0.1:5101/127.0.0.1:6101,2=127.0.0.1:5102/127.0.0.1:6102,3=127.0.0.1:5103/127.0.0.1:6103"
obs_ports=(6871 6872 6873)

echo "== starting 3 daemons"
for i in 1 2 3; do
    "$workdir/ringdaemon" \
        -id "$i" \
        -data "127.0.0.1:510$i" -token "127.0.0.1:610$i" \
        -client "127.0.0.1:480$i" \
        -peers "$peers" \
        -obs "127.0.0.1:${obs_ports[$((i-1))]}" \
        -trace-sample 1 \
        >"$workdir/daemon$i.log" 2>&1 &
    pids+=($!)
done

fetch() { # fetch URL [retries]
    local url=$1 tries=${2:-40}
    for _ in $(seq "$tries"); do
        if curl -fsS --max-time 2 "$url" 2>/dev/null; then return 0; fi
        sleep 0.25
    done
    echo "FAIL: $url never answered" >&2
    return 1
}

fail() {
    echo "FAIL: $*" >&2
    for i in 1 2 3; do
        echo "--- daemon$i.log ---" >&2
        cat "$workdir/daemon$i.log" >&2 || true
    done
    exit 1
}

echo "== waiting for the ring to form on every node"
rounds=0
for _ in $(seq 120); do
    rotating=0
    for port in "${obs_ports[@]}"; do
        r=$(fetch "http://127.0.0.1:$port/metrics" 4 | awk '/^accelring_ring_rounds /{print int($2)}')
        [ "${r:-0}" -gt 0 ] && rotating=$((rotating + 1))
    done
    if [ "$rotating" -eq 3 ]; then
        rounds=$r
        break
    fi
    sleep 0.25
done
[ "$rounds" -gt 0 ] || fail "token never rotated on all nodes"
echo "   token rotating on all 3 nodes ($rounds rounds at node 3)"

echo "== validating /metrics on every node"
for port in "${obs_ports[@]}"; do
    metrics=$(fetch "http://127.0.0.1:$port/metrics")
    echo "$metrics" | grep -q '^# TYPE accelring_ring_rounds counter$' \
        || fail "node :$port missing TYPE line for accelring_ring_rounds"
    echo "$metrics" | grep -q '^accelring_transport_udp_tx_token_frames ' \
        || fail "node :$port missing transport counters"
    echo "$metrics" | grep -q '_bucket{le="+Inf"} ' \
        || fail "node :$port missing histogram buckets"
    # Every sample line must carry the stable accelring_ prefix and
    # lowercase snake-case name.
    bad=$(echo "$metrics" | grep -v '^#' | grep -Ev '^accelring_[a-z0-9_]+(\{[^}]*\})? ' || true)
    [ -z "$bad" ] || fail "node :$port bad series names:
$bad"
done
echo "   exposition valid on all 3 nodes"

echo "== validating /debug/health"
for port in "${obs_ports[@]}"; do
    health=$(fetch "http://127.0.0.1:$port/debug/health")
    echo "$health" | grep -Eq '"token_stall": *false' \
        || fail "node :$port unhealthy: $health"
done
echo "   all nodes healthy"

echo "== validating /debug/msgtrace and /debug/flight"
trace=$(fetch "http://127.0.0.1:${obs_ports[0]}/debug/msgtrace")
[ "${trace:0:1}" = "{" ] || fail "msgtrace not JSON: ${trace:0:200}"
# grep -q would SIGPIPE the upstream echo under pipefail on a large
# body, so these are plain substring checks.
flight=$(fetch "http://127.0.0.1:${obs_ports[0]}/debug/flight")
[ "${flight:0:1}" = "{" ] || fail "flight not JSONL: ${flight:0:200}"
case "$flight" in
*'"kind":"token_rx"'*) ;;
*) fail "flight has no token events" ;;
esac

echo "== phase 2: 2-node x 2-shard cluster with latency attribution + SLO"
shard_obs=(6874 6875)
shard_peers="1=127.0.0.1:5211/127.0.0.1:6211,2=127.0.0.1:5212/127.0.0.1:6212"
for i in 1 2; do
    "$workdir/ringdaemon" \
        -id "$i" \
        -data "127.0.0.1:521$i" -token "127.0.0.1:621$i" \
        -client "127.0.0.1:481$i" \
        -peers "$shard_peers" \
        -shards 2 -shard-stride 10 \
        -obs "127.0.0.1:${shard_obs[$((i-1))]}" \
        -trace-sample 1 \
        -slo-p99 250ms \
        >"$workdir/sharded$i.log" 2>&1 &
    pids+=($!)
done

fail2() {
    echo "FAIL: $*" >&2
    for i in 1 2; do
        echo "--- sharded$i.log ---" >&2
        cat "$workdir/sharded$i.log" >&2 || true
    done
    exit 1
}

echo "== waiting for both rings to rotate on both nodes"
formed=0
for _ in $(seq 120); do
    rotating=0
    for port in "${shard_obs[@]}"; do
        m=$(fetch "http://127.0.0.1:$port/metrics" 4)
        r0=$(echo "$m" | awk '/^accelring_ring_rounds\{ring="0"\} /{print int($2)}')
        r1=$(echo "$m" | awk '/^accelring_ring_rounds\{ring="1"\} /{print int($2)}')
        [ "${r0:-0}" -gt 0 ] && [ "${r1:-0}" -gt 0 ] && rotating=$((rotating + 1))
    done
    if [ "$rotating" -eq 2 ]; then
        formed=1
        break
    fi
    sleep 0.25
done
[ "$formed" -eq 1 ] || fail2 "sharded rings never rotated on both nodes"
echo "   both rings rotating on both nodes"

echo "== pushing client traffic through the sharded cluster"
"$workdir/ringload" -daemons 127.0.0.1:4811,127.0.0.1:4812 \
    -rate 200 -payload 64 -warmup 500ms -duration 2s \
    >"$workdir/ringload.log" 2>&1 || fail2 "ringload failed: $(cat "$workdir/ringload.log")"

echo "== validating /debug/latency"
spans=0
for _ in $(seq 40); do
    lat=$(fetch "http://127.0.0.1:${shard_obs[0]}/debug/latency")
    case "$lat" in
    *'"spans_folded"'*)
        s=$(echo "$lat" | grep -o '"spans_folded": *[0-9]*' | grep -o '[0-9]*' | sort -n | tail -1)
        if [ "${s:-0}" -gt 0 ]; then
            spans=$s
            break
        fi
        ;;
    esac
    sleep 0.25
done
[ "$spans" -gt 0 ] || fail2 "no spans folded at /debug/latency: $lat"
case "$lat" in
*'"scope":"shard0"'* | *'"scope": "shard0"'*) ;;
*) fail2 "latency digest has no shard0 scope: $lat" ;;
esac
case "$lat" in
*'"stages"'*) ;;
*) fail2 "latency digest has no stage map: $lat" ;;
esac
echo "   $spans spans folded with per-stage digests"

echo "== validating SLO families and health verdicts"
slo_ok=0
for _ in $(seq 40); do
    m=$(fetch "http://127.0.0.1:${shard_obs[0]}/metrics")
    if echo "$m" | grep -q '^accelring_slo_p99_burn_ppm{ring="0"} ' &&
        echo "$m" | grep -q '^accelring_latency_e2e_ns_count{ring="0"} '; then
        slo_ok=1
        break
    fi
    sleep 0.25
done
[ "$slo_ok" -eq 1 ] || fail2 "SLO/latency families missing from /metrics"
health=$(fetch "http://127.0.0.1:${shard_obs[0]}/debug/health")
case "$health" in
*'"slo_burn"'*) ;;
*) fail2 "health verdicts carry no slo_burn flag: $health" ;;
esac
echo "   slo burn gauges exported, health carries slo_burn"

echo "== validating ringtop -once"
top=$("$workdir/ringtop" -once -nodes "127.0.0.1:${shard_obs[0]},127.0.0.1:${shard_obs[1]}")
case "$top" in
*UNREACHABLE*) fail2 "ringtop saw an unreachable node:
$top" ;;
esac
case "$top" in
*shard0*) ;;
*) fail2 "ringtop did not render per-ring rows:
$top" ;;
esac
echo "   ringtop rendered both nodes"

echo "OK: observability smoke passed"
