#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke test of the observability stack.
#
# Builds ringdaemon, brings up a live 3-node ring with -obs and
# -trace-sample, then curls the debug endpoints of every node and
# validates what comes back:
#   /metrics        valid Prometheus exposition, accelring_* names only
#   /debug/health   JSON array with one healthy status per ring
#   /debug/msgtrace JSON (message tracing enabled end to end)
#   /debug/flight   JSONL black-box dump
#
# Exits non-zero (and prints the offending body) on any failure.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building ringdaemon"
go build -o "$workdir/ringdaemon" ./cmd/ringdaemon

peers="1=127.0.0.1:5101/127.0.0.1:6101,2=127.0.0.1:5102/127.0.0.1:6102,3=127.0.0.1:5103/127.0.0.1:6103"
obs_ports=(6871 6872 6873)

echo "== starting 3 daemons"
for i in 1 2 3; do
    "$workdir/ringdaemon" \
        -id "$i" \
        -data "127.0.0.1:510$i" -token "127.0.0.1:610$i" \
        -client "127.0.0.1:480$i" \
        -peers "$peers" \
        -obs "127.0.0.1:${obs_ports[$((i-1))]}" \
        -trace-sample 1 \
        >"$workdir/daemon$i.log" 2>&1 &
    pids+=($!)
done

fetch() { # fetch URL [retries]
    local url=$1 tries=${2:-40}
    for _ in $(seq "$tries"); do
        if curl -fsS --max-time 2 "$url" 2>/dev/null; then return 0; fi
        sleep 0.25
    done
    echo "FAIL: $url never answered" >&2
    return 1
}

fail() {
    echo "FAIL: $*" >&2
    for i in 1 2 3; do
        echo "--- daemon$i.log ---" >&2
        cat "$workdir/daemon$i.log" >&2 || true
    done
    exit 1
}

echo "== waiting for the ring to form on every node"
rounds=0
for _ in $(seq 120); do
    rotating=0
    for port in "${obs_ports[@]}"; do
        r=$(fetch "http://127.0.0.1:$port/metrics" 4 | awk '/^accelring_ring_rounds /{print int($2)}')
        [ "${r:-0}" -gt 0 ] && rotating=$((rotating + 1))
    done
    if [ "$rotating" -eq 3 ]; then
        rounds=$r
        break
    fi
    sleep 0.25
done
[ "$rounds" -gt 0 ] || fail "token never rotated on all nodes"
echo "   token rotating on all 3 nodes ($rounds rounds at node 3)"

echo "== validating /metrics on every node"
for port in "${obs_ports[@]}"; do
    metrics=$(fetch "http://127.0.0.1:$port/metrics")
    echo "$metrics" | grep -q '^# TYPE accelring_ring_rounds counter$' \
        || fail "node :$port missing TYPE line for accelring_ring_rounds"
    echo "$metrics" | grep -q '^accelring_transport_udp_tx_token_frames ' \
        || fail "node :$port missing transport counters"
    echo "$metrics" | grep -q '_bucket{le="+Inf"} ' \
        || fail "node :$port missing histogram buckets"
    # Every sample line must carry the stable accelring_ prefix and
    # lowercase snake-case name.
    bad=$(echo "$metrics" | grep -v '^#' | grep -Ev '^accelring_[a-z0-9_]+(\{[^}]*\})? ' || true)
    [ -z "$bad" ] || fail "node :$port bad series names:
$bad"
done
echo "   exposition valid on all 3 nodes"

echo "== validating /debug/health"
for port in "${obs_ports[@]}"; do
    health=$(fetch "http://127.0.0.1:$port/debug/health")
    echo "$health" | grep -Eq '"token_stall": *false' \
        || fail "node :$port unhealthy: $health"
done
echo "   all nodes healthy"

echo "== validating /debug/msgtrace and /debug/flight"
trace=$(fetch "http://127.0.0.1:${obs_ports[0]}/debug/msgtrace")
[ "${trace:0:1}" = "{" ] || fail "msgtrace not JSON: ${trace:0:200}"
# grep -q would SIGPIPE the upstream echo under pipefail on a large
# body, so these are plain substring checks.
flight=$(fetch "http://127.0.0.1:${obs_ports[0]}/debug/flight")
[ "${flight:0:1}" = "{" ] || fail "flight not JSONL: ${flight:0:200}"
case "$flight" in
*'"kind":"token_rx"'*) ;;
*) fail "flight has no token events" ;;
esac

echo "OK: observability smoke passed"
