#!/usr/bin/env bash
# soak_smoke.sh — session-lifecycle soak of the daemon stack.
#
# Phase 1 boots a self-contained ring under cmd/ringload with churning
# sessions: alongside the steady senders, -churn goroutines cycle
# connect → join → multicast → disconnect for the whole run, hammering
# the daemon's ordered join/leave path and per-session outbox
# setup/teardown. The run must stay ordered (goodput reported) and must
# cycle a minimum number of sessions.
#
# Phase 2 boots a keyed (-ring-key) 2-node ringdaemon pair, waits for
# the token to rotate, then SIGTERMs both and checks that the graceful
# drain path ran before shutdown.
#
# Exits non-zero (and prints the offending output) on any failure.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    for f in "$workdir"/*.log; do
        [ -f "$f" ] || continue
        echo "--- $f ---" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

echo "== building ringload and ringdaemon"
go build -o "$workdir/ringload" ./cmd/ringload
go build -o "$workdir/ringdaemon" ./cmd/ringdaemon

# Phase 1: churn soak. 8 churners per daemon × 2 daemons cycle sessions
# continuously for the whole run; CI machines manage thousands of cycles
# (20k+ locally) in a few seconds. Past ~16 churners per daemon the
# ordered join/leave traffic starves the steady senders entirely, so
# this is deliberately below that cliff.
echo "== churn soak: 2 daemons, 16 churning sessions, 5s"
"$workdir/ringload" -nodes 2 -rate 1000 -payload 64 \
    -warmup 1s -duration 4s -churn 8 >"$workdir/ringload.log" 2>&1 \
    || fail "ringload exited non-zero"
grep -q '^ordered: ' "$workdir/ringload.log" \
    || fail "no ordered-throughput line (steady load starved by churn?)"
cycled=$(awk '/^churn: /{print int($2)}' "$workdir/ringload.log")
[ "${cycled:-0}" -ge 500 ] \
    || fail "only ${cycled:-0} sessions cycled, want >= 500"
echo "   $cycled sessions cycled under steady ordered load"

# Phase 2: keyed ring + graceful drain. Wrong-key peers would be
# isolated (covered by unit tests); here we check the operational path:
# a keyed ring forms, and SIGTERM drains before stopping.
echo "== keyed drain: 2 daemons with -ring-key, SIGTERM after token rotates"
peers="1=127.0.0.1:5201/127.0.0.1:6201,2=127.0.0.1:5202/127.0.0.1:6202"
obs_ports=(6881 6882)
for i in 1 2; do
    "$workdir/ringdaemon" \
        -id "$i" \
        -data "127.0.0.1:520$i" -token "127.0.0.1:620$i" \
        -client "127.0.0.1:490$i" \
        -peers "$peers" \
        -ring-key soak-secret \
        -drain-timeout 3s \
        -obs "127.0.0.1:${obs_ports[$((i-1))]}" \
        >"$workdir/daemon$i.log" 2>&1 &
    pids+=($!)
done

rotating=false
for _ in $(seq 120); do
    r=$(curl -fsS --max-time 2 "http://127.0.0.1:${obs_ports[0]}/metrics" 2>/dev/null |
        awk '/^accelring_ring_rounds /{print int($2)}' || true)
    if [ "${r:-0}" -gt 0 ]; then
        rotating=true
        break
    fi
    sleep 0.25
done
$rotating || fail "keyed ring never rotated the token"
echo "   keyed ring formed and token rotating"

for pid in "${pids[@]}"; do kill -TERM "$pid" 2>/dev/null || true; done
for pid in "${pids[@]}"; do wait "$pid" 2>/dev/null || true; done
pids=()
for i in 1 2; do
    grep -q 'draining (budget' "$workdir/daemon$i.log" \
        || fail "daemon $i skipped the drain path"
    grep -q 'shutting down' "$workdir/daemon$i.log" \
        || fail "daemon $i never reached clean shutdown"
done
echo "   both daemons drained gracefully on SIGTERM"

echo "OK: soak smoke passed"
