// Package accelring is a from-scratch Go reproduction of "Fast Total
// Ordering for Modern Data Centers" (Babay and Amir, Johns Hopkins
// University): the Accelerated Ring protocol, the original Totem-style
// Ring protocol it improves on, the Extended Virtual Synchrony membership
// substrate both need, real UDP and in-process transports, a Spread-like
// daemon/group layer, and a discrete-event testbed simulator that
// regenerates every figure of the paper's evaluation.
//
// The public surface for applications lives in the internal packages and
// is exercised by the runnable examples under examples/ and the binaries
// under cmd/. Start with examples/quickstart, then see DESIGN.md for the
// system inventory and EXPERIMENTS.md for the reproduction results.
package accelring
