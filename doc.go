// Package accelring is a from-scratch Go reproduction of "Fast Total
// Ordering for Modern Data Centers" (Babay and Amir, Johns Hopkins
// University): the Accelerated Ring protocol, the original Totem-style
// Ring protocol it improves on, the Extended Virtual Synchrony membership
// substrate both need, real UDP and in-process transports, a Spread-like
// daemon/group layer, and a discrete-event testbed simulator that
// regenerates every figure of the paper's evaluation.
//
// This package is the public surface. A participant is opened with
// functional options and then joins groups, multicasts totally ordered
// messages, and receives a typed event stream:
//
//	node, err := accelring.Open(ctx,
//		accelring.WithSelf(1),
//		accelring.WithTransport(hub.Endpoint(...)),
//		accelring.WithWindows(20, 160, 15),
//	)
//	...
//	node.Join("chat")
//	node.Send(accelring.Agreed, []byte("hello"), "chat")
//	ev, err := node.Receive(ctx)
//
// Configuration is validated up front (Config.Validate); failures on the
// request paths use exported sentinels (ErrClosed, ErrNotReady,
// ErrNotMember, ...) and the typed *MembershipChangedError, so callers
// branch with errors.Is and errors.As. Passing a metrics Registry via
// WithObserver enables counters, latency histograms, and token-round
// traces, served over HTTP by StartDebugServer at /debug/vars,
// /debug/ring, and /debug/pprof.
//
// Deployments that prefer the Spread process model — one daemon per
// machine, many clients attaching over sockets — use cmd/ringdaemon with
// the internal client library instead of this in-process facade.
//
// Start with examples/quickstart, then see DESIGN.md for the system
// inventory and EXPERIMENTS.md for the reproduction results.
package accelring
