package accelring

import (
	"errors"
	"fmt"

	"accelring/internal/evs"
	"accelring/internal/group"
)

// Sentinel errors returned by the public API. Branch with errors.Is; for
// membership transitions use errors.As with *MembershipChangedError.
var (
	// ErrClosed is returned by every method after Close (or after the
	// node failed terminally; Err explains why).
	ErrClosed = errors.New("accelring: node closed")
	// ErrNotReady is returned by Join/Leave/Send before the first ring
	// has formed. Wait with WaitReady or for the first ViewChange event.
	ErrNotReady = errors.New("accelring: ring not formed yet")
	// ErrSlowConsumer terminates a node whose application stopped
	// draining Events; a blocked consumer must not stall the ordering
	// protocol (the same policy Spread applies to slow clients).
	ErrSlowConsumer = errors.New("accelring: event consumer too slow")
	// ErrNotMember is returned by Leave for a group the node never
	// joined, and by operations requiring membership.
	ErrNotMember = group.ErrNotMember
	// ErrBadGroup rejects an invalid group name (empty or too long).
	ErrBadGroup = group.ErrBadGroup
	// ErrInvalidService rejects an undefined delivery service level.
	ErrInvalidService = errors.New("accelring: invalid service level")
	// ErrBadGroupCount rejects a Send with zero or too many groups.
	ErrBadGroupCount = fmt.Errorf("accelring: need 1..%d groups", group.MaxGroups)
)

// MembershipChangedError is returned by Join/Leave/Send while the ring is
// re-forming after a partition, merge, or crash: the view the operation
// was issued in no longer exists. Detect it with errors.As, wait for the
// next ViewChange event, and retry. NewView is zero while the replacement
// configuration is still being agreed on.
type MembershipChangedError = evs.MembershipChangedError
