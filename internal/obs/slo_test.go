package obs

import (
	"testing"
	"time"
)

// sloRig: one tracked histogram under a registry, targets near the
// LatencyBuckets ladder so bucket-boundary classification is exact.
type sloRig struct {
	reg *Registry
	h   *Histogram
	s   *SLO
}

func newSLORig(t *testing.T, cfg SLOConfig) *sloRig {
	t.Helper()
	rig := &sloRig{reg: NewRegistry()}
	rig.h = rig.reg.Histogram("latency.e2e_ns", LatencyBuckets())
	rig.s = NewSLO(rig.reg, cfg)
	rig.s.Track("", rig.h)
	return rig
}

func (r *sloRig) pass(t *testing.T) SLOStatus {
	t.Helper()
	sts := r.s.Pass()
	if len(sts) != 1 {
		t.Fatalf("got %d statuses, want 1", len(sts))
	}
	return sts[0]
}

func TestSLOWithinTargetNoBreach(t *testing.T) {
	rig := newSLORig(t, SLOConfig{TargetP99: 10 * time.Millisecond})
	rig.pass(t) // baseline
	for i := 0; i < 100; i++ {
		rig.h.ObserveDuration(time.Millisecond)
	}
	st := rig.pass(t)
	if st.Breach || st.P99Burn != 0 {
		t.Fatalf("fast traffic breached: %+v", st)
	}
	if st.Samples != 100 {
		t.Fatalf("Samples = %d, want 100", st.Samples)
	}
}

func TestSLOBurnAndBreach(t *testing.T) {
	rig := newSLORig(t, SLOConfig{TargetP99: 10 * time.Millisecond})
	rig.pass(t)
	// 5 of 100 over target: 5% over / 1% budget = burn 5.0 >= factor 1.0.
	for i := 0; i < 95; i++ {
		rig.h.ObserveDuration(time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		rig.h.ObserveDuration(100 * time.Millisecond)
	}
	st := rig.pass(t)
	if !st.Breach {
		t.Fatalf("5%% over-target traffic did not breach: %+v", st)
	}
	if st.P99Burn < 4.9 || st.P99Burn > 5.1 {
		t.Fatalf("P99Burn = %v, want ~5.0", st.P99Burn)
	}
	if v := rig.reg.Gauge("slo.breach").Value(); v != 1 {
		t.Fatalf("slo.breach gauge = %d, want 1", v)
	}
	if v := rig.reg.Gauge("slo.p99_burn_ppm").Value(); v < 4_900_000 || v > 5_100_000 {
		t.Fatalf("slo.p99_burn_ppm = %d, want ~5e6", v)
	}
}

func TestSLOMinSamplesGuardsIdleRings(t *testing.T) {
	rig := newSLORig(t, SLOConfig{TargetP99: 10 * time.Millisecond, MinSamples: 10})
	rig.pass(t)
	// One slow message on an idle ring: burn is huge but samples are thin.
	rig.h.ObserveDuration(time.Second)
	if st := rig.pass(t); st.Breach {
		t.Fatalf("a single slow sample breached below MinSamples: %+v", st)
	}
}

func TestSLOWindowRecovers(t *testing.T) {
	rig := newSLORig(t, SLOConfig{TargetP99: 10 * time.Millisecond, Window: 2, MinSamples: 1})
	rig.pass(t)
	for i := 0; i < 20; i++ {
		rig.h.ObserveDuration(time.Second)
	}
	if st := rig.pass(t); !st.Breach {
		t.Fatalf("slow burst did not breach: %+v", st)
	}
	// Two quiet passes slide the burst out of the window.
	for i := 0; i < 20; i++ {
		rig.h.ObserveDuration(time.Millisecond)
	}
	rig.pass(t)
	for i := 0; i < 20; i++ {
		rig.h.ObserveDuration(time.Millisecond)
	}
	if st := rig.pass(t); st.Breach {
		t.Fatalf("breach did not clear after the window slid: %+v", st)
	}
}

func TestSLOP999Rule(t *testing.T) {
	rig := newSLORig(t, SLOConfig{TargetP999: 100 * time.Millisecond})
	rig.pass(t)
	// 2 of 1000 over: 0.2% over / 0.1% budget = burn 2.0.
	for i := 0; i < 998; i++ {
		rig.h.ObserveDuration(time.Millisecond)
	}
	rig.h.ObserveDuration(time.Second)
	rig.h.ObserveDuration(time.Second)
	st := rig.pass(t)
	if !st.Breach || st.P999Burn < 1.9 || st.P999Burn > 2.1 {
		t.Fatalf("p999 burn = %v breach = %v, want ~2.0 true", st.P999Burn, st.Breach)
	}
	if st.P99Burn != 0 {
		t.Fatalf("p99 rule fired with no p99 target: %+v", st)
	}
}

func TestSLOScopedGauges(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("shard0.latency.e2e_ns", LatencyBuckets())
	s := NewSLO(reg, SLOConfig{TargetP99: 10 * time.Millisecond, MinSamples: 1})
	s.Track("shard0", h)
	s.Pass()
	for i := 0; i < 20; i++ {
		h.ObserveDuration(time.Second)
	}
	sts := s.Pass()
	if len(sts) != 1 || sts[0].Scope != "shard0" || !sts[0].Breach {
		t.Fatalf("scoped pass = %+v, want one breaching shard0", sts)
	}
	if v := reg.Gauge("shard0.slo.breach").Value(); v != 1 {
		t.Fatalf("shard0.slo.breach = %d, want 1", v)
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Track("", nil)
	if s.Pass() != nil {
		t.Fatal("nil SLO Pass must return nil")
	}
	// Nil registry: evaluation works, gauges are no-ops.
	h := NewRegistry().Histogram("x", LatencyBuckets())
	s2 := NewSLO(nil, SLOConfig{TargetP99: time.Millisecond, MinSamples: 1})
	s2.Track("", h)
	s2.Pass()
	for i := 0; i < 20; i++ {
		h.ObserveDuration(time.Second)
	}
	if st := s2.Pass(); len(st) != 1 || !st[0].Breach {
		t.Fatalf("nil-registry SLO did not evaluate: %+v", st)
	}
}
