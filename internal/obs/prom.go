package obs

import (
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (format 0.0.4) for the registry.
//
// Registry names are dotted and optionally scoped by a leading shard
// label ("shard1.ring.rounds"). The exposition maps them to stable
// Prometheus series:
//
//	ring.rounds                 -> accelring_ring_rounds
//	shard1.ring.rounds          -> accelring_ring_rounds{ring="1"}
//	transport.udp.tx_data_bytes -> accelring_transport_udp_tx_data_bytes
//	health.token_stall          -> accelring_health_token_stall
//
// so a sharded daemon's rings land in one metric family distinguished by
// the ring label, and every exported name matches
// ^accelring_[a-z0-9_]+$ (the naming lint in internal/daemon enforces
// this end to end).

// promName maps a dotted registry name to its Prometheus name and label
// set ("" or `ring="N"`).
func promName(name string) (metric, labels string) {
	if rest, ring, ok := splitShardScope(name); ok {
		name, labels = rest, `ring="`+ring+`"`
	}
	var b strings.Builder
	b.Grow(len("accelring_") + len(name))
	b.WriteString("accelring_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			b.WriteByte('_')
		}
	}
	return b.String(), labels
}

// splitShardScope recognizes a "shard<digits>." prefix and returns the
// unscoped remainder and the shard number.
func splitShardScope(name string) (rest, ring string, ok bool) {
	const p = "shard"
	if !strings.HasPrefix(name, p) {
		return "", "", false
	}
	tail := name[len(p):]
	dot := strings.IndexByte(tail, '.')
	if dot <= 0 || dot == len(tail)-1 {
		return "", "", false
	}
	for _, c := range tail[:dot] {
		if c < '0' || c > '9' {
			return "", "", false
		}
	}
	return tail[dot+1:], tail[:dot], true
}

type promRow struct {
	labels string
	value  string
	hist   *Histogram // non-nil for histogram rows
}

type promFamily struct {
	name string
	typ  string
	rows []promRow
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registry metric in the Prometheus text
// exposition format: counters and gauges as single samples, histograms
// with cumulative le-bucketed counts plus _sum and _count, published
// functions flattened to gauges where their values are numeric (numeric
// struct fields and map values become "<name>_<field>" gauges;
// non-numeric publications are skipped — /debug/vars still carries them).
// No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() any, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.RUnlock()

	fams := make(map[string]*promFamily)
	add := func(name, typ string, row promRow) {
		f := fams[name]
		if f == nil {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		if f.typ != typ {
			// A published-function leaf collided with a structural
			// metric of another type; the structural metric wins.
			if typ == "gauge" {
				return
			}
			f.typ = typ
			f.rows = nil
		}
		f.rows = append(f.rows, row)
	}

	for k, c := range counters {
		name, labels := promName(k)
		add(name, "counter", promRow{labels: labels, value: strconv.FormatUint(c.Value(), 10)})
	}
	for k, g := range gauges {
		name, labels := promName(k)
		add(name, "gauge", promRow{labels: labels, value: strconv.FormatInt(g.Value(), 10)})
	}
	for k, h := range hists {
		name, labels := promName(k)
		add(name, "histogram", promRow{labels: labels, hist: h})
	}
	for k, fn := range funcs {
		flattenPublished(k, fn(), func(leaf string, v float64) {
			name, labels := promName(leaf)
			add(name, "gauge", promRow{labels: labels, value: promFloat(v)})
		})
	}
	{
		name, _ := promName("uptime_seconds")
		add(name, "gauge", promRow{value: promFloat(time.Since(r.start).Seconds())})
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.rows, func(i, j int) bool { return f.rows[i].labels < f.rows[j].labels })
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, row := range f.rows {
			if row.hist != nil {
				writePromHistogram(&b, f.name, row.labels, row.hist)
				continue
			}
			if row.labels == "" {
				fmt.Fprintf(&b, "%s %s\n", f.name, row.value)
			} else {
				fmt.Fprintf(&b, "%s{%s} %s\n", f.name, row.labels, row.value)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram with cumulative buckets. Every
// bound is emitted — including empty buckets, which HistogramSnapshot
// omits — because Prometheus quantile math needs the full ladder.
func writePromHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	join := func(le string) string {
		if labels == "" {
			return `le="` + le + `"`
		}
		return labels + `,le="` + le + `"`
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = promFloat(h.bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket{%s} %d\n", name, join(le), cum)
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, promFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, h.count.Load())
}

// flattenPublished extracts numeric leaves from a published function's
// value: plain numbers emit under the publication name itself, structs
// and string-keyed maps emit one leaf per numeric field/entry as
// "<name>_<snake(field)>". One level of nesting only; anything else
// (slices, deeper nesting, strings) is skipped.
func flattenPublished(name string, v any, emit func(name string, v float64)) {
	if f, ok := asFloat(reflect.ValueOf(v)); ok {
		emit(name, f)
		return
	}
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer && !rv.IsNil() {
		rv = rv.Elem()
	}
	switch rv.Kind() {
	case reflect.Struct:
		t := rv.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			if f, ok := asFloat(rv.Field(i)); ok {
				emit(name+"_"+camelToSnake(t.Field(i).Name), f)
			}
		}
	case reflect.Map:
		if rv.Type().Key().Kind() != reflect.String {
			return
		}
		for _, k := range rv.MapKeys() {
			if f, ok := asFloat(rv.MapIndex(k)); ok {
				emit(name+"_"+camelToSnake(k.String()), f)
			}
		}
	}
}

func asFloat(rv reflect.Value) (float64, bool) {
	for rv.Kind() == reflect.Interface || rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return 0, false
		}
		rv = rv.Elem()
	}
	switch rv.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return float64(rv.Int()), true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return float64(rv.Uint()), true
	case reflect.Float32, reflect.Float64:
		return rv.Float(), true
	}
	return 0, false
}

func camelToSnake(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	for i, r := range s {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			r = r - 'A' + 'a'
		}
		b.WriteRune(r)
	}
	return b.String()
}
