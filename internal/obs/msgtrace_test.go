package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestMsgTracerNilSafe(t *testing.T) {
	var tr *MsgTracer
	if tr.Sampled(0) || tr.Sampled(10) {
		t.Fatal("nil tracer must sample nothing")
	}
	tr.Record(MsgEvent{Seq: 1})
	if tr.Total() != 0 || tr.Every() != 0 || tr.Depth() != 0 {
		t.Fatal("nil tracer accessors must return zero")
	}
	if tr.Snapshot(0) != nil || tr.ForSeq(1) != nil {
		t.Fatal("nil tracer snapshots must be nil")
	}
	if NewMsgTracer(0, 16) != nil || NewMsgTracer(-1, 16) != nil {
		t.Fatal("a non-positive sampling rate must disable tracing (nil tracer)")
	}
}

func TestMsgTracerSamplingDeterministic(t *testing.T) {
	// Two tracers with the same rate sample exactly the same seqs — the
	// property that lets ringtrace -follow merge spans across nodes.
	a, b := NewMsgTracer(10, 0), NewMsgTracer(10, 0)
	for seq := uint64(0); seq < 100; seq++ {
		if a.Sampled(seq) != b.Sampled(seq) {
			t.Fatalf("tracers disagree at seq %d", seq)
		}
		if want := seq%10 == 0; a.Sampled(seq) != want {
			t.Fatalf("Sampled(%d) = %v, want %v", seq, a.Sampled(seq), want)
		}
	}
}

func TestMsgTracerWrapOldestFirst(t *testing.T) {
	tr := NewMsgTracer(1, 4)
	if tr.Every() != 1 || tr.Depth() != 4 {
		t.Fatalf("Every/Depth = %d/%d, want 1/4", tr.Every(), tr.Depth())
	}
	for i := 1; i <= 10; i++ {
		tr.Record(MsgEvent{Seq: uint64(i), Stage: StageSubmit})
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	got := tr.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("Snapshot kept %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest first)", i, ev.Seq, want)
		}
	}
	if got := tr.Snapshot(2); len(got) != 2 || got[1].Seq != 10 {
		t.Fatalf("Snapshot(2) = %+v, want the 2 newest", got)
	}
}

func TestMsgTracerForSeq(t *testing.T) {
	tr := NewMsgTracer(5, 16)
	tr.Record(MsgEvent{Seq: 5, Stage: StageSubmit})
	tr.Record(MsgEvent{Seq: 10, Stage: StageSubmit})
	tr.Record(MsgEvent{Seq: 5, Stage: StageDeliver})
	span := tr.ForSeq(5)
	if len(span) != 2 || span[0].Stage != StageSubmit || span[1].Stage != StageDeliver {
		t.Fatalf("ForSeq(5) = %+v", span)
	}
}

func TestMsgTracerRecordCopies(t *testing.T) {
	tr := NewMsgTracer(1, 4)
	ev := MsgEvent{Seq: 1, Stage: StageRecv, Service: "agreed"}
	tr.Record(ev)
	ev.Seq, ev.Service = 99, "mutated"
	got := tr.Snapshot(0)
	if len(got) != 1 || got[0].Seq != 1 || got[0].Service != "agreed" {
		t.Fatalf("recorded event changed after caller mutation: %+v", got)
	}
}

// TestMsgTracerConcurrent exercises the single-writer / many-reader
// contract under the race detector.
func TestMsgTracerConcurrent(t *testing.T) {
	tr := NewMsgTracer(1, 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the engine: one writer
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
				tr.Record(MsgEvent{Seq: i, Stage: StageRecv, At: time.Unix(0, int64(i))})
			}
		}
	}()
	for r := 0; r < 4; r++ { // HTTP handlers: concurrent readers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, ev := range tr.Snapshot(0) {
					if ev.Stage != StageRecv {
						t.Error("torn event")
						return
					}
				}
				tr.ForSeq(uint64(i))
				tr.Total()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestMsgStageNames(t *testing.T) {
	want := map[MsgStage]string{
		StageSubmit:     "submit",
		StageSentPre:    "sent_pre",
		StageSentPost:   "sent_post",
		StageRecv:       "recv",
		StageRecvDup:    "recv_dup",
		StageRtrRequest: "rtr_request",
		StageRetransmit: "retransmit",
		StageDeliver:    "deliver",
	}
	for stage, name := range want {
		if stage.String() != name {
			t.Errorf("%d.String() = %q, want %q", stage, stage.String(), name)
		}
		b, err := json.Marshal(stage)
		if err != nil || string(b) != `"`+name+`"` {
			t.Errorf("marshal %q: got %s, %v", name, b, err)
		}
	}
	if MsgStage(200).String() == "" {
		t.Error("unknown stage must still render")
	}
}
