package obs

import (
	"sort"
	"sync"
	"time"
)

// SLO evaluation: burn-rate detection over latency histograms, the
// Google-SRE style "are we spending our error budget faster than we earn
// it" signal. An SLO tracks one cumulative latency histogram per scope
// (normally the latency.e2e_ns histogram LatencyAgg maintains), and each
// evaluation pass — driven by the Health detector loop — diffs the
// histogram against the previous pass, classifies the new samples as
// within or over the p99/p999 targets, and folds the result into a
// rolling window. The burn rate is the windowed over-target fraction
// divided by the target's error budget (1% for p99, 0.1% for p999): 1.0
// means latency is exactly on budget, >= the configured factor flips the
// scope's SLOBurn health flag and lands a flight-recorder event.

// DefaultSLOWindow is how many evaluation passes the rolling window
// holds when SLOConfig.Window is zero.
const DefaultSLOWindow = 8

// DefaultSLOBurnFactor is the burn-rate threshold that counts as
// breaching when SLOConfig.BurnFactor is zero.
const DefaultSLOBurnFactor = 1.0

// SLOConfig parameterizes an SLO evaluator.
type SLOConfig struct {
	// TargetP99 is the p99 latency target. Zero disables the p99 rule.
	TargetP99 time.Duration
	// TargetP999 is the p999 latency target. Zero disables the p999 rule.
	TargetP999 time.Duration
	// Window is the rolling window length in evaluation passes
	// (default DefaultSLOWindow).
	Window int
	// BurnFactor is the burn rate at or above which a scope is breaching
	// (default DefaultSLOBurnFactor).
	BurnFactor float64
	// MinSamples is the minimum windowed sample count before a breach
	// can be declared, so a single slow message on an idle ring does not
	// page anyone (default 10).
	MinSamples uint64
}

// SLOStatus is one scope's state after an evaluation pass.
type SLOStatus struct {
	Scope string `json:"scope"`
	// P99Burn/P999Burn are the windowed burn rates (1.0 = on budget).
	P99Burn  float64 `json:"p99_burn"`
	P999Burn float64 `json:"p999_burn"`
	// Samples is the windowed sample count the rates were computed over.
	Samples uint64 `json:"samples"`
	// EstP99 is the current cumulative p99 estimate of the source
	// histogram, for dashboards.
	EstP99 time.Duration `json:"est_p99_ns"`
	// Breach reports whether either rule is burning at or past the
	// configured factor.
	Breach bool `json:"breach"`
}

// sloSample is one pass's classified delta.
type sloSample struct {
	total, over99, over999 uint64
}

type sloScope struct {
	h    *Histogram
	prev []uint64 // previous cumulative per-bucket counts

	window []sloSample
	wpos   int
	filled int

	burn99G, burn999G, breachG, p99G *Gauge
}

// SLO evaluates latency targets per scope. All methods are nil-safe;
// construction with a nil registry still evaluates (gauges are no-ops).
type SLO struct {
	cfg SLOConfig
	reg *Registry

	mu     sync.Mutex
	scopes map[string]*sloScope
}

// NewSLO builds an evaluator. reg, when non-nil, receives per-scope
// slo.* gauges (burn rates in parts-per-million, breach flag, p99
// estimate).
func NewSLO(reg *Registry, cfg SLOConfig) *SLO {
	if cfg.Window <= 0 {
		cfg.Window = DefaultSLOWindow
	}
	if cfg.BurnFactor <= 0 {
		cfg.BurnFactor = DefaultSLOBurnFactor
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 10
	}
	return &SLO{cfg: cfg, reg: reg, scopes: make(map[string]*sloScope)}
}

// Track evaluates h under scope ("" or "shardN", the Health scope
// convention) from the next Pass on. No-op on a nil SLO or histogram;
// re-tracking a scope replaces its source and resets its window.
func (s *SLO) Track(scope string, h *Histogram) {
	if s == nil || h == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scopes[scope] = &sloScope{
		h:        h,
		window:   make([]sloSample, s.cfg.Window),
		burn99G:  s.reg.Gauge(scoped(scope, "slo.p99_burn_ppm")),
		burn999G: s.reg.Gauge(scoped(scope, "slo.p999_burn_ppm")),
		breachG:  s.reg.Gauge(scoped(scope, "slo.breach")),
		p99G:     s.reg.Gauge(scoped(scope, "slo.p99_ns")),
	}
}

// overCount returns how many of the delta samples exceeded target:
// total minus the samples in buckets whose upper bound fits under it.
// Classification is by bucket, so a target between two bounds counts
// the whole straddling bucket as over — pick targets near the ladder.
func overCount(h *Histogram, delta []uint64, target time.Duration) uint64 {
	var under, total uint64
	for i, n := range delta {
		total += n
		if i < len(h.bounds) && h.bounds[i] <= float64(target) {
			under += n
		}
	}
	return total - under
}

// Pass runs one evaluation over every tracked scope and returns the
// statuses sorted by scope. Call it at a fixed cadence (the Health loop
// does); the rolling window is denominated in passes.
func (s *SLO) Pass() []SLOStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SLOStatus, 0, len(s.scopes))
	for scope, sc := range s.scopes {
		out = append(out, s.passScope(scope, sc))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scope < out[j].Scope })
	return out
}

func (s *SLO) passScope(scope string, sc *sloScope) SLOStatus {
	cur := make([]uint64, len(sc.h.counts))
	for i := range sc.h.counts {
		cur[i] = sc.h.counts[i].Load()
	}
	delta := make([]uint64, len(cur))
	for i := range cur {
		d := cur[i]
		if sc.prev != nil && i < len(sc.prev) && sc.prev[i] <= d {
			d -= sc.prev[i]
		}
		delta[i] = d
	}
	first := sc.prev == nil
	sc.prev = cur
	var smp sloSample
	if !first { // the first pass only baselines
		smp.total = 0
		for _, n := range delta {
			smp.total += n
		}
		if s.cfg.TargetP99 > 0 {
			smp.over99 = overCount(sc.h, delta, s.cfg.TargetP99)
		}
		if s.cfg.TargetP999 > 0 {
			smp.over999 = overCount(sc.h, delta, s.cfg.TargetP999)
		}
	}
	sc.window[sc.wpos] = smp
	sc.wpos = (sc.wpos + 1) % len(sc.window)
	if sc.filled < len(sc.window) {
		sc.filled++
	}

	var win sloSample
	for _, w := range sc.window {
		win.total += w.total
		win.over99 += w.over99
		win.over999 += w.over999
	}
	st := SLOStatus{Scope: scope, Samples: win.total}
	if win.total > 0 {
		if s.cfg.TargetP99 > 0 {
			st.P99Burn = float64(win.over99) / float64(win.total) / 0.01
		}
		if s.cfg.TargetP999 > 0 {
			st.P999Burn = float64(win.over999) / float64(win.total) / 0.001
		}
	}
	st.EstP99 = time.Duration(sc.h.Quantile(0.99))
	if win.total >= s.cfg.MinSamples {
		st.Breach = (s.cfg.TargetP99 > 0 && st.P99Burn >= s.cfg.BurnFactor) ||
			(s.cfg.TargetP999 > 0 && st.P999Burn >= s.cfg.BurnFactor)
	}
	sc.burn99G.Set(int64(st.P99Burn * 1e6))
	sc.burn999G.Set(int64(st.P999Burn * 1e6))
	sc.p99G.Set(int64(st.EstP99))
	if st.Breach {
		sc.breachG.Set(1)
	} else {
		sc.breachG.Set(0)
	}
	return st
}
