package obs

import (
	"testing"
	"time"
)

// latRig is a tracer + aggregator over a virtual timeline: stage i of a
// span lands at base + offsets[i].
type latRig struct {
	reg *Registry
	t   *MsgTracer
	agg *LatencyAgg
}

func newLatRig(t *testing.T, scope string) *latRig {
	t.Helper()
	rig := &latRig{reg: NewRegistry(), t: NewMsgTracer(1, 1024)}
	rig.agg = NewLatencyAgg(rig.reg)
	rig.agg.AddTracer(scope, rig.t)
	return rig
}

var t0 = time.Unix(1000, 0)

// record stamps one stage at t0+off.
func (r *latRig) record(seq uint64, stage MsgStage, off time.Duration) {
	r.t.Record(MsgEvent{Seq: seq, Stage: stage, At: t0.Add(off)})
}

// snap returns the single-scope digest.
func (r *latRig) snap(t *testing.T) LatencyScopeSnapshot {
	t.Helper()
	snaps := r.agg.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d scope snapshots, want 1", len(snaps))
	}
	return snaps[0]
}

func TestLatencyFoldFullPipeline(t *testing.T) {
	rig := newLatRig(t, "")
	// One sampled message through every milestone, 1ms apart.
	stages := []MsgStage{StagePack, StageSubmit, StageSentPre, StageBatchFlush,
		StageRecv, StageDeliver, StageMergeOut, StageFanout, StageWriterFlush,
		StageClientRecv}
	for i, st := range stages {
		rig.record(10, st, time.Duration(i)*time.Millisecond)
	}
	sc := rig.snap(t)
	if sc.SpansFolded != 1 {
		t.Fatalf("SpansFolded = %d, want 1", sc.SpansFolded)
	}
	want := []string{"pack_hold", "token_wait", "batch_wait", "wire", "ordering",
		"merge_hold", "fanout", "writer_flush", "client_wire"}
	for _, name := range want {
		st, ok := sc.Stages[name]
		if !ok {
			t.Fatalf("stage %q missing from digest %v", name, sc.Stages)
		}
		if st.Count != 1 || st.SumNs != float64(time.Millisecond) {
			t.Fatalf("stage %q = {count %d, sum %v}, want one 1ms delta", name, st.Count, st.SumNs)
		}
	}
	if got, want := sc.E2E.SumNs, float64(9*time.Millisecond); got != want {
		t.Fatalf("e2e sum = %v, want %v", got, want)
	}
}

// TestLatencySumToE2E pins the attribution invariant: because the stage
// deltas telescope, their sums equal the e2e sum exactly — in every
// configuration, including spans missing milestones.
func TestLatencySumToE2E(t *testing.T) {
	rig := newLatRig(t, "")
	// Span 10: bare ring (no packing, no daemon): submit, sent, recv, deliver.
	rig.record(10, StageSubmit, 0)
	rig.record(10, StageSentPost, 3*time.Millisecond)
	rig.record(10, StageRecv, 7*time.Millisecond)
	rig.record(10, StageDeliver, 20*time.Millisecond)
	// Span 20: daemon path without batching: milestones skip around.
	rig.record(20, StageSubmit, 0)
	rig.record(20, StageDeliver, 5*time.Millisecond)
	rig.record(20, StageFanout, 6*time.Millisecond)
	rig.record(20, StageWriterFlush, 10*time.Millisecond)
	sc := rig.snap(t)
	if sc.SpansFolded != 2 {
		t.Fatalf("SpansFolded = %d, want 2", sc.SpansFolded)
	}
	if sc.StageSumNs != sc.E2ESumNs {
		t.Fatalf("stage sum %v != e2e sum %v: attribution leaked time", sc.StageSumNs, sc.E2ESumNs)
	}
	if want := float64(30 * time.Millisecond); sc.E2ESumNs != want {
		t.Fatalf("e2e sum = %v, want %v", sc.E2ESumNs, want)
	}
	// The dropped-milestone rule: span 10's 13ms recv→deliver lands in
	// "ordering", span 20's 1ms deliver→fanout in "fanout".
	if d := sc.Stages["ordering"]; d.SumNs != float64(13*time.Millisecond+5*time.Millisecond) {
		t.Fatalf("ordering sum = %v, want 18ms", d.SumNs)
	}
}

func TestLatencyRefoldNeverDoubleCounts(t *testing.T) {
	rig := newLatRig(t, "")
	rig.record(10, StageSubmit, 0)
	rig.record(10, StageDeliver, time.Millisecond)
	first := rig.snap(t)
	again := rig.snap(t) // second fold over the same buffer
	if first.SpansFolded != 1 || again.SpansFolded != 1 {
		t.Fatalf("SpansFolded = %d then %d, want 1 and 1", first.SpansFolded, again.SpansFolded)
	}
	if again.E2E.Count != 1 {
		t.Fatalf("e2e count after refold = %d, want 1", again.E2E.Count)
	}
}

func TestLatencyDuplicateStampsKeepEarliest(t *testing.T) {
	rig := newLatRig(t, "")
	rig.record(10, StageSubmit, 0)
	// A writer-flush replay after reconnect re-records later; the fold
	// must keep the first flush.
	rig.record(10, StageWriterFlush, 2*time.Millisecond)
	rig.record(10, StageWriterFlush, 9*time.Millisecond)
	sc := rig.snap(t)
	if want := float64(2 * time.Millisecond); sc.E2E.SumNs != want {
		t.Fatalf("e2e sum = %v, want %v (earliest writer flush)", sc.E2E.SumNs, want)
	}
}

func TestLatencySendOnlySpanSettlesViaNewerSeq(t *testing.T) {
	rig := newLatRig(t, "")
	// Send-only span: this node never delivers seq 10 (another ring's
	// group), so it settles only once a newer seq reaches delivery.
	rig.record(10, StageSubmit, 0)
	rig.record(10, StageSentPre, time.Millisecond)
	if sc := rig.snap(t); sc.SpansFolded != 0 {
		t.Fatalf("unsettled span folded early: %+v", sc)
	}
	rig.record(20, StageDeliver, 5*time.Millisecond)
	if sc := rig.snap(t); sc.SpansFolded != 1 {
		t.Fatalf("SpansFolded = %d, want 1 (send-only span settled by seq 20)", sc.SpansFolded)
	}
}

func TestLatencySingleMilestoneSpanNoE2E(t *testing.T) {
	rig := newLatRig(t, "")
	rig.record(10, StageDeliver, time.Millisecond)
	sc := rig.snap(t)
	if sc.E2E.Count != 0 {
		t.Fatalf("single-milestone span produced an e2e sample: %+v", sc.E2E)
	}
}

func TestLatencyClockSkewClampsToZero(t *testing.T) {
	rig := newLatRig(t, "")
	rig.record(10, StageSubmit, 5*time.Millisecond)
	rig.record(10, StageDeliver, 3*time.Millisecond) // behind submit
	sc := rig.snap(t)
	if sc.E2E.SumNs != 0 || sc.Stages["ordering"].SumNs != 0 {
		t.Fatalf("negative delta not clamped: %+v", sc)
	}
	if sc.StageSumNs != sc.E2ESumNs {
		t.Fatalf("invariant broke under clamping: stage %v != e2e %v", sc.StageSumNs, sc.E2ESumNs)
	}
}

// TestLatencyOutOfOrderMilestoneKeepsInvariant pins the running-max rule:
// a later-pipeline milestone stamped by another goroutine slightly behind
// its predecessor contributes zero instead of inflating the stage sum
// past e2e.
func TestLatencyOutOfOrderMilestoneKeepsInvariant(t *testing.T) {
	rig := newLatRig(t, "")
	rig.record(10, StageSubmit, 0)
	rig.record(10, StageFanout, 5*time.Millisecond)
	// The writer goroutine stamps its flush a hair behind the fanout.
	rig.record(10, StageWriterFlush, 4*time.Millisecond)
	sc := rig.snap(t)
	if sc.StageSumNs != sc.E2ESumNs {
		t.Fatalf("stage sum %v != e2e sum %v under reordering", sc.StageSumNs, sc.E2ESumNs)
	}
	if want := float64(5 * time.Millisecond); sc.E2ESumNs != want {
		t.Fatalf("e2e sum = %v, want %v (running max)", sc.E2ESumNs, want)
	}
	if d := sc.Stages["writer_flush"]; d.Count != 1 || d.SumNs != 0 {
		t.Fatalf("behind-the-max milestone = %+v, want one zero delta", d)
	}
}

func TestLatencyScopedRegistration(t *testing.T) {
	rig := newLatRig(t, "shard1")
	rig.record(10, StageSubmit, 0)
	rig.record(10, StageDeliver, time.Millisecond)
	rig.agg.Fold()
	if v := rig.reg.Histogram("shard1.latency.e2e_ns", LatencyBuckets()).Snapshot().Count; v != 1 {
		t.Fatalf("scoped e2e histogram count = %d, want 1", v)
	}
	if h := rig.agg.E2E("shard1"); h == nil {
		t.Fatal("E2E(shard1) = nil")
	}
	if h := rig.agg.E2E("shard0"); h != nil {
		t.Fatal("E2E(shard0) should be nil for an unregistered scope")
	}
	if got := rig.agg.Scopes(); len(got) != 1 || got[0] != "shard1" {
		t.Fatalf("Scopes() = %v, want [shard1]", got)
	}
}

func TestLatencyNilSafe(t *testing.T) {
	var a *LatencyAgg
	a.AddTracer("", NewMsgTracer(1, 8))
	a.Fold()
	if a.Snapshot() != nil || a.Scopes() != nil || a.E2E("") != nil {
		t.Fatal("nil LatencyAgg methods must return zero values")
	}
	if NewLatencyAgg(nil) != nil {
		t.Fatal("NewLatencyAgg(nil) must be nil (attribution off)")
	}
	// A live aggregator must tolerate nil tracers (tracing off).
	agg := NewLatencyAgg(NewRegistry())
	agg.AddTracer("", nil)
	agg.Fold()
	if n := len(agg.Snapshot()); n != 0 {
		t.Fatalf("nil tracer registered a scope: %d", n)
	}
}
