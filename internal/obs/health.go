package obs

import (
	"sync"
	"time"
)

// HealthConfig configures a Health detector.
type HealthConfig struct {
	// Scopes lists the per-ring metric scopes to watch: "" for an
	// unlabeled single-ring node, "shard0".."shardN-1" for a sharded
	// one. Empty defaults to the single unlabeled scope.
	Scopes []string
	// Interval is the detector-loop period for Start (default 1s).
	Interval time.Duration
	// RetransBudget is the per-round retransmission cap
	// (flowcontrol.Windows.RetransBudget, i.e. the global window). A
	// round answering >= StormFraction*RetransBudget retransmissions is
	// flagged as a storm. 0 disables storm detection.
	RetransBudget int
	// StormFraction is the fraction of RetransBudget that counts as a
	// storm (default 0.5).
	StormFraction float64
	// SlowConsumerCounters names the (unscoped) counters whose growth
	// flags slow-consumer backpressure (default
	// "daemon.slow_disconnects").
	SlowConsumerCounters []string
	// BackpressureCounters names the (unscoped) counters whose growth
	// flags client sessions climbing the backpressure tiers — spilling
	// or throttled, but not yet disconnected (default "daemon.tier_spill"
	// and "daemon.tier_throttle").
	BackpressureCounters []string
	// Now supplies timestamps (default time.Now).
	Now func() time.Time
	// OnChange, when set, is called from the detector loop whenever a
	// scope's flag set differs from the previous pass (e.g. to log).
	OnChange func(HealthStatus)
	// Latency, when non-nil, is folded once per pass so the latency.*
	// histograms (and any SLO tracking them) stay current without a
	// second timer.
	Latency *LatencyAgg
	// SLO, when non-nil, runs one evaluation pass per check; a scope
	// whose burn rate breaches raises its SLOBurn flag. SLO scopes must
	// use the same names as Scopes.
	SLO *SLO
	// Flight, when non-nil, records a FlightSLO event on every rising
	// edge of SLOBurn or MergeStall, so a dump around a tail-latency
	// incident pins down when the burn started.
	Flight *FlightRecorder
}

// HealthStatus is one scope's verdict from one detector pass. The boolean
// flags are also exported as <scope>.health.* gauges (0/1), which the
// Prometheus endpoint renders as accelring_health_*{ring="r"}.
type HealthStatus struct {
	// Ring is the metric scope ("" or "shardN").
	Ring string `json:"ring"`
	// CheckedAt is when the pass ran.
	CheckedAt time.Time `json:"checked_at"`

	// TokenStall: the ring has rotated the token before but did not
	// between the last two passes — a wedged or re-forming ring.
	TokenStall bool `json:"token_stall"`
	// AruStagnation: the token rotates but the all-received-up-to line
	// is stuck below the highest assigned seq — some participant is not
	// receiving (or not acknowledging) traffic.
	AruStagnation bool `json:"aru_stagnation"`
	// RetransStorm: retransmissions answered per round are near the
	// per-round retransmission budget — sustained loss or a lagging
	// receiver is consuming the ring's repair bandwidth.
	RetransStorm bool `json:"retrans_storm"`
	// SlowConsumer: the daemon disconnected at least one client for
	// backpressure since the last pass.
	SlowConsumer bool `json:"slow_consumer"`
	// Backpressure: at least one client session entered the spill or
	// throttle tier since the last pass — clients are falling behind,
	// though none has been disconnected for it yet.
	Backpressure bool `json:"backpressure"`
	// MergeStall: this ring's cross-ring merge frontier stopped
	// advancing while a peer ring's kept moving — the merge is emitting
	// on this ring's skips alone (or is about to block on it). Only
	// meaningful on sharded nodes exporting merge.frontier per scope.
	MergeStall bool `json:"merge_stall"`
	// SLOBurn: the scope's latency SLO burn rate is at or past the
	// configured factor (see HealthConfig.SLO).
	SLOBurn bool `json:"slo_burn"`

	// Rounds, Seq, Aru and RetransPerRound are the inputs behind the
	// flags, for the health endpoint and log lines.
	Rounds          uint64  `json:"rounds"`
	Seq             int64   `json:"seq"`
	Aru             int64   `json:"aru"`
	RetransPerRound float64 `json:"retrans_per_round"`
	// SLOP99Burn is the windowed p99 burn rate behind SLOBurn (0 with no
	// SLO configured).
	SLOP99Burn float64 `json:"slo_p99_burn,omitempty"`
}

// Healthy reports whether no flag is raised.
func (st HealthStatus) Healthy() bool {
	return !st.TokenStall && !st.AruStagnation && !st.RetransStorm &&
		!st.SlowConsumer && !st.Backpressure && !st.MergeStall && !st.SLOBurn
}

// flags packs the status booleans for change detection.
func (st HealthStatus) flags() [7]bool {
	return [7]bool{st.TokenStall, st.AruStagnation, st.RetransStorm,
		st.SlowConsumer, st.Backpressure, st.MergeStall, st.SLOBurn}
}

type healthSample struct {
	valid        bool
	rounds, retr uint64
	aru          int64
	slow         uint64
	back         uint64
	front        int64
	mergeStall   bool
	sloBurn      bool
}

// Health is the ring health detector: a periodic pass over the registry's
// ring/membership/daemon metrics that turns counter deltas into the four
// pathology flags above. Check may also be called directly (tests, HTTP
// handlers); all methods are safe for concurrent use and nil-safe.
type Health struct {
	reg *Registry
	cfg HealthConfig

	mu   sync.Mutex
	prev map[string]healthSample
	last []HealthStatus

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewHealth returns a detector over reg. Start begins the periodic loop;
// Check runs a single pass synchronously. Returns a usable (idle)
// detector even for a nil registry.
func NewHealth(reg *Registry, cfg HealthConfig) *Health {
	if len(cfg.Scopes) == 0 {
		cfg.Scopes = []string{""}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.StormFraction <= 0 {
		cfg.StormFraction = 0.5
	}
	if len(cfg.SlowConsumerCounters) == 0 {
		cfg.SlowConsumerCounters = []string{"daemon.slow_disconnects"}
	}
	if len(cfg.BackpressureCounters) == 0 {
		cfg.BackpressureCounters = []string{"daemon.tier_spill", "daemon.tier_throttle"}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Health{
		reg:  reg,
		cfg:  cfg,
		prev: make(map[string]healthSample),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

func scoped(scope, base string) string {
	if scope == "" {
		return base
	}
	return scope + "." + base
}

// Check runs one detector pass over every scope, updates the health.*
// gauges, and returns the per-scope statuses. The first pass only
// establishes baselines (no flags can be raised without a delta). Nil on
// a nil detector.
func (h *Health) Check() []HealthStatus {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.checkLocked()
}

func (h *Health) checkLocked() []HealthStatus {
	now := h.cfg.Now()
	h.cfg.Latency.Fold()
	var slo map[string]SLOStatus
	if h.cfg.SLO != nil {
		slo = make(map[string]SLOStatus)
		for _, st := range h.cfg.SLO.Pass() {
			slo[st.Scope] = st
		}
	}
	var slow, back uint64
	for _, name := range h.cfg.SlowConsumerCounters {
		slow += h.reg.Counter(name).Value()
	}
	for _, name := range h.cfg.BackpressureCounters {
		back += h.reg.Counter(name).Value()
	}
	// Merge-stall needs a cross-scope view: one ring's frontier standing
	// still is only suspicious while another's moved this pass.
	fronts := make([]int64, len(h.cfg.Scopes))
	anyFrontAdvanced := false
	for i, scope := range h.cfg.Scopes {
		fronts[i] = h.reg.Gauge(scoped(scope, "merge.frontier")).Value()
		if prev := h.prev[scope]; prev.valid && fronts[i] > prev.front {
			anyFrontAdvanced = true
		}
	}
	out := make([]HealthStatus, 0, len(h.cfg.Scopes))
	for i, scope := range h.cfg.Scopes {
		cur := healthSample{
			valid:  true,
			rounds: h.reg.Counter(scoped(scope, "ring.rounds")).Value(),
			retr:   h.reg.Counter(scoped(scope, "ring.retransmitted")).Value(),
			aru:    h.reg.Gauge(scoped(scope, "ring.aru")).Value(),
			slow:   slow,
			back:   back,
			front:  fronts[i],
		}
		seq := h.reg.Gauge(scoped(scope, "ring.seq")).Value()
		st := HealthStatus{
			Ring:      scope,
			CheckedAt: now,
			Rounds:    cur.rounds,
			Seq:       seq,
			Aru:       cur.aru,
		}
		prev := h.prev[scope]
		if prev.valid {
			roundsDelta := cur.rounds - prev.rounds
			st.TokenStall = cur.rounds > 0 && roundsDelta == 0
			st.AruStagnation = roundsDelta > 0 && cur.aru == prev.aru && seq > cur.aru
			if roundsDelta > 0 {
				st.RetransPerRound = float64(cur.retr-prev.retr) / float64(roundsDelta)
				if h.cfg.RetransBudget > 0 &&
					st.RetransPerRound >= h.cfg.StormFraction*float64(h.cfg.RetransBudget) {
					st.RetransStorm = true
				}
			}
			st.SlowConsumer = cur.slow > prev.slow
			st.Backpressure = cur.back > prev.back
			// A scope that has merged before (front > 0) but did not move
			// while a peer did is stalling the global order.
			st.MergeStall = prev.front > 0 && cur.front == prev.front && anyFrontAdvanced
		}
		if s, ok := slo[scope]; ok {
			st.SLOBurn = s.Breach
			st.SLOP99Burn = s.P99Burn
		}
		if h.cfg.Flight != nil {
			if st.SLOBurn && !prev.sloBurn {
				h.cfg.Flight.Record(FlightEvent{Kind: FlightSLO, Ring: scope, Note: "slo_burn"})
			}
			if st.MergeStall && !prev.mergeStall {
				h.cfg.Flight.Record(FlightEvent{Kind: FlightSLO, Ring: scope, Note: "merge_stall"})
			}
		}
		cur.mergeStall = st.MergeStall
		cur.sloBurn = st.SLOBurn
		h.prev[scope] = cur
		h.exportLocked(scope, st)
		out = append(out, st)
	}
	h.last = out
	return out
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (h *Health) exportLocked(scope string, st HealthStatus) {
	if h.reg == nil {
		return
	}
	h.reg.Gauge(scoped(scope, "health.token_stall")).Set(b2i(st.TokenStall))
	h.reg.Gauge(scoped(scope, "health.aru_stagnation")).Set(b2i(st.AruStagnation))
	h.reg.Gauge(scoped(scope, "health.retrans_storm")).Set(b2i(st.RetransStorm))
	h.reg.Gauge(scoped(scope, "health.slow_consumer")).Set(b2i(st.SlowConsumer))
	h.reg.Gauge(scoped(scope, "health.backpressure")).Set(b2i(st.Backpressure))
	h.reg.Gauge(scoped(scope, "health.merge_stall")).Set(b2i(st.MergeStall))
	h.reg.Gauge(scoped(scope, "health.slo_burn")).Set(b2i(st.SLOBurn))
	h.reg.Gauge(scoped(scope, "health.healthy")).Set(b2i(st.Healthy()))
	h.reg.Gauge(scoped(scope, "health.retrans_per_round")).Set(int64(st.RetransPerRound))
}

// Status returns the most recent pass's statuses, running a first pass if
// none has happened yet. Nil on a nil detector.
func (h *Health) Status() []HealthStatus {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.last == nil {
		return h.checkLocked()
	}
	out := make([]HealthStatus, len(h.last))
	copy(out, h.last)
	return out
}

// Start launches the periodic detector loop (one goroutine). Close stops
// it. No-op on a nil or already-started detector.
func (h *Health) Start() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.started {
		h.mu.Unlock()
		return
	}
	h.started = true
	h.mu.Unlock()
	go func() {
		defer close(h.done)
		tick := time.NewTicker(h.cfg.Interval)
		defer tick.Stop()
		var prevFlags map[string][7]bool
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
			}
			for _, st := range h.Check() {
				if h.cfg.OnChange == nil {
					continue
				}
				flags := st.flags()
				if prevFlags == nil {
					prevFlags = make(map[string][7]bool)
				}
				if prevFlags[st.Ring] != flags {
					prevFlags[st.Ring] = flags
					h.cfg.OnChange(st)
				}
			}
		}
	}()
}

// Close stops the detector loop started by Start and waits for it to
// exit. Safe to call without Start and on a nil detector; idempotent.
func (h *Health) Close() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
	h.mu.Lock()
	started := h.started
	h.mu.Unlock()
	if started {
		<-h.done
	}
}
