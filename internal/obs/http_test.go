package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ring.rounds").Add(42)
	s, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr := NewRingTracer(4)
	tr.Record(RoundTrace{Round: 1, SentSeq: 3})
	tr.Record(RoundTrace{Round: 2, SentSeq: 6})
	s.AddTracer("node1", tr)

	base := "http://" + s.Addr()

	var vars map[string]any
	if err := json.Unmarshal(get(t, base+"/debug/vars"), &vars); err != nil {
		t.Fatal(err)
	}
	if vars["ring.rounds"] != float64(42) {
		t.Fatalf("ring.rounds = %v, want 42", vars["ring.rounds"])
	}

	var ring map[string][]RoundTrace
	if err := json.Unmarshal(get(t, base+"/debug/ring"), &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring["node1"]) != 2 || ring["node1"][1].Round != 2 {
		t.Fatalf("ring traces = %+v", ring["node1"])
	}

	if err := json.Unmarshal(get(t, fmt.Sprintf("%s/debug/ring?n=1", base)), &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring["node1"]) != 1 || ring["node1"][0].Round != 2 {
		t.Fatalf("ring?n=1 = %+v", ring["node1"])
	}

	// pprof index answers.
	if body := get(t, base+"/debug/pprof/"); len(body) == 0 {
		t.Fatal("empty pprof index")
	}
}
