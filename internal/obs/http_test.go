package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ring.rounds").Add(42)
	s, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr := NewRingTracer(4)
	tr.Record(RoundTrace{Round: 1, SentSeq: 3})
	tr.Record(RoundTrace{Round: 2, SentSeq: 6})
	s.AddTracer("node1", tr)

	base := "http://" + s.Addr()

	var vars map[string]any
	if err := json.Unmarshal(get(t, base+"/debug/vars"), &vars); err != nil {
		t.Fatal(err)
	}
	if vars["ring.rounds"] != float64(42) {
		t.Fatalf("ring.rounds = %v, want 42", vars["ring.rounds"])
	}

	var ring map[string][]RoundTrace
	if err := json.Unmarshal(get(t, base+"/debug/ring"), &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring["node1"]) != 2 || ring["node1"][1].Round != 2 {
		t.Fatalf("ring traces = %+v", ring["node1"])
	}

	if err := json.Unmarshal(get(t, fmt.Sprintf("%s/debug/ring?n=1", base)), &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring["node1"]) != 1 || ring["node1"][0].Round != 2 {
		t.Fatalf("ring?n=1 = %+v", ring["node1"])
	}

	// pprof index answers.
	if body := get(t, base+"/debug/pprof/"); len(body) == 0 {
		t.Fatal("empty pprof index")
	}
}

// startTestServer brings up a server with one of everything registered.
func startTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("ring.rounds").Add(9)
	reg.Histogram("ring.token_hold_ns", []float64{10, 100}).Observe(50)
	s, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	tr := NewRingTracer(4)
	tr.Record(RoundTrace{Round: 1})
	s.AddTracer("node1", tr)

	mt := NewMsgTracer(1, 8)
	mt.Record(MsgEvent{Seq: 7, Stage: StageSubmit})
	mt.Record(MsgEvent{Seq: 7, Stage: StageDeliver})
	mt.Record(MsgEvent{Seq: 8, Stage: StageSubmit})
	s.AddMsgTracer("node1", mt)

	fr := NewFlightRecorder(8)
	fr.Record(FlightEvent{Kind: FlightTokenRx, Seq: 7})
	s.AddFlight("node1", fr)

	return s, "http://" + s.Addr()
}

func status(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// TestDebugServerParamValidation pins the 400 behavior of every query
// parameter: counts must be small non-negative integers, names must be
// registered.
func TestDebugServerParamValidation(t *testing.T) {
	_, base := startTestServer(t)
	cases := []struct {
		name string
		path string
		want int
	}{
		{"ring default", "/debug/ring", 200},
		{"ring n ok", "/debug/ring?n=2", 200},
		{"ring n zero", "/debug/ring?n=0", 200},
		{"ring n negative", "/debug/ring?n=-1", 400},
		{"ring n huge", "/debug/ring?n=9999999", 400},
		{"ring n overflow", "/debug/ring?n=99999999999999999999", 400},
		{"ring n junk", "/debug/ring?n=abc", 400},
		{"ring tracer known", "/debug/ring?tracer=node1", 200},
		{"ring tracer unknown", "/debug/ring?tracer=nope", 400},
		{"msgtrace default", "/debug/msgtrace", 200},
		{"msgtrace seq", "/debug/msgtrace?seq=7", 200},
		{"msgtrace seq junk", "/debug/msgtrace?seq=abc", 400},
		{"msgtrace seq negative", "/debug/msgtrace?seq=-1", 400},
		{"msgtrace n negative", "/debug/msgtrace?n=-5", 400},
		{"msgtrace tracer unknown", "/debug/msgtrace?tracer=nope", 400},
		{"flight default", "/debug/flight", 200},
		{"flight name known", "/debug/flight?name=node1", 200},
		{"flight name unknown", "/debug/flight?name=nope", 400},
		{"metrics", "/metrics", 200},
		{"health unattached", "/debug/health", 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := status(t, base+tc.path); got != tc.want {
				t.Fatalf("GET %s = %d, want %d", tc.path, got, tc.want)
			}
		})
	}
}

func TestDebugServerMsgTraceMergesBySeq(t *testing.T) {
	s, base := startTestServer(t)
	// A second node's tracer: the same deterministic sampling records the
	// same seq, so ?seq=7 returns the span from both.
	mt2 := NewMsgTracer(1, 8)
	mt2.Record(MsgEvent{Seq: 7, Stage: StageRecv})
	s.AddMsgTracer("node2", mt2)

	var out map[string][]map[string]any
	if err := json.Unmarshal(get(t, base+"/debug/msgtrace?seq=7"), &out); err != nil {
		t.Fatal(err)
	}
	if len(out["node1"]) != 2 || len(out["node2"]) != 1 {
		t.Fatalf("merged span = %+v", out)
	}
	for _, evs := range out {
		for _, ev := range evs {
			if ev["seq"] != float64(7) {
				t.Fatalf("event for wrong seq: %+v", ev)
			}
		}
	}
	if out["node1"][0]["stage"] != "submit" || out["node2"][0]["stage"] != "recv" {
		t.Fatalf("stages not rendered by name: %+v", out)
	}
}

func TestDebugServerFlightJSONL(t *testing.T) {
	_, base := startTestServer(t)
	resp, err := http.Get(base + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	lines := 0
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		lines++
	}
	if lines != 2 { // {"recorder": "node1"} + one event
		t.Fatalf("got %d JSONL lines, want 2", lines)
	}
}

func TestDebugServerMetrics(t *testing.T) {
	_, base := startTestServer(t)
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE accelring_ring_rounds counter",
		"accelring_ring_rounds 9",
		"# TYPE accelring_ring_token_hold_ns histogram",
		`accelring_ring_token_hold_ns_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestDebugServerHealth(t *testing.T) {
	s, base := startTestServer(t)
	h := NewHealth(s.reg, HealthConfig{})
	s.SetHealth(h)
	var sts []HealthStatus
	if err := json.Unmarshal(get(t, base+"/debug/health"), &sts); err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 || sts[0].Ring != "" {
		t.Fatalf("health = %+v", sts)
	}
	s.SetHealth(nil)
	if got := status(t, base+"/debug/health"); got != 404 {
		t.Fatalf("detached health = %d, want 404", got)
	}
}
