package obs

import (
	"sort"
	"sync"
	"time"
)

// Latency attribution: LatencyAgg folds the per-message lifecycle spans a
// MsgTracer records into per-stage latency histograms, answering "where
// did a slow message spend its time". A sampled message's span is reduced
// to its milestones in pipeline order —
//
//	pack → submit → sent → batch_flush → recv → deliver → merge →
//	fanout → writer_flush → client_recv
//
// — and the deltas between consecutive *present* milestones are observed
// into one histogram per stage, named after the work the time bought
// (pack_hold, token_wait, batch_wait, wire, ordering, merge_hold, fanout,
// writer_flush, client_wire). A milestone a deployment doesn't produce
// (no packing, no sharding, no client tracer) simply drops out and its
// neighbor's delta absorbs the gap, so the invariant below holds in every
// configuration:
//
//	sum over stage histograms == e2e histogram sum, exactly,
//
// because each folded span's deltas telescope to its own last−first.

// LatencyBuckets is the bucket ladder for latency-attribution
// histograms: 100ns to ~13s doubling, wide enough for both the virtual
// time testbed (sub-µs stages) and real-network tails.
func LatencyBuckets() []float64 {
	var b []float64
	for v := float64(100 * time.Nanosecond); v <= float64(16*time.Second); v *= 2 {
		b = append(b, v)
	}
	return b
}

// latencyMilestone maps a recorded stage to its slot in pipeline order,
// or -1 for stages that are not span milestones (dup receipts and
// retransmission traffic shape the deltas but are not themselves steps
// every message takes).
func latencyMilestone(s MsgStage) int {
	switch s {
	case StagePack:
		return 0
	case StageSubmit:
		return 1
	case StageSentPre, StageSentPost:
		return 2
	case StageBatchFlush:
		return 3
	case StageRecv:
		return 4
	case StageDeliver:
		return 5
	case StageMergeOut:
		return 6
	case StageFanout:
		return 7
	case StageWriterFlush:
		return 8
	case StageClientRecv:
		return 9
	}
	return -1
}

// latencyStageNames names the delta ENDING at each milestone: the stage
// histogram latency.stage.<name>_ns holds the time from the previous
// present milestone to this one.
var latencyStageNames = [numMilestones]string{
	0: "", // pack is always a span's first milestone; no delta ends here
	1: "pack_hold",
	2: "token_wait",
	3: "batch_wait",
	4: "wire",
	5: "ordering",
	6: "merge_hold",
	7: "fanout",
	8: "writer_flush",
	9: "client_wire",
}

const numMilestones = 10

// latencySource is one tracer feeding the aggregator, with the scope
// prefix its histograms are registered under ("", "shard0.", ...).
type latencySource struct {
	scope string
	t     *MsgTracer

	stage [numMilestones]*Histogram
	e2e   *Histogram
	spans *Counter

	// folded remembers spans already observed so a refold of a snapshot
	// never double-counts; entries evict once their seq falls out of the
	// tracer's buffer (events for a folded seq can then never reappear).
	folded map[uint64]struct{}
}

// LatencyAgg folds MsgTracer spans into per-stage latency histograms
// registered on a Registry (so they flow to /debug/vars and /metrics,
// with shardN. scopes becoming {ring="N"} labels) and served in digested
// form at /debug/latency. All methods are nil-safe.
type LatencyAgg struct {
	reg *Registry

	mu      sync.Mutex
	sources []*latencySource
}

// NewLatencyAgg returns an aggregator registering its histograms on reg.
// A nil reg returns a nil aggregator (latency attribution off).
func NewLatencyAgg(reg *Registry) *LatencyAgg {
	if reg == nil {
		return nil
	}
	return &LatencyAgg{reg: reg}
}

// AddTracer folds spans from t under the given metric scope ("" for an
// unscoped node, "shard0".."shardN-1" per ring, "client" for a
// client-side tracer — the same scope convention Health uses). No-op on
// a nil aggregator or tracer; adding the same scope twice is allowed but
// the histograms are shared, so feed each scope from one tracer.
func (a *LatencyAgg) AddTracer(scope string, t *MsgTracer) {
	if a == nil || t == nil {
		return
	}
	src := &latencySource{
		scope:  scope,
		t:      t,
		e2e:    a.reg.Histogram(scoped(scope, "latency.e2e_ns"), LatencyBuckets()),
		spans:  a.reg.Counter(scoped(scope, "latency.spans_folded")),
		folded: make(map[uint64]struct{}),
	}
	for i, name := range latencyStageNames {
		if name == "" {
			continue
		}
		src.stage[i] = a.reg.Histogram(scoped(scope, "latency.stage."+name+"_ns"), LatencyBuckets())
	}
	a.mu.Lock()
	a.sources = append(a.sources, src)
	a.mu.Unlock()
}

// E2E returns the end-to-end latency histogram registered for scope
// (nil if the scope has no tracer), the natural SLO source.
func (a *LatencyAgg) E2E(scope string) *Histogram {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, src := range a.sources {
		if src.scope == scope {
			return src.e2e
		}
	}
	return nil
}

// Scopes returns the registered scope prefixes, sorted.
func (a *LatencyAgg) Scopes() []string {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.sources))
	for _, src := range a.sources {
		out = append(out, src.scope)
	}
	sort.Strings(out)
	return out
}

// Fold drains every source: each sampled seq whose span has settled is
// reduced to milestone deltas and observed exactly once. Cheap to call
// periodically (a health tick) or on demand (the /debug/latency
// handler); no-op on a nil aggregator.
func (a *LatencyAgg) Fold() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, src := range a.sources {
		src.fold()
	}
}

// span collects one seq's earliest event time per milestone.
type span struct {
	at   [numMilestones]time.Time
	last uint64 // max seq seen carrying a settled-marker stage
}

// fold scans the tracer buffer once and folds settled spans.
func (src *latencySource) fold() {
	events := src.t.Snapshot(0)
	if len(events) == 0 {
		return
	}
	spans := make(map[uint64]*span)
	var maxSettled, minSeq uint64
	minSeq = ^uint64(0)
	for _, ev := range events {
		if ev.Seq < minSeq {
			minSeq = ev.Seq
		}
		m := latencyMilestone(ev.Stage)
		if m < 0 || ev.At.IsZero() {
			continue
		}
		sp := spans[ev.Seq]
		if sp == nil {
			sp = &span{}
			spans[ev.Seq] = sp
		}
		if sp.at[m].IsZero() || ev.At.Before(sp.at[m]) {
			sp.at[m] = ev.At
		}
		// Ordering-or-later stages mark the protocol done with the seq:
		// any OLDER seq's span can no longer grow its early stages.
		if m >= 5 && ev.Seq > maxSettled {
			maxSettled = ev.Seq
		}
	}
	// Drop fold-memory for seqs that left the buffer; their events are
	// gone and cannot be re-observed.
	for seq := range src.folded {
		if seq < minSeq {
			delete(src.folded, seq)
		}
	}
	for seq, sp := range spans {
		if _, done := src.folded[seq]; done {
			continue
		}
		// A span settles when it reached delivery (or beyond) itself, or
		// when a newer seq has — this tracer will record nothing more
		// for it (send-only nodes settle their spans this way).
		settled := seq < maxSettled
		for m := 5; m < numMilestones; m++ {
			if !sp.at[m].IsZero() {
				settled = true
				break
			}
		}
		if !settled {
			continue
		}
		src.folded[seq] = struct{}{}
		src.observe(sp)
	}
}

// observe folds one span: each present milestone's delta against the
// latest timestamp seen so far goes into its stage histogram, and the
// final running max minus the first milestone into e2e. Measuring
// against a running max (not the immediately preceding milestone) keeps
// the telescoping-sum invariant exact even when stamps from different
// goroutines land slightly out of order: a milestone behind the running
// max contributes zero and does not move the baseline.
func (src *latencySource) observe(sp *span) {
	first, count := -1, 0
	var runMax time.Time
	for m := 0; m < numMilestones; m++ {
		if sp.at[m].IsZero() {
			continue
		}
		count++
		if first < 0 {
			first = m
			runMax = sp.at[m]
			continue
		}
		d := sp.at[m].Sub(runMax)
		if d < 0 {
			d = 0
		} else {
			runMax = sp.at[m]
		}
		src.stage[m].ObserveDuration(d)
	}
	if count < 2 {
		return // single-milestone span: no deltas, no e2e
	}
	src.e2e.ObserveDuration(runMax.Sub(sp.at[first]))
	src.spans.Inc()
}

// LatencyStageSnapshot digests one stage histogram for /debug/latency.
type LatencyStageSnapshot struct {
	Count uint64  `json:"count"`
	SumNs float64 `json:"sum_ns"`
	P50Ns float64 `json:"p50_ns"`
	P99Ns float64 `json:"p99_ns"`
	MaxNs float64 `json:"max_ns,omitempty"`
}

// LatencyScopeSnapshot is one scope's digest.
type LatencyScopeSnapshot struct {
	Scope       string                          `json:"scope"`
	SpansFolded uint64                          `json:"spans_folded"`
	E2E         LatencyStageSnapshot            `json:"e2e"`
	Stages      map[string]LatencyStageSnapshot `json:"stages"`
	// StageSumNs and E2ESumNs restate the attribution invariant: the
	// stage sums telescope to the e2e sum.
	StageSumNs float64 `json:"stage_sum_ns"`
	E2ESumNs   float64 `json:"e2e_sum_ns"`
}

func digest(h *Histogram) LatencyStageSnapshot {
	s := h.Snapshot()
	d := LatencyStageSnapshot{
		Count: s.Count,
		SumNs: s.Sum,
		P50Ns: h.Quantile(0.50),
		P99Ns: h.Quantile(0.99),
	}
	if n := len(s.Buckets); n > 0 {
		d.MaxNs = s.Buckets[n-1].Le // upper bound of the hottest bucket
	}
	return d
}

// Snapshot folds pending spans and returns every scope's digest, sorted
// by scope. Nil on a nil aggregator.
func (a *LatencyAgg) Snapshot() []LatencyScopeSnapshot {
	if a == nil {
		return nil
	}
	a.Fold()
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]LatencyScopeSnapshot, 0, len(a.sources))
	for _, src := range a.sources {
		sc := LatencyScopeSnapshot{
			Scope:       src.scope,
			SpansFolded: src.spans.Value(),
			E2E:         digest(src.e2e),
			Stages:      make(map[string]LatencyStageSnapshot),
		}
		for i, h := range src.stage {
			if h == nil {
				continue
			}
			d := digest(h)
			if d.Count == 0 {
				continue
			}
			sc.Stages[latencyStageNames[i]] = d
			sc.StageSumNs += d.SumNs
		}
		sc.E2ESumNs = sc.E2E.SumNs
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scope < out[j].Scope })
	return out
}
