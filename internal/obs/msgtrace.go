package obs

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"
)

// MsgStage identifies one step in a message's lifecycle through the ring:
// from local submission, through its pre- or post-token multicast, its
// receipt (and any retransmitted copies) at peers, retransmission-request
// traffic, to Agreed/Safe delivery.
type MsgStage uint8

const (
	// StageSubmit marks the moment a locally submitted message is
	// assigned its ring sequence number during a token visit.
	StageSubmit MsgStage = iota + 1
	// StageSentPre marks a multicast before forwarding the token.
	StageSentPre
	// StageSentPost marks a multicast after forwarding the token (the
	// accelerated share).
	StageSentPost
	// StageRecv marks the first copy of the message arriving from the
	// network.
	StageRecv
	// StageRecvDup marks a duplicate or retransmitted copy arriving.
	StageRecvDup
	// StageRtrRequest marks the sequence being placed on the outgoing
	// token's retransmission-request list (a gap was detected).
	StageRtrRequest
	// StageRetransmit marks the message being re-multicast in answer to
	// a retransmission request carried by the token.
	StageRetransmit
	// StageDeliver marks delivery to the application.
	StageDeliver
	// StagePack marks the moment a payload entered an adaptive packing
	// bundle — the start of its pack hold. Recorded retroactively at seq
	// assignment (the seq does not exist while the bundle is open) with
	// the bundle's hold-start time, so the submit delta shows the hold.
	StagePack
	// StageBatchFlush marks the message's multicast actually leaving in a
	// sendmmsg batch (the wire flush after the token visit that sent it).
	StageBatchFlush
	// StageMergeOut marks the message's emission from the cross-ring
	// merger into the single global order (sharded deployments only).
	StageMergeOut
	// StageFanout marks the daemon encoding the delivery once and
	// enqueueing it toward its client sessions.
	StageFanout
	// StageWriterFlush marks the delivery frame leaving the daemon in a
	// session writer's vectored write.
	StageWriterFlush
	// StageClientRecv marks the client library decoding the delivery off
	// its daemon connection.
	StageClientRecv
)

var msgStageNames = [...]string{
	StageSubmit:      "submit",
	StageSentPre:     "sent_pre",
	StageSentPost:    "sent_post",
	StageRecv:        "recv",
	StageRecvDup:     "recv_dup",
	StageRtrRequest:  "rtr_request",
	StageRetransmit:  "retransmit",
	StageDeliver:     "deliver",
	StagePack:        "pack",
	StageBatchFlush:  "batch_flush",
	StageMergeOut:    "merge",
	StageFanout:      "fanout",
	StageWriterFlush: "writer_flush",
	StageClientRecv:  "client_recv",
}

// String returns the stage's wire name ("submit", "sent_pre", ...).
func (s MsgStage) String() string {
	if int(s) < len(msgStageNames) && msgStageNames[s] != "" {
		return msgStageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// MarshalJSON renders the stage as its string name.
func (s MsgStage) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// MsgEvent is one recorded lifecycle stage of one message. Events hold
// only scalar fields (no slices, no pointers into pooled buffers), so a
// recorded event can never alias protocol scratch memory.
type MsgEvent struct {
	// Seq is the message's ring sequence number — the span key. The same
	// seq is sampled at every node (sampling is a pure function of seq),
	// so spans from different nodes of one run merge by seq.
	Seq uint64 `json:"seq"`
	// Stage is the lifecycle step this event records.
	Stage MsgStage `json:"stage"`
	// At is the event time from the observer's clock (zero without one).
	At time.Time `json:"at"`
	// Round is the token round during which the event happened, when the
	// stage is tied to a token visit (submit, sends, rtr traffic).
	Round uint64 `json:"round,omitempty"`
	// Service is the delivery service level ("agreed", "safe") for
	// StageDeliver events.
	Service string `json:"service,omitempty"`
}

// DefaultMsgTraceDepth is the per-engine event-ring size used when none
// is given.
const DefaultMsgTraceDepth = 256

// MsgTracer records sampled per-message lifecycle events in a bounded
// lock-free ring buffer. The protocol engine (a single goroutine) writes;
// HTTP handlers and tools read concurrently via atomic slot pointers.
//
// Sampling is deterministic in the sequence number (seq % every == 0), so
// every node of a run samples the same messages and their spans can be
// merged cross-node. A nil tracer is "message tracing off": Sampled
// returns false and Record is a no-op, which is the zero-allocation fast
// path the engine's AllocsPerRun gates enforce.
type MsgTracer struct {
	every uint64
	slots []atomic.Pointer[MsgEvent]
	head  atomic.Uint64 // next write position; doubles as the total count
}

// NewMsgTracer returns a tracer sampling one message in every `every`
// (1 samples everything), buffering the last depth events (depth <= 0
// uses DefaultMsgTraceDepth). every <= 0 returns nil: sampling off.
func NewMsgTracer(every, depth int) *MsgTracer {
	if every <= 0 {
		return nil
	}
	if depth <= 0 {
		depth = DefaultMsgTraceDepth
	}
	return &MsgTracer{every: uint64(every), slots: make([]atomic.Pointer[MsgEvent], depth)}
}

// Every returns the sampling interval (0 on a nil tracer).
func (t *MsgTracer) Every() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Depth returns the event-ring size (0 on a nil tracer).
func (t *MsgTracer) Depth() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Sampled reports whether events for seq should be recorded. False on a
// nil tracer — the single branch instrumented hot paths pay when tracing
// is off.
func (t *MsgTracer) Sampled(seq uint64) bool {
	return t != nil && seq%t.every == 0
}

// Record appends one event, evicting the oldest when the ring is full.
// The event is copied; callers may reuse their value. No-op on a nil
// tracer. Record does not re-check Sampled — callers gate on it so the
// unsampled path does no work at all.
func (t *MsgTracer) Record(ev MsgEvent) {
	if t == nil {
		return
	}
	pos := t.head.Add(1) - 1
	t.slots[pos%uint64(len(t.slots))].Store(&ev)
}

// Total returns the number of events recorded over the tracer's lifetime
// (0 on a nil tracer).
func (t *MsgTracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.head.Load()
}

// Snapshot returns up to max buffered events, oldest first (max <= 0
// returns everything buffered). Nil on a nil tracer. The snapshot is
// weakly consistent with concurrent writes: an event being overwritten
// during the scan may be skipped, never torn.
func (t *MsgTracer) Snapshot(max int) []MsgEvent {
	if t == nil {
		return nil
	}
	head := t.head.Load()
	n := uint64(len(t.slots))
	if head < n {
		n = head
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]MsgEvent, 0, n)
	for i := head - n; i < head; i++ {
		if ev := t.slots[i%uint64(len(t.slots))].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	return out
}

// ForSeq returns every buffered event for one sequence number, oldest
// first. Nil on a nil tracer.
func (t *MsgTracer) ForSeq(seq uint64) []MsgEvent {
	var out []MsgEvent
	for _, ev := range t.Snapshot(0) {
		if ev.Seq == seq {
			out = append(out, ev)
		}
	}
	return out
}
