package obs

import (
	"reflect"
	"testing"
	"time"
)

// The engine's zero-allocation decode path reuses scratch backing arrays:
// Token.DecodeFrom aliases its Rtr slice into a per-engine scratch buffer
// that the next decode overwrites. Any observability record that kept a
// slice (or pointer) into protocol state would therefore silently mutate
// after the fact. The event structs are required to be scalar-only so the
// hazard is structurally impossible; this test pins that property.
func TestEventStructsAreAliasFree(t *testing.T) {
	// time.Time is allowed: its only pointer is the *Location for a
	// named zone, which is immutable and never protocol-owned.
	whitelisted := map[reflect.Type]bool{reflect.TypeOf(time.Time{}): true}

	var check func(t *testing.T, typ reflect.Type, path string)
	check = func(t *testing.T, typ reflect.Type, path string) {
		if whitelisted[typ] {
			return
		}
		switch typ.Kind() {
		case reflect.Slice, reflect.Map, reflect.Pointer, reflect.Interface,
			reflect.Chan, reflect.Func, reflect.UnsafePointer:
			t.Errorf("%s is a %s: it could alias pooled protocol memory; store scalars instead",
				path, typ.Kind())
		case reflect.Struct:
			for i := 0; i < typ.NumField(); i++ {
				f := typ.Field(i)
				check(t, f.Type, path+"."+f.Name)
			}
		case reflect.Array:
			check(t, typ.Elem(), path+"[]")
		}
	}

	for _, ev := range []any{RoundTrace{}, MsgEvent{}, FlightEvent{}} {
		typ := reflect.TypeOf(ev)
		check(t, typ, typ.Name())
	}
}
