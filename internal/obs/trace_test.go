package obs

import (
	"testing"
	"time"
)

func TestRingTracerBounded(t *testing.T) {
	tr := NewRingTracer(4)
	for i := 1; i <= 10; i++ {
		tr.Record(RoundTrace{Round: uint64(i)})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	got := tr.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i, want := range []uint64{7, 8, 9, 10} {
		if got[i].Round != want {
			t.Fatalf("snapshot[%d].Round = %d, want %d (oldest first)", i, got[i].Round, want)
		}
	}
	if last := tr.Snapshot(2); len(last) != 2 || last[0].Round != 9 || last[1].Round != 10 {
		t.Fatalf("Snapshot(2) = %+v", last)
	}
}

func TestRingTracerNil(t *testing.T) {
	var tr *RingTracer
	tr.Record(RoundTrace{})
	if tr.Snapshot(0) != nil || tr.Total() != 0 {
		t.Fatal("nil tracer should be inert")
	}
}

func TestRingObserverNil(t *testing.T) {
	var o *RingObserver
	o.OnRound(RoundTrace{Round: 1})
	o.OnDeliver("agreed", time.Millisecond)
	if !o.Now().IsZero() {
		t.Fatal("nil observer Now should be zero")
	}
}

func TestRingObserverMetrics(t *testing.T) {
	reg := NewRegistry()
	tr := NewRingTracer(8)
	o := &RingObserver{Reg: reg, Tracer: tr}
	o.OnRound(RoundTrace{Round: 1, SentSeq: 12, Aru: 10, Fcc: 5,
		New: 4, Pre: 3, Post: 1, Retransmitted: 2, Requested: 1,
		Hold: 3 * time.Microsecond})
	o.OnRound(RoundTrace{Round: 2, SentSeq: 20, Aru: 12, Fcc: 6, New: 2, Pre: 1, Post: 1})
	o.OnDeliver("agreed", 50*time.Microsecond)
	o.OnDeliver("agreed", 0)
	o.OnDeliver("safe", 0)

	if got := reg.Counter("ring.rounds").Value(); got != 2 {
		t.Fatalf("rounds = %d, want 2", got)
	}
	if got := reg.Counter("ring.sent_pre_token").Value(); got != 4 {
		t.Fatalf("sent_pre_token = %d, want 4", got)
	}
	if got := reg.Counter("ring.sent_post_token").Value(); got != 2 {
		t.Fatalf("sent_post_token = %d, want 2", got)
	}
	if got := reg.Counter("ring.retransmitted").Value(); got != 2 {
		t.Fatalf("retransmitted = %d, want 2", got)
	}
	if got := reg.Gauge("ring.seq").Value(); got != 20 {
		t.Fatalf("seq gauge = %d, want 20", got)
	}
	if got := reg.Gauge("ring.aru").Value(); got != 12 {
		t.Fatalf("aru gauge = %d, want 12", got)
	}
	if got := reg.Counter("ring.delivered.agreed").Value(); got != 2 {
		t.Fatalf("delivered.agreed = %d, want 2", got)
	}
	if got := reg.Counter("ring.delivered.safe").Value(); got != 1 {
		t.Fatalf("delivered.safe = %d, want 1", got)
	}
	if s := reg.Histogram("ring.delivery_ns.agreed", nil).Snapshot(); s.Count != 1 {
		t.Fatalf("delivery latency count = %d, want 1 (untimed deliveries not sampled)", s.Count)
	}
	if got := tr.Total(); got != 2 {
		t.Fatalf("tracer total = %d, want 2", got)
	}
}
