package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsFree(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should stay zero")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should stay zero")
	}
	h := r.Histogram("z", DurationBuckets())
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram should stay empty")
	}
	r.Publish("f", func() any { return 1 })
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("counter lookup not idempotent")
	}
	g := r.Gauge("g")
	g.Set(-4)
	g.Add(1)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 100})
	for _, v := range []float64{1, 5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 1066 {
		t.Fatalf("sum = %v, want 1066", s.Sum)
	}
	want := map[float64]uint64{10: 3, 100: 1, math.Inf(1): 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.N {
			t.Fatalf("bucket le=%v n=%d, want %d", b.Le, b.N, want[b.Le])
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 || s.Sum != 8000 {
		t.Fatalf("count=%d sum=%v, want 8000/8000", s.Count, s.Sum)
	}
}

func TestSnapshotAndPublish(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(7)
	r.Publish("v", func() any { return "hello" })
	s := r.Snapshot()
	if s["c"] != uint64(2) {
		t.Fatalf("c = %v", s["c"])
	}
	if s["g"] != int64(7) {
		t.Fatalf("g = %v", s["g"])
	}
	if s["v"] != "hello" {
		t.Fatalf("v = %v", s["v"])
	}
	if _, ok := s["uptime_seconds"]; !ok {
		t.Fatal("missing uptime_seconds")
	}
}
