package obs

import (
	"sync"
	"time"
)

// RoundTrace is one structured record of a token visit at one participant:
// what the token carried when it arrived, what the participant put on it,
// and what the participant multicast around it. Field names follow the
// paper's terminology (§III-B): seq is the highest sequence number
// assigned on the ring, aru is the all-received-up-to line, fcc is the
// flow-control count of messages sent in the previous rotation.
type RoundTrace struct {
	// At is the token's arrival time (zero when the driver has no wall
	// clock, e.g. in the discrete-event simulator).
	At time.Time `json:"at,omitempty"`
	// Round is the token round number.
	Round uint64 `json:"round"`
	// TokenSeq is the token's deduplication sequence number.
	TokenSeq uint32 `json:"token_seq"`
	// RecvSeq is the token's seq field on arrival.
	RecvSeq uint64 `json:"recv_seq"`
	// SentSeq is the seq field placed on the outgoing token (RecvSeq plus
	// the new messages initiated this visit).
	SentSeq uint64 `json:"sent_seq"`
	// Aru is the aru placed on the outgoing token.
	Aru uint64 `json:"aru"`
	// Fcc is the flow-control count placed on the outgoing token.
	Fcc uint32 `json:"fcc"`
	// New is the number of new messages initiated this visit.
	New int `json:"new"`
	// Pre is how many of the new messages were multicast before passing
	// the token; Post is how many after (the accelerated share).
	Pre  int `json:"pre"`
	Post int `json:"post"`
	// Retransmitted is the number of retransmission requests answered.
	Retransmitted int `json:"retransmitted"`
	// Requested is the number of retransmission requests added to the
	// outgoing token.
	Requested int `json:"requested"`
	// Hold is the token hold time: token receipt to token send (zero
	// without a wall clock).
	Hold time.Duration `json:"hold_ns"`
}

// RingTracer records the last N RoundTraces in a bounded ring buffer. It
// is safe for concurrent use and nil-safe: Record on a nil tracer is a
// no-op.
type RingTracer struct {
	mu    sync.Mutex
	buf   []RoundTrace
	next  int
	total uint64
}

// DefaultTraceDepth is the ring-buffer size used when none is given.
const DefaultTraceDepth = 64

// NewRingTracer returns a tracer holding the last n rounds (n <= 0 uses
// DefaultTraceDepth).
func NewRingTracer(n int) *RingTracer {
	if n <= 0 {
		n = DefaultTraceDepth
	}
	return &RingTracer{buf: make([]RoundTrace, 0, n)}
}

// Record appends one round trace, evicting the oldest when full.
func (t *RingTracer) Record(tr RoundTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, tr)
	} else {
		t.buf[t.next] = tr
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
	t.mu.Unlock()
}

// Total returns the number of rounds recorded over the tracer's lifetime.
func (t *RingTracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns up to max of the most recent traces, oldest first
// (max <= 0 returns everything buffered). It returns nil on a nil tracer.
func (t *RingTracer) Snapshot(max int) []RoundTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.buf)
	out := make([]RoundTrace, 0, n)
	// t.next is the oldest element once the buffer has wrapped.
	for i := 0; i < n; i++ {
		out = append(out, t.buf[(t.next+i)%n])
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// RingObserver bundles the hooks the protocol stack reports into: a
// metrics registry, a round tracer, and an optional wall clock. Any field
// may be nil; a nil *RingObserver disables observation entirely. One
// observer serves every ring a participant installs over its lifetime —
// counters accumulate across membership changes, gauges reflect the
// current ring.
type RingObserver struct {
	// Reg receives counters, gauges, and histograms (nil: metrics off).
	Reg *Registry
	// Tracer receives one RoundTrace per token visit (nil: tracing off).
	Tracer *RingTracer
	// Clock supplies wall time for hold times and delivery latencies
	// (nil: durations are reported as zero). Simulated drivers leave it
	// nil to stay deterministic.
	Clock func() time.Time
	// Label, when non-empty, scopes every metric the protocol stack
	// reports through this observer: "shard1.ring.rounds" instead of
	// "ring.rounds". A sharded node gives each ring instance its own
	// label so per-ring series stay separable in one shared registry.
	// Must be set before the first report and never changed.
	Label string
	// Msg receives sampled per-message lifecycle events (nil: message
	// tracing off — the engine's zero-allocation fast path).
	Msg *MsgTracer
	// Flight receives compact black-box protocol events (nil: flight
	// recording off). Sharded nodes share one recorder across rings;
	// events carry the observer's Label in their Ring field.
	Flight *FlightRecorder

	once sync.Once
	m    *ringMetrics

	dmu       sync.RWMutex
	delivered map[string]*deliveryMetrics
}

// ringMetrics caches the hot-path metric handles so a token visit does no
// registry (map) lookups.
type ringMetrics struct {
	rounds, sentPre, sentPost, retransmitted, requested *Counter
	seq, aru, fcc                                       *Gauge
	hold                                                *Histogram
}

type deliveryMetrics struct {
	count   *Counter
	latency *Histogram
}

// Now returns the observer's wall time, or the zero time when it has no
// clock (or is nil).
func (o *RingObserver) Now() time.Time {
	if o == nil || o.Clock == nil {
		return time.Time{}
	}
	return o.Clock()
}

// MsgTracer returns the observer's message tracer; nil (tracing off) on
// a nil observer.
func (o *RingObserver) MsgTracer() *MsgTracer {
	if o == nil {
		return nil
	}
	return o.Msg
}

// Recorder returns the observer's flight recorder; nil (recording off)
// on a nil observer.
func (o *RingObserver) Recorder() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.Flight
}

// MetricName scopes a metric name with the observer's label ("<label>.<base>"),
// or returns it unchanged when the observer is nil or unlabeled. The
// membership machine and other per-ring reporters route their registry
// names through this so a sharded node's rings never collide.
func (o *RingObserver) MetricName(base string) string {
	if o == nil || o.Label == "" {
		return base
	}
	return o.Label + "." + base
}

func (o *RingObserver) metrics() *ringMetrics {
	o.once.Do(func() {
		r := o.Reg
		o.m = &ringMetrics{
			rounds:        r.Counter(o.MetricName("ring.rounds")),
			sentPre:       r.Counter(o.MetricName("ring.sent_pre_token")),
			sentPost:      r.Counter(o.MetricName("ring.sent_post_token")),
			retransmitted: r.Counter(o.MetricName("ring.retransmitted")),
			requested:     r.Counter(o.MetricName("ring.rtr_requested")),
			seq:           r.Gauge(o.MetricName("ring.seq")),
			aru:           r.Gauge(o.MetricName("ring.aru")),
			fcc:           r.Gauge(o.MetricName("ring.fcc")),
			hold:          r.Histogram(o.MetricName("ring.token_hold_ns"), FineDurationBuckets()),
		}
	})
	return o.m
}

// OnRound records one token visit: the trace goes to the tracer, the
// aggregates to the registry. No-op on a nil observer.
func (o *RingObserver) OnRound(tr RoundTrace) {
	if o == nil {
		return
	}
	o.Tracer.Record(tr)
	if o.Reg == nil {
		return
	}
	m := o.metrics()
	m.rounds.Inc()
	m.sentPre.Add(uint64(tr.Pre))
	m.sentPost.Add(uint64(tr.Post))
	m.retransmitted.Add(uint64(tr.Retransmitted))
	m.requested.Add(uint64(tr.Requested))
	m.seq.Set(int64(tr.SentSeq))
	m.aru.Set(int64(tr.Aru))
	m.fcc.Set(int64(tr.Fcc))
	if tr.Hold > 0 {
		m.hold.ObserveDuration(tr.Hold)
	}
}

// OnDeliver records one application delivery of the given service level
// ("agreed", "safe", ...). latency is the local submit-to-delivery time
// for messages this participant initiated; pass 0 for messages received
// from others (counted, not timed). No-op on a nil observer.
func (o *RingObserver) OnDeliver(service string, latency time.Duration) {
	if o == nil || o.Reg == nil {
		return
	}
	o.dmu.RLock()
	d := o.delivered[service]
	o.dmu.RUnlock()
	if d == nil {
		o.dmu.Lock()
		if o.delivered == nil {
			o.delivered = make(map[string]*deliveryMetrics)
		}
		if d = o.delivered[service]; d == nil {
			d = &deliveryMetrics{
				count:   o.Reg.Counter(o.MetricName("ring.delivered." + service)),
				latency: o.Reg.Histogram(o.MetricName("ring.delivery_ns."+service), FineDurationBuckets()),
			}
			o.delivered[service] = d
		}
		o.dmu.Unlock()
	}
	d.count.Inc()
	if latency > 0 {
		d.latency.ObserveDuration(latency)
	}
}
