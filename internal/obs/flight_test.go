package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEvent{Kind: FlightTokenRx})
	f.SetClock(time.Now)
	if f.Total() != 0 || f.Snapshot() != nil {
		t.Fatal("nil recorder must be empty")
	}
	if err := f.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "none.jsonl")
	if err := f.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("nil recorder must not create a dump file")
	}
}

func TestFlightRecorderWrap(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		f.Record(FlightEvent{Kind: FlightDeliver, Seq: uint64(i)})
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10", f.Total())
	}
	got := f.Snapshot()
	if len(got) != 4 {
		t.Fatalf("kept %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest first)", i, ev.Seq, want)
		}
	}
}

func TestFlightRecorderClock(t *testing.T) {
	f := NewFlightRecorder(8)
	fixed := time.Unix(42, 0)
	f.SetClock(func() time.Time { return fixed })
	f.Record(FlightEvent{Kind: FlightState, Note: "operational"})
	pinned := time.Unix(7, 0)
	f.Record(FlightEvent{Kind: FlightState, Note: "gather", At: pinned})
	got := f.Snapshot()
	if !got[0].At.Equal(fixed) {
		t.Fatalf("zero At not stamped by clock: %v", got[0].At)
	}
	if !got[1].At.Equal(pinned) {
		t.Fatalf("caller-stamped At overwritten: %v", got[1].At)
	}
}

func TestFlightRecorderJSONL(t *testing.T) {
	f := NewFlightRecorder(8)
	f.SetClock(func() time.Time { return time.Unix(1, 0) })
	f.Record(FlightEvent{Kind: FlightTokenRx, Ring: "shard1", Seq: 9, Aru: 7, Fcc: 3, Count: 2})
	f.Record(FlightEvent{Kind: FlightFault, Note: "loss:drop:token"})

	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "token_rx" || lines[0]["ring"] != "shard1" ||
		lines[0]["seq"] != float64(9) || lines[0]["fcc"] != float64(3) {
		t.Fatalf("line 0 = %v", lines[0])
	}
	if lines[1]["kind"] != "fault" || lines[1]["note"] != "loss:drop:token" {
		t.Fatalf("line 1 = %v", lines[1])
	}
}

func TestFlightRecorderDumpFile(t *testing.T) {
	dir := t.TempDir()

	empty := NewFlightRecorder(4)
	p := filepath.Join(dir, "empty.jsonl")
	if err := empty.DumpFile(p); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatal("empty recorder must not create a dump file")
	}

	f := NewFlightRecorder(4)
	f.Record(FlightEvent{Kind: FlightDeliver, Seq: 5, Count: 5})
	p = filepath.Join(dir, "dump.jsonl")
	if err := f.DumpFile(p); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(data), &m); err != nil {
		t.Fatalf("dump is not JSONL: %v", err)
	}
	if m["kind"] != "deliver" {
		t.Fatalf("dump = %v", m)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(FlightEvent{Kind: FlightTokenRx, Seq: uint64(i)})
				if i%50 == 0 {
					f.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Total() != 2000 {
		t.Fatalf("Total = %d, want 2000", f.Total())
	}
}

func TestFlightKindNames(t *testing.T) {
	want := map[FlightKind]string{
		FlightTokenRx:    "token_rx",
		FlightTokenTx:    "token_tx",
		FlightState:      "state",
		FlightRetransReq: "rtr_req",
		FlightRetransAns: "rtr_ans",
		FlightDeliver:    "deliver",
		FlightFault:      "fault",
		FlightRxDrop:     "rx_drop",
		FlightClient:     "client",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
	if FlightKind(200).String() == "" {
		t.Error("unknown kind must still render")
	}
}
