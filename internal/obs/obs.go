// Package obs is the observability layer: a zero-dependency (standard
// library only) metrics registry of atomic counters, gauges, and
// fixed-bucket histograms; a ring-aware token-round tracer (trace.go); and
// an HTTP debug server exposing /debug/vars, /debug/ring, and pprof
// (http.go).
//
// Everything is nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, *RingTracer, or *RingObserver are no-ops, so instrumented
// code needs no "is observability on?" branches and the zero value costs
// nothing beyond an inlined nil check on the hot path.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's value. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. No-op on a nil gauge.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates samples into fixed buckets. Observation is
// lock-free; bucket bounds are immutable after creation.
type Histogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// DurationBuckets returns exponential bucket bounds in nanoseconds from
// 1µs to ~16s (doubling), suitable for latency histograms.
func DurationBuckets() []float64 {
	var b []float64
	for v := float64(time.Microsecond); v <= float64(16*time.Second); v *= 2 {
		b = append(b, v)
	}
	return b
}

// FineDurationBuckets returns exponential bucket bounds in nanoseconds
// from 100ns to ~1.7s (doubling). DurationBuckets starts at 1µs, which
// collapses the sim testbed's sub-µs HandleData times and µs-scale token
// rounds into one or two buckets; engine-level histograms use this finer
// ladder instead. Existing metric names are unchanged — only the bounds
// differ.
func FineDurationBuckets() []float64 {
	var b []float64
	for v := float64(100 * time.Nanosecond); v <= float64(2*time.Second); v *= 2 {
		b = append(b, v)
	}
	return b
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d)) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket that holds it, the standard Prometheus
// histogram_quantile estimate. The first bucket interpolates from zero;
// a quantile landing in the +Inf bucket reports the highest finite
// bound. Returns 0 on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: the best point estimate is the last
				// finite bound.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Count is the total number of samples.
	Count uint64 `json:"count"`
	// Sum is the sum of all samples.
	Sum float64 `json:"sum"`
	// Mean is Sum/Count (0 when empty).
	Mean float64 `json:"mean"`
	// Buckets hold one entry per bound plus a final +Inf bucket.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one histogram bucket: the count of samples at or
// below the upper bound (exclusive of earlier buckets).
type HistogramBucket struct {
	// Le is the bucket's inclusive upper bound; +Inf for the last bucket.
	Le float64 `json:"le"`
	// N is the number of samples that fell in this bucket.
	N uint64 `json:"n"`
}

// MarshalJSON renders +Inf bounds as the string "inf".
func (b HistogramBucket) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.Le, 1) {
		return json.Marshal(map[string]any{"le": "inf", "n": b.N})
	}
	return json.Marshal(map[string]any{"le": b.Le, "n": b.N})
}

// Snapshot returns a copy of the histogram's state, omitting empty
// buckets. It returns a zero snapshot for a nil histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sum.Load())
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, HistogramBucket{Le: le, N: n})
	}
	return s
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use and nil-safe: every accessor on a nil registry returns a
// nil metric whose methods are no-ops, so a nil *Registry is "observability
// off" with no further checks at instrumentation sites.
//
// Metric handles should be looked up once and cached; the lookup takes a
// lock, the cached handle's operations are a single atomic.
type Registry struct {
	start time.Time

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() any),
	}
}

// Counter returns the named counter, creating it on first use. It returns
// nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. It returns nil
// (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds). It returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Publish registers a computed variable: fn is called at snapshot time and
// its (JSON-marshalable) result appears under name in /debug/vars. It
// replaces any previous function of the same name. No-op on a nil
// registry.
func (r *Registry) Publish(name string, fn func() any) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot returns every metric's current value keyed by name, plus
// "uptime_seconds". Counters and gauges map to numbers, histograms to
// HistogramSnapshot, published functions to their result.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() any, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.RUnlock()

	for k, v := range counters {
		out[k] = v.Value()
	}
	for k, v := range gauges {
		out[k] = v.Value()
	}
	for k, v := range hists {
		out[k] = v.Snapshot()
	}
	for k, fn := range funcs {
		out[k] = fn()
	}
	out["uptime_seconds"] = time.Since(r.start).Seconds()
	return out
}

// WriteJSON writes the snapshot as indented JSON with sorted keys (Go maps
// marshal with sorted keys already).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// String renders the snapshot compactly, for logs and tests.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return fmt.Sprintf("obs.Registry(marshal error: %v)", err)
	}
	return string(b)
}
