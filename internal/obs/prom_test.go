package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// promLines renders the registry and returns the non-comment sample lines.
func promLines(t *testing.T, r *Registry) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out
}

func promValue(t *testing.T, lines []string, series string) string {
	t.Helper()
	for _, line := range lines {
		if name, val, ok := strings.Cut(line, " "); ok && name == series {
			return val
		}
	}
	t.Fatalf("series %q not found in:\n%s", series, strings.Join(lines, "\n"))
	return ""
}

func TestWritePrometheusCountersGaugesLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("ring.rounds").Add(42)
	r.Counter("shard1.ring.rounds").Add(7)
	r.Counter("shard0.ring.rounds").Add(3)
	r.Gauge("membership.state").Set(3)
	r.Gauge("shard12.ring.aru").Set(99)

	lines := promLines(t, r)
	if v := promValue(t, lines, "accelring_ring_rounds"); v != "42" {
		t.Errorf("unlabeled counter = %s, want 42", v)
	}
	if v := promValue(t, lines, `accelring_ring_rounds{ring="1"}`); v != "7" {
		t.Errorf("shard1 counter = %s, want 7", v)
	}
	if v := promValue(t, lines, `accelring_ring_rounds{ring="0"}`); v != "3" {
		t.Errorf("shard0 counter = %s, want 3", v)
	}
	if v := promValue(t, lines, "accelring_membership_state"); v != "3" {
		t.Errorf("gauge = %s, want 3", v)
	}
	if v := promValue(t, lines, `accelring_ring_aru{ring="12"}`); v != "99" {
		t.Errorf("multi-digit shard gauge = %s, want 99", v)
	}
	// Rows of one family must sort stably (labels ascending).
	var rounds []string
	for _, line := range lines {
		if strings.HasPrefix(line, "accelring_ring_rounds") {
			rounds = append(rounds, line)
		}
	}
	if len(rounds) != 3 || !strings.HasPrefix(rounds[0], "accelring_ring_rounds ") {
		t.Errorf("family rows not sorted: %v", rounds)
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ring.token_hold_ns", []float64{10, 100, 1000})
	h.Observe(5)   // bucket le=10
	h.Observe(5)   // bucket le=10
	h.Observe(500) // bucket le=1000 (le=100 stays empty)
	h.Observe(5000)

	lines := promLines(t, r)
	series := func(le string) uint64 {
		v := promValue(t, lines, `accelring_ring_token_hold_ns_bucket{le="`+le+`"}`)
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bucket %s: %v", le, err)
		}
		return n
	}
	// Cumulative ladder, empty buckets included.
	if series("10") != 2 || series("100") != 2 || series("1000") != 3 || series("+Inf") != 4 {
		t.Errorf("cumulative buckets wrong: 10=%d 100=%d 1000=%d +Inf=%d",
			series("10"), series("100"), series("1000"), series("+Inf"))
	}
	if v := promValue(t, lines, "accelring_ring_token_hold_ns_count"); v != "4" {
		t.Errorf("_count = %s, want 4", v)
	}
	if v := promValue(t, lines, "accelring_ring_token_hold_ns_sum"); v != "5510" {
		t.Errorf("_sum = %s, want 5510", v)
	}
}

func TestWritePrometheusPublished(t *testing.T) {
	type stats struct {
		Gets   uint64
		Misses int
		Name   string // non-numeric: skipped
	}
	r := NewRegistry()
	r.Publish("bufpool", func() any { return stats{Gets: 11, Misses: 2, Name: "x"} })
	r.Publish("goroutines", func() any { return 17 })
	r.Publish("ratio", func() any { return 0.5 })
	r.Publish("faults.rules", func() any { return []map[string]any{{"rule": "a"}} }) // skipped
	r.Publish("byname", func() any { return map[string]int{"TxBytes": 9} })

	lines := promLines(t, r)
	if v := promValue(t, lines, "accelring_bufpool_gets"); v != "11" {
		t.Errorf("struct field = %s, want 11", v)
	}
	if v := promValue(t, lines, "accelring_bufpool_misses"); v != "2" {
		t.Errorf("struct field = %s, want 2", v)
	}
	if v := promValue(t, lines, "accelring_goroutines"); v != "17" {
		t.Errorf("plain number = %s, want 17", v)
	}
	if v := promValue(t, lines, "accelring_ratio"); v != "0.5" {
		t.Errorf("float = %s, want 0.5", v)
	}
	if v := promValue(t, lines, "accelring_byname_tx_bytes"); v != "9" {
		t.Errorf("map entry = %s, want 9", v)
	}
	for _, line := range lines {
		if strings.Contains(line, "bufpool_name") || strings.Contains(line, "faults_rules") {
			t.Errorf("non-numeric publication leaked: %s", line)
		}
	}
}

// TestWritePrometheusLabeledHistogram pins the sharded-histogram shape
// the latency aggregator produces: per-ring e2e histograms land in one
// family, the ring label composes with le on bucket rows, and _sum/_count
// stay per-ring.
func TestWritePrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{10, 100}
	r.Histogram("latency.e2e_ns", bounds).Observe(5)
	r.Histogram("shard0.latency.e2e_ns", bounds).Observe(50)
	h1 := r.Histogram("shard1.latency.e2e_ns", bounds)
	h1.Observe(5)
	h1.Observe(50)

	lines := promLines(t, r)
	for series, want := range map[string]string{
		`accelring_latency_e2e_ns_bucket{le="10"}`:            "1",
		`accelring_latency_e2e_ns_bucket{ring="0",le="10"}`:   "0",
		`accelring_latency_e2e_ns_bucket{ring="0",le="100"}`:  "1",
		`accelring_latency_e2e_ns_bucket{ring="1",le="+Inf"}`: "2",
		`accelring_latency_e2e_ns_count{ring="0"}`:            "1",
		`accelring_latency_e2e_ns_sum{ring="1"}`:              "55",
		`accelring_latency_e2e_ns_count`:                      "1",
	} {
		if v := promValue(t, lines, series); v != want {
			t.Errorf("%s = %s, want %s", series, v, want)
		}
	}
	// One TYPE comment for the whole family, before any of its rows.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "# TYPE accelring_latency_e2e_ns histogram"); n != 1 {
		t.Errorf("TYPE lines for the family = %d, want 1", n)
	}
}

// Every exported series name must match the stable naming scheme; this is
// the same property the daemon-level lint asserts end to end.
func TestWritePrometheusNamesValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("ring.delivered.safe").Add(1)
	r.Counter("shard2.transport.udp.tx_data_bytes").Add(1)
	r.Gauge("daemon.clients").Set(1)
	r.Histogram("ring.delivery_ns.agreed", FineDurationBuckets()).Observe(1)
	r.Publish("weird.Name-with.Dashes", func() any { return 1 })

	name := regexp.MustCompile(`^accelring_[a-z0-9_]+$`)
	full := regexp.MustCompile(`^(accelring_[a-z0-9_]+)(\{[^}]*\})? `)
	for _, line := range promLines(t, r) {
		m := full.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable exposition line: %q", line)
			continue
		}
		if !name.MatchString(m[1]) {
			t.Errorf("series name %q does not match ^accelring_[a-z0-9_]+$", m[1])
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry: err=%v, wrote %d bytes", err, buf.Len())
	}
}

func TestWritePrometheusUptime(t *testing.T) {
	r := NewRegistry()
	lines := promLines(t, r)
	v := promValue(t, lines, "accelring_uptime_seconds")
	if f, err := strconv.ParseFloat(v, 64); err != nil || f < 0 {
		t.Fatalf("uptime = %q (%v)", v, err)
	}
}

// TestWritePrometheusConcurrent scrapes while the "engine" updates, under
// the race detector.
func TestWritePrometheusConcurrent(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Counter("ring.rounds").Add(1)
			r.Gauge("ring.seq").Set(int64(i))
			r.Histogram("ring.token_hold_ns", FineDurationBuckets()).Observe(float64(i))
			if i == 0 {
				r.Publish("live", func() any { return i })
			}
		}
	}()
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				r.Snapshot()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestFineDurationBuckets(t *testing.T) {
	b := FineDurationBuckets()
	if len(b) == 0 {
		t.Fatal("no buckets")
	}
	if b[0] != float64(100*time.Nanosecond) {
		t.Fatalf("first bucket = %v, want 100ns", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Fatalf("bucket %d = %v, want double of %v", i, b[i], b[i-1])
		}
	}
	if last := b[len(b)-1]; last < float64(time.Second) || last > float64(2*time.Second) {
		t.Fatalf("last bucket %v outside (1s, 2s]", time.Duration(last))
	}
}
