package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// FlightKind classifies one black-box flight-recorder event.
type FlightKind uint8

const (
	// FlightTokenRx: a regular token arrived. Seq/Aru/Fcc carry the
	// token's fields, Count its retransmission-request count.
	FlightTokenRx FlightKind = iota + 1
	// FlightTokenTx: the token was forwarded. Seq/Aru/Fcc carry the
	// outgoing fields, Count the requests placed on it.
	FlightTokenTx
	// FlightState: a membership state transition; Note names the new
	// state ("gather", "commit", "recover", "operational", "install",
	// timeouts and retransmits use their own notes).
	FlightState
	// FlightRetransReq: retransmission requests were added to the
	// outgoing token; Seq is the first requested seq, Count how many.
	FlightRetransReq
	// FlightRetransAns: requests carried by the token were answered by
	// re-multicasting; Seq is the first answered seq, Count how many.
	FlightRetransAns
	// FlightDeliver: a delivery batch went to the application; Seq is
	// the last delivered seq, Count the batch size.
	FlightDeliver
	// FlightFault: the fault injector acted on a packet; Note is
	// "<rule>:<effect>" (plus ":token" for token frames), Seq/Aru carry
	// the packet's from/to participant IDs.
	FlightFault
	// FlightRxDrop: the transport dropped an inbound frame (full receive
	// channel); Note is "data" or "token".
	FlightRxDrop
	// FlightClient: a daemon client event; Note is "connect",
	// "disconnect" or "slow_disconnect", Count the clients now attached.
	FlightClient
	// FlightSLO: a health detector flag crossed its rising edge; Note is
	// "slo_burn" or "merge_stall", Ring the affected scope. Recorded so
	// a flight dump around a tail-latency incident carries the moment the
	// burn started.
	FlightSLO
)

var flightKindNames = [...]string{
	FlightTokenRx:    "token_rx",
	FlightTokenTx:    "token_tx",
	FlightState:      "state",
	FlightRetransReq: "rtr_req",
	FlightRetransAns: "rtr_ans",
	FlightDeliver:    "deliver",
	FlightFault:      "fault",
	FlightRxDrop:     "rx_drop",
	FlightClient:     "client",
	FlightSLO:        "slo",
}

// String returns the kind's wire name ("token_rx", ...).
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) && flightKindNames[k] != "" {
		return flightKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its string name.
func (k FlightKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// FlightEvent is one compact protocol event. Like MsgEvent it is all
// scalars — no slices or pointers into pooled protocol buffers — so
// recording can never alias scratch memory that a later decode reuses.
type FlightEvent struct {
	// At is the event time, stamped by the recorder's clock when zero.
	At time.Time `json:"at"`
	// Kind classifies the event.
	Kind FlightKind `json:"kind"`
	// Ring scopes the event on sharded nodes ("shard0", ...); empty on
	// single-ring nodes.
	Ring string `json:"ring,omitempty"`
	// Note is a small kind-specific tag (state name, drop class, rule).
	// Callers must pass static or already-owned strings.
	Note string `json:"note,omitempty"`
	// Seq, Aru, Fcc and Count are kind-specific scalars; see the kind
	// constants for their meaning per kind.
	Seq   uint64 `json:"seq,omitempty"`
	Aru   uint64 `json:"aru,omitempty"`
	Fcc   uint32 `json:"fcc,omitempty"`
	Count int    `json:"count,omitempty"`
}

// DefaultFlightDepth is the event-ring size used when none is given.
const DefaultFlightDepth = 1024

// FlightRecorder is a black-box ring of the last N protocol events,
// recorded from the core engine, the membership machine, the transports
// and the daemon. It is cheap enough to leave on permanently; when a
// chaos invariant fires, a node panics, or a daemon gets SIGQUIT, the
// buffer is dumped as JSONL so the final seconds before the failure are
// replayable. Safe for concurrent use; nil-safe throughout.
type FlightRecorder struct {
	mu    sync.Mutex
	clock func() time.Time
	buf   []FlightEvent
	next  int
	total uint64
}

// NewFlightRecorder returns a recorder holding the last depth events
// (depth <= 0 uses DefaultFlightDepth), stamping events with time.Now.
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{clock: time.Now, buf: make([]FlightEvent, 0, depth)}
}

// SetClock replaces the recorder's timestamp source — the chaos harness
// installs its virtual clock so dumps line up with the deterministic
// schedule. A nil fn leaves events unstamped. No-op on a nil recorder.
func (f *FlightRecorder) SetClock(fn func() time.Time) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.clock = fn
	f.mu.Unlock()
}

// Record appends one event, evicting the oldest when full, stamping At
// from the recorder's clock when the caller left it zero. The event is
// copied by value. No-op on a nil recorder.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if ev.At.IsZero() && f.clock != nil {
		ev.At = f.clock()
	}
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[f.next] = ev
		f.next = (f.next + 1) % cap(f.buf)
	}
	f.total++
	f.mu.Unlock()
}

// Total returns the number of events recorded over the recorder's
// lifetime (0 on a nil recorder).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Snapshot returns every buffered event, oldest first (nil on a nil
// recorder).
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.buf)
	out := make([]FlightEvent, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, f.buf[(f.next+i)%n])
	}
	return out
}

// WriteJSONL writes the buffered events as JSON Lines, oldest first.
// No-op on a nil recorder.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range f.Snapshot() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// DumpFile writes the buffered events as JSONL to path, creating or
// truncating it. No-op (no file) on a nil or empty recorder.
func (f *FlightRecorder) DumpFile(path string) error {
	if f == nil || f.Total() == 0 {
		return nil
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteJSONL(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
