package obs

import (
	"testing"
	"time"
)

// healthRig builds a detector over a synthetic registry plus a virtual
// clock, so each pathology can be staged by poking counters directly.
type healthRig struct {
	reg *Registry
	h   *Health
	now time.Time
}

func newHealthRig(t *testing.T, cfg HealthConfig) *healthRig {
	t.Helper()
	rig := &healthRig{reg: NewRegistry(), now: time.Unix(1000, 0)}
	cfg.Now = func() time.Time { return rig.now }
	rig.h = NewHealth(rig.reg, cfg)
	return rig
}

// pass advances the clock and runs one detector pass, returning the
// single-scope status.
func (r *healthRig) pass(t *testing.T) HealthStatus {
	t.Helper()
	r.now = r.now.Add(time.Second)
	sts := r.h.Check()
	if len(sts) != 1 {
		t.Fatalf("got %d statuses, want 1", len(sts))
	}
	return sts[0]
}

func TestHealthTokenStall(t *testing.T) {
	rig := newHealthRig(t, HealthConfig{})
	rounds := rig.reg.Counter("ring.rounds")

	rounds.Add(10)
	if st := rig.pass(t); !st.Healthy() {
		t.Fatalf("baseline pass must not flag: %+v", st)
	}
	// No rotation between passes on a ring that has rotated before.
	if st := rig.pass(t); !st.TokenStall || st.Healthy() {
		t.Fatalf("stalled ring not flagged: %+v", st)
	}
	rounds.Add(5)
	if st := rig.pass(t); st.TokenStall {
		t.Fatalf("rotating ring still flagged: %+v", st)
	}
	// A ring that never rotated (rounds == 0) is forming, not stalled.
	fresh := newHealthRig(t, HealthConfig{})
	fresh.pass(t)
	if st := fresh.pass(t); st.TokenStall {
		t.Fatalf("never-rotated ring flagged as stalled: %+v", st)
	}
}

func TestHealthAruStagnation(t *testing.T) {
	rig := newHealthRig(t, HealthConfig{})
	rounds := rig.reg.Counter("ring.rounds")
	rig.reg.Gauge("ring.aru").Set(50)
	rig.reg.Gauge("ring.seq").Set(80)

	rounds.Add(1)
	rig.pass(t)
	rounds.Add(5) // rounds advance, aru frozen below seq
	if st := rig.pass(t); !st.AruStagnation {
		t.Fatalf("frozen aru not flagged: %+v", st)
	}
	rounds.Add(5)
	rig.reg.Gauge("ring.aru").Set(80) // caught up to seq
	if st := rig.pass(t); st.AruStagnation {
		t.Fatalf("advancing aru still flagged: %+v", st)
	}
	rounds.Add(5) // aru == seq: idle ring, not stagnation
	if st := rig.pass(t); st.AruStagnation {
		t.Fatalf("idle ring flagged: %+v", st)
	}
}

func TestHealthRetransStorm(t *testing.T) {
	rig := newHealthRig(t, HealthConfig{RetransBudget: 100})
	rounds := rig.reg.Counter("ring.rounds")
	retr := rig.reg.Counter("ring.retransmitted")

	rounds.Add(1)
	rig.pass(t)
	rounds.Add(2)
	retr.Add(120) // 60/round >= 0.5 * 100
	st := rig.pass(t)
	if !st.RetransStorm {
		t.Fatalf("storm not flagged: %+v", st)
	}
	if st.RetransPerRound != 60 {
		t.Fatalf("RetransPerRound = %v, want 60", st.RetransPerRound)
	}
	rounds.Add(10)
	retr.Add(10) // 1/round: healthy repair traffic
	if st := rig.pass(t); st.RetransStorm {
		t.Fatalf("light retransmission flagged: %+v", st)
	}
	// Without a budget, storm detection is off.
	off := newHealthRig(t, HealthConfig{})
	off.reg.Counter("ring.rounds").Add(1)
	off.pass(t)
	off.reg.Counter("ring.rounds").Add(1)
	off.reg.Counter("ring.retransmitted").Add(1000)
	if st := off.pass(t); st.RetransStorm {
		t.Fatalf("storm flagged with no budget: %+v", st)
	}
}

func TestHealthSlowConsumer(t *testing.T) {
	rig := newHealthRig(t, HealthConfig{})
	rig.reg.Counter("ring.rounds").Add(1)
	rig.pass(t)
	rig.reg.Counter("ring.rounds").Add(1)
	rig.reg.Counter("daemon.slow_disconnects").Add(1)
	if st := rig.pass(t); !st.SlowConsumer {
		t.Fatal("slow-consumer disconnect not flagged")
	}
	rig.reg.Counter("ring.rounds").Add(1)
	if st := rig.pass(t); st.SlowConsumer {
		t.Fatal("flag did not clear after a quiet pass")
	}
}

func TestHealthBackpressure(t *testing.T) {
	rig := newHealthRig(t, HealthConfig{})
	rig.reg.Counter("ring.rounds").Add(1)
	rig.pass(t)
	rig.reg.Counter("ring.rounds").Add(1)
	rig.reg.Counter("daemon.tier_spill").Add(1)
	if st := rig.pass(t); !st.Backpressure || st.Healthy() {
		t.Fatalf("spill-tier growth not flagged: %+v", st)
	}
	rig.reg.Counter("ring.rounds").Add(1)
	rig.reg.Counter("daemon.tier_throttle").Add(1)
	if st := rig.pass(t); !st.Backpressure {
		t.Fatalf("throttle-tier growth not flagged: %+v", st)
	}
	rig.reg.Counter("ring.rounds").Add(1)
	if st := rig.pass(t); st.Backpressure {
		t.Fatalf("flag did not clear after a quiet pass: %+v", st)
	}
	if v := rig.reg.Gauge("health.backpressure").Value(); v != 0 {
		t.Fatalf("health.backpressure gauge = %d, want 0", v)
	}
}

func TestHealthScopesAndGauges(t *testing.T) {
	rig := &healthRig{reg: NewRegistry(), now: time.Unix(1000, 0)}
	rig.h = NewHealth(rig.reg, HealthConfig{
		Scopes: []string{"shard0", "shard1"},
		Now:    func() time.Time { return rig.now },
	})
	rig.reg.Counter("shard0.ring.rounds").Add(5)
	rig.reg.Counter("shard1.ring.rounds").Add(5)
	rig.h.Check()
	rig.now = rig.now.Add(time.Second)
	rig.reg.Counter("shard1.ring.rounds").Add(5) // only shard1 rotates
	sts := rig.h.Check()
	if len(sts) != 2 {
		t.Fatalf("got %d statuses, want 2", len(sts))
	}
	if !sts[0].TokenStall || sts[0].Ring != "shard0" {
		t.Fatalf("shard0 not flagged stalled: %+v", sts[0])
	}
	if sts[1].TokenStall {
		t.Fatalf("healthy shard1 flagged: %+v", sts[1])
	}
	// The verdicts export as scoped gauges for /metrics.
	if rig.reg.Gauge("shard0.health.token_stall").Value() != 1 {
		t.Error("shard0.health.token_stall gauge not set")
	}
	if rig.reg.Gauge("shard1.health.healthy").Value() != 1 {
		t.Error("shard1.health.healthy gauge not set")
	}
}

func TestHealthStatusRunsFirstCheck(t *testing.T) {
	h := NewHealth(NewRegistry(), HealthConfig{})
	if sts := h.Status(); len(sts) != 1 {
		t.Fatalf("Status before any Check = %+v", sts)
	}
}

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	if h.Check() != nil || h.Status() != nil {
		t.Fatal("nil detector must return nil")
	}
	h.Start()
	h.Close()
}

func TestHealthStartOnChange(t *testing.T) {
	changes := make(chan HealthStatus, 16)
	reg := NewRegistry()
	h := NewHealth(reg, HealthConfig{
		Interval: time.Millisecond,
		OnChange: func(st HealthStatus) { changes <- st },
	})
	reg.Counter("ring.rounds").Add(3) // rotated once, then wedged
	h.Start()
	h.Start() // idempotent
	defer h.Close()
	select {
	case st := <-changes:
		if !st.TokenStall {
			t.Fatalf("change without stall: %+v", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnChange never fired for a wedged ring")
	}
	h.Close()
	h.Close() // idempotent
}

func TestHealthCloseWithoutStart(t *testing.T) {
	done := make(chan struct{})
	go func() {
		NewHealth(NewRegistry(), HealthConfig{}).Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close without Start hung")
	}
}
