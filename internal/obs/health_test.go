package obs

import (
	"testing"
	"time"
)

// healthRig builds a detector over a synthetic registry plus a virtual
// clock, so each pathology can be staged by poking counters directly.
type healthRig struct {
	reg *Registry
	h   *Health
	now time.Time
}

func newHealthRig(t *testing.T, cfg HealthConfig) *healthRig {
	t.Helper()
	rig := &healthRig{reg: NewRegistry(), now: time.Unix(1000, 0)}
	cfg.Now = func() time.Time { return rig.now }
	rig.h = NewHealth(rig.reg, cfg)
	return rig
}

// pass advances the clock and runs one detector pass, returning the
// single-scope status.
func (r *healthRig) pass(t *testing.T) HealthStatus {
	t.Helper()
	r.now = r.now.Add(time.Second)
	sts := r.h.Check()
	if len(sts) != 1 {
		t.Fatalf("got %d statuses, want 1", len(sts))
	}
	return sts[0]
}

func TestHealthTokenStall(t *testing.T) {
	rig := newHealthRig(t, HealthConfig{})
	rounds := rig.reg.Counter("ring.rounds")

	rounds.Add(10)
	if st := rig.pass(t); !st.Healthy() {
		t.Fatalf("baseline pass must not flag: %+v", st)
	}
	// No rotation between passes on a ring that has rotated before.
	if st := rig.pass(t); !st.TokenStall || st.Healthy() {
		t.Fatalf("stalled ring not flagged: %+v", st)
	}
	rounds.Add(5)
	if st := rig.pass(t); st.TokenStall {
		t.Fatalf("rotating ring still flagged: %+v", st)
	}
	// A ring that never rotated (rounds == 0) is forming, not stalled.
	fresh := newHealthRig(t, HealthConfig{})
	fresh.pass(t)
	if st := fresh.pass(t); st.TokenStall {
		t.Fatalf("never-rotated ring flagged as stalled: %+v", st)
	}
}

func TestHealthAruStagnation(t *testing.T) {
	rig := newHealthRig(t, HealthConfig{})
	rounds := rig.reg.Counter("ring.rounds")
	rig.reg.Gauge("ring.aru").Set(50)
	rig.reg.Gauge("ring.seq").Set(80)

	rounds.Add(1)
	rig.pass(t)
	rounds.Add(5) // rounds advance, aru frozen below seq
	if st := rig.pass(t); !st.AruStagnation {
		t.Fatalf("frozen aru not flagged: %+v", st)
	}
	rounds.Add(5)
	rig.reg.Gauge("ring.aru").Set(80) // caught up to seq
	if st := rig.pass(t); st.AruStagnation {
		t.Fatalf("advancing aru still flagged: %+v", st)
	}
	rounds.Add(5) // aru == seq: idle ring, not stagnation
	if st := rig.pass(t); st.AruStagnation {
		t.Fatalf("idle ring flagged: %+v", st)
	}
}

func TestHealthRetransStorm(t *testing.T) {
	rig := newHealthRig(t, HealthConfig{RetransBudget: 100})
	rounds := rig.reg.Counter("ring.rounds")
	retr := rig.reg.Counter("ring.retransmitted")

	rounds.Add(1)
	rig.pass(t)
	rounds.Add(2)
	retr.Add(120) // 60/round >= 0.5 * 100
	st := rig.pass(t)
	if !st.RetransStorm {
		t.Fatalf("storm not flagged: %+v", st)
	}
	if st.RetransPerRound != 60 {
		t.Fatalf("RetransPerRound = %v, want 60", st.RetransPerRound)
	}
	rounds.Add(10)
	retr.Add(10) // 1/round: healthy repair traffic
	if st := rig.pass(t); st.RetransStorm {
		t.Fatalf("light retransmission flagged: %+v", st)
	}
	// Without a budget, storm detection is off.
	off := newHealthRig(t, HealthConfig{})
	off.reg.Counter("ring.rounds").Add(1)
	off.pass(t)
	off.reg.Counter("ring.rounds").Add(1)
	off.reg.Counter("ring.retransmitted").Add(1000)
	if st := off.pass(t); st.RetransStorm {
		t.Fatalf("storm flagged with no budget: %+v", st)
	}
}

func TestHealthSlowConsumer(t *testing.T) {
	rig := newHealthRig(t, HealthConfig{})
	rig.reg.Counter("ring.rounds").Add(1)
	rig.pass(t)
	rig.reg.Counter("ring.rounds").Add(1)
	rig.reg.Counter("daemon.slow_disconnects").Add(1)
	if st := rig.pass(t); !st.SlowConsumer {
		t.Fatal("slow-consumer disconnect not flagged")
	}
	rig.reg.Counter("ring.rounds").Add(1)
	if st := rig.pass(t); st.SlowConsumer {
		t.Fatal("flag did not clear after a quiet pass")
	}
}

func TestHealthBackpressure(t *testing.T) {
	rig := newHealthRig(t, HealthConfig{})
	rig.reg.Counter("ring.rounds").Add(1)
	rig.pass(t)
	rig.reg.Counter("ring.rounds").Add(1)
	rig.reg.Counter("daemon.tier_spill").Add(1)
	if st := rig.pass(t); !st.Backpressure || st.Healthy() {
		t.Fatalf("spill-tier growth not flagged: %+v", st)
	}
	rig.reg.Counter("ring.rounds").Add(1)
	rig.reg.Counter("daemon.tier_throttle").Add(1)
	if st := rig.pass(t); !st.Backpressure {
		t.Fatalf("throttle-tier growth not flagged: %+v", st)
	}
	rig.reg.Counter("ring.rounds").Add(1)
	if st := rig.pass(t); st.Backpressure {
		t.Fatalf("flag did not clear after a quiet pass: %+v", st)
	}
	if v := rig.reg.Gauge("health.backpressure").Value(); v != 0 {
		t.Fatalf("health.backpressure gauge = %d, want 0", v)
	}
}

func TestHealthScopesAndGauges(t *testing.T) {
	rig := &healthRig{reg: NewRegistry(), now: time.Unix(1000, 0)}
	rig.h = NewHealth(rig.reg, HealthConfig{
		Scopes: []string{"shard0", "shard1"},
		Now:    func() time.Time { return rig.now },
	})
	rig.reg.Counter("shard0.ring.rounds").Add(5)
	rig.reg.Counter("shard1.ring.rounds").Add(5)
	rig.h.Check()
	rig.now = rig.now.Add(time.Second)
	rig.reg.Counter("shard1.ring.rounds").Add(5) // only shard1 rotates
	sts := rig.h.Check()
	if len(sts) != 2 {
		t.Fatalf("got %d statuses, want 2", len(sts))
	}
	if !sts[0].TokenStall || sts[0].Ring != "shard0" {
		t.Fatalf("shard0 not flagged stalled: %+v", sts[0])
	}
	if sts[1].TokenStall {
		t.Fatalf("healthy shard1 flagged: %+v", sts[1])
	}
	// The verdicts export as scoped gauges for /metrics.
	if rig.reg.Gauge("shard0.health.token_stall").Value() != 1 {
		t.Error("shard0.health.token_stall gauge not set")
	}
	if rig.reg.Gauge("shard1.health.healthy").Value() != 1 {
		t.Error("shard1.health.healthy gauge not set")
	}
}

func TestHealthStatusRunsFirstCheck(t *testing.T) {
	h := NewHealth(NewRegistry(), HealthConfig{})
	if sts := h.Status(); len(sts) != 1 {
		t.Fatalf("Status before any Check = %+v", sts)
	}
}

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	if h.Check() != nil || h.Status() != nil {
		t.Fatal("nil detector must return nil")
	}
	h.Start()
	h.Close()
}

func TestHealthStartOnChange(t *testing.T) {
	changes := make(chan HealthStatus, 16)
	reg := NewRegistry()
	h := NewHealth(reg, HealthConfig{
		Interval: time.Millisecond,
		OnChange: func(st HealthStatus) { changes <- st },
	})
	reg.Counter("ring.rounds").Add(3) // rotated once, then wedged
	h.Start()
	h.Start() // idempotent
	defer h.Close()
	select {
	case st := <-changes:
		if !st.TokenStall {
			t.Fatalf("change without stall: %+v", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnChange never fired for a wedged ring")
	}
	h.Close()
	h.Close() // idempotent
}

func TestHealthCloseWithoutStart(t *testing.T) {
	done := make(chan struct{})
	go func() {
		NewHealth(NewRegistry(), HealthConfig{}).Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close without Start hung")
	}
}

// TestHealthMergeStall stages the cross-ring pathology under a virtual
// clock: ring 1's merge frontier freezes while ring 0's keeps advancing,
// which means the global order is progressing on skips alone.
func TestHealthMergeStall(t *testing.T) {
	rig := &healthRig{reg: NewRegistry(), now: time.Unix(1000, 0)}
	fl := NewFlightRecorder(16)
	rig.h = NewHealth(rig.reg, HealthConfig{
		Scopes: []string{"shard0", "shard1"},
		Now:    func() time.Time { return rig.now },
		Flight: fl,
	})
	front0 := rig.reg.Gauge("shard0.merge.frontier")
	front1 := rig.reg.Gauge("shard1.merge.frontier")
	check := func() map[string]HealthStatus {
		rig.now = rig.now.Add(time.Second)
		out := make(map[string]HealthStatus)
		for _, st := range rig.h.Check() {
			out[st.Ring] = st
		}
		return out
	}

	front0.Set(10)
	front1.Set(10)
	check() // baseline
	front0.Set(20)
	front1.Set(20) // both advance: healthy
	for scope, st := range check() {
		if st.MergeStall {
			t.Fatalf("%s flagged while both frontiers advance", scope)
		}
	}
	front0.Set(30) // shard1 frozen, shard0 moving
	sts := check()
	if !sts["shard1"].MergeStall {
		t.Fatalf("frozen shard1 frontier not flagged: %+v", sts["shard1"])
	}
	if sts["shard0"].MergeStall {
		t.Fatalf("advancing shard0 flagged: %+v", sts["shard0"])
	}
	if v := rig.reg.Gauge("shard1.health.merge_stall").Value(); v != 1 {
		t.Fatalf("shard1.health.merge_stall gauge = %d, want 1", v)
	}
	// The rising edge landed exactly one flight event.
	evs := fl.Snapshot()
	if len(evs) != 1 || evs[0].Kind != FlightSLO || evs[0].Ring != "shard1" || evs[0].Note != "merge_stall" {
		t.Fatalf("flight events = %+v, want one shard1 merge_stall", evs)
	}
	// Still stalled: flag stays, but no second event (edge-triggered).
	front0.Set(40)
	if sts := check(); !sts["shard1"].MergeStall {
		t.Fatal("stall flag dropped while still frozen")
	}
	if n := len(fl.Snapshot()); n != 1 {
		t.Fatalf("sustained stall re-recorded: %d events", n)
	}
	// Recovery clears the flag; a later re-freeze records a new edge.
	front1.Set(40)
	front0.Set(50)
	if sts := check(); sts["shard1"].MergeStall {
		t.Fatalf("recovered shard1 still flagged: %+v", sts["shard1"])
	}
	front0.Set(60)
	if sts := check(); !sts["shard1"].MergeStall {
		t.Fatal("re-frozen shard1 not re-flagged")
	}
	if n := len(fl.Snapshot()); n != 2 {
		t.Fatalf("re-freeze did not record a second edge: %d events", n)
	}
	// Both frozen together (no peer advanced): idle cluster, not a stall.
	if sts := check(); sts["shard1"].MergeStall || sts["shard0"].MergeStall {
		t.Fatal("idle cluster flagged as merge stall")
	}
}

// TestHealthSLOBurnFlight drives a full latency->SLO->health chain under
// virtual time: sampled spans past the p99 target must flip the SLOBurn
// flag and land exactly one flight-recorder event on the rising edge.
func TestHealthSLOBurnFlight(t *testing.T) {
	reg := NewRegistry()
	tracer := NewMsgTracer(1, 1024)
	agg := NewLatencyAgg(reg)
	agg.AddTracer("", tracer)
	slo := NewSLO(reg, SLOConfig{TargetP99: 10 * time.Millisecond, MinSamples: 1, Window: 2})
	slo.Track("", agg.E2E(""))
	fl := NewFlightRecorder(16)
	now := time.Unix(1000, 0)
	h := NewHealth(reg, HealthConfig{
		Now:     func() time.Time { return now },
		Latency: agg,
		SLO:     slo,
		Flight:  fl,
	})
	base := time.Unix(2000, 0)
	span := func(seq uint64, e2e time.Duration) {
		tracer.Record(MsgEvent{Seq: seq, Stage: StageSubmit, At: base})
		tracer.Record(MsgEvent{Seq: seq, Stage: StageDeliver, At: base.Add(e2e)})
	}
	check := func() HealthStatus {
		now = now.Add(time.Second)
		sts := h.Check()
		if len(sts) != 1 {
			t.Fatalf("got %d statuses, want 1", len(sts))
		}
		return sts[0]
	}

	check() // baseline pass (folds nothing, baselines the SLO)
	for seq := uint64(1); seq <= 20; seq++ {
		span(seq, 100*time.Millisecond) // 10x over target
	}
	st := check()
	if !st.SLOBurn || st.Healthy() {
		t.Fatalf("over-target spans did not raise SLOBurn: %+v", st)
	}
	if st.SLOP99Burn < 99 {
		t.Fatalf("SLOP99Burn = %v, want ~100 (every sample over budget)", st.SLOP99Burn)
	}
	if v := reg.Gauge("health.slo_burn").Value(); v != 1 {
		t.Fatalf("health.slo_burn gauge = %d, want 1", v)
	}
	evs := fl.Snapshot()
	if len(evs) != 1 || evs[0].Kind != FlightSLO || evs[0].Note != "slo_burn" {
		t.Fatalf("flight events = %+v, want one slo_burn", evs)
	}
	if check(); len(fl.Snapshot()) != 1 {
		t.Fatal("sustained burn re-recorded the rising edge")
	}
	// Two quiet passes slide the burst out of the SLO window.
	check()
	if st := check(); st.SLOBurn {
		t.Fatalf("SLOBurn did not clear after the window slid: %+v", st)
	}
}
