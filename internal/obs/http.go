package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
)

// Server is the optional HTTP debug endpoint. It serves
//
//	/debug/vars   the registry snapshot as JSON (expvar-style)
//	/debug/ring   the last N token-round traces per registered tracer
//	/debug/pprof  the standard net/http/pprof profiles
//
// Tracers may be added while the server runs (rings come and go with
// membership changes; nodes are added as they start).
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server

	mu      sync.Mutex
	tracers map[string]*RingTracer
}

// StartServer listens on addr (e.g. ":6060" or "127.0.0.1:0") and serves
// the debug endpoints for reg in a background goroutine. Close shuts it
// down.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, ln: ln, tracers: make(map[string]*RingTracer)}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/ring", s.handleRing)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// AddTracer registers a round tracer under name (e.g. "node1"); its
// traces appear in /debug/ring. A nil tracer removes the name.
func (s *Server) AddTracer(name string, t *RingTracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t == nil {
		delete(s.tracers, name)
		return
	}
	s.tracers[name] = t
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = s.reg.WriteJSON(w)
}

// handleRing renders the last ?n= traces (default: everything buffered)
// of every tracer, keyed by name, oldest first.
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	max := 0
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil {
			max = v
		}
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.tracers))
	for name := range s.tracers {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string][]RoundTrace, len(names))
	for _, name := range names {
		out[name] = s.tracers[name].Snapshot(max)
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
