package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
)

// Server is the optional HTTP debug endpoint. It serves
//
//	/debug/vars      the registry snapshot as JSON (expvar-style)
//	/debug/ring      the last N token-round traces per registered tracer
//	/debug/msgtrace  sampled per-message lifecycle spans (?seq=N merges
//	                 one message's span across registered tracers)
//	/debug/flight    flight-recorder contents as JSONL
//	/debug/health    the health detector's latest per-ring statuses
//	/debug/latency   per-stage latency attribution digests per ring
//	/metrics         the registry in Prometheus text exposition format
//	/debug/pprof     the standard net/http/pprof profiles
//
// Tracers may be added while the server runs (rings come and go with
// membership changes; nodes are added as they start).
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server

	mu      sync.Mutex
	tracers map[string]*RingTracer
	msgs    map[string]*MsgTracer
	flights map[string]*FlightRecorder
	health  *Health
	latency *LatencyAgg
}

// maxSnapshotQuery bounds ?n=/-style count parameters; anything larger
// (or negative, or non-numeric) is a 400, not an unbounded allocation.
const maxSnapshotQuery = 1 << 16

// StartServer listens on addr (e.g. ":6060" or "127.0.0.1:0") and serves
// the debug endpoints for reg in a background goroutine. Close shuts it
// down.
func StartServer(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		reg:     reg,
		ln:      ln,
		tracers: make(map[string]*RingTracer),
		msgs:    make(map[string]*MsgTracer),
		flights: make(map[string]*FlightRecorder),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/ring", s.handleRing)
	mux.HandleFunc("/debug/msgtrace", s.handleMsgTrace)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	mux.HandleFunc("/debug/health", s.handleHealth)
	mux.HandleFunc("/debug/latency", s.handleLatency)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// AddTracer registers a round tracer under name (e.g. "node1"); its
// traces appear in /debug/ring. A nil tracer removes the name.
func (s *Server) AddTracer(name string, t *RingTracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t == nil {
		delete(s.tracers, name)
		return
	}
	s.tracers[name] = t
}

// AddMsgTracer registers a message tracer under name; its spans appear
// in /debug/msgtrace. A nil tracer removes the name.
func (s *Server) AddMsgTracer(name string, t *MsgTracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t == nil {
		delete(s.msgs, name)
		return
	}
	s.msgs[name] = t
}

// AddFlight registers a flight recorder under name; its events appear in
// /debug/flight. A nil recorder removes the name.
func (s *Server) AddFlight(name string, f *FlightRecorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f == nil {
		delete(s.flights, name)
		return
	}
	s.flights[name] = f
}

// SetHealth attaches the health detector served at /debug/health (nil
// detaches).
func (s *Server) SetHealth(h *Health) {
	s.mu.Lock()
	s.health = h
	s.mu.Unlock()
}

// SetLatency attaches the latency aggregator served at /debug/latency
// (nil detaches).
func (s *Server) SetLatency(a *LatencyAgg) {
	s.mu.Lock()
	s.latency = a
	s.mu.Unlock()
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = s.reg.WriteJSON(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// queryCount parses an optional bounded count parameter. ok is false —
// and a 400 has been written — when the value is non-numeric, negative,
// or larger than maxSnapshotQuery.
func queryCount(w http.ResponseWriter, r *http.Request, key string) (n int, ok bool) {
	q := r.URL.Query().Get(key)
	if q == "" {
		return 0, true
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 0 || v > maxSnapshotQuery {
		http.Error(w, "bad "+key+" parameter: want 0.."+strconv.Itoa(maxSnapshotQuery), http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleRing renders the last ?n= traces (default: everything buffered)
// of every tracer — or just ?tracer=name — keyed by name, oldest first.
// Bad parameters (negative or huge n, unknown tracer) are a 400.
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	max, ok := queryCount(w, r, "n")
	if !ok {
		return
	}
	want := r.URL.Query().Get("tracer")

	s.mu.Lock()
	names := make([]string, 0, len(s.tracers))
	for name := range s.tracers {
		if want == "" || name == want {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make(map[string][]RoundTrace, len(names))
	for _, name := range names {
		out[name] = s.tracers[name].Snapshot(max)
	}
	s.mu.Unlock()

	if want != "" && len(names) == 0 {
		http.Error(w, "unknown tracer "+strconv.Quote(want), http.StatusBadRequest)
		return
	}
	writeJSON(w, out)
}

// handleMsgTrace renders sampled message-lifecycle events per registered
// tracer: ?seq=N selects one message's span (merged across nodes when
// several tracers are registered), ?n= bounds the events per tracer,
// ?tracer=name selects one tracer. Bad parameters are a 400.
func (s *Server) handleMsgTrace(w http.ResponseWriter, r *http.Request) {
	max, ok := queryCount(w, r, "n")
	if !ok {
		return
	}
	var seq uint64
	haveSeq := false
	if q := r.URL.Query().Get("seq"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad seq parameter: want an unsigned integer", http.StatusBadRequest)
			return
		}
		seq, haveSeq = v, true
	}
	want := r.URL.Query().Get("tracer")

	s.mu.Lock()
	names := make([]string, 0, len(s.msgs))
	for name := range s.msgs {
		if want == "" || name == want {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make(map[string][]MsgEvent, len(names))
	for _, name := range names {
		t := s.msgs[name]
		if haveSeq {
			out[name] = t.ForSeq(seq)
		} else {
			out[name] = t.Snapshot(max)
		}
	}
	s.mu.Unlock()

	if want != "" && len(names) == 0 {
		http.Error(w, "unknown tracer "+strconv.Quote(want), http.StatusBadRequest)
		return
	}
	writeJSON(w, out)
}

// handleFlight streams flight-recorder events as JSONL, one recorder
// after another (?name= selects one; unknown names are a 400). Each
// recorder's section is preceded by a {"recorder": name} line.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	want := r.URL.Query().Get("name")

	s.mu.Lock()
	names := make([]string, 0, len(s.flights))
	for name := range s.flights {
		if want == "" || name == want {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	recs := make([]*FlightRecorder, len(names))
	for i, name := range names {
		recs[i] = s.flights[name]
	}
	s.mu.Unlock()

	if want != "" && len(names) == 0 {
		http.Error(w, "unknown recorder "+strconv.Quote(want), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i, rec := range recs {
		_ = enc.Encode(map[string]string{"recorder": names[i]})
		_ = rec.WriteJSONL(w)
	}
}

// handleLatency folds pending spans and renders every scope's per-stage
// latency digest (404 until an aggregator is attached with SetLatency).
func (s *Server) handleLatency(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	a := s.latency
	s.mu.Unlock()
	if a == nil {
		http.Error(w, "no latency aggregator attached", http.StatusNotFound)
		return
	}
	writeJSON(w, a.Snapshot())
}

// handleHealth renders the health detector's latest statuses (404 until
// a detector is attached with SetHealth).
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	h := s.health
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "no health detector attached", http.StatusNotFound)
		return
	}
	writeJSON(w, h.Status())
}
