// Package flowcontrol implements the window arithmetic of the ring
// protocols: the per-participant Personal window, the ring-wide Global
// window enforced through the token's flow-control count (fcc), and the
// Accelerated window that decides how much of a round's sending happens
// after the token is passed.
package flowcontrol

import "fmt"

// Windows holds the flow-control parameters of a ring.
type Windows struct {
	// Personal is the maximum number of new data messages one participant
	// may initiate in a single token round.
	Personal int
	// Global is the maximum number of multicasts (new messages plus
	// retransmissions) all participants combined may send in one round.
	Global int
	// Accelerated is the maximum number of a participant's new messages
	// that may be multicast after passing the token. Zero reproduces the
	// original (non-accelerated) Ring protocol's sending pattern.
	Accelerated int
}

// Validate checks the parameters for internal consistency.
func (w Windows) Validate() error {
	if w.Personal <= 0 {
		return fmt.Errorf("flowcontrol: personal window %d must be positive", w.Personal)
	}
	if w.Global < w.Personal {
		return fmt.Errorf("flowcontrol: global window %d below personal window %d", w.Global, w.Personal)
	}
	if w.Accelerated < 0 {
		return fmt.Errorf("flowcontrol: accelerated window %d must be non-negative", w.Accelerated)
	}
	if w.Accelerated > w.Personal {
		return fmt.Errorf("flowcontrol: accelerated window %d exceeds personal window %d", w.Accelerated, w.Personal)
	}
	return nil
}

// NumToSend returns how many new data messages the participant may
// initiate this round: the minimum of its queue length, the Personal
// window, and the Global window headroom after accounting for last round's
// traffic (the received token's fcc) and this round's retransmissions.
func (w Windows) NumToSend(queued, receivedFcc, numRetrans int) int {
	n := queued
	if w.Personal < n {
		n = w.Personal
	}
	headroom := w.Global - receivedFcc - numRetrans
	if headroom < n {
		n = headroom
	}
	if n < 0 {
		return 0
	}
	return n
}

// RetransBudget bounds how many retransmissions one participant may answer
// in a single token round. Retransmissions are multicasts like any other,
// so the ring-wide Global window is the natural cap: without it, a corrupt
// or adversarial token carrying a huge Rtr list would trigger an unbounded
// pre-token burst that the window arithmetic never accounts for. Requests
// left unanswered stay on the outgoing token and are served (here or at
// another holder) in later rounds, so the cap defers rather than drops.
func (w Windows) RetransBudget() int { return w.Global }

// Split divides a round's new messages between the pre-token and
// post-token multicast phases. At most Accelerated messages are deferred
// until after the token; if the participant has fewer than that, all of
// its messages go after the token (maximizing acceleration), exactly as
// the paper specifies.
func (w Windows) Split(numToSend int) (pre, post int) {
	post = numToSend
	if w.Accelerated < post {
		post = w.Accelerated
	}
	return numToSend - post, post
}

// NextFcc computes the fcc to place on the outgoing token: the received
// value minus everything this participant sent last round plus everything
// it is sending this round (new messages and retransmissions in both
// cases). The result saturates at zero to tolerate a misbehaving peer
// rather than wrapping.
func NextFcc(receivedFcc uint32, lastRoundSent, thisRoundSent int) uint32 {
	v := int64(receivedFcc) - int64(lastRoundSent) + int64(thisRoundSent)
	if v < 0 {
		return 0
	}
	return uint32(v)
}
