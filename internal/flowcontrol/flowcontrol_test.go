package flowcontrol

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		w       Windows
		wantErr bool
	}{
		{"ok", Windows{Personal: 20, Global: 160, Accelerated: 15}, false},
		{"accelerated zero (original protocol)", Windows{Personal: 20, Global: 160}, false},
		{"accelerated equals personal", Windows{Personal: 20, Global: 160, Accelerated: 20}, false},
		{"zero personal", Windows{Global: 100}, true},
		{"negative personal", Windows{Personal: -1, Global: 100}, true},
		{"global below personal", Windows{Personal: 20, Global: 10}, true},
		{"negative accelerated", Windows{Personal: 20, Global: 100, Accelerated: -1}, true},
		{"accelerated above personal", Windows{Personal: 20, Global: 100, Accelerated: 21}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.w.Validate(); (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestNumToSend(t *testing.T) {
	w := Windows{Personal: 10, Global: 50, Accelerated: 5}
	tests := []struct {
		name                         string
		queued, receivedFcc, retrans int
		want                         int
	}{
		{"queue limited", 3, 0, 0, 3},
		{"personal limited", 100, 0, 0, 10},
		{"global limited", 100, 45, 0, 5},
		{"global limited by retrans", 100, 40, 7, 3},
		{"global exhausted", 100, 50, 0, 0},
		{"global overdrawn clamps to zero", 100, 60, 10, 0},
		{"empty queue", 0, 0, 0, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := w.NumToSend(tc.queued, tc.receivedFcc, tc.retrans)
			if got != tc.want {
				t.Fatalf("NumToSend(%d,%d,%d) = %d, want %d",
					tc.queued, tc.receivedFcc, tc.retrans, got, tc.want)
			}
		})
	}
}

func TestSplit(t *testing.T) {
	tests := []struct {
		name              string
		w                 Windows
		numToSend         int
		wantPre, wantPost int
	}{
		// Paper Fig. 1b: personal 5, accelerated 3 -> 2 before, 3 after.
		{"paper example", Windows{Personal: 5, Global: 100, Accelerated: 3}, 5, 2, 3},
		// Paper: "If a participant in Figure 1b only had two messages to
		// send, it would send both after the token."
		{"fewer than accelerated all post", Windows{Personal: 5, Global: 100, Accelerated: 3}, 2, 0, 2},
		{"original protocol all pre", Windows{Personal: 5, Global: 100, Accelerated: 0}, 5, 5, 0},
		{"fully accelerated all post", Windows{Personal: 5, Global: 100, Accelerated: 5}, 5, 0, 5},
		{"nothing to send", Windows{Personal: 5, Global: 100, Accelerated: 3}, 0, 0, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			pre, post := tc.w.Split(tc.numToSend)
			if pre != tc.wantPre || post != tc.wantPost {
				t.Fatalf("Split(%d) = (%d, %d), want (%d, %d)",
					tc.numToSend, pre, post, tc.wantPre, tc.wantPost)
			}
		})
	}
}

func TestNextFcc(t *testing.T) {
	tests := []struct {
		name                 string
		fcc                  uint32
		lastRound, thisRound int
		want                 uint32
	}{
		{"steady state", 40, 10, 10, 40},
		{"ramping up", 0, 0, 10, 10},
		{"draining", 40, 10, 0, 30},
		{"saturates at zero", 5, 10, 0, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := NextFcc(tc.fcc, tc.lastRound, tc.thisRound); got != tc.want {
				t.Fatalf("NextFcc(%d,%d,%d) = %d, want %d",
					tc.fcc, tc.lastRound, tc.thisRound, got, tc.want)
			}
		})
	}
}

// TestQuickWindowBounds property-tests that NumToSend never exceeds any of
// its three bounds and Split never defers more than the Accelerated window.
func TestQuickWindowBounds(t *testing.T) {
	f := func(personal, global, accel uint8, queued, fcc, retrans uint16) bool {
		w := Windows{
			Personal:    int(personal%64) + 1,
			Global:      int(global),
			Accelerated: int(accel),
		}
		if w.Global < w.Personal {
			w.Global = w.Personal * 8
		}
		if w.Accelerated > w.Personal {
			w.Accelerated = w.Personal
		}
		if err := w.Validate(); err != nil {
			return false
		}
		n := w.NumToSend(int(queued), int(fcc), int(retrans))
		if n < 0 || n > int(queued) || n > w.Personal {
			return false
		}
		if n+int(fcc)+int(retrans) > w.Global && n != 0 {
			return false
		}
		pre, post := w.Split(n)
		return pre >= 0 && post >= 0 && pre+post == n && post <= w.Accelerated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRetransBudget pins the retransmission cap to the Global window and
// its interplay with NumToSend: a round that spends its whole budget on
// retransmissions has no headroom left for new messages.
func TestRetransBudget(t *testing.T) {
	cases := []struct {
		name       string
		w          Windows
		requested  int
		wantBudget int
		// wantNew is NumToSend(queued=100, fcc=0, min(requested, budget)).
		wantNew int
	}{
		{"defaults", Windows{Personal: 20, Global: 160, Accelerated: 15}, 0, 160, 20},
		{"few requests", Windows{Personal: 20, Global: 160, Accelerated: 15}, 150, 160, 10},
		{"budget exactly spent", Windows{Personal: 20, Global: 160, Accelerated: 15}, 160, 160, 0},
		{"oversized Rtr list", Windows{Personal: 20, Global: 160, Accelerated: 15}, 4096, 160, 0},
		{"tight ring", Windows{Personal: 5, Global: 10, Accelerated: 3}, 40, 10, 0},
		{"original protocol", Windows{Personal: 10, Global: 50}, 999, 50, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.w.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := tc.w.RetransBudget(); got != tc.wantBudget {
				t.Fatalf("RetransBudget() = %d, want %d", got, tc.wantBudget)
			}
			answered := tc.requested
			if answered > tc.w.RetransBudget() {
				answered = tc.w.RetransBudget()
			}
			if got := tc.w.NumToSend(100, 0, answered); got != tc.wantNew {
				t.Fatalf("NumToSend(100, 0, %d) = %d, want %d", answered, got, tc.wantNew)
			}
		})
	}
}
