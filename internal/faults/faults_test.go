package faults

import (
	"testing"
	"time"

	"accelring/internal/evs"
)

func decideN(in *Injector, n int, p Packet) []Decision {
	out := make([]Decision, n)
	for i := range out {
		out[i] = in.Decide(time.Duration(i)*time.Millisecond, p)
	}
	return out
}

func equalDecisions(a, b []Decision) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Drop != b[i].Drop || a[i].Delay != b[i].Delay || len(a[i].Extra) != len(b[i].Extra) {
			return false
		}
		for j := range a[i].Extra {
			if a[i].Extra[j] != b[i].Extra[j] {
				return false
			}
		}
	}
	return true
}

// TestSeedDeterminism: the same seed and packet sequence must yield the
// same decision sequence; a different seed must diverge.
func TestSeedDeterminism(t *testing.T) {
	plan := Plan{}
	plan.Add(Rule{Name: "loss", Model: Loss{P: 0.5}})
	plan.Add(Rule{Name: "dup", Model: Duplicate{P: 0.5, Spread: time.Millisecond}})
	plan.Add(Rule{Name: "delay", Model: Delay{Min: time.Millisecond, Max: 5 * time.Millisecond}})
	p := Packet{From: 1, To: 2}

	a := decideN(New(7, plan), 500, p)
	b := decideN(New(7, plan), 500, p)
	if !equalDecisions(a, b) {
		t.Fatal("same seed produced different decision sequences")
	}
	c := decideN(New(8, plan), 500, p)
	if equalDecisions(a, c) {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

func TestRuleMatching(t *testing.T) {
	var plan Plan
	plan.Add(Rule{
		Name: "targeted", From: 1, To: 3, Classes: ClassData,
		After: 10 * time.Millisecond, Until: 20 * time.Millisecond,
		Model: Loss{P: 1},
	})
	in := New(1, plan)

	cases := []struct {
		name string
		now  time.Duration
		p    Packet
		drop bool
	}{
		{"in window", 15 * time.Millisecond, Packet{From: 1, To: 3}, true},
		{"before window", 5 * time.Millisecond, Packet{From: 1, To: 3}, false},
		{"after window", 25 * time.Millisecond, Packet{From: 1, To: 3}, false},
		{"wrong sender", 15 * time.Millisecond, Packet{From: 2, To: 3}, false},
		{"wrong receiver", 15 * time.Millisecond, Packet{From: 1, To: 2}, false},
		{"token class", 15 * time.Millisecond, Packet{From: 1, To: 3, Token: true}, false},
	}
	for _, tc := range cases {
		if got := in.Decide(tc.now, tc.p).Drop; got != tc.drop {
			t.Errorf("%s: drop=%v, want %v", tc.name, got, tc.drop)
		}
	}
}

// TestGilbertElliottBursts: with a strongly bursty parameterization, the
// loss pattern must be correlated — the count of drop runs of length ≥ 3
// must far exceed what i.i.d. loss at the same rate produces.
func TestGilbertElliottBursts(t *testing.T) {
	const n = 20000
	runs := func(in *Injector) (drops, longRuns int) {
		cur := 0
		for i := 0; i < n; i++ {
			if in.Decide(0, Packet{From: 1, To: 2}).Drop {
				drops++
				cur++
			} else {
				if cur >= 3 {
					longRuns++
				}
				cur = 0
			}
		}
		return
	}
	var ge Plan
	ge.Add(Rule{Model: &GilbertElliott{PGoodBad: 0.02, PBadGood: 0.25, LossBad: 0.95}})
	geDrops, geRuns := runs(New(3, ge))
	rate := float64(geDrops) / n

	var iid Plan
	iid.Add(Rule{Model: Loss{P: rate}})
	_, iidRuns := runs(New(3, iid))

	if geDrops == 0 {
		t.Fatal("Gilbert–Elliott produced no loss")
	}
	if geRuns < 3*iidRuns {
		t.Fatalf("GE loss not bursty: %d long runs vs %d for i.i.d. at rate %.3f",
			geRuns, iidRuns, rate)
	}
}

func TestPartitionSymmetricAndAsymmetric(t *testing.T) {
	pa := NewPartition()
	var plan Plan
	plan.Add(Rule{Name: "part", Model: pa})
	in := New(1, plan)

	cross := func(from, to evs.ProcID) bool {
		return in.Decide(0, Packet{From: from, To: to}).Drop
	}
	if cross(1, 2) {
		t.Fatal("healed partition dropped a packet")
	}
	pa.Split(map[evs.ProcID]int{1: 0, 2: 0, 3: 1})
	if cross(1, 2) || !cross(1, 3) || !cross(3, 2) {
		t.Fatal("split sides not enforced")
	}
	pa.Heal()
	if cross(1, 3) {
		t.Fatal("heal did not reconnect")
	}
	pa.Block(1, 2)
	if !cross(1, 2) || cross(2, 1) {
		t.Fatal("asymmetric cut must drop only the blocked direction")
	}
	pa.Unblock(1, 2)
	if cross(1, 2) {
		t.Fatal("unblock did not lift the cut")
	}
}

func TestDropShortCircuitsAndClearsExtras(t *testing.T) {
	var plan Plan
	plan.Add(Rule{Name: "dup", Model: Duplicate{P: 1}})
	plan.Add(Rule{Name: "kill", Model: Loss{P: 1}})
	plan.Add(Rule{Name: "delay", Model: Delay{Min: time.Second, Max: time.Second}})
	in := New(1, plan)
	d := in.Decide(0, Packet{From: 1, To: 2})
	if !d.Drop || len(d.Extra) != 0 || d.Delay != 0 {
		t.Fatalf("dropped packet kept side effects: %+v", d)
	}
	counts := in.Counters()
	if counts[2].Matched != 0 {
		t.Fatal("rule after a drop still evaluated")
	}
}

func TestCounters(t *testing.T) {
	var plan Plan
	plan.Add(Rule{Name: "dup", Model: Duplicate{P: 1, Copies: 2}})
	plan.Add(Rule{Name: "delay", Model: Delay{Min: time.Millisecond, Max: time.Millisecond}})
	in := New(1, plan)
	for i := 0; i < 10; i++ {
		in.Decide(0, Packet{From: 1, To: 2})
	}
	c := in.Counters()
	if c[0].Matched != 10 || c[0].Duplicated != 20 {
		t.Fatalf("dup counters wrong: %+v", c[0])
	}
	if c[1].Delayed != 10 {
		t.Fatalf("delay counters wrong: %+v", c[1])
	}
}

func TestSeedsEnvOverride(t *testing.T) {
	t.Setenv(SeedEnv, "")
	got := Seeds(1, 2, 3)
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("defaults not returned: %v", got)
	}
	t.Setenv(SeedEnv, "42, 7")
	got = Seeds(1, 2, 3)
	if len(got) != 2 || got[0] != 42 || got[1] != 7 {
		t.Fatalf("override not parsed: %v", got)
	}
	t.Setenv(SeedEnv, "bogus")
	got = Seeds(1, 2)
	if len(got) != 2 || got[0] != 1 {
		t.Fatalf("unparseable override must fall back to defaults: %v", got)
	}
}
