package faults

import (
	"fmt"
	"sync"
	"time"

	"math/rand"

	"accelring/internal/obs"
	"accelring/internal/stats"
)

// Injector applies a Plan's rules to packets. It is safe for concurrent
// use; every decision is made under one lock so stateful models and the
// per-rule random streams stay consistent.
//
// The injector has two clocks. Paths with a virtual clock (simnet, the
// chaos harness) call Decide with their own elapsed time, keeping runs
// fully deterministic. Real-time paths (transport.Hub, transport.UDP)
// call DecideWall, which measures elapsed wall time since New.
type Injector struct {
	seed int64

	mu     sync.Mutex
	rules  []Rule
	rngs   []*rand.Rand
	counts []stats.FaultCounter
	fl     *obs.FlightRecorder

	wallStart time.Time
}

// New builds an injector for plan. Each rule gets an independent random
// stream derived from seed and the rule's index, so decisions are a pure
// function of (seed, packet sequence) per rule.
func New(seed int64, plan Plan) *Injector {
	in := &Injector{
		seed:      seed,
		rules:     append([]Rule(nil), plan.Rules...),
		rngs:      make([]*rand.Rand, len(plan.Rules)),
		counts:    make([]stats.FaultCounter, len(plan.Rules)),
		wallStart: time.Now(),
	}
	for i := range in.rules {
		// Distinct, seed-determined stream per rule: splitmix-style odd
		// multipliers keep streams uncorrelated across small indices.
		in.rngs[i] = rand.New(rand.NewSource(seed*0x9E3779B9 + int64(i)*0x85EBCA6B + 1))
		name := in.rules[i].Name
		if name == "" {
			name = fmt.Sprintf("rule%d", i)
		}
		in.counts[i].Rule = name
	}
	return in
}

// Seed returns the injector's seed.
func (in *Injector) Seed() int64 { return in.seed }

// SetFlight installs a black-box recorder that gets one event per rule
// hit — drop, duplication, or delay — with the rule's name (nil clears).
// No-op on a nil injector.
func (in *Injector) SetFlight(f *obs.FlightRecorder) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.fl = f
	in.mu.Unlock()
}

// Decide evaluates the plan against p at elapsed time now and returns the
// combined decision. Rules apply in plan order; once a rule drops the
// packet, later rules are skipped.
func (in *Injector) Decide(now time.Duration, p Packet) Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	var d Decision
	for i := range in.rules {
		r := &in.rules[i]
		if !r.matches(now, p) {
			continue
		}
		c := &in.counts[i]
		c.Matched++
		prevDelay, prevExtra := d.Delay, len(d.Extra)
		d = r.Model.Apply(in.rngs[i], p, d)
		if d.Drop {
			c.Dropped++
			d.Delay, d.Extra = 0, nil
			in.recordHit(c.Rule, "drop", p)
			break
		}
		if n := len(d.Extra) - prevExtra; n > 0 {
			c.Duplicated += uint64(n)
			in.recordHit(c.Rule, "dup", p)
		}
		if d.Delay > prevDelay {
			c.Delayed++
			in.recordHit(c.Rule, "delay", p)
		}
	}
	return d
}

// recordHit notes one fault-injection action in the flight recorder.
// Called with in.mu held.
func (in *Injector) recordHit(rule, effect string, p Packet) {
	if in.fl == nil {
		return
	}
	note := rule + ":" + effect
	if p.Token {
		note += ":token"
	}
	in.fl.Record(obs.FlightEvent{Kind: obs.FlightFault, Note: note, Seq: uint64(p.From), Aru: uint64(p.To)})
}

// DecideWall is Decide with elapsed wall-clock time since New, for
// real-time packet paths.
func (in *Injector) DecideWall(p Packet) Decision {
	return in.Decide(time.Since(in.wallStart), p)
}

// RestartClock resets the wall clock rule windows are measured against,
// e.g. after a setup phase that should not consume the windows.
func (in *Injector) RestartClock() {
	in.mu.Lock()
	in.wallStart = time.Now()
	in.mu.Unlock()
}

// Counters returns a snapshot of the per-rule activity counters.
func (in *Injector) Counters() []stats.FaultCounter {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]stats.FaultCounter(nil), in.counts...)
}

// PublishTo exposes the injector's per-rule counters in reg under
// "faults.rules": a live snapshot taken on every registry read, so
// /debug/vars always shows current values. No-op when either side is nil.
func (in *Injector) PublishTo(reg *obs.Registry) {
	if in == nil || reg == nil {
		return
	}
	reg.Publish("faults.rules", func() any {
		rows := in.Counters()
		out := make([]map[string]any, len(rows))
		for i, r := range rows {
			out[i] = map[string]any{
				"rule":       r.Rule,
				"matched":    r.Matched,
				"dropped":    r.Dropped,
				"duplicated": r.Duplicated,
				"delayed":    r.Delayed,
			}
		}
		return out
	})
}
