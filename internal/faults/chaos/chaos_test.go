package chaos

import (
	"fmt"
	"reflect"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/faults"
)

// TestChaosRandomPlans runs the full chaos harness over ≥ 20 seeds: each
// seed derives a 4–6 daemon cluster, a randomized fault plan (i.i.d. and
// bursty loss, duplication, delay/reorder, partitions) and a
// kill/restart schedule, then checks the four EVS invariants. A failure
// prints the seed; FAULTS_SEED=<seed> replays it deterministically.
func TestChaosRandomPlans(t *testing.T) {
	defaults := make([]int64, 24)
	for i := range defaults {
		defaults[i] = int64(i + 1)
	}
	seeds := faults.Seeds(defaults...)
	if testing.Short() && len(seeds) > 4 {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res := Run(Options{Seed: faults.ReplaySeed(t, seed)})
			t.Logf("nodes=%d steps=%d submitted=%d delivered=%d configs=%d",
				res.Nodes, res.Steps, res.Submitted, res.Delivered, res.Configs)
			for _, v := range res.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			if t.Failed() {
				t.Fatalf("seed %d violated EVS invariants; replay with %s=%d",
					seed, faults.SeedEnv, seed)
			}
			if res.Nodes < 4 {
				t.Fatalf("cluster too small: %d nodes", res.Nodes)
			}
		})
	}
}

// TestChaosDeterministicReplay: a run is a pure function of its seed —
// replaying must reproduce the identical result, counters included.
func TestChaosDeterministicReplay(t *testing.T) {
	a := Run(Options{Seed: 11})
	b := Run(Options{Seed: 11})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.Delivered == 0 {
		t.Fatal("run delivered nothing; harness is not exercising the cluster")
	}
}

// TestChaosExercisesFaults: across the default seeds, the injector must
// actually drop, duplicate, and delay traffic — otherwise the harness is
// vacuous.
func TestChaosExercisesFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate fault-activity check needs the full seed set")
	}
	var dropped, duplicated, delayed, killed uint64
	for seed := int64(1); seed <= 10; seed++ {
		res := Run(Options{Seed: seed})
		for _, c := range res.Faults {
			dropped += c.Dropped
			duplicated += c.Duplicated
			delayed += c.Delayed
		}
		_ = killed
	}
	if dropped == 0 || duplicated == 0 || delayed == 0 {
		t.Fatalf("fault plans too tame: dropped=%d duplicated=%d delayed=%d",
			dropped, duplicated, delayed)
	}
}

// ---- forged-log tests: every invariant checker must detect a violation
// planted in a synthetic delivery log.

func cfg(rep evs.ProcID, seq uint64) evs.ViewID { return evs.ViewID{Rep: rep, Seq: seq} }

func regular(id evs.ViewID, members ...evs.ProcID) evs.ConfigChange {
	return evs.ConfigChange{Config: evs.Configuration{ID: id, Members: members}}
}

func transitional(id evs.ViewID, members ...evs.ProcID) evs.ConfigChange {
	return evs.ConfigChange{Config: evs.Configuration{ID: id, Members: members}, Transitional: true}
}

func msg(c evs.ViewID, seq uint64, sender evs.ProcID, svc evs.Service, payload string) evs.Message {
	return evs.Message{Seq: seq, Sender: sender, Service: svc, Config: c, Payload: []byte(payload)}
}

func violationsOf(kind string, vs []Violation) int {
	n := 0
	for _, v := range vs {
		if v.Invariant == kind {
			n++
		}
	}
	return n
}

func TestCheckersDetectPlantedViolations(t *testing.T) {
	c1 := cfg(1, 1)

	t.Run("total-order-slot-conflict", func(t *testing.T) {
		// Both members fill slot (c1, seq 2), with different messages.
		a := &memberLog{id: 1, events: []evs.Event{
			regular(c1, 1, 2),
			msg(c1, 1, 1, evs.Agreed, "x"),
			msg(c1, 2, 2, evs.Agreed, "y"),
		}}
		b := &memberLog{id: 2, events: []evs.Event{
			regular(c1, 1, 2),
			msg(c1, 1, 1, evs.Agreed, "x"),
			msg(c1, 2, 2, evs.Agreed, "DIFFERENT"),
		}}
		if violationsOf("total-order", checkInvariants([]*memberLog{a, b})) == 0 {
			t.Fatal("slot conflict not detected")
		}
	})

	t.Run("total-order-relative-order", func(t *testing.T) {
		// The two members deliver x and y in opposite orders, in different
		// configurations and slots — only the cross-log order check sees it.
		c2 := cfg(2, 1)
		a := &memberLog{id: 1, events: []evs.Event{
			regular(c1, 1, 2),
			msg(c1, 1, 1, evs.Agreed, "x"),
			msg(c1, 2, 2, evs.Agreed, "y"),
		}}
		b := &memberLog{id: 2, events: []evs.Event{
			regular(c2, 1, 2),
			msg(c2, 1, 2, evs.Agreed, "y"),
			msg(c2, 2, 1, evs.Agreed, "x"),
		}}
		if violationsOf("total-order", checkInvariants([]*memberLog{a, b})) == 0 {
			t.Fatal("opposite relative orders not detected")
		}
	})

	t.Run("total-order-duplicate", func(t *testing.T) {
		// One member delivers the same message twice across two
		// configurations — per-config seq checks can't see it.
		c2 := cfg(2, 1)
		a := &memberLog{id: 1, events: []evs.Event{
			regular(c1, 1, 2),
			msg(c1, 1, 1, evs.Agreed, "x"),
			regular(c2, 1, 2),
			msg(c2, 1, 1, evs.Agreed, "x"),
		}}
		if violationsOf("total-order", checkInvariants([]*memberLog{a})) == 0 {
			t.Fatal("cross-config duplicate delivery not detected")
		}
	})

	t.Run("seq-regression", func(t *testing.T) {
		a := &memberLog{id: 1, events: []evs.Event{
			regular(c1, 1),
			msg(c1, 5, 1, evs.Agreed, "x"),
			msg(c1, 5, 1, evs.Agreed, "x"),
		}}
		if violationsOf("seq-regression", checkInvariants([]*memberLog{a})) == 0 {
			t.Fatal("duplicate delivery not detected")
		}
		b := &memberLog{id: 1, events: []evs.Event{
			regular(c1, 1),
			msg(c1, 5, 1, evs.Agreed, "x"),
			msg(c1, 3, 1, evs.Agreed, "y"),
		}}
		if violationsOf("seq-regression", checkInvariants([]*memberLog{b})) == 0 {
			t.Fatal("sequence regression not detected")
		}
	})

	t.Run("virtual-synchrony-membership", func(t *testing.T) {
		a := &memberLog{id: 1, events: []evs.Event{regular(c1, 1, 2)}}
		b := &memberLog{id: 2, events: []evs.Event{regular(c1, 1, 2, 3)}}
		if violationsOf("virtual-synchrony", checkInvariants([]*memberLog{a, b})) == 0 {
			t.Fatal("membership disagreement not detected")
		}
	})

	t.Run("virtual-synchrony-transition", func(t *testing.T) {
		c2 := cfg(1, 2)
		// Both members move c1 -> c2 together, but b missed message 2 in
		// c1. Prefix-consistent, yet virtual synchrony is violated.
		a := &memberLog{id: 1, events: []evs.Event{
			regular(c1, 1, 2),
			msg(c1, 1, 1, evs.Agreed, "x"),
			msg(c1, 2, 2, evs.Agreed, "y"),
			regular(c2, 1, 2),
		}}
		b := &memberLog{id: 2, events: []evs.Event{
			regular(c1, 1, 2),
			msg(c1, 1, 1, evs.Agreed, "x"),
			regular(c2, 1, 2),
		}}
		if violationsOf("virtual-synchrony", checkInvariants([]*memberLog{a, b})) == 0 {
			t.Fatal("transition message-set disagreement not detected")
		}
	})

	t.Run("safe-stability", func(t *testing.T) {
		// Member 1 delivers a Safe message in the regular part of c1;
		// member 2 installed c1, never crashed, never delivers it.
		a := &memberLog{id: 1, events: []evs.Event{
			regular(c1, 1, 2),
			msg(c1, 1, 1, evs.Safe, "s"),
		}}
		b := &memberLog{id: 2, events: []evs.Event{
			regular(c1, 1, 2),
		}}
		if violationsOf("safe-stability", checkInvariants([]*memberLog{a, b})) == 0 {
			t.Fatal("missing safe delivery not detected")
		}
		// A crashed member is exempt.
		b.crashed = true
		if violationsOf("safe-stability", checkInvariants([]*memberLog{a, b})) != 0 {
			t.Fatal("crashed member wrongly held to safe-stability")
		}
		// A Safe message delivered only after the transitional (EVS tail)
		// carries no all-members guarantee.
		aTail := &memberLog{id: 1, events: []evs.Event{
			regular(c1, 1, 2),
			transitional(cfg(1, 2), 1),
			msg(c1, 1, 1, evs.Safe, "s"),
		}}
		bAlive := &memberLog{id: 2, events: []evs.Event{regular(c1, 1, 2)}}
		if violationsOf("safe-stability", checkInvariants([]*memberLog{aTail, bAlive})) != 0 {
			t.Fatal("tail-delivered safe message wrongly required everywhere")
		}
	})
}
