package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestForcedViolationDumpsFlights exercises the violation → black-box
// path end to end: a forced violation must produce per-incarnation (and
// network) JSONL dumps of real recorded protocol events.
func TestForcedViolationDumpsFlights(t *testing.T) {
	dir := t.TempDir()
	res := Run(Options{Seed: 11, ForceViolation: true, FlightDir: dir})

	forced := false
	for _, v := range res.Violations {
		if v.Invariant == "forced" {
			forced = true
		}
	}
	if !forced {
		t.Fatalf("forced violation missing: %+v", res.Violations)
	}

	files, err := filepath.Glob(filepath.Join(dir, "chaos-flight-seed11-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 { // at least one incarnation plus the injector
		t.Fatalf("got %d dump files, want >= 2: %v", len(files), files)
	}
	sawNet, sawNode := false, false
	for _, f := range files {
		if strings.HasSuffix(f, "-net.jsonl") {
			sawNet = true
		}
		if strings.Contains(filepath.Base(f), "-node") {
			sawNode = true
		}
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		lines := 0
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			var m map[string]any
			if err := json.Unmarshal([]byte(line), &m); err != nil {
				t.Fatalf("%s: bad JSONL line %q: %v", f, line, err)
			}
			if _, ok := m["kind"]; !ok {
				t.Fatalf("%s: event without kind: %q", f, line)
			}
			lines++
		}
		if lines == 0 {
			t.Fatalf("%s: empty dump (recorders with no events must be skipped)", f)
		}
	}
	if !sawNet || !sawNode {
		t.Fatalf("dumps missing a category: net=%v node=%v (%v)", sawNet, sawNode, files)
	}
}

// TestFlightDumpIsPureSideEffect pins that flight recording and dumping
// never perturb the deterministic Result: the same seed with and without
// the dump machinery must replay identically (modulo the planted
// violation itself).
func TestFlightDumpIsPureSideEffect(t *testing.T) {
	plain := Run(Options{Seed: 23})
	dumped := Run(Options{Seed: 23, ForceViolation: true, FlightDir: t.TempDir()})

	var rest []Violation
	for _, v := range dumped.Violations {
		if v.Invariant != "forced" {
			rest = append(rest, v)
		}
	}
	dumped.Violations = rest
	if !reflect.DeepEqual(plain, dumped) {
		t.Fatalf("flight machinery changed the run:\nplain:  %+v\ndumped: %+v", plain, dumped)
	}
}

// TestNoViolationNoDump: a clean run must leave the dump directory empty.
func TestNoViolationNoDump(t *testing.T) {
	dir := t.TempDir()
	res := Run(Options{Seed: 23, FlightDir: dir})
	if len(res.Violations) != 0 {
		t.Skipf("seed 23 not clean on this build: %+v", res.Violations)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(files) != 0 {
		t.Fatalf("clean run wrote dumps: %v", files)
	}
}
