package chaos

import (
	"fmt"
	"sort"
	"strings"

	"accelring/internal/evs"
)

// checkInvariants runs the four EVS delivery invariants over the
// collected per-incarnation logs.
func checkInvariants(logs []*memberLog) []Violation {
	var out []Violation
	out = append(out, checkSeqRegression(logs)...)
	out = append(out, checkTotalOrder(logs)...)
	out = append(out, checkVirtualSynchrony(logs)...)
	out = append(out, checkSafeStability(logs)...)
	return out
}

// msgKey renders one delivery for comparison across members.
func msgKey(m evs.Message) string {
	return fmt.Sprintf("%d:%d:%s", m.Seq, m.Sender, m.Payload)
}

// deliveriesByConfig groups a log's messages by the regular configuration
// they were ordered in, preserving delivery order.
func deliveriesByConfig(log *memberLog) map[evs.ViewID][]string {
	segs := make(map[evs.ViewID][]string)
	for _, ev := range log.events {
		if m, ok := ev.(evs.Message); ok {
			segs[m.Config] = append(segs[m.Config], msgKey(m))
		}
	}
	return segs
}

// checkSeqRegression: within each configuration, a member's delivered
// sequence numbers must be strictly increasing — no regression, no
// duplicate delivery.
func checkSeqRegression(logs []*memberLog) []Violation {
	var out []Violation
	for _, log := range logs {
		last := make(map[evs.ViewID]uint64)
		for _, ev := range log.events {
			m, ok := ev.(evs.Message)
			if !ok {
				continue
			}
			if prev, seen := last[m.Config]; seen && m.Seq <= prev {
				out = append(out, Violation{"seq-regression", fmt.Sprintf(
					"member %s delivered seq %d after %d in config %v",
					log.name(), m.Seq, prev, m.Config)})
			}
			last[m.Config] = m.Seq
		}
	}
	return out
}

// checkTotalOrder: agreed delivery produces one total order. Three
// consequences are checkable from the outside without protocol internals:
// (a) a slot (config, seq) holds the same message at every member that
// fills it — the token assigns each sequence number exactly once per ring;
// (b) no member delivers the same message twice within one incarnation —
// membership changes re-multicast old-ring messages under new sequence
// numbers, and survivors that already delivered them must suppress the
// duplicates; (c) any two members deliver the messages they have in
// common in the same relative order across their entire logs. Per-config
// prefix identity is deliberately NOT required: a survivor legitimately
// skips the new-ring slots of re-multicast messages it already delivered
// on the old ring, while a merging member delivers them in the new
// configuration.
func checkTotalOrder(logs []*memberLog) []Violation {
	var out []Violation
	slot := make(map[string]string)
	slotBy := make(map[string]string)
	seqs := make([][]string, len(logs))
	for i, log := range logs {
		seen := make(map[string]bool)
		for _, ev := range log.events {
			m, ok := ev.(evs.Message)
			if !ok {
				continue
			}
			id := fmt.Sprintf("%d:%s", m.Sender, m.Payload)
			sl := fmt.Sprintf("%v/%d", m.Config, m.Seq)
			if prev, taken := slot[sl]; !taken {
				slot[sl] = id
				slotBy[sl] = log.name()
			} else if prev != id {
				out = append(out, Violation{"total-order", fmt.Sprintf(
					"config %v seq %d is %q at %s but %q at %s",
					m.Config, m.Seq, prev, slotBy[sl], id, log.name())})
			}
			if seen[id] {
				out = append(out, Violation{"total-order", fmt.Sprintf(
					"member %s delivered %q twice", log.name(), id)})
				continue
			}
			seen[id] = true
			seqs[i] = append(seqs[i], id)
		}
	}
	for i := range logs {
		for j := i + 1; j < len(logs); j++ {
			pos := make(map[string]int, len(seqs[j]))
			for x, k := range seqs[j] {
				pos[k] = x
			}
			last, lastKey := -1, ""
			for _, k := range seqs[i] {
				x, both := pos[k]
				if !both {
					continue
				}
				if x < last {
					out = append(out, Violation{"total-order", fmt.Sprintf(
						"members %s and %s deliver %q and %q in opposite orders",
						logs[i].name(), logs[j].name(), lastKey, k)})
					break
				}
				last, lastKey = x, k
			}
		}
	}
	return out
}

// sortedMembers renders a configuration's member set canonically.
func sortedMembers(ms []evs.ProcID) string {
	cp := append([]evs.ProcID(nil), ms...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return fmt.Sprint(cp)
}

// transitionsOf walks a log and yields one entry per installed regular
// configuration change C -> D, keyed by the transitional configuration
// delivered between them. The transitional configuration identifies the
// set of processes that came through the change together — two members
// moving C -> D through DIFFERENT transitionals did not, and owe each
// other no common message set.
func transitionsOf(log *memberLog) []string {
	var keys []string
	var lastReg evs.ViewID
	haveReg := false
	tran := ""
	for _, ev := range log.events {
		cc, ok := ev.(evs.ConfigChange)
		if !ok {
			continue
		}
		if cc.Transitional {
			tran = fmt.Sprintf("%v%s", cc.Config.ID, sortedMembers(cc.Config.Members))
			continue
		}
		if haveReg {
			keys = append(keys, fmt.Sprintf("%v|%s|%v", lastReg, tran, cc.Config.ID))
		}
		lastReg, haveReg, tran = cc.Config.ID, true, ""
	}
	return keys
}

// checkVirtualSynchrony: members agree on every configuration's member
// set, and two members that transition between the same pair of regular
// configurations THROUGH THE SAME transitional configuration delivered
// exactly the same messages in the old one — they came through the change
// together, so their views of it must be identical, not merely
// prefix-consistent.
func checkVirtualSynchrony(logs []*memberLog) []Violation {
	var out []Violation
	memberSet := make(map[evs.ViewID]string)
	memberSetBy := make(map[evs.ViewID]string)
	full := make(map[string]string)
	fullBy := make(map[string]string)

	for _, log := range logs {
		segs := deliveriesByConfig(log)
		for _, ev := range log.events {
			cc, ok := ev.(evs.ConfigChange)
			if !ok || cc.Transitional {
				continue
			}
			cfg := cc.Config.ID
			repr := sortedMembers(cc.Config.Members)
			if prev, seen := memberSet[cfg]; !seen {
				memberSet[cfg] = repr
				memberSetBy[cfg] = log.name()
			} else if prev != repr {
				out = append(out, Violation{"virtual-synchrony", fmt.Sprintf(
					"config %v has members %s at %s but %s at %s",
					cfg, prev, memberSetBy[cfg], repr, log.name())})
			}
		}
		for _, tr := range transitionsOf(log) {
			from := tr[:strings.Index(tr, "|")]
			repr := ""
			for cfg, seg := range segs {
				if fmt.Sprint(cfg) == from {
					repr = fmt.Sprint(seg)
				}
			}
			if prev, seen := full[tr]; !seen {
				full[tr] = repr
				fullBy[tr] = log.name()
			} else if prev != repr {
				out = append(out, Violation{"virtual-synchrony", fmt.Sprintf(
					"members %s and %s came through transition %s together but delivered different messages in the old config: %s vs %s",
					fullBy[tr], log.name(), tr, prev, repr)})
			}
		}
	}
	return out
}

// checkSafeStability: a Safe message delivered in a REGULAR configuration
// (before the configuration's transitional marker) certifies that every
// member of the configuration received it — so every non-crashed member
// that installed the configuration must deliver it (in the regular part
// or the EVS tail) before the run ends.
func checkSafeStability(logs []*memberLog) []Violation {
	var out []Violation

	// safeRegular[(cfg, seq)] = first member that delivered it safely in
	// the regular part.
	type key struct {
		cfg evs.ViewID
		seq uint64
	}
	safeRegular := make(map[key]string)
	var safeOrder []key
	delivered := make([]map[key]bool, len(logs))
	installedAt := make([]map[evs.ViewID]bool, len(logs))

	for i, log := range logs {
		delivered[i] = make(map[key]bool)
		installedAt[i] = make(map[evs.ViewID]bool)
		var current evs.ViewID
		pastTransitional := make(map[evs.ViewID]bool)
		for _, ev := range log.events {
			switch e := ev.(type) {
			case evs.ConfigChange:
				if e.Transitional {
					// closes the regular part of the configuration being
					// left.
					pastTransitional[current] = true
				} else {
					current = e.Config.ID
					installedAt[i][current] = true
				}
			case evs.Message:
				k := key{e.Config, e.Seq}
				delivered[i][k] = true
				if e.Service == evs.Safe && !pastTransitional[e.Config] {
					if _, seen := safeRegular[k]; !seen {
						safeRegular[k] = log.name()
						safeOrder = append(safeOrder, k)
					}
				}
			}
		}
	}

	for _, k := range safeOrder {
		for i, log := range logs {
			if log.crashed || !installedAt[i][k.cfg] || delivered[i][k] {
				continue
			}
			out = append(out, Violation{"safe-stability", fmt.Sprintf(
				"safe message (config %v, seq %d) delivered in the regular configuration by %s but never by live member %s of that configuration",
				k.cfg, k.seq, safeRegular[k], log.name())})
		}
	}
	return out
}
