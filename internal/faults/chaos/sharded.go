package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/group"
)

// ShardedOptions parameterizes a sharded chaos run: one independent
// harness cluster per ring, groups partitioned across rings by the
// production routing hash (group.RingOf), and a shared seeded schedule
// that kills, partitions, and floods the rings independently. Zero
// fields derive from the seed.
type ShardedOptions struct {
	// Seed determines everything about the run.
	Seed int64
	// Shards is the ring count (default 2).
	Shards int
	// Nodes is the per-ring cluster size (default: 4–6, seed-chosen).
	Nodes int
	// Steps is the number of fault-schedule steps (default: 10–17,
	// seed-chosen).
	Steps int
	// Groups is the number of client groups spread across the rings
	// (default: 3–5, seed-chosen).
	Groups int
}

// ShardedResult summarizes one sharded chaos run. Two runs with equal
// Options are identical, including the Result.
type ShardedResult struct {
	Seed                 int64
	Shards, Nodes, Steps int
	Groups               []string
	// PerRing holds each ring's own Result (per-ring EVS invariants
	// included, with ring-derived seeds).
	PerRing []*Result
	// Submitted and Delivered aggregate over the rings.
	Submitted, Delivered int
	// Violations flattens every breach: each ring's EVS violations
	// (prefixed with its ring index) plus the sharding-level checks —
	// per-group total order across receivers and group/ring isolation.
	Violations []Violation
}

// ringSeed derives ring r's private seed from the master seed, so every
// ring gets an independent but replay-stable fault stream.
func ringSeed(seed int64, r int) int64 {
	return seed*1_000_003 + int64(r+1)*7919
}

// submitTagged submits a payload tagged with its group name, so the
// sharding-level checks can recover per-group delivery streams from the
// raw logs. Payload uniqueness within a ring comes from the per-harness
// submission counter.
func (h *harness) submitTagged(id evs.ProcID, svc evs.Service, tag string) {
	m := h.machines[id]
	if m == nil {
		return
	}
	payload := fmt.Sprintf("%s/m-%d-%d", tag, id, h.submitted+1)
	if m.Submit([]byte(payload), svc) == nil {
		h.submitted++
	}
}

// payloadGroup extracts the group tag of a tagged payload ("" if the
// payload is untagged).
func payloadGroup(p []byte) string {
	if i := strings.IndexByte(string(p), '/'); i > 0 {
		return string(p[:i])
	}
	return ""
}

// RunSharded executes one sharded chaos run: Shards independent ring
// clusters under independent seeded fault plans and a shared step
// schedule, with all client traffic routed to each group's owning ring.
// It is deterministic: equal Options produce equal Results.
func RunSharded(opts ShardedOptions) *ShardedResult {
	rng := rand.New(rand.NewSource(opts.Seed))
	shards := opts.Shards
	if shards == 0 {
		shards = 2
	}
	n := opts.Nodes
	if n == 0 {
		n = 4 + rng.Intn(3)
	}
	steps := opts.Steps
	if steps == 0 {
		steps = 10 + rng.Intn(8)
	}
	ngroups := opts.Groups
	if ngroups == 0 {
		ngroups = 3 + rng.Intn(3)
	}
	res := &ShardedResult{Seed: opts.Seed, Shards: shards, Nodes: n, Steps: steps}
	for g := 0; g < ngroups; g++ {
		res.Groups = append(res.Groups, fmt.Sprintf("g-%d", g))
	}

	// One harness per ring, each with its own rng stream: the rings'
	// protocols never interact, so their randomness must not either.
	hs := make([]*harness, shards)
	for r := range hs {
		hs[r] = newHarness(rand.New(rand.NewSource(ringSeed(opts.Seed, r))), n)
		res.PerRing = append(res.PerRing, &Result{Seed: ringSeed(opts.Seed, r), Nodes: n, Steps: steps})
	}

	ringViolation := func(r int, v Violation) {
		res.PerRing[r].Violations = append(res.PerRing[r].Violations, v)
		res.Violations = append(res.Violations, Violation{
			Invariant: v.Invariant,
			Detail:    fmt.Sprintf("ring %d: %s", r, v.Detail),
		})
	}

	// Phase 1: fault-free formation of every ring.
	formed := true
	for r, h := range hs {
		if !h.waitConverged(10 * time.Second) {
			ringViolation(r, Violation{"formation", "initial ring did not form"})
			formed = false
		}
	}
	if !formed {
		return finishSharded(res, hs)
	}

	// Phase 2: the shared fault schedule. Each ring gets its own plan and
	// injector over the whole phase; the master rng deals out kills,
	// splits, heals, and group traffic ring by ring, so rings see
	// *different* fault histories — exactly what independent instances
	// must tolerate.
	durs := make([]time.Duration, steps)
	var total time.Duration
	for i := range durs {
		durs[i] = time.Duration(50+rng.Intn(300)) * time.Millisecond
		total += durs[i]
	}
	for r, h := range hs {
		h.inj = faults.New(ringSeed(opts.Seed, r), randomPlan(h.rng, n, total, h.part))
		h.faultStart = h.now
		h.faultsOn = true
	}

	for s := 0; s < steps; s++ {
		h := hs[rng.Intn(shards)]
		switch rng.Intn(8) {
		case 0: // kill one process on one ring
			if live := h.liveIDs(); len(live) > 3 {
				h.kill(live[rng.Intn(len(live))])
			}
		case 1: // restart a killed process on one ring
			var dead []evs.ProcID
			for _, id := range h.ids {
				if h.machines[id] == nil {
					dead = append(dead, id)
				}
			}
			if len(dead) > 0 {
				h.restart(dead[rng.Intn(len(dead))])
			}
		case 2: // split one ring into two sides
			sides := make(map[evs.ProcID]int, len(h.ids))
			for _, id := range h.ids {
				sides[id] = rng.Intn(2)
			}
			h.part.Split(sides)
		case 3: // heal one ring's partition
			h.part.Heal()
		default: // traffic burst: group-routed, mixed Agreed/Safe
			for i := 0; i < 1+rng.Intn(4); i++ {
				svc := evs.Agreed
				if rng.Intn(2) == 0 {
					svc = evs.Safe
				}
				g := res.Groups[rng.Intn(len(res.Groups))]
				owner := hs[group.RingOf(g, shards)]
				owner.submitTagged(owner.ids[rng.Intn(n)], svc, g)
			}
		}
		for _, h := range hs {
			h.advance(durs[s])
		}
	}

	// Phase 3: stop all faults, converge every ring, flush, check.
	for r, h := range hs {
		h.faultsOn = false
		h.part.Heal()
		if !h.waitConverged(20 * time.Second) {
			detail := "live machines did not converge after heal:"
			for _, id := range h.liveIDs() {
				m := h.machines[id]
				detail += fmt.Sprintf(" %d=%v/%v", id, m.State(), m.Ring().ID)
			}
			ringViolation(r, Violation{"convergence", detail})
			continue
		}
		h.advance(2 * time.Second)
		for _, v := range checkInvariants(h.logs) {
			ringViolation(r, v)
		}
	}

	// Sharding-level checks on the raw logs.
	for _, v := range checkGroupIsolation(hs, shards) {
		res.Violations = append(res.Violations, v)
	}
	for _, g := range res.Groups {
		owner := group.RingOf(g, shards)
		for _, v := range checkGroupOrder(g, hs[owner].logs) {
			res.Violations = append(res.Violations, v)
		}
	}
	return finishSharded(res, hs)
}

func finishSharded(res *ShardedResult, hs []*harness) *ShardedResult {
	for r, h := range hs {
		finish(res.PerRing[r], h)
		res.Submitted += res.PerRing[r].Submitted
		res.Delivered += res.PerRing[r].Delivered
	}
	return res
}

// checkGroupIsolation verifies the routing discipline the sharding layer
// guarantees: a group's messages only ever appear in its owning ring's
// delivery logs.
func checkGroupIsolation(hs []*harness, shards int) []Violation {
	var out []Violation
	for r, h := range hs {
		for _, log := range h.logs {
			for _, ev := range log.events {
				m, ok := ev.(evs.Message)
				if !ok {
					continue
				}
				g := payloadGroup(m.Payload)
				if g == "" {
					continue
				}
				if owner := group.RingOf(g, shards); owner != r {
					out = append(out, Violation{
						Invariant: "group-isolation",
						Detail: fmt.Sprintf("member %s on ring %d delivered %q of group %q owned by ring %d",
							log.name(), r, m.Payload, g, owner),
					})
				}
			}
		}
	}
	return out
}

// checkGroupOrder verifies per-group total order across receivers: every
// pair of member incarnations delivers the messages of the group they
// have in common in the same relative order. (The per-ring total-order
// invariant implies this; checking it directly pins the tentpole
// guarantee — identical per-group delivery order at every receiver —
// against the sharding layer's own bookkeeping.)
func checkGroupOrder(g string, logs []*memberLog) []Violation {
	streams := make([][]string, len(logs))
	for i, log := range logs {
		for _, ev := range log.events {
			if m, ok := ev.(evs.Message); ok && payloadGroup(m.Payload) == g {
				streams[i] = append(streams[i], string(m.Payload))
			}
		}
	}
	var out []Violation
	for i := range logs {
		for j := i + 1; j < len(logs); j++ {
			pos := make(map[string]int, len(streams[j]))
			for k, p := range streams[j] {
				pos[p] = k
			}
			last := -1
			lastPayload := ""
			for _, p := range streams[i] {
				k, shared := pos[p]
				if !shared {
					continue
				}
				if k <= last {
					out = append(out, Violation{
						Invariant: "group-order",
						Detail: fmt.Sprintf("group %q: members %s and %s deliver %q and %q in opposite orders",
							g, logs[i].name(), logs[j].name(), lastPayload, p),
					})
					break
				}
				last, lastPayload = k, p
			}
		}
	}
	return out
}
