package chaos

// Kill-and-reconnect chaos sweep over real daemons and TCP clients: each
// seed derives per-receiver connection-kill points; the client library's
// reconnect-with-resume must deliver every message exactly once, in the
// same total order, at every receiver. A second test injects forged
// (bad-HMAC) wire and session frames into a keyed cluster and checks
// they are counted and dropped without perturbing ordering.

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"accelring/internal/client"
	"accelring/internal/daemon"
	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
	"accelring/internal/session"
	"accelring/internal/transport"
	"accelring/internal/wire"
)

func reconnectTimeouts() membership.Timeouts {
	return membership.Timeouts{
		JoinInterval:    5 * time.Millisecond,
		Gather:          25 * time.Millisecond,
		Commit:          50 * time.Millisecond,
		TokenLoss:       100 * time.Millisecond,
		TokenRetransmit: 30 * time.Millisecond,
	}
}

// startCluster boots n daemons on one in-process hub. With key set, both
// the ring wire frames and the client session frames are authenticated.
func startCluster(t *testing.T, n int, key []byte) ([]*daemon.Daemon, []*obs.Registry, *transport.Hub) {
	t.Helper()
	hub := transport.NewHub()
	daemons := make([]*daemon.Daemon, n)
	regs := make([]*obs.Registry, n)
	for i := 0; i < n; i++ {
		id := evs.ProcID(i + 1)
		ep, err := hub.Endpoint(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		regs[i] = obs.NewRegistry()
		var tr transport.Transport = ep
		if len(key) != 0 {
			tr = transport.WithAuth(ep, wire.DeriveKey(key, "ring0"), regs[i], nil)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ringCfg := ringnode.Accelerated(id, tr, 10, 100, 7)
		ringCfg.Timeouts = reconnectTimeouts()
		d, err := daemon.Start(daemon.Config{
			Ring:     ringCfg,
			Listener: ln,
			Obs:      regs[i],
			Key:      key,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Stop)
		daemons[i] = d
	}
	for i, d := range daemons {
		if !d.WaitOperational(10 * time.Second) {
			t.Fatalf("daemon %d did not become operational", i)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(daemons[0].Node().Status().Ring.Members) == n {
			ok := true
			for _, d := range daemons[1:] {
				if !d.Node().Status().Ring.Equal(daemons[0].Node().Status().Ring) {
					ok = false
				}
			}
			if ok {
				return daemons, regs, hub
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemons did not converge on one ring")
	return nil, nil, nil
}

// killableConn tracks a client's live connection so the sweep can sever
// it at seeded points.
type killableConn struct {
	mu  sync.Mutex
	cur net.Conn
}

func (k *killableConn) dial(network, addr string) (net.Conn, error) {
	c, err := net.Dial(network, addr)
	if err == nil {
		k.mu.Lock()
		k.cur = c
		k.mu.Unlock()
	}
	return c, err
}

func (k *killableConn) kill() {
	k.mu.Lock()
	if k.cur != nil {
		k.cur.Close()
	}
	k.mu.Unlock()
}

// receiverRun is one receiver's transcript from a sweep run.
type receiverRun struct {
	payloads  []string
	resumes   int
	fresh     int // reconnects that lost the session (must stay 0)
	killsLeft []int
}

// TestReconnectResumeSweep: 24 seeds; each derives kill points for three
// receivers whose TCP connections are severed mid-stream while a fourth
// client multicasts. Reconnect-with-resume must leave every receiver
// with all messages, exactly once, in one total order.
func TestReconnectResumeSweep(t *testing.T) {
	defaults := make([]int64, 24)
	for i := range defaults {
		defaults[i] = int64(i + 1)
	}
	seeds := faults.Seeds(defaults...)
	if testing.Short() && len(seeds) > 4 {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runReconnectSeed(t, faults.ReplaySeed(t, seed))
		})
	}
}

func runReconnectSeed(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const (
		nDaemons  = 2
		nReceiver = 3
		total     = 60
	)
	daemons, regs, _ := startCluster(t, nDaemons, nil)

	sender, err := client.Dial("tcp", daemons[0].Addr().String(), "sender")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sender.Close() })

	recvs := make([]*client.Client, nReceiver)
	runs := make([]*receiverRun, nReceiver)
	killers := make([]*killableConn, nReceiver)
	for i := range recvs {
		killers[i] = &killableConn{}
		recvs[i], err = client.DialWith(client.Config{
			Network:   "tcp",
			Addr:      daemons[(i+1)%nDaemons].Addr().String(),
			Name:      fmt.Sprintf("recv%d", i),
			Reconnect: true,
			AckEvery:  1 + rng.Intn(8),
			Dialer:    killers[i].dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		c := recvs[i]
		t.Cleanup(func() { c.Close() })
		// One or two seeded kill points, as delivered-count thresholds.
		kills := []int{5 + rng.Intn(total-10)}
		if rng.Intn(2) == 1 {
			kills = append(kills, 5+rng.Intn(total-10))
		}
		sort.Ints(kills)
		runs[i] = &receiverRun{killsLeft: kills}
	}

	// All receivers join and agree on the three-member view before any
	// message is sent, so every message is owed to every receiver.
	for _, c := range recvs {
		if err := c.Join("sweep"); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range recvs {
		waitMembers(t, c, "sweep", nReceiver)
	}

	for j := 0; j < total; j++ {
		if err := sender.Multicast(evs.Agreed, []byte(fmt.Sprintf("m%03d", j)), "sweep"); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, nReceiver)
	for i := range recvs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, run, killer := recvs[i], runs[i], killers[i]
			deadline := time.After(30 * time.Second)
			for len(run.payloads) < total {
				select {
				case ev, ok := <-c.Events():
					if !ok {
						errs <- fmt.Errorf("recv%d: stream closed after %d deliveries: %v",
							i, len(run.payloads), c.Err())
						return
					}
					switch v := ev.(type) {
					case *client.Message:
						run.payloads = append(run.payloads, string(v.Payload))
						if len(run.killsLeft) > 0 && len(run.payloads) >= run.killsLeft[0] {
							run.killsLeft = run.killsLeft[1:]
							killer.kill()
						}
					case *client.Reconnected:
						if v.Resumed {
							run.resumes++
						} else {
							run.fresh++
						}
					}
				case <-deadline:
					errs <- fmt.Errorf("recv%d: timed out with %d/%d deliveries (resumes=%d)",
						i, len(run.payloads), total, run.resumes)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.Fatalf("seed %d failed; replay with %s=%d", seed, faults.SeedEnv, seed)
	}

	for i, run := range runs {
		seen := make(map[string]bool, total)
		for _, p := range run.payloads {
			if seen[p] {
				t.Fatalf("seed %d recv%d: duplicate delivery %q", seed, i, p)
			}
			seen[p] = true
		}
		if len(run.payloads) != total {
			t.Fatalf("seed %d recv%d: %d/%d deliveries", seed, i, len(run.payloads), total)
		}
		if run.fresh != 0 {
			t.Fatalf("seed %d recv%d: %d reconnects lost the session", seed, i, run.fresh)
		}
		for j, p := range run.payloads {
			if p != runs[0].payloads[j] {
				t.Fatalf("seed %d: recv%d delivered %q at %d, recv0 delivered %q (reorder)",
					seed, i, p, j, runs[0].payloads[j])
			}
		}
	}
	// Every kill must be answered by a resume, daemon-side too. The
	// reconnect can still be in flight when delivery completes (a kill
	// that lands after the remaining frames were already buffered
	// client-side resumes in the background), so poll.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var resumes uint64
		for _, reg := range regs {
			resumes += reg.Counter("daemon.resumes").Value()
		}
		if resumes > 0 {
			return
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("seed %d: connections were killed but no daemon recorded a resume", seed)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitMembers(t *testing.T, c *client.Client, groupName string, want int) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				t.Fatalf("stream closed: %v", c.Err())
			}
			if v, isView := ev.(*client.View); isView && v.Group == groupName && len(v.Members) == want {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %d members of %q", want, groupName)
		}
	}
}

// TestForgedFramesRejected: a keyed cluster under attack from a rogue
// hub endpoint (forged ring wire frames) and a rogue TCP client (forged
// session frames). Every forgery is counted and dropped, and the
// survivors' total order is unperturbed.
func TestForgedFramesRejected(t *testing.T) {
	key := []byte("sweep master key")
	daemons, regs, hub := startCluster(t, 2, key)

	mkClient := func(i int, name string) *client.Client {
		t.Helper()
		c, err := client.DialWith(client.Config{
			Network: "tcp", Addr: daemons[i].Addr().String(), Name: name, Key: key,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	a := mkClient(0, "a")
	b := mkClient(1, "b")
	for _, c := range []*client.Client{a, b} {
		if err := c.Join("g"); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []*client.Client{a, b} {
		waitMembers(t, c, "g", 2)
	}

	if err := a.Multicast(evs.Agreed, []byte("before"), "g"); err != nil {
		t.Fatal(err)
	}

	// Rogue ring endpoint: unkeyed data and token frames multicast into
	// the keyed ring.
	rogue, err := hub.Endpoint(evs.ProcID(99), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		frame := make([]byte, 16+rng.Intn(64))
		rng.Read(frame)
		rogue.Multicast(frame)
		rogue.Unicast(evs.ProcID(1+i%2), frame)
	}

	// Rogue session client: unsigned frames on a fresh TCP connection.
	raw, err := net.Dial("tcp", daemons[0].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	session.WriteFrame(raw, session.Connect{Name: "forger"})

	if err := a.Multicast(evs.Agreed, []byte("after"), "g"); err != nil {
		t.Fatal(err)
	}
	for _, c := range []*client.Client{a, b} {
		for _, want := range []string{"before", "after"} {
			deadline := time.After(10 * time.Second)
			for {
				var got string
				select {
				case ev, ok := <-c.Events():
					if !ok {
						t.Fatalf("stream closed: %v", c.Err())
					}
					if m, isMsg := ev.(*client.Message); isMsg {
						got = string(m.Payload)
					}
				case <-deadline:
					t.Fatalf("timed out waiting for %q", want)
				}
				if got == want {
					break
				}
				if got != "" {
					t.Fatalf("delivered %q while waiting for %q (forgery perturbed order)", got, want)
				}
			}
		}
	}

	waitForgeryCounters(t, regs, "transport.auth_drops", 1)
	waitForgeryCounters(t, regs, "daemon.auth_drops", 1)
}

func waitForgeryCounters(t *testing.T, regs []*obs.Registry, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var total uint64
		for _, reg := range regs {
			total += reg.Counter(name).Value()
		}
		if total >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s stayed below %d across the cluster", name, want)
}
