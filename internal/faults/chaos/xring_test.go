package chaos

import (
	"fmt"
	"reflect"
	"testing"

	"accelring/internal/faults"
)

// TestXRingChaosGlobalOrder sweeps ≥ 20 seeds over a 2-shard topology
// with a full cross-ring merger per node: one live migration forced
// mid-stream, the migration's source ring split and healed while the
// migration is in flight, whole-node kills, and independent per-ring
// fault plans. Checks that every node delivers the identical GLOBAL
// order (converged prologue and post-heal epilogue), that the epilogue
// loses nothing, that no node ever delivers a payload twice (migration
// handoff included), that the migration settles to one agreed route
// everywhere, and that the per-ring EVS invariants still hold under the
// merge. A failure prints the seed; FAULTS_SEED=<seed> replays it.
func TestXRingChaosGlobalOrder(t *testing.T) {
	defaults := make([]int64, 24)
	for i := range defaults {
		defaults[i] = int64(i + 1)
	}
	seeds := faults.Seeds(defaults...)
	if testing.Short() && len(seeds) > 4 {
		seeds = seeds[:4]
	}
	closed := 0
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res := RunXRing(XRingOptions{Seed: faults.ReplaySeed(t, seed), Shards: 2})
			t.Logf("shards=%d nodes=%d steps=%d groups=%d submitted=%d delivered=%d migrated=%q->%d closed=%d",
				res.Shards, res.Nodes, res.Steps, len(res.Groups),
				res.Submitted, res.Delivered, res.MigratedGroup, res.MigratedTo, res.MigrationsClosed)
			for _, v := range res.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			if t.Failed() {
				t.Fatalf("seed %d violated cross-ring invariants; replay with %s=%d",
					seed, faults.SeedEnv, seed)
			}
			closed += res.MigrationsClosed
		})
	}
	// Serial follow-up would be needed to aggregate across parallel
	// subtests; instead assert on one deterministic seed that the forced
	// migration actually closed, so the sweep cannot silently degrade
	// into a no-migration test.
	_ = closed
}

// TestXRingChaosMigrationCloses pins that the forced mid-stream
// migration actually completes on a representative seed — the sweep's
// migration checks are conditional on the Begin surviving the fault
// plan, so this guards against the schedule degenerating.
func TestXRingChaosMigrationCloses(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		res := RunXRing(XRingOptions{Seed: seed, Shards: 2})
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d violated invariants: %v", seed, res.Violations)
		}
		if res.MigrationsClosed > 0 {
			return
		}
	}
	t.Fatal("no seed in 1..4 closed a migration; the forced schedule is not exercising handoff")
}

// TestXRingChaosDeterministicReplay: a cross-ring run is a pure function
// of its seed — replaying must reproduce the identical result, down to
// byte-identical per-node global delivery logs. This is the regression
// the deterministic SplitByRing/merge ordering contract promises: two
// identical runs produce identical delivery logs.
func TestXRingChaosDeterministicReplay(t *testing.T) {
	a := RunXRing(XRingOptions{Seed: 7, Shards: 2})
	b := RunXRing(XRingOptions{Seed: 7, Shards: 2})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%+v\nvs\n%+v", a, b)
	}
	if !reflect.DeepEqual(a.GlobalLogs, b.GlobalLogs) {
		t.Fatal("global delivery logs diverged between identical runs")
	}
	if a.Delivered == 0 {
		t.Fatal("run delivered nothing; cross-ring harness is not exercising the rings")
	}
	total := 0
	for _, log := range a.GlobalLogs {
		total += len(log)
	}
	if total == 0 {
		t.Fatal("no node produced a global log; the mergers are not being driven")
	}
}
