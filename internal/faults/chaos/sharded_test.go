package chaos

import (
	"fmt"
	"reflect"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/group"
)

// TestShardedChaosRandomPlans sweeps ≥ 20 seeds over a 2-shard topology:
// each seed derives two independent ring clusters, independent fault
// plans (loss, duplication, delay/reorder, partitions) and a shared
// kill/partition schedule, with all client traffic routed to each
// group's owning ring. Checks, per ring, the four EVS invariants, and
// across the sharding layer: per-group delivery order identical at every
// receiver, and no group leaking off its owning ring. A failure prints
// the seed; FAULTS_SEED=<seed> replays it deterministically.
func TestShardedChaosRandomPlans(t *testing.T) {
	defaults := make([]int64, 24)
	for i := range defaults {
		defaults[i] = int64(i + 1)
	}
	seeds := faults.Seeds(defaults...)
	if testing.Short() && len(seeds) > 4 {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res := RunSharded(ShardedOptions{Seed: faults.ReplaySeed(t, seed), Shards: 2})
			t.Logf("shards=%d nodes=%d steps=%d groups=%d submitted=%d delivered=%d",
				res.Shards, res.Nodes, res.Steps, len(res.Groups), res.Submitted, res.Delivered)
			for _, v := range res.Violations {
				t.Errorf("invariant violated: %s", v)
			}
			if t.Failed() {
				t.Fatalf("seed %d violated sharded invariants; replay with %s=%d",
					seed, faults.SeedEnv, seed)
			}
			if res.Shards != 2 || len(res.PerRing) != 2 {
				t.Fatalf("expected a 2-shard run, got %d rings", len(res.PerRing))
			}
		})
	}
}

// TestShardedChaosDeterministicReplay: a sharded run is a pure function
// of its seed — replaying must reproduce the identical result.
func TestShardedChaosDeterministicReplay(t *testing.T) {
	a := RunSharded(ShardedOptions{Seed: 7, Shards: 2})
	b := RunSharded(ShardedOptions{Seed: 7, Shards: 2})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.Delivered == 0 {
		t.Fatal("run delivered nothing; sharded harness is not exercising the rings")
	}
}

// TestShardedChaosRoutesBothRings: across the default seeds, both rings
// must actually order group traffic — otherwise the topology is vacuous.
func TestShardedChaosRoutesBothRings(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate routing check needs several seeds")
	}
	delivered := make([]int, 2)
	for seed := int64(1); seed <= 6; seed++ {
		res := RunSharded(ShardedOptions{Seed: seed, Shards: 2})
		for r, pr := range res.PerRing {
			delivered[r] += pr.Delivered
		}
	}
	if delivered[0] == 0 || delivered[1] == 0 {
		t.Fatalf("a ring ordered no traffic across seeds: %v", delivered)
	}
}

// ---- forged-log tests: the sharding-level checkers must detect planted
// violations.

func taggedMsg(c evs.ViewID, seq uint64, sender evs.ProcID, g, body string) evs.Message {
	return msg(c, seq, sender, evs.Agreed, g+"/"+body)
}

func TestGroupOrderCheckerDetects(t *testing.T) {
	c1 := cfg(1, 1)
	a := &memberLog{id: 1, events: []evs.Event{
		regular(c1, 1, 2),
		taggedMsg(c1, 1, 1, "g-0", "m-1-1"),
		taggedMsg(c1, 2, 2, "g-0", "m-2-2"),
	}}
	// Member 2 delivers the same group's messages in the opposite order.
	b := &memberLog{id: 2, events: []evs.Event{
		regular(c1, 1, 2),
		taggedMsg(c1, 1, 2, "g-0", "m-2-2"),
		taggedMsg(c1, 2, 1, "g-0", "m-1-1"),
	}}
	if len(checkGroupOrder("g-0", []*memberLog{a, b})) == 0 {
		t.Fatal("opposite per-group orders not detected")
	}
	// Missing a tail is NOT a violation (a crashed receiver may stop
	// early); only reordering is.
	short := &memberLog{id: 2, events: []evs.Event{
		regular(c1, 1, 2),
		taggedMsg(c1, 1, 1, "g-0", "m-1-1"),
	}}
	if vs := checkGroupOrder("g-0", []*memberLog{a, short}); len(vs) != 0 {
		t.Fatalf("prefix delivery wrongly flagged: %v", vs)
	}
	// Other groups' traffic is invisible to the check.
	if vs := checkGroupOrder("g-1", []*memberLog{a, b}); len(vs) != 0 {
		t.Fatalf("foreign group traffic flagged: %v", vs)
	}
}

func TestGroupIsolationCheckerDetects(t *testing.T) {
	c1 := cfg(1, 1)
	// Plant a "g-0" delivery in ring 0's logs; RingOf pins g-0 to ring 1
	// of a 2-shard split, so this is a routing breach.
	if group.RingOf("g-0", 2) != 1 {
		t.Fatal("golden drifted: g-0 must hash to ring 1")
	}
	leaked := &harness{logs: []*memberLog{{id: 1, events: []evs.Event{
		regular(c1, 1),
		taggedMsg(c1, 1, 1, "g-0", "m-1-1"),
	}}}}
	clean := &harness{logs: []*memberLog{{id: 1}}}
	if len(checkGroupIsolation([]*harness{leaked, clean}, 2)) == 0 {
		t.Fatal("cross-ring group leak not detected")
	}
	// The same delivery on the owning ring is fine.
	if vs := checkGroupIsolation([]*harness{clean, leaked}, 2); len(vs) != 0 {
		t.Fatalf("legitimate routing flagged: %v", vs)
	}
}
