// Package chaos is the invariant-checking chaos harness: it runs
// randomized, seed-replayable fault plans against a full multi-daemon
// cluster — one membership.Machine (membership + recovery + ordering
// engine) per participant, connected by a deterministic virtual-time
// network routed through the unified faults.Injector — and checks the
// Extended Virtual Synchrony delivery invariants after every run:
//
//  1. total-order — agreed delivery produces one total order: a slot
//     (configuration, sequence number) holds the same message at every
//     member that fills it, no member delivers the same message twice
//     within one incarnation, and any two members deliver the messages
//     they have in common in the same relative order;
//  2. safe-stability — a Safe message delivered in a regular
//     configuration (before the configuration's transitional marker) was
//     received by every member of it: every non-crashed member that
//     installed the configuration also delivers the message;
//  3. virtual-synchrony — members agree on each configuration's member
//     set, and members that come through the same transitional
//     configuration deliver exactly the same messages in the
//     configuration they left;
//  4. seq-regression — per member and configuration, delivered sequence
//     numbers are strictly increasing.
//
// A run is a pure function of its seed: the fault plan, the node count,
// the kill/restart/partition schedule, and every per-packet fault
// decision derive from it, so any violation replays exactly from the
// printed seed (see faults.ReplaySeed and the FAULTS_SEED override).
package chaos

import (
	"container/heap"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"accelring/internal/core"
	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/flowcontrol"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/stats"
)

const (
	// hopLatency is the virtual one-way frame latency; it keeps virtual
	// time advancing so an operational ring cannot spin at one instant.
	hopLatency = 200 * time.Microsecond
	// tickStep is the virtual membership-timer resolution.
	tickStep = 5 * time.Millisecond
	// tickPhase staggers each machine's timer phase and tickSkew its
	// timer period. With identical phases and periods the whole
	// cluster's membership timers fire at the same instants forever — a
	// lockstep symmetry no real deployment has (independent clocks
	// always skew and drift), under which competing gather rounds can
	// collide, expire, and retry in unison indefinitely. Distinct
	// periods make the relative phases precess, so no periodic orbit is
	// stable.
	tickPhase = 700 * time.Microsecond
	tickSkew  = 17 * time.Microsecond
	// restartPhase further shifts a restarted incarnation's timers.
	restartPhase = 311 * time.Microsecond
)

// Options parameterizes a chaos run. Zero fields derive from the seed.
type Options struct {
	// Seed determines everything about the run.
	Seed int64
	// Nodes is the cluster size (default: 4–6, seed-chosen).
	Nodes int
	// Steps is the number of fault-schedule steps (default: 10–17,
	// seed-chosen).
	Steps int
	// FlightDir, when non-empty (or via the CHAOS_FLIGHT_DIR environment
	// variable), receives one flight-recorder JSONL dump per process
	// incarnation — plus one for the network fault injector — whenever
	// the run ends with violations. Timestamps are the harness's virtual
	// clock, so dumps line up with the deterministic schedule. The dump
	// is a side effect only; the Result is identical with or without it.
	FlightDir string
	// ForceViolation plants an artificial "forced" violation at the end
	// of the run. It exists to exercise the violation → flight-dump path
	// end to end (the dumped events are the run's real recordings).
	ForceViolation bool
}

// Violation is one invariant breach.
type Violation struct {
	// Invariant names the broken check: formation, convergence,
	// total-order, safe-stability, virtual-synchrony, seq-regression.
	Invariant string
	// Detail describes the breach.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Result summarizes one chaos run. Two runs with equal Options are
// identical, including the Result.
type Result struct {
	Seed         int64
	Nodes, Steps int
	// Submitted counts accepted client submissions; Delivered counts
	// application message deliveries summed over members; Configs counts
	// regular configuration installs summed over members.
	Submitted, Delivered, Configs int
	// Faults holds the fault plan's per-rule counters.
	Faults []stats.FaultCounter
	// Violations holds every invariant breach (empty on a clean run).
	Violations []Violation
}

// memberLog is the delivery log of one process incarnation. A restarted
// participant is a fresh process and gets a fresh log; EVS guarantees are
// per incarnation.
type memberLog struct {
	id  evs.ProcID
	gen int
	// crashed marks incarnations the harness killed; invariants that
	// require eventual delivery exempt them.
	crashed bool
	events  []evs.Event
	// flight is the incarnation's black-box recorder (virtual-clock
	// timestamps), dumped as JSONL when the run ends with violations.
	flight *obs.FlightRecorder
}

func (l *memberLog) name() string { return fmt.Sprintf("%d.%d", l.id, l.gen) }

// procOut adapts a machine's effects onto the harness network.
type procOut struct {
	h   *harness
	log *memberLog
}

func (o *procOut) Multicast(frame []byte) {
	cp := append([]byte(nil), frame...)
	for _, id := range o.h.ids {
		if id != o.log.id {
			o.h.send(o.log.id, id, false, cp)
		}
	}
}

func (o *procOut) Unicast(to evs.ProcID, frame []byte) {
	o.h.send(o.log.id, to, true, append([]byte(nil), frame...))
}

func (o *procOut) Deliver(ev evs.Event) {
	o.log.events = append(o.log.events, ev)
}

// envelope is one in-flight frame copy.
type envelope struct {
	at    time.Time
	seq   uint64
	to    evs.ProcID
	token bool
	frame []byte
}

type envHeap []*envelope

func (h envHeap) Len() int { return len(h) }
func (h envHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h envHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *envHeap) Push(x any)   { *h = append(*h, x.(*envelope)) }
func (h *envHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// harness is the deterministic virtual-time cluster: machines, a timed
// frame queue, and the fault injector. Everything runs on one goroutine;
// map iteration never decides anything (h.ids orders all fan-out).
type harness struct {
	rng        *rand.Rand
	start, now time.Time
	tickAt     map[evs.ProcID]time.Time

	ids      []evs.ProcID
	machines map[evs.ProcID]*membership.Machine
	gens     map[evs.ProcID]int
	cur      map[evs.ProcID]*memberLog
	logs     []*memberLog

	inj        *faults.Injector
	part       *faults.Partition
	faultStart time.Time
	faultsOn   bool

	// netFlight records the fault injector's actions; flightDir and
	// forceViolation carry the Options' flight-dump settings.
	netFlight      *obs.FlightRecorder
	flightDir      string
	forceViolation bool

	queue     envHeap
	seq       uint64
	submitted int
}

func chaosTimeouts() membership.Timeouts {
	return membership.Timeouts{
		JoinInterval:    10 * time.Millisecond,
		Gather:          50 * time.Millisecond,
		Commit:          100 * time.Millisecond,
		TokenLoss:       200 * time.Millisecond,
		TokenRetransmit: 60 * time.Millisecond,
	}
}

func newHarness(rng *rand.Rand, n int) *harness {
	h := &harness{
		rng:      rng,
		start:    time.Unix(1000, 0),
		now:      time.Unix(1000, 0),
		machines: make(map[evs.ProcID]*membership.Machine),
		gens:     make(map[evs.ProcID]int),
		cur:      make(map[evs.ProcID]*memberLog),
		tickAt:   make(map[evs.ProcID]time.Time),
		part:     faults.NewPartition(),
	}
	h.netFlight = obs.NewFlightRecorder(0)
	h.netFlight.SetClock(func() time.Time { return h.now })
	for i := 0; i < n; i++ {
		id := evs.ProcID(i + 1)
		h.ids = append(h.ids, id)
		h.addMachine(id)
	}
	return h
}

func (h *harness) addMachine(id evs.ProcID) {
	log := &memberLog{id: id, gen: h.gens[id]}
	log.flight = obs.NewFlightRecorder(0)
	log.flight.SetClock(func() time.Time { return h.now })
	h.cur[id] = log
	h.logs = append(h.logs, log)
	m, err := membership.New(membership.Config{
		Self:            id,
		Windows:         flowcontrol.Windows{Personal: 5, Global: 100, Accelerated: 3},
		Priority:        core.PriorityAggressive,
		DelayedRequests: true,
		Timeouts:        chaosTimeouts(),
		// Flight recording only: no registry, no tracer, no clock, so
		// the machines behave identically to unobserved ones and the
		// Result stays a pure function of the seed.
		Observer: &obs.RingObserver{Flight: log.flight},
	}, &procOut{h: h, log: log}, h.now)
	if err != nil {
		panic("chaos: " + err.Error())
	}
	h.machines[id] = m
	h.tickAt[id] = h.now.Add(tickStep +
		time.Duration(id)*tickPhase + time.Duration(h.gens[id])*restartPhase)
}

// kill stops a participant's process: its machine vanishes, its current
// incarnation is marked crashed, and in-flight frames to it are dropped at
// dispatch.
func (h *harness) kill(id evs.ProcID) {
	if log := h.cur[id]; log != nil {
		log.crashed = true
	}
	delete(h.machines, id)
	delete(h.cur, id)
	delete(h.tickAt, id)
}

// restart boots a fresh process for a killed participant.
func (h *harness) restart(id evs.ProcID) {
	h.gens[id]++
	h.addMachine(id)
}

func (h *harness) liveIDs() []evs.ProcID {
	var out []evs.ProcID
	for _, id := range h.ids {
		if h.machines[id] != nil {
			out = append(out, id)
		}
	}
	return out
}

// send routes one frame copy (or more, under duplication) through the
// injector onto the timed queue.
func (h *harness) send(from, to evs.ProcID, token bool, frame []byte) {
	if h.machines[from] == nil {
		return
	}
	if h.faultsOn {
		d := h.inj.Decide(h.now.Sub(h.faultStart), faults.Packet{
			From: from, To: to, Token: token, Size: len(frame), Frame: frame,
		})
		if d.Drop {
			return
		}
		h.enqueue(to, token, frame, hopLatency+d.Delay)
		for _, extra := range d.Extra {
			h.enqueue(to, token, frame, hopLatency+extra)
		}
		return
	}
	h.enqueue(to, token, frame, hopLatency)
}

func (h *harness) enqueue(to evs.ProcID, token bool, frame []byte, delay time.Duration) {
	h.seq++
	heap.Push(&h.queue, &envelope{
		at: h.now.Add(delay), seq: h.seq, to: to, token: token, frame: frame,
	})
}

func (h *harness) dispatch(env *envelope) {
	m := h.machines[env.to]
	if m == nil {
		return
	}
	if env.token {
		m.HandleTokenFrame(env.frame, h.now)
	} else {
		m.HandleDataFrame(env.frame, h.now)
	}
}

// advance runs the discrete-event loop for d of virtual time: frames
// dispatch at their arrival instants, each machine ticks every tickStep
// on its own phase.
func (h *harness) advance(d time.Duration) {
	end := h.now.Add(d)
	for {
		var tickID evs.ProcID
		var tickT time.Time
		for _, id := range h.ids {
			if h.machines[id] == nil {
				continue
			}
			if at := h.tickAt[id]; tickT.IsZero() || at.Before(tickT) {
				tickID, tickT = id, at
			}
		}
		tickNext := !tickT.IsZero() && (len(h.queue) == 0 || tickT.Before(h.queue[0].at))
		if tickNext {
			if tickT.After(end) {
				break
			}
			h.now = tickT
			h.machines[tickID].Tick(h.now)
			h.tickAt[tickID] = tickT.Add(tickStep + time.Duration(tickID)*tickSkew)
			continue
		}
		if len(h.queue) == 0 {
			break // nothing alive to tick, nothing in flight
		}
		env := heap.Pop(&h.queue).(*envelope)
		if env.at.After(end) {
			heap.Push(&h.queue, env)
			break
		}
		if env.at.After(h.now) {
			h.now = env.at
		}
		h.dispatch(env)
	}
	if end.After(h.now) {
		h.now = end
	}
}

// converged reports whether every live machine is operational on one
// shared ring containing exactly the live members.
func (h *harness) converged() bool {
	live := h.liveIDs()
	if len(live) == 0 {
		return true
	}
	ref := h.machines[live[0]].Ring()
	if h.machines[live[0]].State() != membership.StateOperational ||
		len(ref.Members) != len(live) {
		return false
	}
	have := make(map[evs.ProcID]bool, len(ref.Members))
	for _, id := range ref.Members {
		have[id] = true
	}
	for _, id := range live {
		if !have[id] {
			return false
		}
		if h.machines[id].State() != membership.StateOperational ||
			!h.machines[id].Ring().Equal(ref) {
			return false
		}
	}
	return true
}

func (h *harness) waitConverged(within time.Duration) bool {
	deadline := h.now.Add(within)
	for h.now.Before(deadline) {
		if h.converged() {
			return true
		}
		h.advance(25 * time.Millisecond)
	}
	return h.converged()
}

func (h *harness) submit(id evs.ProcID, svc evs.Service) {
	m := h.machines[id]
	if m == nil {
		return
	}
	payload := fmt.Sprintf("m-%d-%d", id, h.submitted+1)
	// Submission fails while the machine is reforming; real clients retry.
	if m.Submit([]byte(payload), svc) == nil {
		h.submitted++
	}
}

// randomPlan builds the seeded fault plan for a fault phase of the given
// duration: a random subset of loss / bursty loss / duplication /
// delay-reorder rules, each with a random activity window, plus the
// runtime-controlled partition (split and healed by the step schedule).
func randomPlan(rng *rand.Rand, n int, dur time.Duration, part *faults.Partition) faults.Plan {
	var plan faults.Plan
	window := func(r *faults.Rule) {
		a := time.Duration(rng.Int63n(int64(dur / 2)))
		b := a + dur/5 + time.Duration(rng.Int63n(int64(dur)))
		if b > dur {
			b = 0 // until the heal
		}
		r.After, r.Until = a, b
	}
	maybeTarget := func(r *faults.Rule) {
		if rng.Float64() < 0.3 {
			r.To = evs.ProcID(rng.Intn(n) + 1)
		}
	}
	if rng.Float64() < 0.7 {
		r := faults.Rule{Name: "loss", Model: faults.Loss{P: 0.05 + 0.25*rng.Float64()}}
		if rng.Float64() < 0.5 {
			r.Classes = faults.ClassData
		}
		window(&r)
		maybeTarget(&r)
		plan.Add(r)
	}
	if rng.Float64() < 0.5 {
		r := faults.Rule{Name: "burst", Model: &faults.GilbertElliott{
			PGoodBad: 0.005 + 0.02*rng.Float64(),
			PBadGood: 0.1 + 0.2*rng.Float64(),
			LossBad:  0.5 + 0.4*rng.Float64(),
		}}
		window(&r)
		plan.Add(r)
	}
	if rng.Float64() < 0.6 {
		r := faults.Rule{Name: "dup", Model: faults.Duplicate{
			P:      0.05 + 0.25*rng.Float64(),
			Copies: 1 + rng.Intn(2),
			Spread: time.Duration(rng.Intn(3)) * time.Millisecond,
		}}
		window(&r)
		plan.Add(r)
	}
	if rng.Float64() < 0.6 {
		r := faults.Rule{Name: "delay", Model: faults.Delay{
			Max: time.Duration(1+rng.Intn(5)) * time.Millisecond,
		}}
		window(&r)
		maybeTarget(&r)
		plan.Add(r)
	}
	plan.Add(faults.Rule{Name: "partition", Model: part})
	return plan
}

// Run executes one chaos run. It is deterministic: equal Options produce
// equal Results.
func Run(opts Options) *Result {
	res, _ := runForDebug(opts)
	return res
}

// runForDebug is Run, additionally exposing the harness so tests can
// inspect the raw delivery logs.
func runForDebug(opts Options) (*Result, *harness) {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := opts.Nodes
	if n == 0 {
		n = 4 + rng.Intn(3)
	}
	steps := opts.Steps
	if steps == 0 {
		steps = 10 + rng.Intn(8)
	}
	res := &Result{Seed: opts.Seed, Nodes: n, Steps: steps}
	h := newHarness(rng, n)
	h.flightDir = opts.FlightDir
	if h.flightDir == "" {
		h.flightDir = os.Getenv("CHAOS_FLIGHT_DIR")
	}
	h.forceViolation = opts.ForceViolation

	// Phase 1: fault-free ring formation.
	if !h.waitConverged(10 * time.Second) {
		res.Violations = append(res.Violations,
			Violation{"formation", "initial ring did not form"})
		return finish(res, h), h
	}

	// Phase 2: the fault schedule. Step durations are drawn up front so
	// the plan's rule windows can span the whole phase.
	durs := make([]time.Duration, steps)
	var total time.Duration
	for i := range durs {
		durs[i] = time.Duration(50+rng.Intn(300)) * time.Millisecond
		total += durs[i]
	}
	h.inj = faults.New(opts.Seed, randomPlan(rng, n, total, h.part))
	h.inj.SetFlight(h.netFlight)
	h.faultStart = h.now
	h.faultsOn = true

	for s := 0; s < steps; s++ {
		switch rng.Intn(8) {
		case 0: // kill one process (keep a workable majority of the ids)
			if live := h.liveIDs(); len(live) > 3 {
				h.kill(live[rng.Intn(len(live))])
			}
		case 1: // restart a killed process as a fresh incarnation
			var dead []evs.ProcID
			for _, id := range h.ids {
				if h.machines[id] == nil {
					dead = append(dead, id)
				}
			}
			if len(dead) > 0 {
				h.restart(dead[rng.Intn(len(dead))])
			}
		case 2: // split into two sides
			sides := make(map[evs.ProcID]int, len(h.ids))
			for _, id := range h.ids {
				sides[id] = rng.Intn(2)
			}
			h.part.Split(sides)
		case 3: // heal the partition
			h.part.Heal()
		default: // traffic burst, mixed Agreed/Safe
			for i := 0; i < 1+rng.Intn(4); i++ {
				svc := evs.Agreed
				if rng.Intn(2) == 0 {
					svc = evs.Safe
				}
				h.submit(h.ids[rng.Intn(n)], svc)
			}
		}
		h.advance(durs[s])
	}

	// Phase 3: stop all faults, let the survivors converge, then flush so
	// every pending recovery and safe delivery completes.
	h.faultsOn = false
	h.part.Heal()
	if !h.waitConverged(20 * time.Second) {
		detail := "live machines did not converge after heal:"
		for _, id := range h.liveIDs() {
			m := h.machines[id]
			detail += fmt.Sprintf(" %d=%v/%v", id, m.State(), m.Ring().ID)
		}
		res.Violations = append(res.Violations, Violation{"convergence", detail})
		return finish(res, h), h
	}
	h.advance(2 * time.Second)

	res.Violations = append(res.Violations, checkInvariants(h.logs)...)
	return finish(res, h), h
}

func finish(res *Result, h *harness) *Result {
	res.Submitted = h.submitted
	for _, log := range h.logs {
		for _, ev := range log.events {
			switch e := ev.(type) {
			case evs.Message:
				res.Delivered++
				_ = e
			case evs.ConfigChange:
				if !e.Transitional {
					res.Configs++
				}
			}
		}
	}
	if h.inj != nil {
		res.Faults = h.inj.Counters()
	}
	if h.forceViolation {
		res.Violations = append(res.Violations,
			Violation{"forced", "planted by Options.ForceViolation"})
	}
	sort.SliceStable(res.Violations, func(i, j int) bool {
		return res.Violations[i].Invariant < res.Violations[j].Invariant
	})
	if len(res.Violations) > 0 {
		dumpFlights(res.Seed, h)
	}
	return res
}

// dumpFlights writes every incarnation's flight recorder — and the
// network injector's — as JSONL into the configured dump directory, one
// file per recorder, named like the CHAOS_DUMP log dumps. Best effort: a
// write failure is reported on stderr, never fails the run, and the
// Result is untouched either way.
func dumpFlights(seed int64, h *harness) {
	if h.flightDir == "" {
		return
	}
	write := func(name string, f *obs.FlightRecorder) {
		if f.Total() == 0 {
			return
		}
		path := filepath.Join(h.flightDir, fmt.Sprintf("chaos-flight-seed%d-%s.jsonl", seed, name))
		if err := f.DumpFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "chaos: flight dump:", err)
			return
		}
		fmt.Fprintln(os.Stderr, "chaos: flight recorder dumped to", path)
	}
	for _, log := range h.logs {
		write("node"+log.name(), log.flight)
	}
	write("net", h.netFlight)
}
