package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"accelring/internal/evs"
)

// TestDebugDumpLogs prints the full per-incarnation delivery logs for one
// seed. Only runs when CHAOS_DUMP is set; a scratch tool, not a test.
func TestDebugDumpLogs(t *testing.T) {
	v := os.Getenv("CHAOS_DUMP")
	if v == "" {
		t.Skip("set CHAOS_DUMP=<seed> to dump logs")
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, h := runForDebug(Options{Seed: seed})
	for _, v := range res.Violations {
		fmt.Printf("VIOLATION %s: %s\n", v.Invariant, v.Detail)
	}
	for _, log := range h.logs {
		fmt.Printf("=== member %s (crashed=%v) ===\n", log.name(), log.crashed)
		for i, ev := range log.events {
			switch e := ev.(type) {
			case evs.ConfigChange:
				kind := "REG "
				if e.Transitional {
					kind = "TRAN"
				}
				fmt.Printf("  %3d %s %v members=%v\n", i, kind, e.Config.ID, e.Config.Members)
			case evs.Message:
				fmt.Printf("  %3d msg  cfg=%v seq=%d sender=%d svc=%v %s\n",
					i, e.Config, e.Seq, e.Sender, e.Service, e.Payload)
			}
		}
	}
}
