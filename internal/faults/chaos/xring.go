package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/group"
	"accelring/internal/shard/merge"
)

// XRingOptions parameterizes a cross-ring merge chaos run: one harness
// cluster per ring as in RunSharded, but every node additionally runs a
// merge.Merger over all of its per-ring delivery streams, exactly like a
// sharded daemon — including lambda-pacing skips, a live group migration
// triggered mid-stream, and a split/heal of the migration's source ring
// while the migration is in flight. Zero fields derive from the seed.
type XRingOptions struct {
	// Seed determines everything about the run.
	Seed int64
	// Shards is the ring count (default 2).
	Shards int
	// Nodes is the per-ring cluster size (default: 4–6, seed-chosen).
	Nodes int
	// Steps is the number of fault-schedule steps (default: 10–17,
	// seed-chosen).
	Steps int
	// Groups is the number of client groups spread across the rings
	// (default: 3–5, seed-chosen).
	Groups int
}

// XRingResult summarizes one cross-ring chaos run. Two runs with equal
// Options are identical, including the Result.
type XRingResult struct {
	Seed                 int64
	Shards, Nodes, Steps int
	Groups               []string
	// MigratedGroup / MigratedTo describe the migration the schedule
	// triggered (MigratedGroup is always set; the Begin may still be lost
	// to faults, in which case MigrationsClosed is 0 and the route stays).
	MigratedGroup string
	MigratedTo    int
	// MigrationsClosed is the maximum per-node migration close count over
	// live nodes. Counts may legitimately differ across nodes: when a
	// Begin straddles a partition and the run repairs it by re-issuing the
	// Migrate, members that ordered the original Begin close twice while
	// the other component closes only the repair. What must agree — and is
	// checked — is the route every node ends with.
	MigrationsClosed int
	// PerRing holds each ring's own Result (per-ring EVS invariants
	// included, with ring-derived seeds).
	PerRing []*Result
	// Submitted and Delivered aggregate application traffic over the
	// rings (control envelopes — skips, acks, Begins — excluded from
	// Submitted, included in the raw per-ring Delivered).
	Submitted, Delivered int
	// GlobalLogs is each node's globally ordered message-payload stream,
	// indexed like the node ids; the determinism regression compares two
	// runs' logs byte for byte.
	GlobalLogs [][]string
	// Violations flattens every breach: each ring's EVS violations plus
	// the cross-ring checks — identical global order, zero loss, and
	// exactly-once delivery through the migration.
	Violations []Violation
}

// xnode is one daemon-equivalent: a routing table and a merger over the
// node's own per-ring delivery logs, plus the globally ordered output.
type xnode struct {
	id     evs.ProcID
	dead   bool
	table  *group.ShardedTable
	merger *merge.Merger
	// logs[r] is this node's incarnation log on ring r; consumed[r] is
	// how much of it has been fed to the merger. Nodes are never
	// restarted (a fresh merger's slot numbering would only re-level at
	// the next announcement round — the guarantee is per incarnation), so
	// the log pointers are stable for the whole run.
	logs     []*memberLog
	consumed []int
	// global is the node's globally ordered delivery stream (message
	// payloads; config changes are per-ring and excluded from cross-node
	// comparison since partitioned components legitimately see different
	// view sequences).
	global []string
	// pending holds merger-originated control envelopes (acks, frontier
	// announcements) awaiting a successful machine submit; kept FIFO so
	// an ack never overtakes the traffic it drains.
	pending []xctl
	// wants is the reusable Wants scratch; migClosed counts Migrated
	// callbacks.
	wants     []merge.Want
	migClosed int
}

type xctl struct {
	ring int
	enc  []byte
}

// xout adapts a node's merger output back onto the harness: deliveries
// append to the node's global log, control submissions queue for the next
// pacing round.
type xout struct{ n *xnode }

func (o *xout) Deliver(ring int, env *group.Envelope, svc evs.Service, seq uint64) {
	if env.Kind == group.OpMessage {
		o.n.global = append(o.n.global, string(env.Payload))
	}
}

func (o *xout) Config(ring int, cc evs.ConfigChange) {}

func (o *xout) SubmitAsync(ring int, env group.Envelope) {
	enc, err := env.Encode()
	if err != nil {
		panic("chaos: control envelope: " + err.Error())
	}
	o.n.pending = append(o.n.pending, xctl{ring: ring, enc: enc})
}

func (o *xout) Migrated(g string, from, to int) { o.n.migClosed++ }

// xrun is the running state of one cross-ring chaos run.
type xrun struct {
	res    *XRingResult
	hs     []*harness
	nodes  []*xnode
	msgSeq uint32
	// split tracks which rings currently have a partition installed, so
	// the migration only triggers while its source ring is whole.
	split []bool
}

func (x *xrun) violate(inv, detail string) {
	x.res.Violations = append(x.res.Violations, Violation{inv, detail})
}

// feed pushes every not-yet-consumed per-ring delivery of every live node
// into that node's merger, in node then ring order. Emission happens
// inline, so captured control submissions are ready for the next pace.
func (x *xrun) feed() {
	for _, n := range x.nodes {
		if n.dead {
			continue
		}
		for r := range x.hs {
			log := n.logs[r]
			for n.consumed[r] < len(log.events) {
				ev := log.events[n.consumed[r]]
				n.consumed[r]++
				switch e := ev.(type) {
				case evs.Message:
					env, err := group.DecodeEnvelope(e.Payload)
					if err != nil {
						x.violate("decode", fmt.Sprintf(
							"node %d ring %d: %v", n.id, r, err))
						continue
					}
					n.merger.PushEnvelope(r, env, e.Service)
				case evs.ConfigChange:
					n.merger.PushConfig(r, e)
				}
			}
		}
	}
}

// pace is one lambda-pacing round: flush each live node's queued control
// envelopes (retrying refused submits, in order), then submit the skip
// claims the node's merger wants where this node is the representative.
func (x *xrun) pace() {
	for _, n := range x.nodes {
		if n.dead {
			continue
		}
		keep := n.pending[:0]
		for _, p := range n.pending {
			m := x.hs[p.ring].machines[n.id]
			if m == nil || m.Submit(p.enc, evs.Agreed) != nil {
				keep = append(keep, p)
			}
		}
		n.pending = keep
		n.wants = n.merger.Wants(n.wants)
		for _, w := range n.wants {
			env := n.merger.SkipEnvelope(w)
			enc, err := env.Encode()
			if err != nil {
				panic("chaos: skip envelope: " + err.Error())
			}
			// A refused skip is simply dropped: Wants re-requests it
			// after its suppression window.
			if m := x.hs[w.Ring].machines[n.id]; m != nil {
				_ = m.Submit(enc, evs.Agreed)
			}
		}
	}
}

// run advances all rings d of virtual time in small chunks, feeding and
// pacing the mergers between chunks — the deterministic stand-in for the
// daemon's event loop and skip-pacer timer.
func (x *xrun) run(d time.Duration) {
	const chunk = 10 * time.Millisecond
	for d > 0 {
		step := chunk
		if d < step {
			step = d
		}
		for _, h := range x.hs {
			h.advance(step)
		}
		d -= step
		x.feed()
		x.pace()
	}
}

// settle runs until every live merger has drained (no queued items, no
// unsubmitted control envelopes) for a few consecutive rounds, or the
// virtual-time budget runs out.
func (x *xrun) settle(budget time.Duration) bool {
	quiet := 0
	for spent := time.Duration(0); spent < budget; spent += 10 * time.Millisecond {
		x.run(10 * time.Millisecond)
		if x.quiescent() {
			if quiet++; quiet >= 5 {
				return true
			}
		} else {
			quiet = 0
		}
	}
	return x.quiescent()
}

func (x *xrun) quiescent() bool {
	for _, n := range x.nodes {
		if n.dead {
			continue
		}
		if len(n.pending) > 0 || n.merger.Pending() > 0 {
			return false
		}
	}
	return true
}

func (x *xrun) liveNodes() []*xnode {
	var out []*xnode
	for _, n := range x.nodes {
		if !n.dead {
			out = append(out, n)
		}
	}
	return out
}

// killNode stops one node everywhere: its machines vanish from every
// ring and its merger is no longer driven.
func (x *xrun) killNode(n *xnode) {
	n.dead = true
	for _, h := range x.hs {
		h.kill(n.id)
	}
}

// submitMsg routes one tagged application message by the SENDER's own
// routing table — mid-migration, different nodes may transiently route
// the same group differently, and each sender's view is the authoritative
// one for its own traffic (that is the semantics the daemon gives its
// clients). Returns whether the submission was accepted.
func (x *xrun) submitMsg(n *xnode, g, phase string, svc evs.Service) bool {
	ring := n.table.Ring(g)
	m := x.hs[ring].machines[n.id]
	if m == nil {
		return false
	}
	x.msgSeq++
	env := group.Envelope{
		Kind:    group.OpMessage,
		Sender:  group.ClientID{Daemon: n.id, Local: x.msgSeq},
		Groups:  []string{g},
		Payload: []byte(fmt.Sprintf("%s/%s-%d-%d", g, phase, n.id, x.msgSeq)),
	}
	enc, err := env.Encode()
	if err != nil {
		panic("chaos: message envelope: " + err.Error())
	}
	if m.Submit(enc, svc) != nil {
		return false
	}
	x.hs[ring].submitted++
	return true
}

// splitRing installs a seeded two-sided partition on one ring.
func (x *xrun) splitRing(r int, rng *rand.Rand) {
	sides := make(map[evs.ProcID]int, len(x.hs[r].ids))
	for i, id := range x.hs[r].ids {
		// Guarantee both sides are nonempty, then randomize the rest.
		if i < 2 {
			sides[id] = i
		} else {
			sides[id] = rng.Intn(2)
		}
	}
	x.hs[r].part.Split(sides)
	x.split[r] = true
}

func (x *xrun) healRing(r int) {
	x.hs[r].part.Heal()
	x.split[r] = false
}

// checkEqualStreams verifies that every live node produced the identical
// stream, reporting the first divergence.
func (x *xrun) checkEqualStreams(inv string, streams map[evs.ProcID][]string) {
	live := x.liveNodes()
	if len(live) < 2 {
		return
	}
	ref := streams[live[0].id]
	for _, n := range live[1:] {
		got := streams[n.id]
		limit := len(ref)
		if len(got) < limit {
			limit = len(got)
		}
		for i := 0; i < limit; i++ {
			if ref[i] != got[i] {
				x.violate(inv, fmt.Sprintf(
					"nodes %d and %d diverge at global position %d: %q vs %q",
					live[0].id, n.id, i, ref[i], got[i]))
				return
			}
		}
		if len(ref) != len(got) {
			x.violate(inv, fmt.Sprintf(
				"nodes %d and %d delivered %d vs %d messages",
				live[0].id, n.id, len(ref), len(got)))
			return
		}
	}
}

// RunXRing executes one cross-ring merge chaos run. It is deterministic:
// equal Options produce equal Results, including every node's global log.
func RunXRing(opts XRingOptions) *XRingResult {
	rng := rand.New(rand.NewSource(opts.Seed))
	shards := opts.Shards
	if shards == 0 {
		shards = 2
	}
	n := opts.Nodes
	if n == 0 {
		n = 4 + rng.Intn(3)
	}
	steps := opts.Steps
	if steps == 0 {
		steps = 10 + rng.Intn(8)
	}
	ngroups := opts.Groups
	if ngroups == 0 {
		ngroups = 3 + rng.Intn(3)
	}
	res := &XRingResult{Seed: opts.Seed, Shards: shards, Nodes: n, Steps: steps}
	for g := 0; g < ngroups; g++ {
		res.Groups = append(res.Groups, fmt.Sprintf("g-%d", g))
	}

	x := &xrun{res: res, split: make([]bool, shards)}
	for r := 0; r < shards; r++ {
		x.hs = append(x.hs, newHarness(rand.New(rand.NewSource(ringSeed(opts.Seed, r))), n))
		res.PerRing = append(res.PerRing, &Result{Seed: ringSeed(opts.Seed, r), Nodes: n, Steps: steps})
	}
	for i := 0; i < n; i++ {
		node := &xnode{
			id:       evs.ProcID(i + 1),
			table:    group.NewShardedTable(shards),
			consumed: make([]int, shards),
		}
		node.merger = merge.New(merge.Config{
			Shards: shards,
			Self:   node.id,
			Table:  node.table,
			Out:    &xout{n: node},
		})
		for r := 0; r < shards; r++ {
			node.logs = append(node.logs, x.hs[r].cur[node.id])
		}
		x.nodes = append(x.nodes, node)
	}

	// Phase 1: fault-free formation of every ring, then a converged burst
	// that every node must deliver in the identical global order.
	for r, h := range x.hs {
		if !h.waitConverged(10 * time.Second) {
			x.violate("formation", fmt.Sprintf("ring %d did not form", r))
			return finishXRing(res, x)
		}
	}
	x.feed()
	x.pace()
	burstA := 0
	for i := 0; i < 4+rng.Intn(4); i++ {
		g := res.Groups[rng.Intn(ngroups)]
		svc := evs.Agreed
		if rng.Intn(2) == 0 {
			svc = evs.Safe
		}
		if x.submitMsg(x.nodes[rng.Intn(n)], g, "a", svc) {
			burstA++
		}
	}
	if !x.settle(20 * time.Second) {
		x.violate("merge-liveness", x.stallDetail("converged burst did not drain"))
		return finishXRing(res, x)
	}
	streams := make(map[evs.ProcID][]string)
	for _, node := range x.nodes {
		streams[node.id] = node.global
	}
	x.checkEqualStreams("global-order", streams)
	if got := len(x.nodes[0].global); got != burstA {
		x.violate("global-loss", fmt.Sprintf(
			"converged burst: %d accepted, %d delivered globally", burstA, got))
	}

	// Pick the migration before the fault phase: the group, its source
	// ring (the routing hash's choice), and the neighbouring target.
	gM := res.Groups[rng.Intn(ngroups)]
	migFrom := group.RingOf(gM, shards)
	migTo := (migFrom + 1) % shards
	res.MigratedGroup, res.MigratedTo = gM, migTo
	migStep := steps / 2
	if migStep+3 >= steps {
		migStep = steps - 4
	}
	migSubmitted := false
	submitBegin := func() {
		// The lowest live node initiates; any node could. Triggered only
		// while the source ring is whole, so the Begin orders ring-wide
		// before the scheduled split lands on it.
		live := x.liveNodes()
		if len(live) == 0 || x.split[migFrom] {
			return
		}
		env, err := live[0].merger.BeginEnvelope(gM, migTo)
		if err != nil {
			panic("chaos: begin envelope: " + err.Error())
		}
		enc, err := env.Encode()
		if err != nil {
			panic("chaos: begin envelope: " + err.Error())
		}
		if m := x.hs[migFrom].machines[live[0].id]; m != nil && m.Submit(enc, evs.Agreed) == nil {
			migSubmitted = true
		}
	}

	// Phase 2: the shared fault schedule — independent per-ring fault
	// plans, whole-node kills, ring splits and heals, group traffic — with
	// the migration forced mid-stream and its source ring split and healed
	// while the migration is in flight.
	durs := make([]time.Duration, steps)
	var total time.Duration
	for i := range durs {
		durs[i] = time.Duration(50+rng.Intn(300)) * time.Millisecond
		total += durs[i]
	}
	for r, h := range x.hs {
		h.inj = faults.New(ringSeed(opts.Seed, r), randomPlan(h.rng, n, total, h.part))
		h.faultStart = h.now
		h.faultsOn = true
	}

	for s := 0; s < steps; s++ {
		switch {
		case s == migStep && migStep >= 0:
			submitBegin()
		case s == migStep+1 && migStep >= 0:
			x.splitRing(migFrom, rng)
		case s == migStep+3 && migStep >= 0:
			x.healRing(migFrom)
		default:
			switch rng.Intn(8) {
			case 0: // kill one whole node (keep a workable majority)
				if live := x.liveNodes(); len(live) > 3 {
					x.killNode(live[rng.Intn(len(live))])
				}
			case 1:
				// Restarts are deliberately absent: the merge guarantee is
				// per incarnation (a reborn merger re-levels only at the
				// next announcement round), and the daemon restart path is
				// out of scope here. Burn the rng draw to keep the
				// schedule shape aligned with the other chaos suites.
				_ = rng.Intn(2)
			case 2: // split one ring
				x.splitRing(rng.Intn(shards), rng)
			case 3: // heal one ring
				x.healRing(rng.Intn(shards))
			default: // traffic burst: sender-routed, mixed Agreed/Safe
				for i := 0; i < 1+rng.Intn(4); i++ {
					svc := evs.Agreed
					if rng.Intn(2) == 0 {
						svc = evs.Safe
					}
					g := res.Groups[rng.Intn(ngroups)]
					if live := x.liveNodes(); len(live) > 0 {
						x.submitMsg(live[rng.Intn(len(live))], g, "x", svc)
					}
				}
			}
		}
		// Keep traffic flowing at the migrating group through the handoff
		// window, so the buffer-and-replay path is actually exercised.
		if migStep >= 0 && s >= migStep && s <= migStep+3 {
			if live := x.liveNodes(); len(live) > 0 {
				x.submitMsg(live[rng.Intn(len(live))], gM, "x", evs.Agreed)
				if !migSubmitted && s > migStep {
					submitBegin()
				}
			}
		}
		x.run(durs[s])
	}

	// Phase 3: stop all faults, converge every ring, drain the merge, and
	// make sure a migration actually ran even on seeds whose schedule kept
	// the source ring split through the whole window.
	for _, h := range x.hs {
		h.faultsOn = false
	}
	for r := range x.hs {
		x.healRing(r)
	}
	for r, h := range x.hs {
		if !h.waitConverged(20 * time.Second) {
			detail := fmt.Sprintf("ring %d live machines did not converge after heal:", r)
			for _, id := range h.liveIDs() {
				m := h.machines[id]
				detail += fmt.Sprintf(" %d=%v/%v", id, m.State(), m.Ring().ID)
			}
			x.violate("convergence", detail)
			return finishXRing(res, x)
		}
	}
	if !x.settle(30 * time.Second) {
		x.violate("merge-liveness", x.stallDetail("post-heal drain"))
		return finishXRing(res, x)
	}
	if !migSubmitted {
		submitBegin()
		x.run(time.Second)
		if !x.settle(20 * time.Second) {
			x.violate("merge-liveness", x.stallDetail("fallback migration drain"))
			return finishXRing(res, x)
		}
	}

	// A Begin that straddled the forced partition leaves damage the merge
	// layer cannot repair by itself: the component that never ordered the
	// Begin keeps the old route, and a member that ordered it but whose
	// required acks closed in the OTHER component stays open forever (the
	// closed members have nothing left to re-announce). The operator's
	// remedy for both is re-issuing the Migrate on the group's old ring:
	// not-yet-flipped members run the normal flow, already-closed members
	// join the drain with no-op flips, and stuck-open members supersede
	// their original Begin — everyone leaves closed with one agreed route.
	// The harness plays the operator here, exactly once.
	if live := x.liveNodes(); len(live) > 1 {
		damaged := false
		for _, node := range live {
			if node.table.Ring(gM) != live[0].table.Ring(gM) || node.merger.Migrating(gM) {
				damaged = true
				break
			}
		}
		if damaged {
			env, err := live[0].merger.BeginEnvelope(gM, migTo)
			if err != nil {
				panic("chaos: repair begin envelope: " + err.Error())
			}
			enc, err := env.Encode()
			if err != nil {
				panic("chaos: repair begin envelope: " + err.Error())
			}
			submitted := false
			for _, node := range live {
				if m := x.hs[migFrom].machines[node.id]; m != nil && m.Submit(enc, evs.Agreed) == nil {
					submitted = true
					break
				}
			}
			if !submitted {
				x.violate("migration", fmt.Sprintf(
					"routes for %q diverged and no live node could submit the repair Begin", gM))
			}
			x.run(time.Second)
			if !x.settle(20 * time.Second) {
				x.violate("merge-liveness", x.stallDetail("repair migration drain"))
				return finishXRing(res, x)
			}
		}
	}

	// The migration must have settled to one agreed outcome everywhere:
	// one route for the group (after the repair, if one was needed) and no
	// migration left open. Close COUNTS may differ legitimately — a
	// repair-joining member closes both the original and the repair — so
	// the result records the maximum.
	live := x.liveNodes()
	if len(live) > 0 {
		for _, node := range live {
			if node.migClosed > res.MigrationsClosed {
				res.MigrationsClosed = node.migClosed
			}
		}
		ref := live[0].table.Ring(gM)
		for _, node := range live[1:] {
			if got := node.table.Ring(gM); got != ref {
				x.violate("migration", fmt.Sprintf(
					"nodes %d and %d route %q to rings %d vs %d after heal",
					live[0].id, node.id, gM, ref, got))
			}
		}
		for _, node := range live {
			if node.merger.Migrating(gM) {
				x.violate("migration", fmt.Sprintf(
					"migration of %q still open at node %d after heal", gM, node.id))
			}
		}
	}

	// Epilogue: a post-heal burst every live node must deliver in the
	// identical global order, with nothing lost and nothing duplicated —
	// the re-leveling guarantee after the frontier announcement round.
	burstE := 0
	for i := 0; i < 4+rng.Intn(4); i++ {
		g := res.Groups[rng.Intn(ngroups)]
		svc := evs.Agreed
		if rng.Intn(2) == 0 {
			svc = evs.Safe
		}
		if live := x.liveNodes(); len(live) > 0 {
			if x.submitMsg(live[rng.Intn(len(live))], g, "e", svc) {
				burstE++
			}
		}
	}
	if !x.settle(20 * time.Second) {
		x.violate("merge-liveness", x.stallDetail("epilogue burst did not drain"))
		return finishXRing(res, x)
	}

	epilogue := make(map[evs.ProcID][]string)
	for _, node := range x.liveNodes() {
		for _, p := range node.global {
			if strings.Contains(p, "/e-") {
				epilogue[node.id] = append(epilogue[node.id], p)
			}
		}
	}
	x.checkEqualStreams("global-order", epilogue)
	if live := x.liveNodes(); len(live) > 0 {
		if got := len(epilogue[live[0].id]); got != burstE {
			x.violate("global-loss", fmt.Sprintf(
				"epilogue burst: %d accepted, %d delivered globally", burstE, got))
		}
	}
	// Exactly-once across the whole run, migration handoff included: no
	// payload may appear twice in any node's global stream.
	for _, node := range x.nodes {
		seen := make(map[string]bool, len(node.global))
		for _, p := range node.global {
			if seen[p] {
				x.violate("global-dup", fmt.Sprintf(
					"node %d delivered %q twice", node.id, p))
				break
			}
			seen[p] = true
		}
	}

	// Per-ring EVS invariants still hold underneath the merge.
	for r, h := range x.hs {
		h.advance(2 * time.Second)
		x.feed()
		for _, v := range checkInvariants(h.logs) {
			res.PerRing[r].Violations = append(res.PerRing[r].Violations, v)
			x.violate(v.Invariant, fmt.Sprintf("ring %d: %s", r, v.Detail))
		}
	}
	return finishXRing(res, x)
}

// stallDetail snapshots every live merger's pending state for a
// merge-liveness violation message.
func (x *xrun) stallDetail(what string) string {
	detail := what + ":"
	for _, n := range x.nodes {
		if n.dead {
			continue
		}
		detail += fmt.Sprintf(" node%d{pending=%d ctl=%d", n.id, n.merger.Pending(), len(n.pending))
		for r := range x.hs {
			detail += fmt.Sprintf(" f%d=%d", r, n.merger.Frontier(r))
		}
		detail += "}"
	}
	return detail
}

func finishXRing(res *XRingResult, x *xrun) *XRingResult {
	for r, h := range x.hs {
		finish(res.PerRing[r], h)
		res.Submitted += res.PerRing[r].Submitted
		res.Delivered += res.PerRing[r].Delivered
	}
	res.GlobalLogs = make([][]string, len(x.nodes))
	for i, n := range x.nodes {
		res.GlobalLogs[i] = n.global
	}
	return res
}
