// Package faults is the unified fault-injection subsystem: a deterministic,
// seed-replayable engine that decides, per packet, whether a frame is
// dropped, delayed, or duplicated. One Injector serves every packet path in
// the repository — the simnet discrete-event switch, the in-memory
// transport Hub, and the real UDP transport — so experiments, examples,
// and chaos tests all exercise the same code.
//
// Fault behavior is declared as a Plan of Rules. A Rule selects packets
// (by sender, receiver, frame class, custom predicate, and an activity
// window) and applies a Model: i.i.d. loss, bursty Gilbert–Elliott loss,
// duplication, delay/jitter (which reorders), or a runtime-controlled
// Partition (symmetric sides plus asymmetric one-way link cuts). Rules
// compose in plan order; an earlier drop short-circuits later rules.
//
// Every Rule draws from its own random stream derived from the Injector
// seed, so a run's fault pattern is a pure function of (seed, packet
// sequence). The chaos harness (internal/faults/chaos) exploits this to
// replay any failing run from its printed seed; see Seeds and ReplaySeed
// for the FAULTS_SEED test override.
package faults

import (
	"math/rand"
	"sync"
	"time"

	"accelring/internal/evs"
)

// Class selects frame classes a rule applies to, as a bitmask.
type Class uint8

const (
	// ClassData matches data-channel frames (multicasts: application data
	// and membership joins/commits sent to all).
	ClassData Class = 1 << iota
	// ClassToken matches token-channel frames (unicasts).
	ClassToken

	// ClassAll matches every frame.
	ClassAll = ClassData | ClassToken
)

// Packet is the injector's view of one frame about to be delivered (or
// sent) on some path. Frame is read-only.
type Packet struct {
	// From and To identify the link's endpoints.
	From, To evs.ProcID
	// Token reports the frame class (token channel vs data channel).
	Token bool
	// Size is the frame (or modeled wire) size in bytes.
	Size int
	// Frame is the encoded frame, for content-sensitive predicates.
	Frame []byte
}

// Class returns the packet's frame class as a bitmask value.
func (p Packet) Class() Class {
	if p.Token {
		return ClassToken
	}
	return ClassData
}

// Decision is the injector's verdict for one packet. The zero value means
// "deliver one copy immediately".
type Decision struct {
	// Drop discards the packet (Extra copies created by earlier rules are
	// discarded with it).
	Drop bool
	// Delay defers the primary copy's delivery. Deliveries are not
	// re-serialized afterwards, so delayed packets reorder.
	Delay time.Duration
	// Extra holds the delivery delays of duplicated copies.
	Extra []time.Duration
}

// Model is one fault behavior. Apply folds the model's effect for packet p
// into d and returns the result. rng is the owning rule's private
// deterministic stream; Apply runs under the Injector's lock, so stateful
// models need no extra synchronization of their per-rule state.
type Model interface {
	Apply(rng *rand.Rand, p Packet, d Decision) Decision
}

// Rule applies a Model to the packets selected by its match clauses.
type Rule struct {
	// Name labels the rule in counters (defaults to "rule<i>").
	Name string
	// From and To restrict the rule to one sender / one receiver; zero
	// matches any.
	From, To evs.ProcID
	// Classes restricts the frame classes; zero means ClassAll.
	Classes Class
	// After and Until bound the rule's activity window, measured from the
	// injector's start. Zero After means "from the beginning"; zero Until
	// means "forever".
	After, Until time.Duration
	// Match, when set, is an additional custom predicate.
	Match func(p Packet) bool
	// Model is the fault behavior applied to matched packets.
	Model Model
}

func (r *Rule) matches(now time.Duration, p Packet) bool {
	if now < r.After || (r.Until > 0 && now >= r.Until) {
		return false
	}
	if r.From != 0 && r.From != p.From {
		return false
	}
	if r.To != 0 && r.To != p.To {
		return false
	}
	if c := r.Classes; c != 0 && c&p.Class() == 0 {
		return false
	}
	return r.Match == nil || r.Match(p)
}

// Plan is an ordered set of fault rules.
type Plan struct {
	Rules []Rule
}

// Add appends a rule and returns the plan for chaining.
func (pl *Plan) Add(r Rule) *Plan {
	pl.Rules = append(pl.Rules, r)
	return pl
}

// Loss drops each matched packet independently with probability P.
type Loss struct {
	// P is the drop probability in [0, 1].
	P float64
}

// Apply implements Model.
func (l Loss) Apply(rng *rand.Rand, _ Packet, d Decision) Decision {
	if rng.Float64() < l.P {
		d.Drop = true
	}
	return d
}

// GilbertElliott is the classic two-state bursty-loss model: the link
// flips between a good and a bad state with per-packet transition
// probabilities, and drops with a state-dependent probability. It models
// the correlated loss bursts of overflowing switch buffers, which i.i.d.
// loss cannot reproduce. The zero state is good.
type GilbertElliott struct {
	// PGoodBad and PBadGood are the per-packet transition probabilities.
	PGoodBad, PBadGood float64
	// LossGood and LossBad are the drop probabilities in each state
	// (typically LossGood ≈ 0, LossBad ≫ 0).
	LossGood, LossBad float64

	bad bool
}

// Apply implements Model. GilbertElliott is stateful; use one value per
// rule and pass it by pointer.
func (g *GilbertElliott) Apply(rng *rand.Rand, _ Packet, d Decision) Decision {
	if g.bad {
		if rng.Float64() < g.PBadGood {
			g.bad = false
		}
	} else if rng.Float64() < g.PGoodBad {
		g.bad = true
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	if rng.Float64() < p {
		d.Drop = true
	}
	return d
}

// Duplicate re-delivers matched packets: with probability P it creates
// Copies extra copies, each delayed uniformly within Spread (zero Spread
// duplicates back-to-back).
type Duplicate struct {
	// P is the duplication probability in [0, 1].
	P float64
	// Copies is the number of extra copies per duplication (default 1).
	Copies int
	// Spread bounds each copy's extra delivery delay.
	Spread time.Duration
}

// Apply implements Model.
func (du Duplicate) Apply(rng *rand.Rand, _ Packet, d Decision) Decision {
	if rng.Float64() >= du.P {
		return d
	}
	n := du.Copies
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		delay := d.Delay
		if du.Spread > 0 {
			delay += time.Duration(rng.Int63n(int64(du.Spread)))
		}
		d.Extra = append(d.Extra, delay)
	}
	return d
}

// Delay defers each matched packet by a uniform random duration in
// [Min, Max]. Because copies are not re-serialized, delayed packets
// overtake undelayed ones — UDP reordering.
type Delay struct {
	Min, Max time.Duration
}

// Apply implements Model.
func (dl Delay) Apply(rng *rand.Rand, _ Packet, d Decision) Decision {
	delay := dl.Min
	if span := dl.Max - dl.Min; span > 0 {
		delay += time.Duration(rng.Int63n(int64(span) + 1))
	}
	if delay > 0 {
		d.Delay += delay
	}
	return d
}

// Partition drops packets crossing a partition: symmetric sides (packets
// cross only within a side) plus asymmetric one-way link cuts. It is
// mutable at runtime — tests and examples split and heal the network while
// traffic flows — and safe for concurrent use.
type Partition struct {
	mu      sync.Mutex
	side    map[evs.ProcID]int
	blocked map[[2]evs.ProcID]bool
}

// NewPartition returns a healed partition (everything connected).
func NewPartition() *Partition { return &Partition{} }

// Split assigns each participant a side; packets cross only between
// participants on the same side. Participants absent from the map are on
// side zero. The map is copied.
func (pa *Partition) Split(sides map[evs.ProcID]int) {
	cp := make(map[evs.ProcID]int, len(sides))
	for id, s := range sides {
		cp[id] = s
	}
	pa.mu.Lock()
	pa.side = cp
	pa.mu.Unlock()
}

// Heal reconnects everything: sides collapse to one and all one-way
// blocks are lifted.
func (pa *Partition) Heal() {
	pa.mu.Lock()
	pa.side = nil
	pa.blocked = nil
	pa.mu.Unlock()
}

// Block cuts the directed link from → to (asymmetric loss: from's packets
// never reach to, while to's packets still reach from).
func (pa *Partition) Block(from, to evs.ProcID) {
	pa.mu.Lock()
	if pa.blocked == nil {
		pa.blocked = make(map[[2]evs.ProcID]bool)
	}
	pa.blocked[[2]evs.ProcID{from, to}] = true
	pa.mu.Unlock()
}

// Unblock lifts a directed cut.
func (pa *Partition) Unblock(from, to evs.ProcID) {
	pa.mu.Lock()
	delete(pa.blocked, [2]evs.ProcID{from, to})
	pa.mu.Unlock()
}

// Apply implements Model.
func (pa *Partition) Apply(_ *rand.Rand, p Packet, d Decision) Decision {
	pa.mu.Lock()
	cross := pa.side[p.From] != pa.side[p.To] || pa.blocked[[2]evs.ProcID{p.From, p.To}]
	pa.mu.Unlock()
	if cross {
		d.Drop = true
	}
	return d
}
