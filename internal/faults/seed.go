package faults

import (
	"os"
	"strconv"
	"strings"
)

// SeedEnv is the environment variable that overrides the seeds chaos
// tests run. It holds one or more comma-separated int64 seeds:
//
//	FAULTS_SEED=42 go test -run TestChaos ./...
//
// letting a seed printed by a CI failure replay deterministically on a
// developer machine.
const SeedEnv = "FAULTS_SEED"

// TB is the subset of testing.TB the seed utilities need; *testing.T and
// *testing.B satisfy it. Declaring the subset here keeps package faults
// (linked into examples and binaries) from importing package testing.
type TB interface {
	Helper()
	Logf(format string, args ...any)
}

// Seeds returns the seeds a chaos test should run: the SeedEnv override
// when set and parseable, otherwise the given defaults.
func Seeds(defaults ...int64) []int64 {
	v := os.Getenv(SeedEnv)
	if v == "" {
		return defaults
	}
	var out []int64
	for _, f := range strings.Split(v, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		s, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return defaults
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return defaults
	}
	return out
}

// ReplaySeed records how to replay the chaos run driven by seed and
// returns the seed unchanged. Call it at the top of every seeded subtest
// so a failure's log carries its own reproduction command.
func ReplaySeed(tb TB, seed int64) int64 {
	tb.Helper()
	tb.Logf("faults: seed %d (replay locally with %s=%d go test -run <TestName>)",
		seed, SeedEnv, seed)
	return seed
}
