package wire

import (
	"bytes"
	"testing"

	"accelring/internal/evs"
)

// Fuzz targets: decoders must never panic, and anything that decodes must
// re-encode to a frame that decodes identically (canonical round trip).

func FuzzDecodeToken(f *testing.F) {
	seed := Token{
		RingID: evs.ViewID{Rep: 1, Seq: 2}, TokenSeq: 3, Round: 4,
		Seq: 5, Aru: 4, AruID: 1, Fcc: 6, Rtr: []uint64{1, 2},
	}
	f.Add(seed.AppendTo(nil))
	f.Add([]byte{})
	f.Add([]byte{0xAC, 0x47, 1, 1})
	f.Fuzz(func(t *testing.T, b []byte) {
		tok, err := DecodeToken(b)
		if err != nil {
			return
		}
		re, err := DecodeToken(tok.AppendTo(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Seq != tok.Seq || re.Aru != tok.Aru || re.RingID != tok.RingID ||
			re.Fcc != tok.Fcc || len(re.Rtr) != len(tok.Rtr) {
			t.Fatalf("round trip mismatch: %+v vs %+v", re, tok)
		}
	})
}

func FuzzDecodeData(f *testing.F) {
	seed := Data{
		RingID: evs.ViewID{Rep: 1, Seq: 2}, Seq: 3, Sender: 4, Round: 5,
		Service: evs.Agreed, Flags: FlagPostToken, Payload: []byte("payload"),
	}
	f.Add(seed.AppendTo(nil))
	f.Add([]byte{0xAC, 0x47, 1, 2})
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeData(b)
		if err != nil {
			return
		}
		re, err := DecodeData(d.AppendTo(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Seq != d.Seq || re.Sender != d.Sender || re.Service != d.Service ||
			re.Flags != d.Flags || !bytes.Equal(re.Payload, d.Payload) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzDecodeJoin(f *testing.F) {
	seed := Join{Sender: 1, Alive: []evs.ProcID{1, 2}, Failed: []evs.ProcID{3},
		RingSeq: 9, Attempt: 2}
	f.Add(seed.AppendTo(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		j, err := DecodeJoin(b)
		if err != nil {
			return
		}
		re, err := DecodeJoin(j.AppendTo(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Sender != j.Sender || re.RingSeq != j.RingSeq ||
			len(re.Alive) != len(j.Alive) || len(re.Failed) != len(j.Failed) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzDecodeCommit(f *testing.F) {
	seed := Commit{
		NewRing:  evs.NewConfiguration(evs.ViewID{Rep: 1, Seq: 3}, []evs.ProcID{1, 2}),
		Seq:      4,
		Rotation: 1,
		Info: []CommitInfo{
			{PID: 1, OldRing: evs.ViewID{Rep: 1, Seq: 2}, Aru: 5, HighSeq: 6, Received: true},
			{PID: 2},
		},
	}
	f.Add(seed.AppendTo(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := DecodeCommit(b)
		if err != nil {
			return
		}
		re, err := DecodeCommit(c.AppendTo(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.NewRing.ID != c.NewRing.ID || re.Rotation != c.Rotation ||
			len(re.Info) != len(c.Info) {
			t.Fatal("round trip mismatch")
		}
	})
}
