package wire

import (
	"bytes"
	"testing"

	"accelring/internal/evs"
)

// Fuzz targets: decoders must never panic, and anything that decodes must
// re-encode to a frame that decodes identically (canonical round trip).

func FuzzDecodeToken(f *testing.F) {
	seed := Token{
		RingID: evs.ViewID{Rep: 1, Seq: 2}, TokenSeq: 3, Round: 4,
		Seq: 5, Aru: 4, AruID: 1, Fcc: 6, Rtr: []uint64{1, 2},
	}
	f.Add(seed.AppendTo(nil))
	f.Add([]byte{})
	f.Add([]byte{0xAC, 0x47, 1, 1})
	f.Fuzz(func(t *testing.T, b []byte) {
		tok, err := DecodeToken(b)
		if err != nil {
			return
		}
		re, err := DecodeToken(tok.AppendTo(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Seq != tok.Seq || re.Aru != tok.Aru || re.RingID != tok.RingID ||
			re.Fcc != tok.Fcc || len(re.Rtr) != len(tok.Rtr) {
			t.Fatalf("round trip mismatch: %+v vs %+v", re, tok)
		}
	})
}

func FuzzDecodeData(f *testing.F) {
	seed := Data{
		RingID: evs.ViewID{Rep: 1, Seq: 2}, Seq: 3, Sender: 4, Round: 5,
		Service: evs.Agreed, Flags: FlagPostToken, Payload: []byte("payload"),
	}
	f.Add(seed.AppendTo(nil))
	f.Add([]byte{0xAC, 0x47, 1, 2})
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeData(b)
		if err != nil {
			return
		}
		re, err := DecodeData(d.AppendTo(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Seq != d.Seq || re.Sender != d.Sender || re.Service != d.Service ||
			re.Flags != d.Flags || !bytes.Equal(re.Payload, d.Payload) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecodeDataAlias exercises the zero-copy scratch decode: DecodeFrom
// must never panic, its Payload must alias the input frame (not a copy),
// and reusing one scratch across decodes of different frames must not let
// state from an earlier decode leak into a later one.
func FuzzDecodeDataAlias(f *testing.F) {
	seed := Data{
		RingID: evs.ViewID{Rep: 1, Seq: 2}, Seq: 3, Sender: 4, Round: 5,
		Service: evs.Agreed, Flags: FlagPostToken, Payload: []byte("payload"),
	}
	f.Add(seed.AppendTo(nil))
	big := Data{
		RingID: evs.ViewID{Rep: 9, Seq: 9}, Seq: 1 << 40, Sender: 200,
		Round: 7, Service: evs.Safe, Payload: bytes.Repeat([]byte{0xEE}, 1350),
	}
	f.Add(big.AppendTo(nil))
	f.Add([]byte{0xAC, 0x47, 1, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		var scratch Data
		// Poison the scratch so a decode that forgets to overwrite a field
		// shows up as leaked state below.
		scratch.Seq, scratch.Sender, scratch.Flags = ^uint64(0), ^evs.ProcID(0), 0xFF
		scratch.Payload = []byte("stale-payload-from-a-previous-frame")
		if err := scratch.DecodeFrom(b); err != nil {
			return
		}
		want, err := DecodeData(b)
		if err != nil {
			t.Fatalf("DecodeData rejects a frame DecodeFrom accepted: %v", err)
		}
		if scratch.Seq != want.Seq || scratch.Sender != want.Sender ||
			scratch.Service != want.Service || scratch.Flags != want.Flags ||
			scratch.RingID != want.RingID || scratch.Round != want.Round ||
			!bytes.Equal(scratch.Payload, want.Payload) {
			t.Fatalf("scratch decode diverges from copying decode: %+v vs %+v", scratch, want)
		}
		// The zero-copy contract: a non-empty payload aliases the frame, so
		// mutating the frame must show through the decoded payload.
		if len(scratch.Payload) > 0 {
			orig := scratch.Payload[0]
			b[len(b)-len(scratch.Payload)] ^= 0xFF
			if scratch.Payload[0] != orig^0xFF {
				t.Fatal("DecodeFrom copied the payload; it must alias the frame")
			}
			b[len(b)-len(scratch.Payload)] = orig
		}
	})
}

func FuzzDecodeJoin(f *testing.F) {
	seed := Join{Sender: 1, Alive: []evs.ProcID{1, 2}, Failed: []evs.ProcID{3},
		RingSeq: 9, Attempt: 2}
	f.Add(seed.AppendTo(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		j, err := DecodeJoin(b)
		if err != nil {
			return
		}
		re, err := DecodeJoin(j.AppendTo(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Sender != j.Sender || re.RingSeq != j.RingSeq ||
			len(re.Alive) != len(j.Alive) || len(re.Failed) != len(j.Failed) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzDecodeCommit(f *testing.F) {
	seed := Commit{
		NewRing:  evs.NewConfiguration(evs.ViewID{Rep: 1, Seq: 3}, []evs.ProcID{1, 2}),
		Seq:      4,
		Rotation: 1,
		Info: []CommitInfo{
			{PID: 1, OldRing: evs.ViewID{Rep: 1, Seq: 2}, Aru: 5, HighSeq: 6, Received: true},
			{PID: 2},
		},
	}
	f.Add(seed.AppendTo(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := DecodeCommit(b)
		if err != nil {
			return
		}
		re, err := DecodeCommit(c.AppendTo(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.NewRing.ID != c.NewRing.ID || re.Rotation != c.Rotation ||
			len(re.Info) != len(c.Info) {
			t.Fatal("round trip mismatch")
		}
	})
}
