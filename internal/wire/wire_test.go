package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"accelring/internal/evs"
)

func TestTokenRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		tok  Token
	}{
		{"zero", Token{}},
		{"basic", Token{
			RingID:   evs.ViewID{Rep: 7, Seq: 3},
			TokenSeq: 42,
			Round:    9,
			Seq:      1000,
			Aru:      950,
			AruID:    7,
			Fcc:      120,
		}},
		{"with rtr", Token{
			RingID: evs.ViewID{Rep: 1, Seq: 1},
			Seq:    55,
			Rtr:    []uint64{3, 9, 12, 40},
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			enc := tc.tok.AppendTo(nil)
			if len(enc) != tc.tok.EncodedLen() {
				t.Fatalf("EncodedLen = %d, actual %d", tc.tok.EncodedLen(), len(enc))
			}
			got, err := DecodeToken(enc)
			if err != nil {
				t.Fatalf("DecodeToken: %v", err)
			}
			if !reflect.DeepEqual(*got, tc.tok) && !(len(got.Rtr) == 0 && len(tc.tok.Rtr) == 0) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, tc.tok)
			}
		})
	}
}

func TestTokenAppendToReusesBuffer(t *testing.T) {
	tok := Token{Seq: 5}
	prefix := []byte("prefix")
	out := tok.AppendTo(prefix)
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("AppendTo did not preserve prefix")
	}
	if _, err := DecodeToken(out[len(prefix):]); err != nil {
		t.Fatalf("decode after prefix: %v", err)
	}
}

func TestDataRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		d    Data
	}{
		{"agreed", Data{
			RingID: evs.ViewID{Rep: 3, Seq: 8}, Seq: 17, Sender: 3,
			Round: 4, Service: evs.Agreed, Payload: []byte("hello"),
		}},
		{"safe post-token retrans", Data{
			RingID: evs.ViewID{Rep: 1, Seq: 1}, Seq: 1, Sender: 9,
			Round: 1, Service: evs.Safe, Flags: FlagPostToken | FlagRetrans,
			Payload: bytes.Repeat([]byte{0xAB}, 1350),
		}},
		{"empty payload", Data{
			RingID: evs.ViewID{Rep: 1, Seq: 1}, Seq: 2, Sender: 1,
			Round: 1, Service: evs.Reliable,
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			enc := tc.d.AppendTo(nil)
			if len(enc) != tc.d.EncodedLen() {
				t.Fatalf("EncodedLen = %d, actual %d", tc.d.EncodedLen(), len(enc))
			}
			if len(enc) != DataOverhead+len(tc.d.Payload) {
				t.Fatalf("DataOverhead mismatch: %d vs %d", len(enc), DataOverhead+len(tc.d.Payload))
			}
			got, err := DecodeData(enc)
			if err != nil {
				t.Fatalf("DecodeData: %v", err)
			}
			if got.Seq != tc.d.Seq || got.Sender != tc.d.Sender || got.Round != tc.d.Round ||
				got.Service != tc.d.Service || got.Flags != tc.d.Flags ||
				got.RingID != tc.d.RingID || !bytes.Equal(got.Payload, tc.d.Payload) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, tc.d)
			}
		})
	}
}

func TestDataFlags(t *testing.T) {
	d := Data{Flags: FlagPostToken}
	if !d.PostToken() || d.Retrans() {
		t.Fatalf("flags: post=%v retrans=%v", d.PostToken(), d.Retrans())
	}
	d.Flags = FlagRetrans
	if d.PostToken() || !d.Retrans() {
		t.Fatalf("flags: post=%v retrans=%v", d.PostToken(), d.Retrans())
	}
}

func TestJoinRoundTrip(t *testing.T) {
	j := Join{
		Sender:  5,
		Alive:   []evs.ProcID{1, 2, 5},
		Failed:  []evs.ProcID{9},
		RingSeq: 77,
		Attempt: 3,
	}
	got, err := DecodeJoin(j.AppendTo(nil))
	if err != nil {
		t.Fatalf("DecodeJoin: %v", err)
	}
	if !reflect.DeepEqual(*got, j) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, j)
	}
}

func TestJoinEmptySets(t *testing.T) {
	j := Join{Sender: 1}
	got, err := DecodeJoin(j.AppendTo(nil))
	if err != nil {
		t.Fatalf("DecodeJoin: %v", err)
	}
	if len(got.Alive) != 0 || len(got.Failed) != 0 {
		t.Fatalf("expected empty sets, got %+v", *got)
	}
}

func TestCommitRoundTrip(t *testing.T) {
	c := Commit{
		NewRing:  evs.NewConfiguration(evs.ViewID{Rep: 1, Seq: 10}, []evs.ProcID{1, 2, 3}),
		Seq:      6,
		Rotation: 2,
		Info: []CommitInfo{
			{PID: 1, OldRing: evs.ViewID{Rep: 1, Seq: 9}, Aru: 100, HighSeq: 110, HighDelivered: 100, Received: true},
			{PID: 2, OldRing: evs.ViewID{Rep: 1, Seq: 9}, Aru: 90, HighSeq: 110, HighDelivered: 88},
			{PID: 3, OldRing: evs.ViewID{Rep: 3, Seq: 4}, Aru: 5, HighSeq: 5, HighDelivered: 5, Received: true},
		},
	}
	got, err := DecodeCommit(c.AppendTo(nil))
	if err != nil {
		t.Fatalf("DecodeCommit: %v", err)
	}
	if !reflect.DeepEqual(*got, c) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, c)
	}
}

func TestPeekType(t *testing.T) {
	tok := (&Token{}).AppendTo(nil)
	d := (&Data{Service: evs.Agreed}).AppendTo(nil)
	j := (&Join{}).AppendTo(nil)
	c := (&Commit{}).AppendTo(nil)
	for _, tc := range []struct {
		b    []byte
		want FrameType
	}{{tok, FrameToken}, {d, FrameData}, {j, FrameJoin}, {c, FrameCommit}} {
		got, err := PeekType(tc.b)
		if err != nil {
			t.Fatalf("PeekType: %v", err)
		}
		if got != tc.want {
			t.Fatalf("PeekType = %v, want %v", got, tc.want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := (&Token{Rtr: []uint64{1, 2}}).AppendTo(nil)

	t.Run("truncated header", func(t *testing.T) {
		if _, err := PeekType(valid[:3]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[0] = 0xFF
		if _, err := DecodeToken(b); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), valid...)
		b[2] = 99
		if _, err := DecodeToken(b); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("wrong type", func(t *testing.T) {
		if _, err := DecodeData(valid); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		for i := headerLen; i < len(valid); i++ {
			if _, err := DecodeToken(valid[:i]); err == nil {
				t.Fatalf("decode of %d-byte prefix succeeded", i)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		b := append(append([]byte(nil), valid...), 0)
		if _, err := DecodeToken(b); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
	t.Run("huge rtr count", func(t *testing.T) {
		tok := Token{}
		b := tok.AppendTo(nil)
		// Patch the rtr count (last 4 bytes) to exceed MaxRtr.
		b[len(b)-1] = 0xFF
		b[len(b)-2] = 0xFF
		if _, err := DecodeToken(b); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
	t.Run("invalid service", func(t *testing.T) {
		d := Data{Service: evs.Service(99)}
		if _, err := DecodeData(d.AppendTo(nil)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v, want ErrBadFrame", err)
		}
	})
	t.Run("oversized payload length", func(t *testing.T) {
		d := Data{Service: evs.Agreed, Payload: []byte("x")}
		b := d.AppendTo(nil)
		// Payload length field sits 5 bytes before the end (4-byte len + 1 payload byte).
		b[len(b)-5] = 0xFF
		b[len(b)-4] = 0xFF
		if _, err := DecodeData(b); err == nil {
			t.Fatal("decode with corrupt payload length succeeded")
		}
	})
}

// TestTokenQuickRoundTrip property-tests the token codec on random values.
func TestTokenQuickRoundTrip(t *testing.T) {
	f := func(rep uint32, ringSeq, round, seq, aru uint64, tokSeq, fcc uint32, aruID uint32, rtr []uint64) bool {
		if len(rtr) > MaxRtr {
			rtr = rtr[:MaxRtr]
		}
		in := Token{
			RingID:   evs.ViewID{Rep: evs.ProcID(rep), Seq: ringSeq},
			TokenSeq: tokSeq, Round: round, Seq: seq, Aru: aru,
			AruID: evs.ProcID(aruID), Fcc: fcc, Rtr: rtr,
		}
		out, err := DecodeToken(in.AppendTo(nil))
		if err != nil {
			return false
		}
		if len(in.Rtr) == 0 {
			return len(out.Rtr) == 0 && out.RingID == in.RingID && out.Seq == in.Seq &&
				out.Aru == in.Aru && out.AruID == in.AruID && out.Fcc == in.Fcc
		}
		return reflect.DeepEqual(*out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDataQuickRoundTrip property-tests the data codec on random values.
func TestDataQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(rep uint32, ringSeq, seq, round uint64, sender uint32, flags uint8, n uint16) bool {
		payload := make([]byte, int(n))
		rng.Read(payload)
		in := Data{
			RingID: evs.ViewID{Rep: evs.ProcID(rep), Seq: ringSeq},
			Seq:    seq, Sender: evs.ProcID(sender), Round: round,
			Service: evs.Service(1 + rng.Intn(5)), Flags: flags, Payload: payload,
		}
		out, err := DecodeData(in.AppendTo(nil))
		if err != nil {
			return false
		}
		return out.Seq == in.Seq && out.Sender == in.Sender && out.Round == in.Round &&
			out.Service == in.Service && out.Flags == in.Flags &&
			out.RingID == in.RingID && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeRandomGarbage ensures decoders never panic on arbitrary bytes.
func TestDecodeRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(256))
		rng.Read(b)
		// Occasionally plant a valid header so body parsing is exercised.
		if len(b) >= 4 && rng.Intn(2) == 0 {
			b[0], b[1], b[2], b[3] = 0xAC, 0x47, 1, byte(1+rng.Intn(4))
		}
		DecodeToken(b)
		DecodeData(b)
		DecodeJoin(b)
		DecodeCommit(b)
	}
}

func BenchmarkEncodeData1350(b *testing.B) {
	d := Data{RingID: evs.ViewID{Rep: 1, Seq: 1}, Seq: 1, Sender: 1, Round: 1,
		Service: evs.Agreed, Payload: make([]byte, 1350)}
	buf := make([]byte, 0, d.EncodedLen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = d.AppendTo(buf[:0])
	}
}

func BenchmarkDecodeData1350(b *testing.B) {
	d := Data{RingID: evs.ViewID{Rep: 1, Seq: 1}, Seq: 1, Sender: 1, Round: 1,
		Service: evs.Agreed, Payload: make([]byte, 1350)}
	enc := d.AppendTo(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeData(enc); err != nil {
			b.Fatal(err)
		}
	}
}
