package wire

import (
	"bytes"
	"testing"
)

func TestAuthRoundTrip(t *testing.T) {
	a := NewAuth([]byte("secret"))
	frame := []byte("hello ring")
	signed := a.AppendMAC(nil, frame)
	if len(signed) != len(frame)+MacLen {
		t.Fatalf("signed length = %d, want %d", len(signed), len(frame)+MacLen)
	}
	body, ok := a.Verify(signed)
	if !ok {
		t.Fatal("verify rejected a genuine frame")
	}
	if !bytes.Equal(body, frame) {
		t.Fatalf("verify returned %q, want %q", body, frame)
	}
}

func TestAuthRejectsTampering(t *testing.T) {
	a := NewAuth([]byte("secret"))
	signed := a.AppendMAC(nil, []byte("payload"))

	for name, mutate := range map[string]func([]byte) []byte{
		"flip payload bit": func(b []byte) []byte { b[0] ^= 1; return b },
		"flip tag bit":     func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"truncate tag":     func(b []byte) []byte { return b[:len(b)-1] },
		"too short":        func(b []byte) []byte { return b[:MacLen-1] },
		"empty":            func([]byte) []byte { return nil },
	} {
		forged := mutate(append([]byte(nil), signed...))
		if _, ok := a.Verify(forged); ok {
			t.Errorf("%s: forged frame accepted", name)
		}
	}
}

func TestAuthWrongKeyRejected(t *testing.T) {
	signed := NewAuth([]byte("key-a")).AppendMAC(nil, []byte("payload"))
	if _, ok := NewAuth([]byte("key-b")).Verify(signed); ok {
		t.Fatal("frame signed with key-a verified under key-b")
	}
}

func TestAuthNilPassthrough(t *testing.T) {
	var a *Auth
	if a != NewAuth(nil) {
		t.Fatal("NewAuth(nil) must return nil")
	}
	frame := []byte("plain")
	if got := a.AppendMAC(nil, frame); !bytes.Equal(got, frame) {
		t.Fatalf("nil AppendMAC altered frame: %q", got)
	}
	body, ok := a.Verify(frame)
	if !ok || !bytes.Equal(body, frame) {
		t.Fatalf("nil Verify = %q, %v", body, ok)
	}
	if a.Overhead() != 0 || NewAuth([]byte("k")).Overhead() != MacLen {
		t.Fatal("Overhead mismatch")
	}
}

func TestDeriveKeyLabelsDiffer(t *testing.T) {
	master := []byte("master")
	k1 := DeriveKey(master, "ring0")
	k2 := DeriveKey(master, "ring1")
	if bytes.Equal(k1, k2) {
		t.Fatal("different labels derived the same key")
	}
	if !bytes.Equal(k1, DeriveKey(master, "ring0")) {
		t.Fatal("derivation is not deterministic")
	}
}
