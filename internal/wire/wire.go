// Package wire defines the binary encoding of every frame exchanged by the
// ring protocol: regular tokens, data messages, membership join messages,
// and commit tokens.
//
// All integers are big-endian. Every frame begins with a four-byte header
// (magic, protocol version, frame type). Encoders are append-style so
// callers can reuse buffers; decoders validate lengths and never panic on
// truncated or corrupt input.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"accelring/internal/evs"
)

// Magic identifies accelring frames on the wire.
const Magic uint16 = 0xAC47

// Version is the wire protocol version emitted by this implementation.
const Version uint8 = 1

// FrameType discriminates the frame kinds carried on the wire.
type FrameType uint8

const (
	// FrameToken is the regular-token frame (ordering protocol).
	FrameToken FrameType = iota + 1
	// FrameData is a data (application message) frame.
	FrameData
	// FrameJoin is a membership join/attempt frame.
	FrameJoin
	// FrameCommit is a membership commit-token frame.
	FrameCommit
)

func (t FrameType) String() string {
	switch t {
	case FrameToken:
		return "token"
	case FrameData:
		return "data"
	case FrameJoin:
		return "join"
	case FrameCommit:
		return "commit"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// Limits protect decoders from hostile or corrupt length fields.
const (
	// MaxRtr is the maximum number of retransmission requests one token
	// may carry.
	MaxRtr = 4096
	// MaxPayload is the maximum data-message payload, sized to fit a
	// 64 KiB UDP datagram with headers to spare.
	MaxPayload = 64 * 1024
	// MaxMembers is the maximum configuration size.
	MaxMembers = 1024
)

// Decode errors. Callers match with errors.Is.
var (
	ErrTruncated = errors.New("wire: truncated frame")
	ErrBadMagic  = errors.New("wire: bad magic")
	ErrBadFrame  = errors.New("wire: malformed frame")
	ErrVersion   = errors.New("wire: unsupported protocol version")
)

const headerLen = 4

func appendHeader(b []byte, t FrameType) []byte {
	b = binary.BigEndian.AppendUint16(b, Magic)
	b = append(b, Version, byte(t))
	return b
}

// PeekType returns the frame type of an encoded frame without decoding it.
func PeekType(b []byte) (FrameType, error) {
	if len(b) < headerLen {
		return 0, ErrTruncated
	}
	if binary.BigEndian.Uint16(b) != Magic {
		return 0, ErrBadMagic
	}
	if b[2] != Version {
		return 0, fmt.Errorf("%w: %d", ErrVersion, b[2])
	}
	return FrameType(b[3]), nil
}

// reader is a cursor over an encoded frame body.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(r.b)-r.off)
	}
	return nil
}

// init points r at the frame's body after validating the header. It exists
// separately from newReader so the hot-path DecodeFrom methods can use a
// stack-allocated reader value (a heap-returned *reader costs an
// allocation per decoded frame).
func (r *reader) init(b []byte, want FrameType) error {
	t, err := PeekType(b)
	if err != nil {
		return err
	}
	if t != want {
		return fmt.Errorf("%w: got %v, want %v", ErrBadFrame, t, want)
	}
	r.b = b
	r.off = headerLen
	r.err = nil
	return nil
}

func newReader(b []byte, want FrameType) (*reader, error) {
	r := new(reader)
	if err := r.init(b, want); err != nil {
		return nil, err
	}
	return r, nil
}

func appendViewID(b []byte, v evs.ViewID) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(v.Rep))
	b = binary.BigEndian.AppendUint64(b, v.Seq)
	return b
}

func (r *reader) viewID() evs.ViewID {
	rep := r.u32()
	seq := r.u64()
	return evs.ViewID{Rep: evs.ProcID(rep), Seq: seq}
}

// Token is the regular token circulating the ring. It carries everything
// needed to order new messages, detect loss, and run flow control.
type Token struct {
	// RingID identifies the configuration this token belongs to. Tokens
	// from other rings are discarded.
	RingID evs.ViewID
	// TokenSeq increases by one on every hop, so a participant can discard
	// duplicate tokens caused by token retransmission.
	TokenSeq uint32
	// Round counts complete rotations; the representative increments it.
	Round uint64
	// Seq is the highest sequence number assigned to any message. The
	// receiver may initiate messages starting at Seq+1.
	Seq uint64
	// Aru (all-received-up-to) is the highest sequence number such that
	// every participant is known to have received all messages at or below
	// it, per the lowering/raising rules of the protocol.
	Aru uint64
	// AruID is the participant that last lowered Aru, or 0 if Aru is not
	// currently lowered. Only AruID may raise a lowered Aru.
	AruID evs.ProcID
	// Fcc (flow control count) is the total number of multicasts —
	// new messages plus retransmissions — sent during the last rotation.
	Fcc uint32
	// Rtr lists sequence numbers that some participant is missing and that
	// must be retransmitted.
	Rtr []uint64
}

// AppendTo appends the encoded token to b and returns the extended slice.
func (t *Token) AppendTo(b []byte) []byte {
	b = appendHeader(b, FrameToken)
	b = appendViewID(b, t.RingID)
	b = binary.BigEndian.AppendUint32(b, t.TokenSeq)
	b = binary.BigEndian.AppendUint64(b, t.Round)
	b = binary.BigEndian.AppendUint64(b, t.Seq)
	b = binary.BigEndian.AppendUint64(b, t.Aru)
	b = binary.BigEndian.AppendUint32(b, uint32(t.AruID))
	b = binary.BigEndian.AppendUint32(b, t.Fcc)
	b = binary.BigEndian.AppendUint32(b, uint32(len(t.Rtr)))
	for _, s := range t.Rtr {
		b = binary.BigEndian.AppendUint64(b, s)
	}
	return b
}

// EncodedLen returns the exact encoded size of the token.
func (t *Token) EncodedLen() int { return headerLen + 12 + 4 + 8*3 + 4 + 4 + 4 + 8*len(t.Rtr) }

// DecodeToken parses an encoded token frame into a fresh Token.
func DecodeToken(b []byte) (*Token, error) {
	var t Token
	if err := t.DecodeFrom(b); err != nil {
		return nil, err
	}
	return &t, nil
}

// DecodeFrom parses an encoded token frame into t, reusing t's Rtr backing
// array when it has the capacity (the scratch-decode hot path: one Token
// per receiver, reused for every frame). Nothing in the decoded token
// aliases b, so the frame buffer may be recycled as soon as DecodeFrom
// returns. On error t is left in an unspecified state.
func (t *Token) DecodeFrom(b []byte) error {
	var r reader
	if err := r.init(b, FrameToken); err != nil {
		return err
	}
	t.RingID = r.viewID()
	t.TokenSeq = r.u32()
	t.Round = r.u64()
	t.Seq = r.u64()
	t.Aru = r.u64()
	t.AruID = evs.ProcID(r.u32())
	t.Fcc = r.u32()
	n := r.u32()
	if n > MaxRtr {
		return fmt.Errorf("%w: rtr count %d exceeds %d", ErrBadFrame, n, MaxRtr)
	}
	t.Rtr = t.Rtr[:0]
	for i := uint32(0); i < n; i++ {
		t.Rtr = append(t.Rtr, r.u64())
	}
	return r.done()
}

// Data flag bits.
const (
	// FlagPostToken marks a message multicast after its sender passed the
	// token for the round (used by token-priority method 2).
	FlagPostToken uint8 = 1 << iota
	// FlagRetrans marks a retransmission.
	FlagRetrans
	// FlagControl marks a protocol-internal message (membership recovery
	// traffic); it is consumed by the membership layer, never delivered to
	// applications.
	FlagControl
)

// Data is an application message multicast on the ring. The sequence number
// is final at send time: the message occupies position Seq in the total
// order of configuration RingID.
type Data struct {
	RingID  evs.ViewID
	Seq     uint64
	Sender  evs.ProcID
	Round   uint64
	Service evs.Service
	Flags   uint8
	Payload []byte
}

// PostToken reports whether the message was sent after the token.
func (d *Data) PostToken() bool { return d.Flags&FlagPostToken != 0 }

// Retrans reports whether the message is a retransmission.
func (d *Data) Retrans() bool { return d.Flags&FlagRetrans != 0 }

// Control reports whether the message is protocol-internal.
func (d *Data) Control() bool { return d.Flags&FlagControl != 0 }

// AppendTo appends the encoded data frame to b and returns the result.
func (d *Data) AppendTo(b []byte) []byte {
	b = appendHeader(b, FrameData)
	b = appendViewID(b, d.RingID)
	b = binary.BigEndian.AppendUint64(b, d.Seq)
	b = binary.BigEndian.AppendUint32(b, uint32(d.Sender))
	b = binary.BigEndian.AppendUint64(b, d.Round)
	b = append(b, byte(d.Service), d.Flags)
	b = binary.BigEndian.AppendUint32(b, uint32(len(d.Payload)))
	b = append(b, d.Payload...)
	return b
}

// EncodedLen returns the exact encoded size of the data frame.
func (d *Data) EncodedLen() int { return headerLen + 12 + 8 + 4 + 8 + 2 + 4 + len(d.Payload) }

// DataOverhead is the number of header bytes a data frame adds on top of
// its payload.
const DataOverhead = headerLen + 12 + 8 + 4 + 8 + 2 + 4

// DecodeData parses an encoded data frame into a fresh Data whose Payload
// is copied out of b: the returned message owns its memory, so the frame
// buffer may be recycled (or mutated) freely afterwards. This is the safe
// mode for callers that retain the decoded message indefinitely. Hot paths
// that control the frame's lifetime should use (*Data).DecodeFrom, the
// zero-copy mode.
func DecodeData(b []byte) (*Data, error) {
	var d Data
	if err := d.DecodeFrom(b); err != nil {
		return nil, err
	}
	if len(d.Payload) > 0 {
		d.Payload = append([]byte(nil), d.Payload...)
	}
	return &d, nil
}

// DecodeFrom parses an encoded data frame into d, zero-copy: d.Payload
// aliases b's payload region, no bytes are copied. Ownership rules:
//
//   - b must not be mutated or recycled (bufpool.Put) while d.Payload —
//     or anything it was handed to — is still referenced. Passing d to
//     core.Engine.HandleData transfers ownership of the payload (and
//     hence the frame) to the engine when it reports the message buffered.
//   - d itself does not retain b beyond Payload; all other fields are
//     copied out, and d may be reused as a decode scratch for the next
//     frame once the previous payload's ownership has been handed off.
//
// On error d is left in an unspecified state.
func (d *Data) DecodeFrom(b []byte) error {
	var r reader
	if err := r.init(b, FrameData); err != nil {
		return err
	}
	d.RingID = r.viewID()
	d.Seq = r.u64()
	d.Sender = evs.ProcID(r.u32())
	d.Round = r.u64()
	d.Service = evs.Service(r.u8())
	d.Flags = r.u8()
	n := r.u32()
	if n > MaxPayload {
		return fmt.Errorf("%w: payload %d exceeds %d", ErrBadFrame, n, MaxPayload)
	}
	d.Payload = r.bytes(int(n))
	if err := r.done(); err != nil {
		return err
	}
	if !d.Service.Valid() {
		return fmt.Errorf("%w: invalid service %d", ErrBadFrame, d.Service)
	}
	return nil
}

// Join is the membership message broadcast while a participant attempts to
// form a new ring. It states which participants the sender currently
// considers reachable and which it has declared failed.
type Join struct {
	// Sender is the participant broadcasting the join.
	Sender evs.ProcID
	// Alive lists participants the sender believes are reachable and
	// participating in this membership attempt (including itself).
	Alive []evs.ProcID
	// Failed lists participants the sender has declared failed; they are
	// excluded even if their joins are heard.
	Failed []evs.ProcID
	// RingSeq is the highest configuration sequence number the sender has
	// seen, so the new ring's ViewID exceeds every old one.
	RingSeq uint64
	// Attempt distinguishes successive membership attempts by the sender.
	Attempt uint32
}

func appendIDSet(b []byte, set []evs.ProcID) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(set)))
	for _, p := range set {
		b = binary.BigEndian.AppendUint32(b, uint32(p))
	}
	return b
}

func (r *reader) idSet() []evs.ProcID {
	n := r.u16()
	if int(n) > MaxMembers {
		r.err = fmt.Errorf("%w: id set %d exceeds %d", ErrBadFrame, n, MaxMembers)
		return nil
	}
	if n == 0 || r.err != nil {
		return nil
	}
	set := make([]evs.ProcID, n)
	for i := range set {
		set[i] = evs.ProcID(r.u32())
	}
	return set
}

// AppendTo appends the encoded join frame to b and returns the result.
func (j *Join) AppendTo(b []byte) []byte {
	b = appendHeader(b, FrameJoin)
	b = binary.BigEndian.AppendUint32(b, uint32(j.Sender))
	b = appendIDSet(b, j.Alive)
	b = appendIDSet(b, j.Failed)
	b = binary.BigEndian.AppendUint64(b, j.RingSeq)
	b = binary.BigEndian.AppendUint32(b, j.Attempt)
	return b
}

// DecodeJoin parses an encoded join frame.
func DecodeJoin(b []byte) (*Join, error) {
	r, err := newReader(b, FrameJoin)
	if err != nil {
		return nil, err
	}
	var j Join
	j.Sender = evs.ProcID(r.u32())
	j.Alive = r.idSet()
	j.Failed = r.idSet()
	j.RingSeq = r.u64()
	j.Attempt = r.u32()
	if err := r.done(); err != nil {
		return nil, err
	}
	return &j, nil
}

// CommitInfo is the per-member state gathered on the commit token's first
// rotation, used to plan old-ring message recovery.
type CommitInfo struct {
	// PID is the member this entry describes.
	PID evs.ProcID
	// OldRing is the member's previous regular configuration.
	OldRing evs.ViewID
	// Aru is the member's local all-received-up-to in the old ring.
	Aru uint64
	// HighSeq is the highest sequence number the member received or
	// assigned in the old ring.
	HighSeq uint64
	// HighDelivered is the highest sequence the member already delivered.
	HighDelivered uint64
	// Received is set once the member has seen the commit token.
	Received bool
}

// Commit is the membership commit token passed around the agreed new
// membership. Two full rotations commit the new ring: the first gathers
// CommitInfo, the second confirms everyone saw it.
type Commit struct {
	// NewRing is the configuration being formed.
	NewRing evs.Configuration
	// Seq orders commit token hops (duplicate suppression).
	Seq uint32
	// Rotation is 1 on the gathering rotation, 2 on the confirming one.
	Rotation uint8
	// Info has one entry per member of NewRing, in ring order.
	Info []CommitInfo
}

// AppendTo appends the encoded commit frame to b and returns the result.
func (c *Commit) AppendTo(b []byte) []byte {
	b = appendHeader(b, FrameCommit)
	b = appendViewID(b, c.NewRing.ID)
	b = appendIDSet(b, c.NewRing.Members)
	b = binary.BigEndian.AppendUint32(b, c.Seq)
	b = append(b, c.Rotation)
	b = binary.BigEndian.AppendUint16(b, uint16(len(c.Info)))
	for i := range c.Info {
		in := &c.Info[i]
		b = binary.BigEndian.AppendUint32(b, uint32(in.PID))
		b = appendViewID(b, in.OldRing)
		b = binary.BigEndian.AppendUint64(b, in.Aru)
		b = binary.BigEndian.AppendUint64(b, in.HighSeq)
		b = binary.BigEndian.AppendUint64(b, in.HighDelivered)
		var rcv byte
		if in.Received {
			rcv = 1
		}
		b = append(b, rcv)
	}
	return b
}

// DecodeCommit parses an encoded commit frame.
func DecodeCommit(b []byte) (*Commit, error) {
	r, err := newReader(b, FrameCommit)
	if err != nil {
		return nil, err
	}
	var c Commit
	id := r.viewID()
	members := r.idSet()
	c.NewRing = evs.Configuration{ID: id, Members: members}
	c.Seq = r.u32()
	c.Rotation = r.u8()
	n := r.u16()
	if int(n) > MaxMembers {
		return nil, fmt.Errorf("%w: info count %d exceeds %d", ErrBadFrame, n, MaxMembers)
	}
	c.Info = make([]CommitInfo, n)
	for i := range c.Info {
		in := &c.Info[i]
		in.PID = evs.ProcID(r.u32())
		in.OldRing = r.viewID()
		in.Aru = r.u64()
		in.HighSeq = r.u64()
		in.HighDelivered = r.u64()
		in.Received = r.u8() != 0
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return &c, nil
}
