package wire

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
)

// MacLen is the length of the truncated HMAC-SHA256 tag appended to
// authenticated frames. 16 bytes (128 bits) keeps the wire overhead small
// while leaving forgery attempts hopeless; truncating HMAC output is an
// explicitly supported use (RFC 2104 §5).
const MacLen = 16

// Auth signs and verifies frames with a truncated HMAC-SHA256 trailer. A
// nil *Auth is the "authentication off" mode: Sign and Verify pass frames
// through unchanged, so callers can hold one pointer and never branch.
//
// Methods are safe for concurrent use — each call builds its own MAC
// state from the key.
type Auth struct {
	key []byte
}

// NewAuth returns an authenticator for key, or nil when key is empty
// (authentication disabled).
func NewAuth(key []byte) *Auth {
	if len(key) == 0 {
		return nil
	}
	return &Auth{key: append([]byte(nil), key...)}
}

// Overhead returns the per-frame byte cost of authentication: MacLen when
// keyed, zero when a is nil.
func (a *Auth) Overhead() int {
	if a == nil {
		return 0
	}
	return MacLen
}

// AppendMAC appends frame followed by its authentication tag to dst and
// returns the extended slice. With a nil receiver only the frame is
// appended.
func (a *Auth) AppendMAC(dst, frame []byte) []byte {
	dst = append(dst, frame...)
	if a == nil {
		return dst
	}
	m := hmac.New(sha256.New, a.key)
	m.Write(frame)
	var sum [sha256.Size]byte
	return append(dst, m.Sum(sum[:0])[:MacLen]...)
}

// SumParts appends the authentication tag of the concatenation of parts
// to dst and returns the extended slice. It lets a caller MAC a frame
// assembled from discontiguous pieces (a per-session header plus a shared
// encode-once body) without first copying them together. With a nil
// receiver dst is returned unchanged.
func (a *Auth) SumParts(dst []byte, parts ...[]byte) []byte {
	if a == nil {
		return dst
	}
	m := hmac.New(sha256.New, a.key)
	for _, p := range parts {
		m.Write(p)
	}
	var sum [sha256.Size]byte
	return append(dst, m.Sum(sum[:0])[:MacLen]...)
}

// Verify checks the trailing tag of a received frame and returns the
// frame body with the tag stripped. The returned slice aliases frame's
// backing array (same capacity class, so bufpool recycling still works).
// A nil receiver accepts everything unchanged.
func (a *Auth) Verify(frame []byte) ([]byte, bool) {
	if a == nil {
		return frame, true
	}
	if len(frame) < MacLen {
		return nil, false
	}
	body := frame[:len(frame)-MacLen]
	m := hmac.New(sha256.New, a.key)
	m.Write(body)
	var sum [sha256.Size]byte
	tag := m.Sum(sum[:0])[:MacLen]
	if subtle.ConstantTimeCompare(tag, frame[len(frame)-MacLen:]) != 1 {
		return nil, false
	}
	return body, true
}

// DeriveKey derives a labeled subkey from a master key, so each ring of a
// sharded deployment (and the client-session layer) signs with its own
// key: DeriveKey(master, "ring3"), DeriveKey(master, "session"), …
func DeriveKey(master []byte, label string) []byte {
	m := hmac.New(sha256.New, master)
	m.Write([]byte(label))
	return m.Sum(nil)
}
