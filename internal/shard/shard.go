// Package shard multiplies a node's ordering capacity by running N
// independent Accelerated Ring instances side by side — the Multi-Ring
// scaling pattern ("Stretching Multi-Ring Paxos"): a single token ring's
// throughput is capped by one token rotation no matter how fast the hot
// path gets, but rings are independent, so running several and
// deterministically partitioning the message space across them multiplies
// aggregate throughput while each partition keeps the exact per-ring
// protocol (and therefore its ordering and safety guarantees) unchanged.
//
// The partitioning key is the group name: RingOf hashes it to a ring
// index, identically at every node, so all traffic for one group flows
// through one ring and per-group total order (and Agreed/Safe semantics
// within the group) is preserved. Messages in different groups may be
// delivered in different relative orders at different nodes — that is the
// deal sharding makes, and exactly the guarantee Spread-style systems
// scope per group anyway.
//
// Each ring instance is a full ringnode bundle — its own core.Engine,
// membership machine, and transport binding (distinct ports or hub
// endpoints per ring) — so membership incidents on one ring never stall
// the others.
package shard

import (
	"errors"
	"fmt"
	"time"

	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
)

// MaxShards bounds the ring count: sharding wins by multiplying rings a
// few times over, not by spraying hundreds of tokens through one host.
const MaxShards = 64

// RingOf maps a group name to its owning ring with a stable FNV-1a hash:
// every node computes the same ring for the same name, forever — the hash
// must never change, or a rolling upgrade would split a group across two
// rings and break its total order. The canonical definition lives with the
// group tables (group.RingOf); this is the same function.
func RingOf(groupName string, shards int) int {
	return group.RingOf(groupName, shards)
}

// RingOfClient routes client-addressed (private) traffic by the stable
// string form of an identity, spreading point-to-point load across rings
// with the same everywhere-identical guarantee as RingOf.
func RingOfClient(id string, shards int) int {
	return group.RingOf(id, shards)
}

// Config configures a shard group.
type Config struct {
	// Shards is the ring count, in [1, MaxShards].
	Shards int
	// Base is the per-ring configuration template: Self, windows,
	// priority, timeouts, tick interval, and (optionally) an Observer
	// whose registry and clock are shared by all rings. Its Transport and
	// OnEvent fields are ignored — those are per-ring.
	Base ringnode.Config
	// NewTransport opens ring r's transport binding (hub endpoint, or UDP
	// sockets on the ring's own port pair). Each ring must get its own:
	// rings are independent precisely because their frames never mix.
	NewTransport func(ring int) (transport.Transport, error)
	// OnEvent receives every ring's delivery stream, tagged with the ring
	// index. It runs on ring r's protocol goroutine: calls for different
	// rings are CONCURRENT; per-ring calls are serial. Must not block.
	OnEvent func(ring int, ev evs.Event)
	// TraceDepth sizes each ring's round tracer when Base.Observer is set
	// (0 uses obs.DefaultTraceDepth).
	TraceDepth int
}

// Group runs N ring instances behind one node.
type Group struct {
	shards int
	nodes  []*ringnode.Node
}

// Start opens every ring's transport and launches every ring instance.
// On any failure, rings already started are stopped.
func Start(cfg Config) (*Group, error) {
	if cfg.Shards <= 0 || cfg.Shards > MaxShards {
		return nil, fmt.Errorf("shard: ring count %d out of range [1, %d]", cfg.Shards, MaxShards)
	}
	if cfg.NewTransport == nil {
		return nil, errors.New("shard: nil NewTransport")
	}
	g := &Group{shards: cfg.Shards}
	for r := 0; r < cfg.Shards; r++ {
		tr, err := cfg.NewTransport(r)
		if err != nil {
			g.Stop()
			return nil, fmt.Errorf("shard: ring %d transport: %w", r, err)
		}
		ring := r
		var onEvent func(evs.Event)
		if cfg.OnEvent != nil {
			onEvent = func(ev evs.Event) { cfg.OnEvent(ring, ev) }
		}
		n, err := ringnode.Start(cfg.Base.ForRing(r, tr, onEvent, cfg.TraceDepth))
		if err != nil {
			tr.Close()
			g.Stop()
			return nil, fmt.Errorf("shard: ring %d: %w", r, err)
		}
		g.nodes = append(g.nodes, n)
	}
	return g, nil
}

// Shards returns the ring count.
func (g *Group) Shards() int { return g.shards }

// RingFor returns the ring owning a group name.
func (g *Group) RingFor(group string) int { return RingOf(group, g.shards) }

// Node returns ring r's driver (status inspection, direct submission).
func (g *Group) Node(r int) *ringnode.Node { return g.nodes[r] }

// Tracer returns ring r's round tracer (nil without an observer).
func (g *Group) Tracer(r int) *obs.RingTracer {
	if o := g.nodes[r].Observer(); o != nil {
		return o.Tracer
	}
	return nil
}

// MsgTracer returns ring r's message-lifecycle tracer (nil unless the
// base observer carried a sampling tracer).
func (g *Group) MsgTracer(r int) *obs.MsgTracer {
	return g.nodes[r].Observer().MsgTracer()
}

// Submit multicasts a payload on one ring, in that ring's total order.
// Safe for any goroutine. Callers route with RingFor so one group's
// traffic always lands on one ring.
func (g *Group) Submit(ring int, payload []byte, service evs.Service) error {
	if ring < 0 || ring >= g.shards {
		return fmt.Errorf("shard: ring %d out of range [0, %d)", ring, g.shards)
	}
	return g.nodes[ring].Submit(payload, service)
}

// SubmitAll multicasts a payload on every ring (daemon-wide control
// traffic, e.g. client disconnects that must reach every partition). The
// first error is returned, but every ring is attempted.
func (g *Group) SubmitAll(payload []byte, service evs.Service) error {
	var first error
	for _, n := range g.nodes {
		if err := n.Submit(payload, service); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WaitOperational blocks until EVERY ring is operational (or the timeout
// elapses), returning whether all made it.
func (g *Group) WaitOperational(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for _, n := range g.nodes {
		left := time.Until(deadline)
		if left <= 0 {
			left = time.Millisecond
		}
		if !n.WaitState(membership.StateOperational, left) {
			return false
		}
	}
	return true
}

// Stop stops every ring instance (closing its transport). Safe on a
// partially started group.
func (g *Group) Stop() {
	for _, n := range g.nodes {
		if n != nil {
			n.Stop()
		}
	}
}
