// Package merge gives a sharded deployment back the paper's single total
// order: a deterministic merger that consumes the per-ring Agreed/Safe
// delivery streams of a shard.Group and emits ONE globally ordered stream,
// the way "Stretching Multi-Ring Paxos" merges independent Paxos rings.
//
// # Merge order
//
// Every slotted item on ring r — group envelopes and configuration
// changes — consumes the ring's next virtual slot (front[r]+1). The
// global order is the ascending lexicographic (slot, ring) order over all
// slotted items, which the merger emits greedily: the queued head with
// the least (slot, ring) is emitted as soon as every other ring is known
// to have passed it. Because slots are assigned per ring purely from that
// ring's ordered stream contents, and every daemon sees identical
// per-ring streams, every daemon emits the identical global sequence —
// no clocks, no cross-daemon coordination.
//
// An idle ring would stall the merge (its next slot stays forever
// pending), so blocked members emit skip envelopes on a short timer —
// Multi-Ring Paxos lambda pacing. A skip is ordered on its ring like
// any message but consumes no slot: it raises the ring's virtual frontier
// to its Arg (max-merged, so duplicate or stale skips are harmless),
// telling the merge "this ring will order nothing below Arg". Claims are
// issued SkipAhead slots past the blocked head so a quiet ring does not
// need one skip per foreign message, and any blocked member of the idle
// ring may claim (blockedness is per-daemon after a partition, so a
// designated claimer could deadlock). At every regular configuration
// change each member announces its frontier with an OpFrontier anchored
// to the change itself (receivers apply Arg plus the slots they consumed
// since that change), which re-levels the frontiers of members that
// diverged while partitioned EXACTLY within one announcement round, even
// with traffic in flight.
//
// # What is globally ordered, what is per-ring
//
// Group envelopes and each ring's configuration changes are all slotted,
// so every daemon interleaves deliveries AND view changes identically in
// the healthy case. A configuration change still only affects its own
// ring's partition of the group table, and ViewChange.Ring still names
// the ring whose membership moved. During a partition the per-ring
// streams themselves diverge between components (extended virtual
// synchrony); each component's merge stays internally consistent, and the
// frontier announcements after the healing configuration change bring
// all members back to one sequence.
//
// # Live migration
//
// Migrate re-homes a group from ring A to ring B with no loss,
// duplication, or reordering:
//
//  1. An OpMigrateBegin for the group is submitted on A. At its ordered
//     emission every daemon flips the group's route to B (new sends go
//     to B) and starts buffering the group's B-traffic at emission time;
//     every member of A's configuration submits an OpMigrateAck on A.
//     Because a daemon's submissions to a ring are FIFO, its ack orders
//     after all of its pre-flip traffic for the group — the acks drain A.
//  2. When the emitted acks cover A's (possibly shrunken — a member that
//     leaves A's configuration is waived at the config change's emission)
//     required set, the migration closes AT that emission: a globally
//     ordered handoff point. The group's membership state is re-homed to
//     B's table and the buffered B-traffic is replayed into the global
//     stream right there, in its B-emission order.
//
// Every step happens at an emission point of the deterministic global
// sequence, so all daemons close the migration at the same place and
// deliver the same order. Traffic that races the route flip (a sender
// that looked up ring A just before Begin emitted elsewhere) still
// arrives on A and is delivered through the route-aware table lookup —
// never lost, though such a racing message may order after messages its
// sender submitted to B later (a one-message FIFO caveat documented in
// DESIGN §7).
package merge

import (
	"fmt"
	"sort"
	"sync"

	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/obs"
)

// DefaultSkipAhead is how many slots past the blocked head a skip claims.
// Larger values cut skip traffic on quiet rings at the cost of letting a
// quiet ring's next real message order later relative to busy rings.
const DefaultSkipAhead = 32

// skipRetryTicks is how many Wants calls a submitted skip suppresses
// re-requesting the same ring before it is considered lost and retried.
const skipRetryTicks = 8

// Out receives the merger's globally ordered output. All methods are
// invoked with the merger's lock held, serialized in global order, from
// whichever ring goroutine's push completed the emission — implementations
// must not call back into the merger synchronously and must not block.
type Out interface {
	// Deliver hands over the next globally ordered envelope (never a
	// merge-control kind). Ring is the ring the envelope was ordered on;
	// seq is the carrier message's ring sequence number (0 when the
	// pusher had none), which latency attribution uses to stamp the
	// merge stage onto sampled spans.
	Deliver(ring int, env *group.Envelope, svc evs.Service, seq uint64)
	// Config hands over a ring's configuration change at its globally
	// ordered position.
	Config(ring int, cc evs.ConfigChange)
	// SubmitAsync submits a merge-control envelope (ack, frontier
	// announcement) to a ring without blocking — implementations spawn.
	SubmitAsync(ring int, env group.Envelope)
	// Migrated reports a migration that closed at the current emission
	// point, after the group's state moved rings.
	Migrated(g string, from, to int)
}

// Config parameterizes a Merger.
type Config struct {
	Shards int
	Self   evs.ProcID
	Table  *group.ShardedTable
	Out    Out
	// SkipAhead overrides DefaultSkipAhead when > 0.
	SkipAhead uint64
	// Obs registers merge.* metrics when non-nil.
	Obs *obs.Registry
}

// item is one slotted entry of a ring's pending queue.
type item struct {
	slot uint64
	env  *group.Envelope // nil for a configuration change
	svc  evs.Service
	cc   evs.ConfigChange
	// seq is the envelope's carrier ring sequence number (0 when
	// unknown), carried through to Out.Deliver for latency attribution.
	seq uint64
}

// ringState is the merger's per-ring cursor state.
type ringState struct {
	// front is the highest virtual slot consumed on the ring, by slotted
	// items and skip claims alike. The ring will order nothing at or
	// below it, which is what lets other rings' items pass.
	front uint64
	// sinceReg counts the slots consumed since the last regular
	// configuration change was slotted on the ring. It anchors frontier
	// announcements: an OpFrontier's Arg names the announcer's front just
	// after slotting that change, so the receiver's equivalent value at
	// the announcement's ordered position is Arg + sinceReg.
	sinceReg uint64
	// queue holds slotted items not yet emitted, in stream order with
	// strictly increasing slots.
	queue []item
	// cfg is the ring's last regular configuration, applied at its
	// emission point so membership-derived merge state stays on the
	// deterministic timeline.
	cfg     evs.Configuration
	haveCfg bool
	// pendingSkipTarget/pendingSkipAge suppress duplicate skip requests
	// while one is in flight.
	pendingSkipTarget uint64
	pendingSkipAge    int
}

// buffered is one diverted envelope of an in-flight migration.
type buffered struct {
	env *group.Envelope
	svc evs.Service
	seq uint64
}

// migration is the per-group state machine between Begin and close.
type migration struct {
	group    string
	from, to int
	epoch    uint64
	// beginID is the accepted Begin's unique sender identity; acks echo
	// it in their Target field, which is what ties an ack to THIS
	// migration instance. Matching on the globally ordered Begin's bytes
	// (rather than a locally counted epoch) keeps members whose migration
	// histories diverged across a partition able to close one migration
	// together.
	beginID  group.ClientID
	required map[evs.ProcID]bool
	acked    map[evs.ProcID]bool
	buffered []buffered
}

// Merger merges per-ring ordered streams into one global sequence. Push
// methods are safe to call concurrently from each ring's protocol
// goroutine; emission happens inline under the merger's lock in whichever
// push completes an emission.
type Merger struct {
	cfg   Config
	ahead uint64

	mu       sync.Mutex
	rings    []ringState
	migs     map[string]*migration // active migrations by group
	migEpoch map[string]uint64     // accepted Begin count by group
	notify   map[string][]chan struct{}
	// ctlSeq makes every control envelope this merger originates
	// byte-unique (as Sender.Local), so retried or re-announced skips and
	// acks are never mistaken for duplicate deliveries of one message.
	ctlSeq uint32

	emitted    *obs.Counter
	skipsRx    *obs.Counter
	migStarted *obs.Counter
	migClosed  *obs.Counter
	pending    *obs.Gauge
	bufferedG  *obs.Gauge
	migrating  *obs.Gauge
	// frontG publishes each ring's virtual frontier as a gauge
	// (shardN.merge.frontier); the health detector compares them across
	// passes to flag a ring whose frontier stopped while peers advance.
	frontG []*obs.Gauge
}

// New builds a Merger for cfg.Shards >= 2 rings.
func New(cfg Config) *Merger {
	if cfg.Shards < 2 {
		panic("merge: need at least 2 rings")
	}
	ahead := cfg.SkipAhead
	if ahead == 0 {
		ahead = DefaultSkipAhead
	}
	frontG := make([]*obs.Gauge, cfg.Shards)
	for ri := range frontG {
		frontG[ri] = cfg.Obs.Gauge(fmt.Sprintf("shard%d.merge.frontier", ri))
	}
	return &Merger{
		cfg:        cfg,
		ahead:      ahead,
		rings:      make([]ringState, cfg.Shards),
		migs:       make(map[string]*migration),
		migEpoch:   make(map[string]uint64),
		notify:     make(map[string][]chan struct{}),
		emitted:    cfg.Obs.Counter("merge.emitted"),
		skipsRx:    cfg.Obs.Counter("merge.skips_applied"),
		migStarted: cfg.Obs.Counter("merge.migrations_started"),
		migClosed:  cfg.Obs.Counter("merge.migrations_closed"),
		pending:    cfg.Obs.Gauge("merge.pending"),
		bufferedG:  cfg.Obs.Gauge("merge.buffered"),
		migrating:  cfg.Obs.Gauge("merge.migrating"),
		frontG:     frontG,
	}
}

// PushEnvelope feeds one decoded envelope from ring's ordered stream.
// Envelopes fed this way carry no ring seq for tracing; drivers that
// know the carrier message's sequence number use PushEnvelopeSeq.
func (m *Merger) PushEnvelope(ring int, env *group.Envelope, svc evs.Service) {
	m.PushEnvelopeSeq(ring, env, svc, 0)
}

// PushEnvelopeSeq is PushEnvelope carrying the envelope's ring sequence
// number, which travels with the item to Out.Deliver so sampled spans
// can be stamped with their merge emission.
func (m *Merger) PushEnvelopeSeq(ring int, env *group.Envelope, svc evs.Service, seq uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := &m.rings[ring]
	switch env.Kind {
	case group.OpSkip:
		// A skip consumes no slot: it only raises the frontier, letting
		// other rings' items pass an idle ring.
		if env.Arg > r.front {
			r.front = env.Arg
			r.pendingSkipTarget = 0
			m.skipsRx.Inc()
			m.frontG[ring].Set(int64(r.front))
		}
		m.drain()
		return
	case group.OpFrontier:
		// A frontier announcement is a skip anchored to the last regular
		// configuration change: the announcer's front just after slotting
		// it, translated to our numbering by adding the slots we consumed
		// since. Every member computes the same sinceReg at the same
		// stream position, so after a partition one announcement round
		// re-levels diverged frontiers EXACTLY even while traffic keeps
		// ordering concurrently — an absolute claim would under-level by
		// the in-flight slot count and leave a permanent skew.
		if v := env.Arg + r.sinceReg; v > r.front {
			r.front = v
			r.pendingSkipTarget = 0
			m.skipsRx.Inc()
			m.frontG[ring].Set(int64(r.front))
		}
		m.drain()
		return
	}
	r.front++
	r.sinceReg++
	m.frontG[ring].Set(int64(r.front))
	r.queue = append(r.queue, item{slot: r.front, env: env, svc: svc, seq: seq})
	m.drain()
}

// PushConfig feeds one configuration change from ring's ordered stream.
// Config changes are slotted like envelopes, so view changes interleave
// with deliveries identically at every daemon.
func (m *Merger) PushConfig(ring int, cc evs.ConfigChange) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := &m.rings[ring]
	r.front++
	m.frontG[ring].Set(int64(r.front))
	r.queue = append(r.queue, item{slot: r.front, cc: cc})
	// Announce our frontier at every regular change, immediately at push:
	// members whose virtual slot counters diverged while partitioned
	// re-level back to one value. Announcing at the change's EMISSION
	// would be too late — divergent frontiers can block each other's
	// config changes from ever emitting, which is a merge-wide deadlock.
	// The announcement is anchored to this change (sinceReg resets here),
	// so receivers apply it relative to the same stream position.
	if cc.Transitional {
		r.sinceReg++
	} else {
		r.sinceReg = 0
		present := false
		for _, p := range cc.Config.Members {
			if p == m.cfg.Self {
				present = true
				break
			}
		}
		if present {
			m.cfg.Out.SubmitAsync(ring, group.Envelope{
				Kind:   group.OpFrontier,
				Sender: m.ctlSender(),
				Arg:    r.front,
			})
		}
	}
	m.drain()
}

// drain emits every queued item that has become safe, in ascending
// (slot, ring) order. Called with m.mu held.
func (m *Merger) drain() {
	for {
		best := -1
		var bs uint64
		for ri := range m.rings {
			q := m.rings[ri].queue
			if len(q) == 0 {
				continue
			}
			if best < 0 || q[0].slot < bs {
				best, bs = ri, q[0].slot
			}
		}
		if best < 0 {
			m.updatePending()
			return
		}
		// The head is emittable only if every idle ring's next possible
		// slot lies beyond it in (slot, ring) order.
		for qi := range m.rings {
			if qi == best || len(m.rings[qi].queue) > 0 {
				continue
			}
			lb := m.rings[qi].front + 1
			if lb < bs || (lb == bs && qi < best) {
				m.updatePending()
				return
			}
		}
		r := &m.rings[best]
		it := r.queue[0]
		r.queue = r.queue[1:]
		if len(r.queue) == 0 {
			r.queue = nil
		}
		m.emitted.Inc()
		if it.env != nil {
			m.emitEnvelope(best, it.env, it.svc, it.seq)
		} else {
			m.emitConfig(best, it.cc)
		}
	}
}

func (m *Merger) updatePending() {
	n := 0
	for ri := range m.rings {
		n += len(m.rings[ri].queue)
	}
	m.pending.Set(int64(n))
}

// emitEnvelope processes one envelope at its global emission point: the
// migration state machine runs here, everything else goes to Out.Deliver.
// Also the replay path for buffered migration traffic, which is why a
// diverted envelope re-enters this function at close.
func (m *Merger) emitEnvelope(ring int, env *group.Envelope, svc evs.Service, seq uint64) {
	switch env.Kind {
	case group.OpMigrateAck:
		g := env.Groups[0]
		mig := m.migs[g]
		if mig == nil || mig.from != ring || env.Target != mig.beginID {
			return // stale or misrouted ack (Target names the Begin it answers)
		}
		mig.acked[env.Sender.Daemon] = true
		m.closeEval(mig)
		return
	case group.OpSkip, group.OpFrontier:
		return // never queued; defensive
	}
	// Divert traffic for a migrating group arriving on its target ring:
	// it must not apply before the ordered handoff point. This includes
	// a chained OpMigrateBegin, which then starts at replay.
	if len(m.migs) > 0 {
		for _, g := range env.Groups {
			if mig := m.migs[g]; mig != nil && mig.to == ring {
				mig.buffered = append(mig.buffered, buffered{env: env, svc: svc, seq: seq})
				m.bufferedG.Add(1)
				return
			}
		}
	}
	if env.Kind == group.OpMigrateBegin {
		m.beginMigration(ring, env)
		return
	}
	m.cfg.Out.Deliver(ring, env, svc, seq)
}

// beginMigration validates and starts a migration at the Begin's ordered
// emission. Invalid Begins (wrong ring, out-of-range target, group
// already migrating) are ignored identically everywhere.
//
// A Begin that straddled a partition left the components disagreeing: the
// one that ordered it re-homed the group; the other never saw it. The
// remedy is re-issuing the Migrate on the group's old ring, which two
// acceptance rules beyond the normal flow make convergent:
//
//   - Our route may ALREADY point at the target — we closed the original
//     Begin. We JOIN the new drain (flip and re-home are no-ops) so the
//     ring-wide required set can close and every member leaves with one
//     agreed route.
//   - We may still have the original migration OPEN — our required set
//     included members that never saw the original Begin and so will
//     never ack it. The re-issued Begin for the same move SUPERSEDES it:
//     we adopt the new Begin's identity and the current ring
//     configuration as the required set, keep our buffered traffic (it
//     replays at the new close point), and close together with everyone
//     else. A Begin for a DIFFERENT move stays ignored while one is open.
func (m *Merger) beginMigration(ring int, env *group.Envelope) {
	g := env.Groups[0]
	to := int(env.Arg)
	if to < 0 || to >= m.cfg.Shards || to == ring {
		return
	}
	if route := m.cfg.Table.Ring(g); route != ring && route != to {
		return
	}
	mig := m.migs[g]
	if mig != nil {
		if mig.from != ring || mig.to != to {
			return
		}
	} else {
		mig = &migration{group: g, from: ring, to: to}
		m.migs[g] = mig
		m.migStarted.Inc()
		m.migrating.Set(int64(len(m.migs)))
	}
	m.migEpoch[g]++
	mig.epoch = m.migEpoch[g]
	mig.beginID = env.Sender
	mig.required = make(map[evs.ProcID]bool)
	mig.acked = make(map[evs.ProcID]bool)
	if m.rings[ring].haveCfg {
		for _, p := range m.rings[ring].cfg.Members {
			mig.required[p] = true
		}
	}
	// New submissions for g head to the target ring from here on; they
	// are buffered at emission until the close point.
	m.cfg.Table.SetRoute(g, to)
	// Drain the source ring: our ack follows everything we submitted to
	// it before the flip.
	if mig.required[m.cfg.Self] {
		m.cfg.Out.SubmitAsync(ring, group.Envelope{
			Kind:   group.OpMigrateAck,
			Sender: m.ctlSender(),
			Target: mig.beginID,
			Groups: []string{g},
			Arg:    mig.epoch,
		})
	}
	// A degenerate empty configuration closes immediately.
	m.closeEval(mig)
}

// closeEval closes the migration at the current emission point once the
// required members have all acked (or been waived).
func (m *Merger) closeEval(mig *migration) {
	for p := range mig.required {
		if !mig.acked[p] {
			return
		}
	}
	g := mig.group
	delete(m.migs, g)
	m.migrating.Set(int64(len(m.migs)))
	m.migClosed.Inc()
	// Members whose daemon already left the target ring's configuration
	// must not be carried over: the target ring's config change that
	// dropped them has already applied to the target table, and re-homing
	// them would resurrect ghosts no future change removes.
	if m.rings[mig.to].haveCfg {
		alive := make(map[evs.ProcID]bool, len(m.rings[mig.to].cfg.Members))
		for _, p := range m.rings[mig.to].cfg.Members {
			alive[p] = true
		}
		src := m.cfg.Table.Table(mig.from)
		for _, c := range src.Members(g) {
			if !alive[c.Daemon] {
				_ = src.Leave(c, g)
			}
		}
	}
	m.cfg.Table.Rehome(g, mig.from, mig.to)
	m.cfg.Out.Migrated(g, mig.from, mig.to)
	// Replay the buffered target-ring traffic into the global stream at
	// the close point, in its emission order. A replayed envelope runs
	// the full emission logic, so a chained Begin starts here and any
	// traffic behind it diverts into the new migration's buffer.
	buf := mig.buffered
	mig.buffered = nil
	m.bufferedG.Add(int64(-len(buf)))
	for _, b := range buf {
		m.emitEnvelope(mig.to, b.env, b.svc, b.seq)
	}
	for _, ch := range m.notify[g] {
		close(ch)
	}
	delete(m.notify, g)
}

// emitConfig processes a configuration change at its global emission
// point: regular configs update the merge's membership-derived state
// (claimer eligibility, migration waivers, outstanding-ack re-announce)
// before the change is handed to Out.Config.
func (m *Merger) emitConfig(ring int, cc evs.ConfigChange) {
	if !cc.Transitional {
		r := &m.rings[ring]
		r.cfg = cc.Config
		r.haveCfg = true
		present := make(map[evs.ProcID]bool, len(cc.Config.Members))
		for _, p := range cc.Config.Members {
			present[p] = true
		}
		// Waive required acks from members that left the source ring:
		// extended virtual synchrony flushed whatever they had ordered
		// before this change, so there is nothing left to drain.
		for _, mig := range m.sortedMigrations() {
			if mig.from != ring {
				continue
			}
			for p := range mig.required {
				if !present[p] {
					delete(mig.required, p)
				}
			}
			// Re-announce our own outstanding ack: the original submission
			// raced the reconfiguration this change reports and may have
			// been refused, and duplicates are idempotent at emission.
			if present[m.cfg.Self] && mig.required[m.cfg.Self] && !mig.acked[m.cfg.Self] {
				m.cfg.Out.SubmitAsync(ring, group.Envelope{
					Kind:   group.OpMigrateAck,
					Sender: m.ctlSender(),
					Target: mig.beginID,
					Groups: []string{mig.group},
					Arg:    mig.epoch,
				})
			}
			m.closeEval(mig)
		}
	}
	m.cfg.Out.Config(ring, cc)
}

// sortedMigrations returns active migrations in deterministic group-name
// order, for state transitions triggered by one emission.
func (m *Merger) sortedMigrations() []*migration {
	if len(m.migs) == 0 {
		return nil
	}
	names := make([]string, 0, len(m.migs))
	for g := range m.migs {
		names = append(names, g)
	}
	sort.Strings(names)
	out := make([]*migration, len(names))
	for i, g := range names {
		out[i] = m.migs[g]
	}
	return out
}

// Want is one skip submission that would unblock the merge: ring's
// representative (us) should order a skip claiming Target.
type Want struct {
	Ring   int
	Target uint64
}

// Wants reports the skips this daemon should submit right now: for every
// idle ring that blocks OUR current head, a claim SkipAhead past the
// head. Any blocked member of the idle ring may claim — blockedness is a
// per-daemon condition (partition-era frontier divergence can leave one
// daemon's merge blocked where another's, including the ring
// representative's, is not), so waiting on a designated claimer would
// deadlock. Claims max-merge, so concurrent claimers are harmless.
// Recently requested rings are suppressed until the in-flight skip lands
// or skipRetryTicks calls pass, so a slow pacer tick doesn't flood rings
// with duplicates.
func (m *Merger) Wants(dst []Want) []Want {
	dst = dst[:0]
	m.mu.Lock()
	defer m.mu.Unlock()
	best := -1
	var bs uint64
	for ri := range m.rings {
		q := m.rings[ri].queue
		if len(q) == 0 {
			continue
		}
		if best < 0 || q[0].slot < bs {
			best, bs = ri, q[0].slot
		}
	}
	if best < 0 {
		return dst
	}
	for qi := range m.rings {
		if qi == best || len(m.rings[qi].queue) > 0 {
			continue
		}
		r := &m.rings[qi]
		lb := r.front + 1
		if !(lb < bs || (lb == bs && qi < best)) {
			continue // not blocking
		}
		member := false
		if r.haveCfg {
			for _, p := range r.cfg.Members {
				if p == m.cfg.Self {
					member = true
					break
				}
			}
		}
		if !member {
			continue // cannot order a claim on a ring we are not part of
		}
		target := bs + m.ahead
		if r.pendingSkipTarget >= target {
			if r.pendingSkipAge < skipRetryTicks {
				r.pendingSkipAge++
				continue
			}
		}
		r.pendingSkipTarget = target
		r.pendingSkipAge = 0
		dst = append(dst, Want{Ring: qi, Target: target})
	}
	return dst
}

// ctlSender allocates the sender identity of one merger-originated
// control envelope. The Local counter only provides byte-uniqueness;
// emission logic keys on Sender.Daemon alone. Called with m.mu held.
func (m *Merger) ctlSender() group.ClientID {
	m.ctlSeq++
	return group.ClientID{Daemon: m.cfg.Self, Local: m.ctlSeq}
}

// SkipEnvelope builds the skip envelope for a Want.
func (m *Merger) SkipEnvelope(w Want) group.Envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	return group.Envelope{
		Kind:   group.OpSkip,
		Sender: m.ctlSender(),
		Arg:    w.Target,
	}
}

// BeginEnvelope builds the MigrateBegin envelope moving g to ring `to`,
// validating the target. The caller submits it on the group's CURRENT
// ring; a Begin that lands anywhere else (because a concurrent migration
// moved the group first) is ignored at emission.
func (m *Merger) BeginEnvelope(g string, to int) (group.Envelope, error) {
	if !group.ValidGroupName(g) {
		return group.Envelope{}, fmt.Errorf("merge: invalid group %q", g)
	}
	if to < 0 || to >= m.cfg.Shards {
		return group.Envelope{}, fmt.Errorf("merge: ring %d out of range [0, %d)", to, m.cfg.Shards)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return group.Envelope{
		Kind:   group.OpMigrateBegin,
		Sender: m.ctlSender(),
		Groups: []string{g},
		Arg:    uint64(to),
	}, nil
}

// NotifyMigrated returns a channel closed when the NEXT migration of g
// closes (immediately useful when registered before submitting a Begin).
func (m *Merger) NotifyMigrated(g string) <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan struct{})
	m.notify[g] = append(m.notify[g], ch)
	return ch
}

// Migrating reports whether g has a migration in flight.
func (m *Merger) Migrating(g string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migs[g] != nil
}

// Pending returns the total queued-but-unemitted item count (test and
// debug introspection).
func (m *Merger) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for ri := range m.rings {
		n += len(m.rings[ri].queue)
	}
	return n
}

// Frontier returns ring's virtual frontier (test introspection).
func (m *Merger) Frontier(ring int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rings[ring].front
}
