package merge

import (
	"fmt"
	"reflect"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/group"
)

// recOut records the merger's output in order and captures async submits
// instead of running them.
type recOut struct {
	events  []string
	submits []struct {
		ring int
		env  group.Envelope
	}
	migrated []string
}

func (o *recOut) Deliver(ring int, env *group.Envelope, svc evs.Service, seq uint64) {
	o.events = append(o.events, fmt.Sprintf("d%d:%s:%s", ring, env.Kind, env.Payload))
}
func (o *recOut) Config(ring int, cc evs.ConfigChange) {
	o.events = append(o.events, fmt.Sprintf("c%d:%v", ring, cc.Config.Members))
}
func (o *recOut) SubmitAsync(ring int, env group.Envelope) {
	o.submits = append(o.submits, struct {
		ring int
		env  group.Envelope
	}{ring, env})
}
func (o *recOut) Migrated(g string, from, to int) {
	o.migrated = append(o.migrated, fmt.Sprintf("%s:%d->%d", g, from, to))
}

// acks filters the captured async submits down to migration acks (the
// merger also submits OpSkip frontier announcements at config changes).
func (o *recOut) acks() []struct {
	ring int
	env  group.Envelope
} {
	var out []struct {
		ring int
		env  group.Envelope
	}
	for _, s := range o.submits {
		if s.env.Kind == group.OpMigrateAck {
			out = append(out, s)
		}
	}
	return out
}

func msg(sender evs.ProcID, gs []string, payload string) *group.Envelope {
	return &group.Envelope{
		Kind: group.OpMessage, Sender: group.ClientID{Daemon: sender, Local: 1},
		Groups: gs, Payload: []byte(payload),
	}
}

// pace simulates the representative's lambda pacing: a skip on ring
// claiming up to slot target.
func pace(m *Merger, ring int, target uint64) {
	skip := group.Envelope{Kind: group.OpSkip, Sender: group.ClientID{Daemon: 1}, Arg: target}
	m.PushEnvelope(ring, &skip, evs.Agreed)
}

func cfgChange(members ...evs.ProcID) evs.ConfigChange {
	return evs.ConfigChange{Config: evs.Configuration{Members: members}}
}

func newTestMerger(t *testing.T, shards int, self evs.ProcID) (*Merger, *group.ShardedTable, *recOut) {
	t.Helper()
	tbl := group.NewShardedTable(shards)
	out := &recOut{}
	m := New(Config{Shards: shards, Self: self, Table: tbl, Out: out})
	return m, tbl, out
}

// TestMergeLexOrder: items are emitted in ascending (slot, ring) order
// regardless of arrival interleaving, and the sequence is identical for
// two mergers fed the same per-ring streams in different arrival orders.
func TestMergeLexOrder(t *testing.T) {
	run := func(order []int) []string {
		m, _, out := newTestMerger(t, 2, 1)
		m.PushConfig(0, cfgChange(1, 2))
		m.PushConfig(1, cfgChange(1, 2))
		streams := map[int][]*group.Envelope{
			0: {msg(1, []string{"a"}, "a1"), msg(1, []string{"a"}, "a2"), msg(1, []string{"a"}, "a3")},
			1: {msg(2, []string{"b"}, "b1"), msg(2, []string{"b"}, "b2"), msg(2, []string{"b"}, "b3")},
		}
		idx := map[int]int{}
		for _, ring := range order {
			m.PushEnvelope(ring, streams[ring][idx[ring]], evs.Agreed)
			idx[ring]++
		}
		return out.events
	}
	a := run([]int{0, 1, 0, 1, 0, 1})
	b := run([]int{1, 1, 1, 0, 0, 0})
	c := run([]int{0, 0, 0, 1, 1, 1})
	want := []string{
		"c0:[1 2]", "c1:[1 2]",
		"d0:message:a1", "d1:message:b1",
		"d0:message:a2", "d1:message:b2",
		"d0:message:a3", "d1:message:b3",
	}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("merged order = %v, want %v", a, want)
	}
	if !reflect.DeepEqual(b, a) || !reflect.DeepEqual(c, a) {
		t.Fatalf("arrival order changed the merge:\n a=%v\n b=%v\n c=%v", a, b, c)
	}
}

// TestSkipUnblocksIdleRing: an idle ring stalls the merge until a skip
// claims its slots; claimed slots let a burst pass without more skips.
func TestSkipUnblocksIdleRing(t *testing.T) {
	m, _, out := newTestMerger(t, 2, 1)
	m.PushConfig(0, cfgChange(1, 2))
	m.PushConfig(1, cfgChange(1, 2))
	n := len(out.events)

	// Ring 1 has traffic; ring 0 is idle past its config change.
	m.PushEnvelope(1, msg(2, []string{"b"}, "b1"), evs.Agreed)
	if len(out.events) != n {
		t.Fatalf("emitted %v past an idle ring", out.events[n:])
	}
	if got := m.Pending(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}

	// We (daemon 1) are ring 0's representative: a skip is wanted.
	wants := m.Wants(nil)
	if len(wants) != 1 || wants[0].Ring != 0 {
		t.Fatalf("wants = %+v, want one skip on ring 0", wants)
	}
	// Wants suppresses an immediate duplicate.
	if again := m.Wants(nil); len(again) != 0 {
		t.Fatalf("duplicate want not suppressed: %+v", again)
	}
	env := m.SkipEnvelope(wants[0])
	m.PushEnvelope(0, &env, evs.Agreed)
	if got := out.events[n:]; !reflect.DeepEqual(got, []string{"d1:message:b1"}) {
		t.Fatalf("after skip got %v", got)
	}
	// The claim covers a following burst with no further skips.
	for i := 0; i < int(DefaultSkipAhead)-1; i++ {
		m.PushEnvelope(1, msg(2, []string{"b"}, "x"), evs.Agreed)
	}
	if got := m.Pending(); got != 0 {
		t.Fatalf("pending = %d after claimed burst, want 0", got)
	}
}

// TestWantsOnlyForMembers: any blocked member of the idle ring may claim
// skips (a designated claimer could deadlock after a partition, since
// blockedness is per-daemon), but a daemon outside the ring's
// configuration must not volunteer — it could not order the claim anyway.
func TestWantsOnlyForMembers(t *testing.T) {
	m, _, _ := newTestMerger(t, 2, 2) // self = 2, a member but not representative
	m.PushConfig(0, cfgChange(1, 2))
	m.PushConfig(1, cfgChange(1, 2))
	m.PushEnvelope(1, msg(2, []string{"b"}, "b1"), evs.Agreed)
	if wants := m.Wants(nil); len(wants) != 1 || wants[0].Ring != 0 {
		t.Fatalf("blocked member did not claim the idle ring: %+v", wants)
	}

	out, _, _ := newTestMerger(t, 2, 3) // self = 3, not in ring 0's config
	out.PushConfig(0, cfgChange(1, 2))
	out.PushConfig(1, cfgChange(1, 2, 3))
	out.PushEnvelope(1, msg(2, []string{"b"}, "b1"), evs.Agreed)
	if wants := out.Wants(nil); len(wants) != 0 {
		t.Fatalf("non-member volunteered skips: %+v", wants)
	}
}

// TestMigrationHappyPath walks a 2-daemon migration: Begin flips the
// route and solicits acks, target-ring traffic buffers, the last ack
// closes, re-homes, and replays.
func TestMigrationHappyPath(t *testing.T) {
	m, tbl, out := newTestMerger(t, 2, 1)
	m.PushConfig(0, cfgChange(1, 2))
	m.PushConfig(1, cfgChange(1, 2))

	// "g-1" hashes to ring 0. Two members.
	alice := group.ClientID{Daemon: 1, Local: 7}
	bob := group.ClientID{Daemon: 2, Local: 9}
	if err := tbl.For("g-1").Join(alice, "g-1"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.For("g-1").Join(bob, "g-1"); err != nil {
		t.Fatal(err)
	}

	begin, err := m.BeginEnvelope("g-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	wait := m.NotifyMigrated("g-1")
	m.PushEnvelope(0, &begin, evs.Agreed)

	// Route flipped at Begin emission; our ack was solicited on ring 0.
	if got := tbl.Ring("g-1"); got != 1 {
		t.Fatalf("route after Begin = %d, want 1", got)
	}
	if !m.Migrating("g-1") {
		t.Fatal("not migrating after Begin")
	}
	acks := out.acks()
	if len(acks) != 1 || acks[0].ring != 0 || acks[0].env.Arg != 1 {
		t.Fatalf("acks = %+v, want one epoch-1 ack on ring 0", acks)
	}

	// Post-flip traffic routed to ring 1 buffers at emission.
	m.PushEnvelope(1, msg(1, []string{"g-1"}, "late"), evs.Agreed)
	nEvents := len(out.events)

	// A straggler on ring 0 (submitted pre-flip) still delivers there.
	m.PushEnvelope(0, msg(2, []string{"g-1"}, "straggler"), evs.Agreed)
	if got := out.events[nEvents:]; !reflect.DeepEqual(got, []string{"d0:message:straggler"}) {
		t.Fatalf("straggler delivery = %v", got)
	}
	nEvents = len(out.events)

	// Daemon 1's ack (ours) arrives; daemon 2's follows and closes.
	ack1 := acks[0].env
	m.PushEnvelope(0, &ack1, evs.Agreed)
	select {
	case <-wait:
		t.Fatal("closed after one ack of two")
	default:
	}
	ack2 := ack1
	ack2.Sender = group.ClientID{Daemon: 2}
	m.PushEnvelope(0, &ack2, evs.Agreed)
	// The acks sit at ring 0 slots the idle ring 1 has not passed yet;
	// pacing ring 1 lets them emit, which closes the migration.
	pace(m, 1, 100)

	select {
	case <-wait:
	default:
		t.Fatal("migration did not close after all acks")
	}
	if !reflect.DeepEqual(out.migrated, []string{"g-1:0->1"}) {
		t.Fatalf("migrated = %v", out.migrated)
	}
	// Members moved; buffered traffic replayed at the close point on the
	// target ring.
	if got := tbl.Table(1).Members("g-1"); !reflect.DeepEqual(got, []group.ClientID{alice, bob}) {
		t.Fatalf("target members = %v", got)
	}
	if got := tbl.Table(0).Members("g-1"); got != nil {
		t.Fatalf("source members not cleared: %v", got)
	}
	if got := out.events[nEvents:]; !reflect.DeepEqual(got, []string{"d1:message:late"}) {
		t.Fatalf("replay = %v", got)
	}
	if m.Migrating("g-1") {
		t.Fatal("still migrating after close")
	}
	// Post-close traffic on the target ring delivers directly (ring 0,
	// now the idle one, needs pacing past ring 1's claimed slots).
	pace(m, 0, 200)
	m.PushEnvelope(1, msg(2, []string{"g-1"}, "after"), evs.Agreed)
	if got := out.events[len(out.events)-1]; got != "d1:message:after" {
		t.Fatalf("post-close delivery = %v", got)
	}
}

// TestMigrationWaivesDepartedMember: a member that leaves the source
// ring's configuration mid-migration is waived at the config change's
// emission, closing the drain without its ack.
func TestMigrationWaivesDepartedMember(t *testing.T) {
	m, tbl, out := newTestMerger(t, 2, 1)
	m.PushConfig(0, cfgChange(1, 2))
	m.PushConfig(1, cfgChange(1, 2))
	if err := tbl.For("g-1").Join(group.ClientID{Daemon: 1, Local: 7}, "g-1"); err != nil {
		t.Fatal(err)
	}

	begin, err := m.BeginEnvelope("g-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	m.PushEnvelope(0, &begin, evs.Agreed)
	ack1 := out.acks()[0].env
	m.PushEnvelope(0, &ack1, evs.Agreed)
	if !m.Migrating("g-1") {
		t.Fatal("closed without daemon 2's ack or departure")
	}

	// Daemon 2 leaves ring 0; keep ring 1 paced so the change emits.
	m.PushConfig(0, cfgChange(1))
	skip := group.Envelope{Kind: group.OpSkip, Sender: group.ClientID{Daemon: 1}, Arg: 100}
	m.PushEnvelope(1, &skip, evs.Agreed)
	if m.Migrating("g-1") {
		t.Fatal("departed member not waived")
	}
	if got := tbl.Ring("g-1"); got != 1 {
		t.Fatalf("route after waived close = %d, want 1", got)
	}
}

// TestChainedMigration: a second Begin submitted while the first is in
// flight buffers on the target ring and starts at replay, landing the
// group on the final ring with state intact.
func TestChainedMigration(t *testing.T) {
	m, tbl, out := newTestMerger(t, 3, 1)
	for r := 0; r < 3; r++ {
		m.PushConfig(r, cfgChange(1))
	}
	// "g-5" hashes to ring 0 of 3.
	g := ""
	for _, cand := range []string{"g-0", "g-1", "g-2", "g-3", "g-4", "g-5"} {
		if tbl.Ring(cand) == 0 {
			g = cand
			break
		}
	}
	if g == "" {
		t.Fatal("no candidate group on ring 0")
	}
	member := group.ClientID{Daemon: 1, Local: 3}
	if err := tbl.For(g).Join(member, g); err != nil {
		t.Fatal(err)
	}

	begin1, _ := m.BeginEnvelope(g, 1)
	m.PushEnvelope(0, &begin1, evs.Agreed)
	// Chained migration 1 -> 2 submitted mid-flight lands on ring 1 (the
	// flipped route) and is buffered.
	begin2, _ := m.BeginEnvelope(g, 2)
	m.PushEnvelope(1, &begin2, evs.Agreed)

	// Close the first migration: sole member's ack (ring 2 is idle and
	// must be paced past the ack's slot for it to emit).
	ack := out.acks()[0].env
	m.PushEnvelope(0, &ack, evs.Agreed)
	pace(m, 2, 100)

	// The chained Begin replayed and opened migration #2 from ring 1.
	if !m.Migrating(g) {
		t.Fatal("chained migration did not start at replay")
	}
	if got := tbl.Ring(g); got != 2 {
		t.Fatalf("route after chained Begin = %d, want 2", got)
	}
	// Second ack solicitation is on ring 1 with epoch 2.
	ak := out.acks()
	last := ak[len(ak)-1]
	if last.ring != 1 || last.env.Arg != 2 {
		t.Fatalf("chained ack solicitation = %+v", last)
	}
	ack2 := last.env
	m.PushEnvelope(1, &ack2, evs.Agreed)
	pace(m, 0, 100)
	if m.Migrating(g) {
		t.Fatal("chained migration did not close")
	}
	if got := tbl.Table(2).Members(g); !reflect.DeepEqual(got, []group.ClientID{member}) {
		t.Fatalf("final members = %v", got)
	}
}

// TestStaleAndMisroutedControlIgnored: Begins on a ring unrelated to the
// group's route, acks answering the wrong Begin, and out-of-range
// targets are all ignored.
func TestStaleAndMisroutedControlIgnored(t *testing.T) {
	// 3 shards so "neither source nor target" is expressible. "g-1"
	// hashes to ring 0 of 3 (pinned by the sharded routing tests).
	m, tbl, out := newTestMerger(t, 3, 1)
	for r := 0; r < 3; r++ {
		m.PushConfig(r, cfgChange(1))
	}
	g := ""
	for _, cand := range []string{"g-0", "g-1", "g-2", "g-3", "g-4", "g-5"} {
		if tbl.Ring(cand) == 0 {
			g = cand
			break
		}
	}
	if g == "" {
		t.Fatal("no candidate group on ring 0")
	}

	// Begin on a ring that is neither the group's route nor its target:
	// ignored.
	begin := group.Envelope{
		Kind: group.OpMigrateBegin, Sender: group.ClientID{Daemon: 1, Local: 50},
		Groups: []string{g}, Arg: 2, // g lives on ring 0; Begin pushed on ring 1
	}
	m.PushEnvelope(1, &begin, evs.Agreed)
	if m.Migrating(g) {
		t.Fatal("misrouted Begin accepted")
	}
	if got := tbl.Ring(g); got != 0 {
		t.Fatalf("route corrupted by misrouted Begin: %d", got)
	}

	// Self-targeted Begin: ignored.
	self := group.Envelope{
		Kind: group.OpMigrateBegin, Sender: group.ClientID{Daemon: 1, Local: 51},
		Groups: []string{g}, Arg: 0,
	}
	m.PushEnvelope(0, &self, evs.Agreed)
	if m.Migrating(g) {
		t.Fatal("self-targeted Begin accepted")
	}

	// Ack with no migration in flight: ignored (no panic, no state).
	stray := group.Envelope{
		Kind: group.OpMigrateAck, Sender: group.ClientID{Daemon: 1},
		Groups: []string{g}, Arg: 99,
	}
	m.PushEnvelope(0, &stray, evs.Agreed)

	// Pace the other rings so everything above (and below) emits.
	pace(m, 1, 100)
	pace(m, 2, 100)

	// Ack answering a DIFFERENT Begin than the one in flight: ignored.
	realBegin, err := m.BeginEnvelope(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.PushEnvelope(0, &realBegin, evs.Agreed)
	if !m.Migrating(g) {
		t.Fatal("legitimate Begin ignored")
	}
	wrong := out.acks()[0].env
	wrong.Target = group.ClientID{Daemon: 9, Local: 9}
	m.PushEnvelope(0, &wrong, evs.Agreed)
	pace(m, 1, 100)
	pace(m, 2, 100)
	if !m.Migrating(g) {
		t.Fatal("ack for a different Begin closed the migration")
	}
	// The matching ack does close it.
	right := out.acks()[0].env
	m.PushEnvelope(0, &right, evs.Agreed)
	if m.Migrating(g) {
		t.Fatal("matching ack did not close the migration")
	}

	// BeginEnvelope validates targets.
	if _, err := m.BeginEnvelope(g, 3); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := m.BeginEnvelope("", 1); err == nil {
		t.Fatal("invalid group accepted")
	}
}

// TestMigrationRepairJoin: after a Begin straddles a partition, some
// members route the group at the target already while others still
// route it at the source. A re-issued Begin on the source ring must be
// accepted by BOTH kinds of member — the already-flipped ones join the
// drain with no-op flip and re-home — so the ring-wide required set can
// close and everyone leaves with one agreed route.
func TestMigrationRepairJoin(t *testing.T) {
	m, tbl, out := newTestMerger(t, 2, 1)
	m.PushConfig(0, cfgChange(1, 2))
	m.PushConfig(1, cfgChange(1, 2))

	// This member already routes "g-1" (hash-home ring 0) at ring 1 — the
	// aftermath of a Begin only its partition component ordered.
	alice := group.ClientID{Daemon: 1, Local: 7}
	if err := tbl.Table(1).Join(alice, "g-1"); err != nil {
		t.Fatal(err)
	}
	tbl.SetRoute("g-1", 1)

	// The repair Begin arrives on ring 0 (the divergent members' route).
	begin, err := m.BeginEnvelope("g-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	m.PushEnvelope(0, &begin, evs.Agreed)
	if !m.Migrating("g-1") {
		t.Fatal("already-flipped member did not join the repair migration")
	}
	acks := out.acks()
	if len(acks) != 1 || acks[0].ring != 0 {
		t.Fatalf("repair acks = %+v, want one on ring 0", acks)
	}

	// Both members ack; the close is a no-op re-home that converges the
	// route for everyone.
	ack1 := acks[0].env
	m.PushEnvelope(0, &ack1, evs.Agreed)
	ack2 := ack1
	ack2.Sender = group.ClientID{Daemon: 2}
	m.PushEnvelope(0, &ack2, evs.Agreed)
	pace(m, 1, 100)
	if m.Migrating("g-1") {
		t.Fatal("repair migration did not close")
	}
	if got := tbl.Ring("g-1"); got != 1 {
		t.Fatalf("route after repair = %d, want 1", got)
	}
	if got := tbl.Table(1).Members("g-1"); !reflect.DeepEqual(got, []group.ClientID{alice}) {
		t.Fatalf("members disturbed by no-op re-home: %v", got)
	}
}
