package shard

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"accelring/internal/evs"
	"accelring/internal/membership"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
)

func fastTimeouts() membership.Timeouts {
	return membership.Timeouts{
		JoinInterval:    5 * time.Millisecond,
		Gather:          25 * time.Millisecond,
		Commit:          50 * time.Millisecond,
		TokenLoss:       100 * time.Millisecond,
		TokenRetransmit: 30 * time.Millisecond,
	}
}

// ringLog records one node's deliveries per ring.
type ringLog struct {
	mu   sync.Mutex
	msgs map[int][]string // ring -> payloads in delivery order
}

func (l *ringLog) add(ring int, ev evs.Event) {
	m, ok := ev.(evs.Message)
	if !ok {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.msgs == nil {
		l.msgs = make(map[int][]string)
	}
	l.msgs[ring] = append(l.msgs[ring], string(m.Payload))
}

func (l *ringLog) ring(r int) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.msgs[r]...)
}

// startCluster launches nodes shard groups (one per participant), each
// running `shards` rings over per-ring hubs.
func startCluster(t *testing.T, nodes, shards int) ([]*Group, []*ringLog, []*transport.Hub) {
	t.Helper()
	hubs := make([]*transport.Hub, shards)
	for r := range hubs {
		hubs[r] = transport.NewHub()
	}
	groups := make([]*Group, nodes)
	logs := make([]*ringLog, nodes)
	for i := 0; i < nodes; i++ {
		self := evs.ProcID(i + 1)
		log := &ringLog{}
		logs[i] = log
		base := ringnode.Accelerated(self, nil, 10, 100, 7)
		base.Timeouts = fastTimeouts()
		g, err := Start(Config{
			Shards: shards,
			Base:   base,
			NewTransport: func(ring int) (transport.Transport, error) {
				return hubs[ring].Endpoint(self, 0, 0)
			},
			OnEvent: log.add,
		})
		if err != nil {
			t.Fatalf("node %d: %v", self, err)
		}
		groups[i] = g
		t.Cleanup(g.Stop)
	}
	for i, g := range groups {
		if !g.WaitOperational(5 * time.Second) {
			t.Fatalf("node %d: rings did not become operational", i+1)
		}
	}
	return groups, logs, hubs
}

// TestShardedPerGroupTotalOrder runs a 3-node, 2-ring cluster, routes two
// groups to their owning rings, and checks the tentpole guarantee: every
// node delivers each group's messages in one identical order, and each
// group's traffic appears only on its owning ring.
func TestShardedPerGroupTotalOrder(t *testing.T) {
	groups, logs, _ := startCluster(t, 3, 2)
	g0 := groups[0]

	// Two groups that land on different rings (pinned by group.RingOf).
	gA, gB := "g-0", "g-1"
	if RingOf(gA, 2) == RingOf(gB, 2) {
		t.Fatalf("test groups map to the same ring; pick different names")
	}

	const perSender = 20
	var wg sync.WaitGroup
	for i, g := range groups {
		wg.Add(1)
		go func(sender int, g *Group) {
			defer wg.Done()
			for k := 0; k < perSender; k++ {
				for _, name := range []string{gA, gB} {
					payload := fmt.Sprintf("%s/n%d/m%d", name, sender, k)
					ring := g.RingFor(name)
					for {
						if err := g.Submit(ring, []byte(payload), evs.Agreed); err == nil {
							break
						}
						time.Sleep(time.Millisecond)
					}
				}
			}
		}(i, g)
	}
	wg.Wait()

	want := 3 * perSender
	deadline := time.Now().Add(10 * time.Second)
	ringA, ringB := g0.RingFor(gA), g0.RingFor(gB)
	for time.Now().Before(deadline) {
		done := true
		for _, l := range logs {
			if len(l.ring(ringA)) < want || len(l.ring(ringB)) < want {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, l := range logs {
		// No cross-ring leakage: ring r only ever delivers its own groups.
		for _, p := range l.ring(ringA) {
			if p[:len(gA)] != gA {
				t.Fatalf("ring %d delivered foreign payload %q", ringA, p)
			}
		}
		for _, p := range l.ring(ringB) {
			if p[:len(gB)] != gB {
				t.Fatalf("ring %d delivered foreign payload %q", ringB, p)
			}
		}
	}

	// Per-group total order: every node saw each ring's stream identically.
	for r := 0; r < 2; r++ {
		ref := logs[0].ring(r)
		if len(ref) != want {
			t.Fatalf("node 1 ring %d delivered %d messages, want %d", r, len(ref), want)
		}
		for i := 1; i < len(logs); i++ {
			got := logs[i].ring(r)
			if len(got) != len(ref) {
				t.Fatalf("node %d ring %d delivered %d messages, node 1 delivered %d",
					i+1, r, len(got), len(ref))
			}
			for k := range ref {
				if got[k] != ref[k] {
					t.Fatalf("ring %d delivery %d differs: node %d got %q, node 1 got %q",
						r, k, i+1, got[k], ref[k])
				}
			}
		}
	}
}

// TestShardIsolation kills one ring's connectivity and checks the other
// ring keeps ordering traffic: ring instances fail independently.
func TestShardIsolation(t *testing.T) {
	groups, logs, hubs := startCluster(t, 2, 2)

	// Cut ring 1's hub completely; ring 0 must keep working.
	hubs[1].SetDrop(func(from, to evs.ProcID, token bool, frame []byte) bool { return true })

	deadline := time.Now().Add(5 * time.Second)
	sent := 0
	for time.Now().Before(deadline) && sent < 10 {
		if err := groups[0].Submit(0, []byte(fmt.Sprintf("alive-%d", sent)), evs.Agreed); err == nil {
			sent++
		} else {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if sent < 10 {
		t.Fatalf("ring 0 stopped accepting traffic while ring 1 was cut (sent %d)", sent)
	}
	for time.Now().Before(deadline) {
		if len(logs[1].ring(0)) >= 10 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node 2 delivered %d ring-0 messages while ring 1 was cut, want 10",
		len(logs[1].ring(0)))
}

// TestStartValidation covers constructor failure paths.
func TestStartValidation(t *testing.T) {
	base := ringnode.Accelerated(1, nil, 10, 100, 7)
	if _, err := Start(Config{Shards: 0, Base: base}); err == nil {
		t.Fatal("Shards=0 accepted")
	}
	if _, err := Start(Config{Shards: MaxShards + 1, Base: base}); err == nil {
		t.Fatal("Shards beyond MaxShards accepted")
	}
	if _, err := Start(Config{Shards: 2, Base: base}); err == nil {
		t.Fatal("nil NewTransport accepted")
	}
	boom := fmt.Errorf("boom")
	hub := transport.NewHub()
	_, err := Start(Config{
		Shards: 2,
		Base:   base,
		NewTransport: func(ring int) (transport.Transport, error) {
			if ring == 1 {
				return nil, boom
			}
			return hub.Endpoint(1, 0, 0)
		},
	})
	if err == nil {
		t.Fatal("transport error not propagated")
	}
}
