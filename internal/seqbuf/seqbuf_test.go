package seqbuf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"accelring/internal/wire"
)

func msg(seq uint64) *wire.Data { return &wire.Data{Seq: seq} }

func TestInsertAdvancesAru(t *testing.T) {
	b := New(0)
	if b.Aru() != 0 {
		t.Fatalf("initial aru = %d", b.Aru())
	}
	if !b.Insert(msg(1)) {
		t.Fatal("insert 1 rejected")
	}
	if b.Aru() != 1 {
		t.Fatalf("aru = %d, want 1", b.Aru())
	}
	// Out-of-order inserts: aru holds at the gap.
	b.Insert(msg(3))
	b.Insert(msg(4))
	if b.Aru() != 1 {
		t.Fatalf("aru = %d, want 1 (gap at 2)", b.Aru())
	}
	if b.High() != 4 {
		t.Fatalf("high = %d, want 4", b.High())
	}
	// Filling the gap advances across the contiguous run.
	b.Insert(msg(2))
	if b.Aru() != 4 {
		t.Fatalf("aru = %d, want 4", b.Aru())
	}
}

func TestInsertDuplicate(t *testing.T) {
	b := New(0)
	if !b.Insert(msg(1)) || b.Insert(msg(1)) {
		t.Fatal("duplicate insert accepted")
	}
	if b.Len() != 1 {
		t.Fatalf("len = %d, want 1", b.Len())
	}
}

func TestInsertBelowFloor(t *testing.T) {
	b := New(10)
	if b.Insert(msg(5)) || b.Insert(msg(10)) {
		t.Fatal("insert at or below floor accepted")
	}
	if !b.Insert(msg(11)) {
		t.Fatal("insert above floor rejected")
	}
	if b.Aru() != 11 {
		t.Fatalf("aru = %d, want 11", b.Aru())
	}
}

func TestHas(t *testing.T) {
	b := New(5)
	b.Insert(msg(7))
	tests := []struct {
		seq  uint64
		want bool
	}{{3, true}, {5, true}, {6, false}, {7, true}, {8, false}}
	for _, tc := range tests {
		if got := b.Has(tc.seq); got != tc.want {
			t.Errorf("Has(%d) = %v, want %v", tc.seq, got, tc.want)
		}
	}
}

func TestMissing(t *testing.T) {
	b := New(0)
	for _, s := range []uint64{1, 2, 5, 7} {
		b.Insert(msg(s))
	}
	got := b.Missing(nil, 8, 0)
	want := []uint64{3, 4, 6, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Missing = %v, want %v", got, want)
	}
	// Capped.
	got = b.Missing(nil, 8, 2)
	if !reflect.DeepEqual(got, []uint64{3, 4}) {
		t.Fatalf("Missing capped = %v", got)
	}
	// Appends to dst.
	got = b.Missing([]uint64{99}, 4, 0)
	if !reflect.DeepEqual(got, []uint64{99, 3, 4}) {
		t.Fatalf("Missing append = %v", got)
	}
	// Nothing missing up to aru.
	if got := b.Missing(nil, b.Aru(), 0); len(got) != 0 {
		t.Fatalf("Missing to aru = %v, want empty", got)
	}
}

func TestDiscard(t *testing.T) {
	b := New(0)
	for s := uint64(1); s <= 6; s++ {
		b.Insert(msg(s))
	}
	n, err := b.Discard(4)
	if err != nil || n != 4 {
		t.Fatalf("Discard = (%d, %v), want (4, nil)", n, err)
	}
	if b.Floor() != 4 || b.Len() != 2 {
		t.Fatalf("floor = %d len = %d", b.Floor(), b.Len())
	}
	if b.Get(3) != nil {
		t.Fatal("discarded message still retrievable")
	}
	if !b.Has(3) {
		t.Fatal("Has must remain true for discarded messages")
	}
	// Discard beyond aru is rejected.
	if _, err := b.Discard(b.Aru() + 1); err == nil {
		t.Fatal("discard beyond aru succeeded")
	}
	// Re-discarding an already discarded prefix is a no-op.
	n, err = b.Discard(2)
	if err != nil || n != 0 {
		t.Fatalf("re-discard = (%d, %v)", n, err)
	}
}

func TestRange(t *testing.T) {
	b := New(0)
	for _, s := range []uint64{1, 2, 4, 5} {
		b.Insert(msg(s))
	}
	var seen []uint64
	b.Range(1, 5, func(d *wire.Data) bool {
		seen = append(seen, d.Seq)
		return true
	})
	if !reflect.DeepEqual(seen, []uint64{1, 2, 4, 5}) {
		t.Fatalf("Range = %v", seen)
	}
	// Early stop.
	seen = seen[:0]
	b.Range(1, 5, func(d *wire.Data) bool {
		seen = append(seen, d.Seq)
		return d.Seq < 2
	})
	if !reflect.DeepEqual(seen, []uint64{1, 2}) {
		t.Fatalf("Range early stop = %v", seen)
	}
	// Range below floor is clamped.
	if _, err := b.Discard(2); err != nil {
		t.Fatal(err)
	}
	seen = seen[:0]
	b.Range(0, 5, func(d *wire.Data) bool {
		seen = append(seen, d.Seq)
		return true
	})
	if !reflect.DeepEqual(seen, []uint64{4, 5}) {
		t.Fatalf("Range after discard = %v", seen)
	}
}

// TestQuickAruInvariant property-tests that after any insertion order, the
// aru equals the length of the contiguous received prefix and Missing
// reports exactly the holes.
func TestQuickAruInvariant(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int(n%64) + 1
		perm := rng.Perm(total)
		b := New(0)
		received := make(map[uint64]bool)
		for _, i := range perm {
			// Skip some messages to create persistent holes.
			if rng.Intn(4) == 0 {
				continue
			}
			seq := uint64(i + 1)
			b.Insert(msg(seq))
			received[seq] = true
		}
		// Model aru.
		wantAru := uint64(0)
		for received[wantAru+1] {
			wantAru++
		}
		if b.Aru() != wantAru {
			return false
		}
		// Model missing.
		var wantMissing []uint64
		for s := wantAru + 1; s <= uint64(total); s++ {
			if !received[s] {
				wantMissing = append(wantMissing, s)
			}
		}
		gotMissing := b.Missing(nil, uint64(total), 0)
		if len(gotMissing) != len(wantMissing) {
			return false
		}
		for i := range gotMissing {
			if gotMissing[i] != wantMissing[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDiscardKeepsInvariants property-tests that interleaved inserts
// and discards keep Has/aru consistent.
func TestQuickDiscardKeepsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New(0)
		next := uint64(1)
		received := make(map[uint64]bool)
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0, 1: // insert a message within a small window ahead
				seq := next + uint64(rng.Intn(8))
				if b.Insert(msg(seq)) {
					received[seq] = true
				}
				for received[next] {
					next++
				}
			case 2: // discard a random stable prefix
				if b.Aru() > b.Floor() {
					upTo := b.Floor() + 1 + uint64(rng.Intn(int(b.Aru()-b.Floor())))
					if _, err := b.Discard(upTo); err != nil {
						return false
					}
				}
			}
			// Invariants: aru is the contiguous prefix; Has matches model.
			wantAru := uint64(0)
			for received[wantAru+1] {
				wantAru++
			}
			if b.Aru() != wantAru {
				return false
			}
			for s := uint64(1); s < next+8; s++ {
				if b.Has(s) != received[s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
