// Package seqbuf provides the sequence-ordered receive buffer used by the
// ring protocol. It stores data messages keyed by their total-order
// sequence number, tracks the local all-received-up-to (aru) value, lists
// gaps for retransmission requests, and discards stable prefixes.
package seqbuf

import (
	"fmt"

	"accelring/internal/wire"
)

// Buffer is a sequence-ordered message store. The zero value is not usable;
// create one with New. Buffer is not safe for concurrent use: the protocol
// engine is single-threaded by design.
type Buffer struct {
	msgs map[uint64]*wire.Data
	// floor: every message with seq <= floor has been received and since
	// discarded. aru never falls below floor.
	floor uint64
	// aru is the highest sequence number such that every message with a
	// sequence number at or below it has been received.
	aru uint64
	// high is the highest sequence number ever inserted.
	high uint64
}

// New returns a buffer whose aru starts at initial: every sequence number
// at or below initial is treated as already received and discarded.
// Rings start message numbering at initial+1.
func New(initial uint64) *Buffer {
	return &Buffer{
		msgs:  make(map[uint64]*wire.Data),
		floor: initial,
		aru:   initial,
		high:  initial,
	}
}

// Insert adds a message to the buffer and advances the aru across any
// newly contiguous prefix. It returns false if the message is a duplicate
// or precedes the discarded prefix (both are normal under retransmission).
func (b *Buffer) Insert(d *wire.Data) bool {
	if d.Seq <= b.floor {
		return false
	}
	if _, dup := b.msgs[d.Seq]; dup {
		return false
	}
	b.msgs[d.Seq] = d
	if d.Seq > b.high {
		b.high = d.Seq
	}
	if d.Seq == b.aru+1 {
		b.aru++
		for {
			if _, ok := b.msgs[b.aru+1]; !ok {
				break
			}
			b.aru++
		}
	}
	return true
}

// Get returns the message with the given sequence number, or nil if the
// buffer does not hold it (never received, or already discarded).
func (b *Buffer) Get(seq uint64) *wire.Data { return b.msgs[seq] }

// Has reports whether the message has been received (including messages
// already discarded as stable).
func (b *Buffer) Has(seq uint64) bool {
	if seq <= b.floor {
		return true
	}
	_, ok := b.msgs[seq]
	return ok
}

// Aru returns the local all-received-up-to value: the highest sequence
// number such that all messages at or below it have been received.
func (b *Buffer) Aru() uint64 { return b.aru }

// High returns the highest sequence number received so far.
func (b *Buffer) High() uint64 { return b.high }

// Floor returns the highest discarded sequence number.
func (b *Buffer) Floor() uint64 { return b.floor }

// Len returns the number of messages currently held.
func (b *Buffer) Len() int { return len(b.msgs) }

// Missing appends to dst the sequence numbers in (aru, to] that have not
// been received, up to max entries, and returns the extended slice.
// A non-positive max means no limit.
func (b *Buffer) Missing(dst []uint64, to uint64, max int) []uint64 {
	for seq := b.aru + 1; seq <= to; seq++ {
		if _, ok := b.msgs[seq]; ok {
			continue
		}
		dst = append(dst, seq)
		if max > 0 && len(dst) >= max {
			break
		}
	}
	return dst
}

// Discard drops every message with a sequence number at or below upTo and
// returns how many were dropped. Discarding beyond the aru is a protocol
// bug — it would throw away knowledge of what has been received — so it
// returns an error instead.
func (b *Buffer) Discard(upTo uint64) (int, error) {
	return b.DiscardFunc(upTo, nil)
}

// DiscardFunc is Discard with a release hook: fn (when non-nil) is called
// once per dropped message, after its removal from the buffer. The engine
// uses it to recycle message structs; fn must not call back into the
// buffer.
func (b *Buffer) DiscardFunc(upTo uint64, fn func(*wire.Data)) (int, error) {
	if upTo > b.aru {
		return 0, fmt.Errorf("seqbuf: discard to %d beyond aru %d", upTo, b.aru)
	}
	n := 0
	for seq := b.floor + 1; seq <= upTo; seq++ {
		if d, ok := b.msgs[seq]; ok {
			delete(b.msgs, seq)
			n++
			if fn != nil {
				fn(d)
			}
		}
	}
	if upTo > b.floor {
		b.floor = upTo
	}
	return n, nil
}

// Range calls fn for each held message with sequence number in [from, to],
// in ascending order, skipping holes. It stops early if fn returns false.
func (b *Buffer) Range(from, to uint64, fn func(*wire.Data) bool) {
	if from <= b.floor {
		from = b.floor + 1
	}
	for seq := from; seq <= to; seq++ {
		d, ok := b.msgs[seq]
		if !ok {
			continue
		}
		if !fn(d) {
			return
		}
	}
}
