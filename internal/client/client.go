// Package client is the application-side library for the ordering daemon:
// the equivalent of Spread's client library. A client connects to a local
// daemon, joins groups, multicasts to any groups (open-group semantics),
// and receives totally ordered messages and agreed group views.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/session"
)

// Event is a delivery to the client: a *Message or a *View.
type Event interface{ isEvent() }

// Message is a totally ordered group message.
type Message struct {
	// Sender is the originating client.
	Sender group.ClientID
	// Service is the delivery level it was sent with.
	Service evs.Service
	// Groups are the destination groups.
	Groups []string
	// Payload is the application data.
	Payload []byte
}

func (*Message) isEvent() {}

// View is a group's agreed membership after a join, leave, disconnect, or
// daemon membership change.
type View struct {
	Group   string
	Members []group.ClientID
}

func (*View) isEvent() {}

// Rejection is a daemon-reported, request-scoped failure that does not
// terminate the session (e.g. leaving a group this client never joined).
// Err is typed: branch with errors.Is (group.ErrNotMember,
// session.ErrInvalidService, session.ErrNotReady) or errors.As
// (*evs.MembershipChangedError). Protocol-level daemon errors remain
// fatal and surface through Client.Err instead.
type Rejection struct{ Err error }

func (*Rejection) isEvent() {}

// Sentinel errors returned by the request methods.
var (
	// ErrClosed is returned after the connection is closed.
	ErrClosed = errors.New("client: connection closed")
	// ErrInvalidService rejects an unknown service level.
	ErrInvalidService = errors.New("client: invalid service level")
	// ErrNeedTarget rejects a private message without a destination.
	ErrNeedTarget = errors.New("client: private message needs a target")
	// ErrBadGroupCount rejects a multicast with zero or too many groups.
	ErrBadGroupCount = fmt.Errorf("client: need 1..%d groups", group.MaxGroups)
)

// Client is a connection to an ordering daemon.
type Client struct {
	conn net.Conn
	id   group.ClientID

	writeMu sync.Mutex
	events  chan Event

	closeOnce sync.Once
	closeErr  error
	done      chan struct{}
}

// Dial connects to a daemon at network/addr (e.g. "tcp",
// "127.0.0.1:4803" or "unix", "/tmp/ring.sock") with a private name.
func Dial(network, addr, name string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return Attach(conn, name)
}

// Attach runs the session handshake over an established connection.
func Attach(conn net.Conn, name string) (*Client, error) {
	if err := session.WriteFrame(conn, session.Connect{Name: name}); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := session.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	w, ok := f.(session.Welcome)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("client: unexpected handshake frame %T", f)
	}
	c := &Client{
		conn:   conn,
		id:     w.Client,
		events: make(chan Event, 1024),
		done:   make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// ID returns the globally unique client identifier assigned by the daemon.
func (c *Client) ID() group.ClientID { return c.id }

// Events returns the delivery stream. The channel is closed when the
// connection ends; Err explains why.
func (c *Client) Events() <-chan Event { return c.events }

// Err returns the terminal error after Events is closed (nil on clean
// Close).
func (c *Client) Err() error {
	select {
	case <-c.done:
		if errors.Is(c.closeErr, net.ErrClosed) {
			return nil
		}
		return c.closeErr
	default:
		return nil
	}
}

func (c *Client) readLoop() {
	defer close(c.events)
	for {
		f, err := session.ReadFrame(c.conn)
		if err != nil {
			c.shutdown(err)
			return
		}
		switch v := f.(type) {
		case session.Message:
			c.events <- &Message{Sender: v.Sender, Service: v.Service, Groups: v.Groups, Payload: v.Payload}
		case session.View:
			c.events <- &View{Group: v.Group, Members: v.Members}
		case session.Error:
			switch v.Code {
			case session.CodeInvalidService, session.CodeNotMember,
				session.CodeNotReady, session.CodeMembershipChanged:
				// Request-scoped: the session stays up.
				c.events <- &Rejection{Err: v.Err()}
			default:
				c.shutdown(fmt.Errorf("client: daemon error: %w", v.Err()))
				return
			}
		}
	}
}

func (c *Client) shutdown(err error) {
	c.closeOnce.Do(func() {
		c.closeErr = err
		close(c.done)
		c.conn.Close()
	})
}

func (c *Client) write(f session.Frame) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := session.WriteFrame(c.conn, f); err != nil {
		c.shutdown(err)
		return ErrClosed
	}
	return nil
}

// Join adds this client to a group. The resulting agreed view arrives as
// a *View event.
func (c *Client) Join(groupName string) error {
	if !group.ValidGroupName(groupName) {
		return group.ErrBadGroup
	}
	return c.write(session.Join{Group: groupName})
}

// Leave removes this client from a group.
func (c *Client) Leave(groupName string) error {
	if !group.ValidGroupName(groupName) {
		return group.ErrBadGroup
	}
	return c.write(session.Leave{Group: groupName})
}

// SendPrivate sends payload to exactly one client (Spread's private
// messages), still ordered relative to all group traffic. The target's
// ClientID is learned from group views.
func (c *Client) SendPrivate(to group.ClientID, service evs.Service, payload []byte) error {
	if to == (group.ClientID{}) {
		return ErrNeedTarget
	}
	if !service.Valid() {
		return ErrInvalidService
	}
	return c.write(session.Private{To: to, Service: service, Payload: payload})
}

// Multicast sends payload to the members of the given groups with the
// given service level. The sender need not be a member (open groups); if
// it is, it receives its own message in order like everyone else.
func (c *Client) Multicast(service evs.Service, payload []byte, groups ...string) error {
	if len(groups) == 0 || len(groups) > group.MaxGroups {
		return ErrBadGroupCount
	}
	for _, g := range groups {
		if !group.ValidGroupName(g) {
			return group.ErrBadGroup
		}
	}
	if !service.Valid() {
		return ErrInvalidService
	}
	return c.write(session.Send{Service: service, Groups: groups, Payload: payload})
}

// Close tears the session down.
func (c *Client) Close() error {
	c.shutdown(net.ErrClosed)
	return nil
}
