// Package client is the application-side library for the ordering daemon:
// the equivalent of Spread's client library. A client connects to a local
// daemon, joins groups, multicasts to any groups (open-group semantics),
// and receives totally ordered messages and agreed group views.
//
// Sessions are resilient: every delivery carries a per-session sequence
// number, the client acknowledges periodically, and — with
// Config.Reconnect — a dropped connection is redialed and resumed from
// the last processed sequence, giving exactly-once delivery across the
// reconnect. The application sees a typed *Reconnected event instead of
// a dead session. Backpressure notices from the daemon surface as
// *Throttled events, graceful drains as *Detached events, and with
// Config.Key every frame is authenticated with HMAC-SHA256.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"accelring/internal/bufpool"
	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/obs"
	"accelring/internal/session"
)

// Event is a delivery to the client: a *Message, *View, *Rejection,
// *Reconnected, *Throttled, or *Detached.
type Event interface{ isEvent() }

// Message is a totally ordered group message.
type Message struct {
	// Sender is the originating client.
	Sender group.ClientID
	// Service is the delivery level it was sent with.
	Service evs.Service
	// Groups are the destination groups.
	Groups []string
	// Payload is the application data.
	Payload []byte
	// Seq is the ring sequence number that ordered this delivery (0 when
	// the daemon predates sequence propagation). With a shared tracer
	// sampling cadence it keys this delivery into a cross-node span.
	Seq uint64
}

func (*Message) isEvent() {}

// View is a group's agreed membership after a join, leave, disconnect, or
// daemon membership change.
type View struct {
	Group   string
	Members []group.ClientID
}

func (*View) isEvent() {}

// Rejection is a daemon-reported, request-scoped failure that does not
// terminate the session (e.g. leaving a group this client never joined,
// or a private message to a client that disconnected). Err is typed:
// branch with errors.Is (group.ErrNotMember, session.ErrInvalidService,
// session.ErrNotReady, session.ErrNoRecipient) or errors.As
// (*evs.MembershipChangedError). Protocol-level daemon errors remain
// fatal and surface through Client.Err instead.
type Rejection struct{ Err error }

func (*Rejection) isEvent() {}

// Reconnected reports that the connection died and was transparently
// re-established. With Resumed the session continued exactly where it
// left off (no delivery lost or duplicated). Without it the daemon could
// not resume (restarted daemon, replay window overrun): the client holds
// a fresh identity — check ID() — and must re-join its groups.
type Reconnected struct {
	// Attempts is how many dials the outage cost.
	Attempts int
	// Resumed says whether the session was resumed (vs started fresh).
	Resumed bool
}

func (*Reconnected) isEvent() {}

// Throttled is the daemon's backpressure notice: while On the session is
// queue-heavy daemon-side and the application should pace itself; an Off
// notice follows once the backlog drains.
type Throttled struct {
	On     bool
	Queued int
}

func (*Throttled) isEvent() {}

// Detached is the daemon's goodbye before releasing the connection (a
// graceful drain). With CanResume the resume token stays valid for a
// restarted daemon.
type Detached struct {
	Reason    string
	CanResume bool
}

func (*Detached) isEvent() {}

// Sentinel errors returned by the request methods.
var (
	// ErrClosed is returned after the connection is closed.
	ErrClosed = errors.New("client: connection closed")
	// ErrInvalidService rejects an unknown service level.
	ErrInvalidService = errors.New("client: invalid service level")
	// ErrNeedTarget rejects a private message without a destination.
	ErrNeedTarget = errors.New("client: private message needs a target")
	// ErrBadGroupCount rejects a multicast with zero or too many groups.
	ErrBadGroupCount = fmt.Errorf("client: need 1..%d groups", group.MaxGroups)
)

// Config configures a resilient daemon connection for DialWith.
type Config struct {
	// Network is the listener's network (default "tcp").
	Network string
	// Addr is the daemon's address.
	Addr string
	// Addrs are fallback addresses (peer daemons) tried round-robin
	// after Addr during reconnects.
	Addrs []string
	// Name is the client's private name (diagnostics only).
	Name string
	// Key, when non-empty, authenticates every session frame with a
	// truncated HMAC-SHA256 tag; must match the daemon's key. Resume
	// handshakes also answer the daemon's nonce challenge, so a recorded
	// handshake cannot be replayed by an observer.
	Key []byte
	// Reconnect redials and resumes the session after a connection
	// loss instead of failing the client.
	Reconnect bool
	// MaxAttempts bounds the dials per outage (default 8).
	MaxAttempts int
	// Backoff is the initial retry delay, doubling up to 2s (default
	// 50ms).
	Backoff time.Duration
	// AckEvery is how many deliveries go unacknowledged before an Ack
	// frame prunes the daemon's replay window (default 64).
	AckEvery int
	// EventBuffer is the Events channel capacity (default 1024).
	EventBuffer int
	// Dialer overrides net.Dial (tests and chaos harnesses).
	Dialer func(network, addr string) (net.Conn, error)
	// Tracer, when non-nil, records the client_recv lifecycle stage for
	// deliveries whose ring sequence it samples, closing the span a
	// daemon-side tracer with the same cadence opened. Nil disables
	// client-side latency attribution at zero cost.
	Tracer *obs.MsgTracer
}

func (cfg *Config) fillDefaults() {
	if cfg.Network == "" {
		cfg.Network = "tcp"
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 64
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 1024
	}
	if cfg.Dialer == nil {
		cfg.Dialer = net.Dial
	}
}

// Client is a connection to an ordering daemon.
type Client struct {
	cfg   Config
	codec session.Codec

	mu        sync.Mutex // guards conn, id, token, closing
	conn      net.Conn   // nil while reconnecting
	connGone  *sync.Cond // signaled on conn swaps and close
	id        group.ClientID
	token     uint64
	resumable bool
	closing   bool // Close started; read errors are the daemon's goodbye

	writeMu sync.Mutex
	events  chan Event

	// Delivery bookkeeping; readLoop-only.
	lastSeq uint64
	unacked int

	closeOnce sync.Once
	closeErr  error
	done      chan struct{}
}

// Dial connects to a daemon at network/addr (e.g. "tcp",
// "127.0.0.1:4803" or "unix", "/tmp/ring.sock") with a private name. The
// session does not auto-reconnect; use DialWith for that.
func Dial(network, addr, name string) (*Client, error) {
	return DialWith(Config{Network: network, Addr: addr, Name: name})
}

// DialWith connects with full control over resilience: reconnect with
// resume, fallback addresses, frame authentication, ack cadence.
func DialWith(cfg Config) (*Client, error) {
	cfg.fillDefaults()
	conn, err := cfg.Dialer(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, err
	}
	c := newClient(cfg)
	w, err := c.connectHandshake(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.adopt(conn, w)
	go c.readLoop(conn)
	return c, nil
}

// Attach runs the session handshake over an established connection (no
// reconnect: the dial target is unknown).
func Attach(conn net.Conn, name string) (*Client, error) {
	c := newClient(Config{Name: name})
	c.cfg.fillDefaults()
	w, err := c.connectHandshake(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.adopt(conn, w)
	go c.readLoop(conn)
	return c, nil
}

func newClient(cfg Config) *Client {
	c := &Client{
		cfg:    cfg,
		codec:  session.NewCodec(cfg.Key),
		events: make(chan Event, cfg.EventBuffer),
		done:   make(chan struct{}),
	}
	if c.events == nil || cap(c.events) == 0 {
		c.events = make(chan Event, 1024)
	}
	c.connGone = sync.NewCond(&c.mu)
	return c
}

// connectHandshake opens a fresh session on conn.
func (c *Client) connectHandshake(conn net.Conn) (session.Welcome, error) {
	if err := c.codec.WriteFrame(conn, session.Connect{Name: c.cfg.Name}); err != nil {
		return session.Welcome{}, err
	}
	return c.readWelcome(conn)
}

// resumeHandshake reattaches the existing session on conn.
func (c *Client) resumeHandshake(conn net.Conn) (session.Welcome, error) {
	c.mu.Lock()
	req := session.Resume{Client: c.id, Token: c.token, LastSeq: c.lastSeq}
	c.mu.Unlock()
	if err := c.codec.WriteFrame(conn, req); err != nil {
		return session.Welcome{}, err
	}
	return c.readWelcome(conn)
}

func (c *Client) readWelcome(conn net.Conn) (session.Welcome, error) {
	for {
		f, buf, err := c.codec.ReadFramePooled(conn)
		if err != nil {
			return session.Welcome{}, err
		}
		// No handshake frame aliases its read buffer (identities, tokens,
		// and nonces are value copies), so the buffer recycles right away.
		bufpool.Put(buf)
		switch v := f.(type) {
		case session.Welcome:
			return v, nil
		case session.Challenge:
			// Keyed resume freshness probe: echo the nonce so our frame
			// MAC proves we hold the key right now (not in a recording).
			if err := c.codec.WriteFrame(conn, session.ChallengeAck{Nonce: v.Nonce}); err != nil {
				return session.Welcome{}, err
			}
		case session.Error:
			return session.Welcome{}, fmt.Errorf("client: handshake refused: %w", v.Err())
		default:
			return session.Welcome{}, fmt.Errorf("client: unexpected handshake frame %T", f)
		}
	}
}

// adopt installs a fresh session's identity and connection.
func (c *Client) adopt(conn net.Conn, w session.Welcome) {
	c.mu.Lock()
	c.conn = conn
	c.id = w.Client
	c.token = w.Token
	c.resumable = w.Token != 0
	c.lastSeq = 0
	c.unacked = 0
	c.connGone.Broadcast()
	c.mu.Unlock()
}

// ID returns the globally unique client identifier assigned by the
// daemon. It changes if a reconnect could not resume (see Reconnected).
func (c *Client) ID() group.ClientID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.id
}

// Events returns the delivery stream. The channel is closed when the
// connection ends; Err explains why.
func (c *Client) Events() <-chan Event { return c.events }

// Err returns the terminal error after Events is closed (nil on clean
// Close).
func (c *Client) Err() error {
	select {
	case <-c.done:
		if errors.Is(c.closeErr, net.ErrClosed) {
			return nil
		}
		return c.closeErr
	default:
		return nil
	}
}

// readLoop processes deliveries, surviving connection losses when
// reconnect is on. Frames are read into pooled buffers; a buffer whose
// decoded frame escapes to the application (a Message, whose Payload
// aliases it zero-copy) is retained — it becomes the application's —
// while every other frame's buffer recycles immediately.
func (c *Client) readLoop(conn net.Conn) {
	defer close(c.events)
	for {
		f, buf, err := c.codec.ReadFramePooled(conn)
		if err != nil {
			select {
			case <-c.done:
				c.shutdown(err)
				return
			default:
			}
			if c.closingNow() {
				// Orderly close: the daemon acted on our Bye and closed
				// its side. Treat the EOF as clean and unblock Close.
				c.shutdown(net.ErrClosed)
				return
			}
			if !c.cfg.Reconnect {
				c.shutdown(err)
				return
			}
			next, rerr := c.reconnect(conn, err)
			if rerr != nil {
				c.shutdown(rerr)
				return
			}
			conn = next
			continue
		}
		switch v := f.(type) {
		case session.Seqd:
			if v.Seq <= c.lastSeq {
				bufpool.Put(buf)
				continue // duplicate from a resume replay
			}
			c.lastSeq = v.Seq
			if !c.handleDelivery(v.Frame) {
				bufpool.Put(buf)
				return
			}
			c.unacked++
			if c.unacked >= c.cfg.AckEvery {
				c.ack(conn)
			}
		case session.Throttle:
			c.events <- &Throttled{On: v.On, Queued: int(v.Queued)}
		case session.Detach:
			c.events <- &Detached{Reason: v.Reason, CanResume: v.CanResume}
			// The daemon closes the connection right after; the next
			// read error runs the normal reconnect path.
		default:
			// Unsequenced Message/View/Error (pre-resume daemons).
			if !c.handleDelivery(f) {
				bufpool.Put(buf)
				return
			}
		}
		if !retainsBuf(f) {
			bufpool.Put(buf)
		}
	}
}

// retainsBuf reports whether the decoded frame's zero-copy fields alias
// the read buffer after dispatch — true only for delivered Messages,
// whose Payload is handed to the application without a copy.
func retainsBuf(f session.Frame) bool {
	switch v := f.(type) {
	case session.Seqd:
		return retainsBuf(v.Frame)
	case session.Message:
		return len(v.Payload) > 0
	}
	return false
}

// handleDelivery dispatches one delivered frame; false means the session
// is over (fatal daemon error).
func (c *Client) handleDelivery(f session.Frame) bool {
	switch v := f.(type) {
	case session.Message:
		if v.Seq != 0 && c.cfg.Tracer.Sampled(v.Seq) {
			c.cfg.Tracer.Record(obs.MsgEvent{Seq: v.Seq, Stage: obs.StageClientRecv, At: time.Now()})
		}
		c.events <- &Message{Sender: v.Sender, Service: v.Service, Groups: v.Groups, Payload: v.Payload, Seq: v.Seq}
	case session.View:
		c.events <- &View{Group: v.Group, Members: v.Members}
	case session.Error:
		switch v.Code {
		case session.CodeInvalidService, session.CodeNotMember,
			session.CodeNotReady, session.CodeMembershipChanged,
			session.CodeNoRecipient:
			// Request-scoped: the session stays up.
			c.events <- &Rejection{Err: v.Err()}
		default:
			c.shutdown(fmt.Errorf("client: daemon error: %w", v.Err()))
			return false
		}
	}
	return true
}

// ack tells the daemon every delivery up to lastSeq arrived.
func (c *Client) ack(conn net.Conn) {
	c.unacked = 0
	c.writeMu.Lock()
	_ = c.codec.WriteFrame(conn, session.Ack{Seq: c.lastSeq})
	c.writeMu.Unlock()
}

// reconnect redials (Addr, then the fallback Addrs round-robin) and
// resumes. If the daemon no longer knows the session — a restart, or a
// replay window overrun — it falls back to a fresh Connect: the
// Reconnected event then carries Resumed=false and the application must
// re-join its groups.
func (c *Client) reconnect(old net.Conn, cause error) (net.Conn, error) {
	c.dropConn(old)
	addrs := append([]string{c.cfg.Addr}, c.cfg.Addrs...)
	backoff := c.cfg.Backoff
	tryResume := c.resumableNow()
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		select {
		case <-c.done:
			return nil, ErrClosed
		default:
		}
		conn, err := c.cfg.Dialer(c.cfg.Network, addrs[(attempt-1)%len(addrs)])
		if err == nil {
			if tryResume {
				w, herr := c.resumeHandshake(conn)
				if herr == nil {
					c.installConn(conn)
					c.events <- &Reconnected{Attempts: attempt, Resumed: w.Resumed}
					c.ack(conn) // prune the daemon's freshly replayed window
					return conn, nil
				}
				conn.Close()
				if errors.Is(herr, session.ErrSessionUnknown) {
					tryResume = false // fresh session on the next dial
					continue          // no backoff: the daemon answered
				}
			} else {
				w, herr := c.connectHandshake(conn)
				if herr == nil {
					c.adopt(conn, w)
					c.events <- &Reconnected{Attempts: attempt, Resumed: false}
					return conn, nil
				}
				conn.Close()
			}
		}
		select {
		case <-c.done:
			return nil, ErrClosed
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
	return nil, fmt.Errorf("client: reconnect failed after %d attempts: %w", c.cfg.MaxAttempts, cause)
}

func (c *Client) resumableNow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumable
}

func (c *Client) closingNow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closing
}

// dropConn clears the current connection (write calls park until the
// next installConn/adopt).
func (c *Client) dropConn(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
}

// installConn publishes a resumed connection (same identity).
func (c *Client) installConn(conn net.Conn) {
	c.mu.Lock()
	c.conn = conn
	c.connGone.Broadcast()
	c.mu.Unlock()
}

func (c *Client) shutdown(err error) {
	c.closeOnce.Do(func() {
		c.closeErr = err
		close(c.done)
		c.mu.Lock()
		if c.conn != nil {
			c.conn.Close()
		}
		c.connGone.Broadcast()
		c.mu.Unlock()
	})
}

// awaitConn returns the current connection, waiting out a reconnect.
func (c *Client) awaitConn() (net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.conn == nil {
		select {
		case <-c.done:
			return nil, ErrClosed
		default:
		}
		c.connGone.Wait()
	}
	select {
	case <-c.done:
		return nil, ErrClosed
	default:
	}
	return c.conn, nil
}

func (c *Client) write(f session.Frame) error {
	for {
		conn, err := c.awaitConn()
		if err != nil {
			return err
		}
		c.writeMu.Lock()
		err = c.codec.WriteFrame(conn, f)
		c.writeMu.Unlock()
		if err == nil {
			return nil
		}
		if !c.cfg.Reconnect {
			c.shutdown(err)
			return ErrClosed
		}
		// The write raced a dying connection: let the readLoop
		// re-establish it and retry.
		c.dropConn(conn)
	}
}

// Join adds this client to a group. The resulting agreed view arrives as
// a *View event.
func (c *Client) Join(groupName string) error {
	if !group.ValidGroupName(groupName) {
		return group.ErrBadGroup
	}
	return c.write(session.Join{Group: groupName})
}

// Leave removes this client from a group.
func (c *Client) Leave(groupName string) error {
	if !group.ValidGroupName(groupName) {
		return group.ErrBadGroup
	}
	return c.write(session.Leave{Group: groupName})
}

// SendPrivate sends payload to exactly one client (Spread's private
// messages), still ordered relative to all group traffic. The target's
// ClientID is learned from group views. A target that disconnected comes
// back as a non-fatal *Rejection carrying session.ErrNoRecipient.
func (c *Client) SendPrivate(to group.ClientID, service evs.Service, payload []byte) error {
	if to == (group.ClientID{}) {
		return ErrNeedTarget
	}
	if !service.Valid() {
		return ErrInvalidService
	}
	return c.write(session.Private{To: to, Service: service, Payload: payload})
}

// Multicast sends payload to the members of the given groups with the
// given service level. The sender need not be a member (open groups); if
// it is, it receives its own message in order like everyone else.
func (c *Client) Multicast(service evs.Service, payload []byte, groups ...string) error {
	if len(groups) == 0 || len(groups) > group.MaxGroups {
		return ErrBadGroupCount
	}
	for _, g := range groups {
		if !group.ValidGroupName(g) {
			return group.ErrBadGroup
		}
	}
	if !service.Valid() {
		return ErrInvalidService
	}
	return c.write(session.Send{Service: service, Groups: groups, Payload: payload})
}

// closeGrace bounds how long Close waits for the daemon to act on the
// Bye before tearing the socket down anyway.
const closeGrace = 250 * time.Millisecond

// Close tears the session down cleanly: a Bye tells the daemon to emit
// the ordered disconnect immediately instead of holding the session for
// resume. The socket is then half-closed, not closed: a full close would
// let any in-flight daemon write elicit a TCP RST, and an RST flushes
// the daemon's receive buffer — discarding a Bye it had not read yet, so
// the daemon would see a crash (detach + resume hold) instead of a clean
// goodbye. With the read side open, Close waits (bounded by closeGrace)
// for the daemon to drop the session and close its end.
func (c *Client) Close() error {
	c.mu.Lock()
	conn := c.conn
	first := !c.closing
	c.closing = true
	c.mu.Unlock()
	if conn != nil && first {
		c.writeMu.Lock()
		conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		_ = c.codec.WriteFrame(conn, session.Bye{})
		conn.SetWriteDeadline(time.Time{})
		c.writeMu.Unlock()
		// TCP and unix sockets support the half-close; anything else
		// (test pipes, chaos wrappers) falls back to an immediate close.
		if cw, ok := conn.(interface{ CloseWrite() error }); ok {
			_ = cw.CloseWrite()
			select {
			case <-c.done:
			case <-time.After(closeGrace):
			}
		}
	}
	c.shutdown(net.ErrClosed)
	return nil
}
