package client

import (
	"net"
	"testing"
	"time"

	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/session"
)

// fakeDaemon accepts one session over a pipe and lets tests script the
// daemon side of the protocol.
func fakeDaemon(t *testing.T) (net.Conn, *Client) {
	t.Helper()
	clientSide, daemonSide := net.Pipe()
	done := make(chan *Client, 1)
	errCh := make(chan error, 1)
	go func() {
		c, err := Attach(clientSide, "test-client")
		errCh <- err
		done <- c
	}()
	f, err := session.ReadFrame(daemonSide)
	if err != nil {
		t.Fatal(err)
	}
	if hello, ok := f.(session.Connect); !ok || hello.Name != "test-client" {
		t.Fatalf("handshake frame = %#v", f)
	}
	if err := session.WriteFrame(daemonSide, session.Welcome{
		Client: group.ClientID{Daemon: 5, Local: 9},
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	c := <-done
	t.Cleanup(func() { c.Close(); daemonSide.Close() })
	return daemonSide, c
}

func TestAttachHandshake(t *testing.T) {
	_, c := fakeDaemon(t)
	if c.ID() != (group.ClientID{Daemon: 5, Local: 9}) {
		t.Fatalf("id = %v", c.ID())
	}
}

func TestAttachRejectsBadHandshake(t *testing.T) {
	clientSide, daemonSide := net.Pipe()
	defer daemonSide.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := Attach(clientSide, "x")
		errCh <- err
	}()
	if _, err := session.ReadFrame(daemonSide); err != nil {
		t.Fatal(err)
	}
	// Send a non-welcome frame.
	if err := session.WriteFrame(daemonSide, session.Error{Msg: "nope"}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("Attach accepted a non-welcome handshake")
	}
}

func TestRequestsReachDaemon(t *testing.T) {
	daemonSide, c := fakeDaemon(t)
	// net.Pipe writes are synchronous, so drain the daemon side into a
	// channel while the client issues requests.
	frames := make(chan session.Frame, 8)
	go func() {
		for {
			f, err := session.ReadFrame(daemonSide)
			if err != nil {
				close(frames)
				return
			}
			frames <- f
		}
	}()
	next := func() session.Frame {
		select {
		case f := <-frames:
			return f
		case <-time.After(2 * time.Second):
			t.Fatal("no frame from client")
			return nil
		}
	}
	if err := c.Join("g1"); err != nil {
		t.Fatal(err)
	}
	if j, ok := next().(session.Join); !ok || j.Group != "g1" {
		t.Fatalf("got %#v", j)
	}
	if err := c.Multicast(evs.Safe, []byte("pay"), "g1", "g2"); err != nil {
		t.Fatal(err)
	}
	snd, ok := next().(session.Send)
	if !ok || snd.Service != evs.Safe || len(snd.Groups) != 2 || string(snd.Payload) != "pay" {
		t.Fatalf("got %#v", snd)
	}
	if err := c.Leave("g1"); err != nil {
		t.Fatal(err)
	}
	if l, ok := next().(session.Leave); !ok || l.Group != "g1" {
		t.Fatalf("got %#v", l)
	}
}

func TestEventsDelivered(t *testing.T) {
	daemonSide, c := fakeDaemon(t)
	go func() {
		session.WriteFrame(daemonSide, session.View{
			Group:   "g",
			Members: []group.ClientID{{Daemon: 5, Local: 9}},
		})
		session.WriteFrame(daemonSide, session.Message{
			Sender:  group.ClientID{Daemon: 1, Local: 1},
			Service: evs.Agreed,
			Groups:  []string{"g"},
			Payload: []byte("hi"),
		})
	}()
	ev := <-c.Events()
	v, ok := ev.(*View)
	if !ok || v.Group != "g" || len(v.Members) != 1 {
		t.Fatalf("got %#v", ev)
	}
	ev = <-c.Events()
	m, ok := ev.(*Message)
	if !ok || string(m.Payload) != "hi" || m.Service != evs.Agreed {
		t.Fatalf("got %#v", ev)
	}
}

func TestLocalValidation(t *testing.T) {
	_, c := fakeDaemon(t)
	if err := c.Join(""); err != group.ErrBadGroup {
		t.Fatalf("Join(\"\") = %v", err)
	}
	if err := c.Leave(""); err != group.ErrBadGroup {
		t.Fatalf("Leave(\"\") = %v", err)
	}
	if err := c.Multicast(evs.Agreed, nil); err == nil {
		t.Fatal("no groups accepted")
	}
	if err := c.Multicast(evs.Agreed, nil, ""); err != group.ErrBadGroup {
		t.Fatalf("bad group = %v", err)
	}
	if err := c.Multicast(evs.Service(0), nil, "g"); err == nil {
		t.Fatal("invalid service accepted")
	}
	many := make([]string, group.MaxGroups+1)
	for i := range many {
		many[i] = "g"
	}
	if err := c.Multicast(evs.Agreed, nil, many...); err == nil {
		t.Fatal("too many groups accepted")
	}
}

func TestCloseEndsEventStream(t *testing.T) {
	_, c := fakeDaemon(t)
	c.Close()
	select {
	case _, ok := <-c.Events():
		if ok {
			t.Fatal("received event after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("event stream did not close")
	}
	if err := c.Join("g"); err != ErrClosed {
		t.Fatalf("Join after close = %v, want ErrClosed", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err after clean close = %v, want nil", err)
	}
}

func TestDaemonErrorSurfacesInErr(t *testing.T) {
	daemonSide, c := fakeDaemon(t)
	session.WriteFrame(daemonSide, session.Error{Msg: "bad thing"})
	select {
	case _, ok := <-c.Events():
		if ok {
			t.Fatal("daemon error delivered as event")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("event stream did not close")
	}
	if err := c.Err(); err == nil {
		t.Fatal("Err is nil after daemon error")
	}
}
