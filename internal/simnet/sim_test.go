package simnet

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	// Same-time events run in scheduling order.
	s.At(20, func() { got = append(got, 4) })
	for s.Step() {
	}
	want := []int{1, 2, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("now = %v, want 30", s.Now())
	}
}

func TestSimAfterAndNesting(t *testing.T) {
	s := NewSim()
	var fired []Time
	s.After(5, func() {
		fired = append(fired, s.Now())
		s.After(7, func() { fired = append(fired, s.Now()) })
	})
	s.Drain(0)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 12 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestSimPastPanics(t *testing.T) {
	s := NewSim()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Drain(0)
}

func TestRunUntil(t *testing.T) {
	s := NewSim()
	var count int
	for i := 1; i <= 10; i++ {
		s.At(Time(i*10), func() { count++ })
	}
	s.RunUntil(50)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
	s.RunUntil(200)
	if count != 10 || s.Pending() != 0 {
		t.Fatalf("count = %d pending = %d", count, s.Pending())
	}
	// Clock advances to the deadline when events run dry.
	s.RunUntil(500)
	if s.Now() != 500 {
		t.Fatalf("now = %v, want 500", s.Now())
	}
}

func TestDrainBudget(t *testing.T) {
	s := NewSim()
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {})
	}
	if n := s.Drain(3); n != 3 {
		t.Fatalf("drained %d, want 3", n)
	}
	if n := s.Drain(0); n != 7 {
		t.Fatalf("drained %d, want 7", n)
	}
}

// TestQuickEventOrder property-tests that events always execute in
// non-decreasing time order regardless of insertion order.
func TestQuickEventOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSim()
		var times []Time
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			at := Time(rng.Int63n(1000))
			s.At(at, func() { times = append(times, s.Now()) })
		}
		s.Drain(0)
		if len(times) != n {
			return false
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int64(tc.in), got, tc.want)
		}
	}
}
