package simnet

import (
	"testing"
	"time"

	"accelring/internal/faults"
	"accelring/internal/wire"
)

func sendOne(t *testing.T, inj *faults.Injector) (delivered int, st Stats) {
	t.Helper()
	sim := NewSim()
	var got int
	net, err := NewNetwork(sim, GigabitFabric(2), func(to NodeID, p *Packet) {
		got++
	})
	if err != nil {
		t.Fatal(err)
	}
	net.SetInjector(inj, nil)
	net.Unicast(0, 1, &Packet{From: 0, Kind: wire.FrameData, Wire: 100})
	sim.RunUntil(Second)
	return got, net.Stats()
}

// TestNetworkInjector: the simulated switch must honor drop, duplicate,
// and delay decisions from the same injector type the transports accept,
// all in virtual time.
func TestNetworkInjector(t *testing.T) {
	var dropPlan faults.Plan
	dropPlan.Add(faults.Rule{Name: "drop", Model: faults.Loss{P: 1}})
	if got, st := sendOne(t, faults.New(1, dropPlan)); got != 0 || st.FilterDrops != 1 {
		t.Fatalf("drop rule: delivered=%d drops=%d", got, st.FilterDrops)
	}

	var dupPlan faults.Plan
	dupPlan.Add(faults.Rule{Name: "dup", Model: faults.Duplicate{P: 1, Copies: 2}})
	if got, st := sendOne(t, faults.New(1, dupPlan)); got != 3 || st.InjectedDups != 2 {
		t.Fatalf("dup rule: delivered=%d dups=%d", got, st.InjectedDups)
	}

	var delayPlan faults.Plan
	delayPlan.Add(faults.Rule{Name: "delay",
		Model: faults.Delay{Min: time.Millisecond, Max: time.Millisecond}})
	sim := NewSim()
	var at Time
	net, err := NewNetwork(sim, GigabitFabric(2), func(to NodeID, p *Packet) { at = sim.Now() })
	if err != nil {
		t.Fatal(err)
	}
	net.SetInjector(faults.New(1, delayPlan), nil)
	net.Unicast(0, 1, &Packet{From: 0, Kind: wire.FrameData, Wire: 100})
	sim.RunUntil(Second)
	if at < Millisecond {
		t.Fatalf("delayed packet arrived at %v, want ≥ 1ms", at)
	}
	if st := net.Stats(); st.InjectedDelays != 1 {
		t.Fatalf("InjectedDelays=%d, want 1", st.InjectedDelays)
	}
}

// TestNetworkInjectorDeterministic: two identical simulations with the
// same seed must produce identical delivery schedules.
func TestNetworkInjectorDeterministic(t *testing.T) {
	run := func() []Time {
		var plan faults.Plan
		plan.Add(faults.Rule{Name: "loss", Model: faults.Loss{P: 0.3}})
		plan.Add(faults.Rule{Name: "delay", Model: faults.Delay{Max: 2 * time.Millisecond}})
		sim := NewSim()
		var arrivals []Time
		net, err := NewNetwork(sim, GigabitFabric(3), func(to NodeID, p *Packet) {
			arrivals = append(arrivals, sim.Now())
		})
		if err != nil {
			t.Fatal(err)
		}
		net.SetInjector(faults.New(5, plan), nil)
		for i := 0; i < 50; i++ {
			net.Multicast(0, &Packet{From: 0, Kind: wire.FrameData, Wire: 500})
		}
		sim.RunUntil(Second)
		return arrivals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
