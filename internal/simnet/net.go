package simnet

import (
	"fmt"
	"time"

	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/wire"
)

// NodeID indexes a host attached to the switch (0..Nodes-1).
type NodeID int

// Packet is one frame on the simulated wire. Multicast receivers share the
// Packet and its Frame; both must be treated as read-only.
type Packet struct {
	// From is the sending host.
	From NodeID
	// Kind is the frame type, used by hosts to pick the ingress socket.
	Kind wire.FrameType
	// Wire is the modeled size in bytes on the wire, including whatever
	// header overhead the implementation profile adds. It determines
	// serialization time and buffer occupancy.
	Wire int
	// Frame is the encoded protocol frame.
	Frame []byte
}

// Config describes the modeled fabric: hosts attached to one switch by
// full-duplex links.
type Config struct {
	// Nodes is the number of hosts.
	Nodes int
	// LinkBitsPerSec is the line rate of every link (1e9 or 1e10 in the
	// paper's testbeds).
	LinkBitsPerSec float64
	// PropDelay is the one-way propagation delay of each link, including
	// PHY latency.
	PropDelay Time
	// SwitchLatency is the switch's fixed forwarding latency.
	SwitchLatency Time
	// PortBufBytes is the drop-tail buffer capacity of each switch output
	// port. The paper's acceleration benefit depends on this buffering.
	PortBufBytes int
}

// Validate checks the fabric parameters.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("simnet: %d nodes", c.Nodes)
	}
	if c.LinkBitsPerSec <= 0 {
		return fmt.Errorf("simnet: link rate %v", c.LinkBitsPerSec)
	}
	if c.PortBufBytes <= 0 {
		return fmt.Errorf("simnet: port buffer %d", c.PortBufBytes)
	}
	if c.PropDelay < 0 || c.SwitchLatency < 0 {
		return fmt.Errorf("simnet: negative latency")
	}
	return nil
}

// GigabitFabric returns the modeled 1 GbE testbed: 8 hosts on a small-
// buffer L2 switch (Catalyst 2960 class).
func GigabitFabric(nodes int) Config {
	return Config{
		Nodes:          nodes,
		LinkBitsPerSec: 1e9,
		PropDelay:      2 * Microsecond,
		SwitchLatency:  4 * Microsecond,
		PortBufBytes:   384 * 1024,
	}
}

// TenGigFabric returns the modeled 10 GbE testbed (Arista 7100T class).
func TenGigFabric(nodes int) Config {
	return Config{
		Nodes:          nodes,
		LinkBitsPerSec: 1e10,
		PropDelay:      1 * Microsecond,
		SwitchLatency:  2 * Microsecond,
		PortBufBytes:   512 * 1024,
	}
}

// DeliverFn receives a packet at a host, after the ingress filter.
type DeliverFn func(to NodeID, p *Packet)

// IngressFilter inspects a packet about to be delivered to a host and
// returns true to drop it. Loss-injection experiments install filters.
type IngressFilter func(to NodeID, p *Packet) bool

// Stats counts network-level activity.
type Stats struct {
	// Sent is the number of packets handed to sender NICs (a multicast
	// counts once).
	Sent uint64
	// Delivered is the number of per-receiver deliveries completed.
	Delivered uint64
	// SwitchDrops counts packets dropped at full switch output ports
	// (per destination).
	SwitchDrops uint64
	// FilterDrops counts packets dropped by the ingress filter or the
	// fault injector (injected loss).
	FilterDrops uint64
	// InjectedDups counts extra per-receiver copies created by the fault
	// injector.
	InjectedDups uint64
	// InjectedDelays counts per-receiver deliveries the fault injector
	// deferred.
	InjectedDelays uint64
	// BytesDelivered sums the wire size of delivered packets.
	BytesDelivered uint64
}

// Network simulates the hosts' NICs and the switch.
type Network struct {
	sim     *Sim
	cfg     Config
	deliver DeliverFn
	filter  IngressFilter
	inj     *faults.Injector
	pid     func(NodeID) evs.ProcID

	// nicFree[i] is when host i's egress link is next idle.
	nicFree []Time
	// portFree[d] / portBytes[d] model the switch output port toward
	// host d.
	portFree  []Time
	portBytes []int

	stats Stats
}

// NewNetwork builds a fabric on the given scheduler. deliver is invoked,
// in virtual time, for every packet that survives queues and filters.
func NewNetwork(sim *Sim, cfg Config, deliver DeliverFn) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if deliver == nil {
		return nil, fmt.Errorf("simnet: nil deliver function")
	}
	return &Network{
		sim:       sim,
		cfg:       cfg,
		deliver:   deliver,
		nicFree:   make([]Time, cfg.Nodes),
		portFree:  make([]Time, cfg.Nodes),
		portBytes: make([]int, cfg.Nodes),
	}, nil
}

// SetIngressFilter installs f as the per-receiver drop hook (nil clears).
func (n *Network) SetIngressFilter(f IngressFilter) { n.filter = f }

// SetInjector installs a fault injector at the per-receiver ingress point
// (nil clears), generalizing the drop-only filter: rules can also delay
// (reordering) and duplicate packets, all in deterministic virtual time.
// pid maps fabric hosts to protocol participant IDs; nil uses the
// simproc convention (node i → participant i+1).
func (n *Network) SetInjector(in *faults.Injector, pid func(NodeID) evs.ProcID) {
	if pid == nil {
		pid = func(id NodeID) evs.ProcID { return evs.ProcID(id + 1) }
	}
	n.inj = in
	n.pid = pid
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats { return n.stats }

// Config returns the fabric parameters.
func (n *Network) Config() Config { return n.cfg }

// serialize returns the time to clock p's bytes onto a link.
func (n *Network) serialize(bytes int) Time {
	return Time(float64(bytes*8) / n.cfg.LinkBitsPerSec * 1e9)
}

// Multicast sends p from its host to every other host: one serialization
// on the sender's link, replication at the switch.
func (n *Network) Multicast(from NodeID, p *Packet) {
	n.egress(from, p, -1)
}

// Unicast sends p from its host to a single destination.
func (n *Network) Unicast(from, to NodeID, p *Packet) {
	if to < 0 || int(to) >= n.cfg.Nodes {
		panic(fmt.Sprintf("simnet: unicast to invalid node %d", to))
	}
	n.egress(from, p, to)
}

// egress serializes p on the sender's link and schedules switch arrival.
// dest == -1 means multicast to all other hosts.
func (n *Network) egress(from NodeID, p *Packet, dest NodeID) {
	if from < 0 || int(from) >= n.cfg.Nodes {
		panic(fmt.Sprintf("simnet: send from invalid node %d", from))
	}
	n.stats.Sent++
	start := n.sim.Now()
	if n.nicFree[from] > start {
		start = n.nicFree[from]
	}
	done := start + n.serialize(p.Wire)
	n.nicFree[from] = done
	arrive := done + n.cfg.PropDelay + n.cfg.SwitchLatency
	n.sim.At(arrive, func() { n.switchArrive(p, dest) })
}

// switchArrive replicates p to the output ports of its destinations,
// dropping at full ports.
func (n *Network) switchArrive(p *Packet, dest NodeID) {
	if dest >= 0 {
		n.enqueuePort(dest, p)
		return
	}
	for d := 0; d < n.cfg.Nodes; d++ {
		if NodeID(d) == p.From {
			continue
		}
		n.enqueuePort(NodeID(d), p)
	}
}

func (n *Network) enqueuePort(d NodeID, p *Packet) {
	if n.portBytes[d]+p.Wire > n.cfg.PortBufBytes {
		n.stats.SwitchDrops++
		return
	}
	n.portBytes[d] += p.Wire
	start := n.sim.Now()
	if n.portFree[d] > start {
		start = n.portFree[d]
	}
	done := start + n.serialize(p.Wire)
	n.portFree[d] = done
	n.sim.At(done, func() {
		n.portBytes[d] -= p.Wire
	})
	n.sim.At(done+n.cfg.PropDelay, func() {
		if n.filter != nil && n.filter(d, p) {
			n.stats.FilterDrops++
			return
		}
		if n.inj != nil {
			dec := n.inj.Decide(time.Duration(n.sim.Now()), faults.Packet{
				From:  n.pid(p.From),
				To:    n.pid(d),
				Token: p.Kind == wire.FrameToken,
				Size:  p.Wire,
				Frame: p.Frame,
			})
			if dec.Drop {
				n.stats.FilterDrops++
				return
			}
			if dec.Delay > 0 || len(dec.Extra) > 0 {
				n.deliverCopy(d, p, dec.Delay)
				for _, extra := range dec.Extra {
					n.stats.InjectedDups++
					n.deliverCopy(d, p, extra)
				}
				return
			}
		}
		n.stats.Delivered++
		n.stats.BytesDelivered += uint64(p.Wire)
		n.deliver(d, p)
	})
}

// deliverCopy completes one (possibly deferred) delivery of p to d.
// Delayed copies are rescheduled on the event queue, so they arrive after
// packets already in flight — injected reordering.
func (n *Network) deliverCopy(d NodeID, p *Packet, delay time.Duration) {
	emit := func() {
		n.stats.Delivered++
		n.stats.BytesDelivered += uint64(p.Wire)
		n.deliver(d, p)
	}
	if delay <= 0 {
		emit()
		return
	}
	n.stats.InjectedDelays++
	n.sim.After(Time(delay), emit)
}
