// Package simnet is a discrete-event network simulator used to reproduce
// the paper's performance study. It models the testbed's essential
// resources: per-host NICs that serialize packets at line rate, a
// store-and-forward switch with per-output-port drop-tail buffers,
// propagation delay, and per-receiver loss injection. Virtual time is
// nanosecond-resolution and fully deterministic.
package simnet

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Common durations in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; old[n-1] = event{}; *h = old[:n-1]; return e }

// Sim is the discrete-event scheduler. Events scheduled for the same
// instant run in scheduling order. Sim is not safe for concurrent use; the
// whole simulation is single-threaded and deterministic.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
}

// NewSim returns an empty simulation at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run at the given virtual time. Scheduling in the past
// (before Now) is a programming error and panics: it would silently break
// causality.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.events) }

// Step runs the next event. It returns false if no events remain.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	e.fn()
	return true
}

// RunUntil executes events until virtual time exceeds deadline or no
// events remain. Events at exactly the deadline still run. The clock is
// left at the time of the last executed event (or the deadline if it ran
// dry earlier... it stays wherever it stopped).
func (s *Sim) RunUntil(deadline Time) {
	for len(s.events) > 0 && s.events[0].at <= deadline {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
	}
	if s.now < deadline && len(s.events) == 0 {
		s.now = deadline
	}
}

// Drain runs events until none remain or the event budget is exhausted.
// It returns the number of events executed. A zero or negative budget
// means no limit.
func (s *Sim) Drain(budget int) int {
	n := 0
	for s.Step() {
		n++
		if budget > 0 && n >= budget {
			break
		}
	}
	return n
}
