package simnet

import (
	"testing"

	"accelring/internal/wire"
)

type delivery struct {
	to NodeID
	at Time
	p  *Packet
}

func testFabric(nodes int) Config {
	return Config{
		Nodes:          nodes,
		LinkBitsPerSec: 1e9, // 1 Gb: 8 ns per byte
		PropDelay:      100,
		SwitchLatency:  50,
		PortBufBytes:   10000,
	}
}

func collectNet(t *testing.T, cfg Config) (*Sim, *Network, *[]delivery) {
	t.Helper()
	sim := NewSim()
	var got []delivery
	net, err := NewNetwork(sim, cfg, func(to NodeID, p *Packet) {
		got = append(got, delivery{to: to, at: sim.Now(), p: p})
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim, net, &got
}

func pkt(from NodeID, size int) *Packet {
	return &Packet{From: from, Kind: wire.FrameData, Wire: size}
}

func TestUnicastTiming(t *testing.T) {
	sim, net, got := collectNet(t, testFabric(3))
	// 1000 bytes at 1 Gb/s = 8000 ns serialization, twice (NIC + port),
	// plus 2 props and switch latency.
	net.Unicast(0, 1, pkt(0, 1000))
	sim.Drain(0)
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(*got))
	}
	want := Time(8000 + 100 + 50 + 8000 + 100)
	if (*got)[0].at != want || (*got)[0].to != 1 {
		t.Fatalf("delivered to %d at %v, want node 1 at %v", (*got)[0].to, (*got)[0].at, want)
	}
}

func TestMulticastReachesAllButSender(t *testing.T) {
	sim, net, got := collectNet(t, testFabric(5))
	net.Multicast(2, pkt(2, 100))
	sim.Drain(0)
	if len(*got) != 4 {
		t.Fatalf("deliveries = %d, want 4", len(*got))
	}
	seen := map[NodeID]bool{}
	for _, d := range *got {
		if d.to == 2 {
			t.Fatal("multicast looped back to sender")
		}
		seen[d.to] = true
	}
	if len(seen) != 4 {
		t.Fatalf("destinations = %v", seen)
	}
	// One serialization at the sender: stats count the multicast once.
	if s := net.Stats(); s.Sent != 1 || s.Delivered != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNICSerializesSequentially(t *testing.T) {
	sim, net, got := collectNet(t, testFabric(2))
	// Two back-to-back packets from node 0: the second waits for the
	// first's serialization.
	net.Unicast(0, 1, pkt(0, 1000))
	net.Unicast(0, 1, pkt(0, 1000))
	sim.Drain(0)
	if len(*got) != 2 {
		t.Fatalf("deliveries = %d", len(*got))
	}
	gap := (*got)[1].at - (*got)[0].at
	if gap != 8000 {
		t.Fatalf("inter-arrival gap = %v, want 8µs (line rate)", gap)
	}
}

// TestSwitchOutputContention: two senders bursting at one receiver share
// the receiver's port at line rate — the switch buffer absorbs the burst,
// which is the property the Accelerated Ring protocol exploits.
func TestSwitchOutputContention(t *testing.T) {
	sim, net, got := collectNet(t, testFabric(3))
	net.Unicast(0, 2, pkt(0, 1000))
	net.Unicast(1, 2, pkt(1, 1000))
	sim.Drain(0)
	if len(*got) != 2 {
		t.Fatalf("deliveries = %d", len(*got))
	}
	if s := net.Stats(); s.SwitchDrops != 0 {
		t.Fatalf("unexpected switch drops: %+v", s)
	}
	// Both NICs serialize in parallel (same finish), but the output port
	// serializes one after the other.
	gap := (*got)[1].at - (*got)[0].at
	if gap != 8000 {
		t.Fatalf("port serialization gap = %v, want 8µs", gap)
	}
}

func TestSwitchBufferOverflowDrops(t *testing.T) {
	cfg := testFabric(3)
	cfg.PortBufBytes = 2500 // room for two 1000-byte packets + slack
	sim, net, got := collectNet(t, cfg)
	// Three packets arrive at node 2's port nearly simultaneously from two
	// senders; the third overflows the 2500-byte buffer.
	net.Unicast(0, 2, pkt(0, 1000))
	net.Unicast(0, 2, pkt(0, 1000))
	net.Unicast(1, 2, pkt(1, 1000))
	sim.Drain(0)
	s := net.Stats()
	if s.SwitchDrops != 1 {
		t.Fatalf("switch drops = %d, want 1 (stats %+v)", s.SwitchDrops, s)
	}
	if len(*got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(*got))
	}
}

func TestIngressFilterDrops(t *testing.T) {
	sim, net, got := collectNet(t, testFabric(4))
	net.SetIngressFilter(func(to NodeID, p *Packet) bool { return to == 1 })
	net.Multicast(0, pkt(0, 100))
	sim.Drain(0)
	for _, d := range *got {
		if d.to == 1 {
			t.Fatal("filtered packet delivered")
		}
	}
	if len(*got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(*got))
	}
	if s := net.Stats(); s.FilterDrops != 1 {
		t.Fatalf("filter drops = %d, want 1", s.FilterDrops)
	}
}

func TestTokenOvertakesQueuedData(t *testing.T) {
	// A small token sent right after a large data burst from ANOTHER host
	// can arrive at the destination while the burst is still draining:
	// separate NICs, shared output port. Here we check the opposite
	// ordering property too: packets from one NIC stay in order.
	sim, net, got := collectNet(t, testFabric(3))
	big := pkt(0, 9000)
	small := &Packet{From: 0, Kind: wire.FrameToken, Wire: 100}
	net.Multicast(0, big)
	net.Unicast(0, 1, small)
	sim.Drain(0)
	var kinds []wire.FrameType
	for _, d := range *got {
		if d.to == 1 {
			kinds = append(kinds, d.p.Kind)
		}
	}
	if len(kinds) != 2 || kinds[0] != wire.FrameData || kinds[1] != wire.FrameToken {
		t.Fatalf("arrival order at node 1 = %v, want [data token]", kinds)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"gigabit preset", GigabitFabric(8), true},
		{"ten gig preset", TenGigFabric(8), true},
		{"zero nodes", Config{LinkBitsPerSec: 1e9, PortBufBytes: 1}, false},
		{"zero rate", Config{Nodes: 2, PortBufBytes: 1}, false},
		{"zero buffer", Config{Nodes: 2, LinkBitsPerSec: 1e9}, false},
		{"negative delay", Config{Nodes: 2, LinkBitsPerSec: 1e9, PortBufBytes: 1, PropDelay: -1}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, ok = %v", err, tc.ok)
			}
		})
	}
	if _, err := NewNetwork(NewSim(), GigabitFabric(2), nil); err == nil {
		t.Fatal("nil deliver accepted")
	}
}
