package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accelring/internal/wire"
)

// TestQuickConservation property-tests the fabric's accounting: with
// random traffic, deliveries + switch drops + filter drops exactly equals
// the per-receiver replication of everything sent, and per-receiver
// arrival order from a single sender is FIFO.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 2 + rng.Intn(6)
		cfg := Config{
			Nodes:          nodes,
			LinkBitsPerSec: 1e9,
			PropDelay:      Time(rng.Intn(5000)),
			SwitchLatency:  Time(rng.Intn(5000)),
			PortBufBytes:   2000 + rng.Intn(100000),
		}
		sim := NewSim()
		type arrival struct {
			from NodeID
			id   int
		}
		arrivals := make(map[NodeID][]arrival)
		var net *Network
		var err error
		net, err = NewNetwork(sim, cfg, func(to NodeID, p *Packet) {
			arrivals[to] = append(arrivals[to], arrival{from: p.From, id: int(p.Wire)})
		})
		if err != nil {
			return false
		}
		dropEvery := 0
		if rng.Intn(2) == 0 {
			dropEvery = 2 + rng.Intn(5)
			count := 0
			net.SetIngressFilter(func(to NodeID, p *Packet) bool {
				count++
				return count%dropEvery == 0
			})
		}
		expected := uint64(0)
		sends := 20 + rng.Intn(200)
		for i := 0; i < sends; i++ {
			from := NodeID(rng.Intn(nodes))
			p := &Packet{From: from, Kind: wire.FrameData, Wire: 100 + i}
			if rng.Intn(4) == 0 && nodes > 1 {
				to := NodeID(rng.Intn(nodes))
				for to == from {
					to = NodeID(rng.Intn(nodes))
				}
				net.Unicast(from, to, p)
				expected++
			} else {
				net.Multicast(from, p)
				expected += uint64(nodes - 1)
			}
			// Occasionally let the network drain partially.
			if rng.Intn(10) == 0 {
				sim.Drain(rng.Intn(100))
			}
		}
		sim.Drain(0)
		s := net.Stats()
		if s.Delivered+s.SwitchDrops+s.FilterDrops != expected {
			t.Logf("seed %d: delivered %d + swdrop %d + fdrop %d != expected %d",
				seed, s.Delivered, s.SwitchDrops, s.FilterDrops, expected)
			return false
		}
		// FIFO per (sender, receiver) pair: Wire encodes the send index,
		// monotonically increasing per sender.
		for to, list := range arrivals {
			last := make(map[NodeID]int)
			for _, a := range list {
				if prev, ok := last[a.from]; ok && a.id <= prev {
					t.Logf("seed %d: reorder at node %d from %d: %d after %d",
						seed, to, a.from, a.id, prev)
					return false
				}
				last[a.from] = a.id
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
