package group

import (
	"hash/fnv"
	"sort"
	"sync"
)

func sortedUnique(ss []string) []string {
	sort.Strings(ss)
	out := ss[:0]
	var prev string
	for i, s := range ss {
		if i == 0 || s != prev {
			out = append(out, s)
			prev = s
		}
	}
	return out
}

// RingOf maps a group name to the ring that owns it in an N-ring sharded
// deployment, with a stable FNV-1a hash: every daemon computes the same
// ring for the same name, forever. The function must never change — a
// deployment that disagreed on it (even transiently, during a rolling
// upgrade) would split one group's traffic across two rings and break the
// group's total order. shards <= 1 always maps to ring 0.
func RingOf(group string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(group))
	return int(h.Sum64() % uint64(shards))
}

// ShardedTable partitions the replicated group-membership state of a
// sharded daemon: one Table per ring. The default placement is RingOf
// (pure hash), and live migration (PR 9) can re-home individual groups
// with a route override — overrides are installed at the migration's
// globally ordered close point, so every daemon flips a group's route at
// the same place in the merged total order. The route map has its own
// read-write lock (reads on the submit hot path, writes only at migration
// close); each per-ring Table is still mutated only by applying ordered
// operations, which since the cross-ring merger serializes all rings'
// envelope application needs no further locking. Cross-ring aggregations
// (GroupsOf, Groups) remain for callers that serialize all access
// themselves, like the library facade's single mutex.
type ShardedTable struct {
	tables []*Table

	mu     sync.RWMutex
	routes map[string]int // migration overrides: group -> owning ring
}

// NewShardedTable returns shards empty per-ring tables (shards >= 1).
func NewShardedTable(shards int) *ShardedTable {
	if shards < 1 {
		shards = 1
	}
	s := &ShardedTable{tables: make([]*Table, shards)}
	for i := range s.tables {
		s.tables[i] = NewTable()
	}
	return s
}

// Shards returns the ring count.
func (s *ShardedTable) Shards() int { return len(s.tables) }

// Ring returns the ring owning a group name: a migration override when
// one is installed, the stable RingOf hash otherwise.
func (s *ShardedTable) Ring(group string) int {
	if len(s.tables) <= 1 {
		return 0
	}
	s.mu.RLock()
	r, ok := s.routes[group]
	s.mu.RUnlock()
	if ok {
		return r
	}
	return RingOf(group, len(s.tables))
}

// SetRoute installs a route override for a group without touching member
// state. The migration protocol calls it when a MigrateBegin is applied,
// so new submissions head for the target ring (where they are buffered
// until the ordered close point) while the source ring drains.
func (s *ShardedTable) SetRoute(group string, ring int) {
	s.mu.Lock()
	if s.routes == nil {
		s.routes = make(map[string]int)
	}
	s.routes[group] = ring
	s.mu.Unlock()
}

// Rehome moves a group's membership state and route from ring `from` to
// ring `to`. It must be called at the migration's ordered close point on
// every daemon (the cross-ring merger guarantees that point is the same
// everywhere), so replicated tables stay identical. Rehoming to the
// group's hash-home ring clears the override instead of storing one.
func (s *ShardedTable) Rehome(group string, from, to int) {
	if from == to {
		return
	}
	src, dst := s.tables[from], s.tables[to]
	for _, c := range src.Members(group) {
		_ = src.Leave(c, group)
		_ = dst.Join(c, group)
	}
	s.mu.Lock()
	if to == RingOf(group, len(s.tables)) {
		delete(s.routes, group)
	} else {
		if s.routes == nil {
			s.routes = make(map[string]int)
		}
		s.routes[group] = to
	}
	s.mu.Unlock()
}

// Table returns ring r's table.
func (s *ShardedTable) Table(r int) *Table { return s.tables[r] }

// For returns the table owning a group name.
func (s *ShardedTable) For(group string) *Table { return s.tables[s.Ring(group)] }

// GroupsOf aggregates a client's joined groups across every ring, sorted.
func (s *ShardedTable) GroupsOf(c ClientID) []string {
	var out []string
	for _, t := range s.tables {
		out = append(out, t.GroupsOf(c)...)
	}
	return sortedUnique(out)
}

// Groups aggregates all group names across every ring, sorted.
func (s *ShardedTable) Groups() []string {
	var out []string
	for _, t := range s.tables {
		out = append(out, t.Groups()...)
	}
	return sortedUnique(out)
}

// RingGroups is one ring's share of a split multi-group destination list.
type RingGroups struct {
	Ring   int
	Groups []string
}

// SplitByRing partitions a multi-group destination list by owning ring,
// in ascending ring order — deterministic, unlike the map iteration it
// replaces, so two identical runs submit a spanning send's per-ring
// copies in the same order and chaos replays reproduce byte-identical
// delivery logs. The result reuses dst's backing array when it has
// capacity, and the common case — every destination group on one ring,
// always true for shards <= 1 — aliases the caller's groups slice without
// allocating. A spanning send still becomes one independent ordered
// message per ring; the cross-ring merger is what reunifies the rings'
// streams into one global delivery order.
func (s *ShardedTable) SplitByRing(groups []string, dst []RingGroups) []RingGroups {
	dst = dst[:0]
	if len(groups) == 0 {
		return dst
	}
	var ringBuf [MaxGroups]int
	rings := ringBuf[:0]
	if len(groups) > MaxGroups {
		rings = make([]int, 0, len(groups))
	}
	first := s.Ring(groups[0])
	mixed := false
	for _, g := range groups {
		r := s.Ring(g)
		rings = append(rings, r)
		if r != first {
			mixed = true
		}
	}
	if !mixed {
		return append(dst, RingGroups{Ring: first, Groups: groups})
	}
	for r := 0; r < len(s.tables); r++ {
		var sub []string
		for i, g := range groups {
			if rings[i] == r {
				sub = append(sub, g)
			}
		}
		if sub != nil {
			dst = append(dst, RingGroups{Ring: r, Groups: sub})
		}
	}
	return dst
}
