package group

import (
	"hash/fnv"
	"sort"
)

func sortedUnique(ss []string) []string {
	sort.Strings(ss)
	out := ss[:0]
	var prev string
	for i, s := range ss {
		if i == 0 || s != prev {
			out = append(out, s)
			prev = s
		}
	}
	return out
}

// RingOf maps a group name to the ring that owns it in an N-ring sharded
// deployment, with a stable FNV-1a hash: every daemon computes the same
// ring for the same name, forever. The function must never change — a
// deployment that disagreed on it (even transiently, during a rolling
// upgrade) would split one group's traffic across two rings and break the
// group's total order. shards <= 1 always maps to ring 0.
func RingOf(group string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(group))
	return int(h.Sum64() % uint64(shards))
}

// ShardedTable partitions the replicated group-membership state of a
// sharded daemon: one Table per ring. Because RingOf pins each group — and
// therefore every join, leave, and message for it — to exactly one ring,
// no group's state ever spans two tables, and each table is mutated only
// by applying its own ring's totally ordered operations on that ring's
// protocol goroutine. The tables need no common lock for that confinement;
// cross-ring aggregations (GroupsOf, Groups) are for callers that
// serialize all access themselves, like the library facade's single mutex.
type ShardedTable struct {
	tables []*Table
}

// NewShardedTable returns shards empty per-ring tables (shards >= 1).
func NewShardedTable(shards int) *ShardedTable {
	if shards < 1 {
		shards = 1
	}
	s := &ShardedTable{tables: make([]*Table, shards)}
	for i := range s.tables {
		s.tables[i] = NewTable()
	}
	return s
}

// Shards returns the ring count.
func (s *ShardedTable) Shards() int { return len(s.tables) }

// Ring returns the ring owning a group name.
func (s *ShardedTable) Ring(group string) int { return RingOf(group, len(s.tables)) }

// Table returns ring r's table.
func (s *ShardedTable) Table(r int) *Table { return s.tables[r] }

// For returns the table owning a group name.
func (s *ShardedTable) For(group string) *Table { return s.tables[s.Ring(group)] }

// GroupsOf aggregates a client's joined groups across every ring, sorted.
func (s *ShardedTable) GroupsOf(c ClientID) []string {
	var out []string
	for _, t := range s.tables {
		out = append(out, t.GroupsOf(c)...)
	}
	return sortedUnique(out)
}

// Groups aggregates all group names across every ring, sorted.
func (s *ShardedTable) Groups() []string {
	var out []string
	for _, t := range s.tables {
		out = append(out, t.Groups()...)
	}
	return sortedUnique(out)
}

// SplitByRing partitions a multi-group destination list by owning ring:
// the result maps ring index -> the subset of groups it owns, preserving
// the caller's order within each subset. A multi-group send spanning
// several rings becomes one independent ordered message per ring — each
// group still sees a single total order, but cross-group delivery order
// (guaranteed on a single ring) is NOT preserved across rings.
func (s *ShardedTable) SplitByRing(groups []string) map[int][]string {
	out := make(map[int][]string)
	for _, g := range groups {
		r := s.Ring(g)
		out[r] = append(out[r], g)
	}
	return out
}
