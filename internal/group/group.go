// Package group implements the Spread-like group-messaging layer on top of
// the totally ordered ring: named groups with open-group semantics (a
// client need not join a group to send to it), multi-group multicast (one
// message to the members of several groups, ordered consistently across
// groups), and agreed group views. Group joins and leaves travel as
// ordered messages themselves, so every daemon applies them at the same
// point in the total order and group views are identical everywhere.
package group

import (
	"errors"
	"fmt"
	"sort"

	"accelring/internal/evs"
)

// MaxGroupName bounds group name length, as Spread bounds its descriptive
// group names.
const MaxGroupName = 32

// MaxGroups bounds the groups of one multi-group multicast.
const MaxGroups = 16

// ClientID identifies a client globally: the daemon it is attached to and
// a daemon-local identifier.
type ClientID struct {
	Daemon evs.ProcID
	Local  uint32
}

func (c ClientID) String() string { return fmt.Sprintf("%d#%d", c.Daemon, c.Local) }

// less orders clients for deterministic view listings.
func (c ClientID) less(o ClientID) bool {
	if c.Daemon != o.Daemon {
		return c.Daemon < o.Daemon
	}
	return c.Local < o.Local
}

// ValidGroupName reports whether a group name is usable.
func ValidGroupName(g string) bool {
	return len(g) > 0 && len(g) <= MaxGroupName
}

// Table is each daemon's replica of the data center's group membership.
// It must only be mutated by applying totally ordered operations, so every
// daemon's table stays identical.
type Table struct {
	// groups maps group name -> member set.
	groups map[string]map[ClientID]struct{}
	// byClient maps client -> joined group names.
	byClient map[ClientID]map[string]struct{}
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		groups:   make(map[string]map[ClientID]struct{}),
		byClient: make(map[ClientID]map[string]struct{}),
	}
}

// Errors returned by Table operations.
var (
	ErrBadGroup  = errors.New("group: invalid group name")
	ErrNotMember = errors.New("group: client is not a member")
)

// Join adds a client to a group. Joining twice is a no-op.
func (t *Table) Join(c ClientID, g string) error {
	if !ValidGroupName(g) {
		return ErrBadGroup
	}
	members := t.groups[g]
	if members == nil {
		members = make(map[ClientID]struct{})
		t.groups[g] = members
	}
	members[c] = struct{}{}
	gs := t.byClient[c]
	if gs == nil {
		gs = make(map[string]struct{})
		t.byClient[c] = gs
	}
	gs[g] = struct{}{}
	return nil
}

// Leave removes a client from a group.
func (t *Table) Leave(c ClientID, g string) error {
	if !ValidGroupName(g) {
		return ErrBadGroup
	}
	members := t.groups[g]
	if _, ok := members[c]; !ok {
		return ErrNotMember
	}
	delete(members, c)
	if len(members) == 0 {
		delete(t.groups, g)
	}
	if gs := t.byClient[c]; gs != nil {
		delete(gs, g)
		if len(gs) == 0 {
			delete(t.byClient, c)
		}
	}
	return nil
}

// Disconnect removes a client from every group and returns the groups it
// left, sorted.
func (t *Table) Disconnect(c ClientID) []string {
	gs := t.byClient[c]
	if len(gs) == 0 {
		delete(t.byClient, c)
		return nil
	}
	left := make([]string, 0, len(gs))
	for g := range gs {
		left = append(left, g)
		members := t.groups[g]
		delete(members, c)
		if len(members) == 0 {
			delete(t.groups, g)
		}
	}
	delete(t.byClient, c)
	sort.Strings(left)
	return left
}

// DropDaemon disconnects every client of the given daemon (used when a
// daemon leaves the configuration) and returns the affected groups.
func (t *Table) DropDaemon(d evs.ProcID) []string {
	var clients []ClientID
	for c := range t.byClient {
		if c.Daemon == d {
			clients = append(clients, c)
		}
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i].less(clients[j]) })
	affected := make(map[string]struct{})
	for _, c := range clients {
		for _, g := range t.Disconnect(c) {
			affected[g] = struct{}{}
		}
	}
	out := make([]string, 0, len(affected))
	for g := range affected {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Has reports whether the group currently has any members in this table —
// a cheap existence probe the cross-ring merge layer uses to locate a
// migrated group's state without copying the member list.
func (t *Table) Has(g string) bool {
	return len(t.groups[g]) > 0
}

// Members returns the sorted membership of a group (nil if empty).
func (t *Table) Members(g string) []ClientID {
	members := t.groups[g]
	if len(members) == 0 {
		return nil
	}
	out := make([]ClientID, 0, len(members))
	for c := range members {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// GroupsOf returns the sorted groups a client has joined.
func (t *Table) GroupsOf(c ClientID) []string {
	gs := t.byClient[c]
	if len(gs) == 0 {
		return nil
	}
	out := make([]string, 0, len(gs))
	for g := range gs {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Recipients returns the deduplicated, sorted union of the members of the
// given groups — the delivery set of a multi-group multicast.
func (t *Table) Recipients(groups []string) []ClientID {
	set := make(map[ClientID]struct{})
	for _, g := range groups {
		for c := range t.groups[g] {
			set[c] = struct{}{}
		}
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]ClientID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Groups returns all group names, sorted.
func (t *Table) Groups() []string {
	out := make([]string, 0, len(t.groups))
	for g := range t.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}
