package group

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingOfPinned pins the routing hash forever: these golden values must
// NEVER change, or a mixed-version deployment would route one group to two
// different rings and break its total order. If this test fails, the fix
// is to revert the hash — not to update the goldens.
func TestRingOfPinned(t *testing.T) {
	goldens := []struct {
		group        string
		ring2, ring4 int
	}{
		{"orders", 0, 0},
		{"inventory", 1, 3},
		{"chat", 1, 3},
		{"metrics", 0, 2},
		{"g-0", 1, 3},
		{"g-1", 0, 0},
		{"g-2", 1, 1},
		{"g-3", 0, 2},
	}
	for _, g := range goldens {
		if got := RingOf(g.group, 2); got != g.ring2 {
			t.Errorf("RingOf(%q, 2) = %d, want %d (routing hash changed!)", g.group, got, g.ring2)
		}
		if got := RingOf(g.group, 4); got != g.ring4 {
			t.Errorf("RingOf(%q, 4) = %d, want %d (routing hash changed!)", g.group, got, g.ring4)
		}
	}
	// Degenerate shard counts all collapse to ring 0.
	for _, shards := range []int{-1, 0, 1} {
		if got := RingOf("anything", shards); got != 0 {
			t.Errorf("RingOf(_, %d) = %d, want 0", shards, got)
		}
	}
}

// TestRingOfSpreads sanity-checks that the hash actually distributes load:
// over many group names every ring of a 4-way split owns a healthy share.
func TestRingOfSpreads(t *testing.T) {
	const shards = 4
	counts := make([]int, shards)
	for i := 0; i < 4000; i++ {
		r := RingOf(fmt.Sprintf("group-%d", i), shards)
		if r < 0 || r >= shards {
			t.Fatalf("ring %d out of range", r)
		}
		counts[r]++
	}
	for r, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("ring %d owns %d/4000 groups — hash is badly skewed: %v", r, c, counts)
		}
	}
}

func TestShardedTableRoutingAndAggregation(t *testing.T) {
	s := NewShardedTable(2)
	if s.Shards() != 2 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	alice := ClientID{Daemon: 1, Local: 1}
	bob := ClientID{Daemon: 2, Local: 1}

	// "g-0" lives on ring 1, "g-1" on ring 0 (pinned above).
	if err := s.For("g-0").Join(alice, "g-0"); err != nil {
		t.Fatal(err)
	}
	if err := s.For("g-1").Join(alice, "g-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.For("g-1").Join(bob, "g-1"); err != nil {
		t.Fatal(err)
	}

	// Each group's state lives only on its owning ring's table.
	if got := s.Table(1).Members("g-0"); !reflect.DeepEqual(got, []ClientID{alice}) {
		t.Fatalf("ring 1 members of g-0 = %v", got)
	}
	if got := s.Table(0).Members("g-0"); got != nil {
		t.Fatalf("g-0 leaked onto ring 0: %v", got)
	}
	if got := s.Table(0).Members("g-1"); !reflect.DeepEqual(got, []ClientID{alice, bob}) {
		t.Fatalf("ring 0 members of g-1 = %v", got)
	}

	// Aggregations see across rings.
	if got := s.GroupsOf(alice); !reflect.DeepEqual(got, []string{"g-0", "g-1"}) {
		t.Fatalf("GroupsOf(alice) = %v", got)
	}
	if got := s.Groups(); !reflect.DeepEqual(got, []string{"g-0", "g-1"}) {
		t.Fatalf("Groups() = %v", got)
	}

	// A multi-group destination list splits by owning ring, ascending,
	// with the caller's order kept within each ring's subset.
	split := s.SplitByRing([]string{"g-0", "g-1", "g-2", "g-3"}, nil)
	want := []RingGroups{{0, []string{"g-1", "g-3"}}, {1, []string{"g-0", "g-2"}}}
	if !reflect.DeepEqual(split, want) {
		t.Fatalf("SplitByRing = %v, want %v", split, want)
	}
}

// TestSplitByRingDeterministicAndFast pins the two PR 9 bugfixes on the
// split itself: the result is in ascending ring order on every call (the
// old map return iterated nondeterministically), and the single-ring case
// aliases the input without allocating.
func TestSplitByRingDeterministicAndFast(t *testing.T) {
	s := NewShardedTable(4)
	groups := []string{"g-0", "g-3", "g-1", "g-2", "chat"} // rings 3,2,0,1,3
	var scratch []RingGroups
	var first []RingGroups
	for i := 0; i < 100; i++ {
		scratch = s.SplitByRing(groups, scratch)
		if i == 0 {
			first = append([]RingGroups(nil), scratch...)
			for j := 1; j < len(scratch); j++ {
				if scratch[j].Ring <= scratch[j-1].Ring {
					t.Fatalf("rings not ascending: %v", scratch)
				}
			}
			continue
		}
		if !reflect.DeepEqual(scratch, first) {
			t.Fatalf("split not deterministic: run %d = %v, first = %v", i, scratch, first)
		}
	}

	// Single-ring fast path: no allocation, input aliased.
	one := []string{"g-1"} // ring 0
	scratch = s.SplitByRing(one, scratch)
	allocs := testing.AllocsPerRun(100, func() {
		scratch = s.SplitByRing(one, scratch)
	})
	if allocs != 0 {
		t.Fatalf("single-ring SplitByRing allocates %v/op, want 0", allocs)
	}
	if len(scratch) != 1 || scratch[0].Ring != 0 || &scratch[0].Groups[0] != &one[0] {
		t.Fatalf("single-ring split = %+v, want alias of input on ring 0", scratch)
	}

	// Empty input.
	if got := s.SplitByRing(nil, scratch); len(got) != 0 {
		t.Fatalf("empty split = %v", got)
	}
}

// TestRehome moves a group's members and route between rings and back.
func TestRehome(t *testing.T) {
	s := NewShardedTable(2)
	alice := ClientID{Daemon: 1, Local: 1}
	bob := ClientID{Daemon: 2, Local: 1}
	// "g-0" hashes to ring 1.
	if err := s.For("g-0").Join(alice, "g-0"); err != nil {
		t.Fatal(err)
	}
	if err := s.For("g-0").Join(bob, "g-0"); err != nil {
		t.Fatal(err)
	}

	s.Rehome("g-0", 1, 0)
	if got := s.Ring("g-0"); got != 0 {
		t.Fatalf("Ring after rehome = %d, want 0", got)
	}
	if got := s.Table(0).Members("g-0"); !reflect.DeepEqual(got, []ClientID{alice, bob}) {
		t.Fatalf("ring 0 members after rehome = %v", got)
	}
	if got := s.Table(1).Members("g-0"); got != nil {
		t.Fatalf("stale members on source ring: %v", got)
	}
	// Other groups are unaffected.
	if got := s.Ring("g-1"); got != 0 {
		t.Fatalf("Ring(g-1) = %d, want 0", got)
	}

	// Migrating back to the hash home clears the override.
	s.Rehome("g-0", 0, 1)
	s.mu.RLock()
	_, overridden := s.routes["g-0"]
	s.mu.RUnlock()
	if overridden {
		t.Fatal("override not cleared after rehoming to hash home")
	}
	if got := s.Table(1).Members("g-0"); !reflect.DeepEqual(got, []ClientID{alice, bob}) {
		t.Fatalf("ring 1 members after return = %v", got)
	}
}
