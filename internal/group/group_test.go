package group

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestJoinLeaveMembers(t *testing.T) {
	tbl := NewTable()
	a := ClientID{Daemon: 1, Local: 1}
	b := ClientID{Daemon: 2, Local: 1}
	if err := tbl.Join(a, "chat"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Join(b, "chat"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Join(a, "chat"); err != nil { // idempotent
		t.Fatal(err)
	}
	got := tbl.Members("chat")
	want := []ClientID{a, b}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("members = %v, want %v", got, want)
	}
	if err := tbl.Leave(a, "chat"); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Members("chat"); !reflect.DeepEqual(got, []ClientID{b}) {
		t.Fatalf("members after leave = %v", got)
	}
	if err := tbl.Leave(a, "chat"); err != ErrNotMember {
		t.Fatalf("double leave = %v, want ErrNotMember", err)
	}
	if err := tbl.Leave(b, "chat"); err != nil {
		t.Fatal(err)
	}
	if tbl.Members("chat") != nil {
		t.Fatal("empty group not collected")
	}
	if len(tbl.Groups()) != 0 {
		t.Fatalf("groups = %v", tbl.Groups())
	}
}

func TestInvalidGroupNames(t *testing.T) {
	tbl := NewTable()
	c := ClientID{Daemon: 1, Local: 1}
	long := string(bytes.Repeat([]byte("g"), MaxGroupName+1))
	for _, g := range []string{"", long} {
		if err := tbl.Join(c, g); err != ErrBadGroup {
			t.Fatalf("Join(%q) = %v, want ErrBadGroup", g, err)
		}
		if err := tbl.Leave(c, g); err != ErrBadGroup {
			t.Fatalf("Leave(%q) = %v, want ErrBadGroup", g, err)
		}
	}
}

func TestDisconnect(t *testing.T) {
	tbl := NewTable()
	c := ClientID{Daemon: 1, Local: 1}
	tbl.Join(c, "a")
	tbl.Join(c, "b")
	left := tbl.Disconnect(c)
	if !reflect.DeepEqual(left, []string{"a", "b"}) {
		t.Fatalf("left = %v", left)
	}
	if tbl.GroupsOf(c) != nil {
		t.Fatal("client still in groups after disconnect")
	}
	if tbl.Disconnect(c) != nil {
		t.Fatal("second disconnect returned groups")
	}
}

func TestDropDaemon(t *testing.T) {
	tbl := NewTable()
	a1 := ClientID{Daemon: 1, Local: 1}
	a2 := ClientID{Daemon: 1, Local: 2}
	b1 := ClientID{Daemon: 2, Local: 1}
	tbl.Join(a1, "x")
	tbl.Join(a2, "y")
	tbl.Join(b1, "x")
	affected := tbl.DropDaemon(1)
	if !reflect.DeepEqual(affected, []string{"x", "y"}) {
		t.Fatalf("affected = %v", affected)
	}
	if got := tbl.Members("x"); !reflect.DeepEqual(got, []ClientID{b1}) {
		t.Fatalf("x members = %v", got)
	}
	if tbl.Members("y") != nil {
		t.Fatal("y should be empty")
	}
}

func TestRecipientsMultiGroup(t *testing.T) {
	tbl := NewTable()
	a := ClientID{Daemon: 1, Local: 1}
	b := ClientID{Daemon: 2, Local: 1}
	c := ClientID{Daemon: 3, Local: 1}
	tbl.Join(a, "g1")
	tbl.Join(b, "g1")
	tbl.Join(b, "g2") // member of both: must appear once
	tbl.Join(c, "g2")
	got := tbl.Recipients([]string{"g1", "g2"})
	want := []ClientID{a, b, c}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recipients = %v, want %v", got, want)
	}
	if tbl.Recipients([]string{"nope"}) != nil {
		t.Fatal("recipients of unknown group not nil")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	tests := []Envelope{
		{Kind: OpJoin, Sender: ClientID{1, 7}, Groups: []string{"chat"}},
		{Kind: OpLeave, Sender: ClientID{2, 1}, Groups: []string{"chat"}},
		{Kind: OpDisconnect, Sender: ClientID{3, 9}},
		{Kind: OpMessage, Sender: ClientID{1, 1}, Groups: []string{"a", "b", "c"},
			Payload: []byte("payload bytes")},
		{Kind: OpMessage, Sender: ClientID{1, 1}, Groups: []string{"solo"}},
		{Kind: OpSkip, Sender: ClientID{Daemon: 4}, Arg: 1234567},
		{Kind: OpMigrateBegin, Sender: ClientID{2, 5}, Groups: []string{"hot"}, Arg: 3},
		{Kind: OpMigrateAck, Sender: ClientID{Daemon: 6}, Groups: []string{"hot"}, Arg: 9},
	}
	for _, in := range tests {
		t.Run(in.Kind.String(), func(t *testing.T) {
			enc, err := in.Encode()
			if err != nil {
				t.Fatal(err)
			}
			out, err := DecodeEnvelope(enc)
			if err != nil {
				t.Fatal(err)
			}
			if out.Kind != in.Kind || out.Sender != in.Sender ||
				out.Arg != in.Arg ||
				!reflect.DeepEqual(out.Groups, in.Groups) ||
				!bytes.Equal(out.Payload, in.Payload) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
			}
		})
	}
}

func TestEnvelopeValidation(t *testing.T) {
	bad := []Envelope{
		{Kind: OpJoin, Groups: nil},
		{Kind: OpJoin, Groups: []string{"a", "b"}},
		{Kind: OpMessage, Groups: nil},
		{Kind: OpDisconnect, Groups: []string{"a"}},
		{Kind: OpKind(99), Groups: []string{"a"}},
		{Kind: OpJoin, Groups: []string{""}},
		{Kind: OpSkip},                                             // zero frontier
		{Kind: OpSkip, Groups: []string{"a"}, Arg: 1},              // groups forbidden
		{Kind: OpSkip, Payload: []byte("x"), Arg: 1},               // payload forbidden
		{Kind: OpMigrateBegin},                                     // needs a group
		{Kind: OpMigrateBegin, Groups: []string{"a", "b"}, Arg: 1}, // one group only
		{Kind: OpMigrateAck, Groups: []string{"a"}},                // zero epoch
		{Kind: OpMessage, Groups: []string{"a"}, Arg: 1},           // arg forbidden
	}
	for _, e := range bad {
		if _, err := e.Encode(); err == nil {
			t.Fatalf("Encode accepted invalid %+v", e)
		}
	}
}

func TestDecodeEnvelopeGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		DecodeEnvelope(b) // must not panic
	}
	// Truncations of a valid envelope must all fail cleanly.
	e := Envelope{Kind: OpMessage, Sender: ClientID{1, 1}, Groups: []string{"g"}, Payload: []byte("xyz")}
	enc, err := e.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeEnvelope(enc[:i]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", i)
		}
	}
}

// TestQuickTableConsistency: applying the same operation sequence to two
// tables yields identical views (determinism is what makes replicated
// tables agree).
func TestQuickTableConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		t1, t2 := NewTable(), NewTable()
		groups := []string{"a", "b", "c"}
		clients := []ClientID{{1, 1}, {1, 2}, {2, 1}, {3, 1}}
		for i := 0; i < 200; i++ {
			c := clients[rng.Intn(len(clients))]
			g := groups[rng.Intn(len(groups))]
			switch rng.Intn(4) {
			case 0:
				t1.Join(c, g)
				t2.Join(c, g)
			case 1:
				t1.Leave(c, g)
				t2.Leave(c, g)
			case 2:
				t1.Disconnect(c)
				t2.Disconnect(c)
			case 3:
				d := c.Daemon
				t1.DropDaemon(d)
				t2.DropDaemon(d)
			}
		}
		for _, g := range groups {
			if !reflect.DeepEqual(t1.Members(g), t2.Members(g)) {
				return false
			}
		}
		for _, c := range clients {
			if !reflect.DeepEqual(t1.GroupsOf(c), t2.GroupsOf(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
