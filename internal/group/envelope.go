package group

import (
	"encoding/binary"
	"fmt"

	"accelring/internal/evs"
)

// OpKind is the kind of a daemon-level operation carried on the ring.
type OpKind uint8

const (
	// OpJoin adds the sender to Groups[0].
	OpJoin OpKind = iota + 1
	// OpLeave removes the sender from Groups[0].
	OpLeave
	// OpDisconnect removes the sender from every group.
	OpDisconnect
	// OpMessage delivers Payload to the members of all Groups.
	OpMessage
	// OpPrivate delivers Payload to exactly one client (Target), still in
	// the ring's total order relative to everything else — Spread's
	// private messages.
	OpPrivate
	// OpPrivateReject reports, in order, that a Private's target was
	// already gone at its host daemon: Sender is the vanished target,
	// Target the original sender to notify.
	OpPrivateReject
	// OpSkip claims delivery slots for an otherwise idle ring so the
	// cross-ring merge never stalls on it (Multi-Ring Paxos lambda
	// pacing). Arg is the cumulative slot frontier being claimed; claims
	// are monotone (max-merged), so duplicate or stale skips are
	// harmless. Emitted by any member of the ring whose own merge the
	// ring is blocking.
	OpSkip
	// OpMigrateBegin starts a live migration of Groups[0] from the ring
	// this envelope is ordered on to ring Arg. Sender.Daemon is the
	// initiating daemon.
	OpMigrateBegin
	// OpFrontier is a member's slot-frontier announcement, submitted at
	// each regular configuration change and anchored to it: Arg is the
	// announcer's virtual frontier immediately after slotting the change.
	// Receivers apply it RELATIVE to that common stream position —
	// front = max(front, Arg + slots consumed since the change) — which
	// re-levels frontiers that diverged during a partition exactly, even
	// when traffic is ordered concurrently with the announcement (an
	// absolute claim would under-level by however many slots landed
	// before it was ordered, leaving a permanent skew). Consumes no slot.
	OpFrontier
	// OpMigrateAck is a member daemon's drain acknowledgement for the
	// in-flight migration of Groups[0]; Target echoes the identity of
	// the MigrateBegin it answers (which is what ties the ack to one
	// migration instance, even across members whose migration histories
	// diverged during a partition), Arg the acker's local migration
	// epoch, and Sender.Daemon the acking daemon. Because each daemon
	// submits FIFO to a ring, the ack orders after all of that daemon's
	// pre-switch traffic for the group.
	OpMigrateAck
)

// hasArg reports whether the kind carries the 8-byte Arg field on the
// wire. Existing kinds keep their PR 4 encoding byte-for-byte.
func (k OpKind) hasArg() bool {
	return k == OpSkip || k == OpFrontier || k == OpMigrateBegin || k == OpMigrateAck
}

func (k OpKind) String() string {
	switch k {
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	case OpDisconnect:
		return "disconnect"
	case OpMessage:
		return "message"
	case OpPrivate:
		return "private"
	case OpPrivateReject:
		return "private_reject"
	case OpSkip:
		return "skip"
	case OpFrontier:
		return "frontier"
	case OpMigrateBegin:
		return "migrate_begin"
	case OpMigrateAck:
		return "migrate_ack"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Envelope is the daemon-level message multicast on the ring. Because
// envelopes ride the totally ordered stream, every daemon applies joins,
// leaves, and deliveries in exactly the same order — that is what makes
// group views agreed and multi-group multicast consistent across groups.
type Envelope struct {
	Kind   OpKind
	Sender ClientID
	// Target is the destination client of a Private message.
	Target ClientID
	// Groups are the target groups (one for Join/Leave, up to MaxGroups
	// for Message).
	Groups []string
	// Payload is the application data of a Message or Private.
	Payload []byte
	// Arg carries the small integer operand of the merge-control kinds:
	// the cumulative slot frontier of a Skip, the CC-anchored frontier of
	// a Frontier announcement, the target ring of a MigrateBegin, or the
	// migration epoch of a MigrateAck. Zero (and absent on the wire) for
	// every other kind.
	Arg uint64
}

// Validate checks structural constraints before encoding.
func (e *Envelope) Validate() error {
	switch e.Kind {
	case OpJoin, OpLeave:
		if len(e.Groups) != 1 {
			return fmt.Errorf("group: %v needs exactly one group", e.Kind)
		}
	case OpMessage:
		if len(e.Groups) == 0 || len(e.Groups) > MaxGroups {
			return fmt.Errorf("group: message needs 1..%d groups", MaxGroups)
		}
	case OpDisconnect:
		if len(e.Groups) != 0 {
			return fmt.Errorf("group: disconnect carries no groups")
		}
	case OpPrivate, OpPrivateReject:
		if len(e.Groups) != 0 {
			return fmt.Errorf("group: private message carries no groups")
		}
		if e.Target == (ClientID{}) {
			return fmt.Errorf("group: private message needs a target")
		}
	case OpSkip, OpFrontier:
		if len(e.Groups) != 0 || len(e.Payload) != 0 {
			return fmt.Errorf("group: %v carries no groups or payload", e.Kind)
		}
		if e.Arg == 0 {
			return fmt.Errorf("group: %v needs a nonzero slot frontier", e.Kind)
		}
	case OpMigrateBegin, OpMigrateAck:
		if len(e.Groups) != 1 {
			return fmt.Errorf("group: %v needs exactly one group", e.Kind)
		}
		if len(e.Payload) != 0 {
			return fmt.Errorf("group: %v carries no payload", e.Kind)
		}
		if e.Kind == OpMigrateAck && e.Arg == 0 {
			return fmt.Errorf("group: migrate_ack needs a nonzero epoch")
		}
	default:
		return fmt.Errorf("group: unknown op %d", e.Kind)
	}
	if !e.Kind.hasArg() && e.Arg != 0 {
		return fmt.Errorf("group: %v carries no arg", e.Kind)
	}
	for _, g := range e.Groups {
		if !ValidGroupName(g) {
			return fmt.Errorf("group: invalid group name %q", g)
		}
	}
	return nil
}

// Encode serializes the envelope.
func (e *Envelope) Encode() ([]byte, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	n := 1 + 4 + 4 + 1
	for _, g := range e.Groups {
		n += 1 + len(g)
	}
	n += 4 + len(e.Payload)
	b := make([]byte, 0, n+16)
	b = append(b, byte(e.Kind))
	b = binary.BigEndian.AppendUint32(b, uint32(e.Sender.Daemon))
	b = binary.BigEndian.AppendUint32(b, e.Sender.Local)
	b = binary.BigEndian.AppendUint32(b, uint32(e.Target.Daemon))
	b = binary.BigEndian.AppendUint32(b, e.Target.Local)
	if e.Kind.hasArg() {
		b = binary.BigEndian.AppendUint64(b, e.Arg)
	}
	b = append(b, byte(len(e.Groups)))
	for _, g := range e.Groups {
		b = append(b, byte(len(g)))
		b = append(b, g...)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(e.Payload)))
	b = append(b, e.Payload...)
	return b, nil
}

// DecodeEnvelope parses an encoded envelope.
func DecodeEnvelope(b []byte) (*Envelope, error) {
	fail := func() (*Envelope, error) { return nil, fmt.Errorf("group: truncated envelope") }
	if len(b) < 18 {
		return fail()
	}
	var e Envelope
	e.Kind = OpKind(b[0])
	e.Sender.Daemon = evs.ProcID(binary.BigEndian.Uint32(b[1:]))
	e.Sender.Local = binary.BigEndian.Uint32(b[5:])
	e.Target.Daemon = evs.ProcID(binary.BigEndian.Uint32(b[9:]))
	e.Target.Local = binary.BigEndian.Uint32(b[13:])
	off := 17
	if e.Kind.hasArg() {
		if len(b) < 26 {
			return fail()
		}
		e.Arg = binary.BigEndian.Uint64(b[17:])
		off = 25
	}
	ng := int(b[off])
	off++
	if ng > MaxGroups {
		return nil, fmt.Errorf("group: %d groups exceeds %d", ng, MaxGroups)
	}
	for i := 0; i < ng; i++ {
		if off >= len(b) {
			return fail()
		}
		gl := int(b[off])
		off++
		if off+gl > len(b) {
			return fail()
		}
		e.Groups = append(e.Groups, string(b[off:off+gl]))
		off += gl
	}
	if off+4 > len(b) {
		return fail()
	}
	pl := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if off+pl != len(b) {
		return nil, fmt.Errorf("group: envelope length mismatch")
	}
	if pl > 0 {
		e.Payload = b[off : off+pl : off+pl]
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return &e, nil
}
