package group

import (
	"bytes"
	"testing"
)

// FuzzDecodeEnvelope: the envelope codec must never panic; decoded
// envelopes re-encode identically.
func FuzzDecodeEnvelope(f *testing.F) {
	for _, e := range []Envelope{
		{Kind: OpJoin, Sender: ClientID{Daemon: 1, Local: 2}, Groups: []string{"g"}},
		{Kind: OpMessage, Sender: ClientID{Daemon: 1, Local: 2},
			Groups: []string{"a", "b"}, Payload: []byte("data")},
		{Kind: OpDisconnect, Sender: ClientID{Daemon: 3, Local: 4}},
		{Kind: OpSkip, Sender: ClientID{Daemon: 1}, Arg: 42},
		{Kind: OpMigrateBegin, Sender: ClientID{Daemon: 1, Local: 2},
			Groups: []string{"hot"}, Arg: 3},
		{Kind: OpMigrateAck, Sender: ClientID{Daemon: 2},
			Groups: []string{"hot"}, Arg: 1},
	} {
		enc, err := e.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		e, err := DecodeEnvelope(b)
		if err != nil {
			return
		}
		enc, err := e.Encode()
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, b) {
			t.Fatalf("envelope encoding not canonical:\n in %x\nout %x", b, enc)
		}
	})
}
