package daemon

// Unit tests for the outbox's trickier corners: write completions racing
// a resume's attach, one-shot tier reporting at shutdown, drain's view of
// detached sessions, and the ordering of throttle notices.

import (
	"net"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/session"
)

func testConn(t *testing.T) net.Conn {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a
}

func testMsg(i int) session.Frame {
	return session.Message{Service: evs.Agreed, Groups: []string{"g"}, Payload: []byte{byte(i)}}
}

// TestOutboxWroteSupersededConn: a write completion that raced a resume's
// attach must leave the frame queued for the new connection instead of
// completing a frame the resume snapshot never saw (or, worse, popping an
// unwritten ring head).
func TestOutboxWroteSupersededConn(t *testing.T) {
	o := newOutbox(session.Codec{}, 4, 100, 100, 16)
	connA, connB := testConn(t), testConn(t)
	if !o.attach(connA, 0, nil) {
		t.Fatal("attach A refused")
	}
	o.push(testMsg(1))
	gotConn, _, sf, ok := o.next()
	if !ok || gotConn != connA || sf.seq != 1 {
		t.Fatalf("next = (%v, %+v, %v)", gotConn, sf, ok)
	}

	// The resume lands between the writer's syscall and its completion.
	if !o.attach(connB, 0, nil) {
		t.Fatal("attach B refused")
	}
	o.wrote(connA, sf) // superseded: must be a no-op

	o.mu.Lock()
	count, queued := o.count, o.queuedLocked()
	o.mu.Unlock()
	if count != 1 || queued != 1 {
		t.Fatalf("after superseded wrote: count=%d queued=%d, want 1/1", count, queued)
	}

	// The live connection re-peeks the same frame and completes it.
	gotConn, _, sf2, ok := o.next()
	if !ok || gotConn != connB || sf2.seq != 1 {
		t.Fatalf("re-peek = (%v, %+v, %v), want seq 1 on conn B", gotConn, sf2, ok)
	}
	o.wrote(connB, sf2)
	// A duplicate (stale) completion must not drive the count negative.
	o.wrote(connB, sf2)
	o.mu.Lock()
	count, queued = o.count, o.queuedLocked()
	o.mu.Unlock()
	if count != 0 || queued != 0 {
		t.Fatalf("after completion: count=%d queued=%d, want 0/0", count, queued)
	}
}

// TestOutboxShutdownReportsTiersOnce: shutdown reports the occupied
// backpressure tiers exactly once, so Stop and dropClient racing each
// other cannot double-decrement the gauges.
func TestOutboxShutdownReportsTiersOnce(t *testing.T) {
	o := newOutbox(session.Codec{}, 2, 3, 100, 4)
	conn := testConn(t)
	if !o.attach(conn, 0, nil) {
		t.Fatal("attach refused")
	}
	for i := 0; i < 5; i++ {
		o.push(testMsg(i)) // ring 2 + spill 3, past the throttle watermark
	}
	c, spilling, throttled := o.shutdown()
	if c != conn || !spilling || !throttled {
		t.Fatalf("first shutdown = (%v, %v, %v), want conn + both tiers", c, spilling, throttled)
	}
	if _, spilling, throttled := o.shutdown(); spilling || throttled {
		t.Fatal("second shutdown re-reported the tiers")
	}
}

// TestOutboxFlushedWhileDetached: a detached session counts as flushed —
// its queue cannot move — so a drain does not burn its whole deadline on
// a client that is gone.
func TestOutboxFlushedWhileDetached(t *testing.T) {
	o := newOutbox(session.Codec{}, 4, 100, 100, 16)
	conn := testConn(t)
	if !o.attach(conn, 0, nil) {
		t.Fatal("attach refused")
	}
	o.push(testMsg(1))
	if o.flushed() {
		t.Fatal("queued frame reported flushed")
	}
	if !o.detach(conn) {
		t.Fatal("detach refused")
	}
	if !o.flushed() {
		t.Fatal("detached session must count as flushed")
	}
	if !o.attach(testConn(t), 0, nil) {
		t.Fatal("reattach refused")
	}
	if o.flushed() {
		t.Fatal("reattached backlog reported flushed")
	}
}

// TestOutboxThrottleNoticesOrdered: the On and Off notices are enqueued
// under the outbox lock at the moment of the transition, so the client
// can never observe Off before the On that preceded it.
func TestOutboxThrottleNoticesOrdered(t *testing.T) {
	o := newOutbox(session.Codec{}, 8, 4, 100, 16)
	conn := testConn(t)
	if !o.attach(conn, 0, nil) {
		t.Fatal("attach refused")
	}
	res := pushResult{}
	for i := 0; i < 4; i++ {
		res = o.push(testMsg(i))
	}
	if !res.throttleOn {
		t.Fatalf("4 queued at watermark 4: no throttleOn (%+v)", res)
	}
	var notices []session.Throttle
	for !o.flushed() {
		c, _, sf, ok := o.next()
		if !ok {
			t.Fatal("outbox closed mid-drain")
		}
		if sf.seq == 0 {
			th, isTh := sf.f.(session.Throttle)
			if !isTh {
				t.Fatalf("unexpected control frame %#v", sf.f)
			}
			notices = append(notices, th)
		}
		o.wrote(c, sf)
	}
	if len(notices) != 2 || !notices[0].On || notices[1].On {
		t.Fatalf("throttle notices = %+v, want exactly [On, Off]", notices)
	}
	if notices[0].Queued < 4 || notices[1].Queued > 2 {
		t.Fatalf("notice queue depths = %d/%d, want >=4 then <=2", notices[0].Queued, notices[1].Queued)
	}
}
