package daemon

import (
	"encoding/binary"
	"net"

	"accelring/internal/session"
	"accelring/internal/wire"
)

// frameWriter assembles one outbox batch into a single vectored write.
// Per-frame bytes that differ per session — the 4-byte length prefix,
// the Seqd wrapper (kind + sequence), and the MAC when keyed — are
// appended to a reusable scratch arena; encode-once shared bodies are
// referenced in place, so the payload bytes of a fan-out delivery go to
// the socket straight from the one buffer all subscribers share. Boxed
// frames (control notices, views, errors) are encoded into the arena.
//
// The arena only ever appends within a batch: subslices handed to the
// iovec stay valid even if a growth reallocates the backing, because the
// already-written bytes are never touched again. One frameWriter belongs
// to one sessionWriter goroutine; it is not safe for concurrent use.
type frameWriter struct {
	scratch []byte       // per-batch arena: headers, boxed encodes, MACs
	bufs    net.Buffers  // iovec under assembly
	frames  []seqFrame   // peek buffer handed to nextBatch
}

// seqdHdrLen is the per-frame scratch header for a shared body: 4-byte
// length prefix + Seqd kind byte + 8-byte sequence.
const seqdHdrLen = 4 + 1 + 8

func newFrameWriter(batch int) *frameWriter {
	return &frameWriter{
		scratch: make([]byte, 0, batch*(seqdHdrLen+wire.MacLen)+256),
		bufs:    make(net.Buffers, 0, 3*batch),
		frames:  make([]seqFrame, 0, batch),
	}
}

// flush writes every peeked frame to conn as one vectored write
// (net.Buffers uses writev on TCP and unix sockets), framing each one
// exactly as codec.WriteFrame would: length prefix, optional Seqd
// wrapper for sequenced frames, optional MAC trailer when keyed.
func (w *frameWriter) flush(conn net.Conn, codec session.Codec, frames []seqFrame) error {
	auth := codec.Auth()
	w.scratch = w.scratch[:0]
	bufs := w.bufs[:0]
	for _, sf := range frames {
		if sf.sh != nil {
			body := sf.sh.Bytes()
			start := len(w.scratch)
			total := seqdHdrLen - 4 + len(body) + auth.Overhead()
			w.scratch = binary.BigEndian.AppendUint32(w.scratch, uint32(total))
			w.scratch = append(w.scratch, byte(session.KindSeqd))
			w.scratch = binary.BigEndian.AppendUint64(w.scratch, sf.seq)
			hdr := w.scratch[start : start+seqdHdrLen]
			if auth == nil {
				bufs = append(bufs, hdr, body)
			} else {
				mstart := len(w.scratch)
				w.scratch = auth.SumParts(w.scratch, hdr[4:], body)
				bufs = append(bufs, hdr, body, w.scratch[mstart:])
			}
			continue
		}
		start := len(w.scratch)
		w.scratch = append(w.scratch, 0, 0, 0, 0) // length prefix backfilled below
		var err error
		if sf.seq != 0 {
			w.scratch = append(w.scratch, byte(session.KindSeqd))
			w.scratch = binary.BigEndian.AppendUint64(w.scratch, sf.seq)
			w.scratch, err = session.AppendEncode(w.scratch, sf.f)
		} else {
			w.scratch, err = session.AppendEncode(w.scratch, sf.f)
		}
		if err != nil {
			return err
		}
		if auth != nil {
			w.scratch = auth.SumParts(w.scratch, w.scratch[start+4:])
		}
		binary.BigEndian.PutUint32(w.scratch[start:], uint32(len(w.scratch)-start-4))
		bufs = append(bufs, w.scratch[start:])
	}
	w.bufs = bufs // keep the (possibly grown) backing for the next batch
	vec := bufs    // WriteTo consumes its receiver; spend a copy of the header
	_, err := (&vec).WriteTo(conn)
	return err
}
