package daemon

import (
	"errors"
	"net"
	"sync"

	"accelring/internal/session"
)

// seqFrame pairs a queued frame with its delivery sequence number. Seq 0
// marks a control frame (Welcome, Throttle, Detach) that rides outside
// the resumable delivery stream.
//
// Exactly one of f and sh is set: f boxes an ordinary frame that the
// writer encodes per session (control frames, views, errors), sh
// references an encode-once shared body produced by a group fan-out
// (session.Shared). The outbox holds one shared reference per queued
// seqFrame, taken in pushShared and dropped when the frame leaves the
// retained resume-replay window (ack, eviction, resume fast-forward) or
// the outbox shuts down — never merely on write, because a reconnecting
// client may need the bytes replayed.
type seqFrame struct {
	seq uint64
	f   session.Frame
	sh  *session.Shared

	// traceSeq/traceRing carry the ring sequence of a latency-sampled
	// delivery (zero otherwise) so the session writer can stamp the
	// writer-flush stage after the vectored write. Set only when the
	// ring's tracer sampled the message: the untraced hot path pays a
	// single uint64 compare per flushed frame.
	traceSeq  uint64
	traceRing int
}

// release drops the frame's shared reference, if it holds one.
func (sf *seqFrame) release() {
	if sf.sh != nil {
		sf.sh.Unref()
		sf.sh = nil
	}
}

// pushResult reports what one enqueue did to the session's backpressure
// tier, so the daemon can export metrics without holding the outbox
// lock. The client-facing Throttle notices themselves are enqueued
// inside push/wrote while the lock is held, so On/Off can never be
// reordered by the reporting goroutines.
type pushResult struct {
	// overflow: the spill queue is full; disconnecting is the last
	// resort left. The frame was NOT queued.
	overflow bool
	// spillStart: the enqueue crossed from the in-memory ring (tier 0)
	// into the spill queue (tier 1).
	spillStart bool
	// throttleOn: the enqueue crossed the throttle watermark (tier 2).
	throttleOn bool
	// queued is the delivery backlog after the enqueue.
	queued int
}

// writeResult is pushResult's mirror for dequeues (tier recoveries).
type writeResult struct {
	// spillEnd: the spill queue drained back into the ring (tier 1->0).
	spillEnd bool
	// throttleOff: the backlog fell below half the throttle watermark
	// (hysteresis), ending tier 2.
	throttleOff bool
	queued      int
}

// Resume rejections.
var (
	errSessionClosed = errors.New("session closed")
	errReplayWindow  = errors.New("replay window overrun")
)

// outbox is one session's outbound path: a fixed in-memory ring (tier 0)
// that overflows into a bounded spill queue (tier 1), a throttle
// watermark (tier 2), and a retained window of written-but-unacked
// deliveries that a resumed connection replays. It owns the session's
// current connection: the writer goroutine blocks in next/nextBatch
// while the session is detached and wakes when attach installs a new
// conn.
//
// Lock ordering: outbox.mu is a leaf — nothing is called with it held.
type outbox struct {
	mu   sync.Mutex
	cond sync.Cond

	conn  net.Conn // current connection; nil while detached
	codec session.Codec

	control []session.Frame // unsequenced control frames, written first
	replay  []seqFrame      // retained frames being resent after a resume

	ring        []seqFrame // tier 0: fixed ring buffer
	head, count int
	spill       []seqFrame // tier 1: bounded overflow queue

	retained []seqFrame // written but unacked (the resume replay window)
	floor    uint64     // highest seq evicted unacked from retained
	nextSeq  uint64     // last assigned delivery sequence

	throttled  bool
	overflowed bool
	closed     bool

	throttleAt  int // tier-2 watermark on the delivery backlog
	spillLimit  int // hard cap on the delivery backlog
	retainLimit int // cap on the retained window
}

func newOutbox(codec session.Codec, ringCap, throttleAt, spillLimit, retainLimit int) *outbox {
	o := &outbox{
		codec:       codec,
		ring:        make([]seqFrame, ringCap),
		throttleAt:  throttleAt,
		spillLimit:  spillLimit,
		retainLimit: retainLimit,
	}
	o.cond.L = &o.mu
	return o
}

// queuedLocked is the delivery backlog (control frames excluded).
func (o *outbox) queuedLocked() int { return o.count + len(o.spill) }

// push enqueues one sequenced delivery, reporting tier transitions.
func (o *outbox) push(f session.Frame) pushResult {
	return o.enqueue(seqFrame{f: f})
}

// pushShared enqueues one sequenced encode-once delivery. The outbox
// takes its own reference on sh (under the lock, so a concurrent
// shutdown cannot race the take); a rejected enqueue (closed or
// overflowed) takes none.
func (o *outbox) pushShared(sh *session.Shared) pushResult {
	return o.enqueue(seqFrame{sh: sh})
}

// pushSharedTraced is pushShared for a latency-sampled delivery: the
// queued frame remembers the ring sequence (and ring) that ordered it so
// the writer can attribute its flush time. A replayed frame after resume
// re-stamps harmlessly — the latency fold keeps the earliest time.
func (o *outbox) pushSharedTraced(sh *session.Shared, traceSeq uint64, traceRing int) pushResult {
	return o.enqueue(seqFrame{sh: sh, traceSeq: traceSeq, traceRing: traceRing})
}

func (o *outbox) enqueue(sf seqFrame) pushResult {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed || o.overflowed {
		return pushResult{}
	}
	if o.queuedLocked() >= o.spillLimit {
		o.overflowed = true
		return pushResult{overflow: true, queued: o.queuedLocked()}
	}
	o.nextSeq++
	sf.seq = o.nextSeq
	if sf.sh != nil {
		sf.sh.Ref()
	}
	var res pushResult
	if o.count < len(o.ring) && len(o.spill) == 0 {
		o.ring[(o.head+o.count)%len(o.ring)] = sf
		o.count++
	} else {
		res.spillStart = len(o.spill) == 0
		o.spill = append(o.spill, sf)
	}
	res.queued = o.queuedLocked()
	if !o.throttled && res.queued >= o.throttleAt {
		o.throttled = true
		res.throttleOn = true
		// The Throttle notice is enqueued under the same lock as the
		// transition: an Off written by the writer goroutine can never
		// overtake this On on the wire.
		o.control = append(o.control, session.Throttle{On: true, Queued: uint32(res.queued)})
	}
	o.cond.Broadcast()
	return res
}

// pushControl enqueues an unsequenced control frame ahead of deliveries.
func (o *outbox) pushControl(f session.Frame) {
	o.mu.Lock()
	if !o.closed {
		o.control = append(o.control, f)
		o.cond.Broadcast()
	}
	o.mu.Unlock()
}

// next blocks until the session has a connection and a frame to write
// (or is closed) and peeks the head frame without removing it: the
// writer calls wrote on success, so a failed write leaves the frame
// queued for the resumed connection.
func (o *outbox) next() (net.Conn, session.Codec, seqFrame, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for {
		if o.closed {
			return nil, o.codec, seqFrame{}, false
		}
		if o.conn != nil {
			switch {
			case len(o.control) > 0:
				return o.conn, o.codec, seqFrame{f: o.control[0]}, true
			case len(o.replay) > 0:
				return o.conn, o.codec, o.replay[0], true
			case o.count > 0:
				return o.conn, o.codec, o.ring[o.head], true
			}
		}
		o.cond.Wait()
	}
}

// nextBatch blocks like next but peeks up to max pending frames in write
// order — control notices first, then resume replay, then the ring — so
// the writer can flush them with one vectored write instead of one
// syscall pair per frame. The frames are appended to dst (reset and
// reused by the caller) and stay queued until wroteBatch completes them.
// Only ring-resident deliveries are batched beyond the control/replay
// heads; the spill queue refills the ring as frames complete.
func (o *outbox) nextBatch(dst []seqFrame, max int) (net.Conn, session.Codec, []seqFrame, bool) {
	if max < 1 {
		max = 1
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for {
		if o.closed {
			return nil, o.codec, dst, false
		}
		if o.conn != nil {
			for _, f := range o.control {
				if len(dst) >= max {
					break
				}
				dst = append(dst, seqFrame{f: f})
			}
			for _, sf := range o.replay {
				if len(dst) >= max {
					break
				}
				dst = append(dst, sf)
			}
			for i := 0; i < o.count && len(dst) < max; i++ {
				dst = append(dst, o.ring[(o.head+i)%len(o.ring)])
			}
			if len(dst) > 0 {
				return o.conn, o.codec, dst, true
			}
		}
		o.cond.Wait()
	}
}

// wrote removes the frame next returned after a successful write to
// conn, moves sequenced frames into the retained window, and refills the
// ring from the spill queue, reporting tier recoveries.
//
// conn must be the connection next() paired with the frame. If it is no
// longer the session's connection — a detach or a resume's attach landed
// between the write and this call — the write reached a superseded
// (possibly half-dead) socket, so the frame is left queued: the writer
// re-peeks it for the live connection, and the client's duplicate
// suppression (Seq <= lastSeq) absorbs the potential double send. Without
// this check a kernel-buffered write racing an attach would complete a
// frame the resume snapshot never saw, leaving a silent sequence gap.
func (o *outbox) wrote(conn net.Conn, sf seqFrame) writeResult {
	o.mu.Lock()
	defer o.mu.Unlock()
	var res writeResult
	res.queued = o.queuedLocked()
	if o.conn != conn {
		return res
	}
	o.wroteLocked(sf, &res)
	o.finishWriteLocked(&res)
	return res
}

// wroteBatch completes a nextBatch worth of frames after one successful
// vectored write to conn. Like wrote, a superseded conn makes the whole
// completion a no-op: the live connection re-peeks everything and the
// client's duplicate suppression absorbs the double send.
func (o *outbox) wroteBatch(conn net.Conn, frames []seqFrame) writeResult {
	o.mu.Lock()
	defer o.mu.Unlock()
	var res writeResult
	res.queued = o.queuedLocked()
	if o.conn != conn {
		return res
	}
	for i := range frames {
		o.wroteLocked(frames[i], &res)
	}
	o.finishWriteLocked(&res)
	return res
}

// wroteLocked applies one frame completion. Caller holds o.mu and has
// verified the connection.
func (o *outbox) wroteLocked(sf seqFrame, res *writeResult) {
	switch {
	case sf.seq == 0:
		if len(o.control) > 0 {
			o.control[0] = nil
			o.control = o.control[1:]
			if len(o.control) == 0 {
				o.control = nil
			}
		}
		return
	case len(o.replay) > 0:
		// Replayed frames are already retained. Scan for the sequence
		// instead of assuming the head: a racing attach may have
		// re-snapshotted (and re-pruned) the replay queue.
		for i := range o.replay {
			if o.replay[i].seq != sf.seq {
				continue
			}
			// No release: the retained window still holds the entry (and,
			// for shared frames, its reference).
			copy(o.replay[i:], o.replay[i+1:])
			o.replay[len(o.replay)-1] = seqFrame{}
			o.replay = o.replay[:len(o.replay)-1]
			if len(o.replay) == 0 {
				o.replay = nil
			}
			return
		}
	}
	if o.count == 0 || o.ring[o.head].seq != sf.seq {
		// Neither a pending replay nor the ring head (the frame was
		// implicitly acked by a resume): nothing left to complete, and
		// popping the ring here would discard an unwritten frame.
		return
	}
	hadSpill := len(o.spill) > 0
	o.ring[o.head] = seqFrame{}
	o.head = (o.head + 1) % len(o.ring)
	o.count--
	for o.count < len(o.ring) && len(o.spill) > 0 {
		o.ring[(o.head+o.count)%len(o.ring)] = o.spill[0]
		o.spill[0] = seqFrame{}
		o.spill = o.spill[1:]
		o.count++
	}
	if len(o.spill) == 0 {
		o.spill = nil
		res.spillEnd = res.spillEnd || hadSpill
	}
	o.retained = append(o.retained, sf)
	if len(o.retained) > o.retainLimit {
		o.floor = o.retained[0].seq
		o.retained[0].release()
		n := copy(o.retained, o.retained[1:])
		o.retained[n] = seqFrame{}
		o.retained = o.retained[:n]
	}
}

// finishWriteLocked settles the post-completion backlog accounting:
// final queue depth and the throttle-off transition (with its ordered
// notice, enqueued under the same lock for the same reason push enqueues
// the On notice there — transition order is wire order).
func (o *outbox) finishWriteLocked(res *writeResult) {
	res.queued = o.queuedLocked()
	if o.throttled && res.queued <= o.throttleAt/2 {
		o.throttled = false
		res.throttleOff = true
		o.control = append(o.control, session.Throttle{On: false, Queued: uint32(res.queued)})
	}
}

// ack prunes the retained window up to and including seq. The window is
// compacted in place (not re-sliced) so its backing array survives a
// drain-to-empty: the steady acked fan-out path appends and prunes one
// retained entry per delivery without ever reallocating.
func (o *outbox) ack(seq uint64) {
	o.mu.Lock()
	o.pruneRetainedLocked(seq)
	o.mu.Unlock()
}

// pruneRetainedLocked releases and compacts away every retained frame
// with seq <= upTo. Caller holds o.mu.
func (o *outbox) pruneRetainedLocked(upTo uint64) {
	i := 0
	for i < len(o.retained) && o.retained[i].seq <= upTo {
		o.retained[i].release()
		i++
	}
	if i == 0 {
		return
	}
	n := copy(o.retained, o.retained[i:])
	clear(o.retained[n:])
	o.retained = o.retained[:n]
}

// canResume reports whether a client that processed deliveries up to
// lastSeq can be resumed without a gap.
func (o *outbox) canResume(lastSeq uint64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed || o.overflowed {
		return errSessionClosed
	}
	if lastSeq < o.floor || lastSeq > o.nextSeq {
		return errReplayWindow
	}
	return nil
}

// attach installs a new connection, treating lastSeq as an implicit ack
// and scheduling the remaining retained frames for replay. An existing
// connection (a half-dead predecessor) is superseded and closed. hello,
// when non-nil, is the handshake reply (Welcome): it is spliced in as
// the FIRST control frame under the same lock that installs conn, so the
// writer can neither race a Seqd delivery ahead of it nor let an older
// queued notice (Throttle, Detach) precede it on the new connection —
// the whole handshake rides the ordinary outbox write path. Returns
// false if the session closed or the replay window moved in the
// meantime; the caller should close conn.
func (o *outbox) attach(conn net.Conn, lastSeq uint64, hello session.Frame) bool {
	o.mu.Lock()
	if o.closed || o.overflowed || lastSeq < o.floor || lastSeq > o.nextSeq {
		o.mu.Unlock()
		return false
	}
	o.pruneRetainedLocked(lastSeq)
	o.replay = append(o.replay[:0], o.retained...)
	if hello != nil {
		o.control = append([]session.Frame{hello}, o.control...)
	}
	old := o.conn
	o.conn = conn
	o.cond.Broadcast()
	o.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return true
}

// detach drops conn if it is still the session's current connection,
// parking the writer until the next attach. Returns false for a stale
// (already superseded) connection.
func (o *outbox) detach(conn net.Conn) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if conn == nil || o.conn != conn {
		return false
	}
	o.conn = nil
	return true
}

// flushed reports whether everything queued has been written (drain's
// completion condition; acks are not required). A detached session
// counts as flushed: with no connection its queue cannot move, and its
// frames are retained for resume anyway — waiting on it would burn the
// whole drain deadline.
func (o *outbox) flushed() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed || o.overflowed || o.conn == nil {
		return true
	}
	return len(o.control) == 0 && len(o.replay) == 0 && o.queuedLocked() == 0
}

// shutdown closes the outbox for good: the writer exits and pushes
// become no-ops. Every queued and retained shared reference is released
// (the replay queue aliases retained entries, so it is not released
// separately). Returns the connection to close, if any, plus the
// backpressure tiers the session occupied at close so the caller can
// settle the matching gauges (reported only on the first shutdown).
func (o *outbox) shutdown() (conn net.Conn, spilling, throttled bool) {
	o.mu.Lock()
	conn = o.conn
	o.conn = nil
	if !o.closed {
		spilling = len(o.spill) > 0
		throttled = o.throttled
		for i := 0; i < o.count; i++ {
			o.ring[(o.head+i)%len(o.ring)].release()
			o.ring[(o.head+i)%len(o.ring)] = seqFrame{}
		}
		o.count = 0
		for i := range o.spill {
			o.spill[i].release()
			o.spill[i] = seqFrame{}
		}
		o.spill = nil
		for i := range o.retained {
			o.retained[i].release()
			o.retained[i] = seqFrame{}
		}
		o.retained = nil
		o.replay = nil
		o.control = nil
	}
	o.closed = true
	o.cond.Broadcast()
	o.mu.Unlock()
	return conn, spilling, throttled
}
