package daemon

import (
	"fmt"
	"net"
	"testing"
	"time"

	"accelring/internal/client"
	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/membership"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
)

func fastTimeouts() membership.Timeouts {
	return membership.Timeouts{
		JoinInterval:    5 * time.Millisecond,
		Gather:          25 * time.Millisecond,
		Commit:          50 * time.Millisecond,
		TokenLoss:       100 * time.Millisecond,
		TokenRetransmit: 30 * time.Millisecond,
	}
}

// startDaemons launches n daemons on an in-process hub with TCP client
// listeners, and waits for the ring to form.
func startDaemons(t *testing.T, n int) []*Daemon {
	t.Helper()
	return startDaemonsOnHub(t, n, transport.NewHub())
}

// startDaemonsOnHub is startDaemons on a caller-provided hub, so tests
// can attach a fault injector before the daemons come up.
func startDaemonsOnHub(t *testing.T, n int, hub *transport.Hub) []*Daemon {
	t.Helper()
	daemons := make([]*Daemon, n)
	for i := 0; i < n; i++ {
		id := evs.ProcID(i + 1)
		ep, err := hub.Endpoint(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ringCfg := ringnode.Accelerated(id, ep, 10, 100, 7)
		ringCfg.Timeouts = fastTimeouts()
		d, err := Start(Config{Ring: ringCfg, Listener: ln})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Stop)
		daemons[i] = d
	}
	for i, d := range daemons {
		if !d.WaitOperational(10 * time.Second) {
			t.Fatalf("daemon %d did not become operational", i)
		}
	}
	// Wait for all daemons to share one full ring.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(daemons[0].Node().Status().Ring.Members) == n {
			ok := true
			for _, d := range daemons[1:] {
				if !d.Node().Status().Ring.Equal(daemons[0].Node().Status().Ring) {
					ok = false
				}
			}
			if ok {
				return daemons
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemons did not converge on one ring")
	return nil
}

func dial(t testing.TB, d *Daemon, name string) *client.Client {
	t.Helper()
	c, err := client.Dial("tcp", d.Addr().String(), name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// nextEvent waits for the next event of type T, skipping others.
func nextMessage(t testing.TB, c *client.Client, within time.Duration) *client.Message {
	t.Helper()
	deadline := time.After(within)
	for {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				t.Fatalf("event stream closed: %v", c.Err())
			}
			if m, isMsg := ev.(*client.Message); isMsg {
				return m
			}
		case <-deadline:
			t.Fatal("timed out waiting for message")
		}
	}
}

func nextView(t testing.TB, c *client.Client, groupName string, within time.Duration) *client.View {
	t.Helper()
	deadline := time.After(within)
	for {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				t.Fatalf("event stream closed: %v", c.Err())
			}
			if v, isView := ev.(*client.View); isView && v.Group == groupName {
				return v
			}
		case <-deadline:
			t.Fatalf("timed out waiting for view of %q", groupName)
		}
	}
}

func TestClientJoinSendReceive(t *testing.T) {
	daemons := startDaemons(t, 3)
	alice := dial(t, daemons[0], "alice")
	bob := dial(t, daemons[1], "bob")

	if err := alice.Join("chat"); err != nil {
		t.Fatal(err)
	}
	if err := bob.Join("chat"); err != nil {
		t.Fatal(err)
	}
	// Both must eventually see the 2-member view.
	for _, c := range []*client.Client{alice, bob} {
		for {
			v := nextView(t, c, "chat", 5*time.Second)
			if len(v.Members) == 2 {
				break
			}
		}
	}
	if err := alice.Multicast(evs.Agreed, []byte("hello bob"), "chat"); err != nil {
		t.Fatal(err)
	}
	// Self-delivery: alice receives her own message too.
	for _, c := range []*client.Client{alice, bob} {
		m := nextMessage(t, c, 5*time.Second)
		if string(m.Payload) != "hello bob" || m.Sender != alice.ID() {
			t.Fatalf("got %+v", m)
		}
	}
}

func TestOpenGroupSemantics(t *testing.T) {
	daemons := startDaemons(t, 2)
	member := dial(t, daemons[0], "member")
	outsider := dial(t, daemons[1], "outsider")
	if err := member.Join("g"); err != nil {
		t.Fatal(err)
	}
	nextView(t, member, "g", 5*time.Second)
	// The outsider sends without joining.
	if err := outsider.Multicast(evs.Agreed, []byte("from outside"), "g"); err != nil {
		t.Fatal(err)
	}
	m := nextMessage(t, member, 5*time.Second)
	if string(m.Payload) != "from outside" || m.Sender != outsider.ID() {
		t.Fatalf("got %+v", m)
	}
}

func TestMultiGroupMulticastDeliversOnce(t *testing.T) {
	daemons := startDaemons(t, 2)
	both := dial(t, daemons[0], "both")     // member of g1 AND g2
	sender := dial(t, daemons[1], "sender") // member of neither
	if err := both.Join("g1"); err != nil {
		t.Fatal(err)
	}
	if err := both.Join("g2"); err != nil {
		t.Fatal(err)
	}
	nextView(t, both, "g1", 5*time.Second)
	nextView(t, both, "g2", 5*time.Second)
	if err := sender.Multicast(evs.Agreed, []byte("multi"), "g1", "g2"); err != nil {
		t.Fatal(err)
	}
	if err := sender.Multicast(evs.Agreed, []byte("after"), "g1"); err != nil {
		t.Fatal(err)
	}
	// "multi" must arrive exactly once despite double membership, then
	// "after" — nothing in between.
	m1 := nextMessage(t, both, 5*time.Second)
	if string(m1.Payload) != "multi" || len(m1.Groups) != 2 {
		t.Fatalf("got %+v", m1)
	}
	m2 := nextMessage(t, both, 5*time.Second)
	if string(m2.Payload) != "after" {
		t.Fatalf("multi-group message delivered twice: got %q", m2.Payload)
	}
}

func TestTotalOrderAcrossClients(t *testing.T) {
	daemons := startDaemons(t, 3)
	var clients []*client.Client
	for i, d := range daemons {
		c := dial(t, d, fmt.Sprintf("c%d", i))
		if err := c.Join("room"); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	// Let the views settle.
	for _, c := range clients {
		for {
			v := nextView(t, c, "room", 5*time.Second)
			if len(v.Members) == 3 {
				break
			}
		}
	}
	const perClient = 10
	for i, c := range clients {
		for k := 0; k < perClient; k++ {
			if err := c.Multicast(evs.Agreed, []byte(fmt.Sprintf("%d-%d", i, k)), "room"); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := perClient * len(clients)
	var ref []string
	for i, c := range clients {
		var got []string
		for len(got) < total {
			m := nextMessage(t, c, 10*time.Second)
			got = append(got, string(m.Payload))
		}
		if i == 0 {
			ref = got
			continue
		}
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("client %d order differs at %d: %q vs %q", i, k, got[k], ref[k])
			}
		}
	}
}

func TestDisconnectUpdatesViews(t *testing.T) {
	daemons := startDaemons(t, 2)
	a := dial(t, daemons[0], "a")
	b := dial(t, daemons[1], "b")
	if err := a.Join("g"); err != nil {
		t.Fatal(err)
	}
	if err := b.Join("g"); err != nil {
		t.Fatal(err)
	}
	for {
		v := nextView(t, a, "g", 5*time.Second)
		if len(v.Members) == 2 {
			break
		}
	}
	b.Close()
	for {
		v := nextView(t, a, "g", 5*time.Second)
		if len(v.Members) == 1 && v.Members[0] == a.ID() {
			break
		}
	}
}

func TestSafeServiceThroughDaemon(t *testing.T) {
	daemons := startDaemons(t, 3)
	c0 := dial(t, daemons[0], "c0")
	c1 := dial(t, daemons[1], "c1")
	for _, c := range []*client.Client{c0, c1} {
		if err := c.Join("safe-room"); err != nil {
			t.Fatal(err)
		}
	}
	for {
		v := nextView(t, c0, "safe-room", 5*time.Second)
		if len(v.Members) == 2 {
			break
		}
	}
	if err := c0.Multicast(evs.Safe, []byte("stable"), "safe-room"); err != nil {
		t.Fatal(err)
	}
	for _, c := range []*client.Client{c0, c1} {
		m := nextMessage(t, c, 5*time.Second)
		if m.Service != evs.Safe || string(m.Payload) != "stable" {
			t.Fatalf("got %+v", m)
		}
	}
}

func TestClientValidation(t *testing.T) {
	daemons := startDaemons(t, 1)
	c := dial(t, daemons[0], "v")
	if err := c.Join(""); err != group.ErrBadGroup {
		t.Fatalf("Join(\"\") = %v", err)
	}
	if err := c.Multicast(evs.Agreed, nil); err == nil {
		t.Fatal("multicast with no groups accepted")
	}
	if err := c.Multicast(evs.Service(0), nil, "g"); err == nil {
		t.Fatal("invalid service accepted")
	}
}
