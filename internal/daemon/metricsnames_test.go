package daemon

import (
	"bytes"
	"net"
	"regexp"
	"strings"
	"testing"
	"time"

	"accelring/internal/evs"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
)

// startObservedDaemon is the startDaemons rig with the full observability
// stack attached, the way ringdaemon -obs wires it.
func startObservedDaemon(t *testing.T, id evs.ProcID, hub *transport.Hub) (*Daemon, *obs.Registry) {
	t.Helper()
	ep, err := hub.Endpoint(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ringCfg := ringnode.Accelerated(id, ep, 10, 100, 7)
	ringCfg.Timeouts = fastTimeouts()
	ringCfg.Observer = &obs.RingObserver{
		Reg:    reg,
		Tracer: obs.NewRingTracer(64),
		Msg:    obs.NewMsgTracer(1, 64),
		Flight: obs.NewFlightRecorder(0),
	}
	d, err := Start(Config{Ring: ringCfg, Listener: ln, Obs: reg, Flight: ringCfg.Observer.Flight})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d, reg
}

// TestMetricsNamesLint starts a real daemon cluster with registries
// attached, pushes traffic through it, and lints every exported
// Prometheus series against the stable naming scheme. Any metric added
// anywhere in the stack with a bad name fails here.
func TestMetricsNamesLint(t *testing.T) {
	hub := transport.NewHub()
	const n = 3
	daemons := make([]*Daemon, n)
	regs := make([]*obs.Registry, n)
	for i := 0; i < n; i++ {
		daemons[i], regs[i] = startObservedDaemon(t, evs.ProcID(i+1), hub)
	}
	// The shared in-memory hub reports transport.inmem.* into the first
	// daemon's registry (a real deployment has one UDP socket per node).
	hub.SetObserver(regs[0])
	for i, d := range daemons {
		if !d.WaitOperational(10 * time.Second) {
			t.Fatalf("daemon %d did not become operational", i)
		}
	}

	// Traffic exercises the delivery, session, and retransmission series.
	a := dial(t, daemons[0], "alice")
	b := dial(t, daemons[1], "bob")
	for _, c := range []interface{ Join(string) error }{a, b} {
		if err := c.Join("lint"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if err := a.Multicast(evs.Agreed, []byte("ping"), "lint"); err != nil {
		t.Fatal(err)
	}
	nextMessage(t, b, 5*time.Second)

	name := regexp.MustCompile(`^accelring_[a-z0-9_]+$`)
	line := regexp.MustCompile(`^(accelring_[a-z0-9_]+)(\{[^}]*\})? `)
	total := 0
	for i, reg := range regs {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		for _, l := range strings.Split(buf.String(), "\n") {
			if l == "" || strings.HasPrefix(l, "#") {
				continue
			}
			m := line.FindStringSubmatch(l)
			if m == nil {
				t.Errorf("daemon %d: unparseable exposition line %q", i, l)
				continue
			}
			if !name.MatchString(m[1]) {
				t.Errorf("daemon %d: series %q violates ^accelring_[a-z0-9_]+$", i, m[1])
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no series exported from a live cluster")
	}
	// The big families must actually be present from live traffic.
	var buf bytes.Buffer
	if err := regs[0].WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"accelring_ring_rounds",
		"accelring_daemon_clients",
		"accelring_transport_",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("live registry missing family %q", want)
		}
	}
}
