package daemon

import (
	"bytes"
	"net"
	"regexp"
	"strings"
	"testing"
	"time"

	"accelring/internal/evs"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
)

// startObservedDaemon is the startDaemons rig with the full observability
// stack attached, the way ringdaemon -obs wires it.
func startObservedDaemon(t *testing.T, id evs.ProcID, hub *transport.Hub) (*Daemon, *obs.Registry) {
	t.Helper()
	ep, err := hub.Endpoint(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ringCfg := ringnode.Accelerated(id, ep, 10, 100, 7)
	ringCfg.Timeouts = fastTimeouts()
	ringCfg.Observer = &obs.RingObserver{
		Reg:    reg,
		Tracer: obs.NewRingTracer(64),
		Msg:    obs.NewMsgTracer(1, 64),
		Flight: obs.NewFlightRecorder(0),
	}
	d, err := Start(Config{Ring: ringCfg, Listener: ln, Obs: reg, Flight: ringCfg.Observer.Flight})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	return d, reg
}

// TestMetricsNamesLint starts a real daemon cluster with registries
// attached, pushes traffic through it, and lints every exported
// Prometheus series against the stable naming scheme. Any metric added
// anywhere in the stack with a bad name fails here.
func TestMetricsNamesLint(t *testing.T) {
	hub := transport.NewHub()
	const n = 3
	daemons := make([]*Daemon, n)
	regs := make([]*obs.Registry, n)
	for i := 0; i < n; i++ {
		daemons[i], regs[i] = startObservedDaemon(t, evs.ProcID(i+1), hub)
	}
	// The shared in-memory hub reports transport.inmem.* into the first
	// daemon's registry (a real deployment has one UDP socket per node).
	hub.SetObserver(regs[0])
	for i, d := range daemons {
		if !d.WaitOperational(10 * time.Second) {
			t.Fatalf("daemon %d did not become operational", i)
		}
	}

	// Traffic exercises the delivery, session, and retransmission series.
	a := dial(t, daemons[0], "alice")
	b := dial(t, daemons[1], "bob")
	for _, c := range []interface{ Join(string) error }{a, b} {
		if err := c.Join("lint"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if err := a.Multicast(evs.Agreed, []byte("ping"), "lint"); err != nil {
		t.Fatal(err)
	}
	nextMessage(t, b, 5*time.Second)

	name := regexp.MustCompile(`^accelring_[a-z0-9_]+$`)
	line := regexp.MustCompile(`^(accelring_[a-z0-9_]+)(\{[^}]*\})? `)
	total := 0
	for i, reg := range regs {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		for _, l := range strings.Split(buf.String(), "\n") {
			if l == "" || strings.HasPrefix(l, "#") {
				continue
			}
			m := line.FindStringSubmatch(l)
			if m == nil {
				t.Errorf("daemon %d: unparseable exposition line %q", i, l)
				continue
			}
			if !name.MatchString(m[1]) {
				t.Errorf("daemon %d: series %q violates ^accelring_[a-z0-9_]+$", i, m[1])
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no series exported from a live cluster")
	}
	// The big families must actually be present from live traffic.
	var buf bytes.Buffer
	if err := regs[0].WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"accelring_ring_rounds",
		"accelring_daemon_clients",
		"accelring_transport_",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("live registry missing family %q", want)
		}
	}
}

// TestMetricsNamesLintSharded is the lint over a 2-shard daemon running
// the full observability stack — merger, latency attribution, SLO, and
// health — the families added by the backpressure, wire-batching, fanout
// and merge work. Every series must parse and match the naming scheme,
// and the newer families must be present with ring labels where scoped.
func TestMetricsNamesLintSharded(t *testing.T) {
	var regs []*obs.Registry
	daemons := startShardedDaemonsCfg(t, 2, 2, func(cfg *Config) {
		reg := obs.NewRegistry()
		regs = append(regs, reg)
		cfg.Obs = reg
		cfg.Ring.Observer = &obs.RingObserver{Reg: reg, Msg: obs.NewMsgTracer(1, 1024)}
	})

	a := dial(t, daemons[0], "alice")
	b := dial(t, daemons[1], "bob")
	for _, g := range []string{"g-0", "g-1"} {
		if err := a.Join(g); err != nil {
			t.Fatal(err)
		}
		if err := b.Join(g); err != nil {
			t.Fatal(err)
		}
		nextView(t, a, g, 5*time.Second)
	}
	for _, g := range []string{"g-0", "g-1"} {
		if err := b.Multicast(evs.Agreed, []byte("ping"), g); err != nil {
			t.Fatal(err)
		}
		nextMessage(t, a, 5*time.Second)
	}

	// Attach the aggregation layers the way ringdaemon -obs does and run
	// one evaluation so their gauges and histograms register.
	lat := obs.NewLatencyAgg(regs[0])
	slo := obs.NewSLO(regs[0], obs.SLOConfig{TargetP99: time.Second, MinSamples: 1})
	scopes := []string{"shard0", "shard1"}
	for r, scope := range scopes {
		lat.AddTracer(scope, daemons[0].RingNode(r).Observer().MsgTracer())
	}
	lat.Fold()
	for _, scope := range scopes {
		slo.Track(scope, lat.E2E(scope))
	}
	slo.Pass()
	health := obs.NewHealth(regs[0], obs.HealthConfig{Scopes: scopes, Latency: lat, SLO: slo})
	health.Check()

	name := regexp.MustCompile(`^accelring_[a-z0-9_]+$`)
	line := regexp.MustCompile(`^(accelring_[a-z0-9_]+)(\{[^}]*\})? `)
	for i, reg := range regs {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		for _, l := range strings.Split(buf.String(), "\n") {
			if l == "" || strings.HasPrefix(l, "#") {
				continue
			}
			m := line.FindStringSubmatch(l)
			if m == nil {
				t.Errorf("daemon %d: unparseable exposition line %q", i, l)
				continue
			}
			if !name.MatchString(m[1]) {
				t.Errorf("daemon %d: series %q violates ^accelring_[a-z0-9_]+$", i, m[1])
			}
		}
	}

	var buf bytes.Buffer
	if err := regs[0].WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		// Outbox tiers, writer, fanout, session routing, auth.
		"accelring_daemon_tier_spill",
		"accelring_daemon_tier_throttle",
		"accelring_daemon_writer_flushes",
		"accelring_daemon_writer_frames",
		"accelring_daemon_fanout_encodes",
		"accelring_daemon_fanout_shared",
		"accelring_daemon_frames_routed",
		"accelring_daemon_submits",
		"accelring_daemon_auth_drops",
		"accelring_daemon_slow_disconnects",
		// Cross-ring merge, scoped per ring.
		"accelring_merge_emitted",
		"accelring_merge_pending",
		`accelring_merge_frontier{ring="0"}`,
		`accelring_merge_frontier{ring="1"}`,
		`accelring_ring_rounds{ring="0"}`,
		`accelring_ring_rounds{ring="1"}`,
		// Latency attribution and SLO families from the aggregators.
		`accelring_latency_spans_folded{ring="0"}`,
		`accelring_latency_e2e_ns_count{ring="0"}`,
		`accelring_slo_breach{ring="0"}`,
		`accelring_slo_p99_burn_ppm{ring="1"}`,
		// Health detector verdicts per ring.
		`accelring_health_healthy{ring="0"}`,
		`accelring_health_merge_stall{ring="1"}`,
		`accelring_health_slo_burn{ring="0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("sharded registry missing series %q", want)
		}
	}
}
