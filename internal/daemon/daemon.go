// Package daemon implements the client-daemon architecture of Spread and
// of the paper's daemon-based prototype: one daemon per host runs the ring
// protocol, local clients connect over a stream socket, and the daemon
// routes totally ordered group messages to the clients that joined the
// target groups. The architecture gives a clean separation between
// middleware and application, lets one daemon set serve several
// applications, and provides open-group semantics (senders need not be
// members).
//
// With Config.Shards > 1 the daemon runs N independent ring instances
// (the Multi-Ring scaling pattern) and routes every group to its owning
// ring by the stable shard.RingOf hash: per-group total order is
// unchanged, aggregate ordering throughput multiplies, and cross-group
// delivery order is guaranteed only for groups that hash to the same
// ring.
//
// The client path is hardened for the edge of overload:
//
//   - Tiered backpressure: each session's outbound frames flow through a
//     fixed in-memory ring (tier 0) that overflows into a bounded spill
//     queue (tier 1); past a throttle watermark the client is told to
//     pace itself (tier 2, session.Throttle); only a full spill queue
//     disconnects (the last resort). Transitions are exported as
//     daemon.tier_* metrics and flight-recorder events.
//   - Reconnect with resume: every delivery carries a per-session
//     sequence number (session.Seqd); a client that loses its TCP
//     connection presents its resume token and last processed sequence
//     (session.Resume) and the daemon replays the retained window, so
//     delivery is exactly-once across reconnects. Clients acknowledge
//     (session.Ack) to prune the window. A detached session that neither
//     resumes nor said Bye within ResumeTimeout is disconnected in
//     order.
//   - Graceful drain: Drain flushes every session's queue, hands clients
//     a Detach notice with resume blessing, and emits the final ordered
//     leave per session.
//   - Authenticated frames: with Config.Key set, every session frame
//     carries a truncated HMAC-SHA256 tag (session.Codec); forged frames
//     are counted, flight-recorded, and dropped. Keyed Resume handshakes
//     additionally complete a nonce challenge (session.Challenge), so a
//     captured Resume frame replayed from another connection cannot
//     hijack the session. The ring's own wire frames are authenticated
//     by transport.WithAuth.
package daemon

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"accelring/internal/bufpool"
	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
	"accelring/internal/session"
	"accelring/internal/shard"
	"accelring/internal/shard/merge"
	"accelring/internal/transport"
)

// Config configures a daemon.
type Config struct {
	// Ring is the protocol configuration (Self, Transport, windows,
	// timeouts). Its OnEvent field is owned by the daemon. With Shards
	// > 1 it is the per-ring template: its Transport is ignored and
	// NewTransport opens each ring's own binding.
	Ring ringnode.Config
	// Shards is the ring-instance count (default 1). Each instance is a
	// full protocol stack — engine, membership, transport — and groups
	// are partitioned across them by shard.RingOf.
	Shards int
	// NewTransport opens ring r's transport binding; required when
	// Shards > 1 (each ring needs its own ports), ignored otherwise.
	NewTransport func(ring int) (transport.Transport, error)
	// SkipInterval is the lambda-pacing tick of the cross-ring merge
	// (Shards > 1 only): how often the daemon checks for idle rings that
	// block the global order and, when it is the blocked ring's
	// representative, orders a skip claim on it (default 2ms). Smaller
	// values cut the latency a busy ring's messages wait on an idle one;
	// larger values cut skip traffic.
	SkipInterval time.Duration
	// SkipAhead is how many virtual slots past the blocked head each
	// skip claims (default merge.DefaultSkipAhead).
	SkipAhead uint64
	// Listener accepts client connections (TCP or Unix socket). The
	// daemon takes ownership and closes it on Stop.
	Listener net.Listener
	// ClientBuffer is the per-session in-memory outbound ring, the
	// zero-overhead tier of the backpressure ladder (default 1024).
	ClientBuffer int
	// SpillLimit caps the per-session delivery backlog (ring + spill
	// queue); a session this far behind is disconnected as the last
	// resort (default 16*ClientBuffer).
	SpillLimit int
	// ThrottleAt is the backlog watermark at which the client is sent a
	// Throttle notification (default SpillLimit/2). The notification is
	// withdrawn once the backlog halves again.
	ThrottleAt int
	// RetainLimit caps the written-but-unacked window kept for resume
	// replay (default 4096). A client whose reconnect needs more than
	// this is refused resume and must start a fresh session.
	RetainLimit int
	// ResumeTimeout is how long a detached session is held for resume
	// before its ordered disconnect is emitted (default 30s).
	ResumeTimeout time.Duration
	// WriterBatch is how many pending outbox frames one session writer
	// drains per wakeup and flushes with a single vectored write
	// (net.Buffers/writev) instead of one syscall per frame (default 8;
	// 1 disables batching). Larger values amortize syscalls under
	// fan-out load at no latency cost when the queue is shallow — a
	// batch never waits for more frames.
	WriterBatch int
	// Key, when non-empty, authenticates every session frame with a
	// truncated HMAC-SHA256 tag; clients must present the same key.
	// Forged frames are counted on daemon.auth_drops and dropped, and
	// Resume handshakes additionally answer a random nonce challenge so
	// a recorded Resume frame cannot be replayed to hijack a session.
	Key []byte
	// Obs, when non-nil, receives daemon.* session metrics. The ring
	// protocol's own metrics are wired through Ring.Observer.
	Obs *obs.Registry
	// Flight, when non-nil, receives black-box client lifecycle events
	// (connect, disconnect, tier transitions, resume, drain). The ring
	// protocol's own flight events are wired through Ring.Observer.
	Flight *obs.FlightRecorder
}

// Daemon is one host's ordering daemon.
type Daemon struct {
	cfg    Config
	self   evs.ProcID
	node   *ringnode.Node // single-ring mode (nil when sharded)
	rings  *shard.Group   // sharded mode (nil when Shards <= 1)
	shards int
	ln     net.Listener
	codec  session.Codec

	// table holds one per-ring partition. Without a merger each
	// partition is only touched on its own ring's protocol goroutine
	// (onRingEvent); with one, all partitions are mutated at the
	// merger's globally ordered emission points, under its lock.
	table *group.ShardedTable

	// merger reunifies the per-ring ordered streams into one global
	// delivery order when Shards > 1 (nil otherwise); pacerStop ends
	// its lambda-pacing goroutine.
	merger    *merge.Merger
	pacerStop chan struct{}

	mu        sync.Mutex
	clients   map[uint32]*clientConn
	nextLocal uint32
	stopped   bool
	draining  bool

	wg sync.WaitGroup
	dm daemonMetrics
}

// daemonMetrics caches the daemon's session-layer metric handles (all
// nil-safe; a nil Config.Obs costs one nil check per update).
type daemonMetrics struct {
	clients       *obs.Gauge
	detached      *obs.Gauge
	spilling      *obs.Gauge
	throttledCli  *obs.Gauge
	backActive    *obs.Gauge
	backQueue     *obs.Gauge
	sessions      *obs.Counter
	submits       *obs.Counter
	errorsSent    *obs.Counter
	slowDisconns  *obs.Counter
	framesRouted  *obs.Counter
	viewsAnnounce *obs.Counter
	tierSpill     *obs.Counter
	tierThrottle  *obs.Counter
	resumes       *obs.Counter
	resumeRejects *obs.Counter
	privateDrops  *obs.Counter
	backWaits     *obs.Counter
	authDrops     *obs.Counter
	drains        *obs.Counter
	fanoutEnc     *obs.Counter
	fanoutShared  *obs.Counter
	writerFlushes *obs.Counter
	writerFrames  *obs.Counter
}

func newDaemonMetrics(reg *obs.Registry) daemonMetrics {
	return daemonMetrics{
		clients:       reg.Gauge("daemon.clients"),
		detached:      reg.Gauge("daemon.sessions_detached"),
		spilling:      reg.Gauge("daemon.clients_spilling"),
		throttledCli:  reg.Gauge("daemon.clients_throttled"),
		backActive:    reg.Gauge("daemon.backpressure_active"),
		backQueue:     reg.Gauge("daemon.backpressure_queue"),
		sessions:      reg.Counter("daemon.sessions_total"),
		submits:       reg.Counter("daemon.submits"),
		errorsSent:    reg.Counter("daemon.errors_sent"),
		slowDisconns:  reg.Counter("daemon.slow_disconnects"),
		framesRouted:  reg.Counter("daemon.frames_routed"),
		viewsAnnounce: reg.Counter("daemon.views_announced"),
		tierSpill:     reg.Counter("daemon.tier_spill"),
		tierThrottle:  reg.Counter("daemon.tier_throttle"),
		resumes:       reg.Counter("daemon.resumes"),
		resumeRejects: reg.Counter("daemon.resume_rejects"),
		privateDrops:  reg.Counter("daemon.private_drops"),
		backWaits:     reg.Counter("daemon.backpressure_waits"),
		authDrops:     reg.Counter("daemon.auth_drops"),
		drains:        reg.Counter("daemon.drains"),
		fanoutEnc:     reg.Counter("daemon.fanout_encodes"),
		fanoutShared:  reg.Counter("daemon.fanout_shared"),
		writerFlushes: reg.Counter("daemon.writer_flushes"),
		writerFrames:  reg.Counter("daemon.writer_frames"),
	}
}

// clientConn is one client session. The session outlives its TCP
// connection: on a connection loss it stays registered (detached) until
// the client resumes, says Bye, or ResumeTimeout expires.
type clientConn struct {
	id    group.ClientID
	name  string
	token uint64
	out   *outbox
	// split is the connection's SplitByRing scratch; only the session's
	// reader goroutine touches it, so spanning sends stay alloc-free.
	split []group.RingGroups

	mu       sync.Mutex
	expiry   *time.Timer // resume deadline while detached
	detached bool

	dropOnce sync.Once
}

// newToken mints a session's resume secret.
func newToken() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic("daemon: crypto/rand unavailable: " + err.Error())
	}
	return binary.BigEndian.Uint64(b[:]) | 1 // nonzero
}

// Start launches the protocol node(s) and the client accept loop.
func Start(cfg Config) (*Daemon, error) {
	if cfg.Listener == nil {
		return nil, errors.New("daemon: nil listener")
	}
	if cfg.ClientBuffer <= 0 {
		cfg.ClientBuffer = 1024
	}
	if cfg.SpillLimit <= cfg.ClientBuffer {
		cfg.SpillLimit = 16 * cfg.ClientBuffer
	}
	if cfg.ThrottleAt <= 0 || cfg.ThrottleAt > cfg.SpillLimit {
		cfg.ThrottleAt = cfg.SpillLimit / 2
	}
	if cfg.RetainLimit <= 0 {
		cfg.RetainLimit = 4096
	}
	if cfg.ResumeTimeout <= 0 {
		cfg.ResumeTimeout = 30 * time.Second
	}
	if cfg.WriterBatch <= 0 {
		cfg.WriterBatch = 8
	}
	if cfg.SkipInterval <= 0 {
		cfg.SkipInterval = 2 * time.Millisecond
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	d := &Daemon{
		cfg:     cfg,
		self:    cfg.Ring.Self,
		shards:  shards,
		ln:      cfg.Listener,
		codec:   session.NewCodec(cfg.Key),
		table:   group.NewShardedTable(shards),
		clients: make(map[uint32]*clientConn),
		dm:      newDaemonMetrics(cfg.Obs),
	}
	if shards > 1 {
		d.merger = merge.New(merge.Config{
			Shards:    shards,
			Self:      cfg.Ring.Self,
			Table:     d.table,
			Out:       mergeOut{d},
			SkipAhead: cfg.SkipAhead,
			Obs:       cfg.Obs,
		})
		g, err := shard.Start(shard.Config{
			Shards:       shards,
			Base:         cfg.Ring,
			NewTransport: cfg.NewTransport,
			OnEvent:      d.onRingEvent,
		})
		if err != nil {
			return nil, err
		}
		d.rings = g
		d.pacerStop = make(chan struct{})
		d.wg.Add(1)
		go d.skipPacer()
	} else {
		ringCfg := cfg.Ring
		ringCfg.OnEvent = func(ev evs.Event) { d.onRingEvent(0, ev) }
		node, err := ringnode.Start(ringCfg)
		if err != nil {
			return nil, err
		}
		d.node = node
	}
	d.wg.Add(1)
	go d.acceptLoop()
	return d, nil
}

// Node exposes the underlying protocol node (ring 0's when sharded).
func (d *Daemon) Node() *ringnode.Node { return d.ringNode(0) }

// Shards returns the daemon's ring-instance count.
func (d *Daemon) Shards() int { return d.shards }

// RingNode exposes ring r's protocol node (status inspection).
func (d *Daemon) RingNode(r int) *ringnode.Node { return d.ringNode(r) }

func (d *Daemon) ringNode(r int) *ringnode.Node {
	if d.rings != nil {
		return d.rings.Node(r)
	}
	return d.node
}

// msgTracer returns ring's message-lifecycle tracer (nil when tracing
// is off — the single branch the uninstrumented hot path pays).
func (d *Daemon) msgTracer(ring int) *obs.MsgTracer {
	return d.ringNode(ring).Observer().MsgTracer()
}

// obsNow reads ring's observer clock (zero time without an observer, in
// which case no tracer exists to record the event anyway).
func (d *Daemon) obsNow(ring int) time.Time {
	return d.ringNode(ring).Observer().Now()
}

// submit hands an encoded envelope to the owning ring.
func (d *Daemon) submit(ring int, enc []byte, svc evs.Service) error {
	if d.rings != nil {
		return d.rings.Submit(ring, enc, svc)
	}
	return d.node.Submit(enc, svc)
}

// Addr returns the client listener's address.
func (d *Daemon) Addr() net.Addr { return d.ln.Addr() }

// WaitOperational blocks until every one of the daemon's rings is
// operational.
func (d *Daemon) WaitOperational(timeout time.Duration) bool {
	if d.rings != nil {
		return d.rings.WaitOperational(timeout)
	}
	return d.node.WaitState(membership.StateOperational, timeout)
}

// Stop disconnects clients, stops the listener and the protocol node.
func (d *Daemon) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	clients := make([]*clientConn, 0, len(d.clients))
	for _, c := range d.clients {
		clients = append(clients, c)
	}
	d.mu.Unlock()

	d.ln.Close()
	if d.pacerStop != nil {
		close(d.pacerStop)
	}
	for _, c := range clients {
		d.shutdownClient(c)
	}
	d.wg.Wait()
	if d.rings != nil {
		d.rings.Stop()
	} else {
		d.node.Stop()
	}
}

// shutdown tears the session down without the ordered-disconnect
// bookkeeping, reporting the backpressure tiers it still occupied.
func (c *clientConn) shutdown() (spilling, throttled bool) {
	c.mu.Lock()
	if c.expiry != nil {
		c.expiry.Stop()
	}
	c.mu.Unlock()
	conn, spilling, throttled := c.out.shutdown()
	if conn != nil {
		conn.Close()
	}
	return spilling, throttled
}

// shutdownClient closes the session's outbox and settles the tier gauges
// it still held — an overflow disconnect by definition happens while the
// session is spilling, so without this clients_spilling and
// clients_throttled would leak upward on every drop.
func (d *Daemon) shutdownClient(c *clientConn) {
	spilling, throttled := c.shutdown()
	if spilling {
		d.dm.spilling.Add(-1)
	}
	if throttled {
		d.dm.throttledCli.Add(-1)
	}
}

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return // listener closed
		}
		d.wg.Add(1)
		go d.serveClient(conn)
	}
}

// flight records a black-box client event (nil-safe).
func (d *Daemon) flight(note string, local uint32, count int) {
	if d.cfg.Flight != nil {
		d.cfg.Flight.Record(obs.FlightEvent{
			Kind: obs.FlightClient, Note: note, Seq: uint64(local), Count: count,
		})
	}
}

// serveClient handles one inbound connection: a Connect handshake opens
// a new session, a Resume handshake reattaches an existing one.
func (d *Daemon) serveClient(conn net.Conn) {
	defer d.wg.Done()
	f, buf, err := d.codec.ReadFramePooled(conn)
	if err != nil {
		if errors.Is(err, session.ErrAuth) {
			d.dm.authDrops.Inc()
			d.flight("auth_drop", 0, 0)
		}
		conn.Close()
		return
	}
	// Handshake frames carry no zero-copy fields past decode (names and
	// tokens are copied), so the read buffer recycles immediately.
	bufpool.Put(buf)
	switch hello := f.(type) {
	case session.Connect:
		d.handleConnect(conn, hello)
	case session.Resume:
		d.handleResume(conn, hello)
	default:
		_ = d.codec.WriteFrame(conn, session.Error{Code: session.CodeBadRequest, Msg: "expected connect or resume"})
		conn.Close()
	}
}

func (d *Daemon) handleConnect(conn net.Conn, hello session.Connect) {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		conn.Close()
		return
	}
	if d.draining {
		d.mu.Unlock()
		_ = d.codec.WriteFrame(conn, session.Error{Code: session.CodeDraining, Msg: "daemon is draining"})
		conn.Close()
		return
	}
	d.nextLocal++
	c := &clientConn{
		id:    group.ClientID{Daemon: d.self, Local: d.nextLocal},
		name:  hello.Name,
		token: newToken(),
		out: newOutbox(d.codec, d.cfg.ClientBuffer,
			d.cfg.ThrottleAt, d.cfg.SpillLimit, d.cfg.RetainLimit),
	}
	d.clients[c.id.Local] = c
	active := len(d.clients)
	d.mu.Unlock()
	d.dm.sessions.Inc()
	d.dm.clients.Add(1)
	d.flight("connect", c.id.Local, active)

	// The Welcome rides the outbox like every other daemon->client frame:
	// attach splices it in as the first control frame under the outbox
	// lock, so seq accounting and notice ordering cannot diverge from the
	// write path (and the writer can never race a delivery ahead of it).
	if !c.out.attach(conn, 0, session.Welcome{Client: c.id, Token: c.token}) {
		conn.Close()
		d.dropClient(c)
		return
	}
	d.wg.Add(1)
	go d.sessionWriter(c)
	d.clientReader(c, conn)
}

// handleResume reattaches a detached session after validating identity,
// token, and replay window.
func (d *Daemon) handleResume(conn net.Conn, req session.Resume) {
	reject := func(code session.ErrorCode, msg string) {
		d.dm.resumeRejects.Inc()
		d.flight("resume_reject", req.Client.Local, 0)
		_ = d.codec.WriteFrame(conn, session.Error{Code: code, Msg: msg})
		conn.Close()
	}
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		conn.Close()
		return
	}
	if d.draining {
		d.mu.Unlock()
		reject(session.CodeDraining, "daemon is draining")
		return
	}
	var c *clientConn
	if req.Client.Daemon == d.self {
		c = d.clients[req.Client.Local]
	}
	d.mu.Unlock()
	if c == nil || c.token != req.Token {
		reject(session.CodeSessionUnknown, "unknown session or bad token")
		return
	}
	if err := c.out.canResume(req.LastSeq); err != nil {
		reject(session.CodeSessionUnknown, err.Error())
		return
	}
	if d.codec.Keyed() && !d.challengeResume(conn) {
		d.dm.authDrops.Inc()
		reject(session.CodeSessionUnknown, "resume challenge failed")
		return
	}
	// The Welcome must hit the wire before any Seqd frame on the new
	// connection: attach splices it in as the first control frame under
	// the same lock that installs conn, so it precedes the replayed
	// window and any queued notice while still riding the one outbox
	// write path.
	if !c.out.attach(conn, req.LastSeq, session.Welcome{Client: c.id, Token: c.token, Resumed: true}) {
		conn.Close()
		return
	}
	c.mu.Lock()
	if c.expiry != nil {
		c.expiry.Stop()
		c.expiry = nil
	}
	if c.detached {
		c.detached = false
		d.dm.detached.Add(-1)
	}
	c.mu.Unlock()
	d.dm.resumes.Inc()
	d.flight("resume", c.id.Local, 0)
	d.clientReader(c, conn)
}

// resumeChallengeTimeout bounds how long a Resume handshake may sit on
// the challenge round trip before the daemon gives up the connection.
const resumeChallengeTimeout = 5 * time.Second

// challengeResume demands fresh proof of key possession before a keyed
// Resume is honored. The Resume frame's HMAC covers only static bytes,
// so an on-path observer could replay a recorded Resume verbatim from
// its own connection and hijack the session. The daemon therefore sends
// a random nonce and requires a ChallengeAck echoing it: the ack's frame
// MAC covers the nonce, a value no recorded stream contains, so only a
// holder of the session key can complete the handshake.
func (d *Daemon) challengeResume(conn net.Conn) bool {
	var ch session.Challenge
	if _, err := cryptorand.Read(ch.Nonce[:]); err != nil {
		panic("daemon: crypto/rand unavailable: " + err.Error())
	}
	if err := d.codec.WriteFrame(conn, ch); err != nil {
		return false
	}
	conn.SetReadDeadline(time.Now().Add(resumeChallengeTimeout))
	f, buf, err := d.codec.ReadFramePooled(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		return false
	}
	bufpool.Put(buf) // the nonce is an array copy
	ack, ok := f.(session.ChallengeAck)
	return ok && ack.Nonce == ch.Nonce
}

// clientReader turns client requests into ordered envelopes. Frames are
// read into pooled buffers and recycled after each request: every path
// below copies what it keeps (envelope encoding copies payloads and
// group names, decode already copied the strings), so nothing aliases
// the buffer once handleRequest returns.
func (d *Daemon) clientReader(c *clientConn, conn net.Conn) {
	for {
		f, buf, err := d.codec.ReadFramePooled(conn)
		if err != nil {
			if errors.Is(err, session.ErrAuth) {
				d.dm.authDrops.Inc()
				d.flight("auth_drop", c.id.Local, 0)
			}
			d.detachClient(c, conn)
			return
		}
		done := d.handleRequest(c, f)
		bufpool.Put(buf)
		if done {
			return
		}
	}
}

// handleRequest applies one client frame; true means the session ended
// (clean Bye).
func (d *Daemon) handleRequest(c *clientConn, f session.Frame) bool {
	switch req := f.(type) {
	case session.Bye:
		d.dropClient(c)
		return true
	case session.Ack:
		c.out.ack(req.Seq)
	case session.Join:
		d.submitEnvelope(c, d.table.Ring(req.Group), group.Envelope{
			Kind: group.OpJoin, Sender: c.id, Groups: []string{req.Group},
		}, evs.Agreed)
	case session.Leave:
		d.submitEnvelope(c, d.table.Ring(req.Group), group.Envelope{
			Kind: group.OpLeave, Sender: c.id, Groups: []string{req.Group},
		}, evs.Agreed)
	case session.Send:
		svc := req.Service
		if !svc.Valid() {
			d.pushError(c, session.Error{Code: session.CodeInvalidService, Msg: "invalid service"})
			return false
		}
		d.backpressure()
		// A multi-group send spanning several rings becomes one
		// independent ordered message per owning ring, submitted in
		// ascending ring order so identical runs replay identically;
		// the cross-ring merger reunifies the per-ring streams into
		// one global delivery order. The single-ring common case
		// reuses the connection's split scratch and does not allocate.
		c.split = d.table.SplitByRing(req.Groups, c.split)
		for _, rg := range c.split {
			d.submitEnvelope(c, rg.Ring, group.Envelope{
				Kind: group.OpMessage, Sender: c.id, Groups: rg.Groups,
				Payload: req.Payload,
			}, svc)
		}
	case session.Private:
		svc := req.Service
		if !svc.Valid() {
			d.pushError(c, session.Error{Code: session.CodeInvalidService, Msg: "invalid service"})
			return false
		}
		d.backpressure()
		d.submitEnvelope(c, shard.RingOfClient(req.To.String(), d.shards), group.Envelope{
			Kind: group.OpPrivate, Sender: c.id, Target: req.To,
			Payload: req.Payload,
		}, svc)
	default:
		d.pushError(c, session.Error{Code: session.CodeBadRequest, Msg: fmt.Sprintf("unexpected frame %T", f)})
	}
	return false
}

// pushError sends a sequenced Error frame and counts it.
func (d *Daemon) pushError(c *clientConn, e session.Error) {
	d.dm.errorsSent.Inc()
	d.deliver(c, e)
}

func (d *Daemon) submitEnvelope(c *clientConn, ring int, env group.Envelope, svc evs.Service) {
	enc, err := env.Encode()
	if err != nil {
		d.pushError(c, session.Error{Code: session.CodeBadRequest, Msg: err.Error()})
		return
	}
	if err := d.submit(ring, enc, svc); err != nil {
		code := session.CodeGeneric
		if errors.Is(err, membership.ErrNotOperational) {
			code = session.CodeNotReady
		}
		d.pushError(c, session.Error{Code: code, Msg: err.Error()})
		return
	}
	d.dm.submits.Inc()
}

// sessionWriter drains the session's outbox for as long as the session
// lives, across reconnects: a write error detaches the connection and
// the loop parks in nextBatch until the client resumes. Each wakeup
// drains up to Config.WriterBatch pending frames and flushes them with
// one vectored write (writev on TCP/unix sockets) instead of a syscall
// per frame, so a backlogged fan-out costs ~1/WriterBatch syscalls per
// delivered frame; a shallow queue still flushes immediately.
func (d *Daemon) sessionWriter(c *clientConn) {
	defer d.wg.Done()
	w := newFrameWriter(d.cfg.WriterBatch)
	for {
		conn, codec, frames, ok := c.out.nextBatch(w.frames[:0], d.cfg.WriterBatch)
		if !ok {
			return
		}
		w.frames = frames
		if err := w.flush(conn, codec, frames); err != nil {
			d.detachClient(c, conn)
			continue
		}
		d.dm.writerFlushes.Inc()
		d.dm.writerFrames.Add(uint64(len(frames)))
		for i := range frames {
			if frames[i].traceSeq != 0 {
				// Writer-flush stage for a sampled delivery: the frame's
				// bytes have reached the client socket. Replays after a
				// reconnect re-record; the latency fold keeps the
				// earliest stamp.
				ring := frames[i].traceRing
				d.msgTracer(ring).Record(obs.MsgEvent{
					Seq:   frames[i].traceSeq,
					Stage: obs.StageWriterFlush,
					At:    d.obsNow(ring),
				})
			}
		}
		d.afterWrite(c, c.out.wroteBatch(conn, frames))
	}
}

// deliver pushes one sequenced frame into the session's outbox and acts
// on the resulting tier transition.
func (d *Daemon) deliver(c *clientConn, f session.Frame) {
	d.afterPush(c, c.out.push(f))
}

// deliverShared pushes one encode-once shared delivery (the outbox takes
// its own reference) and acts on the resulting tier transition. traceSeq
// is nonzero only for latency-sampled deliveries; it rides the queued
// frame so the writer can attribute flush time to the span.
func (d *Daemon) deliverShared(c *clientConn, sh *session.Shared, traceSeq uint64, ring int) {
	d.dm.fanoutShared.Inc()
	d.afterPush(c, c.out.pushSharedTraced(sh, traceSeq, ring))
}

// afterPush acts on the backpressure tier transition one enqueue caused.
func (d *Daemon) afterPush(c *clientConn, res pushResult) {
	if res.overflow {
		// Last resort: even the spill queue is full.
		d.dm.slowDisconns.Inc()
		d.flight("slow_disconnect", c.id.Local, res.queued)
		d.dropClient(c)
		return
	}
	if res.spillStart {
		d.dm.tierSpill.Inc()
		d.dm.spilling.Add(1)
		d.flight("tier_spill", c.id.Local, res.queued)
	}
	if res.throttleOn {
		// The Throttle notice itself was enqueued by push under the
		// outbox lock, so it cannot be reordered against the writer's
		// Off; only the bookkeeping happens here.
		d.dm.tierThrottle.Inc()
		d.dm.throttledCli.Add(1)
		d.flight("tier_throttle", c.id.Local, res.queued)
	}
}

// afterWrite acts on tier recoveries reported by the outbox.
func (d *Daemon) afterWrite(c *clientConn, res writeResult) {
	if res.spillEnd {
		d.dm.spilling.Add(-1)
	}
	if res.throttleOff {
		d.dm.throttledCli.Add(-1)
		d.flight("tier_recover", c.id.Local, res.queued)
	}
}

// detachClient handles a dead connection: the session stays registered
// for ResumeTimeout awaiting a Resume, then is disconnected in order.
// Stale connections (already superseded by a resume) are ignored.
func (d *Daemon) detachClient(c *clientConn, conn net.Conn) {
	conn.Close()
	if !c.out.detach(conn) {
		return
	}
	d.mu.Lock()
	ending := d.stopped
	d.mu.Unlock()
	if ending {
		return
	}
	c.mu.Lock()
	if !c.detached {
		c.detached = true
		d.dm.detached.Add(1)
		if c.expiry != nil {
			c.expiry.Stop()
		}
		c.expiry = time.AfterFunc(d.cfg.ResumeTimeout, func() { d.dropClient(c) })
	}
	c.mu.Unlock()
	d.flight("detach", c.id.Local, 0)
}

// dropClient ends the session for good: unregisters it and announces
// its departure in order.
func (d *Daemon) dropClient(c *clientConn) {
	c.dropOnce.Do(func() {
		d.shutdownClient(c)
		d.mu.Lock()
		_, known := d.clients[c.id.Local]
		delete(d.clients, c.id.Local)
		stopped := d.stopped
		d.mu.Unlock()
		c.mu.Lock()
		if c.detached {
			c.detached = false
			d.dm.detached.Add(-1)
		}
		c.mu.Unlock()
		if !known || stopped {
			return
		}
		d.dm.clients.Add(-1)
		d.flight("disconnect", c.id.Local, 0)
		env := group.Envelope{Kind: group.OpDisconnect, Sender: c.id}
		if enc, err := env.Encode(); err == nil {
			// Submitted off this goroutine — drops can originate on a
			// ring's own event goroutine (overflow during delivery), where
			// a synchronous Submit would deadlock. Best effort: if a ring
			// is down its table is rebuilt from configuration changes
			// anyway.
			if d.merger != nil {
				// One copy, ordered on ring 0 and applied to every
				// partition at its single global emission point — per-ring
				// copies would race migration closes between them.
				go func() { _ = d.submit(0, enc, evs.Agreed) }()
			} else {
				// The disconnect must reach EVERY ring: the client's
				// groups may be partitioned across all of them, and each
				// ring drops its own in its own total order.
				shards := d.shards
				go func() {
					for r := 0; r < shards; r++ {
						_ = d.submit(r, enc, evs.Agreed)
					}
				}()
			}
		}
	})
}

// localClient looks up a session by global ID. Detached sessions count:
// their deliveries keep queuing for the resumed connection.
func (d *Daemon) localClient(id group.ClientID) *clientConn {
	if id.Daemon != d.self {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clients[id.Local]
}

// onRingEvent runs on ring's protocol goroutine. Without a merger
// (Shards <= 1) it applies ordered envelopes to that ring's partition of
// the group table directly. With one, every ring's ordered stream —
// envelopes AND configuration changes — feeds the cross-ring merger,
// which re-invokes the same application logic (via mergeOut) at each
// item's globally ordered emission point; every daemon then applies the
// identical interleaving of all rings' events.
func (d *Daemon) onRingEvent(ring int, ev evs.Event) {
	switch e := ev.(type) {
	case evs.Message:
		env, err := group.DecodeEnvelope(e.Payload)
		if err != nil {
			return // not ours; a foreign application on the same ring
		}
		if d.merger != nil {
			d.merger.PushEnvelopeSeq(ring, env, e.Service, e.Seq)
			return
		}
		d.applyEnvelope(ring, env, e.Service, e.Seq)
	case evs.ConfigChange:
		if d.merger != nil {
			// Transitional changes are slotted too: every daemon must
			// assign the same virtual slots to a ring's stream.
			d.merger.PushConfig(ring, e)
			return
		}
		if e.Transitional {
			return
		}
		d.applyConfigChange(ring, e.Config)
	}
}

// mergeOut adapts the Daemon to the merger's output interface. Its
// methods run with the merger's lock held, at globally ordered emission
// points; none of them blocks or reenters the merger (submissions spawn).
type mergeOut struct{ d *Daemon }

func (o mergeOut) Deliver(ring int, env *group.Envelope, svc evs.Service, seq uint64) {
	if seq != 0 {
		if mt := o.d.msgTracer(ring); mt.Sampled(seq) {
			// The span's merge stage: the envelope's globally ordered
			// emission point (a lock-free slot store; nothing blocks).
			mt.Record(obs.MsgEvent{Seq: seq, Stage: obs.StageMergeOut, At: o.d.obsNow(ring)})
		}
	}
	o.d.applyEnvelope(ring, env, svc, seq)
}

func (o mergeOut) Config(ring int, cc evs.ConfigChange) {
	if cc.Transitional {
		return
	}
	o.d.applyConfigChange(ring, cc.Config)
}

func (o mergeOut) SubmitAsync(ring int, env group.Envelope) {
	enc, err := env.Encode()
	if err != nil {
		return
	}
	// Off the emission goroutine: Submit is a blocking round trip to the
	// ring's protocol goroutine, which may be the very one emitting.
	go func() { _ = o.d.submit(ring, enc, evs.Agreed) }()
}

func (o mergeOut) Migrated(g string, from, to int) {
	o.d.flight("migrated "+g, 0, to)
}

// skipPacer is the merge's lambda-pacing loop: every SkipInterval it asks
// the merger which idle rings block the global order and, for each ring
// this daemon represents, orders a skip claim on it. Skips are ordinary
// ordered envelopes, so every daemon applies the same claims at the same
// per-ring positions.
func (d *Daemon) skipPacer() {
	defer d.wg.Done()
	tick := time.NewTicker(d.cfg.SkipInterval)
	defer tick.Stop()
	var wants []merge.Want
	for {
		select {
		case <-d.pacerStop:
			return
		case <-tick.C:
		}
		wants = d.merger.Wants(wants)
		for _, w := range wants {
			env := d.merger.SkipEnvelope(w)
			enc, err := env.Encode()
			if err != nil {
				continue
			}
			_ = d.submit(w.Ring, enc, evs.Agreed)
		}
	}
}

// migrateTimeout bounds how long Migrate waits for the ordered close.
const migrateTimeout = 30 * time.Second

// Migrate re-homes a group onto another ring with no loss, duplication,
// or reordering: it orders an OpMigrateBegin on the group's current ring
// and blocks until the migration's globally ordered close point has been
// emitted locally (source ring drained, membership state re-homed, and
// buffered target-ring traffic replayed). Requires Shards > 1. The move
// survives this call returning early (timeout): the protocol completes or
// voids deterministically on every daemon regardless.
func (d *Daemon) Migrate(g string, ring int) error {
	if d.merger == nil {
		return errors.New("daemon: Migrate requires a sharded daemon (Shards > 1)")
	}
	env, err := d.merger.BeginEnvelope(g, ring)
	if err != nil {
		return err
	}
	from := d.table.Ring(g)
	if from == ring {
		return nil // already home
	}
	done := d.merger.NotifyMigrated(g)
	enc, err := env.Encode()
	if err != nil {
		return err
	}
	if err := d.submit(from, enc, evs.Agreed); err != nil {
		return err
	}
	select {
	case <-done:
		return nil
	case <-time.After(migrateTimeout):
		return fmt.Errorf("daemon: migration of %q to ring %d timed out", g, ring)
	}
}

// RingOfGroup reports which ring currently owns a group (hash home or
// migration override).
func (d *Daemon) RingOfGroup(g string) int { return d.table.Ring(g) }

// envTable locates the table holding a group's membership state at the
// current point of the (global, when merged) order. Without a merger it
// is always the emission ring's partition. With one, a message can
// straggle in on a ring the group has since migrated away from: the
// group's state moved at the ordered close point, so the emission ring's
// partition no longer has it and the routed partition does. Table
// contents at an emission point are identical on every daemon, so the
// probe resolves identically everywhere.
func (d *Daemon) envTable(ring int, g string) *group.Table {
	t := d.table.Table(ring)
	if d.merger == nil || t.Has(g) {
		return t
	}
	return d.table.For(g)
}

// recipientsFor computes a multicast's delivery set honoring migrated
// groups. The common case — every group's state on the emission ring's
// table — is one Recipients call; mixed tables (a straggler multicast
// naming both a migrated and a resident group) take the slow union.
func (d *Daemon) recipientsFor(ring int, groups []string) []group.ClientID {
	tbl := d.envTable(ring, groups[0])
	mixed := false
	for _, g := range groups[1:] {
		if d.envTable(ring, g) != tbl {
			mixed = true
			break
		}
	}
	if !mixed {
		return tbl.Recipients(groups)
	}
	seen := make(map[group.ClientID]bool)
	var out []group.ClientID
	for _, g := range groups {
		for _, c := range d.envTable(ring, g).Members(g) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

func (d *Daemon) applyEnvelope(ring int, env *group.Envelope, svc evs.Service, seq uint64) {
	switch env.Kind {
	case group.OpJoin:
		table := d.envTable(ring, env.Groups[0])
		if err := table.Join(env.Sender, env.Groups[0]); err == nil {
			d.announceView(table, env.Groups[0])
		} else if c := d.localClient(env.Sender); c != nil {
			d.pushError(c, session.Error{Code: session.CodeBadRequest, Msg: err.Error()})
		}
	case group.OpLeave:
		table := d.envTable(ring, env.Groups[0])
		if err := table.Leave(env.Sender, env.Groups[0]); err == nil {
			d.announceView(table, env.Groups[0])
		} else if c := d.localClient(env.Sender); c != nil {
			// Ordered rejection: the client left a group it is not in.
			d.pushError(c, session.Error{Code: session.CodeNotMember, Msg: err.Error()})
		}
	case group.OpDisconnect:
		if d.merger != nil {
			// Merged mode submits ONE disconnect (ring 0) and applies it
			// to every partition at its single globally ordered emission:
			// per-ring copies could race a migration close and resurrect
			// the client on the ring its groups just left.
			for r := 0; r < d.shards; r++ {
				t := d.table.Table(r)
				for _, g := range t.Disconnect(env.Sender) {
					d.announceView(t, g)
				}
			}
			return
		}
		// Dropped once per ring: each ring's disconnect copy removes the
		// client from the groups that ring owns.
		table := d.table.Table(ring)
		for _, g := range table.Disconnect(env.Sender) {
			d.announceView(table, g)
		}
	case group.OpMessage:
		// Encode-once fan-out: the delivered Message is identical for every
		// local member, so its frame body is encoded exactly once into a
		// refcounted shared buffer on the first local recipient; every
		// outbox queues a reference and the per-session writers prepend
		// only the tiny Seqd header (and MAC, when keyed) at write time.
		var sh *session.Shared
		var traceSeq uint64
		for _, rcpt := range d.recipientsFor(ring, env.Groups) {
			c := d.localClient(rcpt)
			if c == nil {
				continue
			}
			if sh == nil {
				var err error
				sh, err = session.NewShared(session.Message{
					Sender:  env.Sender,
					Service: svc,
					Seq:     seq,
					Groups:  env.Groups,
					Payload: env.Payload,
				})
				if err != nil {
					return // oversized or malformed; nothing deliverable
				}
				d.dm.fanoutEnc.Inc()
				if seq != 0 {
					if mt := d.msgTracer(ring); mt.Sampled(seq) {
						// Fan-out start: the first local recipient forced
						// the encode; everything after is queue + write.
						mt.Record(obs.MsgEvent{Seq: seq, Stage: obs.StageFanout, At: d.obsNow(ring)})
						traceSeq = seq
					}
				}
			}
			d.deliverShared(c, sh, traceSeq, ring)
			d.dm.framesRouted.Inc()
		}
		if sh != nil {
			sh.Unref() // creator's reference; outboxes hold their own
		}
	case group.OpPrivate:
		if c := d.localClient(env.Target); c != nil {
			d.deliver(c, session.Message{
				Sender:  env.Sender,
				Service: svc,
				Seq:     seq,
				Payload: env.Payload,
			})
			d.dm.framesRouted.Inc()
		} else if env.Target.Daemon == d.self {
			d.rejectPrivate(env)
		}
	case group.OpPrivateReject:
		// The target's host daemon reported the target gone; tell the
		// original sender (carried in Target) if it is ours.
		if c := d.localClient(env.Target); c != nil {
			d.pushError(c, session.Error{
				Code: session.CodeNoRecipient, Msg: "private target disconnected",
			})
		}
	}
}

// rejectPrivate handles a Private whose target — one of ours — is gone:
// count it, flight-record it, and send the sender a non-fatal rejection.
// Only the target's host daemon detects this, so for remote senders the
// rejection rides the ring as an ordered OpPrivateReject.
func (d *Daemon) rejectPrivate(env *group.Envelope) {
	d.dm.privateDrops.Inc()
	d.flight("private_drop", env.Target.Local, 0)
	if c := d.localClient(env.Sender); c != nil {
		d.pushError(c, session.Error{
			Code: session.CodeNoRecipient, Msg: "private target disconnected",
		})
		return
	}
	if env.Sender.Daemon == d.self {
		return // sender is also gone; nobody to tell
	}
	back := group.Envelope{Kind: group.OpPrivateReject, Sender: env.Target, Target: env.Sender}
	enc, err := back.Encode()
	if err != nil {
		return
	}
	ring := shard.RingOfClient(env.Sender.String(), d.shards)
	// Off this goroutine: rejectPrivate runs on a ring's own event
	// goroutine, where a synchronous Submit would deadlock.
	go func() { _ = d.submit(ring, enc, evs.Agreed) }()
}

// Pacing bounds for backpressure: past backpressureQueueMax queued
// protocol frames the client reader sleeps in backpressureTick steps,
// but never more than backpressureMaxWait per frame — a wedged ring must
// not hang client readers forever.
const (
	backpressureQueueMax = 512
	backpressureMaxWait  = 2 * time.Second
	backpressureTick     = time.Millisecond
)

// backpressure paces client ingestion while the protocol's send queue is
// deep: not reading from the client socket makes TCP push back on the
// sender, which is Spread's session flow control in spirit. Without it a
// flooding client would balloon the daemon's memory. Each wait tick is
// counted on daemon.backpressure_waits; daemon.backpressure_active holds
// how many client readers are pacing right now and
// daemon.backpressure_queue the deepest queue last seen.
func (d *Daemon) backpressure() {
	deepest := d.deepestQueue()
	d.dm.backQueue.Set(int64(deepest))
	if deepest < backpressureQueueMax {
		return
	}
	d.dm.backActive.Add(1)
	defer d.dm.backActive.Add(-1)
	deadline := time.Now().Add(backpressureMaxWait)
	for {
		d.dm.backWaits.Inc()
		time.Sleep(backpressureTick)
		deepest = d.deepestQueue()
		d.dm.backQueue.Set(int64(deepest))
		if deepest < backpressureQueueMax || !time.Now().Before(deadline) {
			return
		}
	}
}

func (d *Daemon) deepestQueue() int {
	deepest := 0
	for r := 0; r < d.shards; r++ {
		if q := d.ringNode(r).Status().QueueLen; q > deepest {
			deepest = q
		}
	}
	return deepest
}

// applyConfigChange drops clients of daemons that left ring's
// configuration — from that ring's table partition only: each ring's
// membership incidents are independent, and every daemon applies the same
// change against the same per-ring state, so views remain identical
// everywhere.
func (d *Daemon) applyConfigChange(ring int, cfg evs.Configuration) {
	table := d.table.Table(ring)
	present := make(map[evs.ProcID]bool, len(cfg.Members))
	for _, m := range cfg.Members {
		present[m] = true
	}
	// Collect daemons referenced by the ring's table.
	seen := make(map[evs.ProcID]bool)
	for _, g := range table.Groups() {
		for _, c := range table.Members(g) {
			seen[c.Daemon] = true
		}
	}
	for daemonID := range seen {
		if present[daemonID] {
			continue
		}
		for _, g := range table.DropDaemon(daemonID) {
			d.announceView(table, g)
		}
	}
}

// announceView pushes the group's current membership to local members.
func (d *Daemon) announceView(table *group.Table, g string) {
	members := table.Members(g)
	view := session.View{Group: g, Members: members}
	d.dm.viewsAnnounce.Inc()
	for _, m := range members {
		if c := d.localClient(m); c != nil {
			d.deliver(c, view)
		}
	}
}
