// Package daemon implements the client-daemon architecture of Spread and
// of the paper's daemon-based prototype: one daemon per host runs the ring
// protocol, local clients connect over a stream socket, and the daemon
// routes totally ordered group messages to the clients that joined the
// target groups. The architecture gives a clean separation between
// middleware and application, lets one daemon set serve several
// applications, and provides open-group semantics (senders need not be
// members).
//
// With Config.Shards > 1 the daemon runs N independent ring instances
// (the Multi-Ring scaling pattern) and routes every group to its owning
// ring by the stable shard.RingOf hash: per-group total order is
// unchanged, aggregate ordering throughput multiplies, and cross-group
// delivery order is guaranteed only for groups that hash to the same
// ring.
package daemon

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
	"accelring/internal/session"
	"accelring/internal/shard"
	"accelring/internal/transport"
)

// Config configures a daemon.
type Config struct {
	// Ring is the protocol configuration (Self, Transport, windows,
	// timeouts). Its OnEvent field is owned by the daemon. With Shards
	// > 1 it is the per-ring template: its Transport is ignored and
	// NewTransport opens each ring's own binding.
	Ring ringnode.Config
	// Shards is the ring-instance count (default 1). Each instance is a
	// full protocol stack — engine, membership, transport — and groups
	// are partitioned across them by shard.RingOf.
	Shards int
	// NewTransport opens ring r's transport binding; required when
	// Shards > 1 (each ring needs its own ports), ignored otherwise.
	NewTransport func(ring int) (transport.Transport, error)
	// Listener accepts client connections (TCP or Unix socket). The
	// daemon takes ownership and closes it on Stop.
	Listener net.Listener
	// ClientBuffer is the per-client outbound frame buffer; a client
	// that falls this far behind is disconnected (default 1024).
	ClientBuffer int
	// Obs, when non-nil, receives daemon.* session metrics. The ring
	// protocol's own metrics are wired through Ring.Observer.
	Obs *obs.Registry
	// Flight, when non-nil, receives black-box client lifecycle events
	// (connect, disconnect, slow-consumer disconnect). The ring
	// protocol's own flight events are wired through Ring.Observer.
	Flight *obs.FlightRecorder
}

// Daemon is one host's ordering daemon.
type Daemon struct {
	cfg    Config
	self   evs.ProcID
	node   *ringnode.Node // single-ring mode (nil when sharded)
	rings  *shard.Group   // sharded mode (nil when Shards <= 1)
	shards int
	ln     net.Listener

	// table holds one per-ring partition; each partition is only
	// touched on its own ring's protocol goroutine (onRingEvent).
	table *group.ShardedTable

	mu        sync.Mutex
	clients   map[uint32]*clientConn
	nextLocal uint32
	stopped   bool

	wg sync.WaitGroup
	dm daemonMetrics
}

// daemonMetrics caches the daemon's session-layer metric handles (all
// nil-safe; a nil Config.Obs costs one nil check per update).
type daemonMetrics struct {
	clients       *obs.Gauge
	sessions      *obs.Counter
	submits       *obs.Counter
	errorsSent    *obs.Counter
	slowDisconns  *obs.Counter
	framesRouted  *obs.Counter
	viewsAnnounce *obs.Counter
}

func newDaemonMetrics(reg *obs.Registry) daemonMetrics {
	return daemonMetrics{
		clients:       reg.Gauge("daemon.clients"),
		sessions:      reg.Counter("daemon.sessions_total"),
		submits:       reg.Counter("daemon.submits"),
		errorsSent:    reg.Counter("daemon.errors_sent"),
		slowDisconns:  reg.Counter("daemon.slow_disconnects"),
		framesRouted:  reg.Counter("daemon.frames_routed"),
		viewsAnnounce: reg.Counter("daemon.views_announced"),
	}
}

type clientConn struct {
	id     group.ClientID
	name   string
	conn   net.Conn
	sendCh chan session.Frame
	closed chan struct{}
	once   sync.Once
	// slowDrop counts disconnects for falling behind (nil-safe handle);
	// flight gets the matching black-box event (nil: recording off).
	slowDrop *obs.Counter
	flight   *obs.FlightRecorder
}

// Start launches the protocol node(s) and the client accept loop.
func Start(cfg Config) (*Daemon, error) {
	if cfg.Listener == nil {
		return nil, errors.New("daemon: nil listener")
	}
	if cfg.ClientBuffer <= 0 {
		cfg.ClientBuffer = 1024
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	d := &Daemon{
		cfg:     cfg,
		self:    cfg.Ring.Self,
		shards:  shards,
		ln:      cfg.Listener,
		table:   group.NewShardedTable(shards),
		clients: make(map[uint32]*clientConn),
		dm:      newDaemonMetrics(cfg.Obs),
	}
	if shards > 1 {
		g, err := shard.Start(shard.Config{
			Shards:       shards,
			Base:         cfg.Ring,
			NewTransport: cfg.NewTransport,
			OnEvent:      d.onRingEvent,
		})
		if err != nil {
			return nil, err
		}
		d.rings = g
	} else {
		ringCfg := cfg.Ring
		ringCfg.OnEvent = func(ev evs.Event) { d.onRingEvent(0, ev) }
		node, err := ringnode.Start(ringCfg)
		if err != nil {
			return nil, err
		}
		d.node = node
	}
	d.wg.Add(1)
	go d.acceptLoop()
	return d, nil
}

// Node exposes the underlying protocol node (ring 0's when sharded).
func (d *Daemon) Node() *ringnode.Node { return d.ringNode(0) }

// Shards returns the daemon's ring-instance count.
func (d *Daemon) Shards() int { return d.shards }

// RingNode exposes ring r's protocol node (status inspection).
func (d *Daemon) RingNode(r int) *ringnode.Node { return d.ringNode(r) }

func (d *Daemon) ringNode(r int) *ringnode.Node {
	if d.rings != nil {
		return d.rings.Node(r)
	}
	return d.node
}

// submit hands an encoded envelope to the owning ring.
func (d *Daemon) submit(ring int, enc []byte, svc evs.Service) error {
	if d.rings != nil {
		return d.rings.Submit(ring, enc, svc)
	}
	return d.node.Submit(enc, svc)
}

// Addr returns the client listener's address.
func (d *Daemon) Addr() net.Addr { return d.ln.Addr() }

// WaitOperational blocks until every one of the daemon's rings is
// operational.
func (d *Daemon) WaitOperational(timeout time.Duration) bool {
	if d.rings != nil {
		return d.rings.WaitOperational(timeout)
	}
	return d.node.WaitState(membership.StateOperational, timeout)
}

// Stop disconnects clients, stops the listener and the protocol node.
func (d *Daemon) Stop() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	clients := make([]*clientConn, 0, len(d.clients))
	for _, c := range d.clients {
		clients = append(clients, c)
	}
	d.mu.Unlock()

	d.ln.Close()
	for _, c := range clients {
		c.close()
	}
	d.wg.Wait()
	if d.rings != nil {
		d.rings.Stop()
	} else {
		d.node.Stop()
	}
}

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return // listener closed
		}
		d.wg.Add(1)
		go d.serveClient(conn)
	}
}

// serveClient handles one client session: handshake, then request loop.
func (d *Daemon) serveClient(conn net.Conn) {
	defer d.wg.Done()
	f, err := session.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return
	}
	hello, ok := f.(session.Connect)
	if !ok {
		_ = session.WriteFrame(conn, session.Error{Code: session.CodeBadRequest, Msg: "expected connect"})
		conn.Close()
		return
	}

	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		conn.Close()
		return
	}
	d.nextLocal++
	c := &clientConn{
		id:       group.ClientID{Daemon: d.self, Local: d.nextLocal},
		name:     hello.Name,
		conn:     conn,
		sendCh:   make(chan session.Frame, d.cfg.ClientBuffer),
		closed:   make(chan struct{}),
		slowDrop: d.dm.slowDisconns,
		flight:   d.cfg.Flight,
	}
	d.clients[c.id.Local] = c
	active := len(d.clients)
	d.mu.Unlock()
	d.dm.sessions.Inc()
	d.dm.clients.Add(1)
	if d.cfg.Flight != nil {
		d.cfg.Flight.Record(obs.FlightEvent{
			Kind: obs.FlightClient, Note: "connect", Seq: uint64(c.id.Local), Count: active,
		})
	}

	if err := session.WriteFrame(conn, session.Welcome{Client: c.id}); err != nil {
		d.dropClient(c)
		return
	}

	d.wg.Add(1)
	go d.clientWriter(c)
	d.clientReader(c)
}

// clientReader turns client requests into ordered envelopes.
func (d *Daemon) clientReader(c *clientConn) {
	defer d.dropClient(c)
	for {
		f, err := session.ReadFrame(c.conn)
		if err != nil {
			return
		}
		switch req := f.(type) {
		case session.Join:
			d.submitEnvelope(c, d.table.Ring(req.Group), group.Envelope{
				Kind: group.OpJoin, Sender: c.id, Groups: []string{req.Group},
			}, evs.Agreed)
		case session.Leave:
			d.submitEnvelope(c, d.table.Ring(req.Group), group.Envelope{
				Kind: group.OpLeave, Sender: c.id, Groups: []string{req.Group},
			}, evs.Agreed)
		case session.Send:
			svc := req.Service
			if !svc.Valid() {
				d.pushError(c, session.Error{Code: session.CodeInvalidService, Msg: "invalid service"})
				continue
			}
			d.backpressure()
			// A multi-group send spanning several rings becomes one
			// independent ordered message per owning ring: each group
			// still sees a single total order, but cross-group order is
			// only preserved within a ring.
			for ring, groups := range d.table.SplitByRing(req.Groups) {
				d.submitEnvelope(c, ring, group.Envelope{
					Kind: group.OpMessage, Sender: c.id, Groups: groups,
					Payload: req.Payload,
				}, svc)
			}
		case session.Private:
			svc := req.Service
			if !svc.Valid() {
				d.pushError(c, session.Error{Code: session.CodeInvalidService, Msg: "invalid service"})
				continue
			}
			d.backpressure()
			d.submitEnvelope(c, shard.RingOfClient(req.To.String(), d.shards), group.Envelope{
				Kind: group.OpPrivate, Sender: c.id, Target: req.To,
				Payload: req.Payload,
			}, svc)
		default:
			d.pushError(c, session.Error{Code: session.CodeBadRequest, Msg: fmt.Sprintf("unexpected frame %T", f)})
		}
	}
}

// pushError sends an Error frame and counts it.
func (d *Daemon) pushError(c *clientConn, e session.Error) {
	d.dm.errorsSent.Inc()
	c.push(e)
}

func (d *Daemon) submitEnvelope(c *clientConn, ring int, env group.Envelope, svc evs.Service) {
	enc, err := env.Encode()
	if err != nil {
		d.pushError(c, session.Error{Code: session.CodeBadRequest, Msg: err.Error()})
		return
	}
	if err := d.submit(ring, enc, svc); err != nil {
		code := session.CodeGeneric
		if errors.Is(err, membership.ErrNotOperational) {
			code = session.CodeNotReady
		}
		d.pushError(c, session.Error{Code: code, Msg: err.Error()})
		return
	}
	d.dm.submits.Inc()
}

// clientWriter drains the client's outbound buffer.
func (d *Daemon) clientWriter(c *clientConn) {
	defer d.wg.Done()
	for {
		select {
		case f := <-c.sendCh:
			if err := session.WriteFrame(c.conn, f); err != nil {
				c.close()
				return
			}
		case <-c.closed:
			return
		}
	}
}

// push enqueues a frame; a full buffer disconnects the slow client rather
// than stalling the ordering daemon.
func (c *clientConn) push(f session.Frame) {
	select {
	case c.sendCh <- f:
	case <-c.closed:
	default:
		c.slowDrop.Inc()
		if c.flight != nil {
			c.flight.Record(obs.FlightEvent{
				Kind: obs.FlightClient, Note: "slow_disconnect", Seq: uint64(c.id.Local),
			})
		}
		c.close()
	}
}

func (c *clientConn) close() {
	c.once.Do(func() {
		close(c.closed)
		c.conn.Close()
	})
}

// dropClient unregisters a client and announces its departure in order.
func (d *Daemon) dropClient(c *clientConn) {
	c.close()
	d.mu.Lock()
	_, known := d.clients[c.id.Local]
	delete(d.clients, c.id.Local)
	stopped := d.stopped
	d.mu.Unlock()
	if !known || stopped {
		return
	}
	d.dm.clients.Add(-1)
	if d.cfg.Flight != nil {
		d.cfg.Flight.Record(obs.FlightEvent{
			Kind: obs.FlightClient, Note: "disconnect", Seq: uint64(c.id.Local),
		})
	}
	env := group.Envelope{Kind: group.OpDisconnect, Sender: c.id}
	if enc, err := env.Encode(); err == nil {
		// The disconnect must reach EVERY ring: the client's groups may
		// be partitioned across all of them, and each ring drops its own
		// in its own total order. Best effort: if a ring is down its
		// table is rebuilt from configuration changes anyway.
		for r := 0; r < d.shards; r++ {
			_ = d.submit(r, enc, evs.Agreed)
		}
	}
}

// localClient looks up a connected client by global ID.
func (d *Daemon) localClient(id group.ClientID) *clientConn {
	if id.Daemon != d.self {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clients[id.Local]
}

// onRingEvent runs on ring's protocol goroutine: it applies ordered
// envelopes to that ring's partition of the group table and routes
// deliveries to local clients. Different rings invoke it concurrently,
// but each ring's partition is only ever touched by its own goroutine.
func (d *Daemon) onRingEvent(ring int, ev evs.Event) {
	switch e := ev.(type) {
	case evs.Message:
		env, err := group.DecodeEnvelope(e.Payload)
		if err != nil {
			return // not ours; a foreign application on the same ring
		}
		d.applyEnvelope(ring, env, e.Service)
	case evs.ConfigChange:
		if e.Transitional {
			return
		}
		d.applyConfigChange(ring, e.Config)
	}
}

func (d *Daemon) applyEnvelope(ring int, env *group.Envelope, svc evs.Service) {
	table := d.table.Table(ring)
	switch env.Kind {
	case group.OpJoin:
		if err := table.Join(env.Sender, env.Groups[0]); err == nil {
			d.announceView(table, env.Groups[0])
		} else if c := d.localClient(env.Sender); c != nil {
			d.pushError(c, session.Error{Code: session.CodeBadRequest, Msg: err.Error()})
		}
	case group.OpLeave:
		if err := table.Leave(env.Sender, env.Groups[0]); err == nil {
			d.announceView(table, env.Groups[0])
		} else if c := d.localClient(env.Sender); c != nil {
			// Ordered rejection: the client left a group it is not in.
			d.pushError(c, session.Error{Code: session.CodeNotMember, Msg: err.Error()})
		}
	case group.OpDisconnect:
		// Dropped once per ring: each ring's disconnect copy removes the
		// client from the groups that ring owns.
		for _, g := range table.Disconnect(env.Sender) {
			d.announceView(table, g)
		}
	case group.OpMessage:
		msg := session.Message{
			Sender:  env.Sender,
			Service: svc,
			Groups:  env.Groups,
			Payload: env.Payload,
		}
		for _, rcpt := range table.Recipients(env.Groups) {
			if c := d.localClient(rcpt); c != nil {
				c.push(msg)
				d.dm.framesRouted.Inc()
			}
		}
	case group.OpPrivate:
		if c := d.localClient(env.Target); c != nil {
			c.push(session.Message{
				Sender:  env.Sender,
				Service: svc,
				Payload: env.Payload,
			})
			d.dm.framesRouted.Inc()
		}
	}
}

// backpressure paces client ingestion while the protocol's send queue is
// deep: not reading from the client socket makes TCP push back on the
// sender, which is Spread's session flow control in spirit. Without it a
// flooding client would balloon the daemon's memory. Bounded wait so a
// wedged ring cannot hang client readers forever.
func (d *Daemon) backpressure() {
	const maxQueued = 512
	for i := 0; i < 2000; i++ {
		deepest := 0
		for r := 0; r < d.shards; r++ {
			if q := d.ringNode(r).Status().QueueLen; q > deepest {
				deepest = q
			}
		}
		if deepest < maxQueued {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// applyConfigChange drops clients of daemons that left ring's
// configuration — from that ring's table partition only: each ring's
// membership incidents are independent, and every daemon applies the same
// change against the same per-ring state, so views remain identical
// everywhere.
func (d *Daemon) applyConfigChange(ring int, cfg evs.Configuration) {
	table := d.table.Table(ring)
	present := make(map[evs.ProcID]bool, len(cfg.Members))
	for _, m := range cfg.Members {
		present[m] = true
	}
	// Collect daemons referenced by the ring's table.
	seen := make(map[evs.ProcID]bool)
	for _, g := range table.Groups() {
		for _, c := range table.Members(g) {
			seen[c.Daemon] = true
		}
	}
	for daemonID := range seen {
		if present[daemonID] {
			continue
		}
		for _, g := range table.DropDaemon(daemonID) {
			d.announceView(table, g)
		}
	}
}

// announceView pushes the group's current membership to local members.
func (d *Daemon) announceView(table *group.Table, g string) {
	members := table.Members(g)
	view := session.View{Group: g, Members: members}
	d.dm.viewsAnnounce.Inc()
	for _, m := range members {
		if c := d.localClient(m); c != nil {
			c.push(view)
		}
	}
}
