package daemon

// Regression tests for the hardening-review fixes: the keyed resume
// challenge (replay protection), drain in the presence of detached
// sessions, and backpressure gauge settlement on slow disconnects.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"accelring/internal/client"
	"accelring/internal/evs"
	"accelring/internal/session"
)

// recordingDialer snoops the bytes each client connection writes, so a
// test can replay a captured handshake like an on-path observer would.
type recordingDialer struct {
	mu    sync.Mutex
	conns []*recordedConn
}

type recordedConn struct {
	net.Conn
	mu  sync.Mutex
	buf bytes.Buffer
}

func (r *recordedConn) Write(p []byte) (int, error) {
	r.mu.Lock()
	r.buf.Write(p)
	r.mu.Unlock()
	return r.Conn.Write(p)
}

func (d *recordingDialer) dial(network, addr string) (net.Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	rc := &recordedConn{Conn: c}
	d.mu.Lock()
	d.conns = append(d.conns, rc)
	d.mu.Unlock()
	return rc, nil
}

// firstFrame extracts the first length-prefixed frame from a recorded
// byte stream, verbatim (header included).
func firstFrame(t *testing.T, raw []byte) []byte {
	t.Helper()
	if len(raw) < 4 {
		t.Fatalf("recorded stream too short: %d bytes", len(raw))
	}
	n := binary.BigEndian.Uint32(raw[:4])
	if len(raw) < int(4+n) {
		t.Fatalf("recorded stream truncated: header says %d, have %d", n, len(raw)-4)
	}
	return raw[:4+n]
}

// TestKeyedResumeChallenge: with frame authentication on, a genuine
// client rides out a severed connection — the resume handshake now
// includes the daemon's nonce challenge, which the keyed client answers
// transparently.
func TestKeyedResumeChallenge(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	daemons, regs := startDaemonsObs(t, 1, func(cfg *Config) { cfg.Key = key })
	d := daemons[0]

	killer := &connKiller{}
	c, err := client.DialWith(client.Config{
		Network: "tcp", Addr: d.Addr().String(), Name: "keyed",
		Key: key, Reconnect: true, Dialer: killer.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Join("g"); err != nil {
		t.Fatal(err)
	}
	nextView(t, c, "g", 5*time.Second)

	killer.kill()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				t.Fatalf("stream closed: %v", c.Err())
			}
			if rec, isRec := ev.(*client.Reconnected); isRec {
				if !rec.Resumed {
					t.Fatal("keyed reconnect fell back to a fresh session")
				}
				waitCounter(t, regs[0], "daemon.resumes", 1)
				// The session must still work end to end.
				if err := c.Multicast(evs.Agreed, []byte("alive"), "g"); err != nil {
					t.Fatal(err)
				}
				if m := nextMessage(t, c, 5*time.Second); string(m.Payload) != "alive" {
					t.Fatalf("post-resume delivery = %q", m.Payload)
				}
				return
			}
		case <-deadline:
			t.Fatal("no Reconnected event after the kill")
		}
	}
}

// TestReplayedResumeRejected: an observer who records a victim's valid
// Resume frame and replays it verbatim (correct MAC, no key) must fail
// the nonce challenge, be counted on daemon.auth_drops, and leave the
// victim's session untouched.
func TestReplayedResumeRejected(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	daemons, regs := startDaemonsObs(t, 1, func(cfg *Config) { cfg.Key = key })
	d := daemons[0]

	rec := &recordingDialer{}
	victim, err := client.DialWith(client.Config{
		Network: "tcp", Addr: d.Addr().String(), Name: "victim",
		Key: key, Reconnect: true, Dialer: rec.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { victim.Close() })
	if err := victim.Join("g"); err != nil {
		t.Fatal(err)
	}
	nextView(t, victim, "g", 5*time.Second)

	// Sever the connection so the victim performs a real resume we can
	// record.
	rec.mu.Lock()
	rec.conns[0].Conn.Close()
	rec.mu.Unlock()
	deadline := time.After(10 * time.Second)
	for resumed := false; !resumed; {
		select {
		case ev, ok := <-victim.Events():
			if !ok {
				t.Fatalf("stream closed: %v", victim.Err())
			}
			if r, isRec := ev.(*client.Reconnected); isRec && r.Resumed {
				resumed = true
			}
		case <-deadline:
			t.Fatal("victim never resumed")
		}
	}

	// The last recorded connection starts with the victim's Resume frame:
	// a valid MAC over bytes the attacker merely copied.
	rec.mu.Lock()
	last := rec.conns[len(rec.conns)-1]
	rec.mu.Unlock()
	last.mu.Lock()
	replay := firstFrame(t, append([]byte(nil), last.buf.Bytes()...))
	last.mu.Unlock()

	attacker, err := net.Dial("tcp", d.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	if _, err := attacker.Write(replay); err != nil {
		t.Fatal(err)
	}
	keyed := session.NewCodec(key) // reader only: the test can decode, the attacker could not
	attacker.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := keyed.ReadFrame(attacker)
	if err != nil {
		t.Fatalf("no challenge after replayed Resume: %v", err)
	}
	ch, isCh := f.(session.Challenge)
	if !isCh {
		t.Fatalf("got %#v, want a Challenge", f)
	}
	// Without the key the best the attacker can do is echo the nonce
	// unauthenticated; the daemon must refuse it.
	if err := session.WriteFrame(attacker, session.ChallengeAck{Nonce: ch.Nonce}); err != nil {
		t.Fatal(err)
	}
	f, err = keyed.ReadFrame(attacker)
	if err != nil {
		t.Fatalf("no rejection after failed challenge: %v", err)
	}
	e, isErr := f.(session.Error)
	if !isErr || !errors.Is(e.Err(), session.ErrSessionUnknown) {
		t.Fatalf("got %#v, want CodeSessionUnknown", f)
	}
	waitCounter(t, regs[0], "daemon.auth_drops", 1)
	waitCounter(t, regs[0], "daemon.resume_rejects", 1)

	// The victim's live session was not hijacked or detached.
	if err := victim.Multicast(evs.Agreed, []byte("safe"), "g"); err != nil {
		t.Fatal(err)
	}
	if m := nextMessage(t, victim, 5*time.Second); string(m.Payload) != "safe" {
		t.Fatalf("victim delivery = %q", m.Payload)
	}
}

// TestDrainSkipsDetachedSession: a detached session with a backlog must
// not stall Drain — it counts as flushed (its frames are retained for
// resume) and the attached clients still get their Detach notices
// promptly.
func TestDrainSkipsDetachedSession(t *testing.T) {
	daemons, _ := startDaemonsObs(t, 1, nil)
	d := daemons[0]
	healthy := dial(t, d, "healthy")
	sender := dial(t, d, "sender")
	if err := healthy.Join("g"); err != nil {
		t.Fatal(err)
	}
	nextView(t, healthy, "g", 5*time.Second)

	// A second session that joins the group and then loses its connection
	// with traffic still queued.
	raw, err := net.Dial("tcp", d.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := session.WriteFrame(raw, session.Connect{Name: "ghost"}); err != nil {
		t.Fatal(err)
	}
	if _, err := session.ReadFrame(raw); err != nil { // Welcome
		t.Fatal(err)
	}
	if err := session.WriteFrame(raw, session.Join{Group: "g"}); err != nil {
		t.Fatal(err)
	}
	var ghost *clientConn
	waitDeadline := time.Now().Add(5 * time.Second)
	for ghost == nil && time.Now().Before(waitDeadline) {
		d.mu.Lock()
		for _, cc := range d.clients {
			if cc.name == "ghost" {
				ghost = cc
			}
		}
		d.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
	}
	if ghost == nil {
		t.Fatal("ghost session not registered")
	}
	ghost.out.mu.Lock()
	ghostConn := ghost.out.conn
	ghost.out.mu.Unlock()
	ghost.out.detach(ghostConn)
	for i := 0; i < 8; i++ {
		if err := sender.Multicast(evs.Agreed, []byte{byte(i)}, "g"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		nextMessage(t, healthy, 5*time.Second)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v waiting on a detached session", elapsed)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-healthy.Events():
			if !ok {
				t.Fatal("stream closed before the Detach notice")
			}
			if det, isDet := ev.(*client.Detached); isDet {
				if det.Reason != "drain" || !det.CanResume {
					t.Fatalf("detach = %+v, want resumable drain", det)
				}
				return
			}
		case <-deadline:
			t.Fatal("attached client lost its Detach notice to the detached session")
		}
	}
}

// TestSlowDisconnectSettlesGauges: when a spilling, throttled session is
// finally disconnected, the clients_spilling and clients_throttled
// gauges must return to zero instead of leaking forever.
func TestSlowDisconnectSettlesGauges(t *testing.T) {
	daemons, regs := startDaemonsObs(t, 1, func(cfg *Config) {
		cfg.ClientBuffer = 4
		cfg.SpillLimit = 24
		cfg.ThrottleAt = 8
	})
	d := daemons[0]

	conn, err := net.Dial("tcp", d.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := session.WriteFrame(conn, session.Connect{Name: "slow"}); err != nil {
		t.Fatal(err)
	}
	if _, err := session.ReadFrame(conn); err != nil { // Welcome
		t.Fatal(err)
	}
	if err := session.WriteFrame(conn, session.Join{Group: "t"}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := session.ReadFrame(conn); err != nil { // the join's View
		t.Fatal(err)
	}
	var slow *clientConn
	d.mu.Lock()
	for _, cc := range d.clients {
		if cc.name == "slow" {
			slow = cc
		}
	}
	d.mu.Unlock()
	if slow == nil {
		t.Fatal("slow session not registered")
	}
	slow.out.mu.Lock()
	slowConn := slow.out.conn
	slow.out.mu.Unlock()
	slow.out.detach(slowConn)

	sender := dial(t, d, "flood")
	for i := 0; i < 64; i++ {
		if err := sender.Multicast(evs.Agreed, make([]byte, 256), "t"); err != nil {
			t.Fatal(err)
		}
	}
	waitCounter(t, regs[0], "daemon.slow_disconnects", 1)

	deadline := time.Now().Add(5 * time.Second)
	for {
		spilling := regs[0].Gauge("daemon.clients_spilling").Value()
		throttled := regs[0].Gauge("daemon.clients_throttled").Value()
		if spilling == 0 && throttled == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges leaked after slow disconnect: spilling=%d throttled=%d", spilling, throttled)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
