package daemon

import (
	"errors"
	"testing"
	"time"

	"accelring/internal/client"
	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/session"
)

// TestPrivateMessageDelivery: a private message reaches exactly its
// target, across daemons, in total order with surrounding group traffic.
func TestPrivateMessageDelivery(t *testing.T) {
	daemons := startDaemons(t, 3)
	alice := dial(t, daemons[0], "alice")
	bob := dial(t, daemons[1], "bob")
	eve := dial(t, daemons[2], "eve")

	// Everyone joins a group so that group traffic interleaves with the
	// private message.
	for _, c := range []interface{ Join(string) error }{alice, bob, eve} {
		if err := c.Join("lobby"); err != nil {
			t.Fatal(err)
		}
	}
	for {
		v := nextView(t, alice, "lobby", 5*time.Second)
		if len(v.Members) == 3 {
			break
		}
	}

	if err := alice.Multicast(evs.Agreed, []byte("before"), "lobby"); err != nil {
		t.Fatal(err)
	}
	if err := alice.SendPrivate(bob.ID(), evs.Agreed, []byte("psst")); err != nil {
		t.Fatal(err)
	}
	if err := alice.Multicast(evs.Agreed, []byte("after"), "lobby"); err != nil {
		t.Fatal(err)
	}

	// Bob sees before, psst (no groups), after — in that order.
	m := nextMessage(t, bob, 5*time.Second)
	if string(m.Payload) != "before" {
		t.Fatalf("bob first message: %q", m.Payload)
	}
	m = nextMessage(t, bob, 5*time.Second)
	if string(m.Payload) != "psst" || len(m.Groups) != 0 || m.Sender != alice.ID() {
		t.Fatalf("bob private message: %+v", m)
	}
	m = nextMessage(t, bob, 5*time.Second)
	if string(m.Payload) != "after" {
		t.Fatalf("bob third message: %q", m.Payload)
	}

	// Eve never sees the private message.
	m = nextMessage(t, eve, 5*time.Second)
	if string(m.Payload) != "before" {
		t.Fatalf("eve first message: %q", m.Payload)
	}
	m = nextMessage(t, eve, 5*time.Second)
	if string(m.Payload) != "after" {
		t.Fatalf("eve leaked the private message: %q", m.Payload)
	}
}

func TestPrivateValidation(t *testing.T) {
	daemons := startDaemons(t, 1)
	c := dial(t, daemons[0], "v")
	if err := c.SendPrivate(group.ClientID{}, evs.Agreed, nil); err == nil {
		t.Fatal("zero target accepted")
	}
	if err := c.SendPrivate(c.ID(), evs.Service(0), nil); err == nil {
		t.Fatal("invalid service accepted")
	}
	// Self-private works: ordered loopback.
	if err := c.SendPrivate(c.ID(), evs.Safe, []byte("note to self")); err != nil {
		t.Fatal(err)
	}
	m := nextMessage(t, c, 5*time.Second)
	if string(m.Payload) != "note to self" {
		t.Fatalf("got %+v", m)
	}
}

// TestPrivateToDeadClientIsDropped: a private message to a disconnected
// client is dropped at the target's daemon, and the sender — on a
// different daemon — hears about it as a non-fatal Rejection carrying
// session.ErrNoRecipient, instead of silence.
func TestPrivateToDeadClientIsDropped(t *testing.T) {
	daemons := startDaemons(t, 2)
	a := dial(t, daemons[0], "a")
	b := dial(t, daemons[1], "b")
	deadID := b.ID()
	b.Close()
	time.Sleep(100 * time.Millisecond)
	if err := a.SendPrivate(deadID, evs.Agreed, []byte("into the void")); err != nil {
		t.Fatal(err)
	}
	// Follow with a marker to prove the ring kept moving.
	if err := a.Join("g"); err != nil {
		t.Fatal(err)
	}
	if err := a.Multicast(evs.Agreed, []byte("marker"), "g"); err != nil {
		t.Fatal(err)
	}
	sawMarker, sawReject := false, false
	deadline := time.After(5 * time.Second)
	for !sawMarker || !sawReject {
		select {
		case ev, ok := <-a.Events():
			if !ok {
				t.Fatalf("event stream closed: %v", a.Err())
			}
			switch v := ev.(type) {
			case *client.Message:
				if string(v.Payload) == "into the void" {
					t.Fatal("private message to dead client was delivered")
				}
				sawMarker = sawMarker || string(v.Payload) == "marker"
			case *client.Rejection:
				if !errors.Is(v.Err, session.ErrNoRecipient) {
					t.Fatalf("rejection error = %v, want ErrNoRecipient", v.Err)
				}
				sawReject = true
			}
		case <-deadline:
			t.Fatalf("timed out (marker=%v reject=%v)", sawMarker, sawReject)
		}
	}
}
