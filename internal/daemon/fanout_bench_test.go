package daemon

// The fan-out figure: one publisher's message delivered to F subscriber
// sessions over real TCP loopback connections.
//
//   - legacy      — the pre-change wire path: every session encodes its
//     own copy of the frame and writes it as a header write plus a body
//     write (2 syscalls/frame), one frame per writer wakeup.
//   - encodeonce  — the shared-buffer path: the frame body is encoded
//     once, every outbox queues a reference, and each writer drains up
//     to `batch` frames per wakeup into a single vectored write.
//
// Reported metrics: frames/s across all subscribers, and write
// syscalls/frame (writev flushes or write calls over frames delivered).
// Run via `make bench-fanout`, committed as results/BENCH_fanout.json.

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/session"
)

// legacyWriteFrame reproduces the pre-change session.WriteFrame: a fresh
// encode per frame and a separate header and body write.
func legacyWriteFrame(w io.Writer, f session.Frame) error {
	body, err := session.Encode(f)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// fanoutBench is one subscriber fleet: TCP loopback conns with discard
// readers, one outbox and one writer goroutine per subscriber.
type fanoutBench struct {
	outs     []*outbox
	wg       sync.WaitGroup
	closers  []io.Closer
	syscalls atomic.Uint64 // write syscalls issued (writes or writev flushes)
}

func newFanoutBench(b *testing.B, subs int, encodeOnce bool, batch int) *fanoutBench {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	fb := &fanoutBench{closers: []io.Closer{ln}}
	accepted := make(chan net.Conn)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c) //nolint:errcheck // discard reader
			accepted <- c
		}
	}()
	for i := 0; i < subs; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		fb.closers = append(fb.closers, conn, <-accepted)
		o := newOutbox(session.Codec{}, 256, 1<<30, 1<<30, 64)
		if !o.attach(conn, 0, nil) {
			b.Fatal("attach refused")
		}
		fb.outs = append(fb.outs, o)
		fb.wg.Add(1)
		if encodeOnce {
			go fb.batchedWriter(o, batch)
		} else {
			go fb.legacyWriter(o)
		}
	}
	return fb
}

func (fb *fanoutBench) legacyWriter(o *outbox) {
	defer fb.wg.Done()
	for {
		conn, _, sf, ok := o.next()
		if !ok {
			return
		}
		var f session.Frame = sf.f
		if sf.seq != 0 {
			f = session.Seqd{Seq: sf.seq, Frame: sf.f}
		}
		if err := legacyWriteFrame(conn, f); err != nil {
			return
		}
		fb.syscalls.Add(2)
		o.wrote(conn, sf)
	}
}

func (fb *fanoutBench) batchedWriter(o *outbox, batch int) {
	defer fb.wg.Done()
	w := newFrameWriter(batch)
	for {
		conn, codec, frames, ok := o.nextBatch(w.frames[:0], batch)
		if !ok {
			return
		}
		w.frames = frames
		if err := w.flush(conn, codec, frames); err != nil {
			return
		}
		fb.syscalls.Add(1)
		o.wroteBatch(conn, frames)
	}
}

// drainWait blocks until every outbox has written its whole backlog.
func (fb *fanoutBench) drainWait() {
	for _, o := range fb.outs {
		for !o.flushed() {
			runtime.Gosched()
		}
	}
}

func (fb *fanoutBench) close() {
	for _, o := range fb.outs {
		o.shutdown()
	}
	fb.wg.Wait()
	for _, c := range fb.closers {
		c.Close()
	}
}

func benchFanout(b *testing.B, subs int, encodeOnce bool, batch int) {
	fb := newFanoutBench(b, subs, encodeOnce, batch)
	defer fb.close()
	payload := make([]byte, 256)
	var msg session.Frame = session.Message{Service: evs.Agreed, Groups: []string{"fan"}, Payload: payload}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if encodeOnce {
			sh, err := session.NewShared(msg)
			if err != nil {
				b.Fatal(err)
			}
			for _, o := range fb.outs {
				o.pushShared(sh)
			}
			sh.Unref()
		} else {
			for _, o := range fb.outs {
				o.push(msg)
			}
		}
		if i%1024 == 1023 {
			fb.drainWait() // bound the in-flight backlog
		}
	}
	fb.drainWait()
	b.StopTimer()
	frames := float64(b.N) * float64(subs)
	b.ReportMetric(frames/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(float64(fb.syscalls.Load())/frames, "syscalls/frame")
}

func BenchmarkFanout(b *testing.B) {
	for _, subs := range []int{16, 64} {
		b.Run(fmt.Sprintf("legacy/subs=%d", subs), func(b *testing.B) {
			benchFanout(b, subs, false, 1)
		})
		b.Run(fmt.Sprintf("encodeonce/subs=%d/batch=8", subs), func(b *testing.B) {
			benchFanout(b, subs, true, 8)
		})
	}
}

// TestFanoutSpeedup is a coarse in-tree gate on the encode-once path: at
// 64 subscribers it must beat the legacy per-session-encode path. The
// committed BENCH_fanout.json tracks the full margin; this test only
// guards against the fast path regressing below the old one, with a
// deliberately modest threshold to stay robust on loaded CI machines.
func TestFanoutSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; skipped in -short")
	}
	const subs = 64
	run := func(encodeOnce bool) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			benchFanout(b, subs, encodeOnce, 8)
		})
		return res.Extra["frames/s"]
	}
	legacy := run(false)
	fast := run(true)
	if fast < legacy*1.2 {
		t.Fatalf("encode-once fan-out %.0f frames/s vs legacy %.0f: want >= 1.2x", fast, legacy)
	}
}
