package daemon

// Tests for the daemon-hardening features: tiered backpressure with
// throttle notifications, reconnect-with-resume, graceful drain, and
// authenticated session frames.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"accelring/internal/client"
	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
	"accelring/internal/session"
	"accelring/internal/transport"
)

// startDaemonsObs is startDaemons with per-daemon metric registries and
// flight recorders, plus a config hook for the hardening knobs.
func startDaemonsObs(t *testing.T, n int, mut func(*Config)) ([]*Daemon, []*obs.Registry) {
	t.Helper()
	hub := transport.NewHub()
	daemons := make([]*Daemon, n)
	regs := make([]*obs.Registry, n)
	for i := 0; i < n; i++ {
		id := evs.ProcID(i + 1)
		ep, err := hub.Endpoint(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ringCfg := ringnode.Accelerated(id, ep, 10, 100, 7)
		ringCfg.Timeouts = fastTimeouts()
		regs[i] = obs.NewRegistry()
		cfg := Config{
			Ring:     ringCfg,
			Listener: ln,
			Obs:      regs[i],
			Flight:   obs.NewFlightRecorder(256),
		}
		if mut != nil {
			mut(&cfg)
		}
		d, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Stop)
		daemons[i] = d
	}
	for i, d := range daemons {
		if !d.WaitOperational(10 * time.Second) {
			t.Fatalf("daemon %d did not become operational", i)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(daemons[0].Node().Status().Ring.Members) == n {
			ok := true
			for _, d := range daemons[1:] {
				if !d.Node().Status().Ring.Equal(daemons[0].Node().Status().Ring) {
					ok = false
				}
			}
			if ok {
				return daemons, regs
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemons did not converge on one ring")
	return nil, nil
}

// connKiller is a client.Config.Dialer that remembers the live
// connection so the test can sever it mid-stream.
type connKiller struct {
	mu  sync.Mutex
	cur net.Conn
}

func (k *connKiller) dial(network, addr string) (net.Conn, error) {
	c, err := net.Dial(network, addr)
	if err == nil {
		k.mu.Lock()
		k.cur = c
		k.mu.Unlock()
	}
	return c, err
}

func (k *connKiller) kill() {
	k.mu.Lock()
	if k.cur != nil {
		k.cur.Close()
	}
	k.mu.Unlock()
}

// waitCounter polls a metric until it reaches want or the deadline hits.
func waitCounter(t *testing.T, reg *obs.Registry, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter(name).Value() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s = %d, want >= %d", name, reg.Counter(name).Value(), want)
}

// TestResumeAcrossReconnect severs a client's TCP connection mid-stream
// and checks that the transparent reconnect resumes the session with no
// delivery lost, duplicated, or reordered.
func TestResumeAcrossReconnect(t *testing.T) {
	daemons, regs := startDaemonsObs(t, 1, nil)
	sender := dial(t, daemons[0], "sender")

	killer := &connKiller{}
	recv, err := client.DialWith(client.Config{
		Network:   "tcp",
		Addr:      daemons[0].Addr().String(),
		Name:      "recv",
		Reconnect: true,
		AckEvery:  8,
		Dialer:    killer.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	if err := recv.Join("g"); err != nil {
		t.Fatal(err)
	}
	nextView(t, recv, "g", 5*time.Second)

	const total = 50
	for i := 0; i < total/2; i++ {
		if err := sender.Multicast(evs.Agreed, []byte(fmt.Sprintf("m%02d", i)), "g"); err != nil {
			t.Fatal(err)
		}
	}

	var got []string
	resumed := 0
	deadline := time.After(15 * time.Second)
	killed := false
	for len(got) < total {
		select {
		case ev, ok := <-recv.Events():
			if !ok {
				t.Fatalf("event stream closed: %v", recv.Err())
			}
			switch v := ev.(type) {
			case *client.Message:
				got = append(got, string(v.Payload))
			case *client.Reconnected:
				if !v.Resumed {
					t.Fatal("reconnect fell back to a fresh session")
				}
				resumed++
			}
		case <-deadline:
			t.Fatalf("timed out with %d/%d messages (resumed %d times)", len(got), total, resumed)
		}
		if !killed && len(got) >= 5 {
			killed = true
			killer.kill()
			for i := total / 2; i < total; i++ {
				if err := sender.Multicast(evs.Agreed, []byte(fmt.Sprintf("m%02d", i)), "g"); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for i, p := range got {
		if want := fmt.Sprintf("m%02d", i); p != want {
			t.Fatalf("delivery %d = %q, want %q (loss, duplication, or reorder)", i, p, want)
		}
	}
	if resumed == 0 {
		t.Fatal("connection was killed but no Reconnected event arrived")
	}
	waitCounter(t, regs[0], "daemon.resumes", 1)
}

// TestDrainDetachesClients drains a daemon and checks that clients got
// everything, received a resumable Detach notice, and that new connects
// are refused.
func TestDrainDetachesClients(t *testing.T) {
	daemons, regs := startDaemonsObs(t, 1, nil)
	d := daemons[0]
	sender := dial(t, d, "sender")
	recv := dial(t, d, "recv")
	if err := recv.Join("g"); err != nil {
		t.Fatal(err)
	}
	nextView(t, recv, "g", 5*time.Second)
	for i := 0; i < 5; i++ {
		if err := sender.Multicast(evs.Agreed, []byte{byte(i)}, "g"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		nextMessage(t, recv, 5*time.Second)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := regs[0].Counter("daemon.drains").Value(); got != 1 {
		t.Fatalf("daemon.drains = %d, want 1", got)
	}

	sawDetach := false
	deadline := time.After(5 * time.Second)
	for !sawDetach {
		select {
		case ev, ok := <-recv.Events():
			if !ok {
				t.Fatal("stream closed before the Detach notice")
			}
			if det, isDet := ev.(*client.Detached); isDet {
				if det.Reason != "drain" || !det.CanResume {
					t.Fatalf("detach = %+v, want resumable drain", det)
				}
				sawDetach = true
			}
		case <-deadline:
			t.Fatal("no Detached event after drain")
		}
	}

	if _, err := client.Dial("tcp", d.Addr().String(), "late"); err == nil {
		t.Fatal("connect succeeded on a draining daemon")
	}
}

// TestResumeRejectsBadCredentials: unknown sessions and wrong resume
// tokens are refused with CodeSessionUnknown and counted.
func TestResumeRejectsBadCredentials(t *testing.T) {
	daemons, regs := startDaemonsObs(t, 1, nil)
	d := daemons[0]
	c := dial(t, d, "victim")

	expectReject := func(r session.Resume) {
		t.Helper()
		conn, err := net.Dial("tcp", d.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := session.WriteFrame(conn, r); err != nil {
			t.Fatal(err)
		}
		f, err := session.ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		e, isErr := f.(session.Error)
		if !isErr || !errors.Is(e.Err(), session.ErrSessionUnknown) {
			t.Fatalf("got %#v, want CodeSessionUnknown error", f)
		}
	}

	expectReject(session.Resume{Client: group.ClientID{Daemon: 1, Local: 9999}, Token: 42})
	expectReject(session.Resume{Client: c.ID(), Token: 42}) // wrong token
	waitCounter(t, regs[0], "daemon.resume_rejects", 2)
}

// TestThrottleTierNotifications: a slow reader pushes its session
// through the spill and throttle tiers; the daemon says so (metrics and
// Throttle frames) and recovers once the reader catches up, without
// disconnecting.
func TestThrottleTierNotifications(t *testing.T) {
	daemons, regs := startDaemonsObs(t, 1, func(cfg *Config) {
		cfg.ClientBuffer = 4
		cfg.SpillLimit = 512
		cfg.ThrottleAt = 8
	})
	d := daemons[0]

	// A raw session connection we deliberately stop reading.
	conn, err := net.Dial("tcp", d.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := session.WriteFrame(conn, session.Connect{Name: "slow"}); err != nil {
		t.Fatal(err)
	}
	if _, err := session.ReadFrame(conn); err != nil { // Welcome
		t.Fatal(err)
	}
	if err := session.WriteFrame(conn, session.Join{Group: "t"}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := session.ReadFrame(conn); err != nil { // the join's View
		t.Fatal(err)
	}

	// Park the session's writer by detaching its daemon-side connection,
	// so the flood piles up in the outbox tiers instead of the kernel's
	// elastic socket buffers.
	var slow *clientConn
	d.mu.Lock()
	for _, cc := range d.clients {
		if cc.name == "slow" {
			slow = cc
		}
	}
	d.mu.Unlock()
	if slow == nil {
		t.Fatal("slow session not registered")
	}
	slow.out.mu.Lock()
	daemonConn := slow.out.conn
	slow.out.mu.Unlock()
	slow.out.detach(daemonConn)

	sender := dial(t, d, "flood")
	payload := make([]byte, 512)
	for i := 0; i < 64; i++ {
		if err := sender.Multicast(evs.Agreed, payload, "t"); err != nil {
			t.Fatal(err)
		}
	}
	waitCounter(t, regs[0], "daemon.tier_spill", 1)
	waitCounter(t, regs[0], "daemon.tier_throttle", 1)

	// Reattach and catch up: drain the stream until the throttle is
	// withdrawn.
	if !slow.out.attach(daemonConn, 0, nil) {
		t.Fatal("reattach refused")
	}
	sawOn, sawOff := false, false
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for !sawOn || !sawOff {
		f, err := session.ReadFrame(conn)
		if err != nil {
			t.Fatalf("stream ended before recovery (on=%v off=%v): %v", sawOn, sawOff, err)
		}
		if th, isTh := f.(session.Throttle); isTh {
			if th.On {
				sawOn = true
			} else {
				sawOff = true
			}
		}
	}
	if got := regs[0].Counter("daemon.slow_disconnects").Value(); got != 0 {
		t.Fatalf("throttled client was disconnected (%d slow disconnects)", got)
	}
}

// TestPrivateDropCounted: a private message to a locally dead client
// bumps daemon.private_drops and bounces a Rejection to the sender.
func TestPrivateDropCounted(t *testing.T) {
	daemons, regs := startDaemonsObs(t, 1, nil)
	a := dial(t, daemons[0], "a")
	b := dial(t, daemons[0], "b")
	deadID := b.ID()
	b.Close()
	time.Sleep(100 * time.Millisecond)
	if err := a.SendPrivate(deadID, evs.Agreed, []byte("gone")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-a.Events():
			if !ok {
				t.Fatalf("stream closed: %v", a.Err())
			}
			if rej, isRej := ev.(*client.Rejection); isRej {
				if !errors.Is(rej.Err, session.ErrNoRecipient) {
					t.Fatalf("rejection = %v, want ErrNoRecipient", rej.Err)
				}
				waitCounter(t, regs[0], "daemon.private_drops", 1)
				return
			}
		case <-deadline:
			t.Fatal("no rejection for a dead private target")
		}
	}
}

// TestBackpressureBounded: on an idle ring the submit-path backpressure
// check is a cheap gauge update that never spins.
func TestBackpressureBounded(t *testing.T) {
	daemons, regs := startDaemonsObs(t, 1, nil)
	start := time.Now()
	daemons[0].backpressure()
	if elapsed := time.Since(start); elapsed > backpressureMaxWait {
		t.Fatalf("idle backpressure took %v, bound is %v", elapsed, backpressureMaxWait)
	}
	if got := regs[0].Counter("daemon.backpressure_waits").Value(); got != 0 {
		t.Fatalf("idle ring accrued %d backpressure waits", got)
	}
	if got := regs[0].Gauge("daemon.backpressure_queue").Value(); got != 0 {
		t.Fatalf("idle ring reports queue depth %d", got)
	}
}

// TestAuthenticatedSessions: with a daemon key, keyed clients work,
// unkeyed and wrong-keyed frames are dropped and counted.
func TestAuthenticatedSessions(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	daemons, regs := startDaemonsObs(t, 1, func(cfg *Config) { cfg.Key = key })
	d := daemons[0]

	c, err := client.DialWith(client.Config{
		Network: "tcp", Addr: d.Addr().String(), Name: "keyed", Key: key,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Join("g"); err != nil {
		t.Fatal(err)
	}
	nextView(t, c, "g", 5*time.Second)
	if err := c.Multicast(evs.Agreed, []byte("signed"), "g"); err != nil {
		t.Fatal(err)
	}
	if m := nextMessage(t, c, 5*time.Second); string(m.Payload) != "signed" {
		t.Fatalf("got %q", m.Payload)
	}

	// An unsigned Connect is a forged frame: dropped, counted, session
	// refused.
	raw, err := net.Dial("tcp", d.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if err := session.WriteFrame(raw, session.Connect{Name: "forger"}); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := session.ReadFrame(raw); err == nil {
		t.Fatal("daemon answered a forged handshake")
	}
	waitCounter(t, regs[0], "daemon.auth_drops", 1)

	// A wrong key fails the handshake on both sides.
	if _, err := client.DialWith(client.Config{
		Network: "tcp", Addr: d.Addr().String(), Name: "wrong", Key: []byte("not the right key"),
	}); err == nil {
		t.Fatal("wrong-key handshake succeeded")
	}
}
