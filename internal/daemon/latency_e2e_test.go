package daemon

import (
	"fmt"
	"testing"
	"time"

	"accelring/internal/client"
	"accelring/internal/evs"
	"accelring/internal/obs"
	"accelring/internal/shard"
)

// TestLatencyAttributionAcrossShards is the PR's acceptance test: drive a
// sampled message through a 2-shard daemon pair and assert (a) the span
// timeline carries the daemon-side lifecycle stages added for attribution
// (merge hold, fanout, writer flush) plus the client-side receive, and
// (b) the LatencyAgg invariant holds — per-stage sums equal the e2e sum
// exactly, so no latency is ever double-counted or dropped.
func TestLatencyAttributionAcrossShards(t *testing.T) {
	var regs []*obs.Registry
	daemons := startShardedDaemonsCfg(t, 2, 2, func(cfg *Config) {
		reg := obs.NewRegistry()
		regs = append(regs, reg)
		cfg.Obs = reg
		cfg.Ring.Observer = &obs.RingObserver{Reg: reg, Msg: obs.NewMsgTracer(1, 4096)}
	})

	// One group per ring so both rings carry traffic through the merger.
	gA, gB := "g-0", "g-1"
	if shard.RingOf(gA, 2) == shard.RingOf(gB, 2) {
		t.Fatal("test groups collapsed onto one ring")
	}

	ct := obs.NewMsgTracer(1, 4096)
	alice, err := client.DialWith(client.Config{
		Addr: daemons[0].Addr().String(), Name: "alice", Tracer: ct,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { alice.Close() })
	bob := dial(t, daemons[1], "bob")

	for _, g := range []string{gA, gB} {
		if err := alice.Join(g); err != nil {
			t.Fatal(err)
		}
		if err := bob.Join(g); err != nil {
			t.Fatal(err)
		}
		nextView(t, alice, g, 5*time.Second)
		nextView(t, bob, g, 5*time.Second)
	}
	// Views may arrive in either order per group; drain any stragglers
	// below via nextMessage's skip-non-message behavior.

	const perGroup = 5
	for i := 0; i < perGroup; i++ {
		for _, g := range []string{gA, gB} {
			if err := bob.Multicast(evs.Agreed, []byte(fmt.Sprintf("%s-%d", g, i)), g); err != nil {
				t.Fatal(err)
			}
		}
	}
	var seqs []uint64
	for i := 0; i < 2*perGroup; i++ {
		m := nextMessage(t, alice, 10*time.Second)
		if m.Seq != 0 {
			seqs = append(seqs, m.Seq)
		}
	}
	if len(seqs) == 0 {
		t.Fatal("no delivery carried a ring sequence")
	}

	// (a) Span timeline: some delivered seq must show the full daemon-side
	// stage set on daemon 0's per-ring tracers, and the client tracer must
	// have closed the span. Writer-flush stamps land after the write
	// syscall returns, so poll briefly.
	wantStages := []obs.MsgStage{obs.StageDeliver, obs.StageMergeOut, obs.StageFanout, obs.StageWriterFlush}
	hasStage := func(evs []obs.MsgEvent, stage obs.MsgStage) bool {
		for _, e := range evs {
			if e.Stage == stage {
				return true
			}
		}
		return false
	}
	fullSpan := func() bool {
		for _, seq := range seqs {
			for r := 0; r < 2; r++ {
				evs := daemons[0].RingNode(r).Observer().MsgTracer().ForSeq(seq)
				ok := len(evs) > 0
				for _, st := range wantStages {
					ok = ok && hasStage(evs, st)
				}
				if ok && hasStage(ct.ForSeq(seq), obs.StageClientRecv) {
					return true
				}
			}
		}
		return false
	}
	deadline := time.Now().Add(5 * time.Second)
	for !fullSpan() {
		if time.Now().After(deadline) {
			t.Fatal("no sampled span accumulated merge/fanout/writer_flush daemon stages plus client_recv")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// (b) Attribution invariant, per daemon: fold each daemon's per-ring
	// tracers into a LatencyAgg and check stage sums telescope to e2e.
	// Daemon 1 delivers and merges on its own schedule (alice's deliveries
	// only prove daemon 0 finished), so poll for the spans; the invariant
	// itself must hold on every fold, so it stays a hard failure.
	for i, d := range daemons {
		agg := obs.NewLatencyAgg(regs[i])
		for r := 0; r < 2; r++ {
			agg.AddTracer(fmt.Sprintf("shard%d", r), d.RingNode(r).Observer().MsgTracer())
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			folded := false
			for _, sc := range agg.Snapshot() {
				if sc.StageSumNs != sc.E2ESumNs {
					t.Fatalf("daemon %d %s: stage sum %v != e2e sum %v", i, sc.Scope, sc.StageSumNs, sc.E2ESumNs)
				}
				hasStages := true
				for _, stage := range []string{"merge_hold", "fanout"} {
					if _, ok := sc.Stages[stage]; !ok {
						hasStages = false
					}
				}
				if sc.SpansFolded > 0 && sc.E2E.Count > 0 && hasStages {
					folded = true
				}
			}
			if folded {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon %d folded no spans with e2e samples and merge/fanout stages", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
