package daemon

import (
	"context"
	"time"

	"accelring/internal/session"
)

// drainPoll is how often Drain re-checks the sessions' flush state.
const drainPoll = 2 * time.Millisecond

// drainDetachGrace bounds the post-Detach flush. It is independent of
// the caller's ctx on purpose: if the main flush spent the whole
// deadline, healthy attached clients should still get their Detach
// notices (a handful of control frames) instead of losing them to an
// already-expired context.
const drainDetachGrace = time.Second

// Drain winds the client-serving side down gracefully:
//
//  1. Stop accepting connects (new Connect and Resume handshakes are
//     refused with CodeDraining; the listener closes).
//  2. Flush every session's outbound queue — spill tiers included — so
//     no ordered delivery already routed to a client is lost.
//  3. Hand every client a Detach notice with CanResume set: the client
//     keeps its resume token and can present it to a restarted daemon.
//  4. Emit the final ordered leave (OpDisconnect) per session, so the
//     surviving daemons agree on the departures.
//
// ctx bounds the flush: on expiry the remaining sessions are detached
// and dropped anyway and ctx's error is returned. Drain does not stop
// the ring protocol — call Stop afterwards.
func (d *Daemon) Drain(ctx context.Context) error {
	d.mu.Lock()
	if d.stopped || d.draining {
		d.mu.Unlock()
		return nil
	}
	d.draining = true
	clients := make([]*clientConn, 0, len(d.clients))
	for _, c := range d.clients {
		clients = append(clients, c)
	}
	d.mu.Unlock()
	d.dm.drains.Inc()
	d.flight("drain", 0, len(clients))
	d.ln.Close()

	err := d.awaitFlush(ctx, clients)
	for _, c := range clients {
		c.out.pushControl(session.Detach{Reason: "drain", CanResume: true})
	}
	// Second, brief flush so the Detach frames actually hit the wire; it
	// gets its own short grace (see drainDetachGrace) and the first
	// flush's verdict wins.
	graceCtx, cancel := context.WithTimeout(context.Background(), drainDetachGrace)
	_ = d.awaitFlush(graceCtx, clients)
	cancel()
	for _, c := range clients {
		d.dropClient(c)
	}
	return err
}

// awaitFlush waits until every session's outbox is fully written,
// polling until ctx expires. Closed and detached sessions count as
// flushed — a detached outbox cannot move and its frames are retained
// for resume, so waiting on one would starve the attached clients.
func (d *Daemon) awaitFlush(ctx context.Context, clients []*clientConn) error {
	for {
		flushed := true
		for _, c := range clients {
			if !c.out.flushed() {
				flushed = false
				break
			}
		}
		if flushed {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(drainPoll):
		}
	}
}
