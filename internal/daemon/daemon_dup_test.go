package daemon

import (
	"fmt"
	"testing"
	"time"

	"accelring/internal/client"
	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/transport"
)

// TestDuplicateFramesThroughDaemons runs a daemon cluster on a hub whose
// injector duplicates every frame — tokens and data alike, with the
// copies spread in time so they also reorder. Clients must still see each
// message exactly once, in one total order, and the engines must account
// for the discarded duplicates.
func TestDuplicateFramesThroughDaemons(t *testing.T) {
	hub := transport.NewHub()
	var plan faults.Plan
	plan.Add(faults.Rule{
		Name:  "dup-everything",
		Model: faults.Duplicate{P: 1, Copies: 1, Spread: 2 * time.Millisecond},
	})
	inj := faults.New(7, plan)
	hub.SetInjector(inj)

	daemons := startDaemonsOnHub(t, 3, hub)
	var clients []*client.Client
	for i, d := range daemons {
		c := dial(t, d, fmt.Sprintf("c%d", i))
		if err := c.Join("dup-room"); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for _, c := range clients {
		for {
			v := nextView(t, c, "dup-room", 5*time.Second)
			if len(v.Members) == len(clients) {
				break
			}
		}
	}

	const perClient = 8
	for i, c := range clients {
		for k := 0; k < perClient; k++ {
			if err := c.Multicast(evs.Agreed, []byte(fmt.Sprintf("%d-%d", i, k)), "dup-room"); err != nil {
				t.Fatal(err)
			}
		}
	}

	total := perClient * len(clients)
	var ref []string
	for i, c := range clients {
		got := make([]string, 0, total)
		seen := make(map[string]bool)
		for len(got) < total {
			m := nextMessage(t, c, 10*time.Second)
			p := string(m.Payload)
			if seen[p] {
				t.Fatalf("client %d received %q twice", i, p)
			}
			seen[p] = true
			got = append(got, p)
		}
		if i == 0 {
			ref = got
			continue
		}
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("client %d order differs at %d: %q vs %q", i, k, got[k], ref[k])
			}
		}
	}

	var duplicated uint64
	for _, c := range inj.Counters() {
		duplicated += c.Duplicated
	}
	if duplicated == 0 {
		t.Fatal("injector duplicated nothing; test is vacuous")
	}
	var tokDropped, dataDropped uint64
	for _, d := range daemons {
		st := d.Node().Status()
		tokDropped += st.Engine.TokensDropped
		dataDropped += st.Engine.DataDropped
	}
	if tokDropped == 0 {
		t.Error("no duplicate tokens were discarded by the engines")
	}
	if dataDropped == 0 {
		t.Error("no duplicate data frames were discarded by the engines")
	}
}
