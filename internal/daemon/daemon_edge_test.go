package daemon

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"accelring/internal/client"
	"accelring/internal/evs"
	"accelring/internal/ringnode"
	"accelring/internal/session"
	"accelring/internal/transport"
)

// TestSlowClientIsDisconnected: a client that stops reading must be cut
// off rather than stalling the ordering daemon.
func TestSlowClientIsDisconnected(t *testing.T) {
	hub := transport.NewHub()
	ep, err := hub.Endpoint(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ringCfg := ringnode.Accelerated(1, ep, 10, 100, 7)
	ringCfg.Timeouts = fastTimeouts()
	d, err := Start(Config{Ring: ringCfg, Listener: ln, ClientBuffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	if !d.WaitOperational(10 * time.Second) {
		t.Fatal("daemon not operational")
	}

	// The slow client: joins but never reads events.
	conn, err := net.Dial("tcp", d.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := session.WriteFrame(conn, session.Connect{Name: "slow"}); err != nil {
		t.Fatal(err)
	}
	if _, err := session.ReadFrame(conn); err != nil { // welcome
		t.Fatal(err)
	}
	if err := session.WriteFrame(conn, session.Join{Group: "g"}); err != nil {
		t.Fatal(err)
	}

	// A healthy sender floods the group; the slow client's 4-frame buffer
	// overflows and the daemon cuts it loose.
	sender := dial(t, d, "sender")
	for i := 0; i < 200; i++ {
		if err := sender.Multicast(evs.Agreed, make([]byte, 512), "g"); err != nil {
			t.Fatal(err)
		}
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := conn.Read(buf); err != nil {
			return // disconnected: success
		}
	}
}

// TestClientReconnectGetsFreshID: reconnecting yields a new client
// identity and a clean group state.
func TestClientReconnectGetsFreshID(t *testing.T) {
	daemons := startDaemons(t, 1)
	c1 := dial(t, daemons[0], "reborn")
	if err := c1.Join("g"); err != nil {
		t.Fatal(err)
	}
	nextView(t, c1, "g", 5*time.Second)
	id1 := c1.ID()
	c1.Close()

	// Wait for the disconnect to be ordered (the group must empty).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		probe := dial(t, daemons[0], "probe")
		if err := probe.Join("g"); err != nil {
			t.Fatal(err)
		}
		v := nextView(t, probe, "g", 5*time.Second)
		probe.Close()
		if len(v.Members) == 1 && v.Members[0] != id1 {
			break // only the probe remains: the old identity is gone
		}
		time.Sleep(20 * time.Millisecond)
	}

	c2 := dial(t, daemons[0], "reborn")
	if c2.ID() == id1 {
		t.Fatalf("reconnect reused client ID %v", id1)
	}
	if err := c2.Join("g"); err != nil {
		t.Fatal(err)
	}
	// The fresh client's view must not contain the dead identity.
	deadline = time.Now().Add(5 * time.Second)
	for {
		v := nextView(t, c2, "g", 5*time.Second)
		stale := false
		for _, m := range v.Members {
			if m == id1 {
				stale = true
			}
		}
		if !stale {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("view still contains dead identity: %+v", v)
		}
	}
}

// TestUnixSocketListener: the daemon serves clients over Unix sockets too
// (the paper's recommended local IPC).
func TestUnixSocketListener(t *testing.T) {
	hub := transport.NewHub()
	ep, err := hub.Endpoint(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "ring.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	ringCfg := ringnode.Accelerated(1, ep, 10, 100, 7)
	ringCfg.Timeouts = fastTimeouts()
	d, err := Start(Config{Ring: ringCfg, Listener: ln})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	if !d.WaitOperational(10 * time.Second) {
		t.Fatal("daemon not operational")
	}
	c, err := client.Dial("unix", sock, "ipc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Join("local"); err != nil {
		t.Fatal(err)
	}
	if err := c.Multicast(evs.Safe, []byte("over unix"), "local"); err != nil {
		t.Fatal(err)
	}
	m := nextMessage(t, c, 5*time.Second)
	if string(m.Payload) != "over unix" {
		t.Fatalf("got %+v", m)
	}
	if _, err := os.Stat(sock); err != nil {
		t.Fatalf("socket file missing: %v", err)
	}
}

// TestBadFirstFrameRejected: a connection that does not start with
// Connect is refused.
func TestBadFirstFrameRejected(t *testing.T) {
	daemons := startDaemons(t, 1)
	conn, err := net.Dial("tcp", daemons[0].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := session.WriteFrame(conn, session.Join{Group: "g"}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := session.ReadFrame(conn)
	if err == nil {
		if _, isErr := f.(session.Error); !isErr {
			t.Fatalf("expected error frame, got %#v", f)
		}
	}
	// The connection must be closed shortly after.
	buf := make([]byte, 16)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}
