package daemon

// Tests for the encode-once fan-out path: shared-buffer refcount hygiene
// under session churn, batch drain semantics, Welcome-first handshake
// ordering through the outbox, resume replay straight from shared
// buffers, and the zero-allocation enqueue gate.

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"accelring/internal/client"
	"accelring/internal/evs"
	"accelring/internal/session"
)

func newShared(t *testing.T, i int) *session.Shared {
	t.Helper()
	sh, err := session.NewShared(session.Message{
		Service: evs.Agreed, Groups: []string{"g"}, Payload: []byte{byte(i), byte(i >> 8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// TestOutboxBatchDrain: nextBatch peeks control first, then deliveries,
// bounded by max; wroteBatch completes the whole batch and refills the
// ring from the spill queue.
func TestOutboxBatchDrain(t *testing.T) {
	o := newOutbox(session.Codec{}, 4, 100, 100, 16)
	conn := testConn(t)
	if !o.attach(conn, 0, nil) {
		t.Fatal("attach refused")
	}
	o.pushControl(session.Throttle{On: true})
	for i := 0; i < 6; i++ { // ring 4 + spill 2
		o.push(testMsg(i))
	}

	var scratch []seqFrame
	gotConn, _, frames, ok := o.nextBatch(scratch[:0], 4)
	if !ok || gotConn != conn {
		t.Fatalf("nextBatch = (%v, %v)", gotConn, ok)
	}
	if len(frames) != 4 {
		t.Fatalf("batch size %d, want 4 (max)", len(frames))
	}
	if frames[0].seq != 0 {
		t.Fatalf("first batched frame seq %d, want control (0)", frames[0].seq)
	}
	if _, isTh := frames[0].f.(session.Throttle); !isTh {
		t.Fatalf("first batched frame %#v, want the control Throttle", frames[0].f)
	}
	for i, sf := range frames[1:] {
		if sf.seq != uint64(i+1) {
			t.Fatalf("batched delivery %d has seq %d, want %d", i, sf.seq, i+1)
		}
	}
	o.wroteBatch(conn, frames)

	// The spill refilled the ring; the rest drains in order.
	_, _, frames, ok = o.nextBatch(frames[:0], 8)
	if !ok || len(frames) != 3 {
		t.Fatalf("second batch = %d frames, want 3", len(frames))
	}
	for i, sf := range frames {
		if sf.seq != uint64(i+4) {
			t.Fatalf("second batch frame %d has seq %d, want %d", i, sf.seq, i+4)
		}
	}
	o.wroteBatch(conn, frames)
	if !o.flushed() {
		t.Fatal("outbox not flushed after draining both batches")
	}
}

// TestOutboxBatchSupersededConn: a batch completion racing a resume's
// attach must be a complete no-op, exactly like single-frame wrote.
func TestOutboxBatchSupersededConn(t *testing.T) {
	o := newOutbox(session.Codec{}, 4, 100, 100, 16)
	connA, connB := testConn(t), testConn(t)
	if !o.attach(connA, 0, nil) {
		t.Fatal("attach refused")
	}
	for i := 0; i < 3; i++ {
		o.push(testMsg(i))
	}
	_, _, frames, ok := o.nextBatch(nil, 8)
	if !ok || len(frames) != 3 {
		t.Fatalf("batch = %d frames, want 3", len(frames))
	}
	if !o.attach(connB, 0, nil) {
		t.Fatal("attach B refused")
	}
	o.wroteBatch(connA, frames) // superseded: nothing completes
	o.mu.Lock()
	count := o.count
	o.mu.Unlock()
	if count != 3 {
		t.Fatalf("superseded wroteBatch completed frames: count=%d, want 3", count)
	}
}

// TestOutboxWelcomeFirst: attach splices the handshake reply in as the
// FIRST control frame, ahead of any queued notices, so a resumed client
// can never read a Throttle or Detach before its Welcome.
func TestOutboxWelcomeFirst(t *testing.T) {
	o := newOutbox(session.Codec{}, 4, 100, 100, 16)
	o.pushControl(session.Detach{Reason: "draining"})
	o.push(testMsg(1))
	welcome := session.Welcome{Token: 42, Resumed: true}
	if !o.attach(testConn(t), 0, welcome) {
		t.Fatal("attach refused")
	}
	_, _, frames, ok := o.nextBatch(nil, 8)
	if !ok || len(frames) != 3 {
		t.Fatalf("batch = %d frames, want welcome+detach+delivery", len(frames))
	}
	if w, isW := frames[0].f.(session.Welcome); !isW || w.Token != 42 {
		t.Fatalf("first frame %#v, want the spliced Welcome", frames[0].f)
	}
	if _, isD := frames[1].f.(session.Detach); !isD {
		t.Fatalf("second frame %#v, want the earlier-queued Detach", frames[1].f)
	}
	if frames[2].seq != 1 {
		t.Fatalf("third frame seq %d, want the delivery", frames[2].seq)
	}
}

// TestOutboxSharedReplay: shared frames written before a disconnect are
// replayed from the SAME shared buffer after a resume — the bytes
// survive in the retained window, refcounted, without any re-encode.
func TestOutboxSharedReplay(t *testing.T) {
	before := session.SharedLive()
	o := newOutbox(session.Codec{}, 8, 100, 100, 16)
	connA := testConn(t)
	if !o.attach(connA, 0, nil) {
		t.Fatal("attach refused")
	}
	shares := make([]*session.Shared, 4)
	for i := range shares {
		shares[i] = newShared(t, i)
		o.pushShared(shares[i])
	}
	_, _, frames, ok := o.nextBatch(nil, 8)
	if !ok || len(frames) != 4 {
		t.Fatalf("batch = %d frames, want 4", len(frames))
	}
	o.wroteBatch(connA, frames) // all 4 now retained, unacked

	// Client processed 2, then the connection died. Resume replays 3..4
	// from the retained shared buffers.
	if !o.attach(testConn(t), 2, session.Welcome{Resumed: true}) {
		t.Fatal("resume attach refused")
	}
	connB := o.conn
	_, _, frames, ok = o.nextBatch(nil, 8)
	if !ok || len(frames) != 3 {
		t.Fatalf("replay batch = %d frames, want welcome + 2 replays", len(frames))
	}
	if frames[1].seq != 3 || frames[2].seq != 4 {
		t.Fatalf("replay seqs %d,%d, want 3,4", frames[1].seq, frames[2].seq)
	}
	for i, sf := range frames[1:] {
		if sf.sh != shares[i+2] {
			t.Fatalf("replay %d does not alias the original shared buffer", i)
		}
		if !bytes.Equal(sf.sh.Bytes(), shares[i+2].Bytes()) {
			t.Fatalf("replay %d bytes differ", i)
		}
	}
	o.wroteBatch(connB, frames)
	o.ack(4)

	// Creator references were held by the test; drop them and check the
	// outbox released every reference it took.
	for _, sh := range shares {
		sh.Unref()
	}
	if live := session.SharedLive(); live != before {
		t.Fatalf("SharedLive = %d after ack, want %d (outbox leaked references)", live, before)
	}
}

// TestOutboxSharedLeakChurn: N sessions x M shared deliveries with random
// disconnect/resume/ack/shutdown interleavings — every shared reference
// must be released once the outboxes are gone: the live-buffer gauge
// settles back to its starting value.
func TestOutboxSharedLeakChurn(t *testing.T) {
	before := session.SharedLive()
	rng := rand.New(rand.NewSource(7))
	const sessions, messages = 16, 40
	outs := make([]*outbox, sessions)
	conns := make([]net.Conn, sessions)
	for i := range outs {
		outs[i] = newOutbox(session.Codec{}, 4, 1000, 1000, 8)
		conns[i] = testConn(t)
		if !outs[i].attach(conns[i], 0, nil) {
			t.Fatal("attach refused")
		}
	}
	lastAcked := make([]uint64, sessions)
	for m := 0; m < messages; m++ {
		sh := newShared(t, m)
		for i, o := range outs {
			o.pushShared(sh)
			switch rng.Intn(4) {
			case 0: // write everything pending
				if _, _, frames, ok := o.nextBatch(nil, 64); ok {
					o.wroteBatch(conns[i], frames)
					for _, sf := range frames {
						if sf.seq > lastAcked[i] {
							lastAcked[i] = sf.seq
						}
					}
				}
			case 1: // ack what was written
				o.ack(lastAcked[i])
			case 2: // disconnect, then resume from the last ack
				o.detach(conns[i])
				conns[i] = testConn(t)
				if !o.attach(conns[i], lastAcked[i], session.Welcome{Resumed: true}) {
					t.Fatalf("resume refused for session %d at seq %d", i, lastAcked[i])
				}
			}
		}
		sh.Unref() // creator
	}
	for _, o := range outs {
		o.shutdown()
	}
	if live := session.SharedLive(); live != before {
		t.Fatalf("SharedLive = %d after churn + shutdown, want %d", live, before)
	}
}

// TestOutboxSharedConcurrent exercises the refcount protocol under the
// race detector: a fan-out goroutine pushing shared deliveries into
// several outboxes, per-session writer goroutines draining batches, an
// acker trimming retained windows, and a churner detaching/reattaching
// connections (forcing replays from the shared buffers) all at once.
// Every reference must still balance at shutdown.
func TestOutboxSharedConcurrent(t *testing.T) {
	before := session.SharedLive()
	const sessions, messages = 6, 300
	outs := make([]*outbox, sessions)
	var connMu sync.Mutex
	conns := make([]net.Conn, sessions)
	for i := range outs {
		outs[i] = newOutbox(session.Codec{}, 8, 1<<20, 1<<20, 16)
		conns[i] = testConn(t)
		if !outs[i].attach(conns[i], 0, nil) {
			t.Fatal("attach refused")
		}
	}
	lastWritten := make([]atomic.Uint64, sessions)
	var wg sync.WaitGroup

	// Per-session writers.
	stop := make(chan struct{})
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var scratch [8]seqFrame
			for {
				conn, _, frames, ok := outs[i].nextBatch(scratch[:0], 8)
				if !ok {
					return
				}
				outs[i].wroteBatch(conn, frames)
				for _, sf := range frames {
					if sf.seq > lastWritten[i].Load() {
						lastWritten[i].Store(sf.seq)
					}
				}
			}
		}(i)
	}
	// Acker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range outs {
				outs[i].ack(lastWritten[i].Load())
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Churner: detach and resume sessions while traffic flows. Resumes
	// from seq 0 relative to the retained floor are not guaranteed, so
	// resume from the last written seq (an implicit full ack).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for {
			select {
			case <-stop:
				return
			default:
			}
			i := rng.Intn(sessions)
			connMu.Lock()
			outs[i].detach(conns[i])
			conns[i] = testConn(t)
			outs[i].attach(conns[i], lastWritten[i].Load(), session.Welcome{Resumed: true})
			connMu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	// Fan-out: encode once, push to every outbox.
	for m := 0; m < messages; m++ {
		sh := newShared(t, m)
		for _, o := range outs {
			o.pushShared(sh)
		}
		sh.Unref()
		if m%16 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	// Let the writers drain, then tear everything down.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, o := range outs {
			if !o.flushed() {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	for _, o := range outs {
		o.shutdown()
	}
	wg.Wait()
	if live := session.SharedLive(); live != before {
		t.Fatalf("SharedLive = %d after concurrent churn, want %d", live, before)
	}
}

// TestAllocFreeSharedFanout pins the enqueue cost of the encode-once
// path: pushing an already-encoded shared delivery into a ring-resident
// outbox and completing it must not allocate, per session, in steady
// state.
func TestAllocFreeSharedFanout(t *testing.T) {
	const sessions = 8
	outs := make([]*outbox, sessions)
	conns := make([]net.Conn, sessions)
	for i := range outs {
		outs[i] = newOutbox(session.Codec{}, 16, 1<<20, 1<<20, 4)
		conns[i] = testConn(t)
		if !outs[i].attach(conns[i], 0, nil) {
			t.Fatal("attach refused")
		}
	}
	sh, err := session.NewShared(session.Message{
		Service: evs.Agreed, Groups: []string{"g"}, Payload: make([]byte, 512),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Unref()
	scratch := make([]seqFrame, 0, 16)
	step := func() {
		for i, o := range outs {
			o.pushShared(sh)
			_, _, frames, ok := o.nextBatch(scratch[:0], 16)
			if !ok {
				t.Fatal("outbox closed")
			}
			o.wroteBatch(conns[i], frames)
			o.ack(frames[len(frames)-1].seq)
		}
	}
	for i := 0; i < 8; i++ {
		step() // warm up retained/replay backings
	}
	if n := testing.AllocsPerRun(200, func() { step() }); n != 0 {
		t.Fatalf("shared fan-out allocates %.2f times per %d-session round, want 0", n, sessions)
	}
}

// TestAllocFreeSharedCycle: a full NewShared/Unref cycle recycles both
// the buffer and the Shared box through their pools.
func TestAllocFreeSharedCycle(t *testing.T) {
	// Pre-boxed: converting the Message to the Frame interface at the
	// call site is the caller's (per-message, not per-session) cost.
	var msg session.Frame = session.Message{Service: evs.Agreed, Groups: []string{"g"}, Payload: make([]byte, 256)}
	// Warm the pools.
	for i := 0; i < 8; i++ {
		sh, err := session.NewShared(msg)
		if err != nil {
			t.Fatal(err)
		}
		sh.Unref()
	}
	if n := testing.AllocsPerRun(200, func() {
		sh, err := session.NewShared(msg)
		if err != nil {
			t.Fatal(err)
		}
		sh.Unref()
	}); n != 0 {
		t.Fatalf("NewShared/Unref cycle allocates %.2f times per op, want 0", n)
	}
}

// TestFanoutDelivery: end-to-end — one publisher, several subscribers on
// one daemon, every subscriber sees every message in order, and the
// daemon's fan-out counters show one encode shared by all members.
func TestFanoutDelivery(t *testing.T) {
	daemons, regs := startDaemonsObs(t, 1, nil)
	d := daemons[0]
	const subs = 5
	clients := make([]*client.Client, subs)
	for i := range clients {
		clients[i] = dial(t, d, fmt.Sprintf("sub%d", i))
		if err := clients[i].Join("fan"); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range clients {
		view := nextView(t, c, "fan", 5*time.Second)
		for len(view.Members) < subs {
			view = nextView(t, c, "fan", 5*time.Second)
		}
	}
	pub := dial(t, d, "pub")
	const msgs = 20
	for i := 0; i < msgs; i++ {
		if err := pub.Multicast(evs.Agreed, []byte{byte(i)}, "fan"); err != nil {
			t.Fatal(err)
		}
	}
	for ci, c := range clients {
		for i := 0; i < msgs; i++ {
			m := nextMessage(t, c, 5*time.Second)
			if len(m.Payload) != 1 || m.Payload[0] != byte(i) {
				t.Fatalf("client %d message %d: payload %v", ci, i, m.Payload)
			}
		}
	}
	enc := regs[0].Counter("daemon.fanout_encodes").Value()
	shared := regs[0].Counter("daemon.fanout_shared").Value()
	if enc < msgs {
		t.Fatalf("fanout_encodes = %d, want >= %d", enc, msgs)
	}
	if shared < msgs*subs {
		t.Fatalf("fanout_shared = %d, want >= %d (one per member per message)", shared, msgs*subs)
	}
	if shared < enc*subs {
		t.Fatalf("shared/encodes = %d/%d: the one encode is not being shared by all %d members", shared, enc, subs)
	}
}

// TestFanoutChurnNoLeak: end-to-end churn — subscribers disconnect and
// reconnect (resume) while the publisher keeps multicasting. After the
// daemons stop, every shared buffer must have been released.
func TestFanoutChurnNoLeak(t *testing.T) {
	before := session.SharedLive()
	func() {
		daemons, _ := startDaemonsObs(t, 1, nil)
		d := daemons[0]
		const subs = 4
		clients := make([]*client.Client, subs)
		for i := range clients {
			c, err := client.DialWith(client.Config{
				Addr: d.Addr().String(), Name: fmt.Sprintf("churn%d", i), Reconnect: true,
				AckEvery: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			clients[i] = c
			if err := c.Join("churn"); err != nil {
				t.Fatal(err)
			}
		}
		pub := dial(t, d, "pub")
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 200; i++ {
				_ = pub.Multicast(evs.Agreed, bytes.Repeat([]byte{byte(i)}, 64), "churn")
				time.Sleep(time.Millisecond)
			}
		}()
		// Drain subscriber events while the publisher runs.
		for _, c := range clients {
			go func(c *client.Client) {
				for range c.Events() {
				}
			}(c)
		}
		<-done
		time.Sleep(100 * time.Millisecond)
		for _, c := range clients {
			c.Close()
		}
		pub.Close()
		d.Stop()
	}()
	// Stop released every outbox; all shared buffers must be back.
	deadline := time.Now().Add(5 * time.Second)
	for session.SharedLive() != before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if live := session.SharedLive(); live != before {
		t.Fatalf("SharedLive = %d after full teardown, want %d", live, before)
	}
}
