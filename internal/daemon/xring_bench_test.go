package daemon

// The cross-ring figure: end-to-end client delivery through real daemons
// on in-process hub transports, comparing
//
//   - XRingSplitDelivery  — the PR 4 shape: one ring, no merger; per-ring
//     delivery cost before cross-ring merge existed.
//   - XRingMergedDelivery — two rings with the cross-ring merger in the
//     delivery path, the subscriber spanning a group on each ring; the
//     per-message delta over the split path is the merge overhead.
//   - XRingMigrationBlackout — one Daemon.Migrate round trip per op with
//     traffic in flight: ns/op IS the blackout window (Begin submitted →
//     globally ordered close emitted locally).
//
// The merged benchmarks tighten the lambda pacing (SkipInterval 100µs,
// SkipAhead 256) the way a throughput-tuned deployment would, so the
// figure measures merge bookkeeping rather than the idle-ring pacing
// interval. Run via `make bench-xring`, committed as
// results/BENCH_xring.json.

import (
	"fmt"
	"testing"
	"time"

	"accelring/internal/client"
	"accelring/internal/evs"
	"accelring/internal/shard"
)

// xringTune is the pacing configuration the merged benchmarks run with.
func xringTune(cfg *Config) {
	cfg.SkipInterval = 100 * time.Microsecond
	cfg.SkipAhead = 256
}

// drainCount consumes the client's event stream, signalling done when
// `want` messages have arrived.
func drainCount(c *client.Client, want int, done chan<- struct{}) {
	count := 0
	for ev := range c.Events() {
		if _, ok := ev.(*client.Message); ok {
			if count++; count == want {
				close(done)
				return
			}
		}
	}
}

// benchDelivery pipelines b.N multicasts from a publisher on daemon 0 to
// a subscriber on daemon 1 and measures until the subscriber has every
// message. With shards > 1 the subscriber's groups span the rings, so
// every delivery flows through the cross-ring merger.
func benchDelivery(b *testing.B, shards int) {
	daemons := startShardedDaemonsCfg(b, 2, shards, xringTune)
	pub := dial(b, daemons[0], "pub")
	sub := dial(b, daemons[1], "sub")
	groups := []string{"g-0"}
	if shards > 1 {
		groups = []string{"g-0", "g-1"} // rings 1 and 0 by the pinned hash
		if shard.RingOf(groups[0], shards) == shard.RingOf(groups[1], shards) {
			b.Fatal("bench groups collapsed onto one ring")
		}
	}
	for _, g := range groups {
		if err := sub.Join(g); err != nil {
			b.Fatal(err)
		}
		nextView(b, sub, g, 5*time.Second)
	}
	payload := make([]byte, 128)
	done := make(chan struct{})
	go drainCount(sub, b.N, done)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Multicast(evs.Agreed, payload, groups[i%len(groups)]); err != nil {
			b.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		b.Fatal("subscriber did not receive the full stream")
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

func BenchmarkXRingSplitDelivery(b *testing.B)  { benchDelivery(b, 1) }
func BenchmarkXRingMergedDelivery(b *testing.B) { benchDelivery(b, 2) }

// BenchmarkXRingMigrationBlackout ping-pongs one live group between the
// two rings of a 2-shard daemon pair, a burst of in-flight traffic riding
// each handoff. Each op is one full Migrate: drain the source ring, emit
// the ordered close, re-home the membership state, replay the buffered
// target-ring traffic. ns/op is the migration blackout window.
func BenchmarkXRingMigrationBlackout(b *testing.B) {
	daemons := startShardedDaemonsCfg(b, 2, 2, xringTune)
	g := "g-0"
	alice := dial(b, daemons[0], "alice")
	bob := dial(b, daemons[1], "bob")
	if err := alice.Join(g); err != nil {
		b.Fatal(err)
	}
	nextView(b, alice, g, 5*time.Second)
	if err := bob.Join(g); err != nil {
		b.Fatal(err)
	}
	nextView(b, bob, g, 5*time.Second)
	nextView(b, alice, g, 5*time.Second)
	// Members drain their own deliveries in the background; the bench
	// thread only migrates.
	go func() {
		for range alice.Events() {
		}
	}()
	go func() {
		for range bob.Events() {
		}
	}()
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 8; k++ { // traffic in flight across the handoff
			if err := bob.Multicast(evs.Agreed, payload, g); err != nil {
				b.Fatal(err)
			}
		}
		target := 1 - daemons[0].RingOfGroup(g)
		if err := daemons[0].Migrate(g, target); err != nil {
			b.Fatal(fmt.Errorf("migration %d: %w", i, err))
		}
	}
}
