package daemon

import (
	"fmt"
	"net"
	"testing"
	"time"

	"accelring/internal/client"
	"accelring/internal/evs"
	"accelring/internal/ringnode"
	"accelring/internal/shard"
	"accelring/internal/transport"
)

// startShardedDaemons launches n daemons, each running `shards` ring
// instances over per-ring hubs, and waits for every ring to converge.
func startShardedDaemons(t testing.TB, n, shards int) []*Daemon {
	t.Helper()
	return startShardedDaemonsCfg(t, n, shards, nil)
}

// startShardedDaemonsCfg is startShardedDaemons with a config hook, so
// benchmarks can tune the merge pacing knobs.
func startShardedDaemonsCfg(t testing.TB, n, shards int, tune func(*Config)) []*Daemon {
	t.Helper()
	hubs := make([]*transport.Hub, shards)
	for r := range hubs {
		hubs[r] = transport.NewHub()
	}
	daemons := make([]*Daemon, n)
	for i := 0; i < n; i++ {
		id := evs.ProcID(i + 1)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ringCfg := ringnode.Accelerated(id, nil, 10, 100, 7)
		ringCfg.Timeouts = fastTimeouts()
		cfg := Config{
			Ring:   ringCfg,
			Shards: shards,
			NewTransport: func(ring int) (transport.Transport, error) {
				return hubs[ring].Endpoint(id, 0, 0)
			},
			Listener: ln,
		}
		if shards == 1 {
			// Single-ring mode takes its transport from the ring config
			// directly (NewTransport is ignored), so benchmarks can use
			// this helper as the unsharded baseline too.
			ep, err := hubs[0].Endpoint(id, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Ring.Transport = ep
		}
		if tune != nil {
			tune(&cfg)
		}
		d, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Stop)
		daemons[i] = d
	}
	for i, d := range daemons {
		if !d.WaitOperational(10 * time.Second) {
			t.Fatalf("daemon %d rings did not become operational", i)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for r := 0; r < shards; r++ {
			ref := daemons[0].RingNode(r).Status().Ring
			if len(ref.Members) != n {
				ok = false
				break
			}
			for _, d := range daemons[1:] {
				if !d.RingNode(r).Status().Ring.Equal(ref) {
					ok = false
					break
				}
			}
		}
		if ok {
			return daemons
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("sharded daemons did not converge on full rings")
	return nil
}

// TestShardedDaemonRouting drives the whole client path through a 2-shard
// daemon pair: groups on different rings, per-group total order across
// clients, multi-ring multicasts, and a disconnect reaching every ring.
func TestShardedDaemonRouting(t *testing.T) {
	daemons := startShardedDaemons(t, 2, 2)

	// "g-0" is owned by ring 1, "g-1" by ring 0 (pinned by group.RingOf).
	gA, gB := "g-0", "g-1"
	if shard.RingOf(gA, 2) == shard.RingOf(gB, 2) {
		t.Fatal("test groups collapsed onto one ring")
	}

	alice := dial(t, daemons[0], "alice")
	bob := dial(t, daemons[1], "bob")
	for _, g := range []string{gA, gB} {
		if err := alice.Join(g); err != nil {
			t.Fatal(err)
		}
		nextView(t, alice, g, 5*time.Second)
		if err := bob.Join(g); err != nil {
			t.Fatal(err)
		}
		nextView(t, bob, g, 5*time.Second)
		// Alice also sees bob's join view, in order.
		nextView(t, alice, g, 5*time.Second)
	}

	// Both clients send into both groups; every member must deliver each
	// group's stream in one identical order.
	const perSender = 10
	for k := 0; k < perSender; k++ {
		for _, g := range []string{gA, gB} {
			if err := alice.Multicast(evs.Agreed, []byte(fmt.Sprintf("%s/alice/%d", g, k)), g); err != nil {
				t.Fatal(err)
			}
			if err := bob.Multicast(evs.Agreed, []byte(fmt.Sprintf("%s/bob/%d", g, k)), g); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := 2 * 2 * perSender                       // 2 senders x 2 groups
	streams := make(map[string]map[string][]string) // client -> group -> payloads
	for name, c := range map[string]*client.Client{"alice": alice, "bob": bob} {
		streams[name] = map[string][]string{}
		for i := 0; i < want; i++ {
			m := nextMessage(t, c, 10*time.Second)
			if len(m.Groups) != 1 {
				t.Fatalf("single-group send delivered with groups %v", m.Groups)
			}
			g := m.Groups[0]
			streams[name][g] = append(streams[name][g], string(m.Payload))
		}
	}
	for _, g := range []string{gA, gB} {
		a, b := streams["alice"][g], streams["bob"][g]
		if len(a) != 2*perSender || len(b) != 2*perSender {
			t.Fatalf("group %s: alice got %d, bob got %d, want %d", g, len(a), len(b), 2*perSender)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("group %s delivery %d diverged: alice %q, bob %q", g, i, a[i], b[i])
			}
		}
	}

	// A multicast spanning both rings splits into one ordered message per
	// ring: a member of both groups receives one copy per owning ring.
	if err := alice.Multicast(evs.Agreed, []byte("both"), gA, gB); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		m := nextMessage(t, bob, 10*time.Second)
		if string(m.Payload) != "both" || len(m.Groups) != 1 {
			t.Fatalf("split send copy %d: payload %q groups %v", i, m.Payload, m.Groups)
		}
		got[m.Groups[0]] = true
	}
	if !got[gA] || !got[gB] {
		t.Fatalf("split send did not cover both rings: %v", got)
	}
	// Drain alice's own two copies.
	for i := 0; i < 2; i++ {
		nextMessage(t, alice, 10*time.Second)
	}

	// Closing alice must evict her from groups on BOTH rings. The two
	// rings announce independently, so the views arrive in any order.
	aliceID := alice.ID()
	alice.Close()
	pending := map[string]bool{gA: true, gB: true}
	deadline := time.After(10 * time.Second)
	for len(pending) > 0 {
		select {
		case ev, ok := <-bob.Events():
			if !ok {
				t.Fatalf("bob's event stream closed: %v", bob.Err())
			}
			v, isView := ev.(*client.View)
			if !isView || !pending[v.Group] {
				continue
			}
			for _, m := range v.Members {
				if m == aliceID {
					t.Fatalf("group %s view still lists disconnected alice", v.Group)
				}
			}
			delete(pending, v.Group)
		case <-deadline:
			t.Fatalf("timed out waiting for disconnect views; still pending %v", pending)
		}
	}
}

// TestShardedStartValidation checks sharded-mode constructor errors.
func TestShardedStartValidation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ringCfg := ringnode.Accelerated(1, nil, 10, 100, 7)
	if _, err := Start(Config{Ring: ringCfg, Shards: 2, Listener: ln}); err == nil {
		t.Fatal("sharded start without NewTransport accepted")
	}
}
