package daemon

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"accelring/internal/client"
	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/shard"
)

// collectPayloads drains n Message deliveries from c, in order.
func collectPayloads(t *testing.T, c *client.Client, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, string(nextMessage(t, c, 15*time.Second).Payload))
	}
	return out
}

// TestShardedGlobalOrderAcrossGroups pins the tentpole guarantee at the
// client API: with the cross-ring merger in the delivery path, a client
// subscribed to groups on DIFFERENT rings sees one global order — the
// full interleaved delivery sequence across both groups is identical on
// every daemon, not just each group's own subsequence (which is all PR 4
// could promise).
func TestShardedGlobalOrderAcrossGroups(t *testing.T) {
	daemons := startShardedDaemons(t, 2, 2)
	gA, gB := "g-0", "g-1" // ring 1 and ring 0 by the pinned hash
	if shard.RingOf(gA, 2) == shard.RingOf(gB, 2) {
		t.Fatal("test groups collapsed onto one ring")
	}

	alice := dial(t, daemons[0], "alice")
	bob := dial(t, daemons[1], "bob")
	for _, g := range []string{gA, gB} {
		if err := alice.Join(g); err != nil {
			t.Fatal(err)
		}
		nextView(t, alice, g, 5*time.Second)
		if err := bob.Join(g); err != nil {
			t.Fatal(err)
		}
		nextView(t, bob, g, 5*time.Second)
		nextView(t, alice, g, 5*time.Second)
	}

	// Interleave sends from both daemons into both rings, so neither the
	// per-group subsequences nor any single ring's stream could explain an
	// identical total sequence on their own.
	const rounds = 8
	for k := 0; k < rounds; k++ {
		for _, s := range []struct {
			c *client.Client
			g string
		}{{alice, gA}, {bob, gB}, {alice, gB}, {bob, gA}} {
			svc := evs.Agreed
			if k%2 == 1 {
				svc = evs.Safe
			}
			if err := s.c.Multicast(svc, []byte(fmt.Sprintf("%s/%d", s.g, k)), s.g); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := 4 * rounds
	got1 := collectPayloads(t, alice, want)
	got2 := collectPayloads(t, bob, want)
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("global delivery order diverged at %d: alice %q, bob %q\nalice: %v\nbob:   %v",
				i, got1[i], got2[i], got1, got2)
		}
	}
}

// TestShardedMigrateUnderLoad drives Daemon.Migrate while senders keep
// publishing into the migrating group: the handoff must lose nothing,
// duplicate nothing, preserve one identical delivery order on every
// daemon, and leave every daemon agreeing on the group's new ring.
func TestShardedMigrateUnderLoad(t *testing.T) {
	daemons := startShardedDaemons(t, 2, 2)
	g := "g-0" // ring 1 home by the pinned hash
	home := shard.RingOf(g, 2)
	target := (home + 1) % 2

	alice := dial(t, daemons[0], "alice")
	bob := dial(t, daemons[1], "bob")
	if err := alice.Join(g); err != nil {
		t.Fatal(err)
	}
	nextView(t, alice, g, 5*time.Second)
	if err := bob.Join(g); err != nil {
		t.Fatal(err)
	}
	nextView(t, bob, g, 5*time.Second)
	nextView(t, alice, g, 5*time.Second)

	total := 0
	send := func(c *client.Client, phase string, n int) {
		for k := 0; k < n; k++ {
			if err := c.Multicast(evs.Agreed, []byte(fmt.Sprintf("%s-%d-%d", phase, total, k)), g); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	send(alice, "pre", 5)
	send(bob, "pre", 5)

	// Keep traffic flowing from the remote daemon while the migration
	// drains, re-homes, and replays — the window the buffering protects.
	var wg sync.WaitGroup
	wg.Add(1)
	mid := 20
	go func() {
		defer wg.Done()
		for k := 0; k < mid; k++ {
			if err := bob.Multicast(evs.Agreed, []byte(fmt.Sprintf("mid-%d", k)), g); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	if err := daemons[0].Migrate(g, target); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	wg.Wait()
	total += mid
	send(alice, "post", 4)

	got1 := collectPayloads(t, alice, total)
	got2 := collectPayloads(t, bob, total)
	seen := make(map[string]bool, total)
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("delivery order diverged at %d through migration: alice %q, bob %q", i, got1[i], got2[i])
		}
		if seen[got1[i]] {
			t.Fatalf("payload %q delivered twice through migration", got1[i])
		}
		seen[got1[i]] = true
	}
	for _, d := range daemons {
		if r := d.RingOfGroup(g); r != target {
			t.Fatalf("daemon routes %q to ring %d after migration, want %d", g, r, target)
		}
	}

	// Migrating back to the hash home clears the override and stays live.
	if err := daemons[1].Migrate(g, home); err != nil {
		t.Fatalf("Migrate back: %v", err)
	}
	for _, d := range daemons {
		if r := d.RingOfGroup(g); r != home {
			t.Fatalf("daemon routes %q to ring %d after return migration, want %d", g, r, home)
		}
	}
	if err := alice.Multicast(evs.Agreed, []byte("after-return"), g); err != nil {
		t.Fatal(err)
	}
	if got := string(nextMessage(t, bob, 10*time.Second).Payload); got != "after-return" {
		t.Fatalf("post-return delivery = %q", got)
	}
	nextMessage(t, alice, 10*time.Second) // alice's own copy
}

// TestPrivateSameRingFIFOWithMerge pins the Private ordering contract
// under sharding (the RingOfClient audit): Private frames do NOT bypass
// the merge — they ride their target's client ring and are emitted at
// globally ordered positions like everything else — so one sender's
// privates and multicasts submitted to the SAME ring reach a common
// recipient in exact submission order. (Cross-ring interleavings from one
// sender are deterministic but not FIFO; DESIGN §7 documents that caveat
// for spanning sends and privates alike.)
func TestPrivateSameRingFIFOWithMerge(t *testing.T) {
	daemons := startShardedDaemons(t, 2, 2)
	alice := dial(t, daemons[0], "alice")
	bob := dial(t, daemons[1], "bob")

	// Pick a group whose ring coincides with bob's private-delivery ring.
	pr := shard.RingOfClient(bob.ID().String(), 2)
	g := ""
	for i := 0; i < 64 && g == ""; i++ {
		if cand := fmt.Sprintf("g-%d", i); shard.RingOf(cand, 2) == pr {
			g = cand
		}
	}
	if g == "" {
		t.Fatal("no group hashes onto the private ring")
	}
	if err := bob.Join(g); err != nil {
		t.Fatal(err)
	}
	nextView(t, bob, g, 5*time.Second)

	const rounds = 8
	for k := 0; k < rounds; k++ {
		if err := alice.SendPrivate(bob.ID(), evs.Agreed, []byte(fmt.Sprintf("p-%d", k))); err != nil {
			t.Fatal(err)
		}
		if err := alice.Multicast(evs.Agreed, []byte(fmt.Sprintf("m-%d", k)), g); err != nil {
			t.Fatal(err)
		}
	}
	got := collectPayloads(t, bob, 2*rounds)
	for k := 0; k < rounds; k++ {
		if got[2*k] != fmt.Sprintf("p-%d", k) || got[2*k+1] != fmt.Sprintf("m-%d", k) {
			t.Fatalf("same-ring private/multicast FIFO broken at round %d: %v", k, got)
		}
	}
}

// TestSendSplitPathAllocFree extends the AllocsPerRun gates to the daemon
// Send path: the handler's SplitByRing step, run exactly as handleRequest
// runs it (through the session's split scratch), must not allocate for
// the single-ring common case — which includes every send on an
// unsharded daemon.
func TestSendSplitPathAllocFree(t *testing.T) {
	d := &Daemon{table: group.NewShardedTable(4), shards: 4}
	c := &clientConn{}
	single := []string{"g-1"} // one ring, the fast path
	c.split = d.table.SplitByRing(single, c.split)
	if len(c.split) != 1 {
		t.Fatalf("single-ring split = %v", c.split)
	}
	if n := testing.AllocsPerRun(200, func() {
		c.split = d.table.SplitByRing(single, c.split)
	}); n != 0 {
		t.Fatalf("single-ring Send split allocates %.2f/op, want 0", n)
	}

	// The spanning case is allowed its per-ring subset slices, but the
	// scratch itself must be reused: the returned header slice may not
	// reallocate once warm.
	span := []string{"g-0", "g-1", "g-2", "g-3"}
	c.split = d.table.SplitByRing(span, c.split)
	warm := &c.split[0]
	c.split = d.table.SplitByRing(span, c.split)
	if &c.split[0] != warm {
		t.Fatal("spanning Send split reallocated its session scratch")
	}
}
