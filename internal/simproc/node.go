package simproc

import (
	"encoding/binary"
	"fmt"

	"accelring/internal/core"
	"accelring/internal/evs"
	"accelring/internal/simnet"
	"accelring/internal/wire"
)

// TraceEvent is one entry of a node's protocol trace, used to reproduce
// the paper's Figure 1 execution schedule.
type TraceEvent struct {
	At   simnet.Time
	Node simnet.NodeID
	// Kind is one of "send-data", "send-token", "recv-data", "recv-token",
	// "deliver".
	Kind string
	// Seq is the data sequence number, or the token's seq field for token
	// events.
	Seq uint64
	// PostToken marks data sent after the token in its round.
	PostToken bool
}

// TraceFn observes trace events.
type TraceFn func(TraceEvent)

// DeliverFn observes application deliveries at a node. at is the instant
// the daemon finished delivering (before the client IPC hop).
type DeliverFn func(node simnet.NodeID, m evs.Message, at simnet.Time)

// NodeStats counts node-level activity.
type NodeStats struct {
	// DataSockDrops counts data packets dropped at a full data socket.
	DataSockDrops uint64
	// TokenSockDrops counts tokens dropped at a full token socket.
	TokenSockDrops uint64
	// Submitted counts client messages ingested into the engine.
	Submitted uint64
	// Delivered counts messages delivered to clients.
	Delivered uint64
}

type submission struct {
	payload []byte
	service evs.Service
}

type pktQueue struct {
	items []*simnet.Packet
	bytes int
	cap   int
}

func (q *pktQueue) push(p *simnet.Packet) bool {
	if q.bytes+p.Wire > q.cap {
		return false
	}
	q.items = append(q.items, p)
	q.bytes += p.Wire
	return true
}

func (q *pktQueue) pop() *simnet.Packet {
	p := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	q.bytes -= p.Wire
	// Reclaim the backing array periodically.
	if len(q.items) == 0 {
		q.items = nil
	}
	return p
}

// Node is one simulated participant: a single-core process running the
// protocol engine, with separate token and data sockets and a local client
// queue, exactly like the paper's daemons.
type Node struct {
	id   simnet.NodeID
	pid  evs.ProcID
	sim  *simnet.Sim
	net  *simnet.Network
	prof Profile
	eng  *core.Engine
	succ simnet.NodeID

	tokenQ  pktQueue
	dataQ   pktQueue
	clientQ []submission
	// submitHighWater pauses client ingestion while the engine's send
	// queue is at or above it (session-level flow control).
	submitHighWater int

	busyUntil   simnet.Time
	wakePending bool
	// cursor charges CPU time to the effects the engine emits during a
	// handler call.
	cursor simnet.Time

	onDeliver DeliverFn
	trace     TraceFn
	stats     NodeStats

	// tokScratch/dataScratch are reusable frame decoders (the engine
	// treats received tokens as read-only and copies data structs). The
	// zero-copy data decode aliases the simulated packet's frame, which is
	// safe: simnet frames are immutable and never recycled, even when one
	// packet is shared across receivers or duplicate deliveries — which is
	// also why this driver must NOT return frames to bufpool.
	tokScratch  wire.Token
	dataScratch wire.Data
}

var _ core.Output = (*Node)(nil)

// ID returns the node's fabric address.
func (n *Node) ID() simnet.NodeID { return n.id }

// PID returns the node's protocol participant ID.
func (n *Node) PID() evs.ProcID { return n.pid }

// Engine exposes the node's protocol engine (read-only use).
func (n *Node) Engine() *core.Engine { return n.eng }

// Stats returns a snapshot of node-level counters.
func (n *Node) Stats() NodeStats { return n.stats }

// SetTrace installs a trace observer (nil clears).
func (n *Node) SetTrace(fn TraceFn) { n.trace = fn }

// Submit injects a message from this node's local sending client. The
// payload should carry a timestamp (see StampPayload) if latency is being
// measured. The client IPC hop is charged before the daemon sees it.
func (n *Node) Submit(payload []byte, service evs.Service) {
	n.sim.After(n.prof.ClientHop, func() {
		n.clientQ = append(n.clientQ, submission{payload: payload, service: service})
		n.wake()
	})
}

// ingress accepts a packet from the network into the matching socket.
func (n *Node) ingress(p *simnet.Packet) {
	switch p.Kind {
	case wire.FrameToken:
		if !n.tokenQ.push(p) {
			n.stats.TokenSockDrops++
			return
		}
	default:
		if !n.dataQ.push(p) {
			n.stats.DataSockDrops++
			return
		}
	}
	n.wake()
}

// wake schedules the CPU loop when the core is (or becomes) free.
func (n *Node) wake() {
	if n.wakePending {
		return
	}
	n.wakePending = true
	at := n.busyUntil
	if now := n.sim.Now(); at < now {
		at = now
	}
	n.sim.At(at, n.step)
}

// hasWork reports whether the CPU has anything runnable.
func (n *Node) hasWork() bool {
	if len(n.tokenQ.items) > 0 || len(n.dataQ.items) > 0 {
		return true
	}
	return len(n.clientQ) > 0 && n.eng.QueueLen() < n.submitHighWater
}

// step runs one work item on the node's core, then reschedules itself if
// more work is pending. Item selection implements the paper's priority
// scheme: the class (token or data) with priority is drained first; the
// other is read only when the preferred socket is empty. Client messages
// are ingested last, and only while the engine queue is below the
// session high-water mark.
func (n *Node) step() {
	n.wakePending = false
	now := n.sim.Now()

	dataFirst := n.eng.DataPriority()
	switch {
	case dataFirst && len(n.dataQ.items) > 0:
		n.processData(now, n.dataQ.pop())
	case len(n.tokenQ.items) > 0:
		n.processToken(now, n.tokenQ.pop())
	case len(n.dataQ.items) > 0:
		n.processData(now, n.dataQ.pop())
	case len(n.clientQ) > 0 && n.eng.QueueLen() < n.submitHighWater:
		sub := n.clientQ[0]
		n.clientQ[0] = submission{}
		n.clientQ = n.clientQ[1:]
		n.cursor = now + n.prof.submitCost(len(sub.payload))
		if err := n.eng.Submit(sub.payload, sub.service); err == nil {
			n.stats.Submitted++
		}
	default:
		return
	}
	n.busyUntil = n.cursor
	if n.hasWork() {
		n.wake()
	}
}

func (n *Node) processData(now simnet.Time, p *simnet.Packet) {
	n.cursor = now + n.prof.recvDataCost(p.Wire)
	d := &n.dataScratch
	if err := d.DecodeFrom(p.Frame); err != nil {
		// Corrupt frames cannot occur in the simulator; fail loudly.
		panic(fmt.Sprintf("simproc: bad data frame: %v", err))
	}
	n.traceEvent("recv-data", d.Seq, d.PostToken())
	n.eng.HandleData(d)
}

func (n *Node) processToken(now simnet.Time, p *simnet.Packet) {
	n.cursor = now + n.prof.RecvTokenFixed
	t := &n.tokScratch
	if err := t.DecodeFrom(p.Frame); err != nil {
		panic(fmt.Sprintf("simproc: bad token frame: %v", err))
	}
	n.traceEvent("recv-token", t.Seq, false)
	n.eng.HandleToken(t)
}

// Multicast implements core.Output: charge the send syscall, then hand the
// packet to the NIC at the syscall's completion time.
func (n *Node) Multicast(d *wire.Data) {
	wireBytes := n.prof.dataWire(len(d.Payload))
	n.cursor += n.prof.sendCost(wireBytes)
	pkt := &simnet.Packet{
		From:  n.id,
		Kind:  wire.FrameData,
		Wire:  wireBytes,
		Frame: d.AppendTo(make([]byte, 0, d.EncodedLen())),
	}
	n.traceEvent("send-data", d.Seq, d.PostToken())
	n.sim.At(n.cursor, func() { n.net.Multicast(n.id, pkt) })
}

// SendToken implements core.Output.
func (n *Node) SendToken(t *wire.Token) {
	wireBytes := n.prof.tokenWire(len(t.Rtr))
	n.cursor += n.prof.sendCost(wireBytes)
	pkt := &simnet.Packet{
		From:  n.id,
		Kind:  wire.FrameToken,
		Wire:  wireBytes,
		Frame: t.AppendTo(make([]byte, 0, t.EncodedLen())),
	}
	n.traceEvent("send-token", t.Seq, false)
	succ := n.succ
	n.sim.At(n.cursor, func() { n.net.Unicast(n.id, succ, pkt) })
}

// Deliver implements core.Output: charge the client delivery cost and
// report the delivery to the observer.
func (n *Node) Deliver(m evs.Message) {
	n.cursor += n.prof.deliverCost(len(m.Payload))
	n.stats.Delivered++
	n.traceEvent("deliver", m.Seq, false)
	if n.onDeliver != nil {
		n.onDeliver(n.id, m, n.cursor)
	}
}

func (n *Node) traceEvent(kind string, seq uint64, post bool) {
	if n.trace == nil {
		return
	}
	n.trace(TraceEvent{At: n.cursor, Node: n.id, Kind: kind, Seq: seq, PostToken: post})
}

// StampPayload writes the injection timestamp into the payload's first
// eight bytes. Payloads shorter than eight bytes cannot carry a stamp.
func StampPayload(payload []byte, at simnet.Time) {
	if len(payload) >= 8 {
		binary.BigEndian.PutUint64(payload, uint64(at))
	}
}

// PayloadStamp extracts the injection timestamp, or -1 if the payload is
// too short.
func PayloadStamp(payload []byte) simnet.Time {
	if len(payload) < 8 {
		return -1
	}
	return simnet.Time(binary.BigEndian.Uint64(payload))
}
