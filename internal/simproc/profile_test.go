package simproc

import (
	"testing"

	"accelring/internal/simnet"
)

// TestProfileOrdering encodes the paper's implementation hierarchy: the
// library prototype is lighter than the daemon prototype, which is lighter
// than production Spread, in every cost dimension that shapes the results.
func TestProfileOrdering(t *testing.T) {
	lib, dmn, spr := Library(), Daemon(), Spread()
	type dim struct {
		name string
		get  func(*Profile) simnet.Time
	}
	dims := []dim{
		{"recv data 1350B", func(p *Profile) simnet.Time { return p.recvDataCost(p.dataWire(1350)) }},
		{"recv token", func(p *Profile) simnet.Time { return p.RecvTokenFixed }},
		{"send 1350B", func(p *Profile) simnet.Time { return p.sendCost(p.dataWire(1350)) }},
		{"deliver 1350B", func(p *Profile) simnet.Time { return p.deliverCost(1350) }},
		{"submit 1350B", func(p *Profile) simnet.Time { return p.submitCost(1350) }},
		{"client hop", func(p *Profile) simnet.Time { return p.ClientHop }},
	}
	for _, d := range dims {
		l, m, s := d.get(&lib), d.get(&dmn), d.get(&spr)
		if !(l <= m && m <= s) {
			t.Errorf("%s: library %v, daemon %v, spread %v — not monotone", d.name, l, m, s)
		}
	}
	if !(lib.HeaderBytes <= dmn.HeaderBytes && dmn.HeaderBytes <= spr.HeaderBytes) {
		t.Error("header overhead not monotone across profiles")
	}
}

// TestProfileCostsScaleWithSize: per-byte terms must make big messages
// cost more but less per byte (amortization, the §IV-A3 premise).
func TestProfileCostsScaleWithSize(t *testing.T) {
	for _, p := range []Profile{Library(), Daemon(), Spread()} {
		small := p.recvDataCost(p.dataWire(1350)) + p.deliverCost(1350)
		big := p.recvDataCost(p.dataWire(8850)) + p.deliverCost(8850)
		if big <= small {
			t.Errorf("%s: 8850B (%v) not more expensive than 1350B (%v)", p.Name, big, small)
		}
		perByteSmall := float64(small) / 1350
		perByteBig := float64(big) / 8850
		if perByteBig >= perByteSmall {
			t.Errorf("%s: no amortization: %.3f vs %.3f ns/B", p.Name, perByteBig, perByteSmall)
		}
	}
}

// TestTokenWireGrowsWithRtr: retransmission requests enlarge the token.
func TestTokenWireGrowsWithRtr(t *testing.T) {
	p := Daemon()
	if p.tokenWire(10) != p.tokenWire(0)+80 {
		t.Fatalf("token wire with 10 rtr = %d, base %d", p.tokenWire(10), p.tokenWire(0))
	}
}
