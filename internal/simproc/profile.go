// Package simproc models the protocol participants of the paper's testbed:
// single-threaded daemons pinned to one core, reading tokens and data from
// separate sockets with the protocol's priority rules, and paying CPU time
// for every receive, send, and client delivery. Combined with simnet it
// reproduces the performance trade-off the paper studies — on 1 GbE the
// network is the bottleneck, on 10 GbE the single core is.
package simproc

import "accelring/internal/simnet"

// Profile is the processing-cost model of one implementation from the
// paper's evaluation. Costs are charged on the node's single core; *_PerByte
// values are nanoseconds per wire byte. The three presets are calibrated so
// the simulated maximum throughputs land near the paper's measurements; the
// protocol comparison (original vs accelerated) does not depend on the
// absolute values.
type Profile struct {
	// Name labels output rows ("library", "daemon", "spread").
	Name string

	// RecvDataFixed/RecvDataPerByte: cost to read and process one incoming
	// data message (socket read, decode, buffer insertion).
	RecvDataFixed   simnet.Time
	RecvDataPerByte float64
	// RecvTokenFixed: cost to read and process the token.
	RecvTokenFixed simnet.Time
	// SendFixed/SendPerByte: cost of one multicast or token send syscall.
	SendFixed   simnet.Time
	SendPerByte float64
	// DeliverFixed/DeliverPerByte: cost to deliver one message to local
	// clients. Spread pays heavily here (group-name analysis, per-client
	// routing, IPC write); the library prototype pays almost nothing.
	DeliverFixed   simnet.Time
	DeliverPerByte float64
	// SubmitFixed/SubmitPerByte: cost to ingest one message from a local
	// sending client (IPC read, header parse).
	SubmitFixed   simnet.Time
	SubmitPerByte float64
	// ClientHop is the one-way latency between a co-located client and the
	// daemon outside the daemon's CPU (IPC transport and scheduling). It is
	// added once at submission and once at delivery. Zero for the
	// library-based prototype, whose process is the participant.
	ClientHop simnet.Time
	// HeaderBytes is the per-message wire overhead on top of the payload.
	// Spread's large headers (group names, sender names) make it reach
	// "network saturation" at ~920 Mbps of 1350-byte payloads on 1 GbE.
	HeaderBytes int
	// TokenBytes is the base wire size of a token without retransmission
	// requests.
	TokenBytes int
}

// Library returns the cost model of the paper's library-based prototype:
// the application process is the participant, no client communication.
func Library() Profile {
	return Profile{
		Name:            "library",
		RecvDataFixed:   900 * simnet.Nanosecond,
		RecvDataPerByte: 0.85,
		RecvTokenFixed:  2 * simnet.Microsecond,
		SendFixed:       500 * simnet.Nanosecond,
		SendPerByte:     0.35,
		DeliverFixed:    140 * simnet.Nanosecond,
		DeliverPerByte:  0.19,
		SubmitFixed:     100 * simnet.Nanosecond,
		SubmitPerByte:   0.02,
		ClientHop:       0,
		HeaderBytes:     40,
		TokenBytes:      70,
	}
}

// Daemon returns the cost model of the paper's daemon-based prototype: a
// realistic single-group daemon with local clients over IPC.
func Daemon() Profile {
	return Profile{
		Name:            "daemon",
		RecvDataFixed:   1300 * simnet.Nanosecond,
		RecvDataPerByte: 0.95,
		RecvTokenFixed:  5 * simnet.Microsecond,
		SendFixed:       800 * simnet.Nanosecond,
		SendPerByte:     0.40,
		DeliverFixed:    440 * simnet.Nanosecond,
		DeliverPerByte:  0.25,
		SubmitFixed:     500 * simnet.Nanosecond,
		SubmitPerByte:   0.10,
		ClientHop:       25 * simnet.Microsecond,
		HeaderBytes:     60,
		TokenBytes:      80,
	}
}

// Spread returns the cost model of production Spread: large headers for
// descriptive group and sender names, hundreds of clients and groups
// supported, multi-group multicast — and therefore an expensive delivery
// path (the paper attributes Spread's higher Agreed latency under the
// original protocol to exactly this cost sitting on the critical path).
func Spread() Profile {
	return Profile{
		Name:            "spread",
		RecvDataFixed:   1700 * simnet.Nanosecond,
		RecvDataPerByte: 0.80,
		RecvTokenFixed:  12 * simnet.Microsecond,
		SendFixed:       1000 * simnet.Nanosecond,
		SendPerByte:     0.40,
		DeliverFixed:    1580 * simnet.Nanosecond,
		DeliverPerByte:  0.38,
		SubmitFixed:     900 * simnet.Nanosecond,
		SubmitPerByte:   0.12,
		ClientHop:       55 * simnet.Microsecond,
		HeaderBytes:     150,
		TokenBytes:      120,
	}
}

// recvDataCost returns the CPU cost to process an incoming data packet.
func (p *Profile) recvDataCost(wireBytes int) simnet.Time {
	return p.RecvDataFixed + simnet.Time(p.RecvDataPerByte*float64(wireBytes))
}

// sendCost returns the CPU cost of one send syscall.
func (p *Profile) sendCost(wireBytes int) simnet.Time {
	return p.SendFixed + simnet.Time(p.SendPerByte*float64(wireBytes))
}

// deliverCost returns the CPU cost to deliver a payload to clients.
func (p *Profile) deliverCost(payloadBytes int) simnet.Time {
	return p.DeliverFixed + simnet.Time(p.DeliverPerByte*float64(payloadBytes))
}

// submitCost returns the CPU cost to ingest a client message.
func (p *Profile) submitCost(payloadBytes int) simnet.Time {
	return p.SubmitFixed + simnet.Time(p.SubmitPerByte*float64(payloadBytes))
}

// dataWire returns the modeled wire size of a data message.
func (p *Profile) dataWire(payloadBytes int) int { return payloadBytes + p.HeaderBytes }

// tokenWire returns the modeled wire size of a token with nRtr requests.
func (p *Profile) tokenWire(nRtr int) int { return p.TokenBytes + 8*nRtr }
