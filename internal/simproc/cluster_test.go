package simproc

import (
	"fmt"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/simnet"
)

func gigOpts(nodes int, accelerated bool) Options {
	fabric := simnet.GigabitFabric(nodes)
	if accelerated {
		return AcceleratedOptions(fabric, Daemon(), 20, 160, 15)
	}
	return OriginalOptions(fabric, Daemon(), 20, 160)
}

func TestTokenRotates(t *testing.T) {
	c, err := NewCluster(gigOpts(4, true))
	if err != nil {
		t.Fatal(err)
	}
	c.Sim.RunUntil(5 * simnet.Millisecond)
	for i, n := range c.Nodes {
		rounds := n.Engine().Counters().Rounds
		if rounds < 10 {
			t.Fatalf("node %d completed only %d rounds in 5ms", i, rounds)
		}
	}
}

func TestClusterTotalOrderAndDelivery(t *testing.T) {
	for _, accel := range []bool{false, true} {
		t.Run(fmt.Sprintf("accelerated=%v", accel), func(t *testing.T) {
			c, err := NewCluster(gigOpts(4, accel))
			if err != nil {
				t.Fatal(err)
			}
			delivered := make(map[simnet.NodeID][]evs.Message)
			c.SetDeliverHook(func(node simnet.NodeID, m evs.Message, at simnet.Time) {
				delivered[node] = append(delivered[node], m)
			})
			const perNode = 25
			total := perNode * len(c.Nodes)
			for _, n := range c.Nodes {
				n := n
				for i := 0; i < perNode; i++ {
					payload := make([]byte, 200)
					StampPayload(payload, 0)
					n.Submit(payload, evs.Agreed)
				}
			}
			c.Sim.RunUntil(100 * simnet.Millisecond)
			for id, ms := range delivered {
				if len(ms) != total {
					t.Fatalf("node %d delivered %d, want %d", id, len(ms), total)
				}
				for i, m := range ms {
					if m.Seq != uint64(i+1) {
						t.Fatalf("node %d delivery %d has seq %d", id, i, m.Seq)
					}
					if ref := delivered[0][i]; m.Sender != ref.Sender || m.Seq != ref.Seq {
						t.Fatalf("node %d delivery %d differs from node 0", id, i)
					}
				}
			}
			if len(delivered) != len(c.Nodes) {
				t.Fatalf("only %d nodes delivered", len(delivered))
			}
		})
	}
}

func TestSafeDeliveryLatencyExceedsAgreed(t *testing.T) {
	measure := func(svc evs.Service) simnet.Time {
		c, err := NewCluster(gigOpts(4, true))
		if err != nil {
			t.Fatal(err)
		}
		var total simnet.Time
		var count int
		c.SetDeliverHook(func(node simnet.NodeID, m evs.Message, at simnet.Time) {
			ts := PayloadStamp(m.Payload)
			if ts >= 0 {
				total += at - ts
				count++
			}
		})
		// Let the ring spin up, then submit a handful of stamped messages.
		c.Sim.RunUntil(2 * simnet.Millisecond)
		for i := 0; i < 10; i++ {
			payload := make([]byte, 200)
			StampPayload(payload, c.Sim.Now())
			c.Nodes[1].Submit(payload, svc)
		}
		c.Sim.RunUntil(50 * simnet.Millisecond)
		if count == 0 {
			t.Fatalf("no deliveries for %v", svc)
		}
		return total / simnet.Time(count)
	}
	agreed := measure(evs.Agreed)
	safe := measure(evs.Safe)
	if safe <= agreed {
		t.Fatalf("safe latency %v not above agreed latency %v", safe, agreed)
	}
}

// TestAcceleratedFasterRounds: the headline mechanism — the token
// circulates faster when participants pass it before finishing their
// multicasts, under identical load.
func TestAcceleratedFasterRounds(t *testing.T) {
	rounds := func(accel bool) uint64 {
		c, err := NewCluster(gigOpts(8, accel))
		if err != nil {
			t.Fatal(err)
		}
		// Saturating senders: always have a full personal window queued.
		for _, n := range c.Nodes {
			n := n
			var refill func()
			refill = func() {
				// Submit is asynchronous (client IPC hop), so batch rather
				// than poll the queue length.
				if n.Engine().QueueLen() < 20 {
					for i := 0; i < 20; i++ {
						payload := make([]byte, 1350)
						StampPayload(payload, c.Sim.Now())
						n.Submit(payload, evs.Agreed)
					}
				}
				c.Sim.After(100*simnet.Microsecond, refill)
			}
			c.Sim.After(0, refill)
		}
		c.Sim.RunUntil(50 * simnet.Millisecond)
		return c.Nodes[0].Engine().Counters().Rounds
	}
	orig := rounds(false)
	accel := rounds(true)
	if accel <= orig {
		t.Fatalf("accelerated rounds %d not above original %d under load", accel, orig)
	}
	t.Logf("rounds in 50ms under load: original=%d accelerated=%d", orig, accel)
}

func TestIngressFilterLossRecovers(t *testing.T) {
	c, err := NewCluster(gigOpts(4, true))
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 loses 30% of data deterministically (every 3rd packet).
	var seen int
	c.Net.SetIngressFilter(func(to simnet.NodeID, p *simnet.Packet) bool {
		if to != 2 || p.Kind == 1 /* token */ {
			return false
		}
		seen++
		return seen%3 == 0
	})
	delivered := make(map[simnet.NodeID]int)
	c.SetDeliverHook(func(node simnet.NodeID, m evs.Message, at simnet.Time) {
		delivered[node]++
	})
	const perNode = 20
	for _, n := range c.Nodes {
		for i := 0; i < perNode; i++ {
			n.Submit(make([]byte, 300), evs.Agreed)
		}
	}
	c.Sim.RunUntil(200 * simnet.Millisecond)
	want := perNode * len(c.Nodes)
	for id, got := range delivered {
		if got != want {
			t.Fatalf("node %d delivered %d, want %d (loss not recovered)", id, got, want)
		}
	}
	if c.Net.Stats().FilterDrops == 0 {
		t.Fatal("filter dropped nothing; test is vacuous")
	}
	var retrans uint64
	for _, n := range c.Nodes {
		retrans += n.Engine().Counters().Retransmitted
	}
	if retrans == 0 {
		t.Fatal("loss recovered without retransmissions?")
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	c, err := NewCluster(gigOpts(3, true))
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	for _, n := range c.Nodes {
		n.SetTrace(func(ev TraceEvent) { kinds[ev.Kind]++ })
	}
	c.Nodes[0].Submit(make([]byte, 100), evs.Agreed)
	c.Sim.RunUntil(5 * simnet.Millisecond)
	for _, k := range []string{"send-data", "send-token", "recv-data", "recv-token", "deliver"} {
		if kinds[k] == 0 {
			t.Fatalf("no %q trace events (got %v)", k, kinds)
		}
	}
}

func TestPayloadStamp(t *testing.T) {
	p := make([]byte, 16)
	StampPayload(p, 12345)
	if got := PayloadStamp(p); got != 12345 {
		t.Fatalf("stamp round trip = %v", got)
	}
	if got := PayloadStamp(make([]byte, 4)); got != -1 {
		t.Fatalf("short payload stamp = %v, want -1", got)
	}
	// StampPayload on a short payload must not panic.
	StampPayload(make([]byte, 4), 1)
}

func TestClusterValidation(t *testing.T) {
	opts := gigOpts(4, true)
	opts.Fabric.Nodes = 0
	if _, err := NewCluster(opts); err == nil {
		t.Fatal("zero-node cluster accepted")
	}
	opts = gigOpts(4, true)
	opts.Windows.Personal = 0
	if _, err := NewCluster(opts); err == nil {
		t.Fatal("invalid windows accepted")
	}
}
