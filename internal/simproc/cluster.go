package simproc

import (
	"fmt"

	"accelring/internal/core"
	"accelring/internal/evs"
	"accelring/internal/flowcontrol"
	"accelring/internal/obs"
	"accelring/internal/simnet"
	"accelring/internal/wire"
)

// Options configures a simulated cluster: one participant per fabric host,
// a static ring over all of them, and a common implementation profile.
type Options struct {
	// Fabric is the network model (GigabitFabric / TenGigFabric presets).
	Fabric simnet.Config
	// Profile is the implementation cost model.
	Profile Profile
	// Windows are the protocol's flow-control parameters.
	Windows flowcontrol.Windows
	// Priority is the token-priority method; zero defaults per protocol
	// variant (aggressive for accelerated, conservative for original).
	Priority core.PriorityMethod
	// DelayedRequests selects the accelerated retransmission rule.
	DelayedRequests bool
	// DataSockBytes is the data socket buffer per node (default 4 MiB).
	DataSockBytes int
	// TokenSockBytes is the token socket buffer per node (default 64 KiB).
	TokenSockBytes int
	// SubmitHighWater pauses client ingestion while the engine queue is at
	// or above it (default 4× Personal window).
	SubmitHighWater int
	// Observer, when non-nil, supplies a per-node RingObserver for round
	// tracing and metrics (node is the zero-based cluster index; return
	// nil to leave that node unobserved). Observers must have a nil or
	// simulation-derived Clock to keep the run deterministic: with a nil
	// Clock durations read as zero but counts and traces are exact;
	// ringtrace -follow installs a Sim.Now-derived clock for exact
	// virtual timestamps.
	Observer func(node int) *obs.RingObserver
}

// AcceleratedOptions returns Options for the Accelerated Ring protocol on
// the given fabric and profile.
func AcceleratedOptions(fabric simnet.Config, prof Profile, personal, global, accelerated int) Options {
	return Options{
		Fabric:  fabric,
		Profile: prof,
		Windows: flowcontrol.Windows{
			Personal: personal, Global: global, Accelerated: accelerated,
		},
		Priority:        core.PriorityAggressive,
		DelayedRequests: true,
	}
}

// OriginalOptions returns Options for the original Ring protocol on the
// given fabric and profile.
func OriginalOptions(fabric simnet.Config, prof Profile, personal, global int) Options {
	return Options{
		Fabric:   fabric,
		Profile:  prof,
		Windows:  flowcontrol.Windows{Personal: personal, Global: global},
		Priority: core.PriorityConservative,
	}
}

// Cluster is a simulated deployment: N nodes on one switch running the
// ring protocol over a static membership.
type Cluster struct {
	Sim   *simnet.Sim
	Net   *simnet.Network
	Nodes []*Node
	Ring  evs.Configuration
	opts  Options
}

// NewCluster builds the cluster and injects the initial token at the
// representative (node 0) at time zero. Node i has participant ID i+1.
func NewCluster(opts Options) (*Cluster, error) {
	nn := opts.Fabric.Nodes
	if nn < 1 {
		return nil, fmt.Errorf("simproc: fabric has %d nodes", nn)
	}
	if opts.DataSockBytes == 0 {
		opts.DataSockBytes = 4 << 20
	}
	if opts.TokenSockBytes == 0 {
		opts.TokenSockBytes = 64 << 10
	}
	if opts.SubmitHighWater == 0 {
		opts.SubmitHighWater = 4 * opts.Windows.Personal
	}

	members := make([]evs.ProcID, nn)
	for i := range members {
		members[i] = evs.ProcID(i + 1)
	}
	ring := evs.NewConfiguration(evs.ViewID{Rep: members[0], Seq: 1}, members)

	sim := simnet.NewSim()
	c := &Cluster{Sim: sim, Ring: ring, opts: opts}
	net, err := simnet.NewNetwork(sim, opts.Fabric, func(to simnet.NodeID, p *simnet.Packet) {
		c.Nodes[to].ingress(p)
	})
	if err != nil {
		return nil, err
	}
	c.Net = net

	for i := 0; i < nn; i++ {
		pid := members[i]
		node := &Node{
			id:              simnet.NodeID(i),
			pid:             pid,
			sim:             sim,
			net:             net,
			prof:            opts.Profile,
			succ:            simnet.NodeID(i+1) % simnet.NodeID(nn),
			submitHighWater: opts.SubmitHighWater,
		}
		node.tokenQ.cap = opts.TokenSockBytes
		node.dataQ.cap = opts.DataSockBytes
		cfg := core.Config{
			Self:            pid,
			Ring:            ring,
			Windows:         opts.Windows,
			Priority:        opts.Priority,
			DelayedRequests: opts.DelayedRequests,
		}
		if opts.Observer != nil {
			cfg.Observer = opts.Observer(i)
		}
		eng, err := core.New(cfg, node)
		if err != nil {
			return nil, fmt.Errorf("simproc: node %d: %w", i, err)
		}
		node.eng = eng
		c.Nodes = append(c.Nodes, node)
	}

	// Hand the representative the initial token at t=0.
	tok := core.NewInitialToken(ring.ID, 0)
	pkt := &simnet.Packet{
		From:  simnet.NodeID(nn - 1),
		Kind:  wire.FrameToken,
		Wire:  opts.Profile.tokenWire(0),
		Frame: tok.AppendTo(nil),
	}
	sim.At(0, func() { c.Nodes[0].ingress(pkt) })
	return c, nil
}

// SetDeliverHook installs fn as every node's delivery observer.
func (c *Cluster) SetDeliverHook(fn DeliverFn) {
	for _, n := range c.Nodes {
		n.onDeliver = fn
	}
}

// Profile returns the cluster's implementation profile.
func (c *Cluster) Profile() Profile { return c.opts.Profile }

// Options returns the cluster's configuration.
func (c *Cluster) Options() Options { return c.opts }
