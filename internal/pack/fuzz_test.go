package pack

import "testing"

// FuzzUnpack: bundles from arbitrary bytes must never panic, and any
// bundle that unpacks must repack to the same messages.
func FuzzUnpack(f *testing.F) {
	p := NewPacker(0)
	p.Add([]byte("one"))
	p.Add([]byte("two"))
	f.Add(p.Flush())
	f.Add([]byte{Magic, 0, 1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		msgs, err := Unpack(b)
		if err != nil {
			return
		}
		bundles, err := PackAll(len(b)+16, msgs)
		if err != nil || len(bundles) != 1 {
			t.Fatalf("repack: %v (%d bundles)", err, len(bundles))
		}
		again, err := Unpack(bundles[0])
		if err != nil || len(again) != len(msgs) {
			t.Fatalf("re-unpack: %v", err)
		}
	})
}
