package pack

import (
	"errors"
	"fmt"
	"time"
)

// Adaptive defaults.
const (
	// DefaultMaxDelay bounds how long an open bundle may wait for
	// companions before it is flushed regardless of backlog. One
	// millisecond is on the order of a token rotation under load, so the
	// bound is invisible next to ordering latency.
	DefaultMaxDelay = time.Millisecond
)

// ErrBadConfig reports an invalid adaptive packing configuration.
var ErrBadConfig = errors.New("pack: bad adaptive config")

// AdaptiveConfig tunes the adaptive bundler. The zero value takes every
// default.
type AdaptiveConfig struct {
	// Limit caps the encoded bundle size in bytes (DefaultLimit if 0).
	// Payloads too large to ever fit are sent as solo bundles.
	Limit int
	// MaxMessages caps messages per bundle (MaxMessages if 0).
	MaxMessages int
	// MaxDelay bounds the time the first message of a bundle may wait
	// for companions (DefaultMaxDelay if 0). The bound only matters
	// under backlog; an idle node flushes immediately.
	MaxDelay time.Duration
}

// Validate checks the knobs, returning ErrBadConfig-wrapped errors.
func (c AdaptiveConfig) Validate() error {
	if c.Limit < 0 || (c.Limit > 0 && c.Limit < headerLen+perMsgLen+1) {
		return fmt.Errorf("%w: limit %d (need >= %d)", ErrBadConfig, c.Limit, headerLen+perMsgLen+1)
	}
	if c.MaxMessages < 0 || c.MaxMessages > MaxMessages {
		return fmt.Errorf("%w: max messages %d (cap %d)", ErrBadConfig, c.MaxMessages, MaxMessages)
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("%w: negative max delay", ErrBadConfig)
	}
	return nil
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Limit <= 0 {
		c.Limit = DefaultLimit
	}
	if c.MaxMessages <= 0 || c.MaxMessages > MaxMessages {
		c.MaxMessages = MaxMessages
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = DefaultMaxDelay
	}
	return c
}

// AdaptiveStats counts what the bundler did, for observability.
type AdaptiveStats struct {
	// Messages is the number of payloads accepted.
	Messages uint64
	// Bundles is the number of multi-message bundles flushed.
	Bundles uint64
	// Solos is the number of single-message bundles flushed (idle-path
	// and oversize payloads).
	Solos uint64
}

// Adaptive accumulates small messages into bundles under the control of
// its driver: the driver decides when to hold (backlog present) and when
// to flush (batch full, class change, latency bound, or a protocol event
// that must observe everything submitted so far). One bundle is open at
// a time, tagged with the service class of its messages — classes are
// never mixed, since unpacked messages inherit the bundle's delivery
// guarantee. Not safe for concurrent use.
type Adaptive struct {
	cfg   AdaptiveConfig
	p     *Packer
	svc   uint8
	since time.Time
	stats AdaptiveStats
}

// NewAdaptive returns a bundler with cfg's knobs (defaults applied).
func NewAdaptive(cfg AdaptiveConfig) *Adaptive {
	cfg = cfg.withDefaults()
	return &Adaptive{cfg: cfg, p: NewPacker(cfg.Limit)}
}

// Config returns the effective (defaulted) configuration.
func (a *Adaptive) Config() AdaptiveConfig { return a.cfg }

// Stats returns the running counters.
func (a *Adaptive) Stats() AdaptiveStats { return a.stats }

// Empty reports whether no bundle is open.
func (a *Adaptive) Empty() bool { return a.p.Count() == 0 }

// Service returns the service class of the open bundle (meaningless when
// Empty).
func (a *Adaptive) Service() uint8 { return a.svc }

// Since returns when the open bundle's first message was staged (the
// start of its hold; meaningless when Empty). Latency attribution
// backdates the pack stage of sampled spans to it.
func (a *Adaptive) Since() time.Time { return a.since }

// Expired reports whether the open bundle has waited past MaxDelay.
func (a *Adaptive) Expired(now time.Time) bool {
	return a.p.Count() > 0 && now.Sub(a.since) >= a.cfg.MaxDelay
}

// Oversize reports whether a payload of n bytes can never join a bundle
// and must be framed solo (see AppendSolo).
func (a *Adaptive) Oversize(n int) bool {
	return headerLen+perMsgLen+n > a.cfg.Limit
}

// Add appends a payload of service class svc to the open bundle. It
// returns false when the payload cannot join — bundle full, message cap
// reached, or service mismatch — in which case the caller must Flush and
// retry. Oversize payloads (see Oversize) are rejected with false
// forever; callers frame those with AppendSolo instead.
func (a *Adaptive) Add(payload []byte, svc uint8, now time.Time) bool {
	if a.p.Count() > 0 && (svc != a.svc || a.p.Count() >= a.cfg.MaxMessages) {
		return false
	}
	ok, err := a.p.Add(payload)
	if err != nil || !ok {
		return false
	}
	if a.p.Count() == 1 {
		a.svc = svc
		a.since = now
	}
	a.stats.Messages++
	return true
}

// Flush closes the open bundle and returns its encoding (nil when
// Empty). The caller owns the returned slice.
func (a *Adaptive) Flush() []byte {
	n := a.p.Count()
	if n == 0 {
		return nil
	}
	if n == 1 {
		a.stats.Solos++
	} else {
		a.stats.Bundles++
	}
	return a.p.Flush()
}

// SoloOverhead is how many framing bytes AppendSolo adds to a payload.
const SoloOverhead = headerLen + perMsgLen

// AppendSolo appends a single-message bundle framing payload to dst and
// returns the extended slice. Unlike Packer, it ignores any size limit:
// it exists so oversize payloads can share the bundle wire format when a
// ring runs with packing enabled (every data payload is then a bundle,
// and the magic byte is unambiguous).
func AppendSolo(dst, payload []byte) []byte {
	dst = append(dst, Magic, 0, 1)
	dst = appendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// Each visits every message of bundle b in packing order without
// allocating. It returns ErrCorrupt (wrapped) on malformed input; fn is
// not called again after an error is detected, but messages visited
// before the corruption stand.
func Each(b []byte, fn func(msg []byte)) error {
	if len(b) < headerLen || b[0] != Magic {
		return ErrCorrupt
	}
	count := int(uint16(b[1])<<8 | uint16(b[2]))
	if count == 0 || count > MaxMessages {
		return fmt.Errorf("%w: count %d", ErrCorrupt, count)
	}
	off := headerLen
	for i := 0; i < count; i++ {
		if off+perMsgLen > len(b) {
			return fmt.Errorf("%w: truncated length at message %d", ErrCorrupt, i)
		}
		n := int(uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3]))
		off += perMsgLen
		if n < 0 || off+n > len(b) {
			return fmt.Errorf("%w: truncated payload at message %d", ErrCorrupt, i)
		}
		fn(b[off : off+n : off+n])
		off += n
	}
	if off != len(b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-off)
	}
	return nil
}

func appendUint32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
