// Package pack implements small-message packing, the Spread facility the
// paper's §IV discussion describes: many small application messages are
// coalesced into one protocol packet sized to fit a single network frame,
// amortizing per-packet protocol and processing costs. The inverse side
// unpacks a bundle back into the original messages, preserving order.
//
// A bundle is laid out as:
//
//	magic(1) count(2) { len(4) payload }*
//
// Bundles are self-describing, so a receiver can distinguish them from
// bare payloads by the magic byte chosen by the embedding protocol layer
// (callers that also send unpacked payloads must frame accordingly; the
// daemon layer uses distinct envelope kinds).
package pack

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic is the first byte of every encoded bundle.
const Magic byte = 0xB5

// Limits.
const (
	// DefaultLimit fits a bundle into a 1500-byte MTU frame alongside the
	// ring protocol's headers, like Spread's default packet size.
	DefaultLimit = 1350
	// MaxMessages bounds messages per bundle.
	MaxMessages = 1024
	headerLen   = 3
	perMsgLen   = 4
)

// Errors.
var (
	ErrTooLarge = errors.New("pack: message larger than bundle limit")
	ErrCorrupt  = errors.New("pack: corrupt bundle")
)

// Packer accumulates messages into bundles up to a byte limit. The zero
// value is not usable; create one with NewPacker. Not safe for concurrent
// use.
type Packer struct {
	limit int
	buf   []byte
	count int
}

// NewPacker returns a packer producing bundles of at most limit bytes
// (DefaultLimit if limit <= 0).
func NewPacker(limit int) *Packer {
	if limit <= 0 {
		limit = DefaultLimit
	}
	p := &Packer{limit: limit}
	p.reset()
	return p
}

func (p *Packer) reset() {
	p.buf = append(p.buf[:0], Magic, 0, 0)
	p.count = 0
}

// Limit returns the bundle size limit.
func (p *Packer) Limit() int { return p.limit }

// Count returns the number of messages in the open bundle.
func (p *Packer) Count() int { return p.count }

// Size returns the encoded size of the open bundle.
func (p *Packer) Size() int { return len(p.buf) }

// Fits reports whether a payload of n bytes can join the open bundle.
func (p *Packer) Fits(n int) bool {
	return p.count < MaxMessages && len(p.buf)+perMsgLen+n <= p.limit
}

// Add appends a message to the open bundle. It returns ErrTooLarge if the
// message can never fit in an empty bundle, and false (with nil error) if
// the caller should Flush first because the open bundle is full.
func (p *Packer) Add(payload []byte) (bool, error) {
	if headerLen+perMsgLen+len(payload) > p.limit {
		return false, fmt.Errorf("%w: %d bytes, limit %d", ErrTooLarge, len(payload), p.limit)
	}
	if !p.Fits(len(payload)) {
		return false, nil
	}
	p.buf = binary.BigEndian.AppendUint32(p.buf, uint32(len(payload)))
	p.buf = append(p.buf, payload...)
	p.count++
	return true, nil
}

// Flush returns the encoded bundle (nil if empty) and starts a new one.
// The returned slice is owned by the caller.
func (p *Packer) Flush() []byte {
	if p.count == 0 {
		return nil
	}
	binary.BigEndian.PutUint16(p.buf[1:], uint16(p.count))
	out := make([]byte, len(p.buf))
	copy(out, p.buf)
	p.reset()
	return out
}

// IsBundle reports whether b looks like an encoded bundle.
func IsBundle(b []byte) bool { return len(b) >= headerLen && b[0] == Magic }

// Unpack splits a bundle into its messages, in packing order. The
// returned slices alias b.
func Unpack(b []byte) ([][]byte, error) {
	if len(b) < headerLen || b[0] != Magic {
		return nil, ErrCorrupt
	}
	count := int(binary.BigEndian.Uint16(b[1:]))
	if count == 0 || count > MaxMessages {
		return nil, fmt.Errorf("%w: count %d", ErrCorrupt, count)
	}
	out := make([][]byte, 0, count)
	off := headerLen
	for i := 0; i < count; i++ {
		if off+perMsgLen > len(b) {
			return nil, fmt.Errorf("%w: truncated length at message %d", ErrCorrupt, i)
		}
		n := int(binary.BigEndian.Uint32(b[off:]))
		off += perMsgLen
		if n < 0 || off+n > len(b) {
			return nil, fmt.Errorf("%w: truncated payload at message %d", ErrCorrupt, i)
		}
		out = append(out, b[off:off+n:off+n])
		off += n
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-off)
	}
	return out, nil
}

// PackAll greedily packs the payloads into as few bundles as possible,
// preserving order. Messages larger than the limit are rejected.
func PackAll(limit int, payloads [][]byte) ([][]byte, error) {
	p := NewPacker(limit)
	var bundles [][]byte
	for _, m := range payloads {
		ok, err := p.Add(m)
		if err != nil {
			return nil, err
		}
		if !ok {
			bundles = append(bundles, p.Flush())
			if ok, err = p.Add(m); err != nil || !ok {
				return nil, fmt.Errorf("pack: message rejected after flush: %w", err)
			}
		}
	}
	if b := p.Flush(); b != nil {
		bundles = append(bundles, b)
	}
	return bundles, nil
}
