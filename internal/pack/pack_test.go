package pack

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	p := NewPacker(0)
	msgs := [][]byte{[]byte("alpha"), []byte("b"), {}, bytes.Repeat([]byte{9}, 300)}
	for _, m := range msgs {
		ok, err := p.Add(m)
		if err != nil || !ok {
			t.Fatalf("Add: ok=%v err=%v", ok, err)
		}
	}
	if p.Count() != len(msgs) {
		t.Fatalf("count = %d", p.Count())
	}
	bundle := p.Flush()
	if !IsBundle(bundle) {
		t.Fatal("flush output not recognized as bundle")
	}
	got, err := Unpack(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("unpacked %d, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("message %d mismatch", i)
		}
	}
	// Packer resets after flush.
	if p.Count() != 0 || p.Flush() != nil {
		t.Fatal("packer did not reset")
	}
}

func TestAddRejectsOversized(t *testing.T) {
	p := NewPacker(64)
	if _, err := p.Add(make([]byte, 64)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
	// A message that can fit an empty bundle but not the current one
	// returns ok=false without error.
	if ok, err := p.Add(make([]byte, 40)); !ok || err != nil {
		t.Fatalf("first add: %v %v", ok, err)
	}
	ok, err := p.Add(make([]byte, 40))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("second 40-byte message fit a 64-byte bundle")
	}
	if got := p.Flush(); got == nil {
		t.Fatal("flush lost the first message")
	}
}

func TestUnpackRejectsCorruption(t *testing.T) {
	p := NewPacker(0)
	p.Add([]byte("hello"))
	p.Add([]byte("world"))
	bundle := p.Flush()
	for i := 0; i < len(bundle); i++ {
		if _, err := Unpack(bundle[:i]); err == nil {
			t.Fatalf("unpacked %d-byte prefix", i)
		}
	}
	// Wrong magic.
	bad := append([]byte(nil), bundle...)
	bad[0] = 0x00
	if _, err := Unpack(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
	// Trailing garbage.
	if _, err := Unpack(append(append([]byte(nil), bundle...), 1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: %v", err)
	}
	// Zero count.
	zero := []byte{Magic, 0, 0}
	if _, err := Unpack(zero); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zero count: %v", err)
	}
	// Random garbage never panics.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(128))
		rng.Read(b)
		if len(b) > 0 {
			b[0] = Magic
		}
		Unpack(b)
	}
}

func TestPackAll(t *testing.T) {
	var msgs [][]byte
	for i := 0; i < 100; i++ {
		msgs = append(msgs, []byte(fmt.Sprintf("message-%03d", i)))
	}
	bundles, err := PackAll(128, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) < 2 {
		t.Fatalf("expected multiple bundles, got %d", len(bundles))
	}
	// Order is preserved across bundles.
	var got [][]byte
	for _, b := range bundles {
		ms, err := Unpack(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) > 128 {
			t.Fatalf("bundle size %d exceeds limit", len(b))
		}
		got = append(got, ms...)
	}
	if len(got) != len(msgs) {
		t.Fatalf("round trip count %d != %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !bytes.Equal(got[i], msgs[i]) {
			t.Fatalf("message %d out of order", i)
		}
	}
	// Oversized member fails the whole call.
	if _, err := PackAll(16, [][]byte{make([]byte, 64)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

// TestQuickPackRoundTrip property-tests order- and content-preservation
// for random message sets and limits.
func TestQuickPackRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		limit := 64 + rng.Intn(2048)
		n := rng.Intn(200)
		msgs := make([][]byte, n)
		for i := range msgs {
			m := make([]byte, rng.Intn(limit-8))
			rng.Read(m)
			msgs[i] = m
		}
		bundles, err := PackAll(limit, msgs)
		if err != nil {
			return false
		}
		var got [][]byte
		for _, b := range bundles {
			ms, err := Unpack(b)
			if err != nil || len(b) > limit {
				return false
			}
			got = append(got, ms...)
		}
		if len(got) != len(msgs) {
			return false
		}
		for i := range msgs {
			if !bytes.Equal(got[i], msgs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPack64B(b *testing.B) {
	msg := make([]byte, 64)
	p := NewPacker(DefaultLimit)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, _ := p.Add(msg); !ok {
			p.Flush()
			p.Add(msg)
		}
	}
}
