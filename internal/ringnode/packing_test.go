package ringnode

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"accelring/internal/evs"
	"accelring/internal/pack"
	"accelring/internal/transport"
)

// startPackedHubNodes is startHubNodes with adaptive message packing
// enabled on every node.
func startPackedHubNodes(t *testing.T, n int, pc pack.AdaptiveConfig) ([]*Node, []*eventLog) {
	t.Helper()
	hub := transport.NewHub()
	nodes := make([]*Node, n)
	logs := make([]*eventLog, n)
	for i := 0; i < n; i++ {
		id := evs.ProcID(i + 1)
		ep, err := hub.Endpoint(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		log := &eventLog{}
		cfg := Accelerated(id, ep, 10, 100, 7)
		cfg.Timeouts = fastTimeouts()
		cfg.OnEvent = log.add
		pcCopy := pc
		cfg.Packing = &pcCopy
		node, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		nodes[i] = node
		logs[i] = log
	}
	return nodes, logs
}

// TestPackedRingOrders drives a packed ring under enough load to form
// multi-message bundles and requires every node to deliver every
// payload, unpacked, in the identical total order — packing must be
// invisible above the transport.
func TestPackedRingOrders(t *testing.T) {
	nodes, logs := startPackedHubNodes(t, 3, pack.AdaptiveConfig{})
	waitFullRing(t, nodes, 3, 5*time.Second)

	const perNode = 40
	for i, n := range nodes {
		for k := 0; k < perNode; k++ {
			if err := n.Submit([]byte(fmt.Sprintf("p-%d-%03d", i, k)), evs.Agreed); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
	}
	total := perNode * len(nodes)
	waitMessages(t, logs, total, 10*time.Second)

	ref := logs[0].messages()
	for i, l := range logs {
		ms := l.messages()
		if len(ms) != total {
			t.Fatalf("node %d delivered %d, want %d", i, len(ms), total)
		}
		for k := range ms {
			if ms[k].Seq != ref[k].Seq || !bytes.Equal(ms[k].Payload, ref[k].Payload) {
				t.Fatalf("total order violated at %d on node %d: %q vs %q",
					k, i, ms[k].Payload, ref[k].Payload)
			}
		}
	}
	// Per-sender FIFO survives bundling: each node's payloads appear in
	// submission order within the total order.
	for i := range nodes {
		next := 0
		prefix := fmt.Sprintf("p-%d-", i)
		for _, m := range ref {
			if !bytes.HasPrefix(m.Payload, []byte(prefix)) {
				continue
			}
			want := fmt.Sprintf("p-%d-%03d", i, next)
			if string(m.Payload) != want {
				t.Fatalf("sender %d FIFO violated: got %q, want %q", i, m.Payload, want)
			}
			next++
		}
		if next != perNode {
			t.Fatalf("sender %d: %d payloads in order, want %d", i, next, perNode)
		}
	}
}

// TestPackedOversizeSolo checks that a payload too large for the bundle
// budget still travels (solo-framed) on a packed ring, interleaved with
// small bundled messages.
func TestPackedOversizeSolo(t *testing.T) {
	nodes, logs := startPackedHubNodes(t, 2, pack.AdaptiveConfig{Limit: 256})
	waitFullRing(t, nodes, 2, 5*time.Second)

	big := bytes.Repeat([]byte{0xBB}, 4000) // far over the 256-byte bundle budget
	if err := nodes[0].Submit([]byte("small-before"), evs.Agreed); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Submit(big, evs.Agreed); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Submit([]byte("small-after"), evs.Agreed); err != nil {
		t.Fatal(err)
	}
	waitMessages(t, logs, 3, 5*time.Second)
	for i, l := range logs {
		ms := l.messages()
		if string(ms[0].Payload) != "small-before" || !bytes.Equal(ms[1].Payload, big) ||
			string(ms[2].Payload) != "small-after" {
			t.Fatalf("node %d delivered wrong sequence: %d/%d/%d bytes",
				i, len(ms[0].Payload), len(ms[1].Payload), len(ms[2].Payload))
		}
	}
}

// TestPackedIdleLatency: with no backlog the bundler must not sit on a
// lone message — it flushes on the no-backlog check or the MaxDelay
// bound, so a quiet ring still delivers promptly.
func TestPackedIdleLatency(t *testing.T) {
	nodes, logs := startPackedHubNodes(t, 2, pack.AdaptiveConfig{MaxDelay: 5 * time.Millisecond})
	waitFullRing(t, nodes, 2, 5*time.Second)

	start := time.Now()
	if err := nodes[0].Submit([]byte("lone"), evs.Agreed); err != nil {
		t.Fatal(err)
	}
	waitMessages(t, logs, 1, 2*time.Second)
	if lat := time.Since(start); lat > time.Second {
		t.Fatalf("idle-ring packed delivery took %v", lat)
	}
	for i, l := range logs {
		if got := l.messages()[0].Payload; string(got) != "lone" {
			t.Fatalf("node %d delivered %q", i, got)
		}
	}
}

// TestPackedMixedServices: Agreed and Safe messages never share a
// bundle (a bundle carries one service class), but both classes deliver
// with their own guarantees on a packed ring.
func TestPackedMixedServices(t *testing.T) {
	nodes, logs := startPackedHubNodes(t, 3, pack.AdaptiveConfig{})
	waitFullRing(t, nodes, 3, 5*time.Second)

	for k := 0; k < 10; k++ {
		svc := evs.Agreed
		if k%2 == 1 {
			svc = evs.Safe
		}
		if err := nodes[0].Submit([]byte(fmt.Sprintf("mix-%d", k)), svc); err != nil {
			t.Fatal(err)
		}
	}
	waitMessages(t, logs, 10, 10*time.Second)
	for i, l := range logs {
		ms := l.messages()
		for k, m := range ms {
			wantSvc := evs.Agreed
			if k%2 == 1 {
				wantSvc = evs.Safe
			}
			if string(m.Payload) != fmt.Sprintf("mix-%d", k) || m.Service != wantSvc {
				t.Fatalf("node %d message %d: %q service %v", i, k, m.Payload, m.Service)
			}
		}
	}
}
