// Package ringnode is the real-time driver for the protocol stack: it runs
// a membership.Machine (which owns the ordering engine) on a single
// goroutine over a transport.Transport, implementing the paper's
// token/data socket priority scheme, the membership timers, and a
// synchronous submission API.
//
// The single protocol goroutine mirrors the paper's single-threaded
// daemons: the ordering service deliberately consumes at most one core.
package ringnode

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"accelring/internal/bufpool"
	"accelring/internal/core"
	"accelring/internal/evs"
	"accelring/internal/flowcontrol"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/pack"
	"accelring/internal/transport"
)

// Config configures a node.
type Config struct {
	// Self is this participant's ID.
	Self evs.ProcID
	// Transport moves frames; the node takes ownership and closes it on
	// Stop.
	Transport transport.Transport
	// Windows are the protocol's flow-control parameters.
	Windows flowcontrol.Windows
	// Priority is the token-priority method (defaults to aggressive).
	Priority core.PriorityMethod
	// DelayedRequests selects the accelerated retransmission rule.
	DelayedRequests bool
	// Timeouts are the membership timing parameters (defaults applied).
	Timeouts membership.Timeouts
	// TickInterval drives timers; zero derives a sensible value from the
	// timeouts.
	TickInterval time.Duration
	// OnEvent receives the delivery stream (messages and configuration
	// changes) on the protocol goroutine. It must not block for long and
	// must not call back into the Node except Submit-from-another-
	// goroutine.
	OnEvent func(evs.Event)
	// Observer receives protocol metrics and round traces. If set and its
	// Clock is nil, the node installs time.Now so hold times and delivery
	// latencies are measured. Nil disables observation.
	Observer *obs.RingObserver
	// Packing, when non-nil, enables adaptive small-message packing:
	// submissions are bundled up to the configured byte limit and the
	// bundle is held open only while a send backlog already hides the
	// wait (and never past MaxDelay, checked at the next protocol event).
	// At low rate every message flushes immediately. All ring members
	// must agree on whether packing is enabled — with it on, every data
	// payload travels in the bundle wire format and receivers unpack on
	// delivery.
	Packing *pack.AdaptiveConfig
}

// Accelerated returns a Config for the Accelerated Ring protocol.
func Accelerated(self evs.ProcID, tr transport.Transport, personal, global, accelerated int) Config {
	return Config{
		Self:      self,
		Transport: tr,
		Windows: flowcontrol.Windows{
			Personal: personal, Global: global, Accelerated: accelerated,
		},
		Priority:        core.PriorityAggressive,
		DelayedRequests: true,
	}
}

// Original returns a Config for the original Ring protocol.
func Original(self evs.ProcID, tr transport.Transport, personal, global int) Config {
	return Config{
		Self:      self,
		Transport: tr,
		Windows:   flowcontrol.Windows{Personal: personal, Global: global},
		Priority:  core.PriorityConservative,
	}
}

// ForRing derives the configuration of one ring instance of a sharded
// node from a base template: protocol parameters (Self, windows, priority,
// timeouts) are inherited, while the transport and event sink — the parts
// that must be per-ring — are replaced. When the base carries an observer,
// the instance gets its own: same registry and clock, but a fresh tracer
// and a "shard<ring>" label so every metric series and round trace stays
// separable per ring. This is the bundle internal/shard instantiates N
// times; single-ring callers never need it.
func (c Config) ForRing(ring int, tr transport.Transport, onEvent func(evs.Event), traceDepth int) Config {
	rc := c
	rc.Transport = tr
	rc.OnEvent = onEvent
	if base := c.Observer; base != nil {
		rc.Observer = &obs.RingObserver{
			Reg:    base.Reg,
			Tracer: obs.NewRingTracer(traceDepth),
			Clock:  base.Clock,
			Label:  fmt.Sprintf("shard%d", ring),
			// Message tracing is per-ring (each engine owns its
			// lock-free ring) at the base's sampling rate; the flight
			// recorder is shared — events carry the shard label.
			Msg:    obs.NewMsgTracer(base.Msg.Every(), base.Msg.Depth()),
			Flight: base.Flight,
		}
	}
	return rc
}

// ErrStopped is returned by Submit after Stop.
var ErrStopped = errors.New("ringnode: node stopped")

type submitReq struct {
	payload []byte
	service evs.Service
	reply   chan error
}

// Status is a snapshot of the node's protocol state.
type Status struct {
	State membership.State
	Ring  evs.Configuration
	// Engine holds the ordering engine's counters for the current ring
	// (zero before the first ring forms).
	Engine core.Counters
	// Membership holds the membership algorithm's counters.
	Membership membership.Counters
	// QueueLen is the number of submissions waiting for a token; callers
	// can use it for backpressure.
	QueueLen int
}

// Node runs the protocol for one participant.
type Node struct {
	cfg      Config
	machine  *membership.Machine
	bundle   *pack.Adaptive // nil when packing is off
	submitCh chan submitReq
	stopCh   chan struct{}
	done     chan struct{}
	status   atomic.Value // Status
}

// Start creates the node and launches its protocol goroutine. The node
// begins in the gather state and forms (or joins) a ring on its own.
func Start(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, errors.New("ringnode: nil transport")
	}
	n := &Node{
		cfg:      cfg,
		submitCh: make(chan submitReq),
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	if cfg.Packing != nil {
		if err := cfg.Packing.Validate(); err != nil {
			return nil, err
		}
		n.bundle = pack.NewAdaptive(*cfg.Packing)
	}
	if cfg.Observer != nil && cfg.Observer.Clock == nil {
		cfg.Observer.Clock = time.Now
	}
	m, err := membership.New(membership.Config{
		Self:            cfg.Self,
		Windows:         cfg.Windows,
		Priority:        cfg.Priority,
		DelayedRequests: cfg.DelayedRequests,
		Timeouts:        cfg.Timeouts,
		Observer:        cfg.Observer,
	}, machineOut{n}, time.Now())
	if err != nil {
		return nil, err
	}
	n.machine = m
	n.publishStatus()
	go n.run()
	return n, nil
}

// machineOut adapts the membership machine's effects to the transport and
// the application callback.
type machineOut struct{ n *Node }

func (o machineOut) Multicast(frame []byte) {
	// Transport errors are UDP-like losses; the protocol recovers.
	_ = o.n.cfg.Transport.Multicast(frame)
}

func (o machineOut) Unicast(to evs.ProcID, frame []byte) {
	_ = o.n.cfg.Transport.Unicast(to, frame)
}

func (o machineOut) Deliver(ev evs.Event) {
	n := o.n
	if n.cfg.OnEvent == nil {
		return
	}
	if n.bundle != nil {
		if m, ok := ev.(evs.Message); ok && pack.IsBundle(m.Payload) {
			// Fan the bundle out as one event per packed message, in
			// packing order. Sub-payloads alias the delivered buffer,
			// which is handed off and never recycled, so aliasing is
			// safe for as long as the application keeps any of them.
			if err := pack.Each(m.Payload, func(msg []byte) {
				sub := m
				sub.Payload = msg
				n.cfg.OnEvent(sub)
			}); err == nil {
				return
			}
			// A corrupt bundle means a peer without packing shares the
			// ring (a misconfiguration); deliver the raw payload rather
			// than lose it.
		}
	}
	n.cfg.OnEvent(ev)
}

func (n *Node) publishStatus() {
	st := Status{
		State:      n.machine.State(),
		Ring:       n.machine.Ring(),
		Membership: n.machine.Counters(),
	}
	if eng := n.machine.Engine(); eng != nil {
		st.Engine = eng.Counters()
		st.QueueLen = eng.QueueLen()
	}
	n.status.Store(st)
}

// Status returns a snapshot of the node's state. Safe for any goroutine.
func (n *Node) Status() Status { return n.status.Load().(Status) }

// Observer returns the observer the node was started with (nil when
// observation is disabled). Sharded drivers use it to reach each ring's
// tracer.
func (n *Node) Observer() *obs.RingObserver { return n.cfg.Observer }

// WaitState blocks until the node reaches the given state (with any ring)
// or the timeout elapses. It returns whether the state was reached.
func (n *Node) WaitState(st membership.State, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if n.Status().State == st {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return n.Status().State == st
}

// Submit multicasts a payload with the given delivery service, in total
// order. Safe for any goroutine. The payload must not be mutated after
// the call. It fails with membership.ErrNotOperational before the first
// ring forms and with ErrStopped after Stop.
func (n *Node) Submit(payload []byte, service evs.Service) error {
	req := submitReq{payload: payload, service: service, reply: make(chan error, 1)}
	select {
	case n.submitCh <- req:
	case <-n.done:
		return ErrStopped
	}
	select {
	case err := <-req.reply:
		return err
	case <-n.done:
		return ErrStopped
	}
}

// Stop terminates the protocol goroutine and closes the transport.
func (n *Node) Stop() {
	select {
	case <-n.stopCh:
		return // already stopping
	default:
	}
	close(n.stopCh)
	<-n.done
}

func (n *Node) tickInterval() time.Duration {
	if n.cfg.TickInterval > 0 {
		return n.cfg.TickInterval
	}
	t := n.machineTimeouts()
	d := t.JoinInterval
	if t.TokenRetransmit < d {
		d = t.TokenRetransmit
	}
	d /= 4
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// handleSubmit routes one submission — through the bundler when packing
// is enabled, straight to the machine otherwise.
func (n *Node) handleSubmit(req submitReq) error {
	if n.bundle == nil {
		return n.machine.Submit(req.payload, req.service)
	}
	if !n.machine.CanSubmit() {
		return membership.ErrNotOperational
	}
	if !req.service.Valid() {
		return fmt.Errorf("ringnode: invalid service %d", req.service)
	}
	if n.bundle.Oversize(len(req.payload)) {
		// Too big to ever share a frame: solo-framed, so every payload on
		// a packed ring speaks the bundle format. The fresh allocation is
		// required — the engine retains submitted payloads zero-copy.
		solo := pack.AppendSolo(make([]byte, 0, len(req.payload)+pack.SoloOverhead), req.payload)
		return n.machine.Submit(solo, req.service)
	}
	now := time.Now()
	if !n.bundle.Add(req.payload, uint8(req.service), now) {
		// Bundle full or service-class change: close it out first. An
		// empty bundle accepts any non-oversize payload, so the retry
		// cannot fail.
		n.flushPack()
		n.bundle.Add(req.payload, uint8(req.service), now)
	}
	return nil
}

// flushPack submits the open bundle to the machine. CanSubmit was
// checked when the bundle opened and can never revert, and the bundle is
// bounded well under the engine's payload cap, so the submit cannot
// fail.
func (n *Node) flushPack() {
	if n.bundle == nil || n.bundle.Empty() {
		return
	}
	svc := evs.Service(n.bundle.Service())
	held := n.bundle.Since()
	if b := n.bundle.Flush(); b != nil {
		_ = n.machine.SubmitHeld(b, svc, held)
	}
}

// maybeFlushPack flushes the open bundle unless holding it is free: with
// a backlog already waiting for the token, later submissions can join
// the bundle without adding latency. An idle queue means the bundle
// would be the next thing sent, so it goes immediately — packing engages
// under load and stays out of the way at low rate. MaxDelay bounds the
// hold regardless of backlog.
func (n *Node) maybeFlushPack(now time.Time) {
	if n.bundle == nil || n.bundle.Empty() {
		return
	}
	eng := n.machine.Engine()
	if eng == nil || eng.QueueLen() == 0 || n.bundle.Expired(now) {
		n.flushPack()
	}
}

func (n *Node) machineTimeouts() membership.Timeouts {
	var zero membership.Timeouts
	if n.cfg.Timeouts == zero {
		return membership.DefaultTimeouts()
	}
	return n.cfg.Timeouts
}

// run is the protocol loop. Frame classes are prioritized per §III-D/E:
// the preferred class's channel is polled first; the other is read only
// when the preferred one is empty.
func (n *Node) run() {
	defer close(n.done)
	defer n.cfg.Transport.Close()

	ticker := time.NewTicker(n.tickInterval())
	defer ticker.Stop()

	dataCh := n.cfg.Transport.Data()
	tokenCh := n.cfg.Transport.Token()

	// A batching transport stages sends; flush at the end of every
	// machine step that can transmit (frame handling, ticks) so the
	// staged burst hits the wire in one syscall before the loop waits.
	flusher, _ := n.cfg.Transport.(transport.Flusher)
	mt := n.cfg.Observer.MsgTracer()
	wireFlush := func() {
		if flusher != nil {
			_ = flusher.Flush()
		}
		if mt != nil {
			// The staged burst (if any) is on the wire; stamp the batch
			// flush on every sampled message sent since the last flush so
			// spans separate syscall batching delay from network time.
			at := n.cfg.Observer.Now()
			n.machine.DrainSampledSent(func(seq uint64) {
				mt.Record(obs.MsgEvent{Seq: seq, Stage: obs.StageBatchFlush, At: at})
			})
		}
	}

	// Received frames are rented from bufpool by the transport and owned
	// by this goroutine. Token-class frames are never retained by the
	// machine, so they recycle immediately; data frames recycle only when
	// the engine did not keep their zero-copy payload alive.
	handleData := func(f []byte, ok bool) bool {
		if !ok {
			dataCh = nil
			return false
		}
		if !n.machine.HandleDataFrame(f, time.Now()) {
			bufpool.Put(f)
		}
		wireFlush()
		return true
	}
	handleToken := func(f []byte, ok bool) bool {
		if !ok {
			tokenCh = nil
			return false
		}
		// The token triggers this round's sends: anything staged in the
		// bundler must reach the engine's send queue first or it misses
		// the round.
		n.flushPack()
		n.machine.HandleTokenFrame(f, time.Now())
		bufpool.Put(f)
		wireFlush()
		return true
	}

	for {
		// A bundle that outlived its latency bound goes out on the next
		// pass regardless of backlog; this runs on every iteration, so
		// the bound is enforced at frame/tick granularity.
		if n.bundle != nil && !n.bundle.Empty() && n.bundle.Expired(time.Now()) {
			n.flushPack()
		}

		// Service control events without blocking: a busy ring (e.g. a
		// singleton whose token loops back instantly) may never reach the
		// blocking select below, and must still honor Stop, submissions,
		// and timers.
		select {
		case <-n.stopCh:
			return
		case req := <-n.submitCh:
			req.reply <- n.handleSubmit(req)
			n.maybeFlushPack(time.Now())
		case <-ticker.C:
			n.machine.Tick(time.Now())
			wireFlush()
		default:
		}

		// Priority pass: drain the preferred class without blocking.
		if n.machine.DataPriority() {
			select {
			case f, ok := <-dataCh:
				handleData(f, ok)
				n.publishStatus()
				continue
			default:
			}
			select {
			case f, ok := <-tokenCh:
				handleToken(f, ok)
				n.publishStatus()
				continue
			default:
			}
		} else {
			select {
			case f, ok := <-tokenCh:
				handleToken(f, ok)
				n.publishStatus()
				continue
			default:
			}
			select {
			case f, ok := <-dataCh:
				handleData(f, ok)
				n.publishStatus()
				continue
			default:
			}
		}

		// Nothing pending in the preferred order: block on everything.
		select {
		case f, ok := <-dataCh:
			handleData(f, ok)
		case f, ok := <-tokenCh:
			handleToken(f, ok)
		case req := <-n.submitCh:
			req.reply <- n.handleSubmit(req)
			n.maybeFlushPack(time.Now())
		case <-ticker.C:
			n.machine.Tick(time.Now())
			wireFlush()
		case <-n.stopCh:
			return
		}
		n.publishStatus()
	}
}
