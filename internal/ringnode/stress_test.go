package ringnode

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"accelring/internal/evs"
	"accelring/internal/transport"
)

// TestStressJitterLossAndReorder runs the full stack under randomized
// delivery delays (which reorder frames, as UDP may) plus 10% data loss,
// and verifies total order and complete delivery.
func TestStressJitterLossAndReorder(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	hub := transport.NewHub()
	var rmu sync.Mutex
	rng := rand.New(rand.NewSource(17))
	hub.SetDelay(func(from, to evs.ProcID, token bool) time.Duration {
		rmu.Lock()
		defer rmu.Unlock()
		if token {
			// Jitter the token mildly; heavy token delay just slows
			// rounds.
			return time.Duration(rng.Intn(300)) * time.Microsecond
		}
		// Data frames get up to 2 ms of jitter — enough to overtake the
		// token and each other.
		return time.Duration(rng.Intn(2000)) * time.Microsecond
	})
	hub.SetDrop(func(from, to evs.ProcID, token bool, frame []byte) bool {
		if token {
			return false
		}
		rmu.Lock()
		defer rmu.Unlock()
		return rng.Intn(100) < 10
	})

	const n = 4
	nodes := make([]*Node, n)
	logs := make([]*eventLog, n)
	for i := 0; i < n; i++ {
		id := evs.ProcID(i + 1)
		ep, err := hub.Endpoint(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		log := &eventLog{}
		cfg := Accelerated(id, ep, 10, 100, 7)
		cfg.Timeouts = fastTimeouts()
		// Generous token-loss timeout: jitter must not masquerade as
		// failure for this test.
		cfg.Timeouts.TokenLoss = 500 * time.Millisecond
		cfg.Timeouts.TokenRetransmit = 100 * time.Millisecond
		cfg.OnEvent = log.add
		node, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		nodes[i] = node
		logs[i] = log
	}
	waitFullRing(t, nodes, n, 15*time.Second)

	const perNode = 50
	var wg sync.WaitGroup
	for i, node := range nodes {
		i, node := i, node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perNode; k++ {
				svc := evs.Agreed
				if k%3 == 0 {
					svc = evs.Safe
				}
				for {
					err := node.Submit([]byte(fmt.Sprintf("s-%d-%d", i, k)), svc)
					if err == nil {
						break
					}
					time.Sleep(2 * time.Millisecond) // reforming; retry
				}
			}
		}()
	}
	wg.Wait()
	waitMessages(t, logs, perNode*n, 60*time.Second)

	ref := logs[0].messages()
	for i, l := range logs {
		ms := l.messages()
		if len(ms) < perNode*n {
			t.Fatalf("node %d delivered %d", i, len(ms))
		}
		for k := range ref {
			if ms[k].Seq != ref[k].Seq || string(ms[k].Payload) != string(ref[k].Payload) {
				t.Fatalf("total order violated at %d on node %d under jitter+loss", k, i)
			}
		}
	}
	// The stress must have actually exercised retransmission.
	var retrans uint64
	for _, n := range nodes {
		retrans += n.Status().Engine.Retransmitted
	}
	if retrans == 0 {
		t.Fatal("no retransmissions under 10% loss; test is vacuous")
	}
	t.Logf("stress: %d retransmissions, %d installs at node 0",
		retrans, nodes[0].Status().Membership.Installs)
}
