package ringnode

import (
	"sync/atomic"
	"testing"
	"time"

	"accelring/internal/evs"
	"accelring/internal/membership"
	"accelring/internal/pack"
	"accelring/internal/transport"
)

// benchRing measures ordered-delivery throughput of a 3-node simulated
// ring (in-process hub): b.N small messages submitted with backlog, timed
// until the submitting node has delivered them all. kmsg/s is reported as
// a metric so packed-vs-bare shows up directly in BENCH_wire.json.
func benchRing(b *testing.B, pc *pack.AdaptiveConfig) {
	hub := transport.NewHub()
	const members = 3
	var delivered atomic.Int64
	nodes := make([]*Node, members)
	for i := 0; i < members; i++ {
		id := evs.ProcID(i + 1)
		ep, err := hub.Endpoint(id, 8192, 64)
		if err != nil {
			b.Fatal(err)
		}
		cfg := Accelerated(id, ep, 50, 400, 35)
		cfg.Timeouts = fastTimeouts()
		if i == 0 {
			cfg.OnEvent = func(ev evs.Event) {
				if _, ok := ev.(evs.Message); ok {
					delivered.Add(1)
				}
			}
		} else {
			cfg.OnEvent = func(evs.Event) {}
		}
		if pc != nil {
			c := *pc
			cfg.Packing = &c
		}
		node, err := Start(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(node.Stop)
		nodes[i] = node
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := nodes[0].Status()
		if st.State == membership.StateOperational && len(st.Ring.Members) == members {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("ring did not form")
		}
		time.Sleep(time.Millisecond)
	}

	payload := make([]byte, 64)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for nodes[0].Submit(payload, evs.Agreed) != nil {
			time.Sleep(100 * time.Microsecond) // mid-view-change; retry
		}
	}
	for delivered.Load() < int64(b.N) {
		time.Sleep(100 * time.Microsecond)
		if time.Now().After(deadline.Add(time.Minute)) {
			b.Fatalf("delivered only %d/%d", delivered.Load(), b.N)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1000, "kmsg/s")
}

func BenchmarkWireRingBare(b *testing.B) {
	benchRing(b, nil)
}

func BenchmarkWireRingPacked(b *testing.B) {
	benchRing(b, &pack.AdaptiveConfig{})
}
