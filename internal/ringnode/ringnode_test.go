package ringnode

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"accelring/internal/evs"
	"accelring/internal/membership"
	"accelring/internal/transport"
)

func fastTimeouts() membership.Timeouts {
	return membership.Timeouts{
		JoinInterval:    5 * time.Millisecond,
		Gather:          25 * time.Millisecond,
		Commit:          50 * time.Millisecond,
		TokenLoss:       100 * time.Millisecond,
		TokenRetransmit: 30 * time.Millisecond,
	}
}

// eventLog collects delivery events safely across goroutines.
type eventLog struct {
	mu     sync.Mutex
	events []evs.Event
}

func (l *eventLog) add(ev evs.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

func (l *eventLog) messages() []evs.Message {
	l.mu.Lock()
	defer l.mu.Unlock()
	var ms []evs.Message
	for _, ev := range l.events {
		if m, ok := ev.(evs.Message); ok {
			ms = append(ms, m)
		}
	}
	return ms
}

func (l *eventLog) configs() []evs.ConfigChange {
	l.mu.Lock()
	defer l.mu.Unlock()
	var cs []evs.ConfigChange
	for _, ev := range l.events {
		if c, ok := ev.(evs.ConfigChange); ok {
			cs = append(cs, c)
		}
	}
	return cs
}

// startHubNodes launches n nodes over an in-process hub.
func startHubNodes(t *testing.T, n int, accelerated bool) ([]*Node, []*eventLog, *transport.Hub) {
	t.Helper()
	hub := transport.NewHub()
	nodes := make([]*Node, n)
	logs := make([]*eventLog, n)
	for i := 0; i < n; i++ {
		id := evs.ProcID(i + 1)
		ep, err := hub.Endpoint(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		log := &eventLog{}
		var cfg Config
		if accelerated {
			cfg = Accelerated(id, ep, 10, 100, 7)
		} else {
			cfg = Original(id, ep, 10, 100)
		}
		cfg.Timeouts = fastTimeouts()
		cfg.OnEvent = log.add
		node, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		nodes[i] = node
		logs[i] = log
	}
	return nodes, logs, hub
}

func waitFullRing(t *testing.T, nodes []*Node, want int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		all := true
		for _, n := range nodes {
			st := n.Status()
			if st.State != membership.StateOperational || len(st.Ring.Members) != want {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, n := range nodes {
		t.Logf("node %d: %+v", i, n.Status())
	}
	t.Fatalf("nodes did not form a %d-member ring", want)
}

func waitMessages(t *testing.T, logs []*eventLog, want int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		all := true
		for _, l := range logs {
			if len(l.messages()) < want {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, l := range logs {
		t.Logf("log %d: %d messages", i, len(l.messages()))
	}
	t.Fatalf("nodes did not all deliver %d messages", want)
}

func TestHubRingFormsAndOrders(t *testing.T) {
	for _, accel := range []bool{true, false} {
		t.Run(fmt.Sprintf("accelerated=%v", accel), func(t *testing.T) {
			nodes, logs, _ := startHubNodes(t, 3, accel)
			waitFullRing(t, nodes, 3, 5*time.Second)

			const perNode = 20
			for i, n := range nodes {
				for k := 0; k < perNode; k++ {
					if err := n.Submit([]byte(fmt.Sprintf("m-%d-%d", i, k)), evs.Agreed); err != nil {
						t.Fatalf("submit: %v", err)
					}
				}
			}
			total := perNode * len(nodes)
			waitMessages(t, logs, total, 5*time.Second)

			ref := logs[0].messages()
			for i, l := range logs {
				ms := l.messages()
				if len(ms) != total {
					t.Fatalf("node %d delivered %d, want %d", i, len(ms), total)
				}
				for k := range ms {
					if ms[k].Seq != ref[k].Seq || string(ms[k].Payload) != string(ref[k].Payload) {
						t.Fatalf("total order violated at %d on node %d", k, i)
					}
				}
			}
		})
	}
}

func TestHubSafeDelivery(t *testing.T) {
	nodes, logs, _ := startHubNodes(t, 3, true)
	waitFullRing(t, nodes, 3, 5*time.Second)
	if err := nodes[0].Submit([]byte("safe-msg"), evs.Safe); err != nil {
		t.Fatal(err)
	}
	waitMessages(t, logs, 1, 5*time.Second)
	for i, l := range logs {
		ms := l.messages()
		if ms[0].Service != evs.Safe || string(ms[0].Payload) != "safe-msg" {
			t.Fatalf("node %d delivered %+v", i, ms[0])
		}
	}
}

func TestSubmitBeforeOperational(t *testing.T) {
	hub := transport.NewHub()
	ep, err := hub.Endpoint(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Accelerated(1, ep, 10, 100, 7)
	// Long gather: the node stays non-operational for a while.
	to := fastTimeouts()
	to.Gather = 10 * time.Second
	cfg.Timeouts = to
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	if err := n.Submit([]byte("x"), evs.Agreed); err != membership.ErrNotOperational {
		t.Fatalf("Submit = %v, want ErrNotOperational", err)
	}
}

func TestStopIsIdempotentAndUnblocks(t *testing.T) {
	nodes, _, _ := startHubNodes(t, 2, true)
	waitFullRing(t, nodes, 2, 5*time.Second)
	nodes[0].Stop()
	nodes[0].Stop() // idempotent
	if err := nodes[0].Submit([]byte("x"), evs.Agreed); err != ErrStopped {
		t.Fatalf("Submit after stop = %v, want ErrStopped", err)
	}
}

func TestCrashTriggersReform(t *testing.T) {
	nodes, logs, _ := startHubNodes(t, 3, true)
	waitFullRing(t, nodes, 3, 5*time.Second)
	firstRing := nodes[0].Status().Ring.ID

	nodes[2].Stop()
	// The two survivors must reform without node 3.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s0, s1 := nodes[0].Status(), nodes[1].Status()
		if s0.State == membership.StateOperational && firstRing.Less(s0.Ring.ID) &&
			s1.State == membership.StateOperational && s0.Ring.Equal(s1.Ring) &&
			len(s0.Ring.Members) == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	s0 := nodes[0].Status()
	if len(s0.Ring.Members) != 2 {
		t.Fatalf("ring did not reform: %+v", s0)
	}
	// Ordering still works on the reformed ring.
	if err := nodes[0].Submit([]byte("post-crash"), evs.Agreed); err != nil {
		t.Fatal(err)
	}
	waitMessages(t, logs[:2], 1, 5*time.Second)
	// Survivors saw a transitional configuration during the reform.
	for i := 0; i < 2; i++ {
		var sawTransitional bool
		for _, c := range logs[i].configs() {
			if c.Transitional {
				sawTransitional = true
			}
		}
		if !sawTransitional {
			t.Fatalf("node %d saw no transitional config: %+v", i, logs[i].configs())
		}
	}
}

func TestUDPRingEndToEnd(t *testing.T) {
	const n = 3
	// First open all transports to learn their ports, then interconnect.
	uds := make([]*transport.UDP, n)
	for i := 0; i < n; i++ {
		u, err := transport.NewUDP(transport.UDPConfig{
			Self:   evs.ProcID(i + 1),
			Listen: transport.UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"},
		})
		if err != nil {
			t.Fatal(err)
		}
		uds[i] = u
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if err := uds[i].AddPeer(evs.ProcID(j+1), uds[j].LocalAddrs()); err != nil {
				t.Fatal(err)
			}
		}
		// Self-unicast (the representative starts its own ring's token).
		if err := uds[i].AddPeer(evs.ProcID(i+1), uds[i].LocalAddrs()); err != nil {
			t.Fatal(err)
		}
	}
	nodes := make([]*Node, n)
	logs := make([]*eventLog, n)
	for i := 0; i < n; i++ {
		log := &eventLog{}
		cfg := Accelerated(evs.ProcID(i+1), uds[i], 10, 100, 7)
		cfg.Timeouts = fastTimeouts()
		cfg.OnEvent = log.add
		node, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		nodes[i] = node
		logs[i] = log
	}
	waitFullRing(t, nodes, n, 10*time.Second)
	const perNode = 10
	for i, node := range nodes {
		for k := 0; k < perNode; k++ {
			if err := node.Submit([]byte(fmt.Sprintf("udp-%d-%d", i, k)), evs.Agreed); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitMessages(t, logs, perNode*n, 10*time.Second)
	ref := logs[0].messages()
	for i, l := range logs {
		ms := l.messages()
		for k := range ref {
			if ms[k].Seq != ref[k].Seq || string(ms[k].Payload) != string(ref[k].Payload) {
				t.Fatalf("UDP total order violated at %d on node %d", k, i)
			}
		}
	}
}
