// Package evs defines the Extended Virtual Synchrony (EVS) model types
// shared by the ordering protocol, the membership algorithm, and the
// client-facing layers.
//
// EVS (Moser et al., ICDCS 1994) extends Virtual Synchrony to partitionable
// environments: message delivery and ordering guarantees are stated with
// respect to a series of configurations. A configuration is a uniquely
// identified set of connected participants. Regular configurations carry the
// full guarantees; transitional configurations are delivered during
// membership changes to the subset of members that continue together, so
// that messages whose guarantees could not be established in the old
// configuration can still be delivered with well-defined semantics.
package evs

import (
	"fmt"
	"sort"
)

// ProcID identifies a protocol participant. IDs are compared numerically;
// the smallest ID in a configuration acts as the ring representative. In
// deployments the ID is typically derived from the participant's IPv4
// address. The zero value is reserved and never identifies a participant.
type ProcID uint32

// ViewID uniquely identifies a configuration. It pairs the representative
// that formed the configuration with a sequence number that the
// representative increases every time it forms a new configuration, so two
// distinct configurations never share a ViewID.
type ViewID struct {
	Rep ProcID
	Seq uint64
}

// Less orders ViewIDs first by sequence number, then by representative.
// Membership uses this to pick the larger ring identifier when merging.
func (v ViewID) Less(o ViewID) bool {
	if v.Seq != o.Seq {
		return v.Seq < o.Seq
	}
	return v.Rep < o.Rep
}

// IsZero reports whether v is the zero ViewID (no configuration).
func (v ViewID) IsZero() bool { return v.Rep == 0 && v.Seq == 0 }

func (v ViewID) String() string { return fmt.Sprintf("view(%d.%d)", v.Rep, v.Seq) }

// Configuration is a set of connected participants with a unique identifier.
// Members are kept sorted ascending; ring order is member order.
type Configuration struct {
	ID      ViewID
	Members []ProcID
}

// NewConfiguration builds a configuration with the members sorted into ring
// order. The caller's slice is copied.
func NewConfiguration(id ViewID, members []ProcID) Configuration {
	m := make([]ProcID, len(members))
	copy(m, members)
	sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
	return Configuration{ID: id, Members: m}
}

// Index returns the ring position of p, or -1 if p is not a member.
func (c Configuration) Index(p ProcID) int {
	for i, m := range c.Members {
		if m == p {
			return i
		}
	}
	return -1
}

// Contains reports whether p is a member of the configuration.
func (c Configuration) Contains(p ProcID) bool { return c.Index(p) >= 0 }

// Successor returns the next member after p in ring order, wrapping around.
// It returns 0 if p is not a member or the configuration is a singleton.
func (c Configuration) Successor(p ProcID) ProcID {
	i := c.Index(p)
	if i < 0 || len(c.Members) < 2 {
		if i == 0 && len(c.Members) == 1 {
			return p
		}
		return 0
	}
	return c.Members[(i+1)%len(c.Members)]
}

// Predecessor returns the member before p in ring order, wrapping around.
// It returns 0 if p is not a member.
func (c Configuration) Predecessor(p ProcID) ProcID {
	i := c.Index(p)
	if i < 0 {
		return 0
	}
	n := len(c.Members)
	return c.Members[(i-1+n)%n]
}

// Equal reports whether two configurations have the same ID and members.
func (c Configuration) Equal(o Configuration) bool {
	if c.ID != o.ID || len(c.Members) != len(o.Members) {
		return false
	}
	for i := range c.Members {
		if c.Members[i] != o.Members[i] {
			return false
		}
	}
	return true
}

func (c Configuration) String() string {
	return fmt.Sprintf("%v%v", c.ID, c.Members)
}

// Service is the delivery service level requested for a message. The ring
// protocol totally orders every message regardless of level; the level
// determines when a message may be delivered to the application.
type Service uint8

const (
	// Reliable delivery: the message is delivered reliably in total order
	// (the ring orders everything), with no additional delivery constraint.
	Reliable Service = iota + 1
	// FIFO delivery preserves per-sender order. Latency matches Agreed.
	FIFO
	// Causal delivery respects Lamport causality. Latency matches Agreed.
	Causal
	// Agreed delivery guarantees all members of a configuration deliver
	// messages in the same total order, respecting causality. A message is
	// delivered as soon as all messages ordered before it have been
	// delivered.
	Agreed
	// Safe delivery additionally guarantees stability: a message is
	// delivered only once every member of the configuration is known to
	// have received it (so each will deliver it unless it crashes).
	Safe
)

// NeedsStability reports whether the service level requires stability
// (knowledge that all members received the message) before delivery.
func (s Service) NeedsStability() bool { return s == Safe }

// Valid reports whether s is a defined service level.
func (s Service) Valid() bool { return s >= Reliable && s <= Safe }

func (s Service) String() string {
	switch s {
	case Reliable:
		return "reliable"
	case FIFO:
		return "fifo"
	case Causal:
		return "causal"
	case Agreed:
		return "agreed"
	case Safe:
		return "safe"
	default:
		return fmt.Sprintf("service(%d)", uint8(s))
	}
}

// Event is a delivery event handed to the application: either a Message or
// a ConfigChange. Events from one participant are delivered in a single
// well-defined order.
type Event interface{ isEvent() }

// Message is an application message delivered in total order.
type Message struct {
	// Seq is the message's position in the configuration's total order.
	Seq uint64
	// Sender is the participant that initiated the message.
	Sender ProcID
	// Round is the token round in which the message was initiated.
	Round uint64
	// Service is the delivery level the message was sent with.
	Service Service
	// Config identifies the configuration the message is delivered in.
	Config ViewID
	// Control marks protocol-internal messages (membership recovery
	// traffic); the membership layer consumes them before applications
	// see anything.
	Control bool
	// Payload is the application data. The protocol never inspects it.
	Payload []byte
}

func (Message) isEvent() {}

// ConfigChange announces a new configuration. A transitional configuration
// contains the members of the previous regular configuration that continue
// together; messages delivered after it (and before the next regular
// configuration) carry guarantees only with respect to that reduced set.
type ConfigChange struct {
	Config       Configuration
	Transitional bool
}

func (ConfigChange) isEvent() {}

// MembershipChangedError reports that an operation could not complete in
// the configuration it was issued in because the membership changed
// underneath it. Callers detect it with errors.As, wait for the next
// ConfigChange event, and retry in the new view. NewView is zero while
// the replacement configuration is still forming.
type MembershipChangedError struct {
	OldView ViewID
	NewView ViewID
}

func (e *MembershipChangedError) Error() string {
	if e.NewView.IsZero() {
		return fmt.Sprintf("membership changed: %v dissolved, new view forming", e.OldView)
	}
	return fmt.Sprintf("membership changed: %v superseded by %v", e.OldView, e.NewView)
}
