package evs

import (
	"testing"
	"testing/quick"
)

func TestViewIDLess(t *testing.T) {
	tests := []struct {
		a, b ViewID
		want bool
	}{
		{ViewID{1, 1}, ViewID{1, 2}, true},
		{ViewID{1, 2}, ViewID{1, 1}, false},
		{ViewID{1, 1}, ViewID{2, 1}, true},
		{ViewID{2, 1}, ViewID{1, 1}, false},
		{ViewID{1, 1}, ViewID{1, 1}, false},
	}
	for _, tc := range tests {
		if got := tc.a.Less(tc.b); got != tc.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	if !(ViewID{}).IsZero() || (ViewID{Rep: 1}).IsZero() {
		t.Fatal("IsZero misclassifies")
	}
}

func TestConfigurationSortsMembers(t *testing.T) {
	c := NewConfiguration(ViewID{Rep: 1, Seq: 1}, []ProcID{5, 1, 3})
	want := []ProcID{1, 3, 5}
	for i, m := range c.Members {
		if m != want[i] {
			t.Fatalf("members = %v, want %v", c.Members, want)
		}
	}
}

func TestConfigurationCopiesInput(t *testing.T) {
	in := []ProcID{2, 1}
	c := NewConfiguration(ViewID{Rep: 1, Seq: 1}, in)
	in[0] = 99
	if c.Members[0] == 99 || c.Members[1] == 99 {
		t.Fatal("configuration aliases caller's slice")
	}
}

func TestRingNavigation(t *testing.T) {
	c := NewConfiguration(ViewID{Rep: 1, Seq: 1}, []ProcID{1, 2, 3})
	tests := []struct {
		p          ProcID
		succ, pred ProcID
		idx        int
	}{
		{1, 2, 3, 0},
		{2, 3, 1, 1},
		{3, 1, 2, 2},
		{9, 0, 0, -1},
	}
	for _, tc := range tests {
		if got := c.Successor(tc.p); got != tc.succ {
			t.Errorf("Successor(%d) = %d, want %d", tc.p, got, tc.succ)
		}
		if got := c.Predecessor(tc.p); got != tc.pred {
			t.Errorf("Predecessor(%d) = %d, want %d", tc.p, got, tc.pred)
		}
		if got := c.Index(tc.p); got != tc.idx {
			t.Errorf("Index(%d) = %d, want %d", tc.p, got, tc.idx)
		}
	}
	if !c.Contains(2) || c.Contains(9) {
		t.Fatal("Contains misclassifies")
	}
	// Singleton ring: the successor is the member itself.
	solo := NewConfiguration(ViewID{Rep: 7, Seq: 1}, []ProcID{7})
	if solo.Successor(7) != 7 || solo.Predecessor(7) != 7 {
		t.Fatal("singleton ring navigation broken")
	}
}

func TestConfigurationEqual(t *testing.T) {
	a := NewConfiguration(ViewID{Rep: 1, Seq: 1}, []ProcID{1, 2})
	b := NewConfiguration(ViewID{Rep: 1, Seq: 1}, []ProcID{2, 1})
	if !a.Equal(b) {
		t.Fatal("equal configurations differ")
	}
	c := NewConfiguration(ViewID{Rep: 1, Seq: 2}, []ProcID{1, 2})
	d := NewConfiguration(ViewID{Rep: 1, Seq: 1}, []ProcID{1, 2, 3})
	if a.Equal(c) || a.Equal(d) {
		t.Fatal("different configurations compare equal")
	}
}

func TestServiceProperties(t *testing.T) {
	for _, s := range []Service{Reliable, FIFO, Causal, Agreed, Safe} {
		if !s.Valid() {
			t.Errorf("%v not valid", s)
		}
		if s.NeedsStability() != (s == Safe) {
			t.Errorf("%v stability = %v", s, s.NeedsStability())
		}
		if s.String() == "" {
			t.Errorf("%v has empty name", s)
		}
	}
	if Service(0).Valid() || Service(6).Valid() {
		t.Fatal("invalid services pass Valid")
	}
}

func TestEventTypes(t *testing.T) {
	var events []Event
	events = append(events, Message{Seq: 1}, ConfigChange{})
	if len(events) != 2 {
		t.Fatal("event interface not satisfied")
	}
}

// TestQuickSuccessorPredecessorInverse: pred(succ(p)) == p on any ring.
func TestQuickSuccessorPredecessorInverse(t *testing.T) {
	f := func(raw []uint32) bool {
		seen := map[ProcID]bool{}
		var ids []ProcID
		for _, r := range raw {
			p := ProcID(r%1000 + 1)
			if !seen[p] {
				seen[p] = true
				ids = append(ids, p)
			}
		}
		if len(ids) == 0 {
			return true
		}
		c := NewConfiguration(ViewID{Rep: ids[0], Seq: 1}, ids)
		for _, p := range c.Members {
			if c.Predecessor(c.Successor(p)) != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
