package transport

import (
	"testing"
	"time"

	"accelring/internal/obs"
	"accelring/internal/wire"
)

func authPair(t *testing.T, keyA, keyB []byte, reg *obs.Registry) (Transport, Transport) {
	t.Helper()
	hub := NewHub()
	e1, err := hub.Endpoint(1, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := hub.Endpoint(2, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	t1 := WithAuth(e1, keyA, reg, nil)
	t2 := WithAuth(e2, keyB, reg, nil)
	t.Cleanup(func() { t1.Close(); t2.Close() })
	return t1, t2
}

func TestAuthTransportRoundTrip(t *testing.T) {
	key := []byte("ring-key")
	t1, t2 := authPair(t, key, key, nil)

	if err := t1.Multicast([]byte("data-frame")); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, t2.Data()); string(got) != "data-frame" {
		t.Fatalf("data = %q", got)
	}
	if err := t1.Unicast(2, []byte("token-frame")); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, t2.Token()); string(got) != "token-frame" {
		t.Fatalf("token = %q", got)
	}
}

func TestAuthTransportDropsForged(t *testing.T) {
	reg := obs.NewRegistry()
	// t1 signs with a different key: everything it sends must be dropped
	// by t2's verifier, both channels.
	t1, t2 := authPair(t, []byte("wrong"), []byte("right"), reg)

	if err := t1.Multicast([]byte("forged-data")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Unicast(2, []byte("forged-token")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("transport.auth_drops").Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("auth_drops = %d, want 2", reg.Counter("transport.auth_drops").Value())
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case f := <-t2.Data():
		t.Fatalf("forged data frame delivered: %q", f)
	case f := <-t2.Token():
		t.Fatalf("forged token frame delivered: %q", f)
	case <-time.After(20 * time.Millisecond):
	}
	at := t2.(*authTransport)
	if at.AuthDrops() != 2 {
		t.Fatalf("AuthDrops = %d, want 2", at.AuthDrops())
	}
}

func TestAuthTransportEmptyKeyPassthrough(t *testing.T) {
	hub := NewHub()
	ep, err := hub.Endpoint(1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if tr := WithAuth(ep, nil, nil, nil); tr != Transport(ep) {
		t.Fatal("empty key must return the inner transport unchanged")
	}
}

func TestAuthTransportOverheadOnWire(t *testing.T) {
	// An unauthenticated receiver sees the raw signed bytes: frame + tag.
	hub := NewHub()
	e1, _ := hub.Endpoint(1, 4, 4)
	e2, _ := hub.Endpoint(2, 4, 4)
	defer e2.Close()
	t1 := WithAuth(e1, []byte("k"), nil, nil)
	defer t1.Close()

	if err := t1.Multicast([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	raw := recvFrame(t, e2.Data())
	if len(raw) != 3+wire.MacLen {
		t.Fatalf("wire frame length = %d, want %d", len(raw), 3+wire.MacLen)
	}
}
