package transport

import (
	"bytes"
	"testing"
	"time"

	"accelring/internal/evs"
)

// newMcastPair opens two transports joined to the same multicast group
// on loopback, or skips the test when the environment cannot do
// multicast (no group join, no loopback routing).
func newMcastPair(t *testing.T, group string, batch int) (*UDP, *UDP) {
	t.Helper()
	mk := func(self evs.ProcID) *UDP {
		u, err := NewUDP(UDPConfig{
			Self:      self,
			Listen:    UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"},
			Batch:     BatchConfig{Send: batch, Recv: batch},
			Multicast: &UDPMulticast{Group: group, TTL: 0}, // TTL 0: never leaves the host
		})
		if err != nil {
			t.Skipf("multicast unavailable in this environment: %v", err)
		}
		t.Cleanup(func() { u.Close() })
		return u
	}
	a, b := mk(1), mk(2)
	if err := a.AddPeer(2, b.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	// Probe: multicast joins can succeed while the kernel still refuses
	// to route group traffic back over loopback (some containers). Skip
	// rather than fail in that case.
	probeDeadline := time.After(2 * time.Second)
	for {
		if err := a.Multicast([]byte{0xFE, 'p', 'r', 'o', 'b', 'e'}); err != nil {
			t.Fatal(err)
		}
		Flush(a)
		select {
		case <-b.Data():
			return a, b
		case <-probeDeadline:
			t.Skip("multicast loopback does not deliver in this environment")
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func TestUDPMulticastRoundTrip(t *testing.T) {
	a, b := newMcastPair(t, "239.77.13.7:39177", 0)
	payload := bytes.Repeat([]byte{0xAB}, 1350)
	if err := a.Multicast(payload); err != nil {
		t.Fatal(err)
	}
	got := recvFrame(t, b.Data())
	if !bytes.Equal(got, payload) {
		t.Fatalf("multicast frame corrupted: %d bytes", len(got))
	}
	// Tokens still travel unicast in multicast mode.
	if err := b.Unicast(1, []byte("token")); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, a.Token()); string(got) != "token" {
		t.Fatalf("token over unicast: got %q", got)
	}
}

func TestUDPMulticastSelfFilter(t *testing.T) {
	a, _ := newMcastPair(t, "239.77.13.8:39178", 0)
	// Loopback is left on so same-host peers hear each other; the
	// envelope's sender ID must filter our own copies out (the protocol
	// self-delivers at send time, a second copy would corrupt ordering).
	if err := a.Multicast([]byte("self")); err != nil {
		t.Fatal(err)
	}
	expectNone(t, a.Data())
}

func TestUDPMulticastBatched(t *testing.T) {
	a, b := newMcastPair(t, "239.77.13.9:39179", 8)
	const n = 6
	for i := 0; i < n; i++ {
		if err := a.Multicast([]byte{byte(i), 0xBC, 0xDE}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	got := collectFrames(t, b.Data(), n)
	for i := 0; i < n; i++ {
		if want := []byte{byte(i), 0xBC, 0xDE}; !bytes.Equal(got[byte(i)], want) {
			t.Fatalf("frame %d: got %x want %x", i, got[byte(i)], want)
		}
	}
}

func TestUDPMulticastConfigErrors(t *testing.T) {
	listen := UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"}
	cases := []struct {
		name  string
		mcast UDPMulticast
	}{
		{"non-multicast group", UDPMulticast{Group: "127.0.0.1:9999"}},
		{"bad address", UDPMulticast{Group: "not-an-addr"}},
		{"missing port", UDPMulticast{Group: "239.1.1.1"}},
		{"bad interface", UDPMulticast{Group: "239.77.13.10:39180", Interface: "no-such-if0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mc := tc.mcast
			u, err := NewUDP(UDPConfig{Self: 1, Listen: listen, Multicast: &mc})
			if err == nil {
				u.Close()
				t.Fatalf("NewUDP accepted %+v", tc.mcast)
			}
		})
	}
}
