//go:build linux && amd64

package transport

// The stdlib syscall table for linux/amd64 predates sendmmsg, so the
// numbers are pinned here (x86-64 syscall table; stable ABI).
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
