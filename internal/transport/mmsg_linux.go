//go:build linux && (amd64 || arm64)

// sendmmsg/recvmmsg support, raw via syscall.Syscall6 so the module stays
// stdlib-only. The batch path coalesces the per-token-round burst of data
// frames — up to Batch.Send frames fanned out to every peer — into a
// single kernel crossing, and drains up to Batch.Recv datagrams per
// receive syscall, which is where a saturated ring spends most of its
// time once the protocol hot path itself is allocation-free.
//
// Only linux/amd64 and linux/arm64 are wired up; other platforms use the
// portable single-syscall fallback in mmsg_portable.go with identical
// semantics (the batch is still applied, one write per destination).

package transport

import (
	"encoding/binary"
	"net"
	"syscall"
	"unsafe"
)

// mmsgAvailable reports whether the platform batches syscalls for real.
// The portable fallback keeps the API but pays one syscall per datagram.
const mmsgAvailable = true

// mmsghdr mirrors the kernel's struct mmsghdr. On 64-bit targets
// syscall.Msghdr is 8-aligned, so the trailing pad the kernel applies
// falls out of Go's own struct layout.
type mmsghdr struct {
	Hdr syscall.Msghdr
	Len uint32
	_   [4]byte
}

// rawAddr is a precomputed sockaddr blob for sendmmsg's msg_name.
type rawAddr struct {
	buf [syscall.SizeofSockaddrInet6]byte
	len uint32
}

// mkRawAddr encodes a resolved UDP address as a kernel sockaddr. The
// second return is false for addresses sendmmsg cannot name (nil IP).
func mkRawAddr(a *net.UDPAddr) (rawAddr, bool) {
	var r rawAddr
	if a == nil {
		return r, false
	}
	if ip4 := a.IP.To4(); ip4 != nil {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&r.buf[0]))
		sa.Family = syscall.AF_INET
		binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&sa.Port))[:], uint16(a.Port))
		copy(sa.Addr[:], ip4)
		r.len = syscall.SizeofSockaddrInet4
		return r, true
	}
	if ip16 := a.IP.To16(); ip16 != nil {
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&r.buf[0]))
		sa.Family = syscall.AF_INET6
		binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&sa.Port))[:], uint16(a.Port))
		copy(sa.Addr[:], ip16)
		if a.Zone != "" {
			if ifi, err := net.InterfaceByName(a.Zone); err == nil {
				sa.Scope_id = uint32(ifi.Index)
			}
		}
		r.len = syscall.SizeofSockaddrInet6
		return r, true
	}
	return r, false
}

// mmsgWriter batches datagram sends over one socket with sendmmsg. Staged
// frames and addresses are kept in parallel slices; the msghdr views are
// built immediately before the syscall, when no further append can move
// the backing arrays.
type mmsgWriter struct {
	rc     syscall.RawConn
	frames [][]byte
	addrs  []*rawAddr
	hdrs   []mmsghdr
	iovs   []syscall.Iovec

	// sendFn is the closure passed to RawConn.Write, built once so the
	// per-flush hot path does not allocate a closure (and escape its
	// captures) every syscall. off/chunk are its inputs, n/errno/syscalls
	// its outputs.
	sendFn     func(fd uintptr) bool
	off, chunk int
	n          uintptr
	errno      syscall.Errno
	syscalls   int
}

func newMMsgWriter(conn *net.UDPConn, batch int) *mmsgWriter {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	w := &mmsgWriter{rc: rc}
	w.sendFn = func(fd uintptr) bool {
		w.n, _, w.errno = syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&w.hdrs[w.off])), uintptr(w.chunk),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		w.syscalls++
		return w.errno != syscall.EAGAIN
	}
	return w
}

// append stages one datagram. Both the frame bytes and addr must stay
// alive and unmodified until writeBatch returns.
func (w *mmsgWriter) append(frame []byte, addr *rawAddr) {
	w.frames = append(w.frames, frame)
	w.addrs = append(w.addrs, addr)
}

func (w *mmsgWriter) staged() int { return len(w.frames) }

// maxMsgsPerCall bounds one sendmmsg vector (the kernel clamps at
// UIO_MAXIOV = 1024 anyway).
const maxMsgsPerCall = 1024

// writeBatch transmits every staged datagram and returns how many
// syscalls it took (normally 1). Send errors are dropped like UDP loss;
// the protocol's retransmission machinery recovers.
func (w *mmsgWriter) writeBatch() int {
	total := len(w.frames)
	if total == 0 {
		return 0
	}
	if cap(w.hdrs) < total {
		w.hdrs = make([]mmsghdr, total)
		w.iovs = make([]syscall.Iovec, total)
	}
	hdrs := w.hdrs[:total]
	iovs := w.iovs[:total]
	for i, f := range w.frames {
		iovs[i] = syscall.Iovec{Base: &f[0], Len: uint64(len(f))}
		hdrs[i] = mmsghdr{}
		h := &hdrs[i].Hdr
		h.Name = &w.addrs[i].buf[0]
		h.Namelen = w.addrs[i].len
		h.Iov = &iovs[i]
		h.Iovlen = 1
	}
	w.syscalls = 0
	w.off = 0
	for w.off < total {
		w.chunk = total - w.off
		if w.chunk > maxMsgsPerCall {
			w.chunk = maxMsgsPerCall
		}
		werr := w.rc.Write(w.sendFn)
		if werr != nil || w.errno != 0 || w.n == 0 {
			break // socket closed or a hard error: drop the rest, like loss
		}
		w.off += int(w.n)
	}
	w.frames = w.frames[:0]
	w.addrs = w.addrs[:0]
	return w.syscalls
}

// mmsgReader drains datagrams in batches with recvmmsg.
type mmsgReader struct {
	rc    syscall.RawConn
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	slots [][]byte

	// recvFn is the closure passed to RawConn.Read, built once at
	// construction so the per-batch hot path does not allocate a new
	// closure (and escape its captures) on every syscall. It communicates
	// through the n/errno/syscalls fields.
	recvFn   func(fd uintptr) bool
	n        uintptr
	errno    syscall.Errno
	syscalls int
}

// newMMsgReader sizes batch receive slots of frameSize bytes each.
func newMMsgReader(conn *net.UDPConn, batch, frameSize int) *mmsgReader {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	r := &mmsgReader{
		rc:    rc,
		hdrs:  make([]mmsghdr, batch),
		iovs:  make([]syscall.Iovec, batch),
		slots: make([][]byte, batch),
	}
	for i := range r.slots {
		r.slots[i] = make([]byte, frameSize)
		r.iovs[i] = syscall.Iovec{Base: &r.slots[i][0], Len: uint64(frameSize)}
		h := &r.hdrs[i].Hdr
		h.Iov = &r.iovs[i]
		h.Iovlen = 1
	}
	r.recvFn = func(fd uintptr) bool {
		r.n, _, r.errno = syscall.Syscall6(sysRECVMMSG, fd,
			uintptr(unsafe.Pointer(&r.hdrs[0])), uintptr(len(r.hdrs)),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		r.syscalls++
		return r.errno != syscall.EAGAIN
	}
	return r
}

// readBatch blocks until at least one datagram arrives, then drains up to
// the batch size in one recvmmsg. visit(i, n) is called per datagram with
// the slot index and length. It returns the datagram count and the number
// of syscalls spent; ok is false when the socket is closed.
func (r *mmsgReader) readBatch(visit func(i, n int)) (got, syscalls int, ok bool) {
	r.syscalls = 0
	rerr := r.rc.Read(r.recvFn)
	if rerr != nil || r.errno != 0 {
		return 0, r.syscalls, false
	}
	for i := 0; i < int(r.n); i++ {
		visit(i, int(r.hdrs[i].Len))
	}
	return int(r.n), r.syscalls, true
}

func (r *mmsgReader) slot(i int) []byte { return r.slots[i] }
