package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"accelring/internal/bufpool"
	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/obs"
)

// Hub is an in-process switch connecting Endpoints. It is safe for
// concurrent use. Loss, delay, duplication, and partitions are injected
// through a faults.Injector (or the legacy SetDrop/SetDelay hooks). Each
// delivered copy is rented from bufpool, so senders and receivers never
// share buffers and receivers own (and may recycle) what they read.
type Hub struct {
	mu      sync.RWMutex
	eps     map[evs.ProcID]*Endpoint
	inj     *faults.Injector
	dropFn  func(from, to evs.ProcID, token bool, frame []byte) bool
	delayFn func(from, to evs.ProcID, token bool) time.Duration
	nm      *netMetrics
	fl      atomic.Pointer[obs.FlightRecorder]
	delayQ  delayQueue
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{eps: make(map[evs.ProcID]*Endpoint)}
}

// SetDrop installs a loss-injection hook (nil clears). The hook runs on
// sender goroutines and must be safe for concurrent use.
func (h *Hub) SetDrop(fn func(from, to evs.ProcID, token bool, frame []byte) bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dropFn = fn
}

// SetDelay installs a per-frame delivery delay hook (nil clears). A
// positive delay delivers the frame asynchronously after it elapses, which
// lets frames overtake each other — UDP reordering for stress tests. The
// hook runs on sender goroutines and must be safe for concurrent use.
func (h *Hub) SetDelay(fn func(from, to evs.ProcID, token bool) time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.delayFn = fn
}

// SetInjector installs a fault injector on every frame path through the
// hub (nil clears). The injector runs after the legacy SetDrop hook and
// can drop, delay (reordering), and duplicate frames. Decisions use the
// injector's wall clock.
func (h *Hub) SetInjector(in *faults.Injector) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.inj = in
}

// SetObserver directs transport.inmem.* frame/byte counters for every
// frame through the hub into reg (nil clears).
func (h *Hub) SetObserver(reg *obs.Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nm = newNetMetrics(reg, "transport.inmem.")
}

// SetFlight installs a black-box recorder that gets one event per frame
// dropped on a full receive channel (nil clears). Safe to call while the
// hub carries traffic: delayed deliveries load it atomically.
func (h *Hub) SetFlight(f *obs.FlightRecorder) {
	h.fl.Store(f)
}

// push delivers every surviving copy of a frame to one endpoint's channel
// per the injector decision: the primary copy after d.Delay, one extra
// copy per d.Extra entry. Each delivery gets its own rented buffer — the
// receiver owns (and may recycle) what it reads, so two deliveries must
// never share one.
func (h *Hub) push(peer *Endpoint, token bool, frame []byte, d faults.Decision, nm *netMetrics) {
	if d.Drop {
		return
	}
	h.deliverAfter(peer, token, frame, d.Delay, nm)
	for _, extra := range d.Extra {
		h.deliverAfter(peer, token, frame, extra, nm)
	}
}

// deliverAfter rents a copy of the frame and delivers it, via the hub's
// single delay-queue drainer when delayed (which lets frames overtake each
// other, like UDP). The copy is made synchronously: the sender may reuse
// its encode scratch the moment its send call returns. Dropped copies
// (closed endpoint, full channel) go straight back to the pool.
func (h *Hub) deliverAfter(peer *Endpoint, token bool, frame []byte, delay time.Duration, nm *netMetrics) {
	ch := peer.dataCh
	cnt := &peer.dataDrop
	if token {
		ch = peer.tokenCh
		cnt = &peer.tokenDrop
	}
	cp := bufpool.Get(len(frame))
	copy(cp, frame)
	deliver := func() {
		if peer.closed.Load() {
			bufpool.Put(cp)
			return
		}
		select {
		case ch <- cp:
			nm.rx(token, len(cp))
		default:
			bufpool.Put(cp)
			cnt.Add(1)
			nm.rxDrop()
			if fl := h.fl.Load(); fl != nil {
				note := "data"
				if token {
					note = "token"
				}
				fl.Record(obs.FlightEvent{Kind: obs.FlightRxDrop, Note: note})
			}
		}
	}
	if delay > 0 {
		h.delayQ.after(delay, deliver)
		return
	}
	deliver()
}

// Close flushes the hub's delay queue: pending delayed deliveries run
// immediately (each delivers to a still-open endpoint or recycles its
// buffer) and the drainer goroutine exits. Call it after closing the
// endpoints when tearing a test or process down; the hub itself remains
// usable for immediate deliveries. Idempotent.
func (h *Hub) Close() error {
	h.delayQ.stop()
	return nil
}

// Endpoint attaches a new participant with the given receive-channel
// capacities (frames, not bytes). It returns an error if the ID is taken.
func (h *Hub) Endpoint(id evs.ProcID, dataCap, tokenCap int) (*Endpoint, error) {
	if dataCap <= 0 {
		dataCap = 4096
	}
	if tokenCap <= 0 {
		tokenCap = 16
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, taken := h.eps[id]; taken {
		return nil, fmt.Errorf("transport: endpoint %d already attached", id)
	}
	ep := &Endpoint{
		hub:     h,
		id:      id,
		dataCh:  make(chan []byte, dataCap),
		tokenCh: make(chan []byte, tokenCap),
	}
	h.eps[id] = ep
	return ep, nil
}

// detach removes an endpoint.
func (h *Hub) detach(id evs.ProcID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.eps, id)
}

// Endpoint is one participant's view of a Hub.
type Endpoint struct {
	hub     *Hub
	id      evs.ProcID
	dataCh  chan []byte
	tokenCh chan []byte

	closed    atomic.Bool
	dataDrop  atomic.Uint64
	tokenDrop atomic.Uint64
}

var _ Transport = (*Endpoint)(nil)

// ID returns the endpoint's participant ID.
func (e *Endpoint) ID() evs.ProcID { return e.id }

// Multicast implements Transport: the frame is delivered to every other
// attached endpoint's data channel, each in its own rented buffer. Full
// channels drop (like a full UDP socket buffer). The caller's frame is
// only read during the call.
func (e *Endpoint) Multicast(frame []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.hub.mu.RLock()
	drop := e.hub.dropFn
	delay := e.hub.delayFn
	inj := e.hub.inj
	nm := e.hub.nm
	for id, peer := range e.hub.eps {
		if id == e.id || peer.closed.Load() {
			continue
		}
		if drop != nil && drop(e.id, id, false, frame) {
			continue
		}
		nm.tx(false, len(frame))
		e.hub.push(peer, false, frame, e.decide(inj, delay, id, false, frame), nm)
	}
	e.hub.mu.RUnlock()
	return nil
}

// decide combines the fault injector's verdict with the legacy delay hook
// (injector delay wins when both are set).
func (e *Endpoint) decide(inj *faults.Injector,
	delayFn func(from, to evs.ProcID, token bool) time.Duration,
	to evs.ProcID, token bool, frame []byte) faults.Decision {
	var d faults.Decision
	if inj != nil {
		d = inj.DecideWall(faults.Packet{
			From: e.id, To: to, Token: token, Size: len(frame), Frame: frame,
		})
		if d.Drop {
			return d
		}
	}
	if d.Delay == 0 && delayFn != nil {
		d.Delay = delayFn(e.id, to, token)
	}
	return d
}

// Unicast implements Transport: the frame is copied into a rented buffer
// and delivered to the peer's token channel. Sending to an unknown peer is
// not an error (the peer may have crashed); the frame is silently dropped,
// as UDP would.
func (e *Endpoint) Unicast(to evs.ProcID, frame []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.hub.mu.RLock()
	peer := e.hub.eps[to]
	drop := e.hub.dropFn
	delay := e.hub.delayFn
	inj := e.hub.inj
	nm := e.hub.nm
	e.hub.mu.RUnlock()
	if peer == nil || peer.closed.Load() {
		return nil
	}
	if drop != nil && drop(e.id, to, true, frame) {
		return nil
	}
	nm.tx(true, len(frame))
	e.hub.push(peer, true, frame, e.decide(inj, delay, to, true, frame), nm)
	return nil
}

// Data implements Transport.
func (e *Endpoint) Data() <-chan []byte { return e.dataCh }

// Token implements Transport.
func (e *Endpoint) Token() <-chan []byte { return e.tokenCh }

// Drops returns receiver-side overflow counts.
func (e *Endpoint) Drops() Drops {
	return Drops{Data: e.dataDrop.Load(), Token: e.tokenDrop.Load()}
}

// Close detaches the endpoint and recycles frames already queued on its
// receive channels. The channels are NOT closed (senders may hold
// references); readers should stop via their own signal. The drain is
// best-effort: a sender that raced past the closed check may enqueue one
// more frame afterwards, which is merely unpooled garbage, not a leak.
func (e *Endpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.hub.detach(e.id)
	for {
		select {
		case f := <-e.dataCh:
			bufpool.Put(f)
		case f := <-e.tokenCh:
			bufpool.Put(f)
		default:
			return nil
		}
	}
}
