package transport

import (
	"testing"
	"time"

	"accelring/internal/evs"
	"accelring/internal/faults"
)

// drainFrames collects frames from ch until it stays quiet for the grace
// period.
func drainFrames(ch <-chan []byte, grace time.Duration) [][]byte {
	var out [][]byte
	for {
		select {
		case f := <-ch:
			out = append(out, f)
		case <-time.After(grace):
			return out
		}
	}
}

// TestHubInjectorDropDupDelay: the hub must honor all three verdicts of a
// shared faults.Injector — total loss on one link, duplication on
// another, and delay-based reordering on a third.
func TestHubInjectorDropDupDelay(t *testing.T) {
	hub := NewHub()
	var plan faults.Plan
	plan.Add(faults.Rule{Name: "drop-to-2", To: 2, Model: faults.Loss{P: 1}})
	plan.Add(faults.Rule{Name: "dup-to-3", To: 3, Model: faults.Duplicate{P: 1}})
	hub.SetInjector(faults.New(1, plan))

	sender, err := hub.Endpoint(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := hub.Endpoint(2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := hub.Endpoint(3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Multicast([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if got := drainFrames(blocked.Data(), 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("dropped link delivered %d frames", len(got))
	}
	if got := drainFrames(doubled.Data(), 50*time.Millisecond); len(got) != 2 {
		t.Fatalf("duplicating link delivered %d frames, want 2", len(got))
	}
}

// TestHubInjectorReorders: a rule delaying only the first frame must let
// the second overtake it.
func TestHubInjectorReorders(t *testing.T) {
	hub := NewHub()
	first := true
	var plan faults.Plan
	plan.Add(faults.Rule{
		Name: "delay-first",
		Match: func(p faults.Packet) bool {
			if first {
				first = false
				return true
			}
			return false
		},
		Model: faults.Delay{Min: 60 * time.Millisecond, Max: 60 * time.Millisecond},
	})
	hub.SetInjector(faults.New(1, plan))

	sender, err := hub.Endpoint(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := hub.Endpoint(2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Unicast(2, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if err := sender.Unicast(2, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	got := drainFrames(recv.Token(), 150*time.Millisecond)
	if len(got) != 2 || string(got[0]) != "fast" || string(got[1]) != "slow" {
		t.Fatalf("expected [fast slow], got %q", got)
	}
}

// TestUDPInjectorPaths: the UDP transport must accept the same injector,
// dropping per destination and duplicating tokens on the send path.
func TestUDPInjectorPaths(t *testing.T) {
	newUDP := func(self evs.ProcID) *UDP {
		u, err := NewUDP(UDPConfig{
			Self:   self,
			Listen: UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { u.Close() })
		return u
	}
	a, b, c := newUDP(1), newUDP(2), newUDP(3)
	for _, u := range []*UDP{a, b, c} {
		for id, peer := range map[evs.ProcID]*UDP{1: a, 2: b, 3: c} {
			if err := u.AddPeer(id, peer.LocalAddrs()); err != nil {
				t.Fatal(err)
			}
		}
	}

	var plan faults.Plan
	plan.Add(faults.Rule{Name: "drop-to-2", To: 2, Model: faults.Loss{P: 1}})
	plan.Add(faults.Rule{Name: "dup-tok-to-3", To: 3, Classes: faults.ClassToken,
		Model: faults.Duplicate{P: 1}})
	a.SetInjector(faults.New(1, plan))

	if err := a.Multicast([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := a.Unicast(3, []byte("token")); err != nil {
		t.Fatal(err)
	}
	if got := drainFrames(b.Data(), 100*time.Millisecond); len(got) != 0 {
		t.Fatalf("dropped destination received %d data frames", len(got))
	}
	if got := drainFrames(c.Data(), 100*time.Millisecond); len(got) != 1 {
		t.Fatalf("undropped destination received %d data frames, want 1", len(got))
	}
	if got := drainFrames(c.Token(), 100*time.Millisecond); len(got) != 2 {
		t.Fatalf("duplicated token arrived %d times, want 2", len(got))
	}
	for _, ctr := range a.inj.Load().Counters() {
		switch ctr.Rule {
		case "drop-to-2":
			if ctr.Dropped == 0 {
				t.Error("drop rule counted no drops")
			}
		case "dup-tok-to-3":
			if ctr.Duplicated != 1 {
				t.Errorf("dup rule counted %d duplicates, want 1", ctr.Duplicated)
			}
		}
	}
}

// TestInjectorConcurrentSenders hammers one hub injector from many
// goroutines; run under -race this guards the locking on every path.
func TestInjectorConcurrentSenders(t *testing.T) {
	hub := NewHub()
	part := faults.NewPartition()
	var plan faults.Plan
	plan.Add(faults.Rule{Name: "loss", Model: faults.Loss{P: 0.2}})
	plan.Add(faults.Rule{Name: "dup", Model: faults.Duplicate{P: 0.2, Spread: time.Millisecond}})
	plan.Add(faults.Rule{Name: "part", Model: part})
	inj := faults.New(42, plan)
	hub.SetInjector(inj)

	const n = 4
	eps := make([]*Endpoint, n)
	for i := range eps {
		ep, err := hub.Endpoint(evs.ProcID(i+1), 4096, 4096)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	done := make(chan struct{})
	for _, ep := range eps {
		go func(ep *Endpoint) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				_ = ep.Multicast([]byte("m"))
				_ = ep.Unicast(evs.ProcID(i%n+1), []byte("t"))
				if i%50 == 0 {
					part.Split(map[evs.ProcID]int{1: 0, 2: 0, 3: 1, 4: 1})
					part.Heal()
				}
			}
		}(ep)
	}
	for range eps {
		<-done
	}
	var matched uint64
	for _, c := range inj.Counters() {
		matched += c.Matched
	}
	if matched == 0 {
		t.Fatal("injector saw no packets")
	}
}
