//go:build !(linux || darwin)

package transport

import "net"

// setMulticastSendOpts is a best-effort no-op on platforms without the
// raw sockopt wiring: the kernel defaults (TTL 1, loopback on) apply.
func setMulticastSendOpts(conn *net.UDPConn, ttl int, loopback bool, ifi *net.Interface) error {
	return nil
}
