package transport

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"accelring/internal/evs"
)

func recvFrame(t *testing.T, ch <-chan []byte) []byte {
	t.Helper()
	select {
	case f := <-ch:
		return f
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for frame")
		return nil
	}
}

func expectNone(t *testing.T, ch <-chan []byte) {
	t.Helper()
	select {
	case f := <-ch:
		t.Fatalf("unexpected frame %q", f)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestHubMulticast(t *testing.T) {
	hub := NewHub()
	var eps []*Endpoint
	for i := evs.ProcID(1); i <= 3; i++ {
		ep, err := hub.Endpoint(i, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, ep)
	}
	if err := eps[0].Multicast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for _, ep := range eps[1:] {
		if got := recvFrame(t, ep.Data()); string(got) != "hello" {
			t.Fatalf("got %q", got)
		}
	}
	expectNone(t, eps[0].Data()) // no loopback
}

func TestHubUnicastTokenChannel(t *testing.T) {
	hub := NewHub()
	a, _ := hub.Endpoint(1, 0, 0)
	b, _ := hub.Endpoint(2, 0, 0)
	if err := a.Unicast(2, []byte("tok")); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, b.Token()); string(got) != "tok" {
		t.Fatalf("got %q", got)
	}
	expectNone(t, b.Data())
	// Unicast to an unknown peer is not an error (peer may have died).
	if err := a.Unicast(99, []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestHubFrameIsolation(t *testing.T) {
	hub := NewHub()
	a, _ := hub.Endpoint(1, 0, 0)
	b, _ := hub.Endpoint(2, 0, 0)
	frame := []byte("mutable")
	if err := a.Multicast(frame); err != nil {
		t.Fatal(err)
	}
	frame[0] = 'X'
	if got := recvFrame(t, b.Data()); string(got) != "mutable" {
		t.Fatalf("receiver saw sender's mutation: %q", got)
	}
}

func TestHubDropInjection(t *testing.T) {
	hub := NewHub()
	a, _ := hub.Endpoint(1, 0, 0)
	b, _ := hub.Endpoint(2, 0, 0)
	c, _ := hub.Endpoint(3, 0, 0)
	hub.SetDrop(func(from, to evs.ProcID, token bool, frame []byte) bool {
		return to == 2
	})
	a.Multicast([]byte("m"))
	expectNone(t, b.Data())
	if got := recvFrame(t, c.Data()); string(got) != "m" {
		t.Fatalf("got %q", got)
	}
}

func TestHubOverflowDrops(t *testing.T) {
	hub := NewHub()
	a, _ := hub.Endpoint(1, 0, 0)
	b, _ := hub.Endpoint(2, 2, 0) // data capacity 2
	for i := 0; i < 5; i++ {
		a.Multicast([]byte{byte(i)})
	}
	if d := b.Drops(); d.Data != 3 {
		t.Fatalf("drops = %+v, want 3 data drops", d)
	}
}

func TestHubClose(t *testing.T) {
	hub := NewHub()
	a, _ := hub.Endpoint(1, 0, 0)
	b, _ := hub.Endpoint(2, 0, 0)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Multicast([]byte("x")); err != nil {
		t.Fatal(err) // sending into a hub with a closed peer is fine
	}
	if err := b.Multicast([]byte("x")); err != ErrClosed {
		t.Fatalf("send on closed endpoint = %v, want ErrClosed", err)
	}
	// Re-attach under the same ID works after Close.
	if _, err := hub.Endpoint(2, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Duplicate attach fails.
	if _, err := hub.Endpoint(1, 0, 0); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
}

func newUDPPair(t *testing.T) (*UDP, *UDP) {
	t.Helper()
	a, err := NewUDP(UDPConfig{
		Self:   1,
		Listen: UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := NewUDP(UDPConfig{
		Self:   2,
		Listen: UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.AddPeer(2, b.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestUDPRoundTrip(t *testing.T) {
	a, b := newUDPPair(t)
	payload := bytes.Repeat([]byte{0xAB}, 1350)
	if err := a.Multicast(payload); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, b.Data()); !bytes.Equal(got, payload) {
		t.Fatalf("data frame corrupted: %d bytes", len(got))
	}
	if err := b.Unicast(1, []byte("token")); err != nil {
		t.Fatal(err)
	}
	if got := recvFrame(t, a.Token()); string(got) != "token" {
		t.Fatalf("got %q", got)
	}
}

func TestUDPCloseUnblocksReaders(t *testing.T) {
	a, b := newUDPPair(t)
	done := make(chan struct{})
	go func() {
		// Drain until channel closes.
		for range b.Data() {
		}
		close(done)
	}()
	a.Multicast([]byte("x"))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("reader did not stop after Close")
	}
	if err := b.Multicast([]byte("x")); err != ErrClosed {
		t.Fatalf("send after close = %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestUDPUnknownPeer(t *testing.T) {
	a, _ := newUDPPair(t)
	if err := a.Unicast(77, []byte("t")); err != nil {
		t.Fatalf("unicast to unknown peer = %v, want nil (UDP semantics)", err)
	}
}

func TestUDPConfigValidation(t *testing.T) {
	if _, err := NewUDP(UDPConfig{Listen: UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"}}); err == nil {
		t.Fatal("zero Self accepted")
	}
	if _, err := NewUDP(UDPConfig{Self: 1, Listen: UDPPeer{Data: "bogus::addr::", Token: "127.0.0.1:0"}}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestUDPManyFrames(t *testing.T) {
	a, b := newUDPPair(t)
	const count = 200
	go func() {
		for i := 0; i < count; i++ {
			frame := []byte(fmt.Sprintf("frame-%03d", i))
			a.Multicast(frame)
		}
	}()
	seen := 0
	deadline := time.After(5 * time.Second)
	for seen < count/2 { // UDP may drop; require at least half on loopback
		select {
		case <-b.Data():
			seen++
		case <-deadline:
			t.Fatalf("received only %d/%d frames", seen, count)
		}
	}
}
