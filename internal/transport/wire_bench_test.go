package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"accelring/internal/bufpool"
	"accelring/internal/evs"
)

// benchWire measures the loopback wire path sender-side: ns/op and
// syscalls-per-frame for b.N data frames, plus the receiver's measured
// syscalls-per-datagram (recvmmsg drains many frames per call). UDP may
// drop under blast load, so receive-side figures are over the frames
// that actually arrived; the "delivered" metric reports that fraction.
func benchWire(b *testing.B, batch BatchConfig, mcast *UDPMulticast) {
	mk := func(self evs.ProcID) *UDP {
		var mc *UDPMulticast
		if mcast != nil {
			c := *mcast
			mc = &c
		}
		u, err := NewUDP(UDPConfig{
			Self:      self,
			Listen:    UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"},
			Batch:     batch,
			Multicast: mc,
		})
		if err != nil {
			if mcast != nil {
				b.Skipf("multicast unavailable: %v", err)
			}
			b.Fatal(err)
		}
		b.Cleanup(func() { u.Close() })
		return u
	}
	snd, rcv := mk(1), mk(2)
	if err := snd.AddPeer(2, rcv.LocalAddrs()); err != nil {
		b.Fatal(err)
	}
	if err := rcv.AddPeer(1, snd.LocalAddrs()); err != nil {
		b.Fatal(err)
	}

	var got atomic.Int64
	go func() {
		for f := range rcv.Data() {
			got.Add(1)
			bufpool.Put(f)
		}
	}()

	payload := make([]byte, 1350)
	if mcast != nil {
		// Probe: group joins can succeed in environments that still do
		// not route multicast back over loopback.
		deadline := time.Now().Add(2 * time.Second)
		for got.Load() == 0 {
			if time.Now().After(deadline) {
				b.Skip("multicast loopback does not deliver in this environment")
			}
			snd.Multicast(payload)
			Flush(snd)
			time.Sleep(20 * time.Millisecond)
		}
	}

	got.Store(0)
	txBefore, _ := snd.Syscalls()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := snd.Multicast(payload); err != nil {
			b.Fatal(err)
		}
	}
	Flush(snd)
	b.StopTimer()

	// Let the receiver settle: stop once the count is quiet for a bit.
	last, quiet := int64(-1), 0
	for quiet < 5 {
		time.Sleep(20 * time.Millisecond)
		if n := got.Load(); n == last {
			quiet++
		} else {
			last, quiet = n, 0
		}
	}
	txAfter, _ := snd.Syscalls()
	_, rx := rcv.Syscalls()
	b.ReportMetric(float64(txAfter-txBefore)/float64(b.N), "txsys/frame")
	if n := got.Load(); n > 0 {
		b.ReportMetric(float64(rx)/float64(n), "rxsys/frame")
		b.ReportMetric(float64(n)/float64(b.N), "delivered")
	}
}

func BenchmarkWireUnicastBare(b *testing.B) {
	benchWire(b, BatchConfig{}, nil)
}

func BenchmarkWireUnicastBatched16(b *testing.B) {
	benchWire(b, BatchConfig{Send: 16, Recv: 16}, nil)
}

func BenchmarkWireUnicastBatched64(b *testing.B) {
	benchWire(b, BatchConfig{Send: 64, Recv: 64}, nil)
}

func BenchmarkWireMulticastBare(b *testing.B) {
	benchWire(b, BatchConfig{}, &UDPMulticast{Group: "239.77.14.1:39271", TTL: 0})
}

func BenchmarkWireMulticastBatched16(b *testing.B) {
	benchWire(b, BatchConfig{Send: 16, Recv: 16}, &UDPMulticast{Group: "239.77.14.2:39272", TTL: 0})
}
